//! Explore the Cambricon-Q design space: sweep PE-array count, memory
//! bandwidth and training width, and print where each benchmark becomes
//! compute- versus memory-bound — the kind of what-if a downstream user
//! would run before committing to a configuration.
//!
//! Run with: `cargo run --release --example design_space`

use cq_accel::{CambriconQ, CqConfig};
use cq_ndp::OptimizerKind;
use cq_quant::IntFormat;
use cq_workloads::models;

fn main() {
    let adam = OptimizerKind::Adam {
        lr: 1e-3,
        beta1: 0.9,
        beta2: 0.999,
    };
    let nets = [models::resnet18(), models::alexnet()];

    println!("PE arrays x bandwidth sweep (ResNet-18 / AlexNet iteration ms):\n");
    println!(
        "{:>9} {:>9} {:>12} {:>12}",
        "PE arrays", "BW (GB/s)", "ResNet-18", "AlexNet"
    );
    for (arrays, bw_factor) in [(1usize, 1usize), (2, 1), (4, 2), (8, 4), (16, 4), (64, 16)] {
        let mut cfg = CqConfig::edge();
        cfg.pe_arrays = arrays;
        cfg.squ_units = bw_factor;
        cfg.ddr = cfg.ddr.scaled_bandwidth(bw_factor);
        let chip = CambriconQ::new(cfg.clone());
        let times: Vec<f64> = nets
            .iter()
            .map(|n| chip.simulate(n, adam).time_ms())
            .collect();
        println!(
            "{:>9} {:>9.1} {:>12.2} {:>12.2}",
            arrays,
            cfg.ddr.peak_bandwidth_gbps(),
            times[0],
            times[1]
        );
    }

    println!("\nTraining width sweep (ResNet-18):\n");
    println!("{:>7} {:>12} {:>12}", "width", "time (ms)", "energy (mJ)");
    for fmt in [
        IntFormat::Int4,
        IntFormat::Int8,
        IntFormat::Int12,
        IntFormat::Int16,
    ] {
        let chip = CambriconQ::new(CqConfig::edge().with_format(fmt));
        let r = chip.simulate(&nets[0], adam);
        println!(
            "{:>7} {:>12.2} {:>12.2}",
            fmt.to_string(),
            r.time_ms(),
            r.total_energy_mj()
        );
    }

    println!("\nPer-layer hotspots (AlexNet, edge configuration):\n");
    let chip = CambriconQ::edge();
    let (_, profile) = chip.simulate_profiled(&nets[1], adam);
    let trace: cq_sim::Trace = profile.into_iter().collect();
    for r in trace.hotspots(5) {
        println!(
            "  {:18} {:>10} cycles  ({})",
            r.label,
            r.breakdown.total_cycles(),
            r.breakdown
        );
    }
    println!("\nPhase bars per layer (F=FW N=NG W=WG U=WU s/q=stat/quant):\n");
    print!("{}", trace.render_bars(56));
}
