//! Drive the NDP engine: configure the NDPO datapath for each Table IV
//! optimizer, update weights in place, and compare bus traffic against a
//! conventional (core-side) weight update.
//!
//! Run with: `cargo run --release --example ndp_optimizer`

use cq_mem::{DdrConfig, DdrModel};
use cq_ndp::{NdpEngine, NdpoRegs, OptimizerKind};
use cq_nn::{Adam, Optimizer, Param};
use cq_tensor::init;

fn main() {
    // ----- 1. The NDPO datapath reproduces the reference optimizers -----
    let n = 8;
    let mut reference = Param::new(init::normal(&[n], 0.0, 1.0, 1));
    let mut w: Vec<f32> = reference.value.data().to_vec();
    let (mut m, mut v) = (vec![0.0f32; n], vec![0.0f32; n]);
    let mut adam = Adam::with_defaults(1e-3);
    let kind = OptimizerKind::Adam {
        lr: 1e-3,
        beta1: 0.9,
        beta2: 0.999,
    };
    for t in 1..=10 {
        let g = init::normal(&[n], 0.0, 0.5, 100 + t as u64);
        reference.grad = g.clone();
        adam.step(&mut [&mut reference]);
        // The controller rewrites c5 each step via CROSET — that is how
        // Adam's bias correction reaches the in-memory datapath.
        NdpoRegs::for_optimizer(kind, t).update_slice(&mut w, &mut m, &mut v, g.data());
    }
    let max_dev = reference
        .value
        .data()
        .iter()
        .zip(&w)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    println!("NDPO vs reference Adam after 10 steps: max deviation {max_dev:.2e}");

    // ----- 2. Traffic: in-place update vs conventional update -----
    println!("\nWeight-update bus traffic for 10M weights:");
    for kind in [
        OptimizerKind::Sgd { lr: 0.01 },
        OptimizerKind::AdaGrad { lr: 0.01 },
        OptimizerKind::RmsProp {
            lr: 0.01,
            beta: 0.9,
        },
        OptimizerKind::Adam {
            lr: 1e-3,
            beta1: 0.9,
            beta2: 0.999,
        },
    ] {
        let engine = NdpEngine::new(kind);
        let mut mem = DdrModel::new(DdrConfig::cambricon_q());
        let stats = engine.update_weights(10_000_000, &mut mem);
        let baseline = engine.baseline_bus_bytes(10_000_000);
        println!(
            "  {:8} NDP: {:6.1} MB over the bus ({:5.1} MB stay in-memory) vs conventional {:6.1} MB  -> {:.1}x less traffic",
            kind.name(),
            stats.bus_bytes as f64 / 1e6,
            stats.internal_bytes as f64 / 1e6,
            baseline as f64 / 1e6,
            baseline as f64 / stats.bus_bytes as f64,
        );
    }
}
