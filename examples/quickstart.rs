//! Quickstart: quantize data with HQT, compile a matrix multiply to the
//! Cambricon-Q ISA, and execute it on the functional machine.
//!
//! Run with: `cargo run --release --example quickstart`

use cq_accel::{compile_dense_forward, CqConfig, DenseLayout, Machine};
use cq_quant::{E2bqmQuantizer, IntFormat, LdqConfig, LdqTensor};
use cq_tensor::{init, ops, Tensor};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ----- 1. Local Dynamic Quantization (one-pass, block-local) -----
    let gradients = init::long_tailed(&[4096], 0.01, 0.01, 50.0, 42);
    let ldq = LdqTensor::quantize(&gradients, LdqConfig::new(1024, IntFormat::Int8));
    let restored = ldq.dequantize();
    println!(
        "LDQ: {} blocks, compression {:.2}x, cosine fidelity {:.4}",
        ldq.blocks().len(),
        ldq.compression_ratio(),
        gradients.cosine_similarity(&restored)?
    );

    // ----- 2. E2BQM: 4-way candidate quantization with arbitration -----
    let squ = E2bqmQuantizer::hardware_default();
    let sel = squ.quantize(&gradients);
    println!(
        "E2BQM picked way {} (candidate errors: {:?})",
        sel.way,
        sel.errors
            .iter()
            .map(|e| format!("{e:.2}"))
            .collect::<Vec<_>>()
    );

    // ----- 3. Compile y = x·W to the Cambricon-Q ISA -----
    let config = CqConfig::edge();
    let (m, k, n) = (96u32, 64u32, 80u32);
    let x = init::normal(&[m as usize, k as usize], 0.0, 1.0, 1);
    let w = init::normal(&[k as usize, n as usize], 0.0, 0.2, 2);
    let layout = DenseLayout {
        input: 0,
        weight: m * k * 4,
        output: (m * k + k * n) * 4,
    };
    let program = compile_dense_forward(&config, layout, m, k, n);
    println!(
        "\nCompiled program: {} instructions. First five:",
        program.len()
    );
    for instr in program.iter().take(5) {
        println!("  {instr}");
    }

    // ----- 4. Execute on the functional machine -----
    let mut machine = Machine::new(config, (m * k + k * n + m * n) as usize);
    machine.dram_mut()[..(m * k) as usize].copy_from_slice(x.data());
    machine.dram_mut()[(m * k) as usize..(m * k + k * n) as usize].copy_from_slice(w.data());
    let stats = machine.run(&program)?;
    let out = Tensor::from_vec(
        machine.dram()[(m * k + k * n) as usize..].to_vec(),
        &[m as usize, n as usize],
    )?;
    let reference = ops::matmul(&x, &w)?;
    println!(
        "\nMachine executed {} instructions, {} MACs, {} quantized elements",
        stats.instructions, stats.macs, stats.quantized_elements
    );
    println!(
        "Quantized result vs FP32 reference: cosine {:.5}",
        reference.cosine_similarity(&out)?
    );
    Ok(())
}
