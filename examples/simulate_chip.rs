//! Simulate one training iteration of every benchmark on Cambricon-Q, the
//! TPU baseline and the Jetson TX2 GPU model — the data behind Fig. 12.
//!
//! Run with: `cargo run --release --example simulate_chip`

use cq_accel::{CambriconQ, CqConfig};
use cq_baselines::{GpuModel, Tpu};
use cq_ndp::OptimizerKind;
use cq_sim::Phase;
use cq_workloads::models;

fn main() {
    let adam = OptimizerKind::Adam {
        lr: 1e-3,
        beta1: 0.9,
        beta2: 0.999,
    };
    let cq = CambriconQ::edge();
    let cq_no_ndp = CambriconQ::new(CqConfig::edge().without_ndp());
    let tpu = Tpu::paper();
    let gpu = GpuModel::jetson_tx2();

    println!(
        "{:12} {:>10} {:>10} {:>10} {:>10} {:>8} {:>8}",
        "model", "CQ ms", "noNDP ms", "TPU ms", "GPU ms", "spTPU", "spGPU"
    );
    for net in models::all_benchmarks() {
        let r = cq.simulate(&net, adam);
        let rn = cq_no_ndp.simulate(&net, adam);
        let rt = tpu.simulate(&net, adam);
        let rg = gpu.simulate(&net, adam, true);
        println!(
            "{:12} {:>10.2} {:>10.2} {:>10.2} {:>10.2} {:>7.2}x {:>7.2}x",
            net.name,
            r.time_ms(),
            rn.time_ms(),
            rt.time_ms(),
            rg.time_ms(),
            r.speedup_over(&rt),
            r.speedup_over(&rg),
        );
    }

    // Detailed phase breakdown for the most WU-heavy benchmark.
    let alexnet = models::alexnet();
    let r = cq.simulate(&alexnet, adam);
    let rt = tpu.simulate(&alexnet, adam);
    println!("\nAlexNet phase breakdown (fraction of iteration time):");
    for res in [&r, &rt] {
        print!("  {:12}", res.platform);
        for p in Phase::ALL {
            print!(
                " {}={:5.1}%",
                p.abbrev(),
                res.phases.fraction_cycles(p) * 100.0
            );
        }
        println!();
    }
    println!("\nAlexNet energy components:");
    for res in [&r, &rt] {
        println!("  {:12} {}", res.platform, res.energy);
    }
}
