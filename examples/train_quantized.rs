//! Train a small CNN with statistic-based INT8 quantization (Zhang 2020 +
//! HQT) and compare against FP32 training — the paper's Table VIII
//! experiment at example scale.
//!
//! Run with: `cargo run --release --example train_quantized`

use cq_nn::{Adam, Conv2d, Dense, Flatten, MaxPool2d, QuantCtx, Relu, Sequential};
use cq_quant::TrainingQuantizer;

fn build_model(seed: u64) -> Sequential {
    let mut model = Sequential::new();
    model
        .add(Conv2d::new("conv1", 1, 8, 3, 1, 1, seed))
        .add(Relu::new())
        .add(MaxPool2d::new(2))
        .add(Flatten::new())
        .add(Dense::new("fc", 8 * 4 * 4, 4, seed + 1));
    model
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let train = cq_data::textures(160, 1, 8, 4, 0.25, 52);
    let test = cq_data::textures(160, 1, 8, 4, 0.25, 53);

    for quantizer in [
        TrainingQuantizer::fp32(),
        TrainingQuantizer::zhang2020(),
        TrainingQuantizer::zhang2020_hqt(),
        TrainingQuantizer::zhu2019_hqt(),
    ] {
        let mut model = build_model(7);
        let ctx = QuantCtx::new(quantizer.clone());
        let mut opt = Adam::with_defaults(3e-3);
        let mut final_loss = 0.0;
        for _ in 0..60 {
            final_loss = model
                .train_step(&train.x, &train.labels, &mut opt, &ctx)?
                .loss;
        }
        let acc = model.evaluate(&test.x, &test.labels, &ctx)?;
        println!(
            "{:14} final loss {:.3}, held-out accuracy {:.1}% ({} data pass(es) per quantization)",
            quantizer.name(),
            final_loss,
            acc * 100.0,
            quantizer.data_passes().max(1),
        );
    }
    println!("\nThe quantized runs track FP32 within the paper's <=0.4% envelope");
    println!("(scaled to proxy size), and HQT needs one-pass data access only.");
    Ok(())
}
