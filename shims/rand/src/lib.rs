//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so this workspace vendors a
//! minimal, API-compatible subset of `rand 0.8`: `rngs::StdRng`, the
//! [`SeedableRng`] and [`Rng`] traits, `gen`, `gen_bool` and `gen_range`
//! over the primitive types the simulator uses. The generator is
//! xoshiro256++ seeded via SplitMix64 — high-quality, deterministic and
//! portable, which is exactly what the reproducibility-sensitive fault
//! and data-generation code needs. It is **not** the upstream `StdRng`
//! stream, so seeds produce different (but equally deterministic) data.

use std::ops::{Range, RangeInclusive};

/// Seedable random generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64 step, used to expand a 64-bit seed into generator state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Values that [`Rng::gen`] can produce (subset of `rand::distributions::Standard`).
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn draw(word: u64) -> Self;
}

impl Standard for u64 {
    fn draw(word: u64) -> Self {
        word
    }
}

impl Standard for u32 {
    fn draw(word: u64) -> Self {
        (word >> 32) as u32
    }
}

impl Standard for u8 {
    fn draw(word: u64) -> Self {
        (word >> 56) as u8
    }
}

impl Standard for bool {
    fn draw(word: u64) -> Self {
        word >> 63 == 1
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn draw(word: u64) -> Self {
        ((word >> 40) as u32) as f32 / (1u32 << 24) as f32
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn draw(word: u64) -> Self {
        (word >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Ranges that [`Rng::gen_range`] accepts (subset of
/// `rand::distributions::uniform::SampleRange`). `T` is a type parameter
/// (not an associated type) so that an annotation on the result — e.g.
/// `let x: f32 = rng.gen_range(0.0..1.0)` — drives float-literal
/// inference, matching upstream rand.
pub trait SampleRange<T> {
    /// Draws a value in the range from the generator.
    fn sample(self, rng: &mut StdRng) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                // Multiply-shift bounded rejection-free mapping; bias is
                // negligible for the span sizes the simulator uses.
                let r = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (self.start as i128 + r as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut StdRng) -> $t {
                let (start, end) = self.into_inner();
                assert!(start <= end, "empty gen_range");
                if start == <$t>::MIN && end == <$t>::MAX {
                    return <u64 as Standard>::draw(rng.next_u64()) as $t;
                }
                if end == <$t>::MAX {
                    // Shift down to avoid end+1 overflow; negligible bias.
                    return (start..end).sample(rng);
                }
                (start..(end + 1)).sample(rng)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let u = <$t as Standard>::draw(rng.next_u64());
                let v = self.start + (self.end - self.start) * u;
                // Guard against round-up to the excluded endpoint.
                if v >= self.end { self.start } else { v }
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Random generators (subset of `rand::Rng`).
pub trait Rng {
    /// The next raw 64-bit word of the stream.
    fn next_u64(&mut self) -> u64;

    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: AsStdRng,
    {
        T::draw(self.as_std_rng().next_u64())
    }

    /// Draws a value uniformly from a range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: AsStdRng,
    {
        range.sample(self.as_std_rng())
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: AsStdRng,
    {
        <f64 as Standard>::draw(self.as_std_rng().next_u64()) < p
    }
}

/// Helper bound letting the `Rng` default methods reach the concrete
/// generator (the workspace only ever uses [`StdRng`]).
pub trait AsStdRng {
    /// The underlying concrete generator.
    fn as_std_rng(&mut self) -> &mut StdRng;
}

/// Named generators (mirrors `rand::rngs`).
pub mod rngs {
    pub use super::StdRng;
}

/// A deterministic xoshiro256++ generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    fn rotl(x: u64, k: u32) -> u64 {
        x.rotate_left(k)
    }

    /// The next raw word (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let result = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = Self::rotl(self.s[3], 45);
        result
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // All-zero state is invalid for xoshiro; splitmix64 never produces
        // four zero words from any seed, but be defensive anyway.
        if s == [0; 4] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        StdRng { s }
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        StdRng::next_u64(self)
    }
}

impl AsStdRng for StdRng {
    fn as_std_rng(&mut self) -> &mut StdRng {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn float_ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f32 = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&x));
            let u: f32 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn int_ranges_in_bounds_and_cover() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            let i = rng.gen_range(0usize..5);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
        for _ in 0..100 {
            assert_eq!(rng.gen_range(3u64..4), 3);
        }
    }

    #[test]
    fn bools_are_mixed() {
        let mut rng = StdRng::seed_from_u64(3);
        let trues = (0..1000).filter(|_| rng.gen::<bool>()).count();
        assert!((300..700).contains(&trues), "trues {trues}");
    }
}
