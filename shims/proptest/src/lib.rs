//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this workspace vendors
//! a deterministic subset of proptest's API: the [`proptest!`] macro,
//! `prop_assert!`/`prop_assert_eq!`, [`Strategy`] with `prop_map`, range
//! and tuple strategies, [`Just`], [`any`], [`prop_oneof!`] and
//! `prop::collection::vec`.
//!
//! Semantics differ from upstream in two deliberate ways:
//!
//! * **No shrinking** — a failing case panics immediately with the test
//!   name and case index; cases are fully deterministic (seeded from the
//!   test name), so a failure reproduces exactly on re-run.
//! * **Fixed case counts** — `ProptestConfig::with_cases(n)` runs `n`
//!   cases; the default is 64.

use rand::{Rng as _, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// The deterministic RNG driving strategy sampling.
pub type TestRng = rand::rngs::StdRng;

/// Creates the per-test RNG, seeded from the test's name so every test has
/// an independent but reproducible stream.
pub fn test_rng(test_name: &str) -> TestRng {
    // FNV-1a over the name.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    TestRng::seed_from_u64(h)
}

/// Run-time configuration (subset of proptest's).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of test values (subset of proptest's `Strategy`).
pub trait Strategy {
    /// The value type produced.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps produced values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Filters produced values; resamples (up to a bound) until `f` holds.
    fn prop_filter<F>(self, _whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy adapter produced by [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 10000 consecutive samples");
    }
}

/// Strategy producing a single constant value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy (subset of `Arbitrary`).
pub trait ArbitraryValue: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl ArbitraryValue for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() >> 63 == 1
    }
}

impl ArbitraryValue for f32 {
    /// Uniform over the unit interval plus occasional specials — enough to
    /// exercise numeric edge handling without shrink support.
    fn arbitrary(rng: &mut TestRng) -> f32 {
        match rng.next_u64() % 8 {
            0 => f32::from_bits(rng.next_u64() as u32),
            _ => rng.gen_range(-1e6f32..1e6),
        }
    }
}

impl ArbitraryValue for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.gen_range(-1e9f64..1e9)
    }
}

/// Strategy for [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy of all values of `T` (subset of `proptest::arbitrary::any`).
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}

/// A boxed sampling closure: one arm of a [`Union`].
pub type UnionArm<V> = Box<dyn Fn(&mut TestRng) -> V>;

/// Uniform choice among boxed equally-weighted strategies — the engine
/// behind [`prop_oneof!`].
pub struct Union<V> {
    arms: Vec<UnionArm<V>>,
}

impl<V> Union<V> {
    /// Builds a union from sampling closures (one per arm).
    pub fn new(arms: Vec<UnionArm<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.gen_range(0..self.arms.len());
        (self.arms[i])(rng)
    }
}

/// Namespaced strategy modules (mirrors `proptest::prelude::prop`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng as _;
    use std::ops::{Range, RangeInclusive};

    /// Size specification for collection strategies.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of an element strategy.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// `Vec` strategy with lengths drawn from `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// The strategy namespace exposed by the prelude as `prop`.
pub mod strategy_modules {
    pub use super::collection;
}

/// Drop-in prelude (mirrors `proptest::prelude`).
pub mod prelude {
    pub use super::strategy_modules as prop;
    pub use super::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Any, Just,
        ProptestConfig, Strategy, TestCaseError, TestCaseResult, TestRng, Union,
    };
}

/// A failed test case (mirrors `proptest::test_runner::TestCaseError`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failure carrying a message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Result alias used by helper functions shared between property tests.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Asserts a condition inside a [`proptest!`] body; on failure returns a
/// [`TestCaseError`] from the enclosing function (like upstream proptest).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond),
                file!(),
                line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, "{:?} != {:?} ({}:{})", a, b, file!(), line!());
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, $($fmt)+);
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a != *b, "{:?} == {:?} ({}:{})", a, b, file!(), line!());
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a != *b, $($fmt)+);
    }};
}

/// Uniform choice among strategies with a shared value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        let arms: Vec<::std::boxed::Box<dyn Fn(&mut $crate::TestRng) -> _>> = vec![
            $({
                // Callers often parenthesize range arms for readability
                // (`(-1.0f32..1.0)`); don't let that trip deny-warnings.
                #[allow(unused_parens)]
                let s = $strat;
                ::std::boxed::Box::new(move |rng: &mut $crate::TestRng| {
                    $crate::Strategy::generate(&s, rng)
                })
            }),+
        ];
        $crate::Union::new(arms)
    }};
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic samples.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { cfg = (<$crate::ProptestConfig as Default>::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
macro_rules! __proptest_tests {
    (cfg = ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)+
                let __guard = $crate::CasePanicContext {
                    test: stringify!($name),
                    case: __case,
                };
                let __result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = __result {
                    panic!(
                        "test `{}` failed at deterministic case #{}: {}",
                        stringify!($name),
                        __case,
                        e
                    );
                }
                std::mem::forget(__guard);
            }
        }
    )*};
}

/// Prints which deterministic case failed when a test body panics.
pub struct CasePanicContext {
    /// Test function name.
    pub test: &'static str,
    /// Zero-based case index.
    pub case: u32,
}

impl Drop for CasePanicContext {
    fn drop(&mut self) {
        if std::thread::panicking() {
            eprintln!(
                "proptest shim: test `{}` failed at deterministic case #{}",
                self.test, self.case
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_and_tuples_sample_in_bounds() {
        let mut rng = super::test_rng("demo");
        let s = (1usize..8, -2.0f32..2.0, Just(7u8));
        for _ in 0..100 {
            let (a, b, c) = s.generate(&mut rng);
            assert!((1..8).contains(&a));
            assert!((-2.0..2.0).contains(&b));
            assert_eq!(c, 7);
        }
    }

    #[test]
    fn oneof_and_vec_strategies() {
        let mut rng = super::test_rng("demo2");
        let s = prop::collection::vec(prop_oneof![Just(1u32), Just(2u32), 5u32..9], 3..6);
        for _ in 0..50 {
            let v = s.generate(&mut rng);
            assert!((3..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x == 1 || x == 2 || (5..9).contains(&x)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_runnable_tests(x in 0u64..100, (a, b) in (0usize..4, any::<bool>())) {
            prop_assert!(x < 100);
            prop_assert!(a < 4);
            let _ = b;
        }
    }
}
