//! Offline stand-in for the `criterion` crate.
//!
//! The build environment cannot reach crates.io, so this workspace vendors
//! a minimal benchmark harness with criterion's API shape: `Criterion`,
//! benchmark groups, `BenchmarkId`, `Throughput`, `black_box` and the
//! `criterion_group!`/`criterion_main!` macros. Each benchmark closure is
//! timed over a small fixed iteration budget and the mean wall-clock time
//! is printed — enough to eyeball hot-path regressions without the
//! statistical machinery.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Iterations each benchmark body runs (after one warm-up call).
const DEFAULT_ITERS: u64 = 10;

/// Throughput annotation (accepted, reported alongside the timing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier of a parameterized benchmark.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// An id made of the parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// The per-benchmark timing driver handed to bench closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the iteration budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine()); // warm-up, excluded from timing
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn report(group: &str, id: &str, throughput: Option<Throughput>, iters: u64, elapsed: Duration) {
    let per_iter = elapsed.as_secs_f64() / iters.max(1) as f64;
    let rate = match throughput {
        Some(Throughput::Elements(n)) => format!(", {:.3e} elem/s", n as f64 / per_iter),
        Some(Throughput::Bytes(n)) => format!(", {:.3e} B/s", n as f64 / per_iter),
        None => String::new(),
    };
    let name = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    println!("bench {name}: {:.3} ms/iter{rate}", per_iter * 1e3);
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for API compatibility; the shim's iteration budget is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark closure.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iters: DEFAULT_ITERS,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        report(
            &self.name,
            &id.to_string(),
            self.throughput,
            b.iters,
            b.elapsed,
        );
        self
    }

    /// Runs one benchmark closure over an input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            iters: DEFAULT_ITERS,
            elapsed: Duration::ZERO,
        };
        f(&mut b, input);
        report(
            &self.name,
            &id.to_string(),
            self.throughput,
            b.iters,
            b.elapsed,
        );
        self
    }

    /// Ends the group (no-op in the shim).
    pub fn finish(&mut self) {}
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs one ungrouped benchmark closure.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iters: DEFAULT_ITERS,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        report("", &id.to_string(), None, b.iters, b.elapsed);
        self
    }
}

/// Declares a group of benchmark functions (API-compatible subset).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($bench_fn:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($bench_fn(&mut c);)+
        }
    };
    (name = $name:ident; config = $cfg:expr; targets = $($bench_fn:path),+ $(,)?) => {
        fn $name() {
            let _ = $cfg;
            let mut c = $crate::Criterion::default();
            $($bench_fn(&mut c);)+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test` runs bench targets with `--test`; running the
            // full timing sweep there would be wasted work.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("demo");
        g.throughput(Throughput::Elements(100)).sample_size(5);
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &n| {
            b.iter(|| n * 2)
        });
        g.finish();
    }

    #[test]
    fn harness_runs() {
        let mut c = Criterion::default();
        demo_bench(&mut c);
        c.bench_function("ungrouped", |b| b.iter(|| 1 + 1));
    }
}
