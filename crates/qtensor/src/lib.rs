//! # cq-tensor — dense tensor substrate for the Cambricon-Q reproduction
//!
//! This crate provides the owned, row-major `f32` [`Tensor`] type and the
//! dense compute kernels (matrix multiply, 2-D convolution, pooling) that
//! every other crate in the workspace builds on:
//!
//! * `cq-quant` quantizes and dequantizes `Tensor`s,
//! * `cq-nn` trains networks whose activations and gradients are `Tensor`s,
//! * `cq-accel`'s functional model executes instructions over `Tensor`s.
//!
//! The crate is dependency-light by design (`rand` for seeded initializers
//! and `cq-par` for the tiled parallel kernels) and entirely deterministic:
//! all random initialization goes through [`init`] with explicit seeds, and
//! both compute [`Backend`]s accumulate in the same order (see
//! [`backend`]).
//!
//! # Examples
//!
//! ```
//! use cq_tensor::{Tensor, ops};
//!
//! // y = x·W for a tiny linear layer
//! let x = Tensor::from_vec(vec![1.0, 2.0], &[1, 2])?;
//! let w = Tensor::from_vec(vec![0.5, -0.5, 1.0, 1.0], &[2, 2])?;
//! let y = ops::matmul(&x, &w)?;
//! assert_eq!(y.data(), &[2.5, 1.5]);
//! # Ok::<(), cq_tensor::TensorError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod backend;
mod error;
pub mod init;
pub mod ops;
mod shape;
mod tensor;

pub use backend::{default_backend, fast_path_info, set_default_backend, Backend};
pub use error::TensorError;
pub use shape::Shape;
pub use tensor::Tensor;
