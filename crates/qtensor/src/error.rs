//! Error types for tensor operations.

use std::error::Error;
use std::fmt;

/// Error raised by fallible tensor operations.
///
/// All public fallible operations in this crate return
/// `Result<_, TensorError>`.
///
/// # Examples
///
/// ```
/// use cq_tensor::{ops, Tensor, TensorError};
///
/// let a = Tensor::zeros(&[2, 3]);
/// let b = Tensor::zeros(&[4, 5]);
/// let err = ops::matmul(&a, &b).unwrap_err();
/// assert!(matches!(err, TensorError::ShapeMismatch { .. }));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Two operands have incompatible shapes for the requested operation.
    ShapeMismatch {
        /// Shape of the left/first operand.
        lhs: Vec<usize>,
        /// Shape of the right/second operand.
        rhs: Vec<usize>,
        /// Name of the operation that failed.
        op: &'static str,
    },
    /// The number of elements implied by a reshape differs from the source.
    InvalidReshape {
        /// Source element count.
        from: usize,
        /// Requested shape.
        to: Vec<usize>,
    },
    /// An index was out of bounds for the tensor's shape.
    IndexOutOfBounds {
        /// Offending index.
        index: Vec<usize>,
        /// Tensor shape.
        shape: Vec<usize>,
    },
    /// The operation requires a tensor of a particular rank.
    RankMismatch {
        /// Expected rank.
        expected: usize,
        /// Actual rank.
        actual: usize,
        /// Name of the operation that failed.
        op: &'static str,
    },
    /// A configuration parameter was invalid (zero dims, bad stride, ...).
    InvalidArgument(String),
    /// The tensor holds a NaN or infinite element where finite data is
    /// required (e.g. after fault injection).
    NonFinite {
        /// Flat index of the first offending element.
        index: usize,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { lhs, rhs, op } => {
                write!(f, "shape mismatch in {op}: {lhs:?} vs {rhs:?}")
            }
            TensorError::InvalidReshape { from, to } => {
                write!(f, "cannot reshape {from} elements into {to:?}")
            }
            TensorError::IndexOutOfBounds { index, shape } => {
                write!(f, "index {index:?} out of bounds for shape {shape:?}")
            }
            TensorError::RankMismatch {
                expected,
                actual,
                op,
            } => {
                write!(f, "{op} expects rank {expected}, got rank {actual}")
            }
            TensorError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            TensorError::NonFinite { index } => {
                write!(f, "non-finite value at flat index {index}")
            }
        }
    }
}

impl Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_shape_mismatch() {
        let e = TensorError::ShapeMismatch {
            lhs: vec![2, 3],
            rhs: vec![4, 5],
            op: "matmul",
        };
        assert_eq!(e.to_string(), "shape mismatch in matmul: [2, 3] vs [4, 5]");
    }

    #[test]
    fn display_invalid_reshape() {
        let e = TensorError::InvalidReshape {
            from: 6,
            to: vec![4],
        };
        assert_eq!(e.to_string(), "cannot reshape 6 elements into [4]");
    }

    #[test]
    fn display_index_out_of_bounds() {
        let e = TensorError::IndexOutOfBounds {
            index: vec![9],
            shape: vec![3],
        };
        assert_eq!(e.to_string(), "index [9] out of bounds for shape [3]");
    }

    #[test]
    fn display_rank_mismatch() {
        let e = TensorError::RankMismatch {
            expected: 2,
            actual: 3,
            op: "transpose",
        };
        assert_eq!(e.to_string(), "transpose expects rank 2, got rank 3");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
