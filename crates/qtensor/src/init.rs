//! Deterministic, seeded tensor initializers.
//!
//! Every stochastic component in this reproduction takes an explicit seed so
//! all experiments are exactly reproducible run-to-run.

use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Uniform initialization on `[lo, hi)`.
///
/// # Examples
///
/// ```
/// use cq_tensor::init;
/// let t = init::uniform(&[4, 4], -0.1, 0.1, 42);
/// assert!(t.data().iter().all(|&x| (-0.1..0.1).contains(&x)));
/// ```
pub fn uniform(dims: &[usize], lo: f32, hi: f32, seed: u64) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    Tensor::from_fn(dims, |_| rng.gen_range(lo..hi))
}

/// Gaussian initialization with the given mean and standard deviation,
/// using a Box–Muller transform over the seeded generator.
pub fn normal(dims: &[usize], mean: f32, std: f32, seed: u64) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    Tensor::from_fn(dims, |_| mean + std * sample_standard_normal(&mut rng))
}

/// Xavier/Glorot uniform initialization for a layer with the given fan-in
/// and fan-out: `U(-sqrt(6/(fan_in+fan_out)), +sqrt(6/(fan_in+fan_out)))`.
pub fn xavier_uniform(dims: &[usize], fan_in: usize, fan_out: usize, seed: u64) -> Tensor {
    let bound = (6.0 / (fan_in + fan_out) as f32).sqrt();
    uniform(dims, -bound, bound, seed)
}

/// Kaiming/He normal initialization: `N(0, sqrt(2/fan_in))`, suited to ReLU
/// networks.
pub fn kaiming_normal(dims: &[usize], fan_in: usize, seed: u64) -> Tensor {
    normal(dims, 0.0, (2.0 / fan_in as f32).sqrt(), seed)
}

/// Samples one value from the standard normal distribution using the
/// Box–Muller transform.
pub fn sample_standard_normal(rng: &mut StdRng) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

/// A long-tailed distribution: mostly `N(0, sigma)` but with probability
/// `tail_prob` the sample is scaled by `tail_scale`. This reproduces the
/// long-tail gradient distribution the paper's §III.B discusses (the reason
/// E²BQM exists).
pub fn long_tailed(
    dims: &[usize],
    sigma: f32,
    tail_prob: f32,
    tail_scale: f32,
    seed: u64,
) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    Tensor::from_fn(dims, |_| {
        let x = sigma * sample_standard_normal(&mut rng);
        if rng.gen::<f32>() < tail_prob {
            x * tail_scale
        } else {
            x
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_respects_bounds_and_seed() {
        let a = uniform(&[100], -1.0, 1.0, 7);
        let b = uniform(&[100], -1.0, 1.0, 7);
        let c = uniform(&[100], -1.0, 1.0, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.data().iter().all(|&x| (-1.0..1.0).contains(&x)));
    }

    #[test]
    fn normal_statistics() {
        let t = normal(&[10_000], 2.0, 0.5, 3);
        let mean = t.mean();
        let var = t.map(|x| (x - mean) * (x - mean)).mean();
        assert!((mean - 2.0).abs() < 0.05, "mean={mean}");
        assert!((var - 0.25).abs() < 0.05, "var={var}");
    }

    #[test]
    fn xavier_bound() {
        let t = xavier_uniform(&[64, 64], 64, 64, 1);
        let bound = (6.0 / 128.0f32).sqrt();
        assert!(t.max_abs() <= bound);
        assert!(t.max_abs() > bound * 0.5);
    }

    #[test]
    fn kaiming_scale() {
        let t = kaiming_normal(&[10_000], 100, 5);
        let std = (t.sum_sq() / t.len() as f32).sqrt();
        let expect = (2.0 / 100.0f32).sqrt();
        assert!((std - expect).abs() < 0.02 * expect * 10.0);
    }

    #[test]
    fn long_tailed_has_outliers() {
        let t = long_tailed(&[10_000], 1.0, 0.01, 50.0, 11);
        // The bulk should be within ~5 sigma; the tail far outside.
        let bulk = t.data().iter().filter(|x| x.abs() < 5.0).count();
        let tail = t.data().iter().filter(|x| x.abs() > 10.0).count();
        assert!(bulk > 9_000);
        assert!(tail > 10);
    }
}
