//! Shapes and row-major stride computation.

use crate::error::TensorError;
use std::fmt;

/// The shape of a dense, row-major tensor.
///
/// A `Shape` owns its dimension list and knows how to convert between
/// multi-dimensional indices and flat offsets.
///
/// # Examples
///
/// ```
/// use cq_tensor::Shape;
///
/// let s = Shape::new(&[2, 3, 4]);
/// assert_eq!(s.len(), 24);
/// assert_eq!(s.rank(), 3);
/// assert_eq!(s.strides(), vec![12, 4, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from a dimension slice.
    pub fn new(dims: &[usize]) -> Self {
        Shape {
            dims: dims.to_vec(),
        }
    }

    /// A rank-0 (scalar) shape.
    pub fn scalar() -> Self {
        Shape { dims: Vec::new() }
    }

    /// The dimension list.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// The number of dimensions.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Total number of elements (product of dims; 1 for scalars).
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// Whether the shape contains no elements (some dim is zero).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Size of dimension `axis`.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= rank()`.
    pub fn dim(&self, axis: usize) -> usize {
        self.dims[axis]
    }

    /// Row-major strides for this shape.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Converts a multi-dimensional index to a flat row-major offset.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if the index rank differs
    /// from the shape rank or any coordinate exceeds its dimension.
    pub fn offset(&self, index: &[usize]) -> Result<usize, TensorError> {
        if index.len() != self.dims.len() || index.iter().zip(&self.dims).any(|(&i, &d)| i >= d) {
            return Err(TensorError::IndexOutOfBounds {
                index: index.to_vec(),
                shape: self.dims.clone(),
            });
        }
        Ok(index.iter().zip(self.strides()).map(|(&i, s)| i * s).sum())
    }

    /// Converts a flat offset back to a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if `offset >= len()`.
    pub fn unravel(&self, offset: usize) -> Result<Vec<usize>, TensorError> {
        if offset >= self.len() {
            return Err(TensorError::IndexOutOfBounds {
                index: vec![offset],
                shape: self.dims.clone(),
            });
        }
        let mut rem = offset;
        let mut index = vec![0; self.dims.len()];
        for (i, s) in self.strides().iter().enumerate() {
            index[i] = rem / s;
            rem %= s;
        }
        Ok(index)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape { dims }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_row_major() {
        assert_eq!(Shape::new(&[2, 3, 4]).strides(), vec![12, 4, 1]);
        assert_eq!(Shape::new(&[5]).strides(), vec![1]);
        assert_eq!(Shape::scalar().strides(), Vec::<usize>::new());
    }

    #[test]
    fn offset_roundtrip() {
        let s = Shape::new(&[3, 4, 5]);
        for flat in 0..s.len() {
            let idx = s.unravel(flat).unwrap();
            assert_eq!(s.offset(&idx).unwrap(), flat);
        }
    }

    #[test]
    fn offset_rejects_out_of_bounds() {
        let s = Shape::new(&[2, 2]);
        assert!(s.offset(&[2, 0]).is_err());
        assert!(s.offset(&[0]).is_err());
        assert!(s.unravel(4).is_err());
    }

    #[test]
    fn scalar_shape() {
        let s = Shape::scalar();
        assert_eq!(s.rank(), 0);
        assert_eq!(s.len(), 1);
        assert_eq!(s.offset(&[]).unwrap(), 0);
    }

    #[test]
    fn empty_dim_shape() {
        let s = Shape::new(&[0, 3]);
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn display_and_from() {
        let s: Shape = vec![2, 3].into();
        assert_eq!(s.to_string(), "[2, 3]");
        let s2: Shape = [2usize, 3].as_slice().into();
        assert_eq!(s, s2);
    }
}
