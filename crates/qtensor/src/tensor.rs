//! The dense `f32` tensor type.

use crate::error::TensorError;
use crate::shape::Shape;
use std::fmt;

/// A dense, row-major, owned `f32` tensor.
///
/// `Tensor` is the numeric substrate of the Cambricon-Q reproduction. It is
/// deliberately simple: owned contiguous storage, row-major layout, and a
/// small set of carefully tested kernels (see [`crate::ops`]). Quantized
/// representations live in the `cq-quant` crate and convert to and from this
/// type.
///
/// # Examples
///
/// ```
/// use cq_tensor::Tensor;
///
/// let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
/// assert_eq!(t.get(&[1, 0])?, 3.0);
/// let doubled = t.map(|x| x * 2.0);
/// assert_eq!(doubled.data(), &[2.0, 4.0, 6.0, 8.0]);
/// # Ok::<(), cq_tensor::TensorError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor of zeros with the given shape.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        let data = vec![0.0; shape.len()];
        Tensor { shape, data }
    }

    /// Creates a tensor of ones with the given shape.
    pub fn ones(dims: &[usize]) -> Self {
        Tensor::full(dims, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        let data = vec![value; shape.len()];
        Tensor { shape, data }
    }

    /// Creates a rank-0 tensor holding a single scalar.
    pub fn scalar(value: f32) -> Self {
        Tensor {
            shape: Shape::scalar(),
            data: vec![value],
        }
    }

    /// Creates a tensor from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidReshape`] if `data.len()` does not match
    /// the product of `dims`.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Result<Self, TensorError> {
        let shape = Shape::new(dims);
        if shape.len() != data.len() {
            return Err(TensorError::InvalidReshape {
                from: data.len(),
                to: dims.to_vec(),
            });
        }
        Ok(Tensor { shape, data })
    }

    /// Creates a tensor by evaluating `f` at every flat index.
    pub fn from_fn(dims: &[usize], mut f: impl FnMut(usize) -> f32) -> Self {
        let shape = Shape::new(dims);
        let data = (0..shape.len()).map(&mut f).collect();
        Tensor { shape, data }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The dimension list (shorthand for `shape().dims()`).
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Rank (number of dimensions).
    pub fn rank(&self) -> usize {
        self.shape.rank()
    }

    /// Immutable view of the flat row-major data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the flat row-major data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning the flat data buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Reads the element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] for invalid indices.
    pub fn get(&self, index: &[usize]) -> Result<f32, TensorError> {
        Ok(self.data[self.shape.offset(index)?])
    }

    /// Writes the element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] for invalid indices.
    pub fn set(&mut self, index: &[usize], value: f32) -> Result<(), TensorError> {
        let off = self.shape.offset(index)?;
        self.data[off] = value;
        Ok(())
    }

    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidReshape`] if element counts differ.
    pub fn reshape(&self, dims: &[usize]) -> Result<Tensor, TensorError> {
        let shape = Shape::new(dims);
        if shape.len() != self.data.len() {
            return Err(TensorError::InvalidReshape {
                from: self.data.len(),
                to: dims.to_vec(),
            });
        }
        Ok(Tensor {
            shape,
            data: self.data.clone(),
        })
    }

    /// Applies `f` elementwise, producing a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` elementwise in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Combines two tensors elementwise.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn zip_map(
        &self,
        other: &Tensor,
        f: impl Fn(f32, f32) -> f32,
    ) -> Result<Tensor, TensorError> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                lhs: self.dims().to_vec(),
                rhs: other.dims().to_vec(),
                op: "zip_map",
            });
        }
        Ok(Tensor {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        })
    }

    /// Elementwise addition.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn add(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        self.zip_map(other, |a, b| a + b)
    }

    /// Elementwise subtraction.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn sub(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        self.zip_map(other, |a, b| a - b)
    }

    /// Elementwise (Hadamard) multiplication.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn mul(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        self.zip_map(other, |a, b| a * b)
    }

    /// Multiplies every element by a scalar.
    pub fn scale(&self, s: f32) -> Tensor {
        self.map(|x| x * s)
    }

    /// Accumulates `alpha * other` into `self` (`axpy`).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn add_scaled(&mut self, other: &Tensor, alpha: f32) -> Result<(), TensorError> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                lhs: self.dims().to_vec(),
                rhs: other.dims().to_vec(),
                op: "add_scaled",
            });
        }
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Arithmetic mean of all elements (0.0 for empty tensors).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum absolute value of all elements (0.0 for empty tensors).
    ///
    /// This is the statistic θ = max|X| that every statistic-based quantized
    /// training algorithm in the paper relies on (Table III).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
    }

    /// Verifies every element is finite, reporting the first corruption as
    /// [`TensorError::NonFinite`]. Fault-injection paths use this to turn
    /// silent data corruption into a typed, locatable error.
    pub fn check_finite(&self) -> Result<(), TensorError> {
        match self.data.iter().position(|v| !v.is_finite()) {
            None => Ok(()),
            Some(index) => Err(TensorError::NonFinite { index }),
        }
    }

    /// Minimum element (`+inf` for empty tensors).
    pub fn min(&self) -> f32 {
        self.data.iter().fold(f32::INFINITY, |m, &x| m.min(x))
    }

    /// Maximum element (`-inf` for empty tensors).
    pub fn max(&self) -> f32 {
        self.data.iter().fold(f32::NEG_INFINITY, |m, &x| m.max(x))
    }

    /// Sum of squared elements.
    pub fn sum_sq(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum()
    }

    /// Euclidean (L2) norm.
    pub fn norm(&self) -> f32 {
        self.sum_sq().sqrt()
    }

    /// Rectilinear (L1) distance to another tensor: Σ|aᵢ − bᵢ|.
    ///
    /// Used by E²BQM's rectilinear error estimator (paper §III.B).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn l1_distance(&self, other: &Tensor) -> Result<f32, TensorError> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                lhs: self.dims().to_vec(),
                rhs: other.dims().to_vec(),
                op: "l1_distance",
            });
        }
        Ok(self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| (a - b).abs())
            .sum())
    }

    /// Cosine similarity with another tensor (1.0 when both are zero).
    ///
    /// Used by Zhu et al.'s direction-sensitive gradient clipping and by the
    /// cosine error estimator in E²BQM.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn cosine_similarity(&self, other: &Tensor) -> Result<f32, TensorError> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                lhs: self.dims().to_vec(),
                rhs: other.dims().to_vec(),
                op: "cosine_similarity",
            });
        }
        let dot: f32 = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| a * b)
            .sum();
        let na = self.norm();
        let nb = other.norm();
        if na == 0.0 && nb == 0.0 {
            Ok(1.0)
        } else if na == 0.0 || nb == 0.0 {
            Ok(0.0)
        } else {
            Ok(dot / (na * nb))
        }
    }

    /// 2-D transpose.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] if the tensor is not rank 2.
    pub fn transpose(&self) -> Result<Tensor, TensorError> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: self.rank(),
                op: "transpose",
            });
        }
        let (r, c) = (self.dims()[0], self.dims()[1]);
        let mut out = Tensor::zeros(&[c, r]);
        for i in 0..r {
            for j in 0..c {
                out.data[j * r + i] = self.data[i * c + j];
            }
        }
        Ok(out)
    }

    /// Extracts the contiguous slice `[start, start + len)` of the flat data
    /// as a rank-1 tensor. This is how LDQ carves a tensor into blocks.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if the range exceeds the
    /// data length.
    pub fn slice_flat(&self, start: usize, len: usize) -> Result<Tensor, TensorError> {
        if start + len > self.data.len() {
            return Err(TensorError::IndexOutOfBounds {
                index: vec![start + len],
                shape: self.dims().to_vec(),
            });
        }
        Ok(Tensor {
            shape: Shape::new(&[len]),
            data: self.data[start..start + len].to_vec(),
        })
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{} {:?}", self.shape, &self.data)
    }
}

impl FromIterator<f32> for Tensor {
    /// Collects an iterator into a rank-1 tensor.
    fn from_iter<I: IntoIterator<Item = f32>>(iter: I) -> Self {
        let data: Vec<f32> = iter.into_iter().collect();
        let shape = Shape::new(&[data.len()]);
        Tensor { shape, data }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        assert_eq!(t.get(&[0, 0]).unwrap(), 1.0);
        assert_eq!(t.get(&[1, 2]).unwrap(), 6.0);
        assert_eq!(t.len(), 6);
        assert_eq!(t.rank(), 2);
    }

    #[test]
    fn from_vec_rejects_bad_len() {
        assert!(Tensor::from_vec(vec![1.0; 5], &[2, 3]).is_err());
    }

    #[test]
    fn zeros_ones_full() {
        assert_eq!(Tensor::zeros(&[3]).data(), &[0.0, 0.0, 0.0]);
        assert_eq!(Tensor::ones(&[2]).data(), &[1.0, 1.0]);
        assert_eq!(Tensor::full(&[2], 7.5).data(), &[7.5, 7.5]);
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![10.0, 20.0], &[2]).unwrap();
        assert_eq!(a.add(&b).unwrap().data(), &[11.0, 22.0]);
        assert_eq!(b.sub(&a).unwrap().data(), &[9.0, 18.0]);
        assert_eq!(a.mul(&b).unwrap().data(), &[10.0, 40.0]);
        assert_eq!(a.scale(3.0).data(), &[3.0, 6.0]);
    }

    #[test]
    fn elementwise_shape_mismatch() {
        let a = Tensor::zeros(&[2]);
        let b = Tensor::zeros(&[3]);
        assert!(a.add(&b).is_err());
    }

    #[test]
    fn add_scaled_axpy() {
        let mut a = Tensor::from_vec(vec![1.0, 1.0], &[2]).unwrap();
        let g = Tensor::from_vec(vec![2.0, 4.0], &[2]).unwrap();
        a.add_scaled(&g, -0.5).unwrap();
        assert_eq!(a.data(), &[0.0, -1.0]);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(vec![-3.0, 1.0, 2.0], &[3]).unwrap();
        assert_eq!(t.sum(), 0.0);
        assert_eq!(t.mean(), 0.0);
        assert_eq!(t.max_abs(), 3.0);
        assert_eq!(t.min(), -3.0);
        assert_eq!(t.max(), 2.0);
        assert_eq!(t.sum_sq(), 14.0);
    }

    #[test]
    fn max_abs_of_empty_is_zero() {
        assert_eq!(Tensor::zeros(&[0]).max_abs(), 0.0);
    }

    #[test]
    fn l1_and_cosine() {
        let a = Tensor::from_vec(vec![1.0, 0.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![0.0, 1.0], &[2]).unwrap();
        assert_eq!(a.l1_distance(&b).unwrap(), 2.0);
        assert!((a.cosine_similarity(&b).unwrap()).abs() < 1e-6);
        assert!((a.cosine_similarity(&a).unwrap() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_zero_vectors() {
        let z = Tensor::zeros(&[2]);
        let a = Tensor::from_vec(vec![1.0, 0.0], &[2]).unwrap();
        assert_eq!(z.cosine_similarity(&z).unwrap(), 1.0);
        assert_eq!(z.cosine_similarity(&a).unwrap(), 0.0);
    }

    #[test]
    fn transpose_2d() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let tt = t.transpose().unwrap();
        assert_eq!(tt.dims(), &[3, 2]);
        assert_eq!(tt.get(&[2, 1]).unwrap(), 6.0);
        assert_eq!(tt.get(&[0, 1]).unwrap(), 4.0);
    }

    #[test]
    fn transpose_requires_rank2() {
        assert!(Tensor::zeros(&[2, 2, 2]).transpose().is_err());
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[4]).unwrap();
        let r = t.reshape(&[2, 2]).unwrap();
        assert_eq!(r.get(&[1, 1]).unwrap(), 4.0);
        assert!(t.reshape(&[3]).is_err());
    }

    #[test]
    fn slice_flat_blocks() {
        let t = Tensor::from_vec((0..10).map(|i| i as f32).collect(), &[10]).unwrap();
        let b = t.slice_flat(4, 3).unwrap();
        assert_eq!(b.data(), &[4.0, 5.0, 6.0]);
        assert!(t.slice_flat(8, 3).is_err());
    }

    #[test]
    fn from_iterator() {
        let t: Tensor = (0..4).map(|i| i as f32).collect();
        assert_eq!(t.dims(), &[4]);
        assert_eq!(t.data(), &[0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn scalar_tensor() {
        let s = Tensor::scalar(3.5);
        assert_eq!(s.rank(), 0);
        assert_eq!(s.get(&[]).unwrap(), 3.5);
    }

    #[test]
    fn map_inplace() {
        let mut t = Tensor::from_vec(vec![1.0, -2.0], &[2]).unwrap();
        t.map_inplace(|x| x.max(0.0));
        assert_eq!(t.data(), &[1.0, 0.0]);
    }
}
