//! Compute-backend selection for the dense kernels in [`crate::ops`].
//!
//! Two backends exist:
//!
//! * [`Backend::Naive`] — the original single-threaded scalar triple
//!   loops, kept as the bit-accurate reference.
//! * [`Backend::Fast`] — `cq-par`'s three-level blocked GEMM (SIMD
//!   micro-kernel under KC/MC/NC panel blocking, selected by `CQ_SIMD` /
//!   `CQ_TUNE_FILE` — see [`fast_path_info`]) and im2col convolution,
//!   parallelized over the global worker pool.
//!
//! Both accumulate every output element over the reduction dimension in
//! the same (ascending) order. The bit-identity contract belongs to the
//! Naive path alone: Fast's AVX2 micro-kernels use fused multiply-add,
//! which skips one rounding per step and shifts results within the
//! tolerance enforced by the `backend_parity` test suite
//! (`k · amax · bmax · 8ε`); Fast's scalar micro-kernel rounds like the
//! naive loops.
//!
//! The process-wide default is [`Backend::Fast`], overridable by the
//! `CQ_BACKEND` environment variable (`naive` or `fast`) at startup and by
//! [`set_default_backend`] at run time. Any other `CQ_BACKEND` value
//! aborts with a diagnostic rather than silently falling back. Worker
//! count comes from `CQ_THREADS` (see [`cq_par::Pool::global`]).

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Which implementation the dense kernels run on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Backend {
    /// Reference scalar loops: single-threaded, unblocked.
    Naive,
    /// Tiled, pooled kernels from `cq-par` (the default).
    #[default]
    Fast,
}

impl Backend {
    /// Parses `"naive"` / `"fast"` (case-insensitive).
    pub fn parse(s: &str) -> Option<Backend> {
        match s.trim().to_ascii_lowercase().as_str() {
            "naive" => Some(Backend::Naive),
            "fast" => Some(Backend::Fast),
            _ => None,
        }
    }

    /// Short display name (`"naive"` / `"fast"`).
    pub fn name(&self) -> &'static str {
        match self {
            Backend::Naive => "naive",
            Backend::Fast => "fast",
        }
    }
}

/// Run-time override set through [`set_default_backend`]: 0 = unset,
/// 1 = naive, 2 = fast.
static OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// Resolves a raw `CQ_BACKEND` value: `None`/empty means "unset, use the
/// default"; anything else must parse or the run aborts. A typo like
/// `CQ_BACKEND=bogus` used to silently select [`Backend::Fast`], which
/// makes A/B comparisons lie — fail loudly instead.
fn resolve_env_backend(raw: Option<&str>) -> Result<Backend, String> {
    match raw {
        None => Ok(Backend::default()),
        Some(v) if v.trim().is_empty() => Ok(Backend::default()),
        Some(v) => Backend::parse(v).ok_or_else(|| {
            format!("invalid CQ_BACKEND value {v:?}: expected \"naive\" or \"fast\"")
        }),
    }
}

fn env_default() -> Backend {
    static ENV: OnceLock<Backend> = OnceLock::new();
    *ENV.get_or_init(|| {
        let raw = std::env::var("CQ_BACKEND").ok();
        match resolve_env_backend(raw.as_deref()) {
            Ok(b) => b,
            Err(msg) => panic!("{msg}"),
        }
    })
}

/// The backend used by the plain `ops::*` entry points.
///
/// Resolution order: [`set_default_backend`] override, then the
/// `CQ_BACKEND` environment variable, then [`Backend::Fast`].
pub fn default_backend() -> Backend {
    match OVERRIDE.load(Ordering::Relaxed) {
        1 => Backend::Naive,
        2 => Backend::Fast,
        _ => env_default(),
    }
}

/// Overrides the process-wide default backend (e.g. for A/B timing runs).
pub fn set_default_backend(backend: Backend) {
    let v = match backend {
        Backend::Naive => 1,
        Backend::Fast => 2,
    };
    OVERRIDE.store(v, Ordering::Relaxed);
}

/// One-line description of what the Fast backend resolves to on this
/// process: SIMD micro-kernel level and blocking plan (e.g.
/// `"avx2 6x16 kc=512 mc=144 nc=2048"`). Forces plan resolution, so a
/// bad `CQ_SIMD`/`CQ_TUNE_FILE` aborts here rather than mid-GEMM —
/// bench and experiment binaries print this up front for provenance.
pub fn fast_path_info() -> String {
    cq_par::describe_active_plan()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_both_names() {
        assert_eq!(Backend::parse("naive"), Some(Backend::Naive));
        assert_eq!(Backend::parse(" Fast "), Some(Backend::Fast));
        assert_eq!(Backend::parse("gpu"), None);
        assert_eq!(Backend::Naive.name(), "naive");
        assert_eq!(Backend::Fast.name(), "fast");
    }

    #[test]
    fn env_resolution_rejects_unknown_values() {
        assert_eq!(resolve_env_backend(None), Ok(Backend::Fast));
        assert_eq!(resolve_env_backend(Some("")), Ok(Backend::Fast));
        assert_eq!(resolve_env_backend(Some("  ")), Ok(Backend::Fast));
        assert_eq!(resolve_env_backend(Some("naive")), Ok(Backend::Naive));
        assert_eq!(resolve_env_backend(Some(" FAST ")), Ok(Backend::Fast));
        let err = resolve_env_backend(Some("bogus")).unwrap_err();
        assert!(err.contains("invalid CQ_BACKEND"), "{err}");
        assert!(err.contains("bogus"), "{err}");
        assert!(err.contains("naive"), "{err}");
    }

    #[test]
    fn override_round_trips() {
        let before = default_backend();
        set_default_backend(Backend::Naive);
        assert_eq!(default_backend(), Backend::Naive);
        set_default_backend(Backend::Fast);
        assert_eq!(default_backend(), Backend::Fast);
        set_default_backend(before);
    }
}
