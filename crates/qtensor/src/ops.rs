//! Dense compute kernels: matrix multiply, 2-D convolution, pooling.
//!
//! These are the functional (bit-accurate) counterparts of the operations
//! the Cambricon-Q PE array executes (`MM`, `CONV`, vector ops in Table V of
//! the paper). The cycle-level models in `cq-accel` charge time and energy
//! for them; this module computes the actual values so training runs produce
//! real numbers.

use crate::backend::{default_backend, Backend};
use crate::error::TensorError;
use crate::tensor::Tensor;
use cq_par::Pool;

/// Hyper-parameters of a 2-D convolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2dParams {
    /// Stride in both spatial dimensions.
    pub stride: usize,
    /// Zero padding added on every spatial border.
    pub padding: usize,
}

impl Default for Conv2dParams {
    fn default() -> Self {
        Conv2dParams {
            stride: 1,
            padding: 0,
        }
    }
}

impl Conv2dParams {
    /// Creates parameters with the given stride and padding.
    ///
    /// # Examples
    ///
    /// ```
    /// use cq_tensor::ops::Conv2dParams;
    /// let p = Conv2dParams::new(2, 1);
    /// assert_eq!(p.output_dim(8, 3), 4);
    /// ```
    pub fn new(stride: usize, padding: usize) -> Self {
        Conv2dParams { stride, padding }
    }

    /// Output spatial size for an input size and kernel size.
    pub fn output_dim(&self, input: usize, kernel: usize) -> usize {
        (input + 2 * self.padding).saturating_sub(kernel) / self.stride + 1
    }
}

/// Matrix multiply: `a [m,k] × b [k,n] → [m,n]`.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] if either input is not rank 2 and
/// [`TensorError::ShapeMismatch`] if inner dimensions disagree.
///
/// # Examples
///
/// ```
/// use cq_tensor::{Tensor, ops};
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
/// let i = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2])?;
/// assert_eq!(ops::matmul(&a, &i)?, a);
/// # Ok::<(), cq_tensor::TensorError>(())
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    matmul_with(default_backend(), a, b)
}

/// [`matmul`] on an explicit [`Backend`].
///
/// # Errors
///
/// Same as [`matmul`].
pub fn matmul_with(backend: Backend, a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    check_rank2(a, "matmul")?;
    check_rank2(b, "matmul")?;
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let (k2, n) = (b.dims()[0], b.dims()[1]);
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
            op: "matmul",
        });
    }
    let mut out = Tensor::zeros(&[m, n]);
    let (ad, bd) = (a.data(), b.data());
    let od = out.data_mut();
    match backend {
        Backend::Fast => cq_par::gemm(m, k, n, ad, bd, od, Pool::global()),
        Backend::Naive => {
            // No zero-skip: `0·NaN` must stay NaN so non-finite operands
            // surface through TensorError::NonFinite checks downstream.
            for i in 0..m {
                for p in 0..k {
                    let av = ad[i * k + p];
                    let brow = &bd[p * n..(p + 1) * n];
                    let orow = &mut od[i * n..(i + 1) * n];
                    for (o, &bv) in orow.iter_mut().zip(brow) {
                        *o += av * bv;
                    }
                }
            }
        }
    }
    Ok(out)
}

/// Matrix multiply with the left operand transposed: `aᵀ [k,m] × b [k,n] → [m,n]`.
///
/// Equivalent to `matmul(&a.transpose()?, b)` without materializing the
/// transpose; used for the weight-gradient pass `ΔW = Iᵀ·δ`.
///
/// # Errors
///
/// Same as [`matmul`].
pub fn matmul_at(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    matmul_at_with(default_backend(), a, b)
}

/// [`matmul_at`] on an explicit [`Backend`].
///
/// # Errors
///
/// Same as [`matmul`].
pub fn matmul_at_with(backend: Backend, a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    check_rank2(a, "matmul_at")?;
    check_rank2(b, "matmul_at")?;
    let (k, m) = (a.dims()[0], a.dims()[1]);
    let (k2, n) = (b.dims()[0], b.dims()[1]);
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
            op: "matmul_at",
        });
    }
    let mut out = Tensor::zeros(&[m, n]);
    let (ad, bd) = (a.data(), b.data());
    let od = out.data_mut();
    match backend {
        Backend::Fast => cq_par::gemm_at(m, k, n, ad, bd, od, Pool::global()),
        Backend::Naive => {
            // No zero-skip (see matmul_with): NaN operands must propagate.
            for p in 0..k {
                let arow = &ad[p * m..(p + 1) * m];
                let brow = &bd[p * n..(p + 1) * n];
                for (i, &av) in arow.iter().enumerate() {
                    let orow = &mut od[i * n..(i + 1) * n];
                    for (o, &bv) in orow.iter_mut().zip(brow) {
                        *o += av * bv;
                    }
                }
            }
        }
    }
    Ok(out)
}

/// Matrix multiply with the right operand transposed: `a [m,k] × bᵀ [n,k] → [m,n]`.
///
/// Used for the neuron-gradient pass `δˡ = δˡ⁺¹·Wᵀ`.
///
/// # Errors
///
/// Same as [`matmul`].
pub fn matmul_bt(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    matmul_bt_with(default_backend(), a, b)
}

/// [`matmul_bt`] on an explicit [`Backend`].
///
/// # Errors
///
/// Same as [`matmul`].
pub fn matmul_bt_with(backend: Backend, a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    check_rank2(a, "matmul_bt")?;
    check_rank2(b, "matmul_bt")?;
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let (n, k2) = (b.dims()[0], b.dims()[1]);
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
            op: "matmul_bt",
        });
    }
    let mut out = Tensor::zeros(&[m, n]);
    let (ad, bd) = (a.data(), b.data());
    let od = out.data_mut();
    match backend {
        Backend::Fast => cq_par::gemm_bt(m, k, n, ad, bd, od, Pool::global()),
        Backend::Naive => {
            for i in 0..m {
                let arow = &ad[i * k..(i + 1) * k];
                for j in 0..n {
                    let brow = &bd[j * k..(j + 1) * k];
                    od[i * n + j] = arow.iter().zip(brow).map(|(&x, &y)| x * y).sum();
                }
            }
        }
    }
    Ok(out)
}

fn check_rank2(t: &Tensor, op: &'static str) -> Result<(), TensorError> {
    if t.rank() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: t.rank(),
            op,
        });
    }
    Ok(())
}

fn check_rank4(t: &Tensor, op: &'static str) -> Result<(), TensorError> {
    if t.rank() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: t.rank(),
            op,
        });
    }
    Ok(())
}

/// Valid kernel-offset range `[lo, hi)` for output position `o`: the `k`
/// whose input coordinate `o*s + k - p` lands inside `[0, input)`.
/// Hoisting this out of the per-pixel loops removes the bounds branch
/// from the naive kernels' innermost iterations.
fn valid_k_range(o: usize, s: usize, p: usize, input: usize, kdim: usize) -> (usize, usize) {
    let base = o * s; // input coord = base + k - p
    let lo = p.saturating_sub(base).min(kdim);
    let hi = (input + p).saturating_sub(base).min(kdim).max(lo);
    (lo, hi)
}

/// Per-output-position valid kernel ranges along one spatial axis.
fn valid_k_ranges(
    out_dim: usize,
    s: usize,
    p: usize,
    input: usize,
    kdim: usize,
) -> Vec<(usize, usize)> {
    (0..out_dim)
        .map(|o| valid_k_range(o, s, p, input, kdim))
        .collect()
}

/// Bundles validated dimensions into the `cq-par` shape descriptor.
#[allow(clippy::too_many_arguments)]
fn par_shape(
    n: usize,
    c: usize,
    h: usize,
    w: usize,
    f: usize,
    kh: usize,
    kw: usize,
    params: Conv2dParams,
) -> cq_par::conv::ConvShape {
    cq_par::conv::ConvShape {
        n,
        c,
        h,
        w,
        f,
        kh,
        kw,
        stride: params.stride,
        padding: params.padding,
        oh: params.output_dim(h, kh),
        ow: params.output_dim(w, kw),
    }
}

/// 2-D convolution forward pass.
///
/// `input` is `[N, C, H, W]`, `weight` is `[F, C, KH, KW]`; output is
/// `[N, F, OH, OW]` with `OH/OW` given by [`Conv2dParams::output_dim`].
///
/// # Errors
///
/// Returns a rank or shape error if the operands do not describe a valid
/// convolution.
pub fn conv2d(
    input: &Tensor,
    weight: &Tensor,
    params: Conv2dParams,
) -> Result<Tensor, TensorError> {
    conv2d_with(default_backend(), input, weight, params)
}

/// [`conv2d`] on an explicit [`Backend`].
///
/// # Errors
///
/// Same as [`conv2d`].
pub fn conv2d_with(
    backend: Backend,
    input: &Tensor,
    weight: &Tensor,
    params: Conv2dParams,
) -> Result<Tensor, TensorError> {
    check_rank4(input, "conv2d")?;
    check_rank4(weight, "conv2d")?;
    let [n, c, h, w] = four(input);
    let [f, cw, kh, kw] = four(weight);
    if c != cw {
        return Err(TensorError::ShapeMismatch {
            lhs: input.dims().to_vec(),
            rhs: weight.dims().to_vec(),
            op: "conv2d",
        });
    }
    let oh = params.output_dim(h, kh);
    let ow = params.output_dim(w, kw);
    let mut out = Tensor::zeros(&[n, f, oh, ow]);
    if backend == Backend::Fast {
        let shape = par_shape(n, c, h, w, f, kh, kw, params);
        cq_par::conv::conv2d(
            &shape,
            input.data(),
            weight.data(),
            out.data_mut(),
            Pool::global(),
        );
        return Ok(out);
    }
    let id = input.data();
    let wd = weight.data();
    let od = out.data_mut();
    let (s, p) = (params.stride, params.padding);
    let kyr = valid_k_ranges(oh, s, p, h, kh);
    let kxr = valid_k_ranges(ow, s, p, w, kw);
    for ni in 0..n {
        for fi in 0..f {
            for (oy, &(ky_lo, ky_hi)) in kyr.iter().enumerate() {
                for (ox, &(kx_lo, kx_hi)) in kxr.iter().enumerate() {
                    let mut acc = 0.0f32;
                    for ci in 0..c {
                        for ky in ky_lo..ky_hi {
                            let iy = oy * s + ky - p;
                            for kx in kx_lo..kx_hi {
                                let ix = ox * s + kx - p;
                                let iv = id[((ni * c + ci) * h + iy) * w + ix];
                                let wv = wd[((fi * c + ci) * kh + ky) * kw + kx];
                                acc += iv * wv;
                            }
                        }
                    }
                    od[((ni * f + fi) * oh + oy) * ow + ox] = acc;
                }
            }
        }
    }
    Ok(out)
}

/// Gradient of [`conv2d`] w.r.t. its input (the "computing gradients on
/// neurons" stage, ① in Fig. 1 of the paper).
///
/// # Errors
///
/// Returns a rank or shape error on malformed operands.
pub fn conv2d_grad_input(
    grad_output: &Tensor,
    weight: &Tensor,
    input_dims: &[usize],
    params: Conv2dParams,
) -> Result<Tensor, TensorError> {
    conv2d_grad_input_with(default_backend(), grad_output, weight, input_dims, params)
}

/// [`conv2d_grad_input`] on an explicit [`Backend`].
///
/// # Errors
///
/// Same as [`conv2d_grad_input`].
pub fn conv2d_grad_input_with(
    backend: Backend,
    grad_output: &Tensor,
    weight: &Tensor,
    input_dims: &[usize],
    params: Conv2dParams,
) -> Result<Tensor, TensorError> {
    check_rank4(grad_output, "conv2d_grad_input")?;
    check_rank4(weight, "conv2d_grad_input")?;
    if input_dims.len() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: input_dims.len(),
            op: "conv2d_grad_input",
        });
    }
    let [n, f, oh, ow] = four(grad_output);
    let [fw, c, kh, kw] = four(weight);
    let (h, w) = (input_dims[2], input_dims[3]);
    if f != fw || input_dims[0] != n || input_dims[1] != c {
        return Err(TensorError::ShapeMismatch {
            lhs: grad_output.dims().to_vec(),
            rhs: weight.dims().to_vec(),
            op: "conv2d_grad_input",
        });
    }
    let mut gin = Tensor::zeros(input_dims);
    if backend == Backend::Fast {
        let shape = par_shape(n, c, h, w, f, kh, kw, params);
        cq_par::conv::conv2d_grad_input(
            &shape,
            grad_output.data(),
            weight.data(),
            gin.data_mut(),
            Pool::global(),
        );
        return Ok(gin);
    }
    let god = grad_output.data();
    let wd = weight.data();
    let gid = gin.data_mut();
    let (s, p) = (params.stride, params.padding);
    let kyr = valid_k_ranges(oh, s, p, h, kh);
    let kxr = valid_k_ranges(ow, s, p, w, kw);
    for ni in 0..n {
        for fi in 0..f {
            for (oy, &(ky_lo, ky_hi)) in kyr.iter().enumerate() {
                for (ox, &(kx_lo, kx_hi)) in kxr.iter().enumerate() {
                    // No zero-skip on `g`: a zero gradient times a NaN
                    // weight must still poison the result.
                    let g = god[((ni * f + fi) * oh + oy) * ow + ox];
                    for ci in 0..c {
                        for ky in ky_lo..ky_hi {
                            let iy = oy * s + ky - p;
                            for kx in kx_lo..kx_hi {
                                let ix = ox * s + kx - p;
                                gid[((ni * c + ci) * h + iy) * w + ix] +=
                                    g * wd[((fi * c + ci) * kh + ky) * kw + kx];
                            }
                        }
                    }
                }
            }
        }
    }
    Ok(gin)
}

/// Gradient of [`conv2d`] w.r.t. its weights (the "computing gradients on
/// weights" stage, ② in Fig. 1 of the paper).
///
/// # Errors
///
/// Returns a rank or shape error on malformed operands.
pub fn conv2d_grad_weight(
    input: &Tensor,
    grad_output: &Tensor,
    weight_dims: &[usize],
    params: Conv2dParams,
) -> Result<Tensor, TensorError> {
    conv2d_grad_weight_with(default_backend(), input, grad_output, weight_dims, params)
}

/// [`conv2d_grad_weight`] on an explicit [`Backend`].
///
/// # Errors
///
/// Same as [`conv2d_grad_weight`].
pub fn conv2d_grad_weight_with(
    backend: Backend,
    input: &Tensor,
    grad_output: &Tensor,
    weight_dims: &[usize],
    params: Conv2dParams,
) -> Result<Tensor, TensorError> {
    check_rank4(input, "conv2d_grad_weight")?;
    check_rank4(grad_output, "conv2d_grad_weight")?;
    if weight_dims.len() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: weight_dims.len(),
            op: "conv2d_grad_weight",
        });
    }
    let [n, c, h, w] = four(input);
    let [n2, f, oh, ow] = four(grad_output);
    let (kh, kw) = (weight_dims[2], weight_dims[3]);
    if n != n2 || weight_dims[0] != f || weight_dims[1] != c {
        return Err(TensorError::ShapeMismatch {
            lhs: input.dims().to_vec(),
            rhs: grad_output.dims().to_vec(),
            op: "conv2d_grad_weight",
        });
    }
    let mut gw = Tensor::zeros(weight_dims);
    if backend == Backend::Fast {
        let shape = par_shape(n, c, h, w, f, kh, kw, params);
        cq_par::conv::conv2d_grad_weight(
            &shape,
            input.data(),
            grad_output.data(),
            gw.data_mut(),
            Pool::global(),
        );
        return Ok(gw);
    }
    let id = input.data();
    let god = grad_output.data();
    let gwd = gw.data_mut();
    let (s, p) = (params.stride, params.padding);
    let kyr = valid_k_ranges(oh, s, p, h, kh);
    let kxr = valid_k_ranges(ow, s, p, w, kw);
    for ni in 0..n {
        for fi in 0..f {
            for (oy, &(ky_lo, ky_hi)) in kyr.iter().enumerate() {
                for (ox, &(kx_lo, kx_hi)) in kxr.iter().enumerate() {
                    // No zero-skip on `g` (see conv2d_grad_input_with).
                    let g = god[((ni * f + fi) * oh + oy) * ow + ox];
                    for ci in 0..c {
                        for ky in ky_lo..ky_hi {
                            let iy = oy * s + ky - p;
                            for kx in kx_lo..kx_hi {
                                let ix = ox * s + kx - p;
                                gwd[((fi * c + ci) * kh + ky) * kw + kx] +=
                                    g * id[((ni * c + ci) * h + iy) * w + ix];
                            }
                        }
                    }
                }
            }
        }
    }
    Ok(gw)
}

/// Result of a max-pooling forward pass: the pooled tensor plus the flat
/// argmax index of each output element, needed for the backward pass.
#[derive(Debug, Clone, PartialEq)]
pub struct MaxPoolOutput {
    /// Pooled tensor `[N, C, OH, OW]`.
    pub output: Tensor,
    /// For each output element, the flat index into the input that supplied
    /// the maximum.
    pub argmax: Vec<usize>,
}

/// 2-D max pooling with square window `k` and stride `k` (non-overlapping).
///
/// # Errors
///
/// Returns a rank error for non-4D input or [`TensorError::InvalidArgument`]
/// if `k` is zero or larger than the spatial dims.
pub fn maxpool2d(input: &Tensor, k: usize) -> Result<MaxPoolOutput, TensorError> {
    check_rank4(input, "maxpool2d")?;
    let [n, c, h, w] = four(input);
    if k == 0 || k > h || k > w {
        return Err(TensorError::InvalidArgument(format!(
            "pool window {k} invalid for input {h}x{w}"
        )));
    }
    let (oh, ow) = (h / k, w / k);
    let mut out = Tensor::zeros(&[n, c, oh, ow]);
    let mut argmax = vec![0usize; out.len()];
    let id = input.data();
    let od = out.data_mut();
    for ni in 0..n {
        for ci in 0..c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_idx = 0usize;
                    for ky in 0..k {
                        for kx in 0..k {
                            let idx = ((ni * c + ci) * h + oy * k + ky) * w + ox * k + kx;
                            if id[idx] > best {
                                best = id[idx];
                                best_idx = idx;
                            }
                        }
                    }
                    let oidx = ((ni * c + ci) * oh + oy) * ow + ox;
                    od[oidx] = best;
                    argmax[oidx] = best_idx;
                }
            }
        }
    }
    Ok(MaxPoolOutput {
        output: out,
        argmax,
    })
}

/// Backward pass of [`maxpool2d`]: routes each output gradient to the input
/// position recorded in `argmax`.
///
/// # Errors
///
/// Returns [`TensorError::InvalidArgument`] if `argmax` length differs from
/// `grad_output` length.
pub fn maxpool2d_backward(
    grad_output: &Tensor,
    argmax: &[usize],
    input_dims: &[usize],
) -> Result<Tensor, TensorError> {
    if argmax.len() != grad_output.len() {
        return Err(TensorError::InvalidArgument(format!(
            "argmax len {} != grad_output len {}",
            argmax.len(),
            grad_output.len()
        )));
    }
    let mut gin = Tensor::zeros(input_dims);
    let gid = gin.data_mut();
    for (&src, &g) in argmax.iter().zip(grad_output.data()) {
        gid[src] += g;
    }
    Ok(gin)
}

/// Global average pooling: `[N, C, H, W] → [N, C]`.
///
/// # Errors
///
/// Returns a rank error for non-4D input.
pub fn global_avgpool(input: &Tensor) -> Result<Tensor, TensorError> {
    check_rank4(input, "global_avgpool")?;
    let [n, c, h, w] = four(input);
    let area = (h * w) as f32;
    let mut out = Tensor::zeros(&[n, c]);
    let id = input.data();
    let od = out.data_mut();
    for ni in 0..n {
        for ci in 0..c {
            let base = (ni * c + ci) * h * w;
            od[ni * c + ci] = id[base..base + h * w].iter().sum::<f32>() / area;
        }
    }
    Ok(out)
}

/// Backward pass of [`global_avgpool`].
///
/// # Errors
///
/// Returns a rank error if `grad_output` is not rank 2.
pub fn global_avgpool_backward(
    grad_output: &Tensor,
    input_dims: &[usize],
) -> Result<Tensor, TensorError> {
    check_rank2(grad_output, "global_avgpool_backward")?;
    let (h, w) = (input_dims[2], input_dims[3]);
    let area = (h * w) as f32;
    let mut gin = Tensor::zeros(input_dims);
    let god = grad_output.data();
    let gid = gin.data_mut();
    for (i, chunk) in gid.chunks_mut(h * w).enumerate() {
        let g = god[i] / area;
        for x in chunk {
            *x = g;
        }
    }
    Ok(gin)
}

fn four(t: &Tensor) -> [usize; 4] {
    [t.dims()[0], t.dims()[1], t.dims()[2], t.dims()[3]]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let i = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]).unwrap();
        assert_eq!(matmul(&a, &i).unwrap(), a);
    }

    #[test]
    fn matmul_known() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let b = Tensor::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]).unwrap();
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    /// Regression: the old kernels skipped `a == 0.0` operands, silently
    /// yielding `0` where `0 · NaN` must yield NaN (contradicting the
    /// `TensorError::NonFinite` machinery). Both backends must propagate.
    #[test]
    fn matmul_propagates_nan_through_zero_operand() {
        let a = Tensor::from_vec(vec![0.0, 0.0, 0.0, 0.0], &[2, 2]).unwrap();
        let b = Tensor::from_vec(vec![f32::NAN, 1.0, 2.0, 3.0], &[2, 2]).unwrap();
        for backend in [Backend::Naive, Backend::Fast] {
            let out = matmul_with(backend, &a, &b).unwrap();
            assert!(
                out.data()[0].is_nan(),
                "{backend:?}: 0·NaN swallowed in matmul"
            );
            let out = matmul_at_with(backend, &a, &b).unwrap();
            assert!(
                out.data()[0].is_nan(),
                "{backend:?}: 0·NaN swallowed in matmul_at"
            );
            let out = matmul_bt_with(backend, &b, &a).unwrap();
            assert!(
                out.data()[0].is_nan(),
                "{backend:?}: 0·NaN swallowed in matmul_bt"
            );
        }
    }

    /// Regression companion: a zero gradient must not mask a NaN weight in
    /// the convolution backward passes either.
    #[test]
    fn conv_gradients_propagate_nan_through_zero_gradient() {
        let p = Conv2dParams::default();
        let input = Tensor::ones(&[1, 1, 3, 3]);
        let mut weight = Tensor::ones(&[1, 1, 3, 3]);
        weight.data_mut()[4] = f32::NAN;
        let gout = Tensor::zeros(&[1, 1, 1, 1]);
        for backend in [Backend::Naive, Backend::Fast] {
            let gin = conv2d_grad_input_with(backend, &gout, &weight, input.dims(), p).unwrap();
            assert!(
                gin.data()[4].is_nan(),
                "{backend:?}: 0·NaN swallowed in conv2d_grad_input"
            );
        }
    }

    #[test]
    fn matmul_rejects_mismatch() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[2, 3]);
        assert!(matmul(&a, &b).is_err());
        assert!(matmul(&Tensor::zeros(&[2]), &b).is_err());
    }

    #[test]
    fn matmul_at_equals_explicit_transpose() {
        let a = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[3, 2]).unwrap();
        let b = Tensor::from_vec((0..12).map(|x| x as f32 * 0.5).collect(), &[3, 4]).unwrap();
        let direct = matmul_at(&a, &b).unwrap();
        let via_t = matmul(&a.transpose().unwrap(), &b).unwrap();
        assert_eq!(direct, via_t);
    }

    #[test]
    fn matmul_bt_equals_explicit_transpose() {
        let a = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[2, 3]).unwrap();
        let b = Tensor::from_vec((0..12).map(|x| x as f32 * 0.5).collect(), &[4, 3]).unwrap();
        let direct = matmul_bt(&a, &b).unwrap();
        let via_t = matmul(&a, &b.transpose().unwrap()).unwrap();
        assert_eq!(direct, via_t);
    }

    #[test]
    fn conv2d_identity_kernel() {
        // 1x1 kernel of value 1.0 reproduces the input.
        let input = Tensor::from_vec((0..16).map(|x| x as f32).collect(), &[1, 1, 4, 4]).unwrap();
        let weight = Tensor::ones(&[1, 1, 1, 1]);
        let out = conv2d(&input, &weight, Conv2dParams::default()).unwrap();
        assert_eq!(out.data(), input.data());
    }

    #[test]
    fn conv2d_known_3x3() {
        // All-ones 3x3 kernel on a 3x3 all-ones input (no padding) = 9.
        let input = Tensor::ones(&[1, 1, 3, 3]);
        let weight = Tensor::ones(&[1, 1, 3, 3]);
        let out = conv2d(&input, &weight, Conv2dParams::default()).unwrap();
        assert_eq!(out.dims(), &[1, 1, 1, 1]);
        assert_eq!(out.data()[0], 9.0);
    }

    #[test]
    fn conv2d_padding_and_stride() {
        let input = Tensor::ones(&[1, 1, 4, 4]);
        let weight = Tensor::ones(&[1, 1, 3, 3]);
        let out = conv2d(&input, &weight, Conv2dParams::new(2, 1)).unwrap();
        assert_eq!(out.dims(), &[1, 1, 2, 2]);
        // Top-left window covers 2x2 real pixels (corner), value 4.
        assert_eq!(out.get(&[0, 0, 0, 0]).unwrap(), 4.0);
    }

    #[test]
    fn conv2d_multi_channel_sum() {
        let input = Tensor::ones(&[1, 3, 2, 2]);
        let weight = Tensor::ones(&[2, 3, 2, 2]);
        let out = conv2d(&input, &weight, Conv2dParams::default()).unwrap();
        assert_eq!(out.dims(), &[1, 2, 1, 1]);
        assert_eq!(out.data(), &[12.0, 12.0]);
    }

    /// Numerical check: conv2d gradients match finite differences.
    #[test]
    fn conv2d_gradients_match_finite_difference() {
        let p = Conv2dParams::new(1, 1);
        let mut input = Tensor::from_vec(
            (0..18).map(|x| (x as f32) * 0.1 - 0.9).collect(),
            &[1, 2, 3, 3],
        )
        .unwrap();
        let mut weight = Tensor::from_vec(
            (0..16).map(|x| (x as f32) * 0.05 - 0.4).collect(),
            &[2, 2, 2, 2],
        )
        .unwrap();
        let out = conv2d(&input, &weight, p).unwrap();
        // Loss = sum of outputs, so dL/dout = 1 everywhere.
        let gout = Tensor::ones(out.dims());
        let gin = conv2d_grad_input(&gout, &weight, input.dims(), p).unwrap();
        let gw = conv2d_grad_weight(&input, &gout, weight.dims(), p).unwrap();
        let eps = 1e-3;
        // Spot check a few coordinates of each gradient.
        for &idx in &[0usize, 5, 11, 17] {
            let orig = input.data()[idx];
            input.data_mut()[idx] = orig + eps;
            let lp = conv2d(&input, &weight, p).unwrap().sum();
            input.data_mut()[idx] = orig - eps;
            let lm = conv2d(&input, &weight, p).unwrap().sum();
            input.data_mut()[idx] = orig;
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - gin.data()[idx]).abs() < 1e-2,
                "input grad mismatch at {idx}: fd={fd} analytic={}",
                gin.data()[idx]
            );
        }
        for &idx in &[0usize, 7, 15] {
            let orig = weight.data()[idx];
            weight.data_mut()[idx] = orig + eps;
            let lp = conv2d(&input, &weight, p).unwrap().sum();
            weight.data_mut()[idx] = orig - eps;
            let lm = conv2d(&input, &weight, p).unwrap().sum();
            weight.data_mut()[idx] = orig;
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - gw.data()[idx]).abs() < 1e-2,
                "weight grad mismatch at {idx}: fd={fd} analytic={}",
                gw.data()[idx]
            );
        }
    }

    #[test]
    fn maxpool_forward_and_backward() {
        let input = Tensor::from_vec(
            vec![
                1.0, 2.0, 5.0, 6.0, //
                3.0, 4.0, 7.0, 8.0, //
                -1.0, 0.0, 0.5, 0.25, //
                -2.0, -3.0, 0.75, 0.1,
            ],
            &[1, 1, 4, 4],
        )
        .unwrap();
        let MaxPoolOutput { output, argmax } = maxpool2d(&input, 2).unwrap();
        assert_eq!(output.data(), &[4.0, 8.0, 0.0, 0.75]);
        let gout = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]).unwrap();
        let gin = maxpool2d_backward(&gout, &argmax, input.dims()).unwrap();
        assert_eq!(gin.get(&[0, 0, 1, 1]).unwrap(), 1.0); // where 4.0 was
        assert_eq!(gin.get(&[0, 0, 1, 3]).unwrap(), 2.0); // where 8.0 was
        assert_eq!(gin.get(&[0, 0, 2, 1]).unwrap(), 3.0); // where 0.0 was
        assert_eq!(gin.get(&[0, 0, 3, 2]).unwrap(), 4.0); // where 0.75 was
        assert_eq!(gin.sum(), 10.0);
    }

    #[test]
    fn maxpool_rejects_bad_window() {
        let input = Tensor::ones(&[1, 1, 2, 2]);
        assert!(maxpool2d(&input, 0).is_err());
        assert!(maxpool2d(&input, 3).is_err());
    }

    #[test]
    fn global_avgpool_roundtrip() {
        let input = Tensor::from_vec((0..8).map(|x| x as f32).collect(), &[1, 2, 2, 2]).unwrap();
        let out = global_avgpool(&input).unwrap();
        assert_eq!(out.data(), &[1.5, 5.5]);
        let gout = Tensor::from_vec(vec![4.0, 8.0], &[1, 2]).unwrap();
        let gin = global_avgpool_backward(&gout, input.dims()).unwrap();
        assert_eq!(gin.data(), &[1.0, 1.0, 1.0, 1.0, 2.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn output_dim_formula() {
        let p = Conv2dParams::new(1, 0);
        assert_eq!(p.output_dim(5, 3), 3);
        let p = Conv2dParams::new(2, 1);
        assert_eq!(p.output_dim(7, 3), 4);
    }
}
