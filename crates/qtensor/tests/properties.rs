//! Property-based tests for the tensor kernels' algebraic identities.

use cq_tensor::{ops, Tensor};
use proptest::prelude::*;

fn close(a: &Tensor, b: &Tensor, tol: f32) -> bool {
    a.dims() == b.dims()
        && a.data()
            .iter()
            .zip(b.data())
            .all(|(&x, &y)| (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// (A·B)ᵀ = Bᵀ·Aᵀ.
    #[test]
    fn matmul_transpose_identity(
        (m, k, n) in (1usize..8, 1usize..8, 1usize..8),
        seed in 0u64..1000,
    ) {
        let a = cq_tensor::init::normal(&[m, k], 0.0, 1.0, seed);
        let b = cq_tensor::init::normal(&[k, n], 0.0, 1.0, seed + 1);
        let ab_t = ops::matmul(&a, &b).unwrap().transpose().unwrap();
        let bt_at = ops::matmul(&b.transpose().unwrap(), &a.transpose().unwrap()).unwrap();
        prop_assert!(close(&ab_t, &bt_at, 1e-4));
    }

    /// matmul_at/matmul_bt agree with explicit transposes.
    #[test]
    fn fused_transpose_variants(
        (m, k, n) in (1usize..8, 1usize..8, 1usize..8),
        seed in 0u64..1000,
    ) {
        let a = cq_tensor::init::normal(&[k, m], 0.0, 1.0, seed);
        let b = cq_tensor::init::normal(&[k, n], 0.0, 1.0, seed + 1);
        let fused = ops::matmul_at(&a, &b).unwrap();
        let explicit = ops::matmul(&a.transpose().unwrap(), &b).unwrap();
        prop_assert!(close(&fused, &explicit, 1e-4));
        let c = cq_tensor::init::normal(&[m, k], 0.0, 1.0, seed + 2);
        let d = cq_tensor::init::normal(&[n, k], 0.0, 1.0, seed + 3);
        let fused = ops::matmul_bt(&c, &d).unwrap();
        let explicit = ops::matmul(&c, &d.transpose().unwrap()).unwrap();
        prop_assert!(close(&fused, &explicit, 1e-4));
    }

    /// Matmul distributes over addition: A·(B + C) = A·B + A·C.
    #[test]
    fn matmul_distributes(
        (m, k, n) in (1usize..6, 1usize..6, 1usize..6),
        seed in 0u64..1000,
    ) {
        let a = cq_tensor::init::normal(&[m, k], 0.0, 1.0, seed);
        let b = cq_tensor::init::normal(&[k, n], 0.0, 1.0, seed + 1);
        let c = cq_tensor::init::normal(&[k, n], 0.0, 1.0, seed + 2);
        let lhs = ops::matmul(&a, &b.add(&c).unwrap()).unwrap();
        let rhs = ops::matmul(&a, &b).unwrap().add(&ops::matmul(&a, &c).unwrap()).unwrap();
        prop_assert!(close(&lhs, &rhs, 1e-4));
    }

    /// Convolution is linear in its input: conv(x+y, w) = conv(x,w) + conv(y,w).
    #[test]
    fn conv_is_linear(
        (c, f, hw) in (1usize..4, 1usize..4, 3usize..8),
        seed in 0u64..1000,
    ) {
        let p = ops::Conv2dParams::new(1, 1);
        let x = cq_tensor::init::normal(&[1, c, hw, hw], 0.0, 1.0, seed);
        let y = cq_tensor::init::normal(&[1, c, hw, hw], 0.0, 1.0, seed + 1);
        let w = cq_tensor::init::normal(&[f, c, 3, 3], 0.0, 1.0, seed + 2);
        let lhs = ops::conv2d(&x.add(&y).unwrap(), &w, p).unwrap();
        let rhs = ops::conv2d(&x, &w, p).unwrap().add(&ops::conv2d(&y, &w, p).unwrap()).unwrap();
        prop_assert!(close(&lhs, &rhs, 1e-3));
    }

    /// Max pooling then backward routes exactly the output gradient mass.
    #[test]
    fn maxpool_gradient_mass_conserved(
        (ch, hw) in (1usize..4, 2usize..5),
        seed in 0u64..1000,
    ) {
        let x = cq_tensor::init::normal(&[1, ch, hw * 2, hw * 2], 0.0, 1.0, seed);
        let out = ops::maxpool2d(&x, 2).unwrap();
        let gout = cq_tensor::init::normal(out.output.dims(), 0.0, 1.0, seed + 1);
        let gin = ops::maxpool2d_backward(&gout, &out.argmax, x.dims()).unwrap();
        prop_assert!((gin.sum() - gout.sum()).abs() < 1e-3);
    }

    /// Reductions: sum, mean and max_abs are consistent.
    #[test]
    fn reduction_consistency(v in prop::collection::vec(-100.0f32..100.0, 1..200)) {
        let n = v.len();
        let t = Tensor::from_vec(v.clone(), &[n]).unwrap();
        let sum: f32 = v.iter().sum();
        prop_assert!((t.sum() - sum).abs() <= 1e-3 * (1.0 + sum.abs()));
        prop_assert!((t.mean() - sum / n as f32).abs() <= 1e-3);
        let max_abs = v.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
        prop_assert_eq!(t.max_abs(), max_abs);
    }
}
