//! Property tests: the `Fast` (tiled, pooled) backend must match the
//! `Naive` reference within an explicit tolerance on every op, across
//! random shapes, strides and paddings — including rectangular and size-1
//! edge cases.
//!
//! # Tolerance
//!
//! Both backends accumulate each output element over the reduction
//! dimension in ascending order, so today they agree bitwise. The bound
//! below is nevertheless stated (and enforced) as the *contract*, so
//! future Fast-path changes that legitimately reorder f32 sums (packing,
//! FMA, split-k) stay acceptable: for a reduction of length `k` over
//! operands bounded by `amax`/`bmax`,
//!
//! ```text
//! |fast − naive| ≤ k · amax · bmax · 8·ε₃₂  +  1e-30
//! ```
//!
//! i.e. a relative error budget of `8 ulp` per reduction step against the
//! worst-case magnitude sum, plus an absolute floor for all-zero products.
//! The same bound is documented in DESIGN.md ("Backend architecture").

use cq_tensor::ops::{self, Conv2dParams};
use cq_tensor::{Backend, Tensor};
use proptest::prelude::*;

/// Per-element tolerance for a reduction of length `k` with operand
/// magnitude bounds `amax`, `bmax`.
fn tol(k: usize, amax: f32, bmax: f32) -> f32 {
    (k as f32) * amax * bmax * (8.0 * f32::EPSILON) + 1e-30
}

fn max_abs(t: &Tensor) -> f32 {
    t.data().iter().fold(0.0f32, |m, &v| m.max(v.abs()))
}

fn assert_close(fast: &Tensor, naive: &Tensor, k: usize, amax: f32, bmax: f32) -> TestCaseResult {
    prop_assert_eq!(fast.dims(), naive.dims());
    let bound = tol(k, amax, bmax);
    for (i, (f, n)) in fast.data().iter().zip(naive.data()).enumerate() {
        prop_assert!(
            (f - n).abs() <= bound,
            "element {i}: fast={f} naive={n} bound={bound}"
        );
    }
    Ok(())
}

/// Deterministic pseudo-random tensor from a seed drawn by proptest.
fn tensor(dims: &[usize], seed: u64) -> Tensor {
    cq_tensor::init::uniform(dims, -2.0, 2.0, seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn matmul_fast_matches_naive(
        (m, k, n) in (1usize..24, 1usize..24, 1usize..24),
        seed in 0u64..1_000_000,
    ) {
        let a = tensor(&[m, k], seed);
        let b = tensor(&[k, n], seed ^ 0x9e3779b9);
        let fast = ops::matmul_with(Backend::Fast, &a, &b).unwrap();
        let naive = ops::matmul_with(Backend::Naive, &a, &b).unwrap();
        assert_close(&fast, &naive, k, max_abs(&a), max_abs(&b))?;
    }

    #[test]
    fn matmul_at_fast_matches_naive(
        (m, k, n) in (1usize..24, 1usize..24, 1usize..24),
        seed in 0u64..1_000_000,
    ) {
        let a = tensor(&[k, m], seed);
        let b = tensor(&[k, n], seed ^ 0xdeadbeef);
        let fast = ops::matmul_at_with(Backend::Fast, &a, &b).unwrap();
        let naive = ops::matmul_at_with(Backend::Naive, &a, &b).unwrap();
        assert_close(&fast, &naive, k, max_abs(&a), max_abs(&b))?;
    }

    #[test]
    fn matmul_bt_fast_matches_naive(
        (m, k, n) in (1usize..24, 1usize..24, 1usize..24),
        seed in 0u64..1_000_000,
    ) {
        let a = tensor(&[m, k], seed);
        let b = tensor(&[n, k], seed ^ 0xc0ffee);
        let fast = ops::matmul_bt_with(Backend::Fast, &a, &b).unwrap();
        let naive = ops::matmul_bt_with(Backend::Naive, &a, &b).unwrap();
        assert_close(&fast, &naive, k, max_abs(&a), max_abs(&b))?;
    }

    #[test]
    fn conv2d_family_fast_matches_naive(
        (n, c, f) in (1usize..4, 1usize..4, 1usize..5),
        (h, w) in (1usize..11, 1usize..11),
        (kh, kw) in (1usize..5, 1usize..5),
        (stride, padding) in (1usize..4, 0usize..3),
        seed in 0u64..1_000_000,
    ) {
        // Keep the kernel applicable to the padded input.
        let kh = kh.min(h + 2 * padding);
        let kw = kw.min(w + 2 * padding);
        let p = Conv2dParams::new(stride, padding);
        let input = tensor(&[n, c, h, w], seed);
        let weight = tensor(&[f, c, kh, kw], seed ^ 0xfeed);
        let k_red = c * kh * kw;
        let (amax, wmax) = (max_abs(&input), max_abs(&weight));

        let fwd_fast = ops::conv2d_with(Backend::Fast, &input, &weight, p).unwrap();
        let fwd_naive = ops::conv2d_with(Backend::Naive, &input, &weight, p).unwrap();
        assert_close(&fwd_fast, &fwd_naive, k_red, amax, wmax)?;

        let gout = tensor(fwd_naive.dims(), seed ^ 0xabcd);
        let gmax = max_abs(&gout);
        let gin_fast =
            ops::conv2d_grad_input_with(Backend::Fast, &gout, &weight, input.dims(), p).unwrap();
        let gin_naive =
            ops::conv2d_grad_input_with(Backend::Naive, &gout, &weight, input.dims(), p).unwrap();
        assert_close(&gin_fast, &gin_naive, f * kh * kw, gmax, wmax)?;

        let gw_fast =
            ops::conv2d_grad_weight_with(Backend::Fast, &input, &gout, weight.dims(), p).unwrap();
        let gw_naive =
            ops::conv2d_grad_weight_with(Backend::Naive, &input, &gout, weight.dims(), p).unwrap();
        let ohw = fwd_naive.dims()[2] * fwd_naive.dims()[3];
        assert_close(&gw_fast, &gw_naive, n * ohw, amax, gmax)?;
    }

    #[test]
    fn matmul_size_one_edges(
        which in 0usize..3,
        dim in 1usize..40,
        seed in 0u64..1_000_000,
    ) {
        // Degenerate shapes: a 1 in each position of (m, k, n).
        let (m, k, n) = match which {
            0 => (1, dim, dim),
            1 => (dim, 1, dim),
            _ => (dim, dim, 1),
        };
        let a = tensor(&[m, k], seed);
        let b = tensor(&[k, n], seed ^ 0x5eed);
        let fast = ops::matmul_with(Backend::Fast, &a, &b).unwrap();
        let naive = ops::matmul_with(Backend::Naive, &a, &b).unwrap();
        assert_close(&fast, &naive, k, max_abs(&a), max_abs(&b))?;
    }
}
