//! Error-bound proptest suite for the integer-domain quantizer.
//!
//! The `IntDomain` strategy is a *different algorithm* from the
//! float-domain reference (one base quantization + shift-derived
//! candidates instead of per-way division), so its contract is not
//! bit-identity but the shift-rounding model documented in
//! `cq_quant::intdomain` and DESIGN.md:
//!
//! 1. **Reconstruction bound** — `|x − c·s_sel| ≤ (s_base + s_sel)/2 +
//!    clip(x)` per element (up to f32 division rounding);
//! 2. **Deviation bound** — for every ladder way, the shifted code is
//!    within one unit of direct f32 quantization at the same scale
//!    (double-rounding bound);
//! 3. **Fallback totality** — every block either quantizes under the
//!    guard or falls back; a taken int path always carries a scale that
//!    satisfies the `pow2_multiplier` acceptance condition.
//!
//! Run under `--test-threads 1` and `--test-threads 4` in CI (the suite
//! is thread-free, but CI exercises harness-scheduling variation on every
//! parity/bounds suite by convention).

use cq_quant::fast::pow2_multiplier;
use cq_quant::intdomain::{IntDomainQuantizer, IntDomainScratch};
use cq_quant::{IntFormat, QuantParams, TrainingQuantizer};
use proptest::prelude::*;

/// Value pools spanning bulk-small, moderate and large magnitudes —
/// normal-range f32 only (subnormal θ is the fallback suite's job).
fn finite_f32() -> impl Strategy<Value = f32> {
    prop_oneof![
        (-100.0f32..100.0),
        (-0.01f32..0.01),
        (-1e6f32..1e6),
        (-1e-6f32..1e-6),
        Just(0.0f32),
    ]
}

fn block_strategy(max_len: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(finite_f32(), 0..max_len)
}

fn any_ways() -> impl Strategy<Value = usize> {
    1usize..=6
}

proptest! {
    /// Reconstruction: every emitted code reconstructs its element within
    /// half a base step plus half a selected step plus the clipping loss.
    #[test]
    fn reconstruction_bound(x in block_strategy(600), ways in any_ways()) {
        let q = IntDomainQuantizer::new(ways, IntFormat::Int8);
        let mut codes = Vec::new();
        let mut scratch = IntDomainScratch::new();
        if let Some(sel) = q.quantize_into(&x, &mut codes, &mut scratch) {
            prop_assert_eq!(codes.len(), x.len());
            let rep_max = 127.0 * sel.scale;
            for (&v, &c) in x.iter().zip(&codes) {
                if !v.is_finite() {
                    continue;
                }
                let err = (v - c as f32 * sel.scale).abs();
                let clip = (v.abs() - rep_max).max(0.0);
                let bound = (sel.base_scale + sel.scale) / 2.0 + clip;
                // Slack: one relative ε for the x/s_base division, one
                // absolute ε for the final f32 subtraction.
                prop_assert!(
                    err <= bound * (1.0 + 1e-5) + f32::EPSILON,
                    "v={v} err={err} bound={bound} sel={sel:?}"
                );
            }
        }
    }

    /// Deviation: per way, shift-derived codes sit within one code unit of
    /// direct f32 quantization at that way's scale (double rounding).
    #[test]
    fn deviation_from_reference_at_most_one_code(
        x in block_strategy(400),
        ways in any_ways(),
    ) {
        let q = IntDomainQuantizer::new(ways, IntFormat::Int8);
        let mut codes = Vec::new();
        let mut scratch = IntDomainScratch::new();
        if let Some(sel) = q.quantize_into(&x, &mut codes, &mut scratch) {
            if sel.base_scale == 1.0 && sel.scale == 1.0 {
                return Ok(()); // degenerate all-zero block
            }
            // The public API emits only the winner; checking the winner
            // across many random blocks visits every way.
            let p = QuantParams::with_scale(sel.scale, IntFormat::Int8);
            for (&v, &c) in x.iter().zip(&codes) {
                if !v.is_finite() {
                    continue;
                }
                let c_ref = p.quantize(v);
                prop_assert!(
                    (c as i32 - c_ref).abs() <= 1,
                    "v={v} int={c} ref={c_ref} sel={sel:?}"
                );
            }
        }
    }

    /// Guard totality: a taken int path always carries an exact
    /// power-of-two scale (the `pow2_multiplier` acceptance condition),
    /// and the code/scale pair is self-consistent with the way index.
    #[test]
    fn taken_path_scale_is_on_the_ladder(
        x in block_strategy(300),
        ways in any_ways(),
    ) {
        let q = IntDomainQuantizer::new(ways, IntFormat::Int8);
        let mut codes = Vec::new();
        let mut scratch = IntDomainScratch::new();
        if let Some(sel) = q.quantize_into(&x, &mut codes, &mut scratch) {
            prop_assert!(sel.way < ways);
            if sel.base_scale == 1.0 && sel.scale == 1.0 {
                return Ok(()); // degenerate all-zero block
            }
            let expect = (1u32 << (ways - 1 - sel.way)) as f32;
            prop_assert_eq!(
                pow2_multiplier(sel.scale, sel.base_scale),
                Some(expect),
                "scale {} base {}",
                sel.scale,
                sel.base_scale
            );
            prop_assert_eq!(scratch.errors().len(), ways);
            let min = *scratch.errors().iter().min().unwrap();
            prop_assert_eq!(scratch.errors()[sel.way], min);
        }
    }

    /// The fake-quantize entry agrees with the code/scale pair the GEMM
    /// path consumes, element for element.
    #[test]
    fn fake_quantize_matches_codes_times_scale(
        x in block_strategy(300),
        ways in any_ways(),
    ) {
        let q = IntDomainQuantizer::new(ways, IntFormat::Int8);
        let mut codes = Vec::new();
        let mut out = Vec::new();
        let mut s1 = IntDomainScratch::new();
        let mut s2 = IntDomainScratch::new();
        let sel = q.quantize_into(&x, &mut codes, &mut s1);
        let taken = q.fake_quantize_into(&x, &mut out, &mut s2);
        prop_assert_eq!(taken, sel.is_some());
        if let Some(sel) = sel {
            prop_assert_eq!(out.len(), codes.len());
            for (&o, &c) in out.iter().zip(&codes) {
                prop_assert_eq!(o.to_bits(), (c as f32 * sel.scale).to_bits());
            }
        }
    }

    /// Accuracy sanity vs the f32 reference quantizer: on well-scaled
    /// data the int-domain output stays directionally faithful — within
    /// a small multiple of the layer-wise fake-quantize L1 error.
    #[test]
    fn l1_error_comparable_to_reference(seed in 0u64..32) {
        let x = cq_tensor::init::long_tailed(&[2048], 0.05, 0.01, 30.0, seed);
        let q = IntDomainQuantizer::hardware_default();
        let mut out = Vec::new();
        let mut scratch = IntDomainScratch::new();
        prop_assert!(q.fake_quantize_into(x.data(), &mut out, &mut scratch));
        let l1_int: f64 = x
            .data()
            .iter()
            .zip(&out)
            .map(|(&a, &b)| (a - b).abs() as f64)
            .sum();
        let reference = TrainingQuantizer::zhu2019().fake_quantize(&x);
        let l1_ref: f64 = x
            .data()
            .iter()
            .zip(reference.data())
            .map(|(&a, &b)| (a - b).abs() as f64)
            .sum();
        // The integer ladder anchors at θ/(qmax·2^(W−1)) instead of the
        // float sweep's per-way scales, and double-rounds — allow 2× but
        // no runaway divergence.
        prop_assert!(
            l1_int <= l1_ref * 2.0 + 1e-6,
            "int L1 {l1_int} vs ref L1 {l1_ref}"
        );
    }
}

/// Subnormal θ must fall back — the exact-rescale proof does not hold
/// below the normal range, so the int path refuses rather than degrades.
#[test]
fn subnormal_blocks_fall_back() {
    let q = IntDomainQuantizer::hardware_default();
    let mut codes = Vec::new();
    let mut scratch = IntDomainScratch::new();
    for theta in [1.0e-41f32, 4.7e-40, f32::MIN_POSITIVE * 0.5] {
        let x = vec![theta, -theta * 0.5, theta * 0.25];
        assert!(
            q.quantize_into(&x, &mut codes, &mut scratch).is_none(),
            "theta {theta:e} should fall back"
        );
    }
    // Just above the guard boundary the path is taken again: θ large
    // enough that s_base = θ/(qmax·2³) is normal.
    let x = vec![f32::MIN_POSITIVE * 2048.0, -f32::MIN_POSITIVE * 1024.0];
    assert!(q.quantize_into(&x, &mut codes, &mut scratch).is_some());
}

/// Non-finite contamination: ∞ poisons θ (degenerate → lossless zeros),
/// NaN elements quantize to code 0 under a finite θ.
#[test]
fn non_finite_elements_are_deterministic() {
    let q = IntDomainQuantizer::hardware_default();
    let mut codes = Vec::new();
    let mut scratch = IntDomainScratch::new();

    let x = vec![0.5f32, f32::INFINITY, -0.25];
    let sel = q.quantize_into(&x, &mut codes, &mut scratch).unwrap();
    assert_eq!(sel.scale, 1.0, "∞ θ degenerates");
    assert!(codes.iter().all(|&c| c == 0));

    let x = vec![0.5f32, f32::NAN, -0.25];
    let sel = q.quantize_into(&x, &mut codes, &mut scratch).unwrap();
    assert!(sel.scale < 1.0, "finite θ from the non-NaN elements");
    assert_eq!(codes[1], 0, "NaN element must quantize to 0");
}
