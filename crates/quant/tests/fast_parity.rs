//! Bit-exactness parity suite: the fused/parallel quantization fast path
//! must produce *identical* results to the naive reference — same codes,
//! same params, same θ records, same selection ways, bitwise-equal
//! estimated errors — across formats, block sizes (including ragged tails
//! and empty tensors), estimators, candidate strategies, and worker
//! counts.
//!
//! Run under `--test-threads 1` and `--test-threads 4` in CI (mirroring
//! the PR 2 backend-parity suite); the pool-explicit `*_fast_on` /
//! `*_on`-style entry points additionally pin worker counts to 1 and 4
//! inside each test, so parity holds regardless of the ambient
//! `CQ_THREADS` / global pool configuration.

use cq_par::Pool;
use cq_quant::{
    CandidateStrategy, E2bqmQuantizer, ErrorEstimator, IntFormat, LdqConfig, LdqTensor,
    QuantScratch, TrainingQuantizer,
};
use cq_tensor::{Backend, Tensor};
use proptest::prelude::*;

fn finite_f32() -> impl Strategy<Value = f32> {
    prop_oneof![
        (-100.0f32..100.0),
        (-0.01f32..0.01),
        (-1e4f32..1e4),
        Just(0.0f32),
    ]
}

/// Tensors from empty up to a few blocks' worth, so ragged tails, exact
/// multiples and sub-block tensors all appear.
fn tensor_strategy(max_len: usize) -> impl Strategy<Value = Tensor> {
    prop::collection::vec(finite_f32(), 0..max_len).prop_map(|v| {
        let n = v.len();
        Tensor::from_vec(v, &[n]).expect("len matches")
    })
}

fn any_format() -> impl Strategy<Value = IntFormat> {
    prop_oneof![
        Just(IntFormat::Int4),
        Just(IntFormat::Int8),
        Just(IntFormat::Int12),
        Just(IntFormat::Int16),
    ]
}

fn any_estimator() -> impl Strategy<Value = ErrorEstimator> {
    prop_oneof![
        Just(ErrorEstimator::Rectilinear),
        Just(ErrorEstimator::Cosine),
        Just(ErrorEstimator::MeanBias),
        Just(ErrorEstimator::Mse),
    ]
}

fn any_strategy() -> impl Strategy<Value = CandidateStrategy> {
    prop_oneof![
        Just(CandidateStrategy::ClipSweep),
        Just(CandidateStrategy::ShiftableFxp),
        Just(CandidateStrategy::FormatSweep),
    ]
}

proptest! {
    /// LDQ: fused serial and pooled (1 and 4 workers) paths are
    /// structurally equal to naive — blocks, params, codes, θ records.
    #[test]
    fn ldq_fast_matches_naive(
        t in tensor_strategy(700),
        block in 1usize..300,
        fmt in any_format(),
    ) {
        let cfg = LdqConfig::new(block, fmt);
        let naive = LdqTensor::quantize_naive(&t, cfg);
        let fast = LdqTensor::quantize_with(&t, cfg, Backend::Fast);
        prop_assert_eq!(&naive, &fast);
        for threads in [1usize, 4] {
            let pooled = LdqTensor::quantize_fast_on(&Pool::new(threads), &t, cfg);
            prop_assert_eq!(&naive, &pooled);
        }
        // θ records agree bit-for-bit with a direct recomputation of the
        // effective statistic on the raw block data.
        for (i, &theta) in naive.block_thetas().iter().enumerate() {
            let start = i * block;
            let end = (start + block).min(t.len());
            let raw = t.data()[start..end]
                .iter()
                .fold(0.0f32, |m, &v| m.max(v.abs()));
            let expected = if raw.is_finite() && raw > 0.0 { raw } else { 0.0 };
            prop_assert_eq!(theta.to_bits(), expected.to_bits());
        }
    }

    /// E²BQM: fused evaluation reproduces the naive selections exactly —
    /// same winning way, bitwise-equal error vector, identical codes.
    #[test]
    fn e2bqm_fast_matches_naive(
        t in tensor_strategy(520),
        block in 1usize..260,
        ways in 1usize..5,
        strategy in any_strategy(),
        estimator in any_estimator(),
        fmt in any_format(),
    ) {
        let q = E2bqmQuantizer::new(ways, strategy, estimator, fmt);
        let naive = q.quantize_blocks_naive(&t, block);
        let fast = q.quantize_blocks_with(&t, block, Backend::Fast);
        prop_assert_eq!(&naive, &fast);
        for threads in [1usize, 4] {
            let pooled = q.quantize_blocks_fast_on(&Pool::new(threads), &t, block);
            prop_assert_eq!(&naive, &pooled);
        }
        // Errors are compared bitwise, not approximately.
        for (a, b) in naive.iter().zip(&fast) {
            for (ea, eb) in a.errors.iter().zip(&b.errors) {
                prop_assert_eq!(ea.to_bits(), eb.to_bits());
            }
        }
    }

    /// Training quantizers: every preset's fast path (including the
    /// scratch-reusing `fake_quantize_into`) is bit-identical to naive.
    #[test]
    fn fake_quantize_fast_matches_naive(
        t in tensor_strategy(900),
        which in 0usize..7,
    ) {
        let q = match which {
            0 => TrainingQuantizer::fp32(),
            1 => TrainingQuantizer::zhu2019(),
            2 => TrainingQuantizer::zhu2019_hqt(),
            3 => TrainingQuantizer::zhang2020(),
            4 => TrainingQuantizer::zhang2020_hqt(),
            5 => TrainingQuantizer::zhong2020(),
            _ => TrainingQuantizer::ldq_only(96, IntFormat::Int8),
        };
        let naive = q.fake_quantize_naive(&t);
        let fast = q.fake_quantize_fast(&t);
        prop_assert_eq!(naive.data(), fast.data());

        // Scratch reuse across calls must not change results.
        let mut out = Vec::new();
        let mut scratch = QuantScratch::new();
        for _ in 0..2 {
            q.fake_quantize_into(&t, &mut out, &mut scratch);
            prop_assert_eq!(naive.data(), out.as_slice());
        }
    }

    /// Degenerate blocks (all-zero, and tensors shorter than one block)
    /// agree between backends, including the recorded θ.
    #[test]
    fn degenerate_blocks_agree(len in 0usize..40, block in 1usize..70) {
        let t = Tensor::zeros(&[len]);
        let cfg = LdqConfig::new(block, IntFormat::Int8);
        let naive = LdqTensor::quantize_naive(&t, cfg);
        let fast = LdqTensor::quantize_with(&t, cfg, Backend::Fast);
        prop_assert_eq!(&naive, &fast);
        prop_assert!(naive.block_thetas().iter().all(|&th| th == 0.0));
    }
}

/// Non-finite contamination (NaN / ±∞) must take the same degenerate-θ
/// path on both backends.
#[test]
fn non_finite_blocks_agree() {
    for poison in [f32::NAN, f32::INFINITY, f32::NEG_INFINITY] {
        let mut data = vec![0.5f32; 10];
        data[3] = poison;
        let t = Tensor::from_vec(data, &[10]).unwrap();
        let cfg = LdqConfig::new(4, IntFormat::Int8);
        let naive = LdqTensor::quantize_naive(&t, cfg);
        let fast = LdqTensor::quantize_with(&t, cfg, Backend::Fast);
        assert_eq!(naive, fast, "poison {poison}");

        let q = E2bqmQuantizer::hardware_default();
        let sel_naive = q.quantize_blocks_naive(&t, 4);
        let sel_fast = q.quantize_blocks_with(&t, 4, Backend::Fast);
        // NaN estimated errors are legitimate here (poisoned inputs), so
        // `PartialEq` on the error vectors would reject even identical
        // results — compare bitwise instead.
        assert_eq!(sel_naive.len(), sel_fast.len(), "poison {poison}");
        for (i, (a, b)) in sel_naive.iter().zip(&sel_fast).enumerate() {
            assert_eq!(a.selected, b.selected, "poison {poison} block {i}");
            assert_eq!(a.way, b.way, "poison {poison} block {i}");
            let ea: Vec<u64> = a.errors.iter().map(|e| e.to_bits()).collect();
            let eb: Vec<u64> = b.errors.iter().map(|e| e.to_bits()).collect();
            assert_eq!(ea, eb, "poison {poison} block {i}");
        }
    }
}

/// Subnormal-magnitude blocks: θ (and hence every candidate scale) lands
/// in or near the f32 subnormal range, where the fused path's one-division
/// shortcut is *not* provably exact — its runtime power-of-two check must
/// reject the ladder and fall back to per-way division, keeping results
/// bit-identical to naive.
#[test]
fn subnormal_blocks_agree() {
    let data: Vec<f32> = (0..96)
        .map(|i| (i as f32 - 48.0) * 1.3e-40 + if i % 7 == 0 { 4.7e-41 } else { 0.0 })
        .collect();
    let t = Tensor::from_vec(data, &[96]).unwrap();

    let cfg = LdqConfig::new(24, IntFormat::Int8);
    assert_eq!(
        LdqTensor::quantize_naive(&t, cfg),
        LdqTensor::quantize_with(&t, cfg, Backend::Fast)
    );

    for strategy in [
        CandidateStrategy::ClipSweep,
        CandidateStrategy::ShiftableFxp,
        CandidateStrategy::FormatSweep,
    ] {
        for estimator in [
            ErrorEstimator::Rectilinear,
            ErrorEstimator::Cosine,
            ErrorEstimator::MeanBias,
            ErrorEstimator::Mse,
        ] {
            let q = E2bqmQuantizer::new(4, strategy, estimator, IntFormat::Int8);
            let naive = q.quantize_blocks_naive(&t, 24);
            let fast = q.quantize_blocks_with(&t, 24, Backend::Fast);
            assert_eq!(naive, fast, "{strategy:?}/{estimator:?}");
            for (a, b) in naive.iter().zip(&fast) {
                for (ea, eb) in a.errors.iter().zip(&b.errors) {
                    assert_eq!(ea.to_bits(), eb.to_bits(), "{strategy:?}/{estimator:?}");
                }
            }
        }
    }
}

/// A tensor large enough to cross the parallel threshold must still match
/// naive exactly through the public dispatching entry points.
#[test]
fn large_tensor_crosses_parallel_threshold() {
    let n = (1 << 16) + 333; // > PAR_MIN_ELEMS, ragged tail
    let t = cq_tensor::init::long_tailed(&[n], 0.1, 0.01, 30.0, 17);
    let cfg = LdqConfig::new(1024, IntFormat::Int8);
    assert_eq!(
        LdqTensor::quantize_naive(&t, cfg),
        LdqTensor::quantize_with(&t, cfg, Backend::Fast)
    );
    let q = E2bqmQuantizer::hardware_default();
    assert_eq!(
        q.quantize_blocks_naive(&t, 1024),
        q.quantize_blocks_with(&t, 1024, Backend::Fast)
    );
    let tq = TrainingQuantizer::zhang2020_hqt();
    assert_eq!(
        tq.fake_quantize_naive(&t).data(),
        tq.fake_quantize_fast(&t).data()
    );
}
