//! Property-based tests for the HQT quantization invariants (paper §III).

use cq_quant::ldq::{
    compression_loss, compression_ratio_dq, compression_ratio_ldq, error_domination,
};
use cq_quant::{
    CandidateStrategy, E2bqmQuantizer, ErrorEstimator, IntFormat, LdqConfig, LdqTensor,
    QuantParams, QuantizedTensor,
};
use cq_tensor::Tensor;
use proptest::prelude::*;

fn finite_f32() -> impl Strategy<Value = f32> {
    prop_oneof![
        (-100.0f32..100.0),
        (-0.01f32..0.01),
        (-1e4f32..1e4),
        Just(0.0f32),
    ]
}

fn tensor_strategy(max_len: usize) -> impl Strategy<Value = Tensor> {
    prop::collection::vec(finite_f32(), 1..max_len).prop_map(|v| {
        let n = v.len();
        Tensor::from_vec(v, &[n]).expect("len matches")
    })
}

fn any_format() -> impl Strategy<Value = IntFormat> {
    prop_oneof![
        Just(IntFormat::Int4),
        Just(IntFormat::Int8),
        Just(IntFormat::Int12),
        Just(IntFormat::Int16),
    ]
}

proptest! {
    /// Round-to-nearest error is bounded by half the scale for any
    /// non-clipped value.
    #[test]
    fn rounding_error_half_scale(x in -10.0f32..10.0, theta in 10.0f32..100.0, fmt in any_format()) {
        let p = QuantParams::symmetric(theta, fmt);
        let back = p.dequantize(p.quantize(x));
        prop_assert!((back - x).abs() <= p.scale / 2.0 + 1e-5);
    }

    /// Quantized values always stay within the symmetric representable range.
    #[test]
    fn quantized_values_in_range(t in tensor_strategy(257), fmt in any_format()) {
        let q = QuantizedTensor::quantize_symmetric(&t, fmt);
        for &v in q.values() {
            prop_assert!(v >= fmt.qmin() && v <= fmt.qmax());
        }
    }

    /// Dequantize(quantize(x)) never exceeds the original max|X|
    /// (dynamic quantization never clips, so magnitudes shrink or hold).
    #[test]
    fn dequantized_magnitude_bounded(t in tensor_strategy(129), fmt in any_format()) {
        let q = QuantizedTensor::quantize_symmetric(&t, fmt);
        let back = q.dequantize();
        prop_assert!(back.max_abs() <= t.max_abs() * (1.0 + 1e-5) + 1e-6);
    }

    /// The provable LDQ lemma (paper §III.A): every block statistic θᵢ is
    /// ≤ the global θ, so every block's quantization step — and therefore
    /// its worst-case rounding error bound — is ≤ the layer-wise one.
    /// (The *pointwise* error is not monotone in step size for adversarial
    /// inputs, so the guarantee is on the bound; see the unit tests for the
    /// average-case dominance on realistic data.)
    #[test]
    fn ldq_error_bound_domination(t in tensor_strategy(513), block in 1usize..600, fmt in any_format()) {
        let cfg = LdqConfig::new(block, fmt);
        let ldq = LdqTensor::quantize(&t, cfg);
        let global_theta = t.max_abs();
        let global_step = QuantParams::symmetric(global_theta, fmt).scale;
        let back = ldq.dequantize();
        for (b, &theta) in ldq.blocks().iter().zip(ldq.block_thetas()) {
            // All-zero blocks carry a sentinel scale (lossless) — skip.
            if b.values().iter().all(|&q| q == 0) {
                continue;
            }
            prop_assert!(theta <= global_theta * (1.0 + 1e-6) + 1e-9);
            prop_assert!(b.params().scale <= global_step * (1.0 + 1e-6));
        }
        // Every element's error obeys the per-block half-step bound, which
        // is itself bounded by the global half-step.
        for ((&orig, &rec), step) in t
            .data()
            .iter()
            .zip(back.data())
            .zip(ldq.blocks().iter().flat_map(|b| {
                std::iter::repeat_n(b.params().scale, b.len())
            }))
        {
            // f32 round-off in the quantize/dequantize arithmetic adds a
            // few ulps of the operand magnitude on top of the ideal bound.
            let ulps = orig.abs().max(step) * 8.0 * f32::EPSILON;
            let err = (orig - rec).abs();
            prop_assert!(err <= step / 2.0 + ulps + 1e-9);
            prop_assert!(err <= global_step / 2.0 + ulps + 1e-9);
        }
    }

    /// Average-case dominance: on smooth (bounded-variation) data the total
    /// LDQ L1 error is ≤ the layer-wise DQ error.
    #[test]
    fn ldq_l1_domination_on_smooth_data(seed in 0u64..64, block in 16usize..512) {
        let t = cq_tensor::init::long_tailed(&[2048], 0.5, 0.05, 20.0, seed);
        let (l_ldq, l_dq) = error_domination(&t, LdqConfig::new(block, IntFormat::Int8));
        prop_assert!(l_ldq <= l_dq * 1.001 + 1e-4, "ldq {l_ldq} > dq {l_dq}");
    }

    /// LDQ reconstruction preserves shape and block count covers all data.
    #[test]
    fn ldq_reconstruction_shape(t in tensor_strategy(300), block in 1usize..128) {
        let ldq = LdqTensor::quantize(&t, LdqConfig::new(block, IntFormat::Int8));
        prop_assert_eq!(ldq.len(), t.len());
        let back = ldq.dequantize();
        prop_assert_eq!(back.dims(), t.dims());
        let expect_blocks = t.len().div_ceil(block);
        prop_assert_eq!(ldq.blocks().len(), expect_blocks);
    }

    /// Compression ratio formulas: monotone in K, bounded by 4, and the
    /// measured ratio matches the analytic one when K divides N.
    #[test]
    fn compression_ratio_properties(k in 1usize..10_000) {
        let c = compression_ratio_ldq(k);
        prop_assert!(c > 0.0 && c < 4.0);
        prop_assert!(compression_ratio_ldq(k + 1) > c);
        prop_assert!(compression_ratio_dq(1 << 20) > c);
        prop_assert!(compression_loss(k, 1 << 20) > 0.0);
    }

    /// E²BQM always selects the candidate with minimal estimated error.
    #[test]
    fn e2bqm_selects_minimum(t in tensor_strategy(200), ways in 1usize..6) {
        let q = E2bqmQuantizer::new(
            ways,
            CandidateStrategy::ClipSweep,
            ErrorEstimator::Rectilinear,
            IntFormat::Int8,
        );
        let sel = q.quantize(&t);
        let min = sel.errors.iter().cloned().fold(f64::INFINITY, f64::min);
        prop_assert!(sel.errors[sel.way] <= min + 1e-12);
        prop_assert_eq!(sel.errors.len(), ways);
    }

    /// E²BQM with the MSE estimator is never worse (in MSE) than the plain
    /// way-0 max-|X| quantization it multiplexes over.
    #[test]
    fn e2bqm_mse_never_worse_than_plain(t in tensor_strategy(300)) {
        let q = E2bqmQuantizer::new(
            4,
            CandidateStrategy::ClipSweep,
            ErrorEstimator::Mse,
            IntFormat::Int8,
        );
        let sel = q.quantize(&t);
        prop_assert!(sel.errors[sel.way] <= sel.errors[0] + 1e-12);
    }

    /// Fake-quantization through any named training quantizer keeps the
    /// maximum absolute error bounded by the layer-wise INT8 step size of
    /// the widest candidate (sanity envelope: no wild values appear).
    #[test]
    fn training_quantizers_bounded(t in tensor_strategy(300)) {
        use cq_quant::TrainingQuantizer;
        for q in [
            TrainingQuantizer::zhu2019(),
            TrainingQuantizer::zhu2019_hqt(),
            TrainingQuantizer::zhang2020(),
            TrainingQuantizer::zhang2020_hqt(),
        ] {
            let back = q.fake_quantize(&t);
            prop_assert_eq!(back.dims(), t.dims());
            prop_assert!(back.max_abs() <= t.max_abs() * (1.0 + 1e-4) + 1e-6);
        }
    }
}
