//! Edge-case proptests for `pow2_multiplier` — the bitwise acceptance
//! condition behind every power-of-two shortcut in the workspace (the
//! shared-quotient E²BQM evaluation and the int-domain ladder guard).
//!
//! The predicate promises: `Some(m)` only when `m = scale0/scale_w` is a
//! finite power of two ≥ 1 **and** `scale_w * m == scale0` bitwise, so
//! `v/scale_w` may be computed as `(v/scale0)·m` with identical codes.
//! These tests pin its behavior where f32 arithmetic gets treacherous:
//! subnormal operands, ratios at the exponent boundaries, and ratios that
//! overflow to ∞.

use cq_quant::fast::pow2_multiplier;
use proptest::prelude::*;

/// f32 values spanning the entire positive range, exponent-uniform:
/// subnormals, normals near both boundaries, and exact powers of two.
fn positive_f32_full_range() -> impl Strategy<Value = f32> {
    prop_oneof![
        // Exponent-uniform normals (uniform bits in the exponent field).
        (1u32..255, 0u32..(1 << 23)).prop_map(|(e, m)| f32::from_bits((e << 23) | m)),
        // Subnormals (exponent field 0, nonzero mantissa).
        (1u32..(1 << 23)).prop_map(f32::from_bits),
        // Exact powers of two across the full exponent range.
        (1u32..255).prop_map(|e| f32::from_bits(e << 23)),
        Just(f32::MIN_POSITIVE),
        Just(f32::MAX),
    ]
}

proptest! {
    /// Soundness: whenever the predicate accepts, the multiplier really
    /// is a power of two ≥ 1 and really multiplies back bitwise — for
    /// *any* operand pair, including subnormal `scale_w`.
    #[test]
    fn acceptance_implies_bitwise_roundtrip(
        scale0 in positive_f32_full_range(),
        scale_w in positive_f32_full_range(),
    ) {
        if let Some(m) = pow2_multiplier(scale0, scale_w) {
            prop_assert!(m.is_finite() && m >= 1.0);
            prop_assert_eq!(m.to_bits() & 0x007f_ffff, 0, "mantissa not pow2: {}", m);
            prop_assert_eq!((scale_w * m).to_bits(), scale0.to_bits());
            // The commutation direction the fast path relies on:
            // scale0 / m recovers scale_w bitwise too (division by an
            // exact power of two with a representable result is exact).
            prop_assert_eq!((scale0 / m).to_bits(), scale_w.to_bits());
        }
    }

    /// Completeness on constructed ladders: scale_w · 2^k built by exact
    /// doubling is accepted with exactly m = 2^k whenever the product
    /// stays finite — including ladders rooted at subnormal scales
    /// (doubling a subnormal is exact).
    #[test]
    fn exact_ladders_are_accepted(
        scale_w in positive_f32_full_range(),
        k in 0u32..40,
    ) {
        let mut scale0 = scale_w;
        let mut overflowed = false;
        for _ in 0..k {
            scale0 *= 2.0;
            if !scale0.is_finite() {
                overflowed = true;
                break;
            }
        }
        if overflowed {
            // The ratio itself is ∞ or the product can't reproduce —
            // either way the predicate must reject.
            prop_assert_eq!(pow2_multiplier(f32::INFINITY, scale_w), None);
        } else {
            let got = pow2_multiplier(scale0, scale_w);
            let expect = 2.0f32.powi(k as i32);
            // m = 2^k might itself overflow f32 only beyond k=127 (not
            // reachable here), so acceptance is unconditional.
            prop_assert_eq!(got, Some(expect), "scale_w={:e} k={}", scale_w, k);
        }
    }

    /// Ratios below 1 (scale0 finer than scale_w) are always rejected:
    /// the shortcut only rescales *up* the ladder.
    #[test]
    fn sub_unit_ratios_rejected(
        scale_w in positive_f32_full_range(),
        k in 1u32..40,
    ) {
        let scale0 = scale_w / 2.0f32.powi(k as i32);
        if scale0 > 0.0 {
            prop_assert_eq!(pow2_multiplier(scale0, scale_w), None);
        }
    }

    /// Non-power-of-two ratios are rejected even when both operands are
    /// perfectly normal.
    #[test]
    fn non_pow2_ratios_rejected(
        e in -60i32..60,
        m in 1u32..(1 << 23),
    ) {
        // A scale with a nonzero mantissa: ratio of 2^e · (1+m/2^23) to
        // 2^e is exactly that non-pow2 value.
        let scale_w = 2.0f32.powi(e);
        let scale0 = f32::from_bits(scale_w.to_bits() | m);
        prop_assert_eq!(pow2_multiplier(scale0, scale_w), None);
    }
}

/// Exponent-boundary table: the exact cases the int-path ladder guard
/// must agree on, spelled out so a regression names the boundary it broke.
#[test]
fn exponent_boundary_cases() {
    let min_sub = f32::from_bits(1); // smallest positive subnormal
    let max_sub = f32::from_bits(0x007f_ffff); // largest subnormal

    // Identity is always on the ladder (m = 1).
    assert_eq!(pow2_multiplier(1.0, 1.0), Some(1.0));
    assert_eq!(pow2_multiplier(min_sub, min_sub), Some(1.0));
    assert_eq!(pow2_multiplier(f32::MAX, f32::MAX), Some(1.0));

    // Subnormal-rooted ladders: doubling is exact, so accepted.
    assert_eq!(pow2_multiplier(min_sub * 2.0, min_sub), Some(2.0));
    assert_eq!(pow2_multiplier(min_sub * 1024.0, min_sub), Some(1024.0));

    // Largest-subnormal doubling crosses into the normal range *exactly*
    // (doubling is a fixed-point left shift: 0.1…1₂·2⁻¹²⁶ becomes
    // 1.1…1₂·2⁻¹²⁶ with all 23 mantissa bits intact), so the crossing is
    // accepted — the guard is about exactness, not about which range the
    // operands live in.
    let doubled = max_sub * 2.0;
    assert_eq!(pow2_multiplier(doubled, max_sub), Some(2.0));
    assert_eq!((doubled / 2.0).to_bits(), max_sub.to_bits());

    // Overflowing ratio: 2^127 / 2^-126 = 2^253 → ∞ → reject.
    let huge = 2.0f32.powi(127);
    let tiny = 2.0f32.powi(-126);
    assert_eq!(pow2_multiplier(huge, tiny), None);

    // Ratio exactly at the top of the exponent range: 2^127 / 1 = 2^127
    // is finite and exact → accept.
    assert_eq!(pow2_multiplier(huge, 1.0), Some(huge));

    // f32::MAX is not a power of two: MAX / (MAX/2^k) has a non-pow2
    // ratio representation only by luck; the safe cases are exact halves.
    assert_eq!(pow2_multiplier(f32::MAX, f32::MAX / 2.0), Some(2.0));

    // Degenerate operands: zero, negative, NaN, ∞ all reject.
    for bad in [0.0f32, -1.0, f32::NAN, f32::INFINITY] {
        assert_eq!(pow2_multiplier(bad, 1.0), None, "scale0 {bad}");
        assert_eq!(pow2_multiplier(1.0, bad), None, "scale_w {bad}");
    }
}
