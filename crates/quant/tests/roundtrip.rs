//! Property-based round-trip tests for LDQ and E²BQM: random shapes and
//! scales, subnormal and saturating inputs, and the guarded quantizer's
//! transparency on clean data.

use cq_quant::e2bqm::dequantize_blocks;
use cq_quant::{E2bqmQuantizer, GuardedQuantizer, IntFormat, LdqConfig, LdqTensor, QuantParams};
use cq_tensor::{init, Tensor};
use proptest::prelude::*;

fn finite_f32() -> impl Strategy<Value = f32> {
    prop_oneof![
        (-100.0f32..100.0),
        (-0.01f32..0.01),
        (-1e4f32..1e4),
        Just(0.0f32),
    ]
}

fn tensor_strategy(max_len: usize) -> impl Strategy<Value = Tensor> {
    prop::collection::vec(finite_f32(), 1..max_len).prop_map(|v| {
        let n = v.len();
        Tensor::from_vec(v, &[n]).expect("len matches")
    })
}

fn any_format() -> impl Strategy<Value = IntFormat> {
    prop_oneof![
        Just(IntFormat::Int4),
        Just(IntFormat::Int8),
        Just(IntFormat::Int12),
        Just(IntFormat::Int16),
    ]
}

proptest! {
    /// Quantization at a fixed scale is idempotent on its own codebook:
    /// re-quantizing a dequantized value recovers the same integer.
    #[test]
    fn fixed_scale_requantize_is_identity(
        q in -127i32..128,
        scale in 1e-6f32..1e3,
        fmt in any_format(),
    ) {
        let p = QuantParams::with_scale(scale, fmt);
        let q = q.clamp(fmt.qmin(), fmt.qmax());
        prop_assert_eq!(p.quantize(p.dequantize(q)), q);
    }

    /// LDQ round-trip over arbitrary shapes: a second quantize→dequantize
    /// pass through the codebook moves nothing by more than one step.
    #[test]
    fn ldq_double_roundtrip_is_stable(
        d0 in 1usize..6, d1 in 1usize..6, d2 in 1usize..48,
        seed in 0u64..32,
        block in 1usize..96,
        fmt in any_format(),
    ) {
        let dims = [d0, d1, d2];
        let t = init::long_tailed(&dims, 0.5, 0.05, 20.0, seed);
        let cfg = LdqConfig::new(block, fmt);
        let once = LdqTensor::quantize(&t, cfg).dequantize();
        let twice = LdqTensor::quantize(&once, cfg).dequantize();
        prop_assert_eq!(twice.dims(), t.dims());
        for ((&a, &b), step) in once
            .data()
            .iter()
            .zip(twice.data())
            .zip(LdqTensor::quantize(&once, cfg).blocks().iter().flat_map(|blk| {
                std::iter::repeat_n(blk.params().scale, blk.len())
            }))
        {
            prop_assert!((a - b).abs() <= step + 1e-9, "a {a} b {b} step {step}");
        }
    }

    /// Subnormal inputs round-trip without producing NaN/inf and with the
    /// usual half-step error bound — the quantizer must not flush a whole
    /// block to garbage just because its statistic is tiny.
    #[test]
    fn subnormal_inputs_roundtrip_finite(
        mag in 1.0f32..8.0,
        len in 1usize..200,
        fmt in any_format(),
    ) {
        let sub = mag * 1e-41; // deep in f32's subnormal range
        let data: Vec<f32> = (0..len).map(|i| if i % 2 == 0 { sub } else { -sub }).collect();
        let t = Tensor::from_vec(data, &[len]).expect("len");
        let back = LdqTensor::quantize(&t, LdqConfig::new(64, fmt)).dequantize();
        for (&orig, &rec) in t.data().iter().zip(back.data()) {
            prop_assert!(rec.is_finite());
            prop_assert!((orig - rec).abs() <= sub, "orig {orig} rec {rec}");
        }
    }

    /// Saturating inputs clip deterministically: anything at or beyond the
    /// representable range lands exactly on ±qmax·scale.
    #[test]
    fn saturating_inputs_clip_to_range_edge(
        overshoot in 1.0f32..1e3,
        scale in 1e-3f32..10.0,
        fmt in any_format(),
    ) {
        let p = QuantParams::with_scale(scale, fmt);
        let edge = scale * fmt.qmax() as f32;
        for v in [edge * (1.0 + overshoot), -(edge * (1.0 + overshoot))] {
            let q = p.quantize(v);
            prop_assert_eq!(q.abs(), fmt.qmax());
            prop_assert_eq!(p.dequantize(q).abs(), edge);
        }
    }

    /// E²BQM block quantization round-trips: reconstruction preserves the
    /// shape, every arbiter tag is a valid way, and no value exceeds the
    /// original magnitude envelope by more than one step.
    #[test]
    fn e2bqm_blocks_roundtrip(t in tensor_strategy(300), block in 1usize..96, ways in 1usize..5) {
        let q = E2bqmQuantizer::new(
            ways,
            cq_quant::CandidateStrategy::ClipSweep,
            cq_quant::ErrorEstimator::Rectilinear,
            IntFormat::Int8,
        );
        let sels = q.quantize_blocks(&t, block);
        prop_assert_eq!(sels.len(), t.len().div_ceil(block));
        for sel in &sels {
            prop_assert!(sel.way < ways);
        }
        let back = dequantize_blocks(&sels, t.dims());
        prop_assert_eq!(back.dims(), t.dims());
        let max_step = sels
            .iter()
            .map(|s| s.selected.params().scale)
            .fold(0.0f32, f32::max);
        prop_assert!(back.max_abs() <= t.max_abs() + max_step + 1e-6);
    }

    /// The guard is transparent on clean data: same selections as the raw
    /// quantizer and an empty event log (the zero-cost property at the
    /// quantizer level).
    #[test]
    fn guard_is_transparent_on_clean_data(t in tensor_strategy(300), block in 1usize..96) {
        let raw = E2bqmQuantizer::hardware_default();
        let guard = GuardedQuantizer::new(raw);
        let plain = raw.quantize_blocks(&t, block);
        let (guarded, events) = guard.quantize_blocks(&t, block);
        prop_assert!(events.is_empty(), "clean data raised {events:?}");
        prop_assert_eq!(guarded.len(), plain.len());
        for (g, p) in guarded.iter().zip(&plain) {
            prop_assert_eq!(g.way, p.way);
            prop_assert_eq!(g.selected.values(), p.selected.values());
        }
    }
}
