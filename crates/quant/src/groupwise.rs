//! Group-wise (per-channel) quantization — Zhong et al. 2020's "quantized
//! in groups" special case (Table III).
//!
//! Where LDQ slices the *flat* stream into fixed-size blocks, group-wise
//! quantization follows the tensor's semantic structure: one statistic per
//! leading-dimension slice (a filter of a conv weight, a row of a dense
//! weight). For weights this matches the per-output-channel scales most
//! deployment stacks use; for hardware it is just LDQ with a
//! shape-dependent block size, so the SQU implements it for free.

use crate::format::IntFormat;
use crate::qtensor::QuantizedTensor;
use cq_tensor::{Tensor, TensorError};

/// A tensor quantized with one parameter set per leading-dimension group.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupQuantized {
    groups: Vec<QuantizedTensor>,
    dims: Vec<usize>,
}

impl GroupQuantized {
    /// Quantizes `x` with one symmetric scale per slice of its leading
    /// dimension.
    ///
    /// # Errors
    ///
    /// Returns a tensor error if `x` is rank 0.
    pub fn quantize(x: &Tensor, format: IntFormat) -> Result<Self, TensorError> {
        if x.rank() == 0 {
            return Err(TensorError::RankMismatch {
                expected: 1,
                actual: 0,
                op: "group quantization",
            });
        }
        let n_groups = x.dims()[0];
        let group_len = x.len() / n_groups.max(1);
        let mut groups = Vec::with_capacity(n_groups);
        for g in 0..n_groups {
            let slice = x.slice_flat(g * group_len, group_len)?;
            groups.push(QuantizedTensor::quantize_symmetric(&slice, format));
        }
        Ok(GroupQuantized {
            groups,
            dims: x.dims().to_vec(),
        })
    }

    /// Reconstructs the full-precision tensor.
    pub fn dequantize(&self) -> Tensor {
        let mut data = Vec::new();
        for g in &self.groups {
            data.extend_from_slice(g.dequantize().data());
        }
        Tensor::from_vec(data, &self.dims).expect("dims preserved")
    }

    /// Number of groups (the leading dimension).
    pub fn n_groups(&self) -> usize {
        self.groups.len()
    }

    /// Per-group scales.
    pub fn scales(&self) -> Vec<f32> {
        self.groups.iter().map(|g| g.params().scale).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qtensor::quant_error;
    use cq_tensor::init;

    #[test]
    fn one_scale_per_output_channel() {
        let w = init::normal(&[8, 16, 3, 3], 0.0, 0.1, 1);
        let gq = GroupQuantized::quantize(&w, IntFormat::Int8).unwrap();
        assert_eq!(gq.n_groups(), 8);
        assert_eq!(gq.scales().len(), 8);
        assert_eq!(gq.dequantize().dims(), w.dims());
    }

    #[test]
    fn groupwise_beats_per_tensor_on_heterogeneous_channels() {
        // Channel 0 tiny, channel 1 large: one scale cannot serve both.
        let mut data = vec![0.001f32; 64];
        data.extend(vec![1.0f32; 64]);
        let w = Tensor::from_vec(data, &[2, 64]).unwrap();
        let per_tensor = QuantizedTensor::quantize_symmetric(&w, IntFormat::Int8);
        let per_group = GroupQuantized::quantize(&w, IntFormat::Int8).unwrap();
        let e_tensor = quant_error(&w, &per_tensor.dequantize());
        let e_group = quant_error(&w, &per_group.dequantize());
        assert!(
            e_group.mse < e_tensor.mse * 0.01,
            "group {} vs tensor {}",
            e_group.mse,
            e_tensor.mse
        );
    }

    #[test]
    fn rank1_tensor_quantizes_elementwise_groups() {
        let x = init::normal(&[5], 0.0, 1.0, 2);
        let gq = GroupQuantized::quantize(&x, IntFormat::Int8).unwrap();
        assert_eq!(gq.n_groups(), 5);
        // Each group is a single element → exactly recoverable.
        let back = gq.dequantize();
        for (a, b) in x.data().iter().zip(back.data()) {
            assert!((a - b).abs() < 1e-6 * a.abs().max(1.0));
        }
    }

    #[test]
    fn rank0_rejected() {
        assert!(GroupQuantized::quantize(&Tensor::scalar(1.0), IntFormat::Int8).is_err());
    }
}
