//! # cq-quant — Hardware-friendly Quantization Technique (HQT)
//!
//! The algorithmic core of the Cambricon-Q reproduction (paper §III):
//!
//! * [`format`](mod@format): fixed-point widths (INT4/8/12/16) and affine quantization
//!   parameters `X_q = round((X − α)/β)`;
//! * [`qtensor`]: the [`QuantizedTensor`] container and error metrics;
//! * [`ldq`]: **Local Dynamic Quantization** — block-local statistic +
//!   quantize in one pass, with the error-domination and compression-ratio
//!   properties from the paper;
//! * [`e2bqm`]: **Error-estimation-based Quantization Multiplexing** — the
//!   unified N-way candidate/arbiter procedure that subsumes shiftable
//!   fixed-point, BiScaled-FxP, adaptive precision and direction-sensitive
//!   clipping;
//! * [`algorithms`]: the Table III algorithm registry plus ready-made
//!   training quantizers (Zhu 2019 / Zhang 2020, each ± HQT);
//! * [`intdomain`]: the dequantization-free integer-domain strategy — one
//!   base quantization, shift-derived ladder candidates, i64 error folds,
//!   i8 codes + an exact power-of-two scale for `cq_par::gemm_i8`.
//!
//! # Examples
//!
//! ```
//! use cq_quant::{IntFormat, LdqConfig, LdqTensor};
//! use cq_tensor::init;
//!
//! // One-pass block-local quantization of a long-tailed gradient tensor.
//! let grads = init::long_tailed(&[4096], 0.01, 0.01, 50.0, 42);
//! let q = LdqTensor::quantize(&grads, LdqConfig::new(1024, IntFormat::Int8));
//! let restored = q.dequantize();
//! assert!(grads.cosine_similarity(&restored).unwrap() > 0.98);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod algorithms;
pub mod e2bqm;
pub mod fast;
pub mod format;
pub mod groupwise;
pub mod guard;
pub mod intdomain;
pub mod ldq;
pub mod qtensor;
pub mod rounding;

pub use algorithms::{QuantScheme, TrainingQuantizer, WeightUpdatePrecision};
pub use e2bqm::{CandidateStrategy, E2bqmQuantizer, E2bqmSelection, ErrorEstimator};
pub use fast::QuantScratch;
pub use format::{IntFormat, QuantParams};
pub use groupwise::GroupQuantized;
pub use guard::{DegradeEvent, GuardAction, GuardedQuantizer, QuantAnomaly};
pub use intdomain::{IntDomainQuantizer, IntDomainScratch, IntSelection};
pub use ldq::{LdqConfig, LdqTensor};
pub use qtensor::{quant_error, QuantError, QuantizedTensor};
pub use rounding::{MiniFloat, RoundingMode};
