//! Rounding modes and low-precision float formats.
//!
//! Two Table III special cases live here: **stochastic rounding** (Wang et
//! al. 2018 require it for FP8 training; the paper's Table IX notes their
//! hardware does not implement the RNG — ours models it faithfully) and
//! the **FP8 (e5m2) format** itself, so the Wang-2018 row of the algorithm
//! registry is executable rather than descriptive.

use cq_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// How real values map to representable grid points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RoundingMode {
    /// Round to nearest, ties away from zero (the hardware default).
    #[default]
    Nearest,
    /// Stochastic rounding: round up with probability equal to the
    /// fractional distance. Unbiased in expectation, which is what keeps
    /// tiny gradient contributions from vanishing (Wang et al. 2018).
    Stochastic,
    /// Truncation toward zero (the cheapest hardware, worst bias).
    TowardZero,
}

impl RoundingMode {
    /// Rounds `x` (in units of the quantization step) to an integer.
    pub fn round(&self, x: f32, rng: &mut StdRng) -> i64 {
        match self {
            RoundingMode::Nearest => x.round() as i64,
            RoundingMode::TowardZero => x.trunc() as i64,
            RoundingMode::Stochastic => {
                let floor = x.floor();
                let frac = x - floor;
                floor as i64 + (rng.gen::<f32>() < frac) as i64
            }
        }
    }
}

impl fmt::Display for RoundingMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RoundingMode::Nearest => "nearest",
            RoundingMode::Stochastic => "stochastic",
            RoundingMode::TowardZero => "toward-zero",
        };
        f.write_str(s)
    }
}

/// A miniature floating-point format: 1 sign bit, `exp_bits` exponent
/// bits, `mant_bits` mantissa bits (IEEE-style, with subnormals).
///
/// # Examples
///
/// ```
/// use cq_quant::rounding::MiniFloat;
///
/// let fp8 = MiniFloat::fp8_e5m2();
/// let x = fp8.quantize(3.1415927);
/// assert!((x - 3.0).abs() < 0.26); // 2 mantissa bits
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MiniFloat {
    /// Exponent bits.
    pub exp_bits: u32,
    /// Mantissa bits.
    pub mant_bits: u32,
}

impl MiniFloat {
    /// FP8 in the e5m2 flavour used by Wang et al. 2018.
    pub fn fp8_e5m2() -> Self {
        MiniFloat {
            exp_bits: 5,
            mant_bits: 2,
        }
    }

    /// FP16 (IEEE half).
    pub fn fp16() -> Self {
        MiniFloat {
            exp_bits: 5,
            mant_bits: 10,
        }
    }

    /// Exponent bias.
    pub fn bias(&self) -> i32 {
        (1 << (self.exp_bits - 1)) - 1
    }

    /// Largest finite magnitude.
    pub fn max_value(&self) -> f32 {
        let max_exp = (1 << self.exp_bits) - 2; // all-ones is inf/nan
        let mant = 2.0 - 2f32.powi(-(self.mant_bits as i32));
        mant * 2f32.powi(max_exp - self.bias())
    }

    /// Smallest positive normal magnitude.
    pub fn min_normal(&self) -> f32 {
        2f32.powi(1 - self.bias())
    }

    /// Quantizes one value to the nearest representable number (round to
    /// nearest, saturating at ±max).
    pub fn quantize(&self, x: f32) -> f32 {
        self.quantize_with(x, RoundingMode::Nearest, &mut StdRng::seed_from_u64(0))
    }

    /// Quantizes one value with an explicit rounding mode.
    pub fn quantize_with(&self, x: f32, mode: RoundingMode, rng: &mut StdRng) -> f32 {
        if x == 0.0 || !x.is_finite() {
            return if x.is_finite() {
                0.0
            } else {
                x.signum() * self.max_value()
            };
        }
        let sign = x.signum();
        let mag = x.abs().min(self.max_value());
        // Exponent of the enclosing binade, clamped at the subnormal floor.
        let exp = mag.log2().floor().max(1.0 - self.bias() as f32) as i32;
        let step = 2f32.powi(exp - self.mant_bits as i32);
        let q = mode.round(mag / step, rng);
        sign * (q as f32 * step).min(self.max_value())
    }

    /// Quantizes a whole tensor.
    pub fn quantize_tensor(&self, x: &Tensor, mode: RoundingMode, seed: u64) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed);
        let data = x
            .data()
            .iter()
            .map(|&v| self.quantize_with(v, mode, &mut rng))
            .collect();
        Tensor::from_vec(data, x.dims()).expect("same shape")
    }
}

impl fmt::Display for MiniFloat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}m{}", self.exp_bits, self.mant_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq_tensor::init;

    #[test]
    fn nearest_and_trunc() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(RoundingMode::Nearest.round(2.5, &mut rng), 3);
        assert_eq!(RoundingMode::Nearest.round(-2.5, &mut rng), -3);
        assert_eq!(RoundingMode::TowardZero.round(2.9, &mut rng), 2);
        assert_eq!(RoundingMode::TowardZero.round(-2.9, &mut rng), -2);
    }

    #[test]
    fn stochastic_rounding_is_unbiased() {
        let mut rng = StdRng::seed_from_u64(7);
        let x = 2.3f32;
        let n = 20_000;
        let sum: i64 = (0..n)
            .map(|_| RoundingMode::Stochastic.round(x, &mut rng))
            .sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 2.3).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn stochastic_preserves_tiny_updates_in_expectation() {
        // The Wang-2018 motivation: g = 0.1 quantization steps vanishes
        // under nearest rounding but survives stochastically.
        let mut rng = StdRng::seed_from_u64(9);
        let tiny = 0.1f32;
        let nearest: i64 = (0..1000)
            .map(|_| RoundingMode::Nearest.round(tiny, &mut rng))
            .sum();
        assert_eq!(nearest, 0);
        let stochastic: i64 = (0..1000)
            .map(|_| RoundingMode::Stochastic.round(tiny, &mut rng))
            .sum();
        assert!((stochastic - 100).abs() < 40, "sum {stochastic}");
    }

    #[test]
    fn fp8_range_and_precision() {
        let fp8 = MiniFloat::fp8_e5m2();
        assert_eq!(fp8.bias(), 15);
        assert!((fp8.max_value() - 57344.0).abs() < 1.0);
        // Exact powers of two survive.
        assert_eq!(fp8.quantize(4.0), 4.0);
        assert_eq!(fp8.quantize(-0.5), -0.5);
        // 2 mantissa bits: step at [2,4) is 0.5.
        assert_eq!(fp8.quantize(3.3), 3.5);
        // Saturation.
        assert_eq!(fp8.quantize(1e9), fp8.max_value());
    }

    #[test]
    fn fp16_is_much_finer_than_fp8() {
        let x = init::normal(&[1000], 0.0, 1.0, 3);
        let e8 = x
            .l1_distance(&MiniFloat::fp8_e5m2().quantize_tensor(&x, RoundingMode::Nearest, 0))
            .unwrap();
        let e16 = x
            .l1_distance(&MiniFloat::fp16().quantize_tensor(&x, RoundingMode::Nearest, 0))
            .unwrap();
        assert!(e8 > e16 * 50.0, "fp8 {e8} vs fp16 {e16}");
    }

    #[test]
    fn zero_and_nonfinite() {
        let fp8 = MiniFloat::fp8_e5m2();
        assert_eq!(fp8.quantize(0.0), 0.0);
        assert_eq!(fp8.quantize(f32::INFINITY), fp8.max_value());
        assert_eq!(fp8.quantize(f32::NEG_INFINITY), -fp8.max_value());
    }

    #[test]
    fn display() {
        assert_eq!(MiniFloat::fp8_e5m2().to_string(), "e5m2");
        assert_eq!(RoundingMode::Stochastic.to_string(), "stochastic");
    }
}
