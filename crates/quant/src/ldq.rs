//! Local Dynamic Quantization (LDQ) — paper §III.A.
//!
//! Layer-wise statistic-based quantization must scan the whole tensor once
//! to obtain θ = max|X| and a second time to quantize — the "bottleneck"
//! phenomenon that forces ≥2× data access. LDQ instead slices the data into
//! fixed-size blocks; each block's statistic only depends on that block, so
//! statistic and quantization happen consecutively while the block sits in
//! the on-chip SQU buffer (one-pass access).
//!
//! Two analytic properties from the paper are implemented and tested here:
//!
//! 1. **Error domination**: per-block θᵢ ≤ global θ, and with dynamic (non-
//!    clipping) quantization a smaller θ shrinks the rounding step, so the
//!    per-element *error bound* (step/2) of LDQ is ≤ layer-wise DQ's. (On
//!    adversarial single elements the realized round-to-nearest error is not
//!    monotone in step size, but the bound — and the error on realistic
//!    data distributions — is; both are verified by tests.)
//! 2. **Compression ratio**: `C_LDQ = 4/(1 + 2/K)` versus `C_DQ = 4/(1 + 2/N)`
//!    (1-byte payload + 2-byte statistic per block); the efficiency loss is
//!    <1% for K ≥ 200 and <0.05% for K ≥ 4000.

use crate::fast;
use crate::format::{IntFormat, QuantParams};
use crate::qtensor::QuantizedTensor;
use cq_par::Pool;
use cq_tensor::{Backend, Tensor};

/// Configuration for Local Dynamic Quantization.
///
/// # Examples
///
/// ```
/// use cq_quant::{IntFormat, LdqConfig};
///
/// let cfg = LdqConfig::new(256, IntFormat::Int8);
/// assert_eq!(cfg.block_size, 256);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LdqConfig {
    /// Block size K. The paper's SQU uses 4 KB buffers; at 4 bytes per
    /// unquantized FP32 element that is K = 1024 elements per buffer.
    pub block_size: usize,
    /// Target integer format.
    pub format: IntFormat,
}

impl LdqConfig {
    /// Creates a configuration.
    ///
    /// # Panics
    ///
    /// Panics if `block_size` is zero.
    pub fn new(block_size: usize, format: IntFormat) -> Self {
        assert!(block_size > 0, "LDQ block size must be positive");
        LdqConfig { block_size, format }
    }

    /// Default configuration matching the hardware SQU: 1024-element blocks
    /// (4 KB of FP32), INT8.
    pub fn squ_default() -> Self {
        LdqConfig::new(1024, IntFormat::Int8)
    }
}

/// A tensor quantized block-locally: each block carries its own parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct LdqTensor {
    blocks: Vec<QuantizedTensor>,
    thetas: Vec<f32>,
    dims: Vec<usize>,
    config: LdqConfig,
}

impl LdqTensor {
    /// Quantizes `x` block-by-block. This is the functional model of the
    /// SQU's fused statistic+quantize (S·Q in Fig. 7): every block is read
    /// once, its θᵢ computed, and immediately quantized.
    ///
    /// Dispatches on [`cq_tensor::default_backend`]: the fast backend fuses
    /// the θ scan and the quantize loop into one cache-resident pass per
    /// block (bit-identical to naive — see [`crate::fast`]), fanning out
    /// over the global pool for large tensors.
    pub fn quantize(x: &Tensor, config: LdqConfig) -> Self {
        Self::quantize_with(x, config, cq_tensor::default_backend())
    }

    /// [`Self::quantize`] with an explicit backend (A/B testing and the
    /// parity suite).
    pub fn quantize_with(x: &Tensor, config: LdqConfig, backend: Backend) -> Self {
        let mut sp = cq_obs::span!("quant", "ldq_quantize");
        if sp.is_recording() {
            sp.arg("elems", x.len())
                .arg("blocks", x.len().div_ceil(config.block_size))
                .arg("format", config.format.to_string().as_str());
            cq_obs::counter!("quant.calls").incr();
            cq_obs::counter!("quant.blocks").add(x.len().div_ceil(config.block_size) as u64);
        }
        match backend {
            Backend::Naive => Self::quantize_naive(x, config),
            Backend::Fast => {
                if x.len() < fast::PAR_MIN_ELEMS || Pool::global().threads() == 1 {
                    Self::quantize_fused_serial(x, config)
                } else {
                    Self::quantize_fast_on(Pool::global(), x, config)
                }
            }
        }
    }

    /// The reference implementation: two passes per block through separate
    /// tensor ops (slice → max-|X| → quantize), the bit-exactness oracle
    /// for the fused path.
    pub fn quantize_naive(x: &Tensor, config: LdqConfig) -> Self {
        let n = x.len();
        let nblocks = n.div_ceil(config.block_size.max(1));
        let mut blocks = Vec::with_capacity(nblocks);
        let mut thetas = Vec::with_capacity(nblocks);
        let mut start = 0;
        while start < n {
            let len = config.block_size.min(n - start);
            let block = x
                .slice_flat(start, len)
                .expect("block bounds derived from len");
            let theta = block.max_abs();
            blocks.push(QuantizedTensor::quantize(
                &block,
                QuantParams::symmetric(theta, config.format),
            ));
            thetas.push(fast::effective_theta(theta));
            start += len;
        }
        LdqTensor {
            blocks,
            thetas,
            dims: x.dims().to_vec(),
            config,
        }
    }

    /// Fused single-pass kernel for one block: θ and codes produced while
    /// the slice is cache-resident, no intermediate tensors.
    fn quantize_block_fused(data: &[f32], format: IntFormat) -> (QuantizedTensor, f32) {
        let theta = fast::block_theta(data);
        let params = QuantParams::symmetric(theta, format);
        let mut codes = Vec::with_capacity(data.len());
        fast::quantize_codes_into(data, params, &mut codes);
        (
            QuantizedTensor::from_codes(codes, params, &[data.len()]),
            fast::effective_theta(theta),
        )
    }

    /// Serial fused path.
    fn quantize_fused_serial(x: &Tensor, config: LdqConfig) -> Self {
        let data = x.data();
        let n = data.len();
        let nblocks = n.div_ceil(config.block_size.max(1));
        let mut blocks = Vec::with_capacity(nblocks);
        let mut thetas = Vec::with_capacity(nblocks);
        let mut start = 0;
        while start < n {
            let len = config.block_size.min(n - start);
            let (b, t) = Self::quantize_block_fused(&data[start..start + len], config.format);
            blocks.push(b);
            thetas.push(t);
            start += len;
        }
        LdqTensor {
            blocks,
            thetas,
            dims: x.dims().to_vec(),
            config,
        }
    }

    /// Pool-explicit fused path: blocks are partitioned into contiguous
    /// chunks and results are flattened in block order, so the output is
    /// identical for any worker count.
    pub fn quantize_fast_on(pool: &Pool, x: &Tensor, config: LdqConfig) -> Self {
        let data = x.data();
        let n = data.len();
        let nblocks = n.div_ceil(config.block_size.max(1));
        let chunks = Pool::partition(nblocks, pool.threads(), fast::PAR_MIN_BLOCKS);
        let per_chunk: Vec<Vec<(QuantizedTensor, f32)>> = pool.parallel_map(chunks.len(), |ci| {
            let r = chunks[ci].clone();
            let mut out = Vec::with_capacity(r.len());
            for b in r {
                let start = b * config.block_size;
                let len = config.block_size.min(n - start);
                out.push(Self::quantize_block_fused(
                    &data[start..start + len],
                    config.format,
                ));
            }
            out
        });
        let mut blocks = Vec::with_capacity(nblocks);
        let mut thetas = Vec::with_capacity(nblocks);
        for (b, t) in per_chunk.into_iter().flatten() {
            blocks.push(b);
            thetas.push(t);
        }
        LdqTensor {
            blocks,
            thetas,
            dims: x.dims().to_vec(),
            config,
        }
    }

    /// Reconstructs the full-precision tensor.
    pub fn dequantize(&self) -> Tensor {
        let mut data = Vec::with_capacity(self.len());
        self.dequantize_into(&mut data);
        Tensor::from_vec(data, &self.dims).expect("dims preserved by construction")
    }

    /// Appends the reconstructed full-precision values to a caller-owned
    /// buffer, so repeated dequantization (e.g. per training step) reuses
    /// one allocation instead of building fresh per-block tensors.
    pub fn dequantize_into(&self, out: &mut Vec<f32>) {
        out.reserve(self.len());
        for b in &self.blocks {
            b.dequantize_into(out);
        }
    }

    /// The per-block quantized slices.
    pub fn blocks(&self) -> &[QuantizedTensor] {
        &self.blocks
    }

    /// Per-block statistics θᵢ, exactly as the quantizer used them: the
    /// *effective* θ after degenerate-statistic clamping, i.e. the value
    /// passed to [`QuantParams::symmetric`]. Blocks whose raw max-|X| was
    /// zero or non-finite (all-zero blocks, NaN/∞ contamination) report
    /// θᵢ = 0.0 — the sentinel under which every element quantizes to 0 —
    /// rather than a value reconstructed from the sentinel scale.
    pub fn block_thetas(&self) -> &[f32] {
        &self.thetas
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.blocks.iter().map(|b| b.len()).sum()
    }

    /// Whether the tensor is empty.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Original dims.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// The configuration used.
    pub fn config(&self) -> LdqConfig {
        self.config
    }

    /// Total storage in bytes (packed payload + 2-byte statistic per block).
    pub fn storage_bytes(&self) -> f64 {
        self.blocks.iter().map(|b| b.storage_bytes()).sum()
    }

    /// Measured compression ratio versus FP32 storage.
    pub fn compression_ratio(&self) -> f64 {
        let fp32 = self.len() as f64 * 4.0;
        fp32 / self.storage_bytes()
    }
}

/// Analytic compression ratio of LDQ with 1-byte payload and a 2-byte
/// statistic per K-element block: `C_LDQ = 4 / (1 + 2/K)` (paper §III.A).
pub fn compression_ratio_ldq(k: usize) -> f64 {
    4.0 / (1.0 + 2.0 / k as f64)
}

/// Analytic compression ratio of layer-wise DQ over N elements:
/// `C_DQ = 4 / (1 + 2/N)`.
pub fn compression_ratio_dq(n: usize) -> f64 {
    4.0 / (1.0 + 2.0 / n as f64)
}

/// Relative compression-efficiency loss of LDQ(K) versus layer-wise DQ(N).
pub fn compression_loss(k: usize, n: usize) -> f64 {
    1.0 - compression_ratio_ldq(k) / compression_ratio_dq(n)
}

/// Layer-wise dynamic quantization (DQ): one global θ for the whole tensor.
/// This is the two-pass baseline that LDQ replaces.
pub fn quantize_layerwise(x: &Tensor, format: IntFormat) -> QuantizedTensor {
    QuantizedTensor::quantize_symmetric(x, format)
}

/// Verifies the LDQ error-domination lemma for one tensor: the elementwise
/// absolute rounding error of LDQ never exceeds that of layer-wise DQ.
/// Returns the pair `(ldq_l1, dq_l1)` of total L1 errors.
pub fn error_domination(x: &Tensor, config: LdqConfig) -> (f64, f64) {
    let ldq = LdqTensor::quantize(x, config).dequantize();
    let dq = quantize_layerwise(x, config.format).dequantize();
    let mut l_ldq = 0.0f64;
    let mut l_dq = 0.0f64;
    for ((&orig, &a), &b) in x.data().iter().zip(ldq.data()).zip(dq.data()) {
        l_ldq += (orig - a).abs() as f64;
        l_dq += (orig - b).abs() as f64;
    }
    (l_ldq, l_dq)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qtensor::quant_error;
    use cq_tensor::init;

    #[test]
    fn blocks_cover_all_elements() {
        let x = init::normal(&[1000], 0.0, 1.0, 1);
        let ldq = LdqTensor::quantize(&x, LdqConfig::new(256, IntFormat::Int8));
        assert_eq!(ldq.blocks().len(), 4); // 256+256+256+232
        assert_eq!(ldq.len(), 1000);
        assert_eq!(ldq.dequantize().dims(), &[1000]);
    }

    #[test]
    fn block_theta_never_exceeds_global_theta() {
        let x = init::long_tailed(&[4096], 1.0, 0.02, 30.0, 7);
        let global = x.max_abs();
        let ldq = LdqTensor::quantize(&x, LdqConfig::new(128, IntFormat::Int8));
        for &theta in ldq.block_thetas() {
            assert!(theta <= global + 1e-5);
        }
    }

    #[test]
    fn ldq_error_dominates_dq_error_elementwise() {
        // The central lemma of §III.A: LDQ rounding error ≤ DQ rounding error.
        for seed in 0..5 {
            let x = init::long_tailed(&[2048], 0.5, 0.05, 20.0, seed);
            let (l_ldq, l_dq) = error_domination(&x, LdqConfig::new(64, IntFormat::Int8));
            assert!(
                l_ldq <= l_dq + 1e-4,
                "seed {seed}: LDQ L1 {l_ldq} > DQ L1 {l_dq}"
            );
        }
    }

    #[test]
    fn ldq_strictly_better_on_heterogeneous_blocks() {
        // First half tiny values, second half large: per-block scales should
        // recover the tiny half much better.
        let mut data = vec![0.001f32; 512];
        data.extend(vec![1.0f32; 512]);
        let x = Tensor::from_vec(data, &[1024]).unwrap();
        let cfg = LdqConfig::new(512, IntFormat::Int8);
        let e_ldq = quant_error(&x, &LdqTensor::quantize(&x, cfg).dequantize());
        let e_dq = quant_error(&x, &quantize_layerwise(&x, IntFormat::Int8).dequantize());
        assert!(
            e_ldq.mse < e_dq.mse * 0.01,
            "ldq {} dq {}",
            e_ldq.mse,
            e_dq.mse
        );
    }

    #[test]
    fn compression_ratio_formulas() {
        // Paper: K >= 200 -> loss < 1%; K >= 4000 -> loss < 0.05%.
        assert!((compression_ratio_ldq(usize::MAX) - 4.0).abs() < 1e-9);
        let n = 1 << 20;
        assert!(compression_loss(200, n) < 0.01);
        assert!(compression_loss(4000, n) < 0.0005);
        assert!(compression_loss(10, n) > 0.01);
    }

    #[test]
    fn measured_compression_matches_analytic() {
        let x = init::normal(&[4096], 0.0, 1.0, 3);
        let ldq = LdqTensor::quantize(&x, LdqConfig::new(256, IntFormat::Int8));
        let measured = ldq.compression_ratio();
        let analytic = compression_ratio_ldq(256);
        assert!(
            (measured - analytic).abs() < 1e-6,
            "measured {measured} analytic {analytic}"
        );
    }

    #[test]
    fn single_block_equals_layerwise() {
        let x = init::normal(&[100], 0.0, 1.0, 9);
        let ldq = LdqTensor::quantize(&x, LdqConfig::new(1000, IntFormat::Int8));
        let dq = quantize_layerwise(&x, IntFormat::Int8);
        assert_eq!(ldq.blocks().len(), 1);
        assert_eq!(ldq.dequantize(), dq.dequantize());
    }

    #[test]
    fn empty_tensor() {
        let x = Tensor::zeros(&[0]);
        let ldq = LdqTensor::quantize(&x, LdqConfig::squ_default());
        assert!(ldq.is_empty());
        assert_eq!(ldq.dequantize().len(), 0);
    }

    #[test]
    #[should_panic(expected = "block size must be positive")]
    fn zero_block_size_panics() {
        let _ = LdqConfig::new(0, IntFormat::Int8);
    }

    #[test]
    fn block_thetas_report_effective_theta() {
        // All-zero block: the quantizer clamps the degenerate statistic to
        // θ = 0 (sentinel scale 1.0); block_thetas reports that same 0,
        // not a value reconstructed from the sentinel scale.
        let mut data = vec![0.0f32; 4];
        data.extend([1.0, -2.0, 0.5, 0.25]);
        let x = Tensor::from_vec(data, &[8]).unwrap();
        for backend in [Backend::Naive, Backend::Fast] {
            let ldq = LdqTensor::quantize_with(&x, LdqConfig::new(4, IntFormat::Int8), backend);
            assert_eq!(ldq.block_thetas(), &[0.0, 2.0], "{backend:?}");
            assert_eq!(ldq.blocks()[0].params().scale, 1.0, "sentinel scale");
        }
    }

    #[test]
    fn dequantize_into_appends_and_reuses_buffer() {
        let x = init::normal(&[300], 0.0, 1.0, 2);
        let ldq = LdqTensor::quantize(&x, LdqConfig::new(128, IntFormat::Int8));
        let mut buf = Vec::new();
        ldq.dequantize_into(&mut buf);
        assert_eq!(buf.len(), 300);
        assert_eq!(buf, ldq.dequantize().data());
        // Steady state: clearing and refilling must not reallocate.
        buf.clear();
        let p = buf.as_ptr();
        ldq.dequantize_into(&mut buf);
        assert_eq!(buf.as_ptr(), p, "buffer reallocated on reuse");
    }

    #[test]
    fn multidimensional_shape_preserved() {
        let x = init::normal(&[4, 8, 8], 0.0, 1.0, 5);
        let ldq = LdqTensor::quantize(&x, LdqConfig::new(64, IntFormat::Int8));
        assert_eq!(ldq.dequantize().dims(), &[4, 8, 8]);
    }
}
