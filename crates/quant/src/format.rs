//! Fixed-point formats and quantization parameters.
//!
//! Cambricon-Q's PE array is built from 4-bit operators and reaches wider
//! widths (8/12/16-bit) by time-serial composition (paper §IV.D, §VII.C).
//! This module models the numeric side: the [`IntFormat`] widths the
//! hardware supports and the affine [`QuantParams`] (scale β, offset α) of
//! the statistic-based quantization `X_q = round((X − α)/β)`.

use std::fmt;

/// A fixed-point integer width supported by the Cambricon-Q PE array.
///
/// Widths are multiples of 4 because the PEs are 4-bit operators composed
/// bit-serially (paper §IV.D).
///
/// # Examples
///
/// ```
/// use cq_quant::IntFormat;
///
/// assert_eq!(IntFormat::Int8.bits(), 8);
/// assert_eq!(IntFormat::Int8.qmax(), 127);
/// assert_eq!(IntFormat::Int8.pe_passes(), 2); // two 4-bit serial passes
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum IntFormat {
    /// 4-bit fixed point (single PE pass).
    Int4,
    /// 8-bit fixed point (the paper's primary training format).
    Int8,
    /// 12-bit fixed point.
    Int12,
    /// 16-bit fixed point.
    Int16,
}

impl IntFormat {
    /// All supported widths, narrowest first.
    pub const ALL: [IntFormat; 4] = [
        IntFormat::Int4,
        IntFormat::Int8,
        IntFormat::Int12,
        IntFormat::Int16,
    ];

    /// Bit width of the format.
    pub fn bits(&self) -> u32 {
        match self {
            IntFormat::Int4 => 4,
            IntFormat::Int8 => 8,
            IntFormat::Int12 => 12,
            IntFormat::Int16 => 16,
        }
    }

    /// Number of bytes an element occupies when stored (4-bit packs two per
    /// byte, counted as half a byte).
    pub fn bytes(&self) -> f64 {
        self.bits() as f64 / 8.0
    }

    /// Largest representable quantized magnitude (symmetric range).
    ///
    /// Symmetric quantization uses `[-qmax, +qmax]` so that dequantization
    /// is sign-symmetric; this matches max-|X| statistic quantizers.
    pub fn qmax(&self) -> i32 {
        (1i32 << (self.bits() - 1)) - 1
    }

    /// Smallest representable quantized value (`-qmax`, symmetric).
    pub fn qmin(&self) -> i32 {
        -self.qmax()
    }

    /// How many serial passes the 4-bit PE array needs for this width
    /// (paper §IV.D: "4-bit, 8-bit, 12-bit and 16-bit quantization with
    /// 4-bit operators").
    pub fn pe_passes(&self) -> u32 {
        self.bits() / 4
    }
}

impl fmt::Display for IntFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "INT{}", self.bits())
    }
}

/// Affine quantization parameters: `X_q = round((X − offset)/scale)`.
///
/// For the max-|X| statistic quantizers the paper studies, `offset` is zero
/// and `scale = θ / qmax` where θ is the max absolute value of the data
/// being quantized.
///
/// # Examples
///
/// ```
/// use cq_quant::{IntFormat, QuantParams};
///
/// let p = QuantParams::symmetric(2.54, IntFormat::Int8);
/// let q = p.quantize(1.27);
/// assert_eq!(q, 64); // 1.27 / (2.54/127) = 63.5 -> rounds away from zero
/// let back = p.dequantize(q);
/// assert!((back - 1.28).abs() < 0.01);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantParams {
    /// Scale β. Always positive and finite.
    pub scale: f32,
    /// Offset α (zero for symmetric quantization).
    pub offset: f32,
    /// Target integer format.
    pub format: IntFormat,
}

impl QuantParams {
    /// Symmetric parameters from a statistic θ = max|X|.
    ///
    /// Zero or non-finite θ degenerates to a scale of 1.0 so that an
    /// all-zero block quantizes to all zeros losslessly.
    pub fn symmetric(theta: f32, format: IntFormat) -> Self {
        let theta = if theta.is_finite() && theta > 0.0 {
            theta
        } else {
            0.0
        };
        let scale = if theta == 0.0 {
            1.0
        } else {
            theta / format.qmax() as f32
        };
        QuantParams {
            scale,
            offset: 0.0,
            format,
        }
    }

    /// Parameters with an explicit scale (used by E²BQM candidates).
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `scale` is not positive and finite.
    pub fn with_scale(scale: f32, format: IntFormat) -> Self {
        debug_assert!(scale.is_finite() && scale > 0.0, "bad scale {scale}");
        QuantParams {
            scale,
            offset: 0.0,
            format,
        }
    }

    /// Quantizes a single value (round-to-nearest, clamped to the
    /// representable range).
    pub fn quantize(&self, x: f32) -> i32 {
        let q = ((x - self.offset) / self.scale).round() as i64;
        q.clamp(self.format.qmin() as i64, self.format.qmax() as i64) as i32
    }

    /// Dequantizes a single value.
    pub fn dequantize(&self, q: i32) -> f32 {
        q as f32 * self.scale + self.offset
    }

    /// The largest magnitude this parameterization can represent without
    /// clipping.
    pub fn representable_max(&self) -> f32 {
        self.format.qmax() as f32 * self.scale + self.offset.abs()
    }

    /// Whether quantizing `x` would clip (exceed the representable range).
    pub fn clips(&self, x: f32) -> bool {
        let q = ((x - self.offset) / self.scale).round();
        q > self.format.qmax() as f32 || q < self.format.qmin() as f32
    }
}

impl fmt::Display for QuantParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}(scale={:.3e}, offset={:.3e})",
            self.format, self.scale, self.offset
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_widths() {
        assert_eq!(IntFormat::Int4.bits(), 4);
        assert_eq!(IntFormat::Int16.bits(), 16);
        assert_eq!(IntFormat::Int4.qmax(), 7);
        assert_eq!(IntFormat::Int8.qmax(), 127);
        assert_eq!(IntFormat::Int12.qmax(), 2047);
        assert_eq!(IntFormat::Int16.qmax(), 32767);
    }

    #[test]
    fn pe_passes_bit_serial() {
        assert_eq!(IntFormat::Int4.pe_passes(), 1);
        assert_eq!(IntFormat::Int8.pe_passes(), 2);
        assert_eq!(IntFormat::Int12.pe_passes(), 3);
        assert_eq!(IntFormat::Int16.pe_passes(), 4);
    }

    #[test]
    fn bytes_account_for_packing() {
        assert_eq!(IntFormat::Int4.bytes(), 0.5);
        assert_eq!(IntFormat::Int8.bytes(), 1.0);
        assert_eq!(IntFormat::Int16.bytes(), 2.0);
    }

    #[test]
    fn symmetric_roundtrip_at_extremes() {
        let p = QuantParams::symmetric(10.0, IntFormat::Int8);
        assert_eq!(p.quantize(10.0), 127);
        assert_eq!(p.quantize(-10.0), -127);
        assert!((p.dequantize(127) - 10.0).abs() < 1e-6);
    }

    #[test]
    fn quantize_clamps() {
        let p = QuantParams::symmetric(1.0, IntFormat::Int8);
        assert_eq!(p.quantize(100.0), 127);
        assert_eq!(p.quantize(-100.0), -127);
        assert!(p.clips(2.0));
        assert!(!p.clips(0.5));
    }

    #[test]
    fn zero_theta_degenerates_gracefully() {
        let p = QuantParams::symmetric(0.0, IntFormat::Int8);
        assert_eq!(p.quantize(0.0), 0);
        assert_eq!(p.dequantize(0), 0.0);
        let p = QuantParams::symmetric(f32::NAN, IntFormat::Int8);
        assert_eq!(p.quantize(0.0), 0);
    }

    #[test]
    fn rounding_error_bounded_by_half_scale() {
        let p = QuantParams::symmetric(1.0, IntFormat::Int8);
        for i in -100..=100 {
            let x = i as f32 * 0.01;
            let err = (p.dequantize(p.quantize(x)) - x).abs();
            assert!(err <= p.scale / 2.0 + 1e-7, "x={x} err={err}");
        }
    }

    #[test]
    fn display_formats() {
        assert_eq!(IntFormat::Int8.to_string(), "INT8");
        let p = QuantParams::symmetric(1.0, IntFormat::Int4);
        assert!(p.to_string().starts_with("INT4"));
    }

    #[test]
    fn representable_max() {
        let p = QuantParams::symmetric(5.0, IntFormat::Int8);
        assert!((p.representable_max() - 5.0).abs() < 1e-5);
    }
}
