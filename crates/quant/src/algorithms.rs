//! Registry of statistic-based quantized-training algorithms (paper
//! Table III) and the training-time quantizer configurations used by the
//! evaluation (Zhu 2019 and Zhang 2020, each with and without HQT).

use crate::e2bqm::{CandidateStrategy, E2bqmQuantizer, ErrorEstimator};
use crate::fast::{self, QuantScratch};
use crate::format::{IntFormat, QuantParams};
use crate::ldq::{LdqConfig, LdqTensor};
use crate::qtensor::QuantizedTensor;
use crate::rounding::{MiniFloat, RoundingMode};
use cq_par::Pool;
use cq_tensor::{Backend, Tensor};
use std::fmt;

/// Precision of the *updating weights* stage (paper Table III: every
/// state-of-the-art algorithm keeps weight update in high precision).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WeightUpdatePrecision {
    /// 16-bit floating point (Wang et al. 2018).
    Fp16,
    /// 24-bit floating point (Yang et al. 2020).
    Fp24,
    /// 32-bit floating point (Zhu, Zhong, Zhang).
    Fp32,
}

impl WeightUpdatePrecision {
    /// Bytes per weight for this precision.
    pub fn bytes(&self) -> usize {
        match self {
            WeightUpdatePrecision::Fp16 => 2,
            WeightUpdatePrecision::Fp24 => 3,
            WeightUpdatePrecision::Fp32 => 4,
        }
    }
}

impl fmt::Display for WeightUpdatePrecision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            WeightUpdatePrecision::Fp16 => "FP16",
            WeightUpdatePrecision::Fp24 => "FP24",
            WeightUpdatePrecision::Fp32 => "FP32",
        };
        f.write_str(s)
    }
}

/// A row of the paper's Table III: a published low-bitwidth training
/// algorithm and its statistic requirements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlgorithmSpec {
    /// Citation-style name ("Zhu et al. 2019").
    pub name: &'static str,
    /// Training data format ("INT8", "FP8", "INT8/INT16", ...).
    pub data_format: &'static str,
    /// Statistics the algorithm computes on-the-fly.
    pub statistics: &'static str,
    /// Weight-update precision.
    pub weight_update: WeightUpdatePrecision,
    /// Special cases / notes from the table.
    pub notes: &'static str,
}

/// The five algorithms of Table III.
pub fn table3_algorithms() -> Vec<AlgorithmSpec> {
    vec![
        AlgorithmSpec {
            name: "Wang et al. 2018",
            data_format: "FP8",
            statistics: "max|X|",
            weight_update: WeightUpdatePrecision::Fp16,
            notes: "stochastic rounding",
        },
        AlgorithmSpec {
            name: "Zhu et al. 2019",
            data_format: "INT8",
            statistics: "max|X|, cos(X, X')",
            weight_update: WeightUpdatePrecision::Fp32,
            notes: "learned clipping range",
        },
        AlgorithmSpec {
            name: "Yang et al. 2020",
            data_format: "INT8",
            statistics: "max|X|",
            weight_update: WeightUpdatePrecision::Fp24,
            notes: "full 8-bit integer training",
        },
        AlgorithmSpec {
            name: "Zhong et al. 2020",
            data_format: "Shiftable INT8",
            statistics: "max|X|",
            weight_update: WeightUpdatePrecision::Fp32,
            notes: "quantized in groups",
        },
        AlgorithmSpec {
            name: "Zhang et al. 2020",
            data_format: "INT8/INT16",
            statistics: "max|X|, mean(X)-mean(X')",
            weight_update: WeightUpdatePrecision::Fp32,
            notes: "adaptive precision",
        },
    ]
}

/// How a training-time quantizer touches data: the scheme determines both
/// the numeric transform and the number of full data passes the hardware
/// needs (the 2× access cost HQT removes).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QuantScheme {
    /// No quantization (FP32 baseline).
    Fp32,
    /// A *static* fixed-point range set once and never adapted — the
    /// inference-style quantization the paper's Fig. 2 shows cannot work
    /// for training (gradient ranges drift by orders of magnitude).
    StaticRange {
        /// The fixed representable maximum.
        theta: f32,
        /// Target format.
        format: IntFormat,
    },
    /// Miniature floating point with a rounding mode — Wang et al. 2018's
    /// FP8 (e5m2) with stochastic rounding.
    MiniFp {
        /// The float format.
        format: MiniFloat,
        /// Rounding mode (stochastic for Wang 2018).
        rounding: RoundingMode,
        /// RNG seed for stochastic rounding.
        seed: u64,
    },
    /// Layer-wise dynamic quantization: a global statistic pass then a
    /// quantization pass (two-pass access), optionally with candidate
    /// multiplexing applied layer-wide.
    LayerWise {
        /// Target format.
        format: IntFormat,
        /// Optional error-estimation multiplexing.
        multiplex: Option<E2bqmQuantizer>,
    },
    /// HQT: block-local statistic+quantize (one-pass access) with optional
    /// per-block E²BQM.
    Hqt {
        /// LDQ block size K.
        block_size: usize,
        /// Target format.
        format: IntFormat,
        /// Optional per-block error-estimation multiplexing.
        multiplex: Option<E2bqmQuantizer>,
    },
}

/// A named, ready-to-run training quantizer configuration.
///
/// Training simulations use [`TrainingQuantizer::fake_quantize`]: quantize
/// then immediately dequantize, so downstream FP32 compute observes exactly
/// the values the integer datapath would produce.
///
/// # Examples
///
/// ```
/// use cq_quant::algorithms::TrainingQuantizer;
/// use cq_tensor::init;
///
/// let q = TrainingQuantizer::zhang2020_hqt();
/// let x = init::normal(&[256], 0.0, 0.1, 1);
/// let xq = q.fake_quantize(&x);
/// assert!(x.cosine_similarity(&xq)? > 0.999);
/// assert_eq!(q.data_passes(), 1); // HQT: one-pass access
/// # Ok::<(), cq_tensor::TensorError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TrainingQuantizer {
    name: String,
    scheme: QuantScheme,
}

impl TrainingQuantizer {
    /// Creates a custom quantizer.
    pub fn new(name: impl Into<String>, scheme: QuantScheme) -> Self {
        TrainingQuantizer {
            name: name.into(),
            scheme,
        }
    }

    /// Full-precision (unquantized) baseline.
    pub fn fp32() -> Self {
        TrainingQuantizer::new("FP32", QuantScheme::Fp32)
    }

    /// Zhu et al. 2019: layer-wise INT8 with direction-sensitive clipping,
    /// emulated by a 4-way clip sweep arbitrated on cosine distance.
    pub fn zhu2019() -> Self {
        TrainingQuantizer::new(
            "Zhu2019",
            QuantScheme::LayerWise {
                format: IntFormat::Int8,
                multiplex: Some(E2bqmQuantizer::new(
                    4,
                    CandidateStrategy::ClipSweep,
                    ErrorEstimator::Cosine,
                    IntFormat::Int8,
                )),
            },
        )
    }

    /// Zhu et al. 2019 + HQT: block-local statistics (LDQ), same 4-way clip
    /// sweep per block.
    pub fn zhu2019_hqt() -> Self {
        TrainingQuantizer::new(
            "Zhu2019+HQT",
            QuantScheme::Hqt {
                block_size: 1024,
                format: IntFormat::Int8,
                multiplex: Some(E2bqmQuantizer::new(
                    4,
                    CandidateStrategy::ClipSweep,
                    ErrorEstimator::Cosine,
                    IntFormat::Int8,
                )),
            },
        )
    }

    /// Zhang et al. 2020: layer-wise adaptive INT8/INT16 arbitrated on mean
    /// bias (vector distance), emulated by a format sweep.
    pub fn zhang2020() -> Self {
        TrainingQuantizer::new(
            "Zhang2020",
            QuantScheme::LayerWise {
                format: IntFormat::Int8,
                multiplex: Some(E2bqmQuantizer::new(
                    4,
                    CandidateStrategy::FormatSweep,
                    ErrorEstimator::Mse,
                    IntFormat::Int8,
                )),
            },
        )
    }

    /// Zhang et al. 2020 + HQT: per-block adaptive precision.
    pub fn zhang2020_hqt() -> Self {
        TrainingQuantizer::new(
            "Zhang2020+HQT",
            QuantScheme::Hqt {
                block_size: 1024,
                format: IntFormat::Int8,
                multiplex: Some(E2bqmQuantizer::new(
                    4,
                    CandidateStrategy::FormatSweep,
                    ErrorEstimator::Mse,
                    IntFormat::Int8,
                )),
            },
        )
    }

    /// Yang et al. 2020: plain layer-wise max-|X| INT8 quantization (no
    /// multiplexing; the "full 8-bit integer training" recipe).
    pub fn yang2020() -> Self {
        TrainingQuantizer::new(
            "Yang2020",
            QuantScheme::LayerWise {
                format: IntFormat::Int8,
                multiplex: None,
            },
        )
    }

    /// Zhong et al. 2020: shiftable fixed-point INT8, quantized in groups —
    /// realized as block-local (group) statistics with a 2-way shiftable
    /// scale multiplex.
    pub fn zhong2020() -> Self {
        TrainingQuantizer::new(
            "Zhong2020",
            QuantScheme::Hqt {
                block_size: 256,
                format: IntFormat::Int8,
                multiplex: Some(E2bqmQuantizer::new(
                    2,
                    CandidateStrategy::ShiftableFxp,
                    ErrorEstimator::Rectilinear,
                    IntFormat::Int8,
                )),
            },
        )
    }

    /// A static (never-adapted) quantizer with a fixed range — the
    /// negative control for the Fig. 2 motivation experiment.
    pub fn static_range(theta: f32, format: IntFormat) -> Self {
        TrainingQuantizer::new(
            format!("Static(theta={theta})"),
            QuantScheme::StaticRange { theta, format },
        )
    }

    /// Wang et al. 2018: FP8 (e5m2) with stochastic rounding.
    pub fn wang2018(seed: u64) -> Self {
        TrainingQuantizer::new(
            "Wang2018-FP8",
            QuantScheme::MiniFp {
                format: MiniFloat::fp8_e5m2(),
                rounding: RoundingMode::Stochastic,
                seed,
            },
        )
    }

    /// Wang et al.'s format with nearest rounding — the ablation showing
    /// why they need stochastic rounding.
    pub fn fp8_nearest() -> Self {
        TrainingQuantizer::new(
            "FP8-nearest",
            QuantScheme::MiniFp {
                format: MiniFloat::fp8_e5m2(),
                rounding: RoundingMode::Nearest,
                seed: 0,
            },
        )
    }

    /// Plain HQT without multiplexing (pure LDQ).
    pub fn ldq_only(block_size: usize, format: IntFormat) -> Self {
        TrainingQuantizer::new(
            format!("LDQ(K={block_size})"),
            QuantScheme::Hqt {
                block_size,
                format,
                multiplex: None,
            },
        )
    }

    /// The quantizer's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The underlying scheme.
    pub fn scheme(&self) -> &QuantScheme {
        &self.scheme
    }

    /// Whether any quantization is applied at all.
    pub fn is_quantized(&self) -> bool {
        !matches!(self.scheme, QuantScheme::Fp32)
    }

    /// Number of full passes over the data the scheme requires on hardware
    /// without fused statistic+quantize: 2 for layer-wise (statistic pass +
    /// quantize pass), 1 for HQT, 0 for FP32 (no quantization work).
    pub fn data_passes(&self) -> u32 {
        match self.scheme {
            QuantScheme::Fp32 => 0,
            // No statistic to gather: a single reformat pass.
            QuantScheme::StaticRange { .. } | QuantScheme::MiniFp { .. } => 1,
            QuantScheme::LayerWise { .. } => 2,
            QuantScheme::Hqt { .. } => 1,
        }
    }

    /// Quantizes then dequantizes `x`, producing the FP32 tensor the
    /// integer datapath would effectively compute with.
    ///
    /// Dispatches on [`cq_tensor::default_backend`]; both backends produce
    /// bit-identical tensors (see [`crate::fast`]).
    pub fn fake_quantize(&self, x: &Tensor) -> Tensor {
        match cq_tensor::default_backend() {
            Backend::Naive => self.fake_quantize_naive(x),
            Backend::Fast => self.fake_quantize_fast(x),
        }
    }

    /// The reference implementation: separate statistic/quantize/dequantize
    /// tensor ops with fresh allocations (the bit-exactness oracle for the
    /// fused path).
    pub fn fake_quantize_naive(&self, x: &Tensor) -> Tensor {
        let mut sp = cq_obs::span!("quant", "fake_quantize");
        if sp.is_recording() {
            sp.arg("quantizer", self.name.as_str())
                .arg("elems", x.len())
                .arg("backend", "naive");
            cq_obs::counter!("quant.calls").incr();
        }
        match &self.scheme {
            QuantScheme::Fp32 => x.clone(),
            QuantScheme::StaticRange { theta, format } => {
                let p = QuantParams::symmetric(*theta, *format);
                x.map(|v| p.dequantize(p.quantize(v)))
            }
            QuantScheme::MiniFp {
                format,
                rounding,
                seed,
            } => format.quantize_tensor(x, *rounding, *seed),
            QuantScheme::LayerWise { format, multiplex } => match multiplex {
                None => QuantizedTensor::quantize_symmetric(x, *format).dequantize(),
                Some(m) => m.quantize(x).selected.dequantize(),
            },
            QuantScheme::Hqt {
                block_size,
                format,
                multiplex,
            } => match multiplex {
                None => {
                    LdqTensor::quantize_naive(x, LdqConfig::new(*block_size, *format)).dequantize()
                }
                Some(m) => {
                    let sels = m.quantize_blocks_naive(x, *block_size);
                    crate::e2bqm::dequantize_blocks(&sels, x.dims())
                }
            },
        }
    }

    /// Allocating wrapper over [`Self::fake_quantize_into`].
    pub fn fake_quantize_fast(&self, x: &Tensor) -> Tensor {
        let mut out = Vec::with_capacity(x.len());
        let mut scratch = QuantScratch::new();
        self.fake_quantize_into(x, &mut out, &mut scratch);
        Tensor::from_vec(out, x.dims()).expect("shape preserved by construction")
    }

    /// The fused fast path: clears `out` and fills it with the
    /// fake-quantized values, reusing `out`'s and `scratch`'s allocations.
    /// Threading the same buffers through repeated calls (one per training
    /// step) makes steady-state quantization allocation-free for the
    /// integer schemes; `MiniFp` still allocates internally to preserve its
    /// seeded stochastic-rounding semantics.
    ///
    /// Large HQT tensors fan their independent blocks out over the global
    /// pool (workers use their own scratch); results are identical for any
    /// worker count.
    pub fn fake_quantize_into(&self, x: &Tensor, out: &mut Vec<f32>, scratch: &mut QuantScratch) {
        let mut sp = cq_obs::span!("quant", "fake_quantize");
        if sp.is_recording() {
            sp.arg("quantizer", self.name.as_str())
                .arg("elems", x.len())
                .arg("backend", "fast");
            cq_obs::counter!("quant.calls").incr();
        }
        out.clear();
        let data = x.data();
        match &self.scheme {
            QuantScheme::Fp32 => out.extend_from_slice(data),
            QuantScheme::StaticRange { theta, format } => {
                let p = QuantParams::symmetric(*theta, *format);
                out.extend(data.iter().map(|&v| p.dequantize(p.quantize(v))));
            }
            QuantScheme::MiniFp {
                format,
                rounding,
                seed,
            } => out.extend_from_slice(format.quantize_tensor(x, *rounding, *seed).data()),
            QuantScheme::LayerWise { format, multiplex } => {
                // Layer-wise accumulation order cannot be split without
                // changing bits, so this stays sequential regardless of
                // tensor size.
                out.resize(data.len(), 0.0);
                let theta = fast::block_theta(data);
                match multiplex {
                    None => {
                        fast::fake_quantize_block(data, QuantParams::symmetric(theta, *format), out)
                    }
                    Some(m) => {
                        m.candidate_params_into(theta, &mut scratch.params);
                        let way = fast::eval_candidates_shared(data, m.estimator(), scratch);
                        fast::emit_winner(scratch, way, data.len(), out);
                    }
                }
            }
            QuantScheme::Hqt {
                block_size,
                format,
                multiplex,
            } => {
                let k = *block_size;
                assert!(k > 0, "block size must be positive");
                out.resize(data.len(), 0.0);
                let pool = Pool::global();
                if data.len() < fast::PAR_MIN_ELEMS || pool.threads() == 1 {
                    fake_quantize_hqt_band(data, out, k, *format, multiplex, scratch);
                } else {
                    pool.parallel_block_chunks(
                        out.as_mut_slice(),
                        k,
                        fast::PAR_MIN_BLOCKS,
                        |first_block, band| {
                            let start = first_block * k;
                            let mut local = QuantScratch::new();
                            fake_quantize_hqt_band(
                                &data[start..start + band.len()],
                                band,
                                k,
                                *format,
                                multiplex,
                                &mut local,
                            );
                        },
                    );
                }
            }
        }
    }
}

/// Fake-quantizes a contiguous band of whole HQT blocks (the final block
/// may be ragged) from `src` into `dst` with the fused per-block kernels.
fn fake_quantize_hqt_band(
    src: &[f32],
    dst: &mut [f32],
    block_size: usize,
    format: IntFormat,
    multiplex: &Option<E2bqmQuantizer>,
    scratch: &mut QuantScratch,
) {
    debug_assert_eq!(src.len(), dst.len());
    for (xb, ob) in src.chunks(block_size).zip(dst.chunks_mut(block_size)) {
        match multiplex {
            None => {
                let theta = fast::block_theta(xb);
                fast::fake_quantize_block(xb, QuantParams::symmetric(theta, format), ob);
            }
            Some(m) => {
                let theta = fast::block_theta(xb);
                m.candidate_params_into(theta, &mut scratch.params);
                let way = fast::eval_candidates_shared(xb, m.estimator(), scratch);
                fast::emit_winner(scratch, way, xb.len(), ob);
            }
        }
    }
}

impl fmt::Display for TrainingQuantizer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq_tensor::init;

    #[test]
    fn table3_has_five_rows() {
        let algos = table3_algorithms();
        assert_eq!(algos.len(), 5);
        assert!(algos.iter().any(|a| a.name.contains("Zhu")));
        assert!(algos.iter().all(|a| a.weight_update.bytes() >= 2));
    }

    #[test]
    fn fp32_is_identity() {
        let q = TrainingQuantizer::fp32();
        let x = init::normal(&[64], 0.0, 1.0, 1);
        assert_eq!(q.fake_quantize(&x), x);
        assert!(!q.is_quantized());
        assert_eq!(q.data_passes(), 0);
    }

    #[test]
    fn hqt_variants_single_pass() {
        assert_eq!(TrainingQuantizer::zhu2019().data_passes(), 2);
        assert_eq!(TrainingQuantizer::zhu2019_hqt().data_passes(), 1);
        assert_eq!(TrainingQuantizer::zhang2020().data_passes(), 2);
        assert_eq!(TrainingQuantizer::zhang2020_hqt().data_passes(), 1);
    }

    #[test]
    fn all_quantizers_preserve_direction() {
        let x = init::long_tailed(&[2048], 0.1, 0.01, 20.0, 5);
        for q in [
            TrainingQuantizer::zhu2019(),
            TrainingQuantizer::zhu2019_hqt(),
            TrainingQuantizer::zhang2020(),
            TrainingQuantizer::zhang2020_hqt(),
            TrainingQuantizer::ldq_only(256, IntFormat::Int8),
        ] {
            let xq = q.fake_quantize(&x);
            let cos = x.cosine_similarity(&xq).unwrap();
            assert!(cos > 0.98, "{}: cosine {cos}", q.name());
        }
    }

    #[test]
    fn hqt_error_not_worse_than_layerwise() {
        // HQT (block-local) should match or beat layer-wise error.
        let x = init::long_tailed(&[8192], 0.05, 0.01, 40.0, 8);
        let lw = TrainingQuantizer::new(
            "lw",
            QuantScheme::LayerWise {
                format: IntFormat::Int8,
                multiplex: None,
            },
        );
        let hqt = TrainingQuantizer::ldq_only(512, IntFormat::Int8);
        let e_lw = x.l1_distance(&lw.fake_quantize(&x)).unwrap();
        let e_hqt = x.l1_distance(&hqt.fake_quantize(&x)).unwrap();
        assert!(e_hqt <= e_lw + 1e-4, "hqt {e_hqt} > layerwise {e_lw}");
    }

    #[test]
    fn all_table3_algorithms_have_executable_quantizers() {
        // Every Table III row maps to a runnable TrainingQuantizer.
        let x = init::long_tailed(&[2048], 0.1, 0.01, 20.0, 5);
        for q in [
            TrainingQuantizer::wang2018(1),
            TrainingQuantizer::zhu2019(),
            TrainingQuantizer::yang2020(),
            TrainingQuantizer::zhong2020(),
            TrainingQuantizer::zhang2020(),
        ] {
            let back = q.fake_quantize(&x);
            let cos = x.cosine_similarity(&back).unwrap();
            assert!(cos > 0.95, "{}: cosine {cos}", q.name());
        }
    }

    #[test]
    fn static_range_clips_out_of_range_data() {
        let q = TrainingQuantizer::static_range(0.01, IntFormat::Int8);
        let x = Tensor::from_vec(vec![5.0, -5.0, 0.005], &[3]).unwrap();
        let back = q.fake_quantize(&x);
        // Values beyond the static range clip hard.
        assert!((back.data()[0] - 0.01).abs() < 1e-4);
        assert!((back.data()[1] + 0.01).abs() < 1e-4);
        assert!((back.data()[2] - 0.005).abs() < 1e-4);
        assert_eq!(q.data_passes(), 1);
    }

    #[test]
    fn wang2018_fp8_is_coarse_but_unbiased() {
        let q = TrainingQuantizer::wang2018(3);
        let x = init::normal(&[10_000], 0.0, 1.0, 5);
        let back = q.fake_quantize(&x);
        // FP8 is coarse...
        assert!(x.l1_distance(&back).unwrap() > 10.0);
        // ...but stochastic rounding keeps the mean close (unbiased).
        assert!((x.mean() - back.mean()).abs() < 0.01);
        assert_eq!(q.name(), "Wang2018-FP8");
    }

    #[test]
    fn names_and_display() {
        assert_eq!(TrainingQuantizer::zhu2019().to_string(), "Zhu2019");
        assert_eq!(TrainingQuantizer::zhang2020_hqt().name(), "Zhang2020+HQT");
        assert_eq!(WeightUpdatePrecision::Fp24.to_string(), "FP24");
        assert_eq!(WeightUpdatePrecision::Fp24.bytes(), 3);
    }
}
