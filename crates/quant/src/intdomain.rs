//! Integer-domain LDQ/E²BQM — the dequantization-free quantizer strategy.
//!
//! The classic E²BQM path ([`crate::e2bqm`]) evaluates every candidate in
//! the *float* domain: each way re-divides the data by its own scale and
//! each error fold multiplies codes back to f32. That is the right oracle
//! for bit-parity with the paper's procedure, but it pays one f32
//! divide/multiply pair per element per way — and its output still has to
//! be dequantized before the f32 GEMM consumes it.
//!
//! This module is the *different algorithm* the integer compute path runs
//! on (DQT-style nested integer arithmetic):
//!
//! 1. **One base quantization.** The block statistic θ fixes the finest
//!    ladder scale `s_base = θ / (qmax · 2^(W−1))`; each element is
//!    quantized **once** as `y = round(x / s_base)` (the only f32 loop).
//! 2. **Shift-derived candidates.** Candidate `i ∈ 0..W` uses scale
//!    `s_i = s_base · 2^(W−1−i)` — exactly the [`CandidateStrategy::ClipSweep`]
//!    ladder `θ/2^i` re-anchored at the fine end. Its codes are obtained
//!    from `y` by an integer shift with round-half-away-from-zero:
//!    `c = sign(y) · ((|y| + 2^(t−1)) >> t)` clamped to `[qmin, qmax]`,
//!    where `t = W−1−i`. No division, no multiplication.
//! 3. **Integer error folds.** Each candidate's rectilinear error is
//!    accumulated as `Σ |y − c·2^t|` on an i64 — an exact integer measure
//!    of `Σ |x' − x'_i|` in units of `s_base`. Arbitration is the same
//!    first-minimum rule as the Arbiter (i64 compare is total, no NaN
//!    ranks to worry about).
//! 4. **Single exact rescale.** The winner's codes are emitted as `i8`
//!    together with `s_sel = s_base · 2^t` — an *exact* f32 multiply,
//!    guarded at runtime by the same power-of-two predicate
//!    ([`crate::fast::pow2_multiplier`]) the shared-quotient shortcut
//!    uses. Downstream, the i8×i8→i32 GEMM (`cq_par::gemm_i8`) consumes
//!    the codes directly and the product is rescaled **once** at the
//!    output by `s_x · s_w`.
//!
//! # Shift-rounding error model
//!
//! The algorithm double-rounds (once into base codes, once per shift), so
//! its codes are *not* bit-identical to the float-domain reference. The
//! documented bounds — enforced by the `intdomain_bounds` proptest suite —
//! are:
//!
//! * **Reconstruction.** For every element, with `s = s_sel` the selected
//!   scale: `|x − c·s| ≤ (s_base + s)/2 + max(0, |x| − qmax·s)` (half a
//!   base step from the base rounding, half a selected step from the
//!   shift rounding, plus the unavoidable clipping loss), up to f32
//!   division rounding of `x / s_base` (a relative `ε` term).
//! * **Deviation from the f32 reference.** For any fixed way, the shifted
//!   code differs from direct quantization at the same scale
//!   (`QuantParams::with_scale(s_i, fmt).quantize(x)`) by **at most one
//!   code unit** — the classic double-rounding bound. Way *selection* may
//!   legitimately differ from float-domain E²BQM (the error measures live
//!   in different domains); what is guaranteed is that the selected way
//!   minimizes the integer-domain fold.
//!
//! # Fallback contract
//!
//! [`IntDomainQuantizer::quantize_into`] returns `None` — and the caller
//! must take its full-precision path — whenever the ladder guard fails:
//! θ degenerate (zero/NaN/∞ quantizes losslessly to zero codes and is
//! *not* a fallback), `s_base` non-normal (subnormal scales void the
//! exact-rescale proof), or the top-of-ladder product failing
//! [`crate::fast::pow2_multiplier`]'s bitwise acceptance condition.

use crate::fast;
use crate::format::IntFormat;

/// Upper bound on ladder ways: shifts stay tiny and the widest base code
/// `qmax · 2^(W−1)` stays far inside i32.
pub const MAX_WAYS: usize = 8;

/// Reusable scratch for [`IntDomainQuantizer`]: the base-code buffer, the
/// per-way integer error folds, and the fake-quantize code buffer. Thread
/// one instance through repeated calls and the steady state allocates
/// nothing.
#[derive(Debug, Default)]
pub struct IntDomainScratch {
    /// Base codes `y = round(x / s_base)` at the finest ladder scale.
    ybuf: Vec<i32>,
    /// Per-way integer error folds `Σ |y − c·2^t|`.
    errors: Vec<i64>,
    /// Code buffer owned by [`IntDomainQuantizer::fake_quantize_into`].
    fq_codes: Vec<i8>,
}

impl IntDomainScratch {
    /// A fresh, empty arena.
    pub fn new() -> Self {
        IntDomainScratch::default()
    }

    /// The integer-domain error fold of each candidate way from the most
    /// recent quantization (units of `s_base`; lower is better).
    pub fn errors(&self) -> &[i64] {
        &self.errors
    }
}

/// Outcome of an integer-domain quantization: which ladder way won and
/// the exact power-of-two scale its codes carry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IntSelection {
    /// Index of the winning candidate (0 = widest clip, W−1 = finest).
    pub way: usize,
    /// The selected scale `s_base · 2^(W−1−way)`; `codes[i] as f32 *
    /// scale` reconstructs the value the integer datapath computes with.
    pub scale: f32,
    /// The base (finest-ladder) scale the codes were derived from.
    pub base_scale: f32,
}

/// The integer-domain quantizer: one f32 base quantization, then pure
/// integer candidate evaluation and emission (module docs).
///
/// # Examples
///
/// ```
/// use cq_quant::intdomain::{IntDomainQuantizer, IntDomainScratch};
///
/// let q = IntDomainQuantizer::hardware_default();
/// let x = [0.5f32, -1.0, 0.25, 0.75];
/// let mut codes = Vec::new();
/// let mut scratch = IntDomainScratch::new();
/// let sel = q.quantize_into(&x, &mut codes, &mut scratch).unwrap();
/// // max|x| = 1.0 defines the ladder; codes reconstruct within bound.
/// for (&c, &v) in codes.iter().zip(&x) {
///     assert!((c as f32 * sel.scale - v).abs() <= sel.scale);
/// }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntDomainQuantizer {
    ways: usize,
    format: IntFormat,
}

impl IntDomainQuantizer {
    /// Creates an integer-domain quantizer with `ways` ladder candidates.
    ///
    /// # Panics
    ///
    /// Panics if `ways` is 0 or exceeds [`MAX_WAYS`], or if the format is
    /// wider than 8 bits (codes are emitted as `i8` for the integer GEMM).
    pub fn new(ways: usize, format: IntFormat) -> Self {
        assert!(
            (1..=MAX_WAYS).contains(&ways),
            "int-domain ladder needs 1..={MAX_WAYS} ways, got {ways}"
        );
        assert!(
            format.bits() <= 8,
            "int-domain codes are i8; {format} does not fit"
        );
        IntDomainQuantizer { ways, format }
    }

    /// The integer twin of [`crate::E2bqmQuantizer::hardware_default`]:
    /// 4-way ClipSweep ladder, INT8, rectilinear error — evaluated in the
    /// integer domain.
    pub fn hardware_default() -> Self {
        IntDomainQuantizer::new(4, IntFormat::Int8)
    }

    /// Number of ladder ways.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// The emitted code format.
    pub fn format(&self) -> IntFormat {
        self.format
    }

    /// Quantizes `x` layer-wise into i8 `codes`, returning the selected
    /// scale, or `None` when the ladder guard rejects the block (module
    /// docs: the caller must fall back to full precision). `codes` is
    /// cleared and refilled; a degenerate θ (all-zero/non-finite block)
    /// emits all-zero codes at scale 1.0 — lossless, not a fallback.
    pub fn quantize_into(
        &self,
        x: &[f32],
        codes: &mut Vec<i8>,
        scratch: &mut IntDomainScratch,
    ) -> Option<IntSelection> {
        let theta = fast::effective_theta(fast::block_theta(x));
        codes.clear();
        if theta == 0.0 {
            codes.resize(x.len(), 0);
            scratch.errors.clear();
            scratch.errors.resize(self.ways, 0);
            return Some(IntSelection {
                way: 0,
                scale: 1.0,
                base_scale: 1.0,
            });
        }

        let qmax = self.format.qmax();
        let top = 1i32 << (self.ways - 1);
        let s_base = theta / (qmax * top) as f32;
        // Ladder guard: the exact-rescale proof needs a normal base scale
        // whose power-of-two multiples reproduce bitwise. Inherits the
        // pow2_multiplier acceptance condition (see DESIGN.md).
        if !s_base.is_normal() {
            return None;
        }
        let s_top = s_base * top as f32;
        if fast::pow2_multiplier(s_top, s_base) != Some(top as f32) {
            return None;
        }

        // The only f32 loop: one base quantization at the finest scale.
        // |x| ≤ θ keeps |y| within qmax·2^(W−1) up to division rounding;
        // the clamp pins the boundary (and sends NaN elements to 0).
        let bound = qmax * top;
        scratch.ybuf.clear();
        scratch.ybuf.extend(
            x.iter()
                .map(|&v| (fast::fast_round(v / s_base) as i32).clamp(-bound, bound)),
        );

        // Pure-integer candidate evaluation, way-major: one branch-free
        // reduction pass per way with that way's shift count held
        // loop-constant, so the auto-vectorizer takes the inner loop
        // (the element-major form, updating an i64 lane array per
        // element, defeats it and costs ~2x on random-sign data). The
        // per-element residual is bounded by `qmax·2^(W−1)` < 2^11, so a
        // 2^16-element chunk sums within i32; chunk subtotals widen into
        // the i64 fold. Integer addition commutes and every partial sum
        // is exact, so the totals are bitwise those of the element-major
        // fold, in any order, at any SIMD width.
        let ways = self.ways;
        scratch.errors.clear();
        for i in 0..ways {
            let t = (ways - 1 - i) as u32;
            let mut a = 0i64;
            for chunk in scratch.ybuf.chunks(1 << 16) {
                let mut partial = 0i32;
                if t == 0 {
                    // c = min(m, qmax): the residual is the clipped excess.
                    for &y in chunk {
                        let m = y.unsigned_abs() as i32;
                        partial += m - m.min(qmax);
                    }
                } else {
                    let half = 1i32 << (t - 1);
                    for &y in chunk {
                        let m = y.unsigned_abs() as i32;
                        let c = ((m + half) >> t).min(qmax);
                        partial += (m - (c << t)).unsigned_abs() as i32;
                    }
                }
                a += i64::from(partial);
            }
            scratch.errors.push(a);
        }

        // First-minimum arbitration, same rule as the float Arbiter.
        let way = scratch
            .errors
            .iter()
            .enumerate()
            .min_by_key(|&(_, &e)| e)
            .map(|(i, _)| i)
            .unwrap_or(0);

        // Winner emission: shift the base codes once more and attach the
        // exact power-of-two scale.
        let t = (ways - 1 - way) as u32;
        codes.extend(scratch.ybuf.iter().map(|&y| {
            let c = shift_round(y.unsigned_abs() as i32, t).min(qmax);
            // Branchless sign restore (c ≤ qmax, so negation can't wrap):
            // random-sign data makes a `if y < 0` here mispredict heavily.
            let sign = y >> 31;
            ((c ^ sign) - sign) as i8
        }));
        Some(IntSelection {
            way,
            scale: s_base * (1i32 << t) as f32,
            base_scale: s_base,
        })
    }

    /// Fake-quantize entry for accuracy studies: writes `codes[i] · scale`
    /// into `out` (clearing it first) and returns `true`, or returns
    /// `false` untouched when the ladder guard falls back — the caller
    /// then runs its f32 reference quantizer. This is *not* the compute
    /// path (the GEMM consumes codes directly); it exists to measure the
    /// accuracy gap vs [`crate::TrainingQuantizer`] fake-quantization.
    pub fn fake_quantize_into(
        &self,
        x: &[f32],
        out: &mut Vec<f32>,
        scratch: &mut IntDomainScratch,
    ) -> bool {
        let mut fq_codes = std::mem::take(&mut scratch.fq_codes);
        let sel = self.quantize_into(x, &mut fq_codes, scratch);
        let taken = match sel {
            Some(sel) => {
                out.clear();
                out.extend(fq_codes.iter().map(|&c| c as f32 * sel.scale));
                true
            }
            None => false,
        };
        scratch.fq_codes = fq_codes;
        taken
    }
}

/// Integer round-half-away-from-zero of a non-negative magnitude by `t`
/// binary places: `(m + 2^(t−1)) >> t`, with `t = 0` the identity.
#[inline]
fn shift_round(m: i32, t: u32) -> i32 {
    if t == 0 {
        m
    } else {
        (m + (1 << (t - 1))) >> t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::QuantParams;

    #[test]
    fn shift_round_half_away_from_zero() {
        assert_eq!(shift_round(0, 3), 0);
        assert_eq!(shift_round(3, 1), 2); // 1.5 → 2
        assert_eq!(shift_round(5, 1), 3); // 2.5 → 3 (away from zero)
        assert_eq!(shift_round(4, 2), 1); // 1.0 → 1
        assert_eq!(shift_round(6, 2), 2); // 1.5 → 2
        assert_eq!(shift_round(1016, 3), 127);
        assert_eq!(shift_round(7, 0), 7);
    }

    #[test]
    fn degenerate_block_is_lossless_zero() {
        let q = IntDomainQuantizer::hardware_default();
        let mut codes = Vec::new();
        let mut s = IntDomainScratch::new();
        for block in [vec![0.0f32; 16], vec![], vec![f32::NAN; 4]] {
            let sel = q.quantize_into(&block, &mut codes, &mut s).unwrap();
            assert_eq!(codes.len(), block.len());
            assert!(codes.iter().all(|&c| c == 0));
            assert_eq!(sel.scale, 1.0);
            assert_eq!(sel.way, 0);
        }
    }

    #[test]
    fn selected_scale_is_exact_pow2_multiple_of_base() {
        let q = IntDomainQuantizer::hardware_default();
        let x: Vec<f32> = (0..256)
            .map(|i| ((i * 37) % 101) as f32 * 0.013 - 0.6)
            .collect();
        let mut codes = Vec::new();
        let mut s = IntDomainScratch::new();
        let sel = q.quantize_into(&x, &mut codes, &mut s).unwrap();
        let m = fast::pow2_multiplier(sel.scale, sel.base_scale)
            .expect("selected scale must sit on the pow2 ladder");
        assert_eq!(m, (1u32 << (q.ways() - 1 - sel.way)) as f32);
    }

    #[test]
    fn long_tail_prefers_clipped_way() {
        // Mirror of the e2bqm test: bulk-small data plus one outlier —
        // the integer-domain fold must also favor a clipped candidate.
        let q = IntDomainQuantizer::hardware_default();
        let mut x: Vec<f32> = (0..4095)
            .map(|i| if i % 2 == 0 { 0.003 } else { -0.003 })
            .collect();
        x.push(1.0);
        let mut codes = Vec::new();
        let mut s = IntDomainScratch::new();
        let sel = q.quantize_into(&x, &mut codes, &mut s).unwrap();
        assert!(sel.way > 0, "expected a clipped way, got way 0");
        assert!(s.errors()[sel.way] < s.errors()[0]);
    }

    #[test]
    fn gaussian_prefers_wide_way() {
        let q = IntDomainQuantizer::hardware_default();
        let x = cq_tensor::init::normal(&[1024], 0.0, 1.0, 4);
        let mut codes = Vec::new();
        let mut s = IntDomainScratch::new();
        let sel = q.quantize_into(x.data(), &mut codes, &mut s).unwrap();
        assert!(sel.way <= 1, "unexpected deep clip on gaussian data");
    }

    #[test]
    fn selected_way_minimizes_integer_fold() {
        let q = IntDomainQuantizer::new(4, IntFormat::Int8);
        let x = cq_tensor::init::long_tailed(&[2048], 0.05, 0.02, 40.0, 9);
        let mut codes = Vec::new();
        let mut s = IntDomainScratch::new();
        let sel = q.quantize_into(x.data(), &mut codes, &mut s).unwrap();
        let min = *s.errors().iter().min().unwrap();
        assert_eq!(s.errors()[sel.way], min);
        // First minimum: no earlier way ties.
        assert!(s.errors()[..sel.way].iter().all(|&e| e > min));
    }

    #[test]
    fn subnormal_theta_falls_back() {
        let q = IntDomainQuantizer::hardware_default();
        // θ ≈ 1e-41: s_base is subnormal, the exact-rescale proof is
        // void, the int path must refuse.
        let x = vec![1.0e-41f32, -0.5e-41, 0.7e-41];
        let mut codes = Vec::new();
        let mut s = IntDomainScratch::new();
        assert!(q.quantize_into(&x, &mut codes, &mut s).is_none());
    }

    #[test]
    fn codes_within_one_of_direct_quantization_every_way() {
        // Double-rounding deviation bound: shifted codes differ from
        // direct f32 quantization at the same scale by ≤ 1 code unit.
        let ways = 4;
        let q = IntDomainQuantizer::new(ways, IntFormat::Int8);
        let x = cq_tensor::init::long_tailed(&[1024], 0.1, 0.03, 25.0, 13);
        let mut codes = Vec::new();
        let mut s = IntDomainScratch::new();
        let sel = q.quantize_into(x.data(), &mut codes, &mut s).unwrap();
        for way in 0..ways {
            let t = (ways - 1 - way) as u32;
            let scale = sel.base_scale * (1i32 << t) as f32;
            let p = QuantParams::with_scale(scale, IntFormat::Int8);
            for (&v, &y) in x.data().iter().zip(&s.ybuf) {
                let c_int = {
                    let c = shift_round(y.unsigned_abs() as i32, t).min(127);
                    if y < 0 {
                        -c
                    } else {
                        c
                    }
                };
                let c_ref = p.quantize(v);
                assert!(
                    (c_int - c_ref).abs() <= 1,
                    "way {way}: v={v} int={c_int} ref={c_ref}"
                );
            }
        }
    }

    #[test]
    fn reconstruction_bound_holds_on_long_tail() {
        let q = IntDomainQuantizer::hardware_default();
        let x = cq_tensor::init::long_tailed(&[4096], 0.05, 0.01, 30.0, 21);
        let mut codes = Vec::new();
        let mut s = IntDomainScratch::new();
        let sel = q.quantize_into(x.data(), &mut codes, &mut s).unwrap();
        let rep_max = 127.0 * sel.scale;
        for (&v, &c) in x.data().iter().zip(&codes) {
            let err = (v - c as f32 * sel.scale).abs();
            let clip = (v.abs() - rep_max).max(0.0);
            let bound = (sel.base_scale + sel.scale) / 2.0 + clip;
            assert!(
                err <= bound * (1.0 + 1e-5) + f32::EPSILON,
                "v={v} err={err} bound={bound}"
            );
        }
    }

    #[test]
    fn fake_quantize_reports_path_taken() {
        let q = IntDomainQuantizer::hardware_default();
        let mut out = Vec::new();
        let mut s = IntDomainScratch::new();
        let x = cq_tensor::init::normal(&[512], 0.0, 1.0, 2);
        assert!(q.fake_quantize_into(x.data(), &mut out, &mut s));
        assert_eq!(out.len(), 512);
        let cos = {
            let (mut dot, mut na, mut nb) = (0.0f64, 0.0f64, 0.0f64);
            for (&a, &b) in x.data().iter().zip(&out) {
                dot += a as f64 * b as f64;
                na += a as f64 * a as f64;
                nb += b as f64 * b as f64;
            }
            dot / (na.sqrt() * nb.sqrt())
        };
        assert!(cos > 0.999, "cosine {cos}");
        // Subnormal block: fallback leaves `out` to the caller.
        let tiny = vec![1.0e-41f32; 8];
        assert!(!q.fake_quantize_into(&tiny, &mut out, &mut s));
    }

    #[test]
    fn scratch_buffers_are_reused() {
        let q = IntDomainQuantizer::hardware_default();
        let x = vec![0.5f32; 1024];
        let mut codes = Vec::new();
        let mut s = IntDomainScratch::new();
        q.quantize_into(&x, &mut codes, &mut s).unwrap();
        let (py, pc) = (s.ybuf.as_ptr(), codes.as_ptr());
        for _ in 0..4 {
            q.quantize_into(&x, &mut codes, &mut s).unwrap();
        }
        assert_eq!(s.ybuf.as_ptr(), py, "base-code buffer reallocated");
        assert_eq!(codes.as_ptr(), pc, "code buffer reallocated");
    }

    #[test]
    #[should_panic(expected = "1..=")]
    fn zero_ways_panics() {
        let _ = IntDomainQuantizer::new(0, IntFormat::Int8);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn wide_format_panics() {
        let _ = IntDomainQuantizer::new(4, IntFormat::Int16);
    }
}
