//! Fused single-pass quantization kernels — the quantization fast path.
//!
//! The reference (naive) implementations in [`crate::ldq`] and
//! [`crate::e2bqm`] mirror the paper's four-step procedure literally:
//! slice a block into a fresh tensor, scan it for θ, quantize it into a
//! fresh candidate, dequantize into another fresh tensor, estimate.
//! That costs N quantize→dequantize→estimate round trips per block for an
//! N-way multiplex and roughly 3N heap allocations — on the training hot
//! path, quantization dominates the step the way the paper's Fig. 3 says
//! it does on GPUs.
//!
//! This module provides the fused equivalents:
//!
//! * **LDQ**: θ and the quantized codes are produced while the block is
//!   cache-resident — one read of the source slice, codes written straight
//!   to the destination, no intermediate block tensors. The round/clamp
//!   inner loop compiles branch-free (`round` + integer `clamp` lower to
//!   conditional moves).
//! * **E²BQM shared statistics**: all N candidates are evaluated in a
//!   single pass over the block. Each candidate owns an error accumulator
//!   updated per element; candidate codes land in a reused scratch matrix
//!   so the winner is emitted without requantizing.
//! * **[`QuantScratch`]**: an arena holding the candidate parameter set,
//!   the code matrix and the accumulators, so steady-state calls allocate
//!   nothing.
//!
//! # Bit-identity contract
//!
//! Every kernel here reproduces the naive path's arithmetic *and
//! accumulation order* exactly: per-accumulator contributions arrive in
//! ascending element order, θ uses the same `f32::max` fold, candidate
//! generation the same [`QuantParams`] construction, and arbitration the
//! same first-minimum [`f64::total_cmp`] rule. Block-level parallelism is
//! safe because blocks are independent; *within* a block (or a layer-wise
//! tensor) evaluation stays sequential, which is why results are identical
//! for every thread count. The `fast_parity` proptest suite enforces this.

use crate::e2bqm::ErrorEstimator;
use crate::format::QuantParams;

/// How large a tensor must be before block quantization fans out over the
/// worker pool. Below this the pool's spawn cost (~tens of µs per region)
/// exceeds the quantization work itself.
pub const PAR_MIN_ELEMS: usize = 1 << 16;

/// Minimum number of blocks handed to one pool worker.
pub const PAR_MIN_BLOCKS: usize = 4;

/// Reusable scratch arena for the fused quantization kernels.
///
/// Thread one instance through repeated quantization calls (e.g. per
/// training step) and the steady state performs zero heap allocations:
/// the candidate parameter set, the per-candidate code matrix, the error
/// accumulators and the error vector are all reused across calls.
///
/// # Examples
///
/// ```
/// use cq_quant::{QuantScratch, TrainingQuantizer};
/// use cq_tensor::init;
///
/// let q = TrainingQuantizer::zhong2020();
/// let x = init::long_tailed(&[2048], 0.1, 0.01, 20.0, 3);
/// let mut scratch = QuantScratch::default();
/// let mut out = Vec::new();
/// q.fake_quantize_into(&x, &mut out, &mut scratch);
/// assert_eq!(out.len(), 2048);
/// ```
#[derive(Debug, Default)]
pub struct QuantScratch {
    /// Candidate parameter set (ways entries), regenerated per block but
    /// never reallocated.
    pub(crate) params: Vec<QuantParams>,
    /// Candidate code matrix, way-major: `qvals[w * n + i]` is candidate
    /// `w`'s code for element `i`.
    pub(crate) qvals: Vec<i32>,
    /// Shared quotients `x[i] / scale₀` when the candidate set admits the
    /// one-division path (see [`pow2_multiplier`]).
    pub(crate) ybuf: Vec<f32>,
    /// Per-way power-of-two multipliers for the one-division path.
    pub(crate) mults: Vec<f32>,
    /// Per-candidate error accumulators.
    pub(crate) acc: Vec<EstAcc>,
    /// Per-candidate estimated errors (the `E2bqmSelection::errors` data).
    pub(crate) errors: Vec<f64>,
}

impl QuantScratch {
    /// A fresh, empty arena.
    pub fn new() -> Self {
        QuantScratch::default()
    }
}

/// One candidate's error accumulator. Which fields are live depends on the
/// estimator; all updates happen in ascending element order so the f32/f64
/// sums are bitwise equal to the naive path's iterator folds.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct EstAcc {
    /// Rectilinear: Σ|x−x'|. Cosine: Σ x·x'. MeanBias: Σ x'.
    a32: f32,
    /// Cosine: Σ x'².
    b32: f32,
    /// Mse: Σ (x−x')² in f64.
    a64: f64,
}

/// θ = max|x|, bit-identical to [`cq_tensor::Tensor::max_abs`]'s
/// sequential fold (`f32::max` ignores NaN, empty slices give 0.0).
///
/// Computed with eight lane accumulators so the reduction vectorizes —
/// the sequential fold is a 4-cycle-latency dependency chain that caps
/// the naive path. Reassociating is sound here (unlike the error-sum
/// folds, which must stay sequential): after `abs` every operand is
/// non-negative or NaN, `f32::max` drops NaN in favor of the other
/// operand, and the accumulators start at the fold's own 0.0 identity —
/// so any association yields the same value, the largest non-NaN operand
/// (or 0.0).
#[inline]
pub fn block_theta(x: &[f32]) -> f32 {
    let mut lanes = [0.0f32; 8];
    let mut chunks = x.chunks_exact(8);
    for c in chunks.by_ref() {
        for (m, &v) in lanes.iter_mut().zip(c) {
            *m = m.max(v.abs());
        }
    }
    let tail = chunks
        .remainder()
        .iter()
        .fold(0.0f32, |m, &v| m.max(v.abs()));
    lanes.iter().fold(tail, |m, &v| m.max(v))
}

/// The θ the quantizer actually uses: degenerate statistics (zero,
/// negative, or non-finite) clamp to 0.0, matching
/// [`QuantParams::symmetric`]'s sentinel handling.
#[inline]
pub fn effective_theta(theta: f32) -> f32 {
    if theta.is_finite() && theta > 0.0 {
        theta
    } else {
        0.0
    }
}

/// 2²³ — above this every f32 magnitude is already integral.
const ROUND_MAGIC: f32 = 8_388_608.0;

/// Branch-free round-half-away-from-zero, bit-identical to [`f32::round`]
/// over the entire f32 bit space (verified exhaustively — all 2³²
/// patterns — when this kernel was written; `round_matches_std_round`
/// keeps a stratified sample of that check in the suite).
///
/// `f32::round` lowers to `llvm.round.f32`, which the x86-64 baseline
/// expands to a scalar sequence the auto-vectorizer refuses to touch —
/// it is the single most expensive step of the naive quantize loop. This
/// formulation (magic-number round-to-nearest-even, then pushing exact
/// .5 ties away from zero with a select) is all adds/compares/selects,
/// which LLVM vectorizes freely inside the block kernels below.
#[inline]
pub(crate) fn fast_round(y: f32) -> f32 {
    let a = y.abs();
    let t = (a + ROUND_MAGIC) - ROUND_MAGIC;
    let u = if a - t == 0.5 { t + 1.0 } else { t };
    let r = if a < ROUND_MAGIC { u } else { a };
    r.copysign(y)
}

/// Returns the multiplier `m` such that `v / scale_w == (v / scale0) * m`
/// **bitwise for every input `v`**, or `None` when no such multiplier is
/// provable.
///
/// The proof obligation is `scale_w * 2^k == scale0` exactly, checked at
/// runtime: `m = scale0 / scale_w` must be a finite power of two ≥ 1
/// (zero mantissa bits) that multiplies back bitwise. When it holds,
/// `fl(v / scale_w) = fl(v·2^k / scale0) = fl(v / scale0)·2^k` because
/// scaling by 2^k maps representable values to representable values and
/// scales every rounding boundary exactly (k ≥ 0 moves *away* from the
/// subnormal range, so gradual underflow cannot break the commutation).
/// The one place the shortcut can produce different bits — a subnormal
/// quotient `v/scale0` losing low bits before the scale-up — only yields
/// values below 2⁻¹⁰⁰, which [`fast_round`] sends to ±0 either way, so
/// the *codes* (the only consumer) are still identical. Degenerate or
/// subnormal scales simply fail the check and take the per-way division
/// path.
///
/// This predicate is the **bitwise acceptance condition** shared by every
/// power-of-two shortcut in the workspace: the shared-quotient E²BQM path
/// here, and the [`crate::intdomain`] ladder guard (whose exact-rescale
/// proof leans on the same commutation argument). Its edge behavior —
/// subnormal operands, ratios at the f32 exponent boundaries, overflowing
/// ratios — is pinned by the `pow2_guard` proptest suite.
#[inline]
pub fn pow2_multiplier(scale0: f32, scale_w: f32) -> Option<f32> {
    let m = scale0 / scale_w;
    let pow2 = m.to_bits() & 0x007f_ffff == 0;
    if m.is_finite() && m >= 1.0 && pow2 && scale_w * m == scale0 {
        Some(m)
    } else {
        None
    }
}

/// Bit-identical, vectorizable equivalent of [`QuantParams::quantize`]:
/// same subtraction/division, [`fast_round`] instead of the scalar
/// `round` expansion, and a saturating f32→i32 cast + i32 clamp in place
/// of the reference's i64 round trip (identical for every input because
/// `[qmin, qmax] ⊂ i32` — values past either i32 bound saturate and then
/// clamp to the same endpoint, and NaN casts to 0 in both widths).
#[inline]
fn quantize_one(p: QuantParams, qmin: i32, qmax: i32, v: f32) -> i32 {
    (fast_round((v - p.offset) / p.scale) as i32).clamp(qmin, qmax)
}

/// Fused LDQ block kernel: quantizes `x` with `params`, appending the
/// codes to `codes`. The division/round/clamp sequence is branch-free.
#[inline]
pub(crate) fn quantize_codes_into(x: &[f32], params: QuantParams, codes: &mut Vec<i32>) {
    let (qmin, qmax) = (params.format.qmin(), params.format.qmax());
    // Resize + slice write (not `extend`): the per-push capacity check
    // inside `extend` keeps LLVM from vectorizing the quantize loop.
    let start = codes.len();
    codes.resize(start + x.len(), 0);
    for (c, &v) in codes[start..].iter_mut().zip(x) {
        *c = quantize_one(params, qmin, qmax, v);
    }
}

/// Fused LDQ fake-quantize kernel: writes `dequantize(quantize(x))` for
/// one block straight into `out` (no intermediate codes).
#[inline]
pub(crate) fn fake_quantize_block(x: &[f32], params: QuantParams, out: &mut [f32]) {
    debug_assert_eq!(x.len(), out.len());
    let (qmin, qmax) = (params.format.qmin(), params.format.qmax());
    for (o, &v) in out.iter_mut().zip(x) {
        *o = params.dequantize(quantize_one(params, qmin, qmax, v));
    }
}

/// Shared-statistics E²BQM evaluation: one pass over `x` computes every
/// candidate's codes (into `scratch.qvals`, way-major) and estimated error
/// (into `scratch.errors`), then returns the winning way.
///
/// `scratch.params` must already hold the candidate set (see
/// [`crate::E2bqmQuantizer::candidate_params_into`]).
///
/// The per-candidate accumulators receive contributions in ascending
/// element order — the same order as the naive path's per-candidate
/// passes — so the estimated errors are bitwise identical to N separate
/// quantize→dequantize→estimate round trips. Arbitration uses the same
/// first-minimum `total_cmp` rule (NaN errors rank last).
pub(crate) fn eval_candidates_shared(
    x: &[f32],
    estimator: ErrorEstimator,
    scratch: &mut QuantScratch,
) -> usize {
    let ways = scratch.params.len();
    let n = x.len();
    // Same-size resize is a no-op, so steady-state calls (equal-sized
    // blocks) never touch the allocator or re-zero the matrix — every
    // in-range slot is overwritten below.
    scratch.qvals.resize(ways * n, 0);
    scratch.acc.clear();
    scratch.acc.resize(ways, EstAcc::default());

    // Statistic over the original data, shared by all candidates. The
    // naive path recomputes it per candidate (`x.norm()`, `x.mean()`);
    // one fold over the same elements in the same order gives the same
    // bits, so computing it once is free of divergence.
    let xstat = match estimator {
        ErrorEstimator::Cosine => x.iter().fold(0.0f32, |s, &v| s + v * v),
        ErrorEstimator::MeanBias => x.iter().fold(0.0f32, |s, &v| s + v),
        _ => 0.0,
    };

    // One-division detection: a symmetric candidate ladder (all offsets
    // zero, every scale an exact power-of-two divisor of candidate 0's —
    // which is what `ClipSweep` produces by construction) lets a single
    // `x[i] / scale₀` quotient serve all N ways via an exact multiply.
    // Division is the longest-latency op in the store pass, so this turns
    // the N-way evaluation's N divisions per element into one. The check
    // is bitwise at runtime (see [`pow2_multiplier`]); ladders that don't
    // qualify (ShiftableFxp's fractional exponents, FormatSweep, manual
    // parameter sets) keep the per-way division below, so the shortcut is
    // provably code-identical wherever it is taken.
    let shared = {
        let params = &scratch.params;
        let mults = &mut scratch.mults;
        mults.clear();
        match params.first() {
            Some(p0) if params.iter().all(|p| p.offset == 0.0) => {
                params
                    .iter()
                    .all(|p| match pow2_multiplier(p0.scale, p.scale) {
                        Some(m) => {
                            mults.push(m);
                            true
                        }
                        None => false,
                    })
            }
            _ => false,
        }
    };
    if shared {
        let s0 = scratch.params[0].scale;
        scratch.ybuf.resize(n, 0.0);
        for (y, &v) in scratch.ybuf.iter_mut().zip(x) {
            *y = v / s0;
        }
    }

    // Way-major evaluation over the cache-resident block. Per candidate,
    // a store pass writes the codes (no loop-carried dependency, so the
    // round/divide work vectorizes), then a fold pass runs the
    // estimator's serial accumulation, dequantizing each code inline —
    // the cast/multiply/add sits off the accumulator's latency chain, so
    // it pipelines for free and the intermediate dequantized buffer (and
    // its store/load traffic) disappears. Per accumulator, contributions
    // arrive in ascending element order, so the sums are bitwise equal to
    // the naive per-candidate quantize → dequantize → estimate round
    // trips.
    for (w, &p) in scratch.params.iter().enumerate() {
        let codes = &mut scratch.qvals[w * n..(w + 1) * n];
        let (qmin, qmax) = (p.format.qmin(), p.format.qmax());
        if shared {
            let m = scratch.mults[w];
            for (c, &y) in codes.iter_mut().zip(&scratch.ybuf) {
                *c = (fast_round(y * m) as i32).clamp(qmin, qmax);
            }
        } else {
            for (c, &v) in codes.iter_mut().zip(x) {
                *c = quantize_one(p, qmin, qmax, v);
            }
        }
        let codes = &scratch.qvals[w * n..(w + 1) * n];
        match estimator {
            ErrorEstimator::Rectilinear => {
                let mut s = 0.0f32;
                for (&v, &c) in x.iter().zip(codes) {
                    s += (v - p.dequantize(c)).abs();
                }
                scratch.acc[w].a32 = s;
            }
            ErrorEstimator::Cosine => {
                let (mut dot, mut nsq) = (0.0f32, 0.0f32);
                for (&v, &c) in x.iter().zip(codes) {
                    let d = p.dequantize(c);
                    dot += v * d;
                    nsq += d * d;
                }
                scratch.acc[w].a32 = dot;
                scratch.acc[w].b32 = nsq;
            }
            ErrorEstimator::MeanBias => {
                let mut s = 0.0f32;
                for &c in codes {
                    s += p.dequantize(c);
                }
                scratch.acc[w].a32 = s;
            }
            ErrorEstimator::Mse => {
                let mut s = 0.0f64;
                for (&v, &c) in x.iter().zip(codes) {
                    let e = (v - p.dequantize(c)) as f64;
                    s += e * e;
                }
                scratch.acc[w].a64 = s;
            }
        }
    }

    scratch.errors.clear();
    for a in &scratch.acc {
        let err = match estimator {
            ErrorEstimator::Rectilinear => a.a32 as f64,
            ErrorEstimator::Cosine => {
                // Replicates Tensor::cosine_similarity including its
                // zero-norm special cases.
                let na = xstat.sqrt();
                let nb = a.b32.sqrt();
                let cos = if na == 0.0 && nb == 0.0 {
                    1.0
                } else if na == 0.0 || nb == 0.0 {
                    0.0
                } else {
                    a.a32 / (na * nb)
                };
                1.0 - cos as f64
            }
            ErrorEstimator::MeanBias => {
                // Replicates Tensor::mean (0.0 for empty tensors).
                let mx = if n == 0 { 0.0 } else { xstat / n as f32 };
                let md = if n == 0 { 0.0 } else { a.a32 / n as f32 };
                (mx as f64 - md as f64).abs()
            }
            ErrorEstimator::Mse => a.a64 / n.max(1) as f64,
        };
        scratch.errors.push(err);
    }

    scratch
        .errors
        .iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| a.total_cmp(b))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

/// Dequantizes candidate `way`'s codes (from the scratch code matrix)
/// into `out` — the zero-allocation winner emission used by the fused
/// fake-quantize path.
#[inline]
pub(crate) fn emit_winner(scratch: &QuantScratch, way: usize, n: usize, out: &mut [f32]) {
    debug_assert_eq!(out.len(), n);
    let p = scratch.params[way];
    let codes = &scratch.qvals[way * n..(way + 1) * n];
    for (o, &q) in out.iter_mut().zip(codes) {
        *o = p.dequantize(q);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::e2bqm::E2bqmQuantizer;
    use crate::format::IntFormat;
    use cq_tensor::Tensor;

    #[test]
    fn block_theta_matches_tensor_max_abs() {
        let data = vec![0.5f32, -3.0, 2.9, 0.0, f32::NAN];
        let t = Tensor::from_vec(data.clone(), &[5]).unwrap();
        assert_eq!(block_theta(&data), t.max_abs());
        assert_eq!(block_theta(&[]), 0.0);
    }

    #[test]
    fn round_matches_std_round() {
        // Stratified sample of the exhaustive (all 2³²) verification run
        // when the kernel was written: every 2¹⁰th bit pattern plus the
        // known-treacherous neighborhoods of .5 ties and the 2²³ integral
        // boundary.
        let check = |y: f32| {
            let (a, b) = (y.round(), fast_round(y));
            assert!(
                a.to_bits() == b.to_bits() || (a.is_nan() && b.is_nan()),
                "fast_round({y:e}) = {b:e}, f32::round = {a:e}"
            );
        };
        for step in 0..(1u64 << 22) {
            check(f32::from_bits((step << 10) as u32));
        }
        for base in [0.5f32, 1.5, 2.5, 0.499_999_97, 8_388_607.5, ROUND_MAGIC] {
            for delta in [-1, 0, 1i32] {
                let v = f32::from_bits(base.to_bits().wrapping_add_signed(delta));
                check(v);
                check(-v);
            }
        }
        for special in [0.0f32, -0.0, f32::NAN, f32::INFINITY, f32::NEG_INFINITY] {
            check(special);
        }
    }

    #[test]
    fn quantize_one_matches_quant_params() {
        for p in [
            QuantParams::symmetric(1.0, IntFormat::Int8),
            QuantParams::symmetric(37.5, IntFormat::Int4),
            QuantParams::symmetric(1e-30, IntFormat::Int16),
            QuantParams::symmetric(3e30, IntFormat::Int12),
        ] {
            let (qmin, qmax) = (p.format.qmin(), p.format.qmax());
            for step in 0..(1u64 << 16) {
                let v = f32::from_bits((step << 16) as u32);
                assert_eq!(
                    quantize_one(p, qmin, qmax, v),
                    p.quantize(v),
                    "v={v:e} p={p:?}"
                );
            }
        }
    }

    #[test]
    fn effective_theta_clamps_degenerates() {
        assert_eq!(effective_theta(2.5), 2.5);
        assert_eq!(effective_theta(0.0), 0.0);
        assert_eq!(effective_theta(-1.0), 0.0);
        assert_eq!(effective_theta(f32::NAN), 0.0);
        assert_eq!(effective_theta(f32::INFINITY), 0.0);
    }

    #[test]
    fn shared_eval_matches_naive_selection() {
        // Spot-check on one block; the proptest parity suite covers the
        // full cross product of estimators/strategies/shapes.
        let q = E2bqmQuantizer::hardware_default();
        let data: Vec<f32> = (0..257)
            .map(|i| ((i * 37) % 101) as f32 * 0.01 - 0.5)
            .collect();
        let t = Tensor::from_vec(data.clone(), &[257]).unwrap();
        let naive = q.quantize(&t);

        let mut scratch = QuantScratch::new();
        let theta = block_theta(&data);
        q.candidate_params_into(theta, &mut scratch.params);
        let way = eval_candidates_shared(&data, q.estimator(), &mut scratch);
        assert_eq!(way, naive.way);
        assert_eq!(scratch.errors, naive.errors);
        let n = data.len();
        assert_eq!(
            &scratch.qvals[way * n..(way + 1) * n],
            naive.selected.values()
        );
    }

    #[test]
    fn scratch_buffers_are_reused_not_reallocated() {
        let q = E2bqmQuantizer::hardware_default();
        let data = vec![0.25f32; 512];
        let mut scratch = QuantScratch::new();
        q.candidate_params_into(1.0, &mut scratch.params);
        let _ = eval_candidates_shared(&data, q.estimator(), &mut scratch);
        let (p0, q0) = (scratch.params.as_ptr(), scratch.qvals.as_ptr());
        for _ in 0..4 {
            q.candidate_params_into(0.7, &mut scratch.params);
            let _ = eval_candidates_shared(&data, q.estimator(), &mut scratch);
        }
        assert_eq!(scratch.params.as_ptr(), p0, "params buffer reallocated");
        assert_eq!(scratch.qvals.as_ptr(), q0, "code matrix reallocated");
    }
}
