//! Overflow/NaN guards on the quantization path.
//!
//! A transient fault upstream of the SQU — a flipped bit in a streamed
//! gradient, or a corrupted θ statistic register — reaches the quantizer as
//! a non-finite input value or a wildly wrong scale. An unguarded quantizer
//! either panics (NaN comparisons) or silently destroys the tensor
//! (saturating every element against a too-small θ). The paper's E²BQM
//! machinery already contains the right recovery tool: the Quant Unit is a
//! multiplexer over candidate formats, so on overflow the guard *re-
//! multiplexes* the block onto a wider format at the same LSB scale instead
//! of failing. The [`GuardedQuantizer`] wraps [`E2bqmQuantizer`] with three
//! defenses, each recorded as a [`DegradeEvent`] rather than a panic:
//!
//! 1. **Input sanitization** — NaN elements are zeroed and infinities
//!    clamped to the largest finite magnitude before the statistic runs.
//! 2. **Statistic recovery** — a θ that is non-finite, non-positive, or
//!    implausibly larger than the data is recomputed from the block.
//! 3. **Overflow re-multiplexing** — when a (plausible-looking but
//!    corrupt) θ makes the selected candidate saturate more than the
//!    configured fraction of elements, the block is requantized at the
//!    same LSB on successively wider [`IntFormat`]s until the overflow
//!    clears, trading storage for survival.

use crate::e2bqm::{E2bqmQuantizer, E2bqmSelection};
use crate::format::{IntFormat, QuantParams};
use crate::qtensor::QuantizedTensor;
use cq_tensor::Tensor;
use std::fmt;

/// What the guard detected on a block.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QuantAnomaly {
    /// The input block contained NaN or infinite elements.
    NonFiniteInput {
        /// How many elements were non-finite.
        count: usize,
    },
    /// The θ statistic register held a non-finite, non-positive, or
    /// implausibly large value.
    CorruptStatistic {
        /// The corrupt θ as observed.
        theta: f32,
    },
    /// The selected candidate clipped more than the allowed fraction of
    /// elements (θ too small for the data).
    Overflow {
        /// Fraction of elements beyond the representable range.
        fraction: f32,
    },
}

/// How the guard recovered.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GuardAction {
    /// Non-finite elements were replaced (NaN → 0, ±∞ → ±max finite).
    SanitizedInput {
        /// How many elements were replaced.
        replaced: usize,
    },
    /// θ was recomputed from the block data.
    RecomputedStatistic {
        /// The recovered θ.
        theta: f32,
    },
    /// The block was requantized on a wider format at the same LSB scale.
    Remultiplexed {
        /// Format before the escalation.
        from: IntFormat,
        /// Format after the escalation.
        to: IntFormat,
    },
}

/// One recovery the guard performed, tied to the block it happened on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegradeEvent {
    /// Index of the block within the guarded call.
    pub block: usize,
    /// What was wrong.
    pub anomaly: QuantAnomaly,
    /// What the guard did about it.
    pub action: GuardAction,
}

impl fmt::Display for DegradeEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "block {}: ", self.block)?;
        match self.anomaly {
            QuantAnomaly::NonFiniteInput { count } => write!(f, "{count} non-finite inputs")?,
            QuantAnomaly::CorruptStatistic { theta } => write!(f, "corrupt θ = {theta}")?,
            QuantAnomaly::Overflow { fraction } => write!(f, "{:.2}% overflow", fraction * 100.0)?,
        }
        write!(f, " → ")?;
        match self.action {
            GuardAction::SanitizedInput { replaced } => write!(f, "sanitized {replaced}"),
            GuardAction::RecomputedStatistic { theta } => write!(f, "recomputed θ = {theta}"),
            GuardAction::Remultiplexed { from, to } => write!(f, "re-multiplexed {from} → {to}"),
        }
    }
}

/// An [`E2bqmQuantizer`] wrapped with anomaly detection and recovery.
///
/// On clean inputs the guard adds nothing: the selection is exactly what
/// the inner quantizer produces and the event list is empty.
///
/// # Examples
///
/// ```
/// use cq_quant::{GuardedQuantizer, QuantAnomaly};
/// use cq_tensor::Tensor;
///
/// let g = GuardedQuantizer::hardware_default();
/// let x = Tensor::from_vec(vec![0.5, f32::NAN, -0.25, 1.0], &[4]).unwrap();
/// let (sel, events) = g.quantize(&x);
/// // No panic: the NaN is sanitized and the event recorded.
/// assert!(sel.selected.dequantize().data().iter().all(|v| v.is_finite()));
/// assert!(matches!(events[0].anomaly, QuantAnomaly::NonFiniteInput { count: 1 }));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GuardedQuantizer {
    inner: E2bqmQuantizer,
    /// Saturated-element fraction above which the guard escalates.
    overflow_limit: f32,
    /// θ beyond `max|X| × statistic_slack` is treated as corrupt.
    statistic_slack: f32,
}

impl GuardedQuantizer {
    /// Wraps a quantizer with default thresholds: escalate when more than
    /// 0.1% of elements overflow; distrust θ more than 256× beyond the
    /// data's actual maximum.
    pub fn new(inner: E2bqmQuantizer) -> Self {
        GuardedQuantizer {
            inner,
            overflow_limit: 1e-3,
            statistic_slack: 256.0,
        }
    }

    /// Guards the 4-way hardware-default quantizer.
    pub fn hardware_default() -> Self {
        GuardedQuantizer::new(E2bqmQuantizer::hardware_default())
    }

    /// The wrapped quantizer.
    pub fn inner(&self) -> &E2bqmQuantizer {
        &self.inner
    }

    /// Same guard with a different overflow threshold (fraction of
    /// saturated elements tolerated before re-multiplexing).
    pub fn with_overflow_limit(mut self, limit: f32) -> Self {
        assert!((0.0..=1.0).contains(&limit), "overflow limit in [0,1]");
        self.overflow_limit = limit;
        self
    }

    /// Quantizes one block, computing θ internally (the clean path).
    pub fn quantize(&self, x: &Tensor) -> (E2bqmSelection, Vec<DegradeEvent>) {
        self.quantize_block_with_theta(x, None, 0)
    }

    /// Quantizes one block under an externally observed θ — the fault-
    /// injection seam: pass the (possibly corrupted) statistic-register
    /// value and the guard recovers as the hardware would.
    pub fn quantize_with_theta(
        &self,
        x: &Tensor,
        theta: f32,
    ) -> (E2bqmSelection, Vec<DegradeEvent>) {
        self.quantize_block_with_theta(x, Some(theta), 0)
    }

    /// Quantizes a tensor block-by-block, accumulating events across
    /// blocks (`DegradeEvent::block` carries the block index).
    pub fn quantize_blocks(
        &self,
        x: &Tensor,
        block_size: usize,
    ) -> (Vec<E2bqmSelection>, Vec<DegradeEvent>) {
        assert!(block_size > 0, "block size must be positive");
        let n = x.len();
        let mut sels = Vec::with_capacity(n.div_ceil(block_size));
        let mut events = Vec::new();
        let mut start = 0;
        let mut block = 0;
        while start < n {
            let len = block_size.min(n - start);
            let slice = x.slice_flat(start, len).expect("bounds derived from len");
            let (sel, mut ev) = self.quantize_block_with_theta(&slice, None, block);
            sels.push(sel);
            events.append(&mut ev);
            start += len;
            block += 1;
        }
        (sels, events)
    }

    fn quantize_block_with_theta(
        &self,
        x: &Tensor,
        observed_theta: Option<f32>,
        block: usize,
    ) -> (E2bqmSelection, Vec<DegradeEvent>) {
        let mut events = Vec::new();

        // Defense 1: sanitize non-finite inputs.
        let sanitized;
        let x = if x.data().iter().all(|v| v.is_finite()) {
            x
        } else {
            let max_finite = x
                .data()
                .iter()
                .filter(|v| v.is_finite())
                .fold(0.0f32, |m, &v| m.max(v.abs()));
            let mut count = 0;
            let data: Vec<f32> = x
                .data()
                .iter()
                .map(|&v| {
                    if v.is_finite() {
                        v
                    } else {
                        count += 1;
                        if v.is_nan() {
                            0.0
                        } else {
                            max_finite.copysign(v)
                        }
                    }
                })
                .collect();
            events.push(DegradeEvent {
                block,
                anomaly: QuantAnomaly::NonFiniteInput { count },
                action: GuardAction::SanitizedInput { replaced: count },
            });
            sanitized = Tensor::from_vec(data, x.dims()).expect("same shape");
            &sanitized
        };

        // Defense 2: validate the statistic.
        let honest_theta = x.max_abs();
        let theta = match observed_theta {
            None => honest_theta,
            Some(t) => {
                let corrupt = !t.is_finite()
                    || (t <= 0.0 && honest_theta > 0.0)
                    || t > honest_theta * self.statistic_slack;
                if corrupt {
                    events.push(DegradeEvent {
                        block,
                        anomaly: QuantAnomaly::CorruptStatistic { theta: t },
                        action: GuardAction::RecomputedStatistic {
                            theta: honest_theta,
                        },
                    });
                    honest_theta
                } else {
                    t
                }
            }
        };

        let mut sel = self.inner.quantize_with_theta(x, theta);

        // Defense 3: overflow re-multiplexing. θ defines the widest
        // candidate's range; elements beyond it saturate in *every*
        // candidate, so a too-small θ silently flattens the block. Keep
        // the LSB the hardware registers already hold and widen the
        // integer format until the range covers the data again.
        if theta.is_finite() && theta > 0.0 {
            let frac = saturated_fraction(x, theta);
            if frac > self.overflow_limit {
                let base = self.inner.format();
                let lsb = theta / base.qmax() as f32;
                let mut chosen = base;
                let mut widened = None;
                for fmt in IntFormat::ALL.iter().filter(|f| f.bits() > base.bits()) {
                    let params = QuantParams::with_scale(lsb, *fmt);
                    let q = QuantizedTensor::quantize(x, params);
                    chosen = *fmt;
                    let range = params.representable_max();
                    let still = saturated_fraction(x, range);
                    widened = Some(q);
                    if still <= self.overflow_limit {
                        break;
                    }
                }
                if let Some(q) = widened {
                    events.push(DegradeEvent {
                        block,
                        anomaly: QuantAnomaly::Overflow { fraction: frac },
                        action: GuardAction::Remultiplexed {
                            from: base,
                            to: chosen,
                        },
                    });
                    sel.selected = q;
                }
            }
        }

        (sel, events)
    }
}

/// Fraction of elements whose magnitude exceeds `range`.
fn saturated_fraction(x: &Tensor, range: f32) -> f32 {
    if x.is_empty() {
        return 0.0;
    }
    let over = x
        .data()
        .iter()
        .filter(|v| v.abs() > range * (1.0 + 1e-6))
        .count();
    over as f32 / x.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq_tensor::init;

    #[test]
    fn clean_path_is_transparent() {
        let g = GuardedQuantizer::hardware_default();
        let x = init::long_tailed(&[1024], 0.05, 0.02, 50.0, 3);
        let (sel, events) = g.quantize(&x);
        assert!(events.is_empty());
        let plain = g.inner().quantize(&x);
        assert_eq!(sel, plain, "guard must not perturb clean blocks");
    }

    #[test]
    fn nan_input_is_sanitized_not_panicking() {
        let g = GuardedQuantizer::hardware_default();
        let x = Tensor::from_vec(vec![1.0, f32::NAN, -2.0, f32::INFINITY], &[4]).unwrap();
        let (sel, events) = g.quantize(&x);
        assert_eq!(events.len(), 1);
        assert!(matches!(
            events[0].anomaly,
            QuantAnomaly::NonFiniteInput { count: 2 }
        ));
        let back = sel.selected.dequantize();
        assert!(back.data().iter().all(|v| v.is_finite()));
        // The infinity clamps to the largest finite magnitude (2.0).
        assert!(back.data()[3] > 0.0);
    }

    #[test]
    fn corrupt_theta_is_recomputed() {
        let g = GuardedQuantizer::hardware_default();
        let x = init::normal(&[512], 0.0, 1.0, 1);
        for bad in [f32::NAN, f32::INFINITY, -3.0, 0.0, 1e30] {
            let (sel, events) = g.quantize_with_theta(&x, bad);
            assert!(
                events
                    .iter()
                    .any(|e| matches!(e.anomaly, QuantAnomaly::CorruptStatistic { .. })),
                "θ = {bad} should be flagged"
            );
            let back = sel.selected.dequantize();
            assert!(back.cosine_similarity(&x).unwrap() > 0.95, "θ = {bad}");
        }
    }

    #[test]
    fn small_theta_triggers_remultiplex_to_wider_format() {
        let g = GuardedQuantizer::hardware_default();
        // Data spans ±4 but the corrupted register says θ = 0.5: a
        // plausible magnitude, so statistic validation passes, but 8-bit
        // quantization at that scale saturates heavily.
        let x = init::normal(&[2048], 0.0, 1.0, 7);
        let (sel, events) = g.quantize_with_theta(&x, 0.5);
        let remux = events
            .iter()
            .find(|e| matches!(e.action, GuardAction::Remultiplexed { .. }))
            .expect("overflow should trigger re-multiplexing");
        assert!(matches!(
            remux.action,
            GuardAction::Remultiplexed {
                from: IntFormat::Int8,
                to
            } if to.bits() > 8
        ));
        // The widened format recovers the tail the corrupt θ clipped.
        let back = sel.selected.dequantize();
        assert!(back.cosine_similarity(&x).unwrap() > 0.99);
        assert!(back.max_abs() > 1.0, "tail recovered: {}", back.max_abs());
    }

    #[test]
    fn honest_small_theta_on_clipped_data_does_not_degrade() {
        // ClipSweep picking a deep clip is normal operation, not a fault:
        // the guard keys on θ vs data, not on the arbiter's choice.
        let g = GuardedQuantizer::hardware_default();
        let x = init::long_tailed(&[4096], 0.01, 0.001, 500.0, 11);
        let (_, events) = g.quantize(&x);
        assert!(events.is_empty());
    }

    #[test]
    fn blockwise_events_carry_block_index() {
        let g = GuardedQuantizer::hardware_default();
        let mut data = vec![0.5f32; 768];
        data[600] = f32::NAN; // block 2 of 256-wide blocks
        let x = Tensor::from_vec(data, &[768]).unwrap();
        let (sels, events) = g.quantize_blocks(&x, 256);
        assert_eq!(sels.len(), 3);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].block, 2);
    }

    #[test]
    fn all_zero_block_with_zero_theta_is_not_an_anomaly() {
        let g = GuardedQuantizer::hardware_default();
        let x = Tensor::zeros(&[64]);
        let (sel, events) = g.quantize_with_theta(&x, 0.0);
        assert!(events.is_empty(), "zero θ on zero data is honest");
        assert_eq!(sel.selected.dequantize(), x);
    }

    #[test]
    fn events_display() {
        let e = DegradeEvent {
            block: 3,
            anomaly: QuantAnomaly::Overflow { fraction: 0.25 },
            action: GuardAction::Remultiplexed {
                from: IntFormat::Int8,
                to: IntFormat::Int16,
            },
        };
        let s = e.to_string();
        assert!(
            s.contains("block 3") && s.contains("INT8") && s.contains("INT16"),
            "{s}"
        );
    }
}
