//! Error-estimation-based Quantization Multiplexing (E²BQM) — paper §III.B.
//!
//! Long-tailed data distributions exaggerate fixed-point rounding error.
//! Prior algorithms each invented a different mitigation (shiftable
//! fixed-point, BiScaled-FxP, format switching, direction-sensitive
//! clipping); the paper's observation is that all of them *choose the best
//! quantization function among several candidates according to an estimate
//! of the quantization error*. E²BQM implements exactly that four-step
//! procedure:
//!
//! 1. compute the statistic θ on the original data X,
//! 2. quantize X into N candidates via different `Qᵢ(·)`,
//! 3. estimate each candidate's error as a distance between X and the
//!    dequantized `X'ᵢ = Qᵢ⁻¹(Xq,ᵢ)`,
//! 4. select the candidate with the smallest estimated error.
//!
//! The hardware SQU realizes this as a time-multiplexed 4-way quantization
//! with an Arbiter comparing candidate quality (paper §IV.B.1).

use crate::fast::{self, QuantScratch};
use crate::format::{IntFormat, QuantParams};
use crate::qtensor::QuantizedTensor;
use cq_par::Pool;
use cq_tensor::{Backend, Tensor};
use std::fmt;

/// Distance metric used to estimate quantization error (step 3).
///
/// The paper's §VII.B lists the statistics the Arbiter/Stat-Unit supports:
/// max absolute value, rectilinear distance, and mean bias; cosine distance
/// covers Zhu et al.'s direction-sensitive loss.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ErrorEstimator {
    /// Rectilinear distance Σ|xᵢ − x'ᵢ| (the paper's running example).
    #[default]
    Rectilinear,
    /// Cosine distance `1 − cos(X, X')` (direction-sensitive, Zhu et al.).
    Cosine,
    /// Absolute mean bias |mean(X) − mean(X')| (Zhang et al.).
    MeanBias,
    /// Mean squared error.
    Mse,
}

impl ErrorEstimator {
    /// Evaluates the estimated error between the original data and one
    /// dequantized candidate (lower is better).
    pub fn estimate(&self, original: &Tensor, dequantized: &Tensor) -> f64 {
        match self {
            ErrorEstimator::Rectilinear => original
                .l1_distance(dequantized)
                .expect("candidates share the original's shape")
                as f64,
            ErrorEstimator::Cosine => {
                1.0 - original
                    .cosine_similarity(dequantized)
                    .expect("candidates share the original's shape") as f64
            }
            ErrorEstimator::MeanBias => (original.mean() as f64 - dequantized.mean() as f64).abs(),
            ErrorEstimator::Mse => {
                let n = original.len().max(1) as f64;
                original
                    .data()
                    .iter()
                    .zip(dequantized.data())
                    .map(|(&a, &b)| {
                        let d = (a - b) as f64;
                        d * d
                    })
                    .sum::<f64>()
                    / n
            }
        }
    }
}

impl fmt::Display for ErrorEstimator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ErrorEstimator::Rectilinear => "rectilinear",
            ErrorEstimator::Cosine => "cosine",
            ErrorEstimator::MeanBias => "mean-bias",
            ErrorEstimator::Mse => "mse",
        };
        f.write_str(name)
    }
}

/// How the candidate quantization functions `Qᵢ(·)` are generated (step 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CandidateStrategy {
    /// Candidate i clips at θ/2ⁱ — a sweep of clipping ranges emulating
    /// *Direction Sensitive Gradient Clipping* (Zhu et al. 2019).
    ClipSweep,
    /// Candidate 0 uses the wide scale θ, candidate 1 the fine scale
    /// θ/2^(bits/2), emulating *Shiftable Fixed-Point* (Zhong et al. 2020)
    /// and *BiScaled-FxP* (Jain et al. 2019). Additional ways interpolate
    /// between the two.
    ShiftableFxp,
    /// Candidate i uses format widths 4·(i+1) bits (INT4/8/12/16) at the
    /// same θ — Zhang et al.'s adaptive-precision format switching.
    FormatSweep,
}

impl fmt::Display for CandidateStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            CandidateStrategy::ClipSweep => "clip-sweep",
            CandidateStrategy::ShiftableFxp => "shiftable-fxp",
            CandidateStrategy::FormatSweep => "format-sweep",
        };
        f.write_str(name)
    }
}

/// Outcome of an E²BQM quantization: the winning candidate plus bookkeeping
/// about the selection (which way won and every candidate's estimated
/// error), matching what the hardware Arbiter produces.
#[derive(Debug, Clone, PartialEq)]
pub struct E2bqmSelection {
    /// The winning quantized tensor.
    pub selected: QuantizedTensor,
    /// Index of the winning candidate (the "tag" the Arbiter emits).
    pub way: usize,
    /// Estimated error of each candidate, indexed by way.
    pub errors: Vec<f64>,
}

/// The E²BQM quantizer: N-way candidate generation + error-based arbitration.
///
/// # Examples
///
/// ```
/// use cq_quant::{CandidateStrategy, E2bqmQuantizer, ErrorEstimator, IntFormat};
/// use cq_tensor::init;
///
/// let q = E2bqmQuantizer::new(
///     4,
///     CandidateStrategy::ClipSweep,
///     ErrorEstimator::Rectilinear,
///     IntFormat::Int8,
/// );
/// let x = init::long_tailed(&[512], 0.1, 0.01, 40.0, 7);
/// let sel = q.quantize(&x);
/// assert!(sel.way < 4);
/// assert_eq!(sel.errors.len(), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct E2bqmQuantizer {
    ways: usize,
    strategy: CandidateStrategy,
    estimator: ErrorEstimator,
    format: IntFormat,
}

impl E2bqmQuantizer {
    /// Creates a quantizer with `ways` candidates.
    ///
    /// # Panics
    ///
    /// Panics if `ways` is zero.
    pub fn new(
        ways: usize,
        strategy: CandidateStrategy,
        estimator: ErrorEstimator,
        format: IntFormat,
    ) -> Self {
        assert!(ways > 0, "E2BQM needs at least one candidate way");
        E2bqmQuantizer {
            ways,
            strategy,
            estimator,
            format,
        }
    }

    /// The hardware default: 4-way, rectilinear distance, INT8, clip sweep
    /// (the configuration evaluated in paper §III.B).
    pub fn hardware_default() -> Self {
        E2bqmQuantizer::new(
            4,
            CandidateStrategy::ClipSweep,
            ErrorEstimator::Rectilinear,
            IntFormat::Int8,
        )
    }

    /// Number of candidate ways.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// The candidate-generation strategy.
    pub fn strategy(&self) -> CandidateStrategy {
        self.strategy
    }

    /// The error estimator.
    pub fn estimator(&self) -> ErrorEstimator {
        self.estimator
    }

    /// The base integer format.
    pub fn format(&self) -> IntFormat {
        self.format
    }

    /// Generates the candidate parameter set for a block with statistic θ.
    pub fn candidate_params(&self, theta: f32) -> Vec<QuantParams> {
        let mut out = Vec::with_capacity(self.ways);
        self.candidate_params_into(theta, &mut out);
        out
    }

    /// Fills `out` with the candidate parameter set for statistic θ,
    /// reusing `out`'s allocation. The candidate set depends only on
    /// `(self, θ)`, so repeated callers (block loops) regenerate it into
    /// the same buffer instead of allocating a fresh `Vec` per block.
    pub fn candidate_params_into(&self, theta: f32, out: &mut Vec<QuantParams>) {
        out.clear();
        let theta = fast::effective_theta(theta);
        if theta == 0.0 {
            // Degenerate blocks quantize to zero under every candidate.
            out.resize(self.ways, QuantParams::symmetric(0.0, self.format));
            return;
        }
        out.extend((0..self.ways).map(|i| match self.strategy {
            CandidateStrategy::ClipSweep => {
                QuantParams::symmetric(theta / (1 << i) as f32, self.format)
            }
            CandidateStrategy::ShiftableFxp => {
                // Geometric interpolation between wide (θ) and fine
                // (θ / 2^(bits/2)) scales.
                let span = self.format.bits() as f32 / 2.0;
                let exp = span * i as f32 / (self.ways.max(2) - 1) as f32;
                QuantParams::symmetric(theta / 2f32.powf(exp), self.format)
            }
            CandidateStrategy::FormatSweep => {
                let fmt = IntFormat::ALL[i.min(IntFormat::ALL.len() - 1)];
                QuantParams::symmetric(theta, fmt)
            }
        }));
    }

    /// Runs the full four-step E²BQM procedure on one block of data.
    pub fn quantize(&self, x: &Tensor) -> E2bqmSelection {
        // Step 1: statistic.
        self.quantize_with_theta(x, x.max_abs())
    }

    /// Runs steps 2–4 with an externally supplied statistic θ.
    ///
    /// The hardware separates the Stat Unit (which produces θ) from the
    /// Quant Unit; this entry point models that seam, letting callers
    /// replay a stale θ, substitute a corrupted register value (fault
    /// injection), or reuse a θ computed on different data.
    ///
    /// Arbitration is total: a candidate whose estimated error is NaN
    /// (e.g. after a fault upstream) loses to every finite candidate
    /// instead of panicking.
    pub fn quantize_with_theta(&self, x: &Tensor, theta: f32) -> E2bqmSelection {
        // Step 2: candidates.
        let candidates: Vec<QuantizedTensor> = self
            .candidate_params(theta)
            .into_iter()
            .map(|p| QuantizedTensor::quantize(x, p))
            .collect();
        // Step 3: error estimation on dequantized candidates.
        let errors: Vec<f64> = candidates
            .iter()
            .map(|c| self.estimator.estimate(x, &c.dequantize()))
            .collect();
        // Step 4: arbitration (total order so NaN errors rank last).
        let way = errors
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.total_cmp(b))
            .map(|(i, _)| i)
            .unwrap_or(0);
        E2bqmSelection {
            selected: candidates.into_iter().nth(way).expect("way < ways"),
            way,
            errors,
        }
    }

    /// Quantizes a tensor block-by-block (LDQ slicing) with E²BQM applied to
    /// every block; returns per-block selections.
    ///
    /// Dispatches on [`cq_tensor::default_backend`]: the fast backend uses
    /// the fused shared-statistics kernel (bit-identical to naive — see
    /// [`crate::fast`]), fanning out over the global pool for large tensors.
    pub fn quantize_blocks(&self, x: &Tensor, block_size: usize) -> Vec<E2bqmSelection> {
        self.quantize_blocks_with(x, block_size, cq_tensor::default_backend())
    }

    /// [`Self::quantize_blocks`] with an explicit backend (A/B testing and
    /// the parity suite).
    pub fn quantize_blocks_with(
        &self,
        x: &Tensor,
        block_size: usize,
        backend: Backend,
    ) -> Vec<E2bqmSelection> {
        assert!(block_size > 0, "block size must be positive");
        let mut sp = cq_obs::span!("quant", "e2bqm_blocks");
        if sp.is_recording() {
            sp.arg("elems", x.len())
                .arg("blocks", x.len().div_ceil(block_size))
                .arg("ways", self.ways)
                .arg("format", self.format.to_string().as_str());
            cq_obs::counter!("quant.calls").incr();
            cq_obs::counter!("quant.blocks").add(x.len().div_ceil(block_size) as u64);
        }
        match backend {
            Backend::Naive => self.quantize_blocks_naive(x, block_size),
            Backend::Fast => {
                if x.len() < fast::PAR_MIN_ELEMS || Pool::global().threads() == 1 {
                    self.quantize_blocks_fused_serial(x, block_size)
                } else {
                    self.quantize_blocks_fast_on(Pool::global(), x, block_size)
                }
            }
        }
    }

    /// The reference implementation: per block, N separate
    /// quantize→dequantize→estimate round trips (the bit-exactness oracle
    /// for the fused path).
    pub fn quantize_blocks_naive(&self, x: &Tensor, block_size: usize) -> Vec<E2bqmSelection> {
        assert!(block_size > 0, "block size must be positive");
        let n = x.len();
        let mut out = Vec::with_capacity(n.div_ceil(block_size));
        let mut start = 0;
        while start < n {
            let len = block_size.min(n - start);
            let block = x.slice_flat(start, len).expect("bounds derived from len");
            out.push(self.quantize(&block));
            start += len;
        }
        out
    }

    /// Fused E²BQM on one raw block slice: θ, all candidate codes and all
    /// error accumulators in a single pass, reusing `scratch`.
    fn quantize_block_fused(&self, x: &[f32], scratch: &mut QuantScratch) -> E2bqmSelection {
        let theta = fast::block_theta(x);
        self.candidate_params_into(theta, &mut scratch.params);
        let way = fast::eval_candidates_shared(x, self.estimator, scratch);
        let n = x.len();
        let selected = QuantizedTensor::from_codes(
            scratch.qvals[way * n..(way + 1) * n].to_vec(),
            scratch.params[way],
            &[n],
        );
        E2bqmSelection {
            selected,
            way,
            errors: scratch.errors.clone(),
        }
    }

    /// Serial fused path: one scratch arena reused across all blocks.
    fn quantize_blocks_fused_serial(&self, x: &Tensor, block_size: usize) -> Vec<E2bqmSelection> {
        let data = x.data();
        let n = data.len();
        let mut scratch = QuantScratch::new();
        let mut out = Vec::with_capacity(n.div_ceil(block_size));
        let mut start = 0;
        while start < n {
            let len = block_size.min(n - start);
            out.push(self.quantize_block_fused(&data[start..start + len], &mut scratch));
            start += len;
        }
        out
    }

    /// Pool-explicit fused path: blocks are partitioned into contiguous
    /// chunks (each worker reuses one scratch arena) and results are
    /// flattened in block order, so the output is identical for any worker
    /// count.
    pub fn quantize_blocks_fast_on(
        &self,
        pool: &Pool,
        x: &Tensor,
        block_size: usize,
    ) -> Vec<E2bqmSelection> {
        assert!(block_size > 0, "block size must be positive");
        let data = x.data();
        let n = data.len();
        if n == 0 {
            return Vec::new();
        }
        let nblocks = n.div_ceil(block_size);
        let chunks = Pool::partition(nblocks, pool.threads(), fast::PAR_MIN_BLOCKS);
        let per_chunk: Vec<Vec<E2bqmSelection>> = pool.parallel_map(chunks.len(), |ci| {
            let mut scratch = QuantScratch::new();
            let r = chunks[ci].clone();
            let mut out = Vec::with_capacity(r.len());
            for b in r {
                let start = b * block_size;
                let len = block_size.min(n - start);
                out.push(self.quantize_block_fused(&data[start..start + len], &mut scratch));
            }
            out
        });
        per_chunk.into_iter().flatten().collect()
    }
}

/// Reconstructs the full tensor from per-block E²BQM selections.
pub fn dequantize_blocks(selections: &[E2bqmSelection], dims: &[usize]) -> Tensor {
    let mut data = Vec::new();
    for s in selections {
        data.extend_from_slice(s.selected.dequantize().data());
    }
    Tensor::from_vec(data, dims).expect("selections cover the tensor")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qtensor::quant_error;
    use cq_tensor::init;

    #[test]
    fn selection_never_worse_than_baseline_way0() {
        // Way 0 of ClipSweep is plain max-|X| quantization; arbitration must
        // pick something at least as good under the estimator.
        let q = E2bqmQuantizer::hardware_default();
        for seed in 0..8 {
            let x = init::long_tailed(&[1024], 0.05, 0.02, 50.0, seed);
            let sel = q.quantize(&x);
            assert!(sel.errors[sel.way] <= sel.errors[0] + 1e-9);
        }
    }

    #[test]
    fn long_tail_prefers_clipped_candidates() {
        // 4095 small bulk values plus a single extreme outlier: clipping the
        // range (way > 0) recovers the bulk at tiny cost on the outlier.
        let q = E2bqmQuantizer::hardware_default();
        let mut data: Vec<f32> = (0..4095)
            .map(|i| if i % 2 == 0 { 0.003 } else { -0.003 })
            .collect();
        data.push(1.0);
        let x = Tensor::from_vec(data, &[4096]).unwrap();
        let sel = q.quantize(&x);
        assert!(sel.way > 0, "expected a clipped candidate, got way 0");
        assert!(sel.errors[sel.way] < sel.errors[0]);
    }

    #[test]
    fn gaussian_data_prefers_wide_range() {
        // Without a long tail, clipping hurts; the arbiter should keep a
        // wide-range candidate (way 0 or 1).
        let q = E2bqmQuantizer::hardware_default();
        let x = init::normal(&[1024], 0.0, 1.0, 4);
        let sel = q.quantize(&x);
        assert!(sel.way <= 1, "unexpected deep clip on gaussian data");
    }

    #[test]
    fn e2bqm_beats_plain_quantization_on_long_tails() {
        let q = E2bqmQuantizer::hardware_default();
        let x = init::long_tailed(&[8192], 0.01, 0.001, 500.0, 11);
        let sel = q.quantize(&x);
        let plain = QuantizedTensor::quantize_symmetric(&x, IntFormat::Int8);
        let e_sel = quant_error(&x, &sel.selected.dequantize());
        let e_plain = quant_error(&x, &plain.dequantize());
        assert!(
            e_sel.l1 < e_plain.l1,
            "E2BQM L1 {} >= plain L1 {}",
            e_sel.l1,
            e_plain.l1
        );
    }

    #[test]
    fn format_sweep_widest_is_most_accurate() {
        let q = E2bqmQuantizer::new(
            4,
            CandidateStrategy::FormatSweep,
            ErrorEstimator::Mse,
            IntFormat::Int4,
        );
        let x = init::normal(&[2048], 0.0, 1.0, 9);
        let sel = q.quantize(&x);
        // MSE of INT16 candidate is the lowest, so way 3 wins.
        assert_eq!(sel.way, 3);
        assert!(sel.errors[3] < sel.errors[0]);
    }

    #[test]
    fn shiftable_two_way_selects_fine_for_small_values() {
        let q = E2bqmQuantizer::new(
            2,
            CandidateStrategy::ShiftableFxp,
            ErrorEstimator::Rectilinear,
            IntFormat::Int8,
        );
        // Bulk small values plus one outlier defining theta. With enough
        // bulk elements the fine scale's gain dwarfs the outlier clip cost.
        let mut data = vec![0.001f32; 4095];
        data.push(1.0);
        let x = Tensor::from_vec(data, &[4096]).unwrap();
        let sel = q.quantize(&x);
        assert_eq!(sel.way, 1, "fine scale should win for bulk-small data");
    }

    #[test]
    fn candidate_params_counts_and_scales() {
        let q = E2bqmQuantizer::hardware_default();
        let params = q.candidate_params(8.0);
        assert_eq!(params.len(), 4);
        // ClipSweep halves theta per way.
        assert!((params[0].representable_max() - 8.0).abs() < 1e-4);
        assert!((params[1].representable_max() - 4.0).abs() < 1e-4);
        assert!((params[3].representable_max() - 1.0).abs() < 1e-4);
    }

    #[test]
    fn zero_block_degenerates() {
        let q = E2bqmQuantizer::hardware_default();
        let x = Tensor::zeros(&[64]);
        let sel = q.quantize(&x);
        assert_eq!(sel.selected.dequantize(), x);
    }

    #[test]
    fn blockwise_roundtrip() {
        let q = E2bqmQuantizer::hardware_default();
        let x = init::long_tailed(&[1000], 0.1, 0.01, 30.0, 2);
        let sels = q.quantize_blocks(&x, 256);
        assert_eq!(sels.len(), 4);
        let back = dequantize_blocks(&sels, x.dims());
        assert_eq!(back.dims(), x.dims());
        let e = quant_error(&x, &back);
        assert!(e.cosine > 0.99);
    }

    #[test]
    #[should_panic(expected = "at least one candidate")]
    fn zero_ways_panics() {
        let _ = E2bqmQuantizer::new(
            0,
            CandidateStrategy::ClipSweep,
            ErrorEstimator::Rectilinear,
            IntFormat::Int8,
        );
    }

    #[test]
    fn estimator_displays() {
        assert_eq!(ErrorEstimator::Rectilinear.to_string(), "rectilinear");
        assert_eq!(CandidateStrategy::ShiftableFxp.to_string(), "shiftable-fxp");
    }

    #[test]
    fn mean_bias_estimator() {
        let a = Tensor::from_vec(vec![1.0, 3.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let e = ErrorEstimator::MeanBias.estimate(&a, &b);
        assert!((e - 0.5).abs() < 1e-9);
    }
}
