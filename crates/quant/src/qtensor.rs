//! Quantized tensor container and error metrics.

use crate::format::QuantParams;
use cq_tensor::Tensor;
use std::fmt;

/// A tensor quantized with a single set of parameters (one "buffer line" /
/// one LDQ block worth of data in hardware terms).
///
/// # Examples
///
/// ```
/// use cq_quant::{IntFormat, QuantizedTensor};
/// use cq_tensor::Tensor;
///
/// let x = Tensor::from_vec(vec![0.5, -1.0, 0.25, 1.0], &[4])?;
/// let q = QuantizedTensor::quantize_symmetric(&x, IntFormat::Int8);
/// let back = q.dequantize();
/// assert!(x.l1_distance(&back)? < 0.02);
/// # Ok::<(), cq_tensor::TensorError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedTensor {
    values: Vec<i32>,
    params: QuantParams,
    dims: Vec<usize>,
}

impl QuantizedTensor {
    /// Quantizes a tensor with explicit parameters.
    pub fn quantize(x: &Tensor, params: QuantParams) -> Self {
        QuantizedTensor {
            values: x.data().iter().map(|&v| params.quantize(v)).collect(),
            params,
            dims: x.dims().to_vec(),
        }
    }

    /// Quantizes a tensor symmetrically using its own max-|X| statistic
    /// (the layer-wise dynamic quantization primitive).
    pub fn quantize_symmetric(x: &Tensor, format: crate::IntFormat) -> Self {
        let params = QuantParams::symmetric(x.max_abs(), format);
        Self::quantize(x, params)
    }

    /// Assembles a quantized tensor from pre-computed codes (the fused
    /// fast-path kernels produce codes directly, without an intermediate
    /// block tensor).
    pub(crate) fn from_codes(values: Vec<i32>, params: QuantParams, dims: &[usize]) -> Self {
        debug_assert_eq!(values.len(), dims.iter().product::<usize>());
        QuantizedTensor {
            values,
            params,
            dims: dims.to_vec(),
        }
    }

    /// Reconstructs the full-precision tensor.
    pub fn dequantize(&self) -> Tensor {
        let mut data = Vec::new();
        self.dequantize_into(&mut data);
        Tensor::from_vec(data, &self.dims).expect("dims preserved by construction")
    }

    /// Appends the reconstructed full-precision values to a caller-owned
    /// buffer, so repeated dequantization can reuse one allocation.
    pub fn dequantize_into(&self, out: &mut Vec<f32>) {
        out.reserve(self.values.len());
        out.extend(self.values.iter().map(|&q| self.params.dequantize(q)));
    }

    /// The quantized integer values.
    pub fn values(&self) -> &[i32] {
        &self.values
    }

    /// The quantization parameters.
    pub fn params(&self) -> QuantParams {
        self.params
    }

    /// Original tensor dims.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the tensor is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Storage size in bytes: packed integer payload plus 2 bytes for the
    /// statistic/tag (the paper's compression-ratio model stores θ in
    /// 2 bytes per quantized unit).
    pub fn storage_bytes(&self) -> f64 {
        self.values.len() as f64 * self.params.format.bytes() + 2.0
    }
}

impl fmt::Display for QuantizedTensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "QuantizedTensor[{} elems, {}]",
            self.values.len(),
            self.params
        )
    }
}

/// Error metrics between an original tensor and its quantized reconstruction.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct QuantError {
    /// Mean squared error.
    pub mse: f64,
    /// Total rectilinear (L1) distance Σ|x − x'|.
    pub l1: f64,
    /// Cosine similarity (1.0 = perfect direction preservation).
    pub cosine: f64,
    /// Mean bias: mean(x) − mean(x') — the Zhang et al. statistic.
    pub mean_bias: f64,
}

/// Computes all quantization error metrics between `original` and the
/// reconstruction `dequantized`.
///
/// # Panics
///
/// Panics if the tensors have different shapes (programmer error: both sides
/// always come from the same source tensor).
pub fn quant_error(original: &Tensor, dequantized: &Tensor) -> QuantError {
    assert_eq!(
        original.dims(),
        dequantized.dims(),
        "quant_error operands must agree in shape"
    );
    let n = original.len().max(1) as f64;
    let mut se = 0.0f64;
    let mut l1 = 0.0f64;
    for (&a, &b) in original.data().iter().zip(dequantized.data()) {
        let d = (a - b) as f64;
        se += d * d;
        l1 += d.abs();
    }
    QuantError {
        mse: se / n,
        l1,
        cosine: original
            .cosine_similarity(dequantized)
            .expect("shapes already checked") as f64,
        mean_bias: original.mean() as f64 - dequantized.mean() as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IntFormat;

    #[test]
    fn roundtrip_preserves_extremes_exactly() {
        let x = Tensor::from_vec(vec![-2.0, 2.0, 1.0, 0.0], &[4]).unwrap();
        let q = QuantizedTensor::quantize_symmetric(&x, IntFormat::Int8);
        let back = q.dequantize();
        assert!((back.data()[0] + 2.0).abs() < 1e-6);
        assert!((back.data()[1] - 2.0).abs() < 1e-6);
        assert_eq!(back.data()[3], 0.0);
    }

    #[test]
    fn wider_formats_reduce_error() {
        let x = cq_tensor::init::normal(&[1000], 0.0, 1.0, 42);
        let mut last = f64::INFINITY;
        for fmt in IntFormat::ALL {
            let q = QuantizedTensor::quantize_symmetric(&x, fmt);
            let e = quant_error(&x, &q.dequantize());
            assert!(e.mse <= last, "{fmt}: mse {} > previous {last}", e.mse);
            last = e.mse;
        }
    }

    #[test]
    fn zero_tensor_is_lossless() {
        let x = Tensor::zeros(&[16]);
        let q = QuantizedTensor::quantize_symmetric(&x, IntFormat::Int4);
        assert_eq!(q.dequantize(), x);
        let e = quant_error(&x, &q.dequantize());
        assert_eq!(e.mse, 0.0);
        assert_eq!(e.l1, 0.0);
    }

    #[test]
    fn storage_bytes_packed() {
        let x = Tensor::zeros(&[32]);
        let q8 = QuantizedTensor::quantize_symmetric(&x, IntFormat::Int8);
        assert_eq!(q8.storage_bytes(), 34.0); // 32 payload + 2 tag
        let q4 = QuantizedTensor::quantize_symmetric(&x, IntFormat::Int4);
        assert_eq!(q4.storage_bytes(), 18.0); // 16 payload + 2 tag
    }

    #[test]
    fn quant_error_metrics_known_values() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![1.5, 1.5], &[2]).unwrap();
        let e = quant_error(&a, &b);
        assert!((e.mse - 0.25).abs() < 1e-9);
        assert!((e.l1 - 1.0).abs() < 1e-9);
        assert!((e.mean_bias - 0.0).abs() < 1e-9);
    }

    #[test]
    fn dims_preserved() {
        let x = Tensor::zeros(&[2, 3, 4]);
        let q = QuantizedTensor::quantize_symmetric(&x, IntFormat::Int8);
        assert_eq!(q.dims(), &[2, 3, 4]);
        assert_eq!(q.dequantize().dims(), &[2, 3, 4]);
        assert_eq!(q.len(), 24);
        assert!(!q.is_empty());
    }
}
