//! Property-based tests for the mapping model's invariants: mappings
//! redistribute work and traffic, they never create or destroy it.

use cq_sim::mapping::{pe_sweep_cycles, LoopOrder, Mapping, MatShape, MemHierarchy, FULL};
use proptest::prelude::*;

/// The paper's edge hierarchy (256 KB NBin / 512 KB SB / 256 KB NBout,
/// 64×64 PEs, INT8 operands, FP32 partial sums).
fn edge_hier() -> MemHierarchy {
    MemHierarchy {
        nbin_bytes: 256 * 1024,
        sb_bytes: 512 * 1024,
        nbout_bytes: 256 * 1024,
        elem_bytes: 1.0,
        acc_bytes: 4.0,
        pe_rows: 64,
        pe_cols: 64,
        pe_arrays: 1,
    }
}

fn arb_mapping() -> impl Strategy<Value = Mapping> {
    (
        0usize..LoopOrder::ALL.len(),
        prop_oneof![(1u64..4096), Just(FULL)],
        prop_oneof![(1u64..4096), Just(FULL)],
        prop_oneof![(1u64..8192), Just(FULL)],
        1u64..128,
    )
        .prop_map(|(oi, tile_m, tile_n, tile_k, kfold)| Mapping {
            order: LoopOrder::ALL[oi],
            tile_m,
            tile_n,
            tile_k,
            kfold,
        })
}

fn arb_shape() -> impl Strategy<Value = MatShape> {
    (1u64..3000, 1u64..3000, 1u64..3000).prop_map(|(m, n, k)| MatShape { m, n, k })
}

proptest! {
    /// A mapping never changes the MAC count, and its DRAM traffic never
    /// drops below the compulsory each-element-once bound (outputs cross
    /// exactly once — spills are accounted separately at accumulator
    /// width).
    #[test]
    fn macs_conserved_and_traffic_compulsory(shape in arb_shape(), mapping in arb_mapping()) {
        let hier = edge_hier();
        let e = mapping.evaluate(shape, &hier);
        prop_assert_eq!(e.macs(), shape.macs());
        prop_assert!(e.dram_in_elems() >= shape.m * shape.k);
        prop_assert!(e.dram_w_elems() >= shape.k * shape.n);
        prop_assert_eq!(e.dram_out_elems(), shape.m * shape.n);
        // Reload factors are bounded by the trip counts that cause them.
        prop_assert!(e.reload_in <= shape.n.div_ceil(e.tile_n));
        prop_assert!(e.reload_w <= shape.m.div_ceil(e.tile_m));
    }

    /// Capacity-legal mappings actually fit: every clamped tile's
    /// occupancy is within its buffer, and the fold is within the rows.
    #[test]
    fn legal_mappings_fit_their_buffers(shape in arb_shape(), mapping in arb_mapping()) {
        let hier = edge_hier();
        if mapping.is_capacity_legal(shape, &hier) {
            let e = mapping.evaluate(shape, &hier);
            prop_assert!(e.nbin_occupancy <= hier.nbin_bytes as f64);
            prop_assert!(e.sb_occupancy <= hier.sb_bytes as f64);
            prop_assert!(e.nbout_occupancy <= hier.nbout_bytes as f64);
            prop_assert!(mapping.kfold >= 1 && mapping.kfold <= hier.pe_rows);
            // Legal tiles are never clamped upward.
            prop_assert!(e.tile_m <= shape.m && e.tile_n <= shape.n && e.tile_k <= shape.k);
        }
    }

    /// The PE sweep never exceeds the array's physical throughput:
    /// utilization stays in (0, 1], at every fold.
    #[test]
    fn sweep_utilization_bounded(shape in arb_shape(), kfold in 1u64..128, passes in 1u64..=16) {
        let hier = edge_hier();
        let u = hier.pe_utilization(shape, kfold, passes);
        prop_assert!(u > 0.0 && u <= 1.0 + 1e-9, "utilization {u}");
    }

    /// Fold 1 is exactly the legacy output-stationary sweep formula the
    /// pre-mapping simulator hard-coded.
    #[test]
    fn fold_one_is_the_legacy_sweep(shape in arb_shape(), arrays in 1u64..=64, passes in 1u64..=16) {
        let legacy = (shape.m.div_ceil(64) * shape.n.div_ceil(64)).div_ceil(arrays)
            * shape.k
            * passes;
        prop_assert_eq!(
            pe_sweep_cycles(64, 64, arrays, 1, shape, passes),
            legacy
        );
    }

    /// The streaming default is the do-no-harm point: factors 1, no
    /// spills, fold 1 — for every shape.
    #[test]
    fn streaming_default_is_idealized(shape in arb_shape()) {
        let hier = edge_hier();
        let e = Mapping::streaming_default().evaluate(shape, &hier);
        prop_assert_eq!(e.reload_in, 1);
        prop_assert_eq!(e.reload_w, 1);
        prop_assert_eq!(e.psum_spill_elems, 0);
        prop_assert_eq!(e.kfold, 1);
    }

    /// A K-innermost nest (or a K tile covering the reduction) never
    /// spills partial sums; spilling requires an extra K trip enclosing
    /// an output loop.
    #[test]
    fn spills_only_from_outer_k(shape in arb_shape(), mapping in arb_mapping()) {
        let hier = edge_hier();
        let e = mapping.evaluate(shape, &hier);
        let k_trips = shape.k.div_ceil(e.tile_k);
        if mapping.order.name().ends_with('k') || k_trips == 1 {
            prop_assert_eq!(e.psum_spill_elems, 0);
        }
        prop_assert_eq!(e.psum_spill_elems % (shape.m * shape.n), 0);
    }

    /// `render` → `parse` is the identity on arbitrary mappings.
    #[test]
    fn render_parse_roundtrip(mapping in arb_mapping()) {
        let parsed = Mapping::parse(&mapping.render()).unwrap();
        prop_assert_eq!(parsed, mapping);
    }
}
