//! Plain-text table rendering for experiment reports.

use std::fmt;

/// A simple aligned-column text table used by the experiment binaries to
/// print paper-style tables.
///
/// # Examples
///
/// ```
/// use cq_sim::report::TextTable;
///
/// let mut t = TextTable::new(vec!["Model", "Speedup"]);
/// t.row(vec!["AlexNet".into(), "2.09x".into()]);
/// let s = t.to_string();
/// assert!(s.contains("AlexNet"));
/// assert!(s.contains("Speedup"));
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        TextTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row. Rows shorter than the header are padded with blanks.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        let mut cells = cells;
        while cells.len() < self.headers.len() {
            cells.push(String::new());
        }
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let print_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, cell) in cells.iter().enumerate().take(ncols) {
                write!(f, "| {:<w$} ", cell, w = widths[i])?;
            }
            writeln!(f, "|")
        };
        print_row(f, &self.headers)?;
        for (i, w) in widths.iter().enumerate() {
            write!(f, "|{:-<w$}", "", w = w + 2)?;
            if i == ncols - 1 {
                writeln!(f, "|")?;
            }
        }
        for row in &self.rows {
            print_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a ratio as the paper writes them: `4.20x`.
pub fn ratio(x: f64) -> String {
    format!("{x:.2}x")
}

/// Formats a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{x:.1}%")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut t = TextTable::new(vec!["A", "BBBB"]);
        t.row(vec!["xxxxx".into(), "1".into()]);
        t.row(vec!["y".into()]);
        let s = t.to_string();
        assert!(s.contains("| A     | BBBB |"));
        assert!(s.contains("| xxxxx | 1    |"));
        assert!(s.contains("| y     |      |"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn formats() {
        assert_eq!(ratio(4.2), "4.20x");
        assert_eq!(pct(13.95), "13.9%");
    }
}
