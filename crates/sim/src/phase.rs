//! Training-phase accounting.
//!
//! The paper's Fig. 12(b) breaks a training iteration into six parts:
//! forward (FW), computing gradients on neurons (NG), computing gradients
//! on weights (WG), updating weights (WU), statistic analysis (S), and
//! quantization (Q). Every simulator in this workspace charges cycles and
//! energy against these phases so breakdowns fall out for free.

use std::fmt;
use std::ops::{Add, AddAssign};

/// One of the six phases of a quantized training iteration (Fig. 12(b)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Phase {
    /// Forward pass.
    Forward,
    /// Backward: computing gradients on neurons (① in Fig. 1).
    NeuronGrad,
    /// Backward: computing gradients on weights (② in Fig. 1).
    WeightGrad,
    /// Backward: updating weights (③ in Fig. 1).
    WeightUpdate,
    /// Statistic analysis over data to be quantized.
    Statistic,
    /// Data reformating (quantization proper).
    Quantize,
}

impl Phase {
    /// All phases in the paper's display order.
    pub const ALL: [Phase; 6] = [
        Phase::Forward,
        Phase::NeuronGrad,
        Phase::WeightGrad,
        Phase::WeightUpdate,
        Phase::Statistic,
        Phase::Quantize,
    ];

    /// The paper's two-letter abbreviation.
    pub fn abbrev(&self) -> &'static str {
        match self {
            Phase::Forward => "FW",
            Phase::NeuronGrad => "NG",
            Phase::WeightGrad => "WG",
            Phase::WeightUpdate => "WU",
            Phase::Statistic => "S",
            Phase::Quantize => "Q",
        }
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abbrev())
    }
}

/// Cycles and energy charged to each phase.
///
/// # Examples
///
/// ```
/// use cq_sim::{Phase, PhaseBreakdown};
///
/// let mut b = PhaseBreakdown::new();
/// b.charge(Phase::Forward, 100, 5.0);
/// b.charge(Phase::WeightUpdate, 50, 2.5);
/// assert_eq!(b.total_cycles(), 150);
/// assert_eq!(b.cycles(Phase::Forward), 100);
/// assert!((b.fraction_cycles(Phase::WeightUpdate) - 1.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PhaseBreakdown {
    cycles: [u64; 6],
    energy_pj: [f64; 6],
}

impl PhaseBreakdown {
    /// An empty breakdown.
    pub fn new() -> Self {
        PhaseBreakdown::default()
    }

    /// Adds `cycles` and `energy_pj` to a phase.
    pub fn charge(&mut self, phase: Phase, cycles: u64, energy_pj: f64) {
        let i = phase as usize;
        self.cycles[i] += cycles;
        self.energy_pj[i] += energy_pj;
    }

    /// Cycles charged to a phase.
    pub fn cycles(&self, phase: Phase) -> u64 {
        self.cycles[phase as usize]
    }

    /// Energy (pJ) charged to a phase.
    pub fn energy_pj(&self, phase: Phase) -> f64 {
        self.energy_pj[phase as usize]
    }

    /// Total cycles across all phases.
    pub fn total_cycles(&self) -> u64 {
        self.cycles.iter().sum()
    }

    /// Total energy (pJ) across all phases.
    pub fn total_energy_pj(&self) -> f64 {
        self.energy_pj.iter().sum()
    }

    /// Fraction of total cycles spent in a phase (0.0 if nothing charged).
    pub fn fraction_cycles(&self, phase: Phase) -> f64 {
        let total = self.total_cycles();
        if total == 0 {
            0.0
        } else {
            self.cycles(phase) as f64 / total as f64
        }
    }

    /// Merges another breakdown into this one.
    pub fn merge(&mut self, other: &PhaseBreakdown) {
        for i in 0..6 {
            self.cycles[i] += other.cycles[i];
            self.energy_pj[i] += other.energy_pj[i];
        }
    }

    /// Scales cycles and energy by an integer factor (e.g. layers × batches).
    pub fn scaled(&self, factor: u64) -> PhaseBreakdown {
        let mut out = self.clone();
        for i in 0..6 {
            out.cycles[i] *= factor;
            out.energy_pj[i] *= factor as f64;
        }
        out
    }
}

impl Add for PhaseBreakdown {
    type Output = PhaseBreakdown;

    fn add(mut self, rhs: PhaseBreakdown) -> PhaseBreakdown {
        self.merge(&rhs);
        self
    }
}

impl AddAssign for PhaseBreakdown {
    fn add_assign(&mut self, rhs: PhaseBreakdown) {
        self.merge(&rhs);
    }
}

impl fmt::Display for PhaseBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total = self.total_cycles().max(1) as f64;
        for p in Phase::ALL {
            write!(
                f,
                "{}:{:.1}% ",
                p.abbrev(),
                self.cycles(p) as f64 / total * 100.0
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_and_totals() {
        let mut b = PhaseBreakdown::new();
        b.charge(Phase::Forward, 10, 1.0);
        b.charge(Phase::Forward, 5, 0.5);
        b.charge(Phase::Quantize, 5, 2.0);
        assert_eq!(b.cycles(Phase::Forward), 15);
        assert_eq!(b.total_cycles(), 20);
        assert!((b.total_energy_pj() - 3.5).abs() < 1e-12);
        assert!((b.fraction_cycles(Phase::Quantize) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_breakdown_fractions() {
        let b = PhaseBreakdown::new();
        assert_eq!(b.fraction_cycles(Phase::Forward), 0.0);
        assert_eq!(b.total_cycles(), 0);
    }

    #[test]
    fn merge_and_add() {
        let mut a = PhaseBreakdown::new();
        a.charge(Phase::NeuronGrad, 7, 1.0);
        let mut b = PhaseBreakdown::new();
        b.charge(Phase::NeuronGrad, 3, 2.0);
        b.charge(Phase::WeightGrad, 4, 0.0);
        let c = a.clone() + b.clone();
        assert_eq!(c.cycles(Phase::NeuronGrad), 10);
        assert_eq!(c.cycles(Phase::WeightGrad), 4);
        a += b;
        assert_eq!(a, c);
    }

    #[test]
    fn scaled_multiplies_everything() {
        let mut b = PhaseBreakdown::new();
        b.charge(Phase::WeightUpdate, 5, 1.5);
        let s = b.scaled(4);
        assert_eq!(s.cycles(Phase::WeightUpdate), 20);
        assert!((s.total_energy_pj() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn abbreviations_match_paper() {
        let abbrevs: Vec<_> = Phase::ALL.iter().map(|p| p.abbrev()).collect();
        assert_eq!(abbrevs, vec!["FW", "NG", "WG", "WU", "S", "Q"]);
    }

    #[test]
    fn display_nonempty() {
        let mut b = PhaseBreakdown::new();
        b.charge(Phase::Forward, 1, 0.0);
        assert!(!b.to_string().is_empty());
        assert!(b.to_string().contains("FW:"));
    }
}
