//! # cq-sim — simulation kernel shared by every hardware model
//!
//! Provides the accounting primitives that the Cambricon-Q accelerator
//! model (`cq-accel`), NDP engine (`cq-ndp`), and baselines (`cq-baselines`)
//! all charge against:
//!
//! * [`EnergyModel`] — per-operation energies seeded with the paper's
//!   Table I (Horowitz 45 nm) constants;
//! * [`Phase`]/[`PhaseBreakdown`] — the six-phase training-iteration split
//!   of Fig. 12(b) (FW/NG/WG/WU/S/Q);
//! * [`Component`]/[`EnergyBreakdown`] — the Fig. 12(d) component split
//!   (ACC/BUF/DDR-SB/DDR-DY);
//! * [`SimResult`] — the uniform per-workload, per-platform result;
//! * [`hwcost`] — the Table VII static area/power model;
//! * [`report`] — plain-text table rendering for the experiment binaries.
//!
//! # Examples
//!
//! ```
//! use cq_sim::{EnergyModel, Phase, PhaseBreakdown};
//!
//! let e = EnergyModel::tsmc45();
//! let mut phases = PhaseBreakdown::new();
//! // Charge a 64x64 INT8 matmul tile to the forward pass.
//! let macs = 64u64 * 64 * 64;
//! phases.charge(Phase::Forward, 64, macs as f64 * e.fixed_mac(8));
//! assert!(phases.total_energy_pj() > 0.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod breakdown;
pub mod cache;
mod energy;
pub mod hwcost;
pub mod mapping;
mod phase;
pub mod report;
mod result;
pub mod trace;

pub use breakdown::{Component, EnergyBreakdown};
pub use cache::{
    hwcache_cap, hwcache_enabled, key_f32, key_f64, set_hwcache_enabled, CacheStats, HwCostCache,
    HwCostKey, DEFAULT_SHARDS,
};
pub use energy::{table1_rows, EnergyModel, HwCostError, Table1Row};
pub use mapping::{Mapping, MappingEval, MappingPolicy, MappingTable, MatShape, MemHierarchy};
pub use phase::{Phase, PhaseBreakdown};
pub use result::{geomean, SimResult};
pub use trace::{Trace, TraceRecord};
