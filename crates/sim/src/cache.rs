//! Memoized hardware-cost cache: hash-sharded, size-bounded.
//!
//! Experiment sweeps re-simulate identical (network, optimizer, config)
//! combinations across ablation axes: the 6-net × format × block-size
//! grids of the evaluation run the same per-layer timing/energy model
//! many times with byte-identical inputs. Each whole-iteration simulation
//! is a *pure function* of its inputs — the DDR model is stateful within
//! a run (open rows, refresh, bus turnaround) but constructed fresh per
//! call — so its result can be memoized without changing any report.
//!
//! # Keying
//!
//! A [`HwCostKey`] is a `domain` tag (which simulator produced the entry)
//! plus a `spec` string that must capture *every* input the simulation
//! depends on — by convention the `Debug` rendering of the full config,
//! optimizer and network description. Debug-format keying is deliberately
//! conservative: any field change, even one that would not affect the
//! result, changes the key and forces a fresh computation.
//!
//! # Sharding
//!
//! The map is split into [`DEFAULT_SHARDS`] hash-selected shards, each
//! behind its own mutex, so parallel sweep workers hitting the cache
//! contend only when their keys land on the same shard — a 4-thread
//! hit storm on the old single mutex serialized completely (see the
//! `hwcache_hitstorm` entry in `bench_perf`).
//!
//! # Bounding and eviction
//!
//! By default entries live for the process lifetime. Setting
//! `CQ_HWCACHE_CAP` (a positive integer; anything else aborts rather
//! than silently defaulting) bounds the cache to that many entries,
//! distributed across shards. A full shard evicts its least-recently-used
//! entry (LRU-ish: recency is tracked with one global atomic tick, and
//! eviction is shard-local). Eviction is *safe* because simulations are
//! deterministic pure functions of the key — an evicted entry is simply
//! recomputed, and the `hwcache_invariant` integration test asserts
//! cached and uncached sweeps produce byte-identical reports.
//! [`HwCostCache::clear`] exists for benchmarks that need repeatable
//! cold-start timings.
//!
//! # Determinism
//!
//! `get_or_compute` runs the compute closure *outside* any lock, so
//! parallel sweeps still fan out on misses; when two threads race on the
//! same key the first inserted value wins and both callers observe it
//! (values are returned behind `Arc`, so "the" result is shared, not
//! duplicated).
//!
//! # Gating
//!
//! The `CQ_HWCACHE` environment variable turns memoization off for A/B
//! runs (`off`/`0`/`false`; anything unrecognized aborts rather than
//! silently picking a mode). [`set_hwcache_enabled`] is the programmatic
//! override used by `bench_perf`.

use std::collections::HashMap;
use std::hash::{DefaultHasher, Hash, Hasher};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};

/// Default shard count of [`HwCostCache::new`].
pub const DEFAULT_SHARDS: usize = 16;

/// Cache key: a simulator domain tag plus the full input specification.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct HwCostKey {
    /// Which simulator produced the entry (e.g. `"cambricon-q"`).
    pub domain: &'static str,
    /// Everything the simulation depends on, rendered to a string
    /// (conventionally via `Debug` on the config/optimizer/network).
    pub spec: String,
}

impl HwCostKey {
    /// Creates a key.
    pub fn new(domain: &'static str, spec: impl Into<String>) -> Self {
        HwCostKey {
            domain,
            spec: spec.into(),
        }
    }
}

/// Canonical spec fragment for an `f32` key field: the IEEE-754 bit
/// pattern in fixed-width hex. Text renderings of floats alias values
/// the simulator distinguishes — every NaN payload formats as `NaN`,
/// and a formatter (or a future `Display`-based spec) may collapse
/// `-0.0` into `0.0` — so float fields of a [`HwCostKey`] spec must go
/// through this encoding: two floats produce the same fragment iff
/// they are bit-identical.
pub fn key_f32(v: f32) -> String {
    format!("f32:{:08x}", v.to_bits())
}

/// Canonical spec fragment for an `f64` key field (see [`key_f32`]).
pub fn key_f64(v: f64) -> String {
    format!("f64:{:016x}", v.to_bits())
}

/// Hit/miss/size statistics snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that ran the compute closure.
    pub misses: u64,
    /// Entries currently stored (summed over shards).
    pub entries: usize,
    /// Entries displaced to stay under the capacity bound.
    pub evictions: u64,
}

struct Entry<V> {
    value: Arc<V>,
    last_used: u64,
}

/// A memoizing map from [`HwCostKey`] to simulation results.
///
/// Values are stored behind [`Arc`], so a hit costs one clone of the
/// pointer, not of the result.
pub struct HwCostCache<V> {
    /// One mutex per shard; `shard_caps[i]` bounds shard `i`'s entries.
    shards: Vec<Mutex<HashMap<HwCostKey, Entry<V>>>>,
    shard_caps: Vec<usize>,
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl<V> std::fmt::Debug for HwCostCache<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HwCostCache")
            .field("shards", &self.shards.len())
            .field("capacity", &self.capacity())
            .field("stats", &self.stats())
            .finish()
    }
}

impl<V> HwCostCache<V> {
    /// Creates a cache with [`DEFAULT_SHARDS`] shards, bounded by the
    /// validated `CQ_HWCACHE_CAP` environment setting (unbounded when
    /// unset).
    pub fn new() -> Self {
        Self::with_shards(DEFAULT_SHARDS, hwcache_cap())
    }

    /// Creates a cache with up to `shards` shards (clamped to ≥ 1) and an
    /// optional total entry capacity.
    ///
    /// When `capacity` is `Some(cap)`, at most `min(shards, cap)` shards
    /// are used and their per-shard caps sum to exactly `cap`, so the
    /// cache never holds more than `cap` entries in total.
    pub fn with_shards(shards: usize, capacity: Option<usize>) -> Self {
        let shards = shards.max(1);
        let (used, caps) = match capacity {
            Some(cap) => {
                let cap = cap.max(1);
                let used = shards.min(cap);
                let (q, rem) = (cap / used, cap % used);
                (used, (0..used).map(|i| q + usize::from(i < rem)).collect())
            }
            None => (shards, vec![usize::MAX; shards]),
        };
        HwCostCache {
            shards: (0..used).map(|_| Mutex::new(HashMap::new())).collect(),
            shard_caps: caps,
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Total entry capacity, if bounded.
    pub fn capacity(&self) -> Option<usize> {
        if self.shard_caps.contains(&usize::MAX) {
            None
        } else {
            Some(self.shard_caps.iter().sum())
        }
    }

    /// Number of shards (independent lock domains).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Returns the cached value for `key`, computing and inserting it with
    /// `compute` on a miss. When memoization is disabled (see
    /// [`hwcache_enabled`]) every call computes and nothing is stored.
    ///
    /// `compute` runs outside any lock: concurrent misses on different
    /// keys proceed in parallel, and a race on the *same* key resolves to
    /// first-insert-wins (the loser's computation is discarded — safe
    /// because simulations are pure).
    pub fn get_or_compute(&self, key: HwCostKey, compute: impl FnOnce() -> V) -> Arc<V> {
        if !hwcache_enabled() {
            return Arc::new(compute());
        }
        let shard_idx = self.shard_of(&key);
        if let Some(entry) = self.lock_shard(shard_idx).get_mut(&key) {
            entry.last_used = self.tick.fetch_add(1, Ordering::Relaxed);
            self.hits.fetch_add(1, Ordering::Relaxed);
            cq_obs::counter!("sim.hwcost.hit").incr();
            return Arc::clone(&entry.value);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        cq_obs::counter!("sim.hwcost.miss").incr();
        let value = Arc::new(compute());
        let mut shard = self.lock_shard(shard_idx);
        if let Some(existing) = shard.get_mut(&key) {
            // Lost the race: first insert wins.
            existing.last_used = self.tick.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(&existing.value);
        }
        let cap = self.shard_caps[shard_idx];
        if shard.len() >= cap {
            // LRU-ish: displace this shard's least-recently-used entry.
            if let Some(victim) = shard
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                shard.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
                cq_obs::counter!("sim.hwcost.evict").incr();
            }
        }
        let entry = Entry {
            value: Arc::clone(&value),
            last_used: self.tick.fetch_add(1, Ordering::Relaxed),
        };
        shard.insert(key, entry);
        value
    }

    /// Drops every entry (hit/miss/eviction counters are preserved).
    /// Benchmarks use this to reproduce cold-start behaviour.
    pub fn clear(&self) {
        for i in 0..self.shards.len() {
            self.lock_shard(i).clear();
        }
    }

    /// Snapshot of hit/miss/entry/eviction counts.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: (0..self.shards.len())
                .map(|i| self.lock_shard(i).len())
                .sum(),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    fn shard_of(&self, key: &HwCostKey) -> usize {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() as usize) % self.shards.len()
    }

    fn lock_shard(&self, i: usize) -> MutexGuard<'_, HashMap<HwCostKey, Entry<V>>> {
        // A panicked compute closure never runs under the lock, so poison
        // can only come from a panicking hasher — recover rather than
        // cascade.
        self.shards[i]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<V> Default for HwCostCache<V> {
    fn default() -> Self {
        HwCostCache::new()
    }
}

/// Runtime override state: 0 = follow `CQ_HWCACHE`, 1 = on, 2 = off.
static OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// Whether memoization is active: a [`set_hwcache_enabled`] override wins,
/// else the validated `CQ_HWCACHE` environment setting (default on).
pub fn hwcache_enabled() -> bool {
    match OVERRIDE.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => env_default(),
    }
}

/// Programmatic on/off override (e.g. `bench_perf`'s A/B sweep timing).
pub fn set_hwcache_enabled(enabled: bool) {
    OVERRIDE.store(if enabled { 1 } else { 2 }, Ordering::Relaxed);
}

fn env_default() -> bool {
    static CACHED: OnceLock<bool> = OnceLock::new();
    *CACHED.get_or_init(|| {
        let raw = std::env::var("CQ_HWCACHE").ok();
        match resolve_env_hwcache(raw.as_deref()) {
            Ok(on) => on,
            Err(msg) => panic!("{msg}"),
        }
    })
}

/// The validated `CQ_HWCACHE_CAP` entry bound (cached for the process
/// lifetime): `None` when unset, the cap otherwise. An unparsable value
/// aborts the run rather than silently leaving the cache unbounded.
pub fn hwcache_cap() -> Option<usize> {
    static CACHED: OnceLock<Option<usize>> = OnceLock::new();
    *CACHED.get_or_init(|| {
        let raw = std::env::var("CQ_HWCACHE_CAP").ok();
        match resolve_env_cap(raw.as_deref()) {
            Ok(cap) => cap,
            Err(msg) => panic!("{msg}"),
        }
    })
}

/// Resolves a raw `CQ_HWCACHE` value. `None`/empty means "unset" (cache
/// on). Anything else must be a recognized on/off spelling, or the run
/// aborts: a typo like `CQ_HWCACHE=offf` silently leaving the cache on
/// would invalidate any sweep-timing comparison.
fn resolve_env_hwcache(raw: Option<&str>) -> Result<bool, String> {
    let Some(v) = raw else { return Ok(true) };
    let t = v.trim();
    if t.is_empty() {
        return Ok(true);
    }
    match t.to_ascii_lowercase().as_str() {
        "on" | "1" | "true" => Ok(true),
        "off" | "0" | "false" => Ok(false),
        _ => Err(format!(
            "invalid CQ_HWCACHE value {v:?}: expected on/off/1/0/true/false"
        )),
    }
}

/// Resolves a raw `CQ_HWCACHE_CAP` value. `None`/empty means "unset"
/// (unbounded). Anything else must be a positive integer, or the run
/// aborts: a typo like `CQ_HWCACHE_CAP=1e6` silently leaving the cache
/// unbounded would defeat the memory bound it was set to enforce.
fn resolve_env_cap(raw: Option<&str>) -> Result<Option<usize>, String> {
    let Some(v) = raw else { return Ok(None) };
    if v.trim().is_empty() {
        return Ok(None);
    }
    match v.trim().parse::<usize>() {
        Ok(n) if n >= 1 => Ok(Some(n)),
        _ => Err(format!(
            "invalid CQ_HWCACHE_CAP value {v:?}: expected a positive integer"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `set_hwcache_enabled` mutates process-global state; serialize the
    /// tests that toggle it so parallel test threads don't observe each
    /// other's modes.
    fn mode_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(PoisonError::into_inner)
    }

    #[test]
    fn computes_once_then_hits() {
        let _guard = mode_lock();
        let cache: HwCostCache<u64> = HwCostCache::new();
        set_hwcache_enabled(true);
        let mut calls = 0;
        let a = cache.get_or_compute(HwCostKey::new("test", "alpha"), || {
            calls += 1;
            41
        });
        let b = cache.get_or_compute(HwCostKey::new("test", "alpha"), || {
            calls += 1;
            999
        });
        assert_eq!((*a, *b, calls), (41, 41, 1));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
    }

    #[test]
    fn distinct_keys_compute_separately() {
        let _guard = mode_lock();
        let cache: HwCostCache<String> = HwCostCache::new();
        set_hwcache_enabled(true);
        let a = cache.get_or_compute(HwCostKey::new("test", "a"), || "a".to_string());
        let b = cache.get_or_compute(HwCostKey::new("other", "a"), || "b".to_string());
        assert_ne!(*a, *b, "domain must participate in the key");
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn disabled_cache_always_computes_and_stores_nothing() {
        let _guard = mode_lock();
        let cache: HwCostCache<u64> = HwCostCache::new();
        set_hwcache_enabled(false);
        let mut calls = 0;
        for _ in 0..3 {
            let v = cache.get_or_compute(HwCostKey::new("test", "k"), || {
                calls += 1;
                7
            });
            assert_eq!(*v, 7);
        }
        assert_eq!(calls, 3);
        assert_eq!(cache.stats().entries, 0);
        set_hwcache_enabled(true);
    }

    #[test]
    fn clear_preserves_counters() {
        let _guard = mode_lock();
        let cache: HwCostCache<u8> = HwCostCache::new();
        set_hwcache_enabled(true);
        let _ = cache.get_or_compute(HwCostKey::new("test", "x"), || 1);
        let _ = cache.get_or_compute(HwCostKey::new("test", "x"), || 2);
        cache.clear();
        let s = cache.stats();
        assert_eq!(s.entries, 0);
        assert_eq!((s.hits, s.misses), (1, 1));
        // Recompute after clear: a fresh miss.
        let v = cache.get_or_compute(HwCostKey::new("test", "x"), || 9);
        assert_eq!(*v, 9);
    }

    #[test]
    fn key_float_fragments_are_bit_exact() {
        // Signed zeros are distinct cache inputs.
        assert_ne!(key_f32(0.0), key_f32(-0.0));
        assert_ne!(key_f64(0.0), key_f64(-0.0));
        // NaN payloads must not collapse: Debug renders both as "NaN".
        let quiet = f32::NAN;
        let payload = f32::from_bits(quiet.to_bits() ^ 0x1);
        assert_eq!(format!("{quiet:?}"), format!("{payload:?}"));
        assert_ne!(key_f32(quiet), key_f32(payload));
        // Bit-identical values agree; fragments are fixed width.
        assert_eq!(key_f32(1.5), key_f32(1.5));
        assert_eq!(key_f32(1.0), "f32:3f800000");
        assert_eq!(key_f64(1.0), "f64:3ff0000000000000");
    }

    #[test]
    fn env_resolution_rejects_garbage() {
        assert_eq!(resolve_env_hwcache(None), Ok(true));
        assert_eq!(resolve_env_hwcache(Some("")), Ok(true));
        assert_eq!(resolve_env_hwcache(Some("  ")), Ok(true));
        for on in ["on", "1", "true", " ON ", "True"] {
            assert_eq!(resolve_env_hwcache(Some(on)), Ok(true), "{on}");
        }
        for off in ["off", "0", "false", " OFF "] {
            assert_eq!(resolve_env_hwcache(Some(off)), Ok(false), "{off}");
        }
        for bad in ["offf", "yes", "no", "2", "disable"] {
            let err = resolve_env_hwcache(Some(bad)).unwrap_err();
            assert!(err.contains("invalid CQ_HWCACHE"), "{err}");
        }
    }

    #[test]
    fn cap_env_resolution_rejects_garbage() {
        assert_eq!(resolve_env_cap(None), Ok(None));
        assert_eq!(resolve_env_cap(Some("")), Ok(None));
        assert_eq!(resolve_env_cap(Some("  ")), Ok(None));
        assert_eq!(resolve_env_cap(Some("64")), Ok(Some(64)));
        assert_eq!(resolve_env_cap(Some(" 1024 ")), Ok(Some(1024)));
        for bad in ["0", "-1", "1e6", "big", "64 entries", "3.5"] {
            let err = resolve_env_cap(Some(bad)).unwrap_err();
            assert!(err.contains("invalid CQ_HWCACHE_CAP"), "{err}");
            assert!(err.contains("positive integer"), "{err}");
        }
    }

    #[test]
    fn racing_threads_share_one_value() {
        let _guard = mode_lock();
        let cache: HwCostCache<u64> = HwCostCache::new();
        set_hwcache_enabled(true);
        let out: Vec<Arc<u64>> = std::thread::scope(|s| {
            let cache = &cache;
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    s.spawn(move || cache.get_or_compute(HwCostKey::new("test", "race"), || 5))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        // First insert wins: everyone observes the same Arc value.
        assert!(out.iter().all(|v| **v == 5));
        let first = Arc::as_ptr(&out[0]);
        let from_map = cache.get_or_compute(HwCostKey::new("test", "race"), || 6);
        assert_eq!(Arc::as_ptr(&from_map), first);
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn capacity_bound_is_never_exceeded() {
        let _guard = mode_lock();
        set_hwcache_enabled(true);
        for shards in [1, 3, 16] {
            let cache: HwCostCache<usize> = HwCostCache::with_shards(shards, Some(4));
            assert_eq!(cache.capacity(), Some(4), "shards={shards}");
            for i in 0..50 {
                let _ = cache.get_or_compute(HwCostKey::new("test", format!("k{i}")), || i);
                assert!(
                    cache.stats().entries <= 4,
                    "shards={shards}: {} entries exceed cap",
                    cache.stats().entries
                );
            }
            let s = cache.stats();
            assert!(
                s.evictions >= 46 - 4,
                "shards={shards}: {} evictions",
                s.evictions
            );
        }
    }

    #[test]
    fn evicted_entries_recompute_correctly() {
        let _guard = mode_lock();
        set_hwcache_enabled(true);
        let cache: HwCostCache<usize> = HwCostCache::with_shards(1, Some(2));
        // Fill beyond cap, then re-request everything: values stay correct
        // (pure function of the key) even though some were evicted.
        for round in 0..3 {
            for i in 0..5usize {
                let v = cache.get_or_compute(HwCostKey::new("test", format!("k{i}")), || i * 11);
                assert_eq!(*v, i * 11, "round {round}, key {i}");
            }
        }
        assert!(cache.stats().evictions > 0);
    }

    #[test]
    fn lru_keeps_the_hot_entry() {
        let _guard = mode_lock();
        set_hwcache_enabled(true);
        // Single shard, cap 2: keep touching "hot"; the churn of cold keys
        // must evict around it.
        let cache: HwCostCache<u32> = HwCostCache::with_shards(1, Some(2));
        let mut hot_computes = 0;
        let _ = cache.get_or_compute(HwCostKey::new("test", "hot"), || {
            hot_computes += 1;
            1
        });
        for i in 0..10 {
            let _ = cache.get_or_compute(HwCostKey::new("test", format!("cold{i}")), || 0);
            let _ = cache.get_or_compute(HwCostKey::new("test", "hot"), || {
                hot_computes += 1;
                1
            });
        }
        assert_eq!(hot_computes, 1, "hot entry must never be evicted");
    }

    #[test]
    fn small_cap_uses_fewer_shards_summing_exactly() {
        let cache: HwCostCache<u8> = HwCostCache::with_shards(16, Some(5));
        assert_eq!(cache.shard_count(), 5);
        assert_eq!(cache.capacity(), Some(5));
        let cache: HwCostCache<u8> = HwCostCache::with_shards(16, Some(21));
        assert_eq!(cache.shard_count(), 16);
        assert_eq!(cache.capacity(), Some(21));
        let cache: HwCostCache<u8> = HwCostCache::with_shards(16, None);
        assert_eq!(cache.shard_count(), 16);
        assert_eq!(cache.capacity(), None);
    }

    #[test]
    fn sharded_and_single_shard_agree() {
        let _guard = mode_lock();
        set_hwcache_enabled(true);
        let sharded: HwCostCache<String> = HwCostCache::with_shards(16, None);
        let single: HwCostCache<String> = HwCostCache::with_shards(1, None);
        for i in 0..40 {
            let k = HwCostKey::new("test", format!("spec-{i}"));
            let a = sharded.get_or_compute(k.clone(), || format!("v{i}"));
            let b = single.get_or_compute(k, || format!("v{i}"));
            assert_eq!(*a, *b);
        }
        assert_eq!(sharded.stats().entries, 40);
        assert_eq!(single.stats().entries, 40);
    }
}
