//! Memoized hardware-cost cache.
//!
//! Experiment sweeps re-simulate identical (network, optimizer, config)
//! combinations across ablation axes: the 6-net × format × block-size
//! grids of the evaluation run the same per-layer timing/energy model
//! many times with byte-identical inputs. Each whole-iteration simulation
//! is a *pure function* of its inputs — the DDR model is stateful within
//! a run (open rows, refresh, bus turnaround) but constructed fresh per
//! call — so its result can be memoized without changing any report.
//!
//! # Keying
//!
//! A [`HwCostKey`] is a `domain` tag (which simulator produced the entry)
//! plus a `spec` string that must capture *every* input the simulation
//! depends on — by convention the `Debug` rendering of the full config,
//! optimizer and network description. Debug-format keying is deliberately
//! conservative: any field change, even one that would not affect the
//! result, changes the key and forces a fresh computation.
//!
//! # Invalidation
//!
//! Entries live for the process lifetime; there is no eviction. The cache
//! is only sound because simulations are deterministic pure functions of
//! the key — the `hwcache_invariant` integration test asserts cached and
//! uncached sweeps produce byte-identical reports. [`HwCostCache::clear`]
//! exists for benchmarks that need repeatable cold-start timings.
//!
//! # Determinism
//!
//! `get_or_compute` runs the compute closure *outside* the map lock, so
//! parallel sweeps still fan out on misses; when two threads race on the
//! same key the first inserted value wins and both callers observe it
//! (values are returned behind `Arc`, so "the" result is shared, not
//! duplicated).
//!
//! # Gating
//!
//! The `CQ_HWCACHE` environment variable turns memoization off for A/B
//! runs (`off`/`0`/`false`; anything unrecognized aborts rather than
//! silently picking a mode). [`set_hwcache_enabled`] is the programmatic
//! override used by `bench_perf`.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

/// Cache key: a simulator domain tag plus the full input specification.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct HwCostKey {
    /// Which simulator produced the entry (e.g. `"cambricon-q"`).
    pub domain: &'static str,
    /// Everything the simulation depends on, rendered to a string
    /// (conventionally via `Debug` on the config/optimizer/network).
    pub spec: String,
}

impl HwCostKey {
    /// Creates a key.
    pub fn new(domain: &'static str, spec: impl Into<String>) -> Self {
        HwCostKey {
            domain,
            spec: spec.into(),
        }
    }
}

/// Hit/miss/size statistics snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that ran the compute closure.
    pub misses: u64,
    /// Entries currently stored.
    pub entries: usize,
}

/// A memoizing map from [`HwCostKey`] to simulation results.
///
/// Values are stored behind [`Arc`], so a hit costs one clone of the
/// pointer, not of the result.
#[derive(Debug, Default)]
pub struct HwCostCache<V> {
    map: Mutex<HashMap<HwCostKey, Arc<V>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<V> HwCostCache<V> {
    /// Creates an empty cache.
    pub fn new() -> Self {
        HwCostCache {
            map: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Returns the cached value for `key`, computing and inserting it with
    /// `compute` on a miss. When memoization is disabled (see
    /// [`hwcache_enabled`]) every call computes and nothing is stored.
    ///
    /// `compute` runs outside the map lock: concurrent misses on different
    /// keys proceed in parallel, and a race on the *same* key resolves to
    /// first-insert-wins (the loser's computation is discarded — safe
    /// because simulations are pure).
    pub fn get_or_compute(&self, key: HwCostKey, compute: impl FnOnce() -> V) -> Arc<V> {
        if !hwcache_enabled() {
            return Arc::new(compute());
        }
        if let Some(v) = self.lock_map().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            cq_obs::counter!("sim.hwcost.hit").incr();
            return Arc::clone(v);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        cq_obs::counter!("sim.hwcost.miss").incr();
        let value = Arc::new(compute());
        Arc::clone(self.lock_map().entry(key).or_insert(value))
    }

    /// Drops every entry (hit/miss counters are preserved). Benchmarks use
    /// this to reproduce cold-start behaviour.
    pub fn clear(&self) {
        self.lock_map().clear();
    }

    /// Snapshot of hit/miss/entry counts.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.lock_map().len(),
        }
    }

    fn lock_map(&self) -> std::sync::MutexGuard<'_, HashMap<HwCostKey, Arc<V>>> {
        // A panicked compute closure never runs under the lock, so poison
        // can only come from a panicking hasher — recover rather than
        // cascade.
        self.map.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Runtime override state: 0 = follow `CQ_HWCACHE`, 1 = on, 2 = off.
static OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// Whether memoization is active: a [`set_hwcache_enabled`] override wins,
/// else the validated `CQ_HWCACHE` environment setting (default on).
pub fn hwcache_enabled() -> bool {
    match OVERRIDE.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => env_default(),
    }
}

/// Programmatic on/off override (e.g. `bench_perf`'s A/B sweep timing).
pub fn set_hwcache_enabled(enabled: bool) {
    OVERRIDE.store(if enabled { 1 } else { 2 }, Ordering::Relaxed);
}

fn env_default() -> bool {
    static CACHED: OnceLock<bool> = OnceLock::new();
    *CACHED.get_or_init(|| {
        let raw = std::env::var("CQ_HWCACHE").ok();
        match resolve_env_hwcache(raw.as_deref()) {
            Ok(on) => on,
            Err(msg) => panic!("{msg}"),
        }
    })
}

/// Resolves a raw `CQ_HWCACHE` value. `None`/empty means "unset" (cache
/// on). Anything else must be a recognized on/off spelling, or the run
/// aborts: a typo like `CQ_HWCACHE=offf` silently leaving the cache on
/// would invalidate any sweep-timing comparison.
fn resolve_env_hwcache(raw: Option<&str>) -> Result<bool, String> {
    let Some(v) = raw else { return Ok(true) };
    let t = v.trim();
    if t.is_empty() {
        return Ok(true);
    }
    match t.to_ascii_lowercase().as_str() {
        "on" | "1" | "true" => Ok(true),
        "off" | "0" | "false" => Ok(false),
        _ => Err(format!(
            "invalid CQ_HWCACHE value {v:?}: expected on/off/1/0/true/false"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `set_hwcache_enabled` mutates process-global state; serialize the
    /// tests that toggle it so parallel test threads don't observe each
    /// other's modes.
    fn mode_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(PoisonError::into_inner)
    }

    #[test]
    fn computes_once_then_hits() {
        let _guard = mode_lock();
        let cache: HwCostCache<u64> = HwCostCache::new();
        set_hwcache_enabled(true);
        let mut calls = 0;
        let a = cache.get_or_compute(HwCostKey::new("test", "alpha"), || {
            calls += 1;
            41
        });
        let b = cache.get_or_compute(HwCostKey::new("test", "alpha"), || {
            calls += 1;
            999
        });
        assert_eq!((*a, *b, calls), (41, 41, 1));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
    }

    #[test]
    fn distinct_keys_compute_separately() {
        let _guard = mode_lock();
        let cache: HwCostCache<String> = HwCostCache::new();
        set_hwcache_enabled(true);
        let a = cache.get_or_compute(HwCostKey::new("test", "a"), || "a".to_string());
        let b = cache.get_or_compute(HwCostKey::new("other", "a"), || "b".to_string());
        assert_ne!(*a, *b, "domain must participate in the key");
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn disabled_cache_always_computes_and_stores_nothing() {
        let _guard = mode_lock();
        let cache: HwCostCache<u64> = HwCostCache::new();
        set_hwcache_enabled(false);
        let mut calls = 0;
        for _ in 0..3 {
            let v = cache.get_or_compute(HwCostKey::new("test", "k"), || {
                calls += 1;
                7
            });
            assert_eq!(*v, 7);
        }
        assert_eq!(calls, 3);
        assert_eq!(cache.stats().entries, 0);
        set_hwcache_enabled(true);
    }

    #[test]
    fn clear_preserves_counters() {
        let _guard = mode_lock();
        let cache: HwCostCache<u8> = HwCostCache::new();
        set_hwcache_enabled(true);
        let _ = cache.get_or_compute(HwCostKey::new("test", "x"), || 1);
        let _ = cache.get_or_compute(HwCostKey::new("test", "x"), || 2);
        cache.clear();
        let s = cache.stats();
        assert_eq!(s.entries, 0);
        assert_eq!((s.hits, s.misses), (1, 1));
        // Recompute after clear: a fresh miss.
        let v = cache.get_or_compute(HwCostKey::new("test", "x"), || 9);
        assert_eq!(*v, 9);
    }

    #[test]
    fn env_resolution_rejects_garbage() {
        assert_eq!(resolve_env_hwcache(None), Ok(true));
        assert_eq!(resolve_env_hwcache(Some("")), Ok(true));
        assert_eq!(resolve_env_hwcache(Some("  ")), Ok(true));
        for on in ["on", "1", "true", " ON ", "True"] {
            assert_eq!(resolve_env_hwcache(Some(on)), Ok(true), "{on}");
        }
        for off in ["off", "0", "false", " OFF "] {
            assert_eq!(resolve_env_hwcache(Some(off)), Ok(false), "{off}");
        }
        for bad in ["offf", "yes", "no", "2", "disable"] {
            let err = resolve_env_hwcache(Some(bad)).unwrap_err();
            assert!(err.contains("invalid CQ_HWCACHE"), "{err}");
        }
    }

    #[test]
    fn racing_threads_share_one_value() {
        let _guard = mode_lock();
        let cache: HwCostCache<u64> = HwCostCache::new();
        set_hwcache_enabled(true);
        let out: Vec<Arc<u64>> = std::thread::scope(|s| {
            let cache = &cache;
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    s.spawn(move || cache.get_or_compute(HwCostKey::new("test", "race"), || 5))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        // First insert wins: everyone observes the same Arc value.
        assert!(out.iter().all(|v| **v == 5));
        let first = Arc::as_ptr(&out[0]);
        let from_map = cache.get_or_compute(HwCostKey::new("test", "race"), || 6);
        assert_eq!(Arc::as_ptr(&from_map), first);
        assert_eq!(cache.stats().entries, 1);
    }
}
