//! Static area/power model of Cambricon-Q (paper Table VII, TSMC 45 nm).
//!
//! The paper obtains these numbers from RTL synthesis; here they are model
//! inputs (see DESIGN.md's substitution table). The per-module powers drive
//! the static-energy accounting of the cycle simulators, and the table
//! itself is regenerated verbatim by the `table7_hw_characteristics`
//! experiment binary.

use std::fmt;

/// A hardware module with its silicon cost.
#[derive(Debug, Clone, PartialEq)]
pub struct ModuleCost {
    /// Module name as it appears in Table VII.
    pub name: &'static str,
    /// Area in mm² (45 nm).
    pub area_mm2: f64,
    /// Power in mW.
    pub power_mw: f64,
}

/// The silicon cost report for one engine (acceleration core or NDP).
#[derive(Debug, Clone, PartialEq)]
pub struct EngineCost {
    /// Engine name.
    pub name: &'static str,
    /// Component modules.
    pub modules: Vec<ModuleCost>,
}

impl EngineCost {
    /// Total area of the engine (mm²).
    pub fn total_area_mm2(&self) -> f64 {
        self.modules.iter().map(|m| m.area_mm2).sum()
    }

    /// Total power of the engine (mW).
    pub fn total_power_mw(&self) -> f64 {
        self.modules.iter().map(|m| m.power_mw).sum()
    }

    /// Looks up a module by name.
    pub fn module(&self, name: &str) -> Option<&ModuleCost> {
        self.modules.iter().find(|m| m.name == name)
    }

    /// Area share of a module in percent.
    pub fn area_share(&self, name: &str) -> Option<f64> {
        self.module(name)
            .map(|m| m.area_mm2 / self.total_area_mm2() * 100.0)
    }

    /// Power share of a module in percent.
    pub fn power_share(&self, name: &str) -> Option<f64> {
        self.module(name)
            .map(|m| m.power_mw / self.total_power_mw() * 100.0)
    }
}

impl fmt::Display for EngineCost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}: {:.2} mm², {:.2} mW",
            self.name,
            self.total_area_mm2(),
            self.total_power_mw()
        )
    }
}

/// Table VII: the acceleration core module costs.
// NBin's 6.28 mW is the paper's measured value, not a circle constant.
#[allow(clippy::approx_constant)]
pub fn acceleration_core_cost() -> EngineCost {
    EngineCost {
        name: "Acceleration Core",
        modules: vec![
            ModuleCost {
                name: "SQU",
                area_mm2: 0.42,
                power_mw: 122.67,
            },
            ModuleCost {
                name: "QBC",
                area_mm2: 0.09,
                power_mw: 1.69,
            },
            ModuleCost {
                name: "FU",
                area_mm2: 2.11,
                power_mw: 483.88,
            },
            ModuleCost {
                name: "NBin",
                area_mm2: 1.31,
                power_mw: 6.28,
            },
            ModuleCost {
                name: "SB",
                area_mm2: 1.52,
                power_mw: 9.65,
            },
            ModuleCost {
                name: "NBout",
                area_mm2: 0.72,
                power_mw: 4.43,
            },
            ModuleCost {
                name: "Decode",
                area_mm2: 0.11,
                power_mw: 50.04,
            },
            ModuleCost {
                name: "IB",
                area_mm2: 0.36,
                power_mw: 25.28,
            },
            ModuleCost {
                name: "MC",
                area_mm2: 0.23,
                power_mw: 83.00,
            },
            ModuleCost {
                name: "PHY",
                area_mm2: 1.83,
                power_mw: 104.45,
            },
        ],
    }
}

/// Table VII: the NDP engine module costs.
pub fn ndp_engine_cost() -> EngineCost {
    EngineCost {
        name: "NDP Engine",
        modules: vec![
            ModuleCost {
                name: "SQU",
                area_mm2: 0.42,
                power_mw: 122.67,
            },
            ModuleCost {
                name: "NDPO",
                area_mm2: 0.07,
                power_mw: 16.27,
            },
        ],
    }
}

/// Extra cost of quantization support inside the acceleration core:
/// SQU + QBC (the paper quotes 5.87% extra area, 13.95% extra power).
pub fn quantization_overhead() -> (f64, f64) {
    let core = acceleration_core_cost();
    let extra_area: f64 = ["SQU", "QBC"]
        .iter()
        .filter_map(|n| core.module(n))
        .map(|m| m.area_mm2)
        .sum();
    let extra_power: f64 = ["SQU", "QBC"]
        .iter()
        .filter_map(|n| core.module(n))
        .map(|m| m.power_mw)
        .sum();
    (
        extra_area / core.total_area_mm2() * 100.0,
        extra_power / core.total_power_mw() * 100.0,
    )
}

/// DRAM standby power (mW) used for the DDR-SB component of Fig. 12(d).
/// Typical LPDDR4-class device standby+refresh draw at the paper's
/// 17.06 GB/s configuration.
pub const DRAM_STANDBY_MW: f64 = 150.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_totals_match_table7() {
        let core = acceleration_core_cost();
        assert!((core.total_area_mm2() - 8.70).abs() < 0.02); // paper: 8.69
        assert!((core.total_power_mw() - 891.37).abs() < 0.1);
    }

    #[test]
    fn ndp_totals_match_table7() {
        let ndp = ndp_engine_cost();
        assert!((ndp.total_area_mm2() - 0.49).abs() < 1e-9);
        assert!((ndp.total_power_mw() - 138.94).abs() < 1e-9);
    }

    #[test]
    fn module_shares_match_table7() {
        let core = acceleration_core_cost();
        // Table VII: SQU 4.88% area, 13.76% power (±rounding).
        assert!((core.area_share("SQU").unwrap() - 4.88).abs() < 0.1);
        assert!((core.power_share("SQU").unwrap() - 13.76).abs() < 0.1);
        // FU dominates power at 54.29%.
        assert!((core.power_share("FU").unwrap() - 54.29).abs() < 0.1);
        let ndp = ndp_engine_cost();
        assert!((ndp.area_share("NDPO").unwrap() - 13.3).abs() < 1.0);
    }

    #[test]
    fn quantization_overhead_matches_paper() {
        let (area_pct, power_pct) = quantization_overhead();
        // Paper: 5.87% extra area, 13.95% extra power.
        assert!((area_pct - 5.87).abs() < 0.1, "area {area_pct}");
        assert!((power_pct - 13.95).abs() < 0.1, "power {power_pct}");
    }

    #[test]
    fn unknown_module_lookup() {
        assert!(acceleration_core_cost().module("GPU").is_none());
        assert!(acceleration_core_cost().area_share("GPU").is_none());
    }

    #[test]
    fn display_mentions_totals() {
        let s = acceleration_core_cost().to_string();
        assert!(s.contains("Acceleration Core"));
        assert!(s.contains("mm²"));
    }
}
