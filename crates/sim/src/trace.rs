//! Execution traces and ASCII visualization.
//!
//! Simulators can record per-unit [`TraceRecord`]s (layer × phase costs);
//! the renderer draws proportional ASCII bars — the terminal stand-in for
//! the paper's stacked-bar figures (12(b)/12(d)).

use crate::phase::{Phase, PhaseBreakdown};
use std::fmt;

/// One traced unit of work (typically a layer).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// Unit label (layer name).
    pub label: String,
    /// Cycles/energy per phase for this unit.
    pub breakdown: PhaseBreakdown,
}

/// An ordered trace of work units.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Trace {
    records: Vec<TraceRecord>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Appends a record.
    pub fn push(&mut self, label: impl Into<String>, breakdown: PhaseBreakdown) {
        self.records.push(TraceRecord {
            label: label.into(),
            breakdown,
        });
    }

    /// The records in order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total cycles across all records.
    pub fn total_cycles(&self) -> u64 {
        self.records
            .iter()
            .map(|r| r.breakdown.total_cycles())
            .sum()
    }

    /// The `n` most expensive records, descending.
    pub fn hotspots(&self, n: usize) -> Vec<&TraceRecord> {
        let mut sorted: Vec<&TraceRecord> = self.records.iter().collect();
        sorted.sort_by_key(|r| std::cmp::Reverse(r.breakdown.total_cycles()));
        sorted.truncate(n);
        sorted
    }

    /// Renders proportional ASCII bars, one row per record, `width`
    /// characters for the largest record. Each phase draws with its own
    /// glyph: `F` forward, `N` neuron-grad, `W` weight-grad, `U` update,
    /// `s`/`q` statistic/quantize.
    ///
    /// Cells are apportioned per row by largest remainder, so each row's
    /// length is the rounded proportional share of `width` (independent
    /// per-phase rounding could overshoot or undershoot by one cell per
    /// phase) and every nonzero phase shows at least one glyph.
    pub fn render_bars(&self, width: usize) -> String {
        let max = self
            .records
            .iter()
            .map(|r| r.breakdown.total_cycles())
            .max()
            .unwrap_or(0)
            .max(1);
        let label_w = self
            .records
            .iter()
            .map(|r| r.label.len())
            .max()
            .unwrap_or(0);
        let glyphs = ['F', 'N', 'W', 'U', 's', 'q'];
        let mut out = String::new();
        for r in &self.records {
            let cycles: Vec<u64> = Phase::ALL.iter().map(|p| r.breakdown.cycles(*p)).collect();
            let cells = apportion_row(&cycles, max, width);
            let mut bar = String::new();
            for (g, &n) in glyphs.iter().zip(&cells) {
                bar.extend(std::iter::repeat_n(*g, n));
            }
            out.push_str(&format!("{:label_w$} |{bar}\n", r.label, label_w = label_w));
        }
        out
    }

    /// Emits this trace onto a named `cq-obs` virtual track: a span per
    /// record, containing one child span per nonzero phase, laid
    /// end-to-end on the simulated timeline (`cycles` at `freq_ghz` →
    /// microseconds). No-op when tracing is off — the ASCII renderer and
    /// the trace file are two consumers of the same stream.
    pub fn emit_virtual(&self, track_name: &str, freq_ghz: f64) {
        if !cq_obs::enabled() || freq_ghz <= 0.0 {
            return;
        }
        let track = cq_obs::virtual_track(track_name);
        let us_per_cycle = 1e-3 / freq_ghz;
        let mut t_us = 0.0;
        for r in &self.records {
            let rec_cycles = r.breakdown.total_cycles();
            if rec_cycles == 0 {
                continue;
            }
            cq_obs::emit_virtual_span(
                track,
                "layer",
                r.label.clone(),
                t_us,
                rec_cycles as f64 * us_per_cycle,
                vec![
                    ("cycles", rec_cycles.into()),
                    ("energy_pj", r.breakdown.total_energy_pj().into()),
                ],
            );
            for p in Phase::ALL {
                let cyc = r.breakdown.cycles(p);
                if cyc == 0 {
                    continue;
                }
                let dur = cyc as f64 * us_per_cycle;
                cq_obs::emit_virtual_span(
                    track,
                    "phase",
                    format!("{}:{}", r.label, p.abbrev()),
                    t_us,
                    dur,
                    vec![
                        ("cycles", cyc.into()),
                        ("energy_pj", r.breakdown.energy_pj(p).into()),
                    ],
                );
                t_us += dur;
            }
        }
    }
}

/// Largest-remainder (Hamilton) apportionment of one bar row: splits the
/// row's proportional share of `width` across phases so the cells sum
/// exactly to that share and every nonzero phase gets at least one cell.
fn apportion_row(cycles: &[u64], max: u64, width: usize) -> Vec<usize> {
    let total: u64 = cycles.iter().sum();
    if total == 0 || width == 0 {
        return vec![0; cycles.len()];
    }
    let nonzero = cycles.iter().filter(|&&c| c > 0).count();
    let target = ((total as f64 / max as f64 * width as f64).round() as usize).max(nonzero);
    let mut cells = Vec::with_capacity(cycles.len());
    let mut remainders = Vec::with_capacity(cycles.len());
    for (i, &c) in cycles.iter().enumerate() {
        let quota = c as f64 / total as f64 * target as f64;
        let floor = quota.floor() as usize;
        cells.push(floor);
        remainders.push((i, quota - floor as f64));
    }
    let leftover = target.saturating_sub(cells.iter().sum());
    remainders.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    for &(i, _) in remainders.iter().take(leftover) {
        cells[i] += 1;
    }
    // Guarantee visibility: a nonzero phase rounded to zero takes a cell
    // from the widest phase (which has ≥ 2 because target ≥ nonzero).
    for i in 0..cycles.len() {
        if cycles[i] > 0 && cells[i] == 0 {
            let donor = (0..cycles.len())
                .max_by_key(|&j| cells[j])
                .expect("nonempty");
            cells[donor] -= 1;
            cells[i] = 1;
        }
    }
    cells
}

impl FromIterator<(String, PhaseBreakdown)> for Trace {
    fn from_iter<T: IntoIterator<Item = (String, PhaseBreakdown)>>(iter: T) -> Self {
        let mut t = Trace::new();
        for (label, b) in iter {
            t.push(label, b);
        }
        t
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render_bars(60))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breakdown(fw: u64, wu: u64) -> PhaseBreakdown {
        let mut b = PhaseBreakdown::new();
        b.charge(Phase::Forward, fw, 0.0);
        b.charge(Phase::WeightUpdate, wu, 0.0);
        b
    }

    #[test]
    fn push_and_totals() {
        let mut t = Trace::new();
        t.push("conv1", breakdown(100, 10));
        t.push("fc6", breakdown(20, 200));
        assert_eq!(t.len(), 2);
        assert_eq!(t.total_cycles(), 330);
        assert!(!t.is_empty());
    }

    #[test]
    fn hotspots_sorted_descending() {
        let mut t = Trace::new();
        t.push("small", breakdown(10, 0));
        t.push("big", breakdown(1000, 0));
        t.push("mid", breakdown(100, 0));
        let hs = t.hotspots(2);
        assert_eq!(hs[0].label, "big");
        assert_eq!(hs[1].label, "mid");
    }

    #[test]
    fn bars_proportional() {
        let mut t = Trace::new();
        t.push("a", breakdown(100, 0));
        t.push("b", breakdown(50, 50));
        let s = t.render_bars(40);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 2);
        // Row a: 40 F glyphs. Row b: 20 F + 20 U.
        assert_eq!(lines[0].matches('F').count(), 40);
        assert_eq!(lines[1].matches('F').count(), 20);
        assert_eq!(lines[1].matches('U').count(), 20);
    }

    #[test]
    fn bars_sum_to_proportional_row_length() {
        // Four equal phases of 5 cycles: independent rounding would give
        // each phase ceil(2.5) = 3 cells → a 12-cell bar for a 10-cell
        // budget. Largest remainder must hit exactly 10.
        let mut b = PhaseBreakdown::new();
        for p in [
            Phase::Forward,
            Phase::NeuronGrad,
            Phase::WeightGrad,
            Phase::WeightUpdate,
        ] {
            b.charge(p, 5, 0.0);
        }
        let mut t = Trace::new();
        t.push("even", b);
        let bar_len = t
            .render_bars(10)
            .lines()
            .next()
            .unwrap()
            .split('|')
            .nth(1)
            .unwrap()
            .len();
        assert_eq!(bar_len, 10);

        // Three phases of 7 cycles: independent rounding undershoots
        // (3 × floor-ish 3 = 9); largest remainder fills the 10th cell.
        let mut b = PhaseBreakdown::new();
        b.charge(Phase::Forward, 7, 0.0);
        b.charge(Phase::NeuronGrad, 7, 0.0);
        b.charge(Phase::WeightGrad, 7, 0.0);
        let mut t = Trace::new();
        t.push("tri", b);
        let bar_len = t
            .render_bars(10)
            .lines()
            .next()
            .unwrap()
            .split('|')
            .nth(1)
            .unwrap()
            .len();
        assert_eq!(bar_len, 10);
    }

    #[test]
    fn tiny_nonzero_phase_keeps_a_glyph() {
        // 1 cycle of quantize against 999 of forward: proportionally the
        // quantize share rounds to zero, but it must stay visible.
        let mut b = PhaseBreakdown::new();
        b.charge(Phase::Forward, 999, 0.0);
        b.charge(Phase::Quantize, 1, 0.0);
        let mut t = Trace::new();
        t.push("l", b);
        let s = t.render_bars(10);
        assert_eq!(s.matches('q').count(), 1, "{s}");
        assert_eq!(s.matches('F').count(), 9, "{s}");
    }

    #[test]
    fn apportion_is_exact_and_deterministic() {
        // Sum always equals the row target; zero phases never get cells.
        let cases: [&[u64]; 5] = [
            &[333, 333, 334],
            &[5, 5, 5, 5],
            &[1, 0, 0, 0, 0, 999],
            &[7, 7, 7],
            &[1, 1, 1, 1, 1, 1],
        ];
        for cycles in cases {
            let total: u64 = cycles.iter().sum();
            let cells = apportion_row(cycles, total, 10);
            assert_eq!(cells.iter().sum::<usize>(), 10, "{cycles:?}");
            for (i, &c) in cycles.iter().enumerate() {
                if c == 0 {
                    assert_eq!(cells[i], 0, "{cycles:?}");
                } else {
                    assert!(cells[i] >= 1, "{cycles:?}");
                }
            }
            assert_eq!(cells, apportion_row(cycles, total, 10));
        }
        // More nonzero phases than cells: row stretches to fit them all.
        let cells = apportion_row(&[1, 1, 1], 1000, 2);
        assert_eq!(cells, vec![1, 1, 1]);
        assert_eq!(apportion_row(&[0, 0], 1, 10), vec![0, 0]);
    }

    #[test]
    fn emit_virtual_lays_phases_end_to_end() {
        use std::sync::Arc;
        let sink = Arc::new(cq_obs::MemorySink::new());
        cq_obs::install(sink.clone());
        let mut t = Trace::new();
        t.push("conv1", breakdown(100, 50));
        t.push("fc2", breakdown(30, 0));
        t.emit_virtual("test:emit_virtual", 1.0); // 1 GHz → 1 cycle = 1e-3 µs
        cq_obs::uninstall();
        let events = sink.take();
        let spans: Vec<_> = events
            .iter()
            .filter_map(|e| match e.kind {
                cq_obs::EventKind::Span { dur_us } => Some((e.name.as_ref(), e.ts_us, dur_us)),
                _ => None,
            })
            .collect();
        // 2 layer spans + 3 nonzero phase spans.
        assert_eq!(spans.len(), 5, "{spans:?}");
        let find = |n: &str| spans.iter().find(|(name, ..)| *name == n).copied().unwrap();
        let (_, fw_ts, fw_dur) = find("conv1:FW");
        let (_, wu_ts, _) = find("conv1:WU");
        let (_, fc_ts, _) = find("fc2:FW");
        assert_eq!(fw_ts, 0.0);
        assert!((wu_ts - fw_dur).abs() < 1e-12);
        assert!((fc_ts - 0.15).abs() < 1e-12); // 150 cycles @ 1 GHz
        let (_, layer_ts, layer_dur) = find("conv1");
        assert_eq!(layer_ts, 0.0);
        assert!((layer_dur - 0.15).abs() < 1e-12);
    }

    #[test]
    fn collect_from_iterator() {
        let t: Trace = vec![("x".to_string(), breakdown(5, 5))]
            .into_iter()
            .collect();
        assert_eq!(t.records()[0].label, "x");
        assert!(!t.to_string().is_empty());
    }

    #[test]
    fn empty_trace_renders_nothing() {
        assert_eq!(Trace::new().render_bars(10), "");
        assert_eq!(Trace::new().total_cycles(), 0);
    }
}
