//! Execution traces and ASCII visualization.
//!
//! Simulators can record per-unit [`TraceRecord`]s (layer × phase costs);
//! the renderer draws proportional ASCII bars — the terminal stand-in for
//! the paper's stacked-bar figures (12(b)/12(d)).

use crate::phase::{Phase, PhaseBreakdown};
use std::fmt;

/// One traced unit of work (typically a layer).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// Unit label (layer name).
    pub label: String,
    /// Cycles/energy per phase for this unit.
    pub breakdown: PhaseBreakdown,
}

/// An ordered trace of work units.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Trace {
    records: Vec<TraceRecord>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Appends a record.
    pub fn push(&mut self, label: impl Into<String>, breakdown: PhaseBreakdown) {
        self.records.push(TraceRecord {
            label: label.into(),
            breakdown,
        });
    }

    /// The records in order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total cycles across all records.
    pub fn total_cycles(&self) -> u64 {
        self.records
            .iter()
            .map(|r| r.breakdown.total_cycles())
            .sum()
    }

    /// The `n` most expensive records, descending.
    pub fn hotspots(&self, n: usize) -> Vec<&TraceRecord> {
        let mut sorted: Vec<&TraceRecord> = self.records.iter().collect();
        sorted.sort_by_key(|r| std::cmp::Reverse(r.breakdown.total_cycles()));
        sorted.truncate(n);
        sorted
    }

    /// Renders proportional ASCII bars, one row per record, `width`
    /// characters for the largest record. Each phase draws with its own
    /// glyph: `F` forward, `N` neuron-grad, `W` weight-grad, `U` update,
    /// `s`/`q` statistic/quantize.
    pub fn render_bars(&self, width: usize) -> String {
        let max = self
            .records
            .iter()
            .map(|r| r.breakdown.total_cycles())
            .max()
            .unwrap_or(0)
            .max(1);
        let label_w = self
            .records
            .iter()
            .map(|r| r.label.len())
            .max()
            .unwrap_or(0);
        let glyphs = ['F', 'N', 'W', 'U', 's', 'q'];
        let mut out = String::new();
        for r in &self.records {
            let mut bar = String::new();
            for (p, g) in Phase::ALL.iter().zip(glyphs) {
                let cells =
                    (r.breakdown.cycles(*p) as f64 / max as f64 * width as f64).round() as usize;
                bar.extend(std::iter::repeat_n(g, cells));
            }
            out.push_str(&format!("{:label_w$} |{bar}\n", r.label, label_w = label_w));
        }
        out
    }
}

impl FromIterator<(String, PhaseBreakdown)> for Trace {
    fn from_iter<T: IntoIterator<Item = (String, PhaseBreakdown)>>(iter: T) -> Self {
        let mut t = Trace::new();
        for (label, b) in iter {
            t.push(label, b);
        }
        t
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render_bars(60))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breakdown(fw: u64, wu: u64) -> PhaseBreakdown {
        let mut b = PhaseBreakdown::new();
        b.charge(Phase::Forward, fw, 0.0);
        b.charge(Phase::WeightUpdate, wu, 0.0);
        b
    }

    #[test]
    fn push_and_totals() {
        let mut t = Trace::new();
        t.push("conv1", breakdown(100, 10));
        t.push("fc6", breakdown(20, 200));
        assert_eq!(t.len(), 2);
        assert_eq!(t.total_cycles(), 330);
        assert!(!t.is_empty());
    }

    #[test]
    fn hotspots_sorted_descending() {
        let mut t = Trace::new();
        t.push("small", breakdown(10, 0));
        t.push("big", breakdown(1000, 0));
        t.push("mid", breakdown(100, 0));
        let hs = t.hotspots(2);
        assert_eq!(hs[0].label, "big");
        assert_eq!(hs[1].label, "mid");
    }

    #[test]
    fn bars_proportional() {
        let mut t = Trace::new();
        t.push("a", breakdown(100, 0));
        t.push("b", breakdown(50, 50));
        let s = t.render_bars(40);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 2);
        // Row a: 40 F glyphs. Row b: 20 F + 20 U.
        assert_eq!(lines[0].matches('F').count(), 40);
        assert_eq!(lines[1].matches('F').count(), 20);
        assert_eq!(lines[1].matches('U').count(), 20);
    }

    #[test]
    fn collect_from_iterator() {
        let t: Trace = vec![("x".to_string(), breakdown(5, 5))]
            .into_iter()
            .collect();
        assert_eq!(t.records()[0].label, "x");
        assert!(!t.to_string().is_empty());
    }

    #[test]
    fn empty_trace_renders_nothing() {
        assert_eq!(Trace::new().render_bars(10), "");
        assert_eq!(Trace::new().total_cycles(), 0);
    }
}
