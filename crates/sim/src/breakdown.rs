//! Energy breakdown by hardware component (paper Fig. 12(d)):
//! functional modules in the acceleration core (ACC), on-chip buffers
//! (BUF), DRAM standby (DDR-SB) and DRAM dynamic (DDR-DY).

use std::fmt;
use std::ops::{Add, AddAssign};

/// A component category of the Fig. 12(d) energy breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Component {
    /// Functional modules of the acceleration core (PE array, SFU, SQU,
    /// QBC, decode, control).
    Acc,
    /// On-chip SRAM buffers (NBin, SB, NBout).
    Buf,
    /// DRAM standby (leakage + refresh, proportional to runtime).
    DdrStandby,
    /// DRAM dynamic (per-access energy, proportional to traffic).
    DdrDynamic,
}

impl Component {
    /// All components in display order.
    pub const ALL: [Component; 4] = [
        Component::Acc,
        Component::Buf,
        Component::DdrStandby,
        Component::DdrDynamic,
    ];

    /// The paper's label for this component.
    pub fn label(&self) -> &'static str {
        match self {
            Component::Acc => "ACC",
            Component::Buf => "BUF",
            Component::DdrStandby => "DDR-SB",
            Component::DdrDynamic => "DDR-DY",
        }
    }
}

impl fmt::Display for Component {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Energy (pJ) attributed to each hardware component.
///
/// # Examples
///
/// ```
/// use cq_sim::{Component, EnergyBreakdown};
///
/// let mut e = EnergyBreakdown::new();
/// e.charge(Component::DdrDynamic, 1000.0);
/// e.charge(Component::Acc, 250.0);
/// assert_eq!(e.total_pj(), 1250.0);
/// assert!((e.fraction(Component::DdrDynamic) - 0.8).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EnergyBreakdown {
    pj: [f64; 4],
}

impl EnergyBreakdown {
    /// An empty breakdown.
    pub fn new() -> Self {
        EnergyBreakdown::default()
    }

    /// Adds energy to a component.
    pub fn charge(&mut self, component: Component, pj: f64) {
        self.pj[component as usize] += pj;
    }

    /// Energy attributed to a component (pJ).
    pub fn energy_pj(&self, component: Component) -> f64 {
        self.pj[component as usize]
    }

    /// Total energy across components (pJ).
    pub fn total_pj(&self) -> f64 {
        self.pj.iter().sum()
    }

    /// Total energy in millijoules.
    pub fn total_mj(&self) -> f64 {
        self.total_pj() * 1e-9
    }

    /// Fraction of total energy in a component (0.0 for an empty breakdown).
    pub fn fraction(&self, component: Component) -> f64 {
        let total = self.total_pj();
        if total == 0.0 {
            0.0
        } else {
            self.energy_pj(component) / total
        }
    }

    /// Memory-side energy (BUF + DDR standby + DDR dynamic) — the portion
    /// the paper reports a 1.54× reduction on.
    pub fn memory_side_pj(&self) -> f64 {
        self.energy_pj(Component::Buf)
            + self.energy_pj(Component::DdrStandby)
            + self.energy_pj(Component::DdrDynamic)
    }

    /// Merges another breakdown into this one.
    pub fn merge(&mut self, other: &EnergyBreakdown) {
        for i in 0..4 {
            self.pj[i] += other.pj[i];
        }
    }
}

impl Add for EnergyBreakdown {
    type Output = EnergyBreakdown;

    fn add(mut self, rhs: EnergyBreakdown) -> EnergyBreakdown {
        self.merge(&rhs);
        self
    }
}

impl AddAssign for EnergyBreakdown {
    fn add_assign(&mut self, rhs: EnergyBreakdown) {
        self.merge(&rhs);
    }
}

impl fmt::Display for EnergyBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total = self.total_pj().max(f64::MIN_POSITIVE);
        for c in Component::ALL {
            write!(
                f,
                "{}:{:.1}% ",
                c.label(),
                self.energy_pj(c) / total * 100.0
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_and_fractions() {
        let mut e = EnergyBreakdown::new();
        e.charge(Component::Acc, 1.0);
        e.charge(Component::Buf, 2.0);
        e.charge(Component::DdrStandby, 3.0);
        e.charge(Component::DdrDynamic, 4.0);
        assert_eq!(e.total_pj(), 10.0);
        assert!((e.fraction(Component::DdrDynamic) - 0.4).abs() < 1e-12);
        assert_eq!(e.memory_side_pj(), 9.0);
    }

    #[test]
    fn empty_is_zero() {
        let e = EnergyBreakdown::new();
        assert_eq!(e.total_pj(), 0.0);
        assert_eq!(e.fraction(Component::Acc), 0.0);
    }

    #[test]
    fn merge_adds() {
        let mut a = EnergyBreakdown::new();
        a.charge(Component::Acc, 1.0);
        let mut b = EnergyBreakdown::new();
        b.charge(Component::Acc, 2.0);
        b.charge(Component::Buf, 5.0);
        a += b;
        assert_eq!(a.energy_pj(Component::Acc), 3.0);
        assert_eq!(a.energy_pj(Component::Buf), 5.0);
    }

    #[test]
    fn labels_match_paper() {
        let labels: Vec<_> = Component::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(labels, vec!["ACC", "BUF", "DDR-SB", "DDR-DY"]);
    }

    #[test]
    fn total_mj_conversion() {
        let mut e = EnergyBreakdown::new();
        e.charge(Component::Acc, 1e9); // 1 mJ
        assert!((e.total_mj() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn display_has_all_labels() {
        let mut e = EnergyBreakdown::new();
        e.charge(Component::Buf, 1.0);
        let s = e.to_string();
        for c in Component::ALL {
            assert!(s.contains(c.label()));
        }
    }
}
