//! Hierarchical mapping model for the cycle simulator.
//!
//! A *mapping* describes how one matmul `m×k · k×n` is laid onto the
//! memory hierarchy (DRAM → NBin/SB/NBout on-chip buffers → PE array):
//! a loop order over the (M, N, K) tile loops at the DRAM level, an
//! on-chip tile size per dimension, and a PE-level reduction fold. From
//! the mapping this module *derives* — rather than hard-codes — the
//! quantities the cost model charges:
//!
//! * **per-level traffic**: how many times each operand crosses the
//!   DRAM bus (reload factors from the classic tiled-loop-nest reuse
//!   analysis, FactorFlow/CoSA-style) and how many partial-sum spill
//!   round trips the output incurs;
//! * **buffer occupancy**: bytes each tile pins in NBin (inputs), SB
//!   (weights) and NBout (partial sums), checked against the
//!   configured capacities for *capacity legality*;
//! * **PE utilization**: the fraction of MAC slots a tiled sweep
//!   actually fills, including the k-fold trick that maps reduction
//!   chunks onto PE rows an undersized output tile would leave idle
//!   (the adder tree sums across rows, so folding trades row
//!   parallelism for reduction parallelism).
//!
//! The committed [`Mapping::streaming_default`] reproduces the
//! pre-mapping simulator byte-for-byte: whole-problem tiles (reload
//! factor 1 for every operand, no spills) and fold 1 — the legacy
//! "stream every operand once per phase" contract, *idealized* in that
//! it is exempt from the capacity check. Searched mappings live in the
//! honest capacity-legal space, so a search win is conservative: the
//! searched mapping beats the default even though the default is never
//! charged for its residency violations.
//!
//! The `CQ_MAPPING` environment knob selects the policy process-wide
//! (`default` | `search` | a mapping-table file path) and is validated
//! eagerly in `profiling::init_for_bin` like `CQ_BACKEND`/`CQ_SIMD`.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::OnceLock;

/// One matmul dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dim {
    /// Output rows (batch / spatial positions).
    M,
    /// Output columns (filters / features).
    N,
    /// The reduction dimension.
    K,
}

impl Dim {
    /// Lower-case letter used in the mapping-file format.
    pub fn letter(self) -> char {
        match self {
            Dim::M => 'm',
            Dim::N => 'n',
            Dim::K => 'k',
        }
    }
}

/// A DRAM-level tile loop order, outermost first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LoopOrder(pub [Dim; 3]);

impl LoopOrder {
    /// All six permutations of the (M, N, K) tile loops.
    pub const ALL: [LoopOrder; 6] = [
        LoopOrder([Dim::M, Dim::N, Dim::K]),
        LoopOrder([Dim::M, Dim::K, Dim::N]),
        LoopOrder([Dim::N, Dim::M, Dim::K]),
        LoopOrder([Dim::N, Dim::K, Dim::M]),
        LoopOrder([Dim::K, Dim::M, Dim::N]),
        LoopOrder([Dim::K, Dim::N, Dim::M]),
    ];

    /// The file-format spelling, e.g. `mnk`.
    pub fn name(&self) -> String {
        self.0.iter().map(|d| d.letter()).collect()
    }

    /// Parses a three-letter permutation of `m`, `n`, `k`.
    pub fn parse(s: &str) -> Result<LoopOrder, String> {
        let mut dims = [Dim::M; 3];
        let chars: Vec<char> = s.trim().chars().collect();
        if chars.len() != 3 {
            return Err(format!("loop order {s:?} must be 3 letters of m/n/k"));
        }
        for (i, c) in chars.iter().enumerate() {
            dims[i] = match c.to_ascii_lowercase() {
                'm' => Dim::M,
                'n' => Dim::N,
                'k' => Dim::K,
                other => return Err(format!("loop order {s:?}: unknown dim {other:?}")),
            };
        }
        for d in [Dim::M, Dim::N, Dim::K] {
            if !dims.contains(&d) {
                return Err(format!(
                    "loop order {s:?} must mention each of m, n, k once"
                ));
            }
        }
        Ok(LoopOrder(dims))
    }

    /// Position of `dim` in the nest (0 = outermost), or `None` when the
    /// order does not mention it. [`LoopOrder::parse`] only produces
    /// permutations, but the tuple field is public, so a hand-built
    /// order can omit a dimension — callers must not assume presence
    /// (this used to be an `unwrap` that aborted on such orders).
    fn position(&self, dim: Dim) -> Option<usize> {
        self.0.iter().position(|&d| d == dim)
    }

    /// Whether the order mentions each of M, N, K exactly once. Anything
    /// else has no defined reuse analysis and is rejected by
    /// [`Mapping::validate`].
    pub fn is_permutation(&self) -> bool {
        [Dim::M, Dim::N, Dim::K]
            .into_iter()
            .all(|d| self.0.contains(&d))
    }
}

impl fmt::Display for LoopOrder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

/// One matmul shape `m×k · k×n` (no serial-repeat factor: repeats reuse
/// the same mapping).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MatShape {
    /// Output rows.
    pub m: u64,
    /// Output columns.
    pub n: u64,
    /// Reduction length.
    pub k: u64,
}

impl MatShape {
    /// Total multiply-accumulates.
    pub fn macs(&self) -> u64 {
        self.m * self.n * self.k
    }
}

/// The memory hierarchy a mapping is laid onto: buffer capacities and
/// PE-array geometry, taken from the chip configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemHierarchy {
    /// NBin capacity in bytes (holds the input tile, `Tm × Tk`).
    pub nbin_bytes: u64,
    /// SB capacity in bytes (holds the weight tile, `Tk × Tn`).
    pub sb_bytes: u64,
    /// NBout capacity in bytes (holds the partial-sum tile, `Tm × Tn`).
    pub nbout_bytes: u64,
    /// Quantized element size in bytes (0.5 at INT4, 1 at INT8, ...).
    pub elem_bytes: f64,
    /// Partial-sum width in bytes held in NBout (32-bit accumulators).
    pub acc_bytes: f64,
    /// PE array rows.
    pub pe_rows: u64,
    /// PE array columns.
    pub pe_cols: u64,
    /// Number of PE arrays tiles distribute over.
    pub pe_arrays: u64,
}

impl MemHierarchy {
    /// Cycles of a PE-array sweep over `shape` at `kfold` with the given
    /// bit-serial pass count (see [`pe_sweep_cycles`]).
    pub fn pe_sweep_cycles(&self, shape: MatShape, kfold: u64, passes: u64) -> u64 {
        pe_sweep_cycles(
            self.pe_rows,
            self.pe_cols,
            self.pe_arrays,
            kfold,
            shape,
            passes,
        )
    }

    /// Fraction of MAC slots the sweep fills: `macs / (slot cycles ×
    /// array MACs per pass-cycle)`. 1.0 means every PE is busy every
    /// cycle; partial tiles and fold padding lower it.
    pub fn pe_utilization(&self, shape: MatShape, kfold: u64, passes: u64) -> f64 {
        let cycles = self.pe_sweep_cycles(shape, kfold, passes);
        if cycles == 0 {
            return 0.0;
        }
        let slots =
            cycles as f64 / passes as f64 * (self.pe_rows * self.pe_cols * self.pe_arrays) as f64;
        shape.macs() as f64 / slots
    }
}

/// Cycles to drain `shape` through a `rows × cols` PE array replicated
/// `arrays` times: the array computes one output tile per sweep,
/// streaming the reduction one element per cycle per serial `pass`.
/// Partial tiles still occupy the full array (padding).
///
/// `kfold` maps `kfold` reduction chunks across the row dimension
/// (output-row groups of `rows / kfold` physical rows; the adder tree
/// sums the chunks), so a skinny matmul (`m < rows`) can trade idle
/// rows for `kfold`× shorter reduction sweeps. `kfold = 1` is exactly
/// the legacy output-stationary sweep.
pub fn pe_sweep_cycles(
    rows: u64,
    cols: u64,
    arrays: u64,
    kfold: u64,
    shape: MatShape,
    passes: u64,
) -> u64 {
    if shape.m == 0 || shape.n == 0 || shape.k == 0 {
        return 0;
    }
    let fold = kfold.clamp(1, rows.max(1));
    let row_group = (rows / fold).max(1);
    let row_tiles = shape.m.div_ceil(row_group);
    let col_tiles = shape.n.div_ceil(cols.max(1));
    let tiles_per_array = (row_tiles * col_tiles).div_ceil(arrays.max(1));
    tiles_per_array * shape.k.div_ceil(fold) * passes
}

/// Sentinel tile size meaning "the whole problem dimension".
pub const FULL: u64 = u64::MAX;

/// A hierarchical mapping: DRAM-level loop order, on-chip tile sizes
/// over (M, N, K), and the PE-level reduction fold.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Mapping {
    /// DRAM-level tile loop order, outermost first.
    pub order: LoopOrder,
    /// On-chip tile size along M ([`FULL`] = whole dimension).
    pub tile_m: u64,
    /// On-chip tile size along N.
    pub tile_n: u64,
    /// On-chip tile size along K.
    pub tile_k: u64,
    /// PE-level reduction fold (1 = legacy sweep).
    pub kfold: u64,
}

impl Mapping {
    /// The committed default: the legacy idealized dataflow — whole-
    /// problem tiles (every operand streams exactly once per phase,
    /// no partial-sum spills) and no fold. Reproduces the pre-mapping
    /// simulator byte-identically; exempt from the capacity check.
    pub fn streaming_default() -> Mapping {
        Mapping {
            order: LoopOrder([Dim::M, Dim::N, Dim::K]),
            tile_m: FULL,
            tile_n: FULL,
            tile_k: FULL,
            kfold: 1,
        }
    }

    /// Whether this is [`Mapping::streaming_default`].
    pub fn is_streaming_default(&self) -> bool {
        *self == Mapping::streaming_default()
    }

    /// Structural sanity: the loop order is a permutation of (M, N, K),
    /// no zero tiles, fold ≥ 1.
    pub fn validate(&self) -> Result<(), String> {
        if !self.order.is_permutation() {
            return Err(format!(
                "mapping loop order {:?} must mention each of m, n, k once",
                self.order.name()
            ));
        }
        if self.tile_m == 0 || self.tile_n == 0 || self.tile_k == 0 {
            return Err(format!("mapping {self} has a zero tile size"));
        }
        if self.kfold == 0 {
            return Err(format!("mapping {self} has fold 0"));
        }
        Ok(())
    }

    /// Derives traffic, occupancy and utilization inputs for `shape`
    /// under `hier`.
    ///
    /// Reload factors follow the single-buffered tiled-loop-nest reuse
    /// rule: an operand's tile is re-fetched once per iteration of every
    /// loop that does not index it but runs *outside* a loop that does.
    pub fn evaluate(&self, shape: MatShape, hier: &MemHierarchy) -> MappingEval {
        let tm = self.tile_m.min(shape.m).max(1);
        let tn = self.tile_n.min(shape.n).max(1);
        let tk = self.tile_k.min(shape.k).max(1);
        let trips = |extent: u64, tile: u64| extent.div_ceil(tile);
        let (nm, nn, nk) = (trips(shape.m, tm), trips(shape.n, tn), trips(shape.k, tk));
        let trip_of = |d: Dim| match d {
            Dim::M => nm,
            Dim::N => nn,
            Dim::K => nk,
        };
        // f_X = Π trip(d) over irrelevant dims d that have a relevant
        // dim strictly inside them in the nest.
        let reload = |relevant: [Dim; 2], irrelevant: Dim| -> u64 {
            // A non-permutation order only reaches here through the
            // public struct fields (validate() rejects it at every parse
            // boundary); a dimension missing from the nest contributes no
            // reload rather than a panic.
            let Some(pos) = self.order.position(irrelevant) else {
                return 1;
            };
            let inner_relevant = relevant
                .iter()
                .any(|&r| self.order.position(r).is_some_and(|p| p > pos));
            if inner_relevant {
                trip_of(irrelevant)
            } else {
                1
            }
        };
        let reload_in = reload([Dim::M, Dim::K], Dim::N);
        let reload_w = reload([Dim::K, Dim::N], Dim::M);
        // Output partial sums spill once per extra K trip when the
        // K loop encloses an output-relevant loop.
        let k_spills = reload([Dim::M, Dim::N], Dim::K).saturating_sub(1);
        let psum_spill_elems = shape.m * shape.n * k_spills;

        let kfold = self.kfold.clamp(1, hier.pe_rows.max(1));
        MappingEval {
            shape,
            tile_m: tm,
            tile_n: tn,
            tile_k: tk,
            reload_in,
            reload_w,
            psum_spill_elems,
            kfold,
            nbin_occupancy: tm as f64 * tk as f64 * hier.elem_bytes,
            sb_occupancy: tk as f64 * tn as f64 * hier.elem_bytes,
            nbout_occupancy: tm as f64 * tn as f64 * hier.acc_bytes,
        }
    }

    /// Whether the mapping's tiles fit the hierarchy for `shape` (and
    /// the fold fits the row dimension). The streaming default is
    /// deliberately *not* legal for shapes whose operands exceed the
    /// buffers — it is the idealized legacy contract, not a candidate.
    pub fn is_capacity_legal(&self, shape: MatShape, hier: &MemHierarchy) -> bool {
        let e = self.evaluate(shape, hier);
        self.kfold >= 1
            && self.kfold <= hier.pe_rows.max(1)
            && e.nbin_occupancy <= hier.nbin_bytes as f64
            && e.sb_occupancy <= hier.sb_bytes as f64
            && e.nbout_occupancy <= hier.nbout_bytes as f64
    }

    /// One-line file-format rendering, e.g.
    /// `order=mnk tm=full tn=256 tk=512 fold=2`.
    pub fn render(&self) -> String {
        let t = |v: u64| {
            if v == FULL {
                "full".to_string()
            } else {
                v.to_string()
            }
        };
        format!(
            "order={} tm={} tn={} tk={} fold={}",
            self.order.name(),
            t(self.tile_m),
            t(self.tile_n),
            t(self.tile_k),
            self.kfold
        )
    }

    /// Parses the [`Mapping::render`] format (fields in any order).
    pub fn parse(s: &str) -> Result<Mapping, String> {
        let mut m = Mapping::streaming_default();
        let mut seen = [false; 5];
        for field in s.split_whitespace() {
            let (key, value) = field
                .split_once('=')
                .ok_or_else(|| format!("mapping field {field:?} is not key=value"))?;
            let tile = |v: &str| -> Result<u64, String> {
                if v.eq_ignore_ascii_case("full") {
                    return Ok(FULL);
                }
                v.parse::<u64>().ok().filter(|&t| t >= 1).ok_or_else(|| {
                    format!("mapping tile {v:?} must be 'full' or a positive integer")
                })
            };
            match key {
                "order" => {
                    m.order = LoopOrder::parse(value)?;
                    seen[0] = true;
                }
                "tm" => {
                    m.tile_m = tile(value)?;
                    seen[1] = true;
                }
                "tn" => {
                    m.tile_n = tile(value)?;
                    seen[2] = true;
                }
                "tk" => {
                    m.tile_k = tile(value)?;
                    seen[3] = true;
                }
                "fold" => {
                    m.kfold = value
                        .parse::<u64>()
                        .ok()
                        .filter(|&f| f >= 1)
                        .ok_or_else(|| {
                            format!("mapping fold {value:?} must be a positive integer")
                        })?;
                    seen[4] = true;
                }
                other => return Err(format!("unknown mapping field {other:?}")),
            }
        }
        if seen != [true; 5] {
            return Err(format!("mapping {s:?} must set all of order/tm/tn/tk/fold"));
        }
        m.validate()?;
        Ok(m)
    }
}

impl fmt::Display for Mapping {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Everything the cost model needs from a mapping for one shape:
/// clamped tiles, DRAM reload factors, spill traffic, fold, occupancy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MappingEval {
    /// The evaluated shape.
    pub shape: MatShape,
    /// Clamped on-chip tile along M.
    pub tile_m: u64,
    /// Clamped on-chip tile along N.
    pub tile_n: u64,
    /// Clamped on-chip tile along K.
    pub tile_k: u64,
    /// Times the input operand crosses the DRAM bus (≥ 1).
    pub reload_in: u64,
    /// Times the weight operand crosses the DRAM bus (≥ 1).
    pub reload_w: u64,
    /// Extra output elements spilled as partial sums (each one write +
    /// one re-read at accumulator width). 0 when the K loop is inside
    /// both output loops or `Tk` covers K.
    pub psum_spill_elems: u64,
    /// PE-level reduction fold, clamped to the row dimension.
    pub kfold: u64,
    /// Bytes the input tile pins in NBin.
    pub nbin_occupancy: f64,
    /// Bytes the weight tile pins in SB.
    pub sb_occupancy: f64,
    /// Bytes the partial-sum tile pins in NBout.
    pub nbout_occupancy: f64,
}

impl MappingEval {
    /// DRAM traffic in elements for the input operand (`m×k` loaded
    /// [`MappingEval::reload_in`] times). Never below the compulsory
    /// each-element-once bound.
    pub fn dram_in_elems(&self) -> u64 {
        self.shape.m * self.shape.k * self.reload_in
    }

    /// DRAM traffic in elements for the weight operand.
    pub fn dram_w_elems(&self) -> u64 {
        self.shape.k * self.shape.n * self.reload_w
    }

    /// DRAM traffic in elements for the final output store.
    pub fn dram_out_elems(&self) -> u64 {
        self.shape.m * self.shape.n
    }

    /// Identity used by the conservation property: the mapping never
    /// changes how many MACs the matmul executes.
    pub fn macs(&self) -> u64 {
        self.shape.macs()
    }
}

/// A per-layer mapping table, keyed `network/layer`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MappingTable {
    entries: BTreeMap<String, Mapping>,
}

/// Header line of the mapping-table file format.
const TABLE_HEADER: &str = "# cq mapping table v1";

impl MappingTable {
    /// An empty table.
    pub fn new() -> Self {
        MappingTable::default()
    }

    /// Adds or replaces the mapping for `network`'s `layer`.
    pub fn insert(&mut self, network: &str, layer: &str, mapping: Mapping) {
        self.entries.insert(format!("{network}/{layer}"), mapping);
    }

    /// The mapping for `network`'s `layer`, if present.
    pub fn get(&self, network: &str, layer: &str) -> Option<&Mapping> {
        self.entries.get(&format!("{network}/{layer}"))
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates `(network/layer, mapping)` in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Mapping)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Renders the table in the `CQ_MAPPING=<file>` format.
    pub fn render(&self) -> String {
        let mut out = String::from(TABLE_HEADER);
        out.push('\n');
        for (key, mapping) in &self.entries {
            out.push_str(&format!("{key}: {}\n", mapping.render()));
        }
        out
    }

    /// Parses a mapping-table file: the v1 header, then one
    /// `network/layer: order=.. tm=.. tn=.. tk=.. fold=..` line per
    /// entry. Blank lines and `#` comments are ignored.
    pub fn parse(text: &str) -> Result<MappingTable, String> {
        let mut lines = text.lines();
        match lines.next() {
            Some(h) if h.trim() == TABLE_HEADER => {}
            other => {
                return Err(format!(
                    "mapping table must start with {TABLE_HEADER:?}, got {other:?}"
                ))
            }
        }
        let mut table = MappingTable::new();
        for (i, line) in lines.enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (key, spec) = line
                .split_once(':')
                .ok_or_else(|| format!("mapping table line {}: missing ':': {line:?}", i + 2))?;
            let key = key.trim();
            if !key.contains('/') {
                return Err(format!(
                    "mapping table line {}: key {key:?} must be network/layer",
                    i + 2
                ));
            }
            let mapping =
                Mapping::parse(spec).map_err(|e| format!("mapping table line {}: {e}", i + 2))?;
            table.entries.insert(key.to_string(), mapping);
        }
        Ok(table)
    }
}

/// Process-wide mapping policy selected by `CQ_MAPPING`.
#[derive(Debug, Clone, PartialEq)]
pub enum MappingPolicy {
    /// The committed streaming default for every layer (byte-identical
    /// to the pre-mapping simulator).
    Default,
    /// Per-layer two-stage mapping search over the capacity-legal space.
    Search,
    /// Fixed per-layer mappings from a table (see [`MappingTable`]);
    /// a layer missing from the table aborts the run.
    Table(MappingTable),
}

impl MappingPolicy {
    /// Short name for reports (`default` / `search` / `table[n]`).
    pub fn name(&self) -> String {
        match self {
            MappingPolicy::Default => "default".into(),
            MappingPolicy::Search => "search".into(),
            MappingPolicy::Table(t) => format!("table[{}]", t.len()),
        }
    }
}

/// Raw resolution of a `CQ_MAPPING` value, before any file I/O. Pure so
/// it can be unit tested; unknown keywords become file paths, which
/// [`env_policy`] then validates (an unreadable or unparsable path
/// aborts rather than silently falling back to the default mapping).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EnvMapping {
    /// Use [`MappingPolicy::Default`].
    Default,
    /// Use [`MappingPolicy::Search`].
    Search,
    /// Load a [`MappingTable`] from this path.
    File(String),
}

/// Resolves a raw `CQ_MAPPING` value. `None`/empty means "unset"
/// (default mapping).
pub fn resolve_env_mapping(raw: Option<&str>) -> EnvMapping {
    let Some(v) = raw else {
        return EnvMapping::Default;
    };
    let t = v.trim();
    if t.is_empty() {
        return EnvMapping::Default;
    }
    match t.to_ascii_lowercase().as_str() {
        "default" => EnvMapping::Default,
        "search" => EnvMapping::Search,
        _ => EnvMapping::File(t.to_string()),
    }
}

/// The validated process-wide `CQ_MAPPING` policy (cached for the
/// process lifetime). A path that cannot be read or parsed aborts the
/// run: a typo like `CQ_MAPPING=serach` silently simulating the default
/// mapping would invalidate any mapping comparison.
pub fn env_policy() -> &'static MappingPolicy {
    static CACHED: OnceLock<MappingPolicy> = OnceLock::new();
    CACHED.get_or_init(|| {
        let raw = std::env::var("CQ_MAPPING").ok();
        match resolve_env_mapping(raw.as_deref()) {
            EnvMapping::Default => MappingPolicy::Default,
            EnvMapping::Search => MappingPolicy::Search,
            EnvMapping::File(path) => {
                let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                    panic!(
                        "invalid CQ_MAPPING value {path:?}: expected default, search, \
                         or a readable mapping-table file ({e})"
                    )
                });
                let table = MappingTable::parse(&text)
                    .unwrap_or_else(|e| panic!("invalid CQ_MAPPING table {path:?}: {e}"));
                MappingPolicy::Table(table)
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge_hier() -> MemHierarchy {
        MemHierarchy {
            nbin_bytes: 256 * 1024,
            sb_bytes: 512 * 1024,
            nbout_bytes: 256 * 1024,
            elem_bytes: 1.0,
            acc_bytes: 4.0,
            pe_rows: 64,
            pe_cols: 64,
            pe_arrays: 1,
        }
    }

    fn shape(m: u64, n: u64, k: u64) -> MatShape {
        MatShape { m, n, k }
    }

    #[test]
    fn default_mapping_is_ideal_everywhere() {
        let hier = edge_hier();
        let d = Mapping::streaming_default();
        for s in [shape(32, 4096, 9216), shape(3025, 96, 363), shape(1, 1, 1)] {
            let e = d.evaluate(s, &hier);
            assert_eq!(e.reload_in, 1);
            assert_eq!(e.reload_w, 1);
            assert_eq!(e.psum_spill_elems, 0);
            assert_eq!(e.kfold, 1);
            assert_eq!(e.dram_in_elems(), s.m * s.k);
            assert_eq!(e.dram_w_elems(), s.k * s.n);
            assert_eq!(e.dram_out_elems(), s.m * s.n);
        }
    }

    #[test]
    fn default_mapping_is_not_capacity_legal_for_big_layers() {
        let hier = edge_hier();
        let d = Mapping::streaming_default();
        // AlexNet fc6: 37.7 MB of weights >> 512 KB SB.
        assert!(!d.is_capacity_legal(shape(32, 4096, 9216), &hier));
        // A tiny matmul fits outright.
        assert!(d.is_capacity_legal(shape(64, 64, 64), &hier));
    }

    #[test]
    fn reload_factors_follow_loop_order() {
        let hier = edge_hier();
        let s = shape(512, 512, 512);
        let tiled = |order: &str| Mapping {
            order: LoopOrder::parse(order).unwrap(),
            tile_m: 128,
            tile_n: 128,
            tile_k: 512,
            kfold: 1,
        };
        // n innermost: the input tile stays resident across the n sweep.
        let e = tiled("mkn").evaluate(s, &hier);
        assert_eq!((e.reload_in, e.reload_w), (1, 4));
        // m innermost: the weight tile stays resident across the m sweep.
        let e = tiled("nkm").evaluate(s, &hier);
        assert_eq!((e.reload_in, e.reload_w), (4, 1));
        // k fully tiled (Tk = 512): no partial-sum spills anywhere.
        assert_eq!(e.psum_spill_elems, 0);
        // Split k outside the output loops: partials spill per extra trip.
        let spilled = Mapping {
            order: LoopOrder::parse("kmn").unwrap(),
            tile_m: 128,
            tile_n: 128,
            tile_k: 128,
            kfold: 1,
        }
        .evaluate(s, &hier);
        assert_eq!(spilled.psum_spill_elems, 512 * 512 * 3);
    }

    #[test]
    fn irrelevant_innermost_loop_does_not_reload() {
        // Order mkn with the n loop innermost: even with many n trips the
        // input tile is fetched once per (m, k) tile.
        let hier = edge_hier();
        let m = Mapping {
            order: LoopOrder::parse("mkn").unwrap(),
            tile_m: 64,
            tile_n: 64,
            tile_k: 256,
            kfold: 1,
        };
        let e = m.evaluate(shape(256, 4096, 256), &hier);
        assert_eq!(e.reload_in, 1);
        // The weight operand reloads once per m trip (k or n inside m).
        assert_eq!(e.reload_w, 4);
    }

    #[test]
    fn occupancy_uses_elem_and_acc_widths() {
        let mut hier = edge_hier();
        hier.elem_bytes = 0.5; // INT4
        let m = Mapping {
            order: LoopOrder::ALL[0],
            tile_m: 100,
            tile_n: 200,
            tile_k: 400,
            kfold: 1,
        };
        let e = m.evaluate(shape(1000, 1000, 1000), &hier);
        assert_eq!(e.nbin_occupancy, 100.0 * 400.0 * 0.5);
        assert_eq!(e.sb_occupancy, 400.0 * 200.0 * 0.5);
        assert_eq!(e.nbout_occupancy, 100.0 * 200.0 * 4.0);
    }

    #[test]
    fn kfold_shortens_skinny_sweeps() {
        let hier = edge_hier();
        let s = shape(20, 2600, 1950);
        let base = hier.pe_sweep_cycles(s, 1, 4);
        let folded = hier.pe_sweep_cycles(s, 3, 4);
        // fold 3: row groups of 21 ≥ m=20, reduction 650 per sweep.
        assert_eq!(base, 41 * 1950 * 4);
        assert_eq!(folded, 41 * 650 * 4);
        // Utilization rises accordingly.
        assert!(hier.pe_utilization(s, 3, 4) > 2.9 * hier.pe_utilization(s, 1, 4));
    }

    #[test]
    fn kfold_one_matches_legacy_formula() {
        let hier = edge_hier();
        for s in [
            shape(64, 64, 1000),
            shape(65, 64, 100),
            shape(512, 512, 512),
        ] {
            let rows = 64u64;
            let legacy = s.m.div_ceil(rows) * s.n.div_ceil(64) * s.k * 4;
            assert_eq!(hier.pe_sweep_cycles(s, 1, 4), legacy, "{s:?}");
        }
    }

    #[test]
    fn mapping_render_parse_round_trip() {
        let mappings = [
            Mapping::streaming_default(),
            Mapping {
                order: LoopOrder::parse("kNm").unwrap(),
                tile_m: 32,
                tile_n: 806,
                tile_k: 1950,
                kfold: 3,
            },
        ];
        for m in mappings {
            let rendered = m.render();
            assert_eq!(Mapping::parse(&rendered).unwrap(), m, "{rendered}");
        }
    }

    #[test]
    fn mapping_parse_rejects_garbage() {
        for bad in [
            "",
            "order=mnk",
            "order=mm tm=1 tn=1 tk=1 fold=1",
            "order=mnk tm=0 tn=1 tk=1 fold=1",
            "order=mnk tm=1 tn=1 tk=1 fold=0",
            "order=mnk tm=1 tn=1 tk=1 fold=1 bogus=2",
            "order=mnk tm=one tn=1 tk=1 fold=1",
        ] {
            assert!(Mapping::parse(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn table_round_trip_and_lookup() {
        let mut t = MappingTable::new();
        t.insert("PTB-LSTM", "lstm1", Mapping::streaming_default());
        let custom = Mapping {
            order: LoopOrder::parse("nkm").unwrap(),
            tile_m: 20,
            tile_n: 650,
            tile_k: 1950,
            kfold: 3,
        };
        t.insert("PTB-LSTM", "lstm2", custom);
        let text = t.render();
        let parsed = MappingTable::parse(&text).unwrap();
        assert_eq!(parsed, t);
        assert_eq!(parsed.get("PTB-LSTM", "lstm2"), Some(&custom));
        assert_eq!(parsed.get("PTB-LSTM", "nope"), None);
        assert_eq!(parsed.len(), 2);
    }

    #[test]
    fn table_parse_rejects_garbage() {
        assert!(MappingTable::parse("").is_err());
        assert!(MappingTable::parse("net/layer: order=mnk ...").is_err());
        let no_slash = format!("{TABLE_HEADER}\nlayeronly: order=mnk tm=1 tn=1 tk=1 fold=1\n");
        assert!(MappingTable::parse(&no_slash).is_err());
        let ok = format!("{TABLE_HEADER}\n\n# comment\na/b: order=mnk tm=1 tn=1 tk=1 fold=1\n");
        assert_eq!(MappingTable::parse(&ok).unwrap().len(), 1);
    }

    #[test]
    fn env_mapping_resolution() {
        assert_eq!(resolve_env_mapping(None), EnvMapping::Default);
        assert_eq!(resolve_env_mapping(Some("")), EnvMapping::Default);
        assert_eq!(resolve_env_mapping(Some("  ")), EnvMapping::Default);
        assert_eq!(resolve_env_mapping(Some("Default")), EnvMapping::Default);
        assert_eq!(resolve_env_mapping(Some(" SEARCH ")), EnvMapping::Search);
        assert_eq!(
            resolve_env_mapping(Some("maps/resnet.map")),
            EnvMapping::File("maps/resnet.map".into())
        );
    }

    #[test]
    fn hand_built_non_permutation_order_errors_instead_of_panicking() {
        // The tuple field is public, so a caller can build an order that
        // no parser would produce. This used to abort inside evaluate()
        // via `.position().unwrap()`; now validate() rejects it and
        // evaluate() degrades gracefully.
        let hier = edge_hier();
        let m = Mapping {
            order: LoopOrder([Dim::M, Dim::M, Dim::K]),
            tile_m: 64,
            tile_n: 64,
            tile_k: 64,
            kfold: 1,
        };
        assert!(!m.order.is_permutation());
        let err = m.validate().unwrap_err();
        assert!(err.contains("must mention each of m, n, k once"), "{err}");
        // Must not panic even though N is absent from the nest; the
        // missing dimension contributes no reload.
        let e = m.evaluate(shape(512, 512, 512), &hier);
        assert_eq!(e.reload_in, 1);
        assert!(e.reload_w >= 1);
    }

    #[test]
    fn hostile_mapping_table_duplicate_dim_is_typed_error() {
        // A hand-edited CQ_MAPPING file whose order references a
        // dimension twice (so one is absent) must surface the typed
        // parse error with its line number, not abort the process.
        let hostile = format!("{TABLE_HEADER}\nnet/conv1: order=mmk tm=64 tn=64 tk=64 fold=1\n");
        let err = MappingTable::parse(&hostile).unwrap_err();
        assert!(err.starts_with("mapping table line 2:"), "{err}");
        assert!(err.contains("must mention each of m, n, k once"), "{err}");
    }

    #[test]
    fn loop_order_parse_all_and_reject() {
        for o in LoopOrder::ALL {
            assert_eq!(LoopOrder::parse(&o.name()).unwrap(), o);
        }
        for bad in ["mn", "mnkx", "mmk", "abc"] {
            assert!(LoopOrder::parse(bad).is_err(), "{bad}");
        }
    }
}
