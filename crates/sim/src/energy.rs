//! Per-operation energy model, seeded with the paper's Table I constants
//! (Horowitz, 45 nm; rows marked `*` are the paper's own measurements).
//!
//! All energies are in picojoules (pJ). DRAM access energy is normalized
//! per byte from the table's per-access ranges (the midpoints of the 32/16/
//! 8-bit rows all normalize to ≈244 pJ/B, which is the value used here).

/// A hardware-cost lookup for which the model has no constant.
///
/// Returned by the `try_*` lookup methods on [`EnergyModel`]; the
/// panicking wrappers exist for the fixed paper configurations where an
/// unmodeled width is a programming error, while sweeps over candidate
/// precisions route through the fallible API and skip or report
/// unmodeled points instead of aborting mid-sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HwCostError {
    /// No floating-point energy row at this bit width in Table I.
    UnmodeledFpWidth {
        /// Operation name (`"add"` / `"mul"`).
        op: &'static str,
        /// The requested bit width.
        bits: u32,
    },
    /// No fixed-point energy row at this bit width.
    UnmodeledFixedWidth {
        /// Operation name (`"add"` / `"mul"`).
        op: &'static str,
        /// The requested bit width.
        bits: u32,
    },
}

impl std::fmt::Display for HwCostError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HwCostError::UnmodeledFpWidth { op, bits } => {
                write!(f, "no FP{bits} {op} energy in Table I")
            }
            HwCostError::UnmodeledFixedWidth { op, bits } => {
                write!(f, "no INT{bits} {op} energy")
            }
        }
    }
}

impl std::error::Error for HwCostError {}

/// Energy cost table for arithmetic and memory operations.
///
/// # Examples
///
/// ```
/// use cq_sim::EnergyModel;
///
/// let e = EnergyModel::tsmc45();
/// // INT8 multiply is ~18x cheaper than FP32 multiply (Table I).
/// assert!(e.fp_mul(32) / e.fixed_mul(8) > 15.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyModel {
    /// DRAM access energy per byte (pJ/B).
    pub dram_pj_per_byte: f64,
    /// Large on-chip SRAM (NBin/SB/NBout) access energy per byte (pJ/B).
    pub sram_pj_per_byte: f64,
    /// Small local buffer (SQU 4 KB, register files) access energy per byte.
    pub local_buf_pj_per_byte: f64,
}

impl EnergyModel {
    /// The 45 nm model used throughout the paper's evaluation.
    pub fn tsmc45() -> Self {
        EnergyModel {
            dram_pj_per_byte: 244.0,
            sram_pj_per_byte: 8.0,
            local_buf_pj_per_byte: 1.0,
        }
    }

    /// Floating-point add energy (pJ) for a given bit width (Table I:
    /// 0.9 pJ @ 32 b, 0.4 pJ @ 16 b), or [`HwCostError`] for any other
    /// width.
    pub fn try_fp_add(&self, bits: u32) -> Result<f64, HwCostError> {
        match bits {
            32 => Ok(0.9),
            16 => Ok(0.4),
            _ => Err(HwCostError::UnmodeledFpWidth { op: "add", bits }),
        }
    }

    /// Floating-point multiply energy (pJ) (Table I: 3.7 pJ @ 32 b,
    /// 1.1 pJ @ 16 b), or [`HwCostError`] for any other width.
    pub fn try_fp_mul(&self, bits: u32) -> Result<f64, HwCostError> {
        match bits {
            32 => Ok(3.7),
            16 => Ok(1.1),
            _ => Err(HwCostError::UnmodeledFpWidth { op: "mul", bits }),
        }
    }

    /// Fixed-point add energy (pJ). Table I gives 0.1 @ 32 b, 0.05 @ 16 b,
    /// 0.03 @ 8 b; 4-bit extrapolates the ~linear trend to 0.015 pJ.
    /// Other widths yield [`HwCostError`].
    pub fn try_fixed_add(&self, bits: u32) -> Result<f64, HwCostError> {
        match bits {
            32 => Ok(0.1),
            16 => Ok(0.05),
            12 => Ok(0.04),
            8 => Ok(0.03),
            4 => Ok(0.015),
            _ => Err(HwCostError::UnmodeledFixedWidth { op: "add", bits }),
        }
    }

    /// Fixed-point multiply energy (pJ). Table I gives 3.1 @ 32 b,
    /// 1.55 @ 16 b, 0.2 @ 8 b; multipliers scale ~quadratically so 4-bit
    /// extrapolates to 0.05 pJ and 12-bit interpolates to 0.45 pJ.
    /// Other widths yield [`HwCostError`].
    pub fn try_fixed_mul(&self, bits: u32) -> Result<f64, HwCostError> {
        match bits {
            32 => Ok(3.1),
            16 => Ok(1.55),
            12 => Ok(0.45),
            8 => Ok(0.2),
            4 => Ok(0.05),
            _ => Err(HwCostError::UnmodeledFixedWidth { op: "mul", bits }),
        }
    }

    /// Energy of one fixed-point multiply-accumulate at the given width,
    /// or [`HwCostError`] when either constituent is unmodeled.
    pub fn try_fixed_mac(&self, bits: u32) -> Result<f64, HwCostError> {
        Ok(self.try_fixed_mul(bits)? + self.try_fixed_add(bits.max(8))?)
    }

    /// Energy of one floating-point multiply-accumulate at the given
    /// width, or [`HwCostError`] when either constituent is unmodeled.
    pub fn try_fp_mac(&self, bits: u32) -> Result<f64, HwCostError> {
        Ok(self.try_fp_mul(bits)? + self.try_fp_add(bits)?)
    }

    /// Infallible [`Self::try_fp_add`] for the fixed paper configurations.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is not 16 or 32.
    pub fn fp_add(&self, bits: u32) -> f64 {
        self.try_fp_add(bits).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Infallible [`Self::try_fp_mul`] for the fixed paper configurations.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is not 16 or 32.
    pub fn fp_mul(&self, bits: u32) -> f64 {
        self.try_fp_mul(bits).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Infallible [`Self::try_fixed_add`].
    ///
    /// # Panics
    ///
    /// Panics on widths outside {4, 8, 12, 16, 32}.
    pub fn fixed_add(&self, bits: u32) -> f64 {
        self.try_fixed_add(bits).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Infallible [`Self::try_fixed_mul`].
    ///
    /// # Panics
    ///
    /// Panics on widths outside {4, 8, 12, 16, 32}.
    pub fn fixed_mul(&self, bits: u32) -> f64 {
        self.try_fixed_mul(bits).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Energy of one fixed-point multiply-accumulate at the given width.
    ///
    /// # Panics
    ///
    /// Panics on unmodeled widths (see [`Self::try_fixed_mac`]).
    pub fn fixed_mac(&self, bits: u32) -> f64 {
        self.try_fixed_mac(bits).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Energy of one floating-point multiply-accumulate at the given width.
    ///
    /// # Panics
    ///
    /// Panics on unmodeled widths (see [`Self::try_fp_mac`]).
    pub fn fp_mac(&self, bits: u32) -> f64 {
        self.try_fp_mac(bits).unwrap_or_else(|e| panic!("{e}"))
    }

    /// DRAM traffic energy for `bytes` bytes.
    pub fn dram(&self, bytes: f64) -> f64 {
        bytes * self.dram_pj_per_byte
    }

    /// Large-SRAM traffic energy for `bytes` bytes.
    pub fn sram(&self, bytes: f64) -> f64 {
        bytes * self.sram_pj_per_byte
    }

    /// Small local-buffer traffic energy for `bytes` bytes.
    pub fn local_buf(&self, bytes: f64) -> f64 {
        bytes * self.local_buf_pj_per_byte
    }

    /// Relative cost of an operation versus the INT8 fixed add baseline,
    /// reproducing Table I's "Relative costs" column.
    pub fn relative_cost(&self, energy_pj: f64) -> f64 {
        energy_pj / self.fixed_add(8)
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel::tsmc45()
    }
}

/// One row of Table I, for regenerating the table verbatim.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// Data bit width.
    pub bits: u32,
    /// Operation description.
    pub operation: &'static str,
    /// Energy in pJ (or pJ for the DRAM midpoint).
    pub energy_pj: f64,
    /// Cost relative to an 8-bit fixed-point add.
    pub relative: f64,
}

/// Regenerates every row of Table I from the model.
pub fn table1_rows(model: &EnergyModel) -> Vec<Table1Row> {
    let mk = |bits, operation, energy_pj: f64| Table1Row {
        bits,
        operation,
        energy_pj,
        relative: model.relative_cost(energy_pj),
    };
    vec![
        mk(32, "Floating-point ADD", model.fp_add(32)),
        mk(32, "Floating-point MUL", model.fp_mul(32)),
        mk(32, "Fixed-point ADD", model.fixed_add(32)),
        mk(32, "Fixed-point MUL", model.fixed_mul(32)),
        mk(32, "DRAM access (per 4B)", model.dram(4.0)),
        mk(16, "Floating-point ADD", model.fp_add(16)),
        mk(16, "Floating-point MUL", model.fp_mul(16)),
        mk(16, "Fixed-point ADD", model.fixed_add(16)),
        mk(16, "Fixed-point MUL", model.fixed_mul(16)),
        mk(16, "DRAM access (per 2B)", model.dram(2.0)),
        mk(8, "Fixed-point ADD", model.fixed_add(8)),
        mk(8, "Fixed-point MUL", model.fixed_mul(8)),
        mk(8, "DRAM access (per 1B)", model.dram(1.0)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_constants() {
        let e = EnergyModel::tsmc45();
        assert_eq!(e.fp_add(32), 0.9);
        assert_eq!(e.fp_mul(32), 3.7);
        assert_eq!(e.fixed_add(32), 0.1);
        assert_eq!(e.fixed_mul(32), 3.1);
        assert_eq!(e.fp_add(16), 0.4);
        assert_eq!(e.fp_mul(16), 1.1);
        assert_eq!(e.fixed_add(16), 0.05);
        assert_eq!(e.fixed_mul(16), 1.55);
        assert_eq!(e.fixed_add(8), 0.03);
        assert_eq!(e.fixed_mul(8), 0.2);
    }

    #[test]
    fn relative_costs_match_table1() {
        let e = EnergyModel::tsmc45();
        assert!((e.relative_cost(e.fp_add(32)) - 30.0).abs() < 1e-9);
        assert!((e.relative_cost(e.fp_mul(32)) - 123.333).abs() < 0.01);
        assert!((e.relative_cost(e.fixed_add(32)) - 3.333).abs() < 0.01);
        assert!((e.relative_cost(e.fixed_mul(8)) - 6.667).abs() < 0.01);
        assert!((e.relative_cost(e.fixed_add(16)) - 1.667).abs() < 0.01);
    }

    #[test]
    fn dram_dominates_compute() {
        // Table I's headline: a DRAM access costs thousands of INT8 adds.
        let e = EnergyModel::tsmc45();
        let rel = e.relative_cost(e.dram(1.0));
        assert!(rel > 5000.0 && rel < 11000.0, "rel={rel}");
    }

    #[test]
    fn narrower_is_cheaper() {
        let e = EnergyModel::tsmc45();
        assert!(e.fixed_mul(4) < e.fixed_mul(8));
        assert!(e.fixed_mul(8) < e.fixed_mul(12));
        assert!(e.fixed_mul(12) < e.fixed_mul(16));
        assert!(e.fixed_add(4) < e.fixed_add(8));
    }

    #[test]
    fn mac_energies() {
        let e = EnergyModel::tsmc45();
        assert!((e.fixed_mac(8) - 0.23).abs() < 1e-9);
        assert!((e.fp_mac(32) - 4.6).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "no FP8 add")]
    fn fp8_unsupported() {
        EnergyModel::tsmc45().fp_add(8);
    }

    #[test]
    fn try_variants_return_errors_not_panics() {
        let e = EnergyModel::tsmc45();
        assert_eq!(e.try_fp_add(32), Ok(0.9));
        assert_eq!(e.try_fixed_mul(8), Ok(0.2));
        assert_eq!(
            e.try_fp_add(8),
            Err(HwCostError::UnmodeledFpWidth { op: "add", bits: 8 })
        );
        assert_eq!(
            e.try_fixed_mul(24),
            Err(HwCostError::UnmodeledFixedWidth {
                op: "mul",
                bits: 24
            })
        );
        // MACs propagate the first unmodeled constituent.
        assert!(e.try_fixed_mac(24).is_err());
        assert!(e.try_fp_mac(64).is_err());
        assert_eq!(e.try_fixed_mac(8), Ok(e.fixed_mac(8)));
    }

    #[test]
    fn hw_cost_error_display_matches_legacy_panics() {
        let err = HwCostError::UnmodeledFpWidth { op: "add", bits: 8 };
        assert_eq!(err.to_string(), "no FP8 add energy in Table I");
        let err = HwCostError::UnmodeledFixedWidth {
            op: "mul",
            bits: 24,
        };
        assert_eq!(err.to_string(), "no INT24 mul energy");
    }

    #[test]
    fn table1_has_thirteen_rows() {
        let rows = table1_rows(&EnergyModel::tsmc45());
        assert_eq!(rows.len(), 13);
        assert!(rows.iter().any(|r| r.operation.contains("DRAM")));
    }
}
