//! Per-operation energy model, seeded with the paper's Table I constants
//! (Horowitz, 45 nm; rows marked `*` are the paper's own measurements).
//!
//! All energies are in picojoules (pJ). DRAM access energy is normalized
//! per byte from the table's per-access ranges (the midpoints of the 32/16/
//! 8-bit rows all normalize to ≈244 pJ/B, which is the value used here).

/// Energy cost table for arithmetic and memory operations.
///
/// # Examples
///
/// ```
/// use cq_sim::EnergyModel;
///
/// let e = EnergyModel::tsmc45();
/// // INT8 multiply is ~18x cheaper than FP32 multiply (Table I).
/// assert!(e.fp_mul(32) / e.fixed_mul(8) > 15.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyModel {
    /// DRAM access energy per byte (pJ/B).
    pub dram_pj_per_byte: f64,
    /// Large on-chip SRAM (NBin/SB/NBout) access energy per byte (pJ/B).
    pub sram_pj_per_byte: f64,
    /// Small local buffer (SQU 4 KB, register files) access energy per byte.
    pub local_buf_pj_per_byte: f64,
}

impl EnergyModel {
    /// The 45 nm model used throughout the paper's evaluation.
    pub fn tsmc45() -> Self {
        EnergyModel {
            dram_pj_per_byte: 244.0,
            sram_pj_per_byte: 8.0,
            local_buf_pj_per_byte: 1.0,
        }
    }

    /// Floating-point add energy (pJ) for a given bit width (Table I:
    /// 0.9 pJ @ 32 b, 0.4 pJ @ 16 b).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is not 16 or 32.
    pub fn fp_add(&self, bits: u32) -> f64 {
        match bits {
            32 => 0.9,
            16 => 0.4,
            _ => panic!("no FP{bits} add energy in Table I"),
        }
    }

    /// Floating-point multiply energy (pJ) (Table I: 3.7 pJ @ 32 b,
    /// 1.1 pJ @ 16 b).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is not 16 or 32.
    pub fn fp_mul(&self, bits: u32) -> f64 {
        match bits {
            32 => 3.7,
            16 => 1.1,
            _ => panic!("no FP{bits} mul energy in Table I"),
        }
    }

    /// Fixed-point add energy (pJ). Table I gives 0.1 @ 32 b, 0.05 @ 16 b,
    /// 0.03 @ 8 b; 4-bit extrapolates the ~linear trend to 0.015 pJ.
    pub fn fixed_add(&self, bits: u32) -> f64 {
        match bits {
            32 => 0.1,
            16 => 0.05,
            12 => 0.04,
            8 => 0.03,
            4 => 0.015,
            _ => panic!("no INT{bits} add energy"),
        }
    }

    /// Fixed-point multiply energy (pJ). Table I gives 3.1 @ 32 b,
    /// 1.55 @ 16 b, 0.2 @ 8 b; multipliers scale ~quadratically so 4-bit
    /// extrapolates to 0.05 pJ and 12-bit interpolates to 0.45 pJ.
    pub fn fixed_mul(&self, bits: u32) -> f64 {
        match bits {
            32 => 3.1,
            16 => 1.55,
            12 => 0.45,
            8 => 0.2,
            4 => 0.05,
            _ => panic!("no INT{bits} mul energy"),
        }
    }

    /// Energy of one fixed-point multiply-accumulate at the given width.
    pub fn fixed_mac(&self, bits: u32) -> f64 {
        self.fixed_mul(bits) + self.fixed_add(bits.max(8))
    }

    /// Energy of one floating-point multiply-accumulate at the given width.
    pub fn fp_mac(&self, bits: u32) -> f64 {
        self.fp_mul(bits) + self.fp_add(bits)
    }

    /// DRAM traffic energy for `bytes` bytes.
    pub fn dram(&self, bytes: f64) -> f64 {
        bytes * self.dram_pj_per_byte
    }

    /// Large-SRAM traffic energy for `bytes` bytes.
    pub fn sram(&self, bytes: f64) -> f64 {
        bytes * self.sram_pj_per_byte
    }

    /// Small local-buffer traffic energy for `bytes` bytes.
    pub fn local_buf(&self, bytes: f64) -> f64 {
        bytes * self.local_buf_pj_per_byte
    }

    /// Relative cost of an operation versus the INT8 fixed add baseline,
    /// reproducing Table I's "Relative costs" column.
    pub fn relative_cost(&self, energy_pj: f64) -> f64 {
        energy_pj / self.fixed_add(8)
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel::tsmc45()
    }
}

/// One row of Table I, for regenerating the table verbatim.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// Data bit width.
    pub bits: u32,
    /// Operation description.
    pub operation: &'static str,
    /// Energy in pJ (or pJ for the DRAM midpoint).
    pub energy_pj: f64,
    /// Cost relative to an 8-bit fixed-point add.
    pub relative: f64,
}

/// Regenerates every row of Table I from the model.
pub fn table1_rows(model: &EnergyModel) -> Vec<Table1Row> {
    let mk = |bits, operation, energy_pj: f64| Table1Row {
        bits,
        operation,
        energy_pj,
        relative: model.relative_cost(energy_pj),
    };
    vec![
        mk(32, "Floating-point ADD", model.fp_add(32)),
        mk(32, "Floating-point MUL", model.fp_mul(32)),
        mk(32, "Fixed-point ADD", model.fixed_add(32)),
        mk(32, "Fixed-point MUL", model.fixed_mul(32)),
        mk(32, "DRAM access (per 4B)", model.dram(4.0)),
        mk(16, "Floating-point ADD", model.fp_add(16)),
        mk(16, "Floating-point MUL", model.fp_mul(16)),
        mk(16, "Fixed-point ADD", model.fixed_add(16)),
        mk(16, "Fixed-point MUL", model.fixed_mul(16)),
        mk(16, "DRAM access (per 2B)", model.dram(2.0)),
        mk(8, "Fixed-point ADD", model.fixed_add(8)),
        mk(8, "Fixed-point MUL", model.fixed_mul(8)),
        mk(8, "DRAM access (per 1B)", model.dram(1.0)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_constants() {
        let e = EnergyModel::tsmc45();
        assert_eq!(e.fp_add(32), 0.9);
        assert_eq!(e.fp_mul(32), 3.7);
        assert_eq!(e.fixed_add(32), 0.1);
        assert_eq!(e.fixed_mul(32), 3.1);
        assert_eq!(e.fp_add(16), 0.4);
        assert_eq!(e.fp_mul(16), 1.1);
        assert_eq!(e.fixed_add(16), 0.05);
        assert_eq!(e.fixed_mul(16), 1.55);
        assert_eq!(e.fixed_add(8), 0.03);
        assert_eq!(e.fixed_mul(8), 0.2);
    }

    #[test]
    fn relative_costs_match_table1() {
        let e = EnergyModel::tsmc45();
        assert!((e.relative_cost(e.fp_add(32)) - 30.0).abs() < 1e-9);
        assert!((e.relative_cost(e.fp_mul(32)) - 123.333).abs() < 0.01);
        assert!((e.relative_cost(e.fixed_add(32)) - 3.333).abs() < 0.01);
        assert!((e.relative_cost(e.fixed_mul(8)) - 6.667).abs() < 0.01);
        assert!((e.relative_cost(e.fixed_add(16)) - 1.667).abs() < 0.01);
    }

    #[test]
    fn dram_dominates_compute() {
        // Table I's headline: a DRAM access costs thousands of INT8 adds.
        let e = EnergyModel::tsmc45();
        let rel = e.relative_cost(e.dram(1.0));
        assert!(rel > 5000.0 && rel < 11000.0, "rel={rel}");
    }

    #[test]
    fn narrower_is_cheaper() {
        let e = EnergyModel::tsmc45();
        assert!(e.fixed_mul(4) < e.fixed_mul(8));
        assert!(e.fixed_mul(8) < e.fixed_mul(12));
        assert!(e.fixed_mul(12) < e.fixed_mul(16));
        assert!(e.fixed_add(4) < e.fixed_add(8));
    }

    #[test]
    fn mac_energies() {
        let e = EnergyModel::tsmc45();
        assert!((e.fixed_mac(8) - 0.23).abs() < 1e-9);
        assert!((e.fp_mac(32) - 4.6).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "no FP8 add")]
    fn fp8_unsupported() {
        EnergyModel::tsmc45().fp_add(8);
    }

    #[test]
    fn table1_has_thirteen_rows() {
        let rows = table1_rows(&EnergyModel::tsmc45());
        assert_eq!(rows.len(), 13);
        assert!(rows.iter().any(|r| r.operation.contains("DRAM")));
    }
}
