//! Common result type produced by every platform simulator.

use crate::breakdown::{Component, EnergyBreakdown};
use crate::phase::{Phase, PhaseBreakdown};
use std::fmt;

/// The outcome of simulating one training iteration (minibatch) of one
/// workload on one platform.
///
/// All three platform models (Cambricon-Q, the TPU baseline, and the GPU
/// analytical model) produce this type, so speedup and energy-efficiency
/// comparisons are uniform.
///
/// # Examples
///
/// ```
/// use cq_sim::{Phase, PhaseBreakdown, EnergyBreakdown, SimResult};
///
/// let mut phases = PhaseBreakdown::new();
/// phases.charge(Phase::Forward, 2_000_000, 1e9);
/// let r = SimResult::new("Cambricon-Q", "AlexNet", 1.0, phases, EnergyBreakdown::new());
/// assert!((r.time_ms() - 2.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Platform name ("Cambricon-Q", "TPU", "GPU (TX2)", ...).
    pub platform: String,
    /// Workload name ("AlexNet", ...).
    pub workload: String,
    /// Clock frequency the cycle counts are relative to (GHz).
    pub freq_ghz: f64,
    /// Cycles and compute energy per training phase.
    pub phases: PhaseBreakdown,
    /// Energy by hardware component.
    pub energy: EnergyBreakdown,
}

impl SimResult {
    /// Creates a result.
    pub fn new(
        platform: impl Into<String>,
        workload: impl Into<String>,
        freq_ghz: f64,
        phases: PhaseBreakdown,
        energy: EnergyBreakdown,
    ) -> Self {
        SimResult {
            platform: platform.into(),
            workload: workload.into(),
            freq_ghz,
            phases,
            energy,
        }
    }

    /// Total cycles of the iteration.
    pub fn total_cycles(&self) -> u64 {
        self.phases.total_cycles()
    }

    /// Wall-clock time in milliseconds.
    pub fn time_ms(&self) -> f64 {
        self.total_cycles() as f64 / (self.freq_ghz * 1e9) * 1e3
    }

    /// Total energy in millijoules.
    pub fn total_energy_mj(&self) -> f64 {
        self.energy.total_mj()
    }

    /// Speedup of `self` over `other` (>1 means `self` is faster).
    pub fn speedup_over(&self, other: &SimResult) -> f64 {
        other.time_ms() / self.time_ms()
    }

    /// Energy-efficiency gain of `self` over `other` (>1 means `self`
    /// consumes less energy for the same work).
    pub fn energy_gain_over(&self, other: &SimResult) -> f64 {
        other.total_energy_mj() / self.total_energy_mj()
    }

    /// Serializes to one tab-separated line that [`SimResult::from_record`]
    /// decodes back *exactly* (floats use Rust's shortest-roundtrip `Debug`
    /// text), so journaled sweep cells resume bit-identical.
    ///
    /// Fields: platform, workload, freq_ghz, six per-phase cycle counts,
    /// six per-phase energies (pJ), four per-component energies (pJ).
    /// Platform/workload names must not contain tabs or newlines (none
    /// do; such a record would simply fail to decode).
    pub fn to_record(&self) -> String {
        let mut fields = vec![
            self.platform.clone(),
            self.workload.clone(),
            format!("{:?}", self.freq_ghz),
        ];
        for p in Phase::ALL {
            fields.push(self.phases.cycles(p).to_string());
        }
        for p in Phase::ALL {
            fields.push(format!("{:?}", self.phases.energy_pj(p)));
        }
        for c in Component::ALL {
            fields.push(format!("{:?}", self.energy.energy_pj(c)));
        }
        fields.join("\t")
    }

    /// Decodes a line produced by [`SimResult::to_record`]; `None` for
    /// anything malformed (wrong field count, unparsable numbers).
    pub fn from_record(record: &str) -> Option<SimResult> {
        let fields: Vec<&str> = record.split('\t').collect();
        if fields.len() != 3 + 6 + 6 + 4 {
            return None;
        }
        let freq_ghz: f64 = fields[2].parse().ok()?;
        let mut phases = PhaseBreakdown::new();
        for (i, p) in Phase::ALL.into_iter().enumerate() {
            let cycles: u64 = fields[3 + i].parse().ok()?;
            let pj: f64 = fields[9 + i].parse().ok()?;
            phases.charge(p, cycles, pj);
        }
        let mut energy = EnergyBreakdown::new();
        for (i, c) in Component::ALL.into_iter().enumerate() {
            let pj: f64 = fields[15 + i].parse().ok()?;
            energy.charge(c, pj);
        }
        Some(SimResult::new(
            fields[0], fields[1], freq_ghz, phases, energy,
        ))
    }
}

impl fmt::Display for SimResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{}: {:.3} ms, {:.3} mJ",
            self.platform,
            self.workload,
            self.time_ms(),
            self.total_energy_mj()
        )
    }
}

/// Geometric mean of a slice of ratios (the paper averages speedups and
/// efficiency gains across benchmarks).
///
/// Returns 0.0 for an empty slice.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phase::Phase;

    fn result(cycles: u64, energy_pj: f64) -> SimResult {
        let mut phases = PhaseBreakdown::new();
        phases.charge(Phase::Forward, cycles, 0.0);
        let mut energy = EnergyBreakdown::new();
        energy.charge(crate::breakdown::Component::Acc, energy_pj);
        SimResult::new("P", "W", 1.0, phases, energy)
    }

    #[test]
    fn time_from_cycles() {
        let r = result(1_000_000, 0.0);
        assert!((r.time_ms() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn speedup_and_energy_gain() {
        let fast = result(1_000, 100.0);
        let slow = result(4_000, 500.0);
        assert!((fast.speedup_over(&slow) - 4.0).abs() < 1e-12);
        assert!((fast.energy_gain_over(&slow) - 5.0).abs() < 1e-12);
        assert!((slow.speedup_over(&fast) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn geomean_known() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn record_roundtrip_is_exact() {
        let mut phases = PhaseBreakdown::new();
        phases.charge(Phase::Forward, 12_345, 0.1 + 0.2); // deliberately non-representable
        phases.charge(Phase::Quantize, 7, 1e-300);
        let mut energy = EnergyBreakdown::new();
        energy.charge(crate::breakdown::Component::DdrDynamic, 1.0 / 3.0);
        let r = SimResult::new("Cambricon-Q", "ResNet18", 1.5, phases, energy);
        let decoded = SimResult::from_record(&r.to_record()).unwrap();
        assert_eq!(r, decoded, "round-trip must be bit-exact");
        assert_eq!(r.to_record(), decoded.to_record());
    }

    #[test]
    fn record_rejects_malformed_lines() {
        let r = result(100, 5.0);
        let rec = r.to_record();
        assert!(SimResult::from_record("").is_none());
        assert!(SimResult::from_record("a\tb\tc").is_none());
        let truncated = rec.rsplit_once('\t').unwrap().0;
        assert!(SimResult::from_record(truncated).is_none());
        let mangled = rec.replace('\t', "|");
        assert!(SimResult::from_record(&mangled).is_none());
        let extra = format!("{rec}\t1.0");
        assert!(SimResult::from_record(&extra).is_none());
        let bad_num = rec.replacen("100", "10O", 1);
        assert!(SimResult::from_record(&bad_num).is_none());
    }

    #[test]
    fn display_contains_units() {
        let r = result(500, 42.0);
        let s = r.to_string();
        assert!(s.contains("ms") && s.contains("mJ"));
    }
}
