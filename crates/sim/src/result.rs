//! Common result type produced by every platform simulator.

use crate::breakdown::EnergyBreakdown;
use crate::phase::PhaseBreakdown;
use std::fmt;

/// The outcome of simulating one training iteration (minibatch) of one
/// workload on one platform.
///
/// All three platform models (Cambricon-Q, the TPU baseline, and the GPU
/// analytical model) produce this type, so speedup and energy-efficiency
/// comparisons are uniform.
///
/// # Examples
///
/// ```
/// use cq_sim::{Phase, PhaseBreakdown, EnergyBreakdown, SimResult};
///
/// let mut phases = PhaseBreakdown::new();
/// phases.charge(Phase::Forward, 2_000_000, 1e9);
/// let r = SimResult::new("Cambricon-Q", "AlexNet", 1.0, phases, EnergyBreakdown::new());
/// assert!((r.time_ms() - 2.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Platform name ("Cambricon-Q", "TPU", "GPU (TX2)", ...).
    pub platform: String,
    /// Workload name ("AlexNet", ...).
    pub workload: String,
    /// Clock frequency the cycle counts are relative to (GHz).
    pub freq_ghz: f64,
    /// Cycles and compute energy per training phase.
    pub phases: PhaseBreakdown,
    /// Energy by hardware component.
    pub energy: EnergyBreakdown,
}

impl SimResult {
    /// Creates a result.
    pub fn new(
        platform: impl Into<String>,
        workload: impl Into<String>,
        freq_ghz: f64,
        phases: PhaseBreakdown,
        energy: EnergyBreakdown,
    ) -> Self {
        SimResult {
            platform: platform.into(),
            workload: workload.into(),
            freq_ghz,
            phases,
            energy,
        }
    }

    /// Total cycles of the iteration.
    pub fn total_cycles(&self) -> u64 {
        self.phases.total_cycles()
    }

    /// Wall-clock time in milliseconds.
    pub fn time_ms(&self) -> f64 {
        self.total_cycles() as f64 / (self.freq_ghz * 1e9) * 1e3
    }

    /// Total energy in millijoules.
    pub fn total_energy_mj(&self) -> f64 {
        self.energy.total_mj()
    }

    /// Speedup of `self` over `other` (>1 means `self` is faster).
    pub fn speedup_over(&self, other: &SimResult) -> f64 {
        other.time_ms() / self.time_ms()
    }

    /// Energy-efficiency gain of `self` over `other` (>1 means `self`
    /// consumes less energy for the same work).
    pub fn energy_gain_over(&self, other: &SimResult) -> f64 {
        other.total_energy_mj() / self.total_energy_mj()
    }
}

impl fmt::Display for SimResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{}: {:.3} ms, {:.3} mJ",
            self.platform,
            self.workload,
            self.time_ms(),
            self.total_energy_mj()
        )
    }
}

/// Geometric mean of a slice of ratios (the paper averages speedups and
/// efficiency gains across benchmarks).
///
/// Returns 0.0 for an empty slice.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phase::Phase;

    fn result(cycles: u64, energy_pj: f64) -> SimResult {
        let mut phases = PhaseBreakdown::new();
        phases.charge(Phase::Forward, cycles, 0.0);
        let mut energy = EnergyBreakdown::new();
        energy.charge(crate::breakdown::Component::Acc, energy_pj);
        SimResult::new("P", "W", 1.0, phases, energy)
    }

    #[test]
    fn time_from_cycles() {
        let r = result(1_000_000, 0.0);
        assert!((r.time_ms() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn speedup_and_energy_gain() {
        let fast = result(1_000, 100.0);
        let slow = result(4_000, 500.0);
        assert!((fast.speedup_over(&slow) - 4.0).abs() < 1e-12);
        assert!((fast.energy_gain_over(&slow) - 5.0).abs() < 1e-12);
        assert!((slow.speedup_over(&fast) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn geomean_known() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn display_contains_units() {
        let r = result(500, 42.0);
        let s = r.to_string();
        assert!(s.contains("ms") && s.contains("mJ"));
    }
}
