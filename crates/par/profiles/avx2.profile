# cq-tune gemm profile v1
simd = avx2
mr = 6
nr = 16
kc = 512
mc = 144
nc = 2048
