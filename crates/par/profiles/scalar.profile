# cq-tune gemm profile v1
simd = scalar
mr = 6
nr = 16
kc = 128
mc = 72
nc = 512
