//! Three-level cache-blocked GEMM: micro-kernel × register tile below,
//! KC/MC/NC panel blocking above, pool banding on top.
//!
//! The loop nest is the classic BLIS/GotoBLAS structure, parameterized by
//! the active [`GemmPlan`] (see [`crate::tune`]):
//!
//! ```text
//! for jc in 0..n  step NC      // B column block   → packed once per (jc,pc)
//!   for pc in 0..k step KC     // reduction block  → accumulate after the first
//!     pack B[pc.., jc..]  (KC × NC, NR-column panels)
//!     for ic in 0..m step MC   // A row block      → packed, reused over NC cols
//!       pack A[ic.., pc..] (MC × KC, MR-row interleaved panels)
//!       for jr step NR · for ir step MR:
//!         micro-kernel: C[ic+ir.., jc+jr..] (+)= A-panel × B-panel
//! ```
//!
//! Packing rewrites both operands so the micro-kernel streams two short
//! contiguous loads per `MR·NR` multiply-accumulates, and the KC/MC/NC
//! blocks keep the panels resident in L1/L2 while they are reused. The
//! packer reads A and B through a strided [`MatRef`] view, so
//! [`gemm_at`] (A stored `[k, m]`) and [`gemm_bt`] (B stored `[n, k]`)
//! pack their transposed operand *directly* — no scratch transpose
//! materialization and no extra pass over memory.
//!
//! Parallelism still partitions output rows across the [`Pool`]: bands
//! are disjoint `&mut` slices running the full blocked nest.
//!
//! # Determinism
//!
//! Every output element is accumulated over `k` in ascending index
//! order: the `pc` blocks advance in order and each micro-kernel sums
//! its block ascending. Banding, blocking and thread count change which
//! elements are computed *together*, never the per-element operation
//! sequence — so results are bitwise identical across thread counts and
//! tile shapes *within* one SIMD level. Across levels (or vs the naive
//! backend) the FMA kernels differ by fused-rounding only, inside the
//! documented `k · amax · bmax · 8ε` parity tolerance.

// Micro-kernel invocations are raw-pointer calls (see microkernel.rs);
// every call site documents the bounds that make it sound.
#![allow(unsafe_code)]

use crate::microkernel::{MAX_MR, MAX_NR};
use crate::pool::Pool;
use crate::tune::{active_plan, GemmPlan};

/// Minimum multiply-accumulate count before a GEMM fans out to the pool;
/// below this, scoped-thread spawn overhead (~tens of µs) dominates.
/// Shared with the i8 path (`gemm_i8.rs`), whose per-MAC cost is lower
/// still, so the threshold is if anything conservative there.
pub(crate) const PAR_MIN_MACS: usize = 1 << 18;

/// A strided read-only matrix view: element `(r, c)` lives at
/// `data[off + r·rs + c·cs]`. Lets one packer serve row-major A,
/// column-stored Aᵀ and row-stored Bᵀ without materializing transposes.
#[derive(Clone, Copy)]
struct MatRef<'a> {
    data: &'a [f32],
    off: usize,
    rs: usize,
    cs: usize,
}

impl<'a> MatRef<'a> {
    fn row_major(data: &'a [f32], cols: usize) -> Self {
        MatRef {
            data,
            off: 0,
            rs: cols,
            cs: 1,
        }
    }

    /// View of the same matrix starting `r0` rows down.
    fn band(self, r0: usize) -> Self {
        MatRef {
            off: self.off + r0 * self.rs,
            ..self
        }
    }

    #[inline(always)]
    fn idx(&self, r: usize, c: usize) -> usize {
        self.off + r * self.rs + c * self.cs
    }
}

/// Packs the `mcb × kcb` block of `a` at `(i0, p0)` into `MR`-interleaved
/// panels: panel `ib` holds rows `i0 + ib·mr ..`, laid out `p`-major as
/// `dst[ib·kcb·mr + p·mr + ii]`. Ragged final panels are zero-padded —
/// padded lanes only ever land in discarded accumulators.
fn pack_a(a: MatRef<'_>, i0: usize, p0: usize, mcb: usize, kcb: usize, mr: usize, dst: &mut [f32]) {
    for ib in 0..mcb.div_ceil(mr) {
        let panel = &mut dst[ib * kcb * mr..(ib + 1) * kcb * mr];
        let rows_here = mr.min(mcb - ib * mr);
        if rows_here < mr {
            panel.fill(0.0);
        }
        for ii in 0..rows_here {
            let mut src = a.idx(i0 + ib * mr + ii, p0);
            for p in 0..kcb {
                panel[p * mr + ii] = a.data[src];
                src += a.cs;
            }
        }
    }
}

/// Packs the `kcb × ncb` block of `b` at `(p0, j0)` into `NR`-column
/// panels: panel `jb` holds columns `j0 + jb·nr ..`, laid out as
/// `dst[jb·kcb·nr + p·nr + jj]`, zero-padded on the ragged edge.
fn pack_b(b: MatRef<'_>, p0: usize, j0: usize, kcb: usize, ncb: usize, nr: usize, dst: &mut [f32]) {
    for jb in 0..ncb.div_ceil(nr) {
        let panel = &mut dst[jb * kcb * nr..(jb + 1) * kcb * nr];
        let cols_here = nr.min(ncb - jb * nr);
        if cols_here < nr {
            panel.fill(0.0);
        }
        if b.cs == 1 {
            for p in 0..kcb {
                let src = b.idx(p0 + p, j0 + jb * nr);
                panel[p * nr..p * nr + cols_here].copy_from_slice(&b.data[src..src + cols_here]);
            }
        } else {
            for p in 0..kcb {
                let mut src = b.idx(p0 + p, j0 + jb * nr);
                for jj in 0..cols_here {
                    panel[p * nr + jj] = b.data[src];
                    src += b.cs;
                }
            }
        }
    }
}

/// Where the blocked driver gets its packed A panels from.
enum ASource<'a> {
    /// Pack on the fly from a strided view.
    View(MatRef<'a>),
    /// Reuse panels packed once by [`PackedA::pack`].
    Packed(&'a PackedA),
}

/// The serial three-level loop nest over one band of output rows.
/// `out` is the row-major `rows × n` band; `a` covers exactly those rows.
fn gemm_blocked(
    plan: &GemmPlan,
    rows: usize,
    k: usize,
    n: usize,
    a: ASource<'_>,
    b: MatRef<'_>,
    out: &mut [f32],
) {
    let cfg = plan.cfg;
    let (mr, nr, kc, mc, nc) = (cfg.mr, cfg.nr, cfg.kc, cfg.mc, cfg.nc);
    let kern = plan.kern;

    let mut bp = vec![0.0f32; kc.min(k) * nc.min(n).div_ceil(nr) * nr];
    let mut ap = match a {
        ASource::View(_) => vec![0.0f32; kc.min(k) * mc.min(rows).div_ceil(mr) * mr],
        ASource::Packed(_) => Vec::new(),
    };
    let mut scratch = [0.0f32; MAX_MR * MAX_NR];

    let mut jc = 0;
    while jc < n {
        let ncb = nc.min(n - jc);
        let mut pc = 0;
        let mut pci = 0;
        while pc < k {
            let kcb = kc.min(k - pc);
            pack_b(b, pc, jc, kcb, ncb, nr, &mut bp);
            // After the first reduction block, micro-kernels add into C.
            let acc = pci > 0;
            let mut ic = 0;
            let mut ici = 0;
            while ic < rows {
                let mcb = mc.min(rows - ic);
                let a_panels: &[f32] = match &a {
                    ASource::View(v) => {
                        pack_a(*v, ic, pc, mcb, kcb, mr, &mut ap);
                        &ap
                    }
                    ASource::Packed(p) => p.block(pci, ici),
                };
                let mut jr = 0;
                while jr < ncb {
                    let nrb = nr.min(ncb - jr);
                    let bpanel = &bp[(jr / nr) * kcb * nr..];
                    let mut ir = 0;
                    while ir < mcb {
                        let mrb = mr.min(mcb - ir);
                        let apanel = &a_panels[(ir / mr) * kcb * mr..];
                        let (row, col) = (ic + ir, jc + jr);
                        if mrb == mr && nrb == nr {
                            // SAFETY: apanel/bpanel hold ≥ kcb·mr / kcb·nr
                            // floats (full panels exist for full tiles);
                            // rows row..row+mr and cols col..col+nr are in
                            // bounds, so every write `i·n + j` from the
                            // tile base stays inside `out`.
                            unsafe {
                                kern(
                                    kcb,
                                    apanel.as_ptr(),
                                    bpanel.as_ptr(),
                                    out.as_mut_ptr().add(row * n + col),
                                    n,
                                    acc,
                                );
                            }
                        } else {
                            // Ragged edge: compute the full zero-padded
                            // tile into scratch, then copy/add the valid
                            // `mrb × nrb` corner.
                            // SAFETY: panels as above (zero-padded to full
                            // size); scratch holds MAX_MR·MAX_NR ≥ mr·nr
                            // floats at ldc = nr.
                            unsafe {
                                kern(
                                    kcb,
                                    apanel.as_ptr(),
                                    bpanel.as_ptr(),
                                    scratch.as_mut_ptr(),
                                    nr,
                                    false,
                                );
                            }
                            for ii in 0..mrb {
                                let o = (row + ii) * n + col;
                                let s = &scratch[ii * nr..ii * nr + nrb];
                                if acc {
                                    for (ov, &sv) in out[o..o + nrb].iter_mut().zip(s) {
                                        *ov += sv;
                                    }
                                } else {
                                    out[o..o + nrb].copy_from_slice(s);
                                }
                            }
                        }
                        ir += mr;
                    }
                    jr += nr;
                }
                ic += mc;
                ici += 1;
            }
            pc += kc;
            pci += 1;
        }
        jc += nc;
    }
}

/// Shared entry: handles degenerate shapes and the serial/banded split.
#[allow(clippy::too_many_arguments)]
fn run(
    plan: &GemmPlan,
    m: usize,
    k: usize,
    n: usize,
    a: MatRef<'_>,
    b: MatRef<'_>,
    out: &mut [f32],
    pool: &Pool,
) {
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        out.fill(0.0);
        return;
    }
    let min_rows = 4 * plan.cfg.mr;
    if pool.threads() == 1 || m * n * k < PAR_MIN_MACS {
        gemm_blocked(plan, m, k, n, ASource::View(a), b, out);
    } else {
        pool.parallel_row_chunks(out, n, min_rows, |first_row, band| {
            let rows = band.len() / n;
            gemm_blocked(plan, rows, k, n, ASource::View(a.band(first_row)), b, band);
        });
    }
}

/// `out[m,n] = a[m,k] × b[k,n]`, all row-major, using the process-wide
/// [`active_plan`].
///
/// # Panics
///
/// Panics if slice lengths disagree with the dimensions.
///
/// # Examples
///
/// ```
/// use cq_par::{gemm, Pool};
/// let a = [1.0f32, 2.0, 3.0, 4.0, 5.0, 6.0]; // 2x3
/// let b = [7.0f32, 8.0, 9.0, 10.0, 11.0, 12.0]; // 3x2
/// let mut out = [0.0f32; 4];
/// gemm(2, 3, 2, &a, &b, &mut out, Pool::global());
/// assert_eq!(out, [58.0, 64.0, 139.0, 154.0]);
/// ```
pub fn gemm(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32], pool: &Pool) {
    gemm_with_plan(active_plan(), m, k, n, a, b, out, pool);
}

/// [`gemm`] with an explicit plan (used by the autotuner and parity tests).
///
/// # Panics
///
/// Panics if slice lengths disagree with the dimensions.
#[allow(clippy::too_many_arguments)]
pub fn gemm_with_plan(
    plan: &GemmPlan,
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    pool: &Pool,
) {
    assert_eq!(a.len(), m * k, "gemm: a length");
    assert_eq!(b.len(), k * n, "gemm: b length");
    assert_eq!(out.len(), m * n, "gemm: out length");
    run(
        plan,
        m,
        k,
        n,
        MatRef::row_major(a, k),
        MatRef::row_major(b, n),
        out,
        pool,
    );
}

/// `out[m,n] = aᵀ × b` for `a[k,m]`, `b[k,n]` (the weight-gradient shape).
///
/// Aᵀ is packed directly from its `[k, m]` storage (column stride `m`)
/// by the panel packer — no transpose materialization.
///
/// # Panics
///
/// Panics if slice lengths disagree with the dimensions.
pub fn gemm_at(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32], pool: &Pool) {
    gemm_at_with_plan(active_plan(), m, k, n, a, b, out, pool);
}

/// [`gemm_at`] with an explicit plan.
///
/// # Panics
///
/// Panics if slice lengths disagree with the dimensions.
#[allow(clippy::too_many_arguments)]
pub fn gemm_at_with_plan(
    plan: &GemmPlan,
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    pool: &Pool,
) {
    assert_eq!(a.len(), k * m, "gemm_at: a length");
    assert_eq!(b.len(), k * n, "gemm_at: b length");
    assert_eq!(out.len(), m * n, "gemm_at: out length");
    // Element (i, p) of Aᵀ is a[p·m + i]: row stride 1, column stride m.
    let at = MatRef {
        data: a,
        off: 0,
        rs: 1,
        cs: m,
    };
    run(plan, m, k, n, at, MatRef::row_major(b, n), out, pool);
}

/// `out[m,n] = a × bᵀ` for `a[m,k]`, `b[n,k]` (the neuron-gradient shape).
///
/// Bᵀ is packed directly from its `[n, k]` storage (column stride `k`)
/// by the panel packer — no transpose materialization.
///
/// # Panics
///
/// Panics if slice lengths disagree with the dimensions.
pub fn gemm_bt(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32], pool: &Pool) {
    gemm_bt_with_plan(active_plan(), m, k, n, a, b, out, pool);
}

/// [`gemm_bt`] with an explicit plan.
///
/// # Panics
///
/// Panics if slice lengths disagree with the dimensions.
#[allow(clippy::too_many_arguments)]
pub fn gemm_bt_with_plan(
    plan: &GemmPlan,
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    pool: &Pool,
) {
    assert_eq!(a.len(), m * k, "gemm_bt: a length");
    assert_eq!(b.len(), n * k, "gemm_bt: b length");
    assert_eq!(out.len(), m * n, "gemm_bt: out length");
    // Element (p, j) of Bᵀ is b[j·k + p]: row stride 1, column stride k.
    let bt = MatRef {
        data: b,
        off: 0,
        rs: 1,
        cs: k,
    };
    run(plan, m, k, n, MatRef::row_major(a, k), bt, out, pool);
}

/// A's panels packed once for reuse across many GEMMs with the same left
/// operand — the im2col conv paths multiply one weight matrix against a
/// per-image patch matrix, so packing W per *call* wastes `O(m·k)` work
/// per image.
///
/// Built by [`PackedA::pack`] / [`PackedA::pack_transposed`] and consumed
/// by [`gemm_prepacked`]. The panel grid (KC × MC blocks) follows the
/// plan used at pack time, so prepacked results are bitwise identical to
/// [`gemm_with_plan`] with the same plan.
pub struct PackedA {
    plan: GemmPlan,
    m: usize,
    k: usize,
    n_ic: usize,
    data: Vec<f32>,
    /// Start of each `(pci, ici)` block in `data`, plus an end sentinel.
    offsets: Vec<usize>,
}

impl PackedA {
    /// Packs row-major `a[m, k]`.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != m * k`.
    pub fn pack(plan: &GemmPlan, m: usize, k: usize, a: &[f32]) -> PackedA {
        assert_eq!(a.len(), m * k, "PackedA::pack: a length");
        Self::pack_view(plan, m, k, MatRef::row_major(a, k))
    }

    /// Packs `aᵀ` for `a` stored `[k, m]` (the grad-input weight shape).
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != k * m`.
    pub fn pack_transposed(plan: &GemmPlan, m: usize, k: usize, a: &[f32]) -> PackedA {
        assert_eq!(a.len(), k * m, "PackedA::pack_transposed: a length");
        Self::pack_view(
            plan,
            m,
            k,
            MatRef {
                data: a,
                off: 0,
                rs: 1,
                cs: m,
            },
        )
    }

    fn pack_view(plan: &GemmPlan, m: usize, k: usize, a: MatRef<'_>) -> PackedA {
        let (mr, kc, mc) = (plan.cfg.mr, plan.cfg.kc, plan.cfg.mc);
        let n_pc = k.div_ceil(kc);
        let n_ic = m.div_ceil(mc);
        let mut data = Vec::new();
        let mut offsets = Vec::with_capacity(n_pc * n_ic + 1);
        for pci in 0..n_pc {
            let pc = pci * kc;
            let kcb = kc.min(k - pc);
            for ici in 0..n_ic {
                let ic = ici * mc;
                let mcb = mc.min(m - ic);
                offsets.push(data.len());
                let len = mcb.div_ceil(mr) * kcb * mr;
                data.resize(data.len() + len, 0.0);
                let start = data.len() - len;
                pack_a(a, ic, pc, mcb, kcb, mr, &mut data[start..]);
            }
        }
        offsets.push(data.len());
        PackedA {
            plan: *plan,
            m,
            k,
            n_ic,
            data,
            offsets,
        }
    }

    /// Rows of the packed operand.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Reduction length of the packed operand.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Panels of block `(pci, ici)`.
    fn block(&self, pci: usize, ici: usize) -> &[f32] {
        let i = pci * self.n_ic + ici;
        &self.data[self.offsets[i]..self.offsets[i + 1]]
    }
}

/// Serial GEMM reusing pre-packed A panels: `out[m,n] = A × b[k,n]` with
/// `(m, k)` and the plan taken from `packed`. Bitwise identical to
/// [`gemm_with_plan`] with the same plan on 1 thread.
///
/// Serial by design: the conv paths call it per image *inside* a pool
/// fan-out over the batch.
///
/// # Panics
///
/// Panics if slice lengths disagree with the packed dimensions.
pub fn gemm_prepacked(packed: &PackedA, n: usize, b: &[f32], out: &mut [f32]) {
    let (m, k) = (packed.m, packed.k);
    assert_eq!(b.len(), k * n, "gemm_prepacked: b length");
    assert_eq!(out.len(), m * n, "gemm_prepacked: out length");
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        out.fill(0.0);
        return;
    }
    gemm_blocked(
        &packed.plan,
        m,
        k,
        n,
        ASource::Packed(packed),
        MatRef::row_major(b, n),
        out,
    );
}

/// Blocked transpose: `dst[cols,rows] = srcᵀ` for row-major `src[rows,cols]`.
///
/// # Panics
///
/// Panics if slice lengths disagree with the dimensions.
pub fn transpose(src: &[f32], rows: usize, cols: usize, dst: &mut [f32]) {
    assert_eq!(src.len(), rows * cols, "transpose: src length");
    assert_eq!(dst.len(), rows * cols, "transpose: dst length");
    const B: usize = 32;
    let mut r0 = 0;
    while r0 < rows {
        let r1 = (r0 + B).min(rows);
        let mut c0 = 0;
        while c0 < cols {
            let c1 = (c0 + B).min(cols);
            for r in r0..r1 {
                for c in c0..c1 {
                    dst[c * rows + r] = src[r * cols + c];
                }
            }
            c0 = c1;
        }
        r0 = r1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::microkernel::{SimdLevel, SUPPORTED_TILES};
    use crate::tune::TileConfig;
    use proptest::prelude::*;

    fn naive(m: usize, k: usize, n: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for p in 0..k {
                    acc += a[i * k + p] * b[p * n + j];
                }
                out[i * n + j] = acc;
            }
        }
        out
    }

    fn fill(len: usize, seed: u32) -> Vec<f32> {
        // Small LCG: exact-in-f32 values (1/16 steps, |v| < 8) so every
        // association — and even fused multiply-adds — produces the same
        // bits, making tiled results comparable to naive with equality.
        let mut s = seed;
        (0..len)
            .map(|_| {
                s = s.wrapping_mul(1664525).wrapping_add(1013904223);
                ((s >> 24) as f32 - 128.0) / 16.0
            })
            .collect()
    }

    /// Plans covering all supported tiles, degenerate blocking (every
    /// block boundary exercised) and the active level's defaults.
    fn test_plans() -> Vec<GemmPlan> {
        let mut levels = vec![SimdLevel::Scalar];
        let detected = crate::microkernel::simd_level();
        if detected != SimdLevel::Scalar {
            levels.push(detected);
        }
        let mut plans = Vec::new();
        for level in levels {
            for &(mr, nr) in &SUPPORTED_TILES {
                // Tiny blocks: many KC/MC/NC iterations even on small inputs.
                plans.push(
                    GemmPlan::new(
                        level,
                        TileConfig {
                            mr,
                            nr,
                            kc: 3,
                            mc: mr,
                            nc: nr,
                        },
                    )
                    .unwrap(),
                );
                // Moderate blocks: partial edge blocks on test shapes.
                plans.push(
                    GemmPlan::new(
                        level,
                        TileConfig {
                            mr,
                            nr,
                            kc: 16,
                            mc: 2 * mr + 1,
                            nc: 2 * nr + 3,
                        },
                    )
                    .unwrap(),
                );
            }
            plans.push(GemmPlan::new(level, crate::tune::default_profile(level).1).unwrap());
        }
        plans
    }

    #[test]
    fn matches_naive_on_awkward_shapes() {
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (4, 8, 8),
            (5, 7, 9),
            (13, 1, 17),
            (1, 64, 1),
            (33, 12, 41),
            (8, 100, 3),
        ] {
            let a = fill(m * k, 1 + m as u32);
            let b = fill(k * n, 99 + n as u32);
            let mut out = vec![0.0f32; m * n];
            for threads in [1, 4] {
                gemm(m, k, n, &a, &b, &mut out, &Pool::new(threads));
                assert_eq!(out, naive(m, k, n, &a, &b), "{m}x{k}x{n} t{threads}");
            }
        }
    }

    #[test]
    fn matches_naive_across_plans() {
        // Exact fill values make every kernel/blocking combination
        // directly comparable to naive with equality.
        for &(m, k, n) in &[(5usize, 7usize, 9usize), (17, 23, 19), (33, 40, 31)] {
            let a = fill(m * k, 2 + m as u32);
            let b = fill(k * n, 7 + n as u32);
            let want = naive(m, k, n, &a, &b);
            for plan in test_plans() {
                let mut out = vec![-1.0f32; m * n];
                gemm_with_plan(&plan, m, k, n, &a, &b, &mut out, &Pool::new(1));
                assert_eq!(out, want, "{m}x{k}x{n} plan {}", plan.describe());
            }
        }
    }

    #[test]
    fn zero_k_yields_zero_output() {
        let mut out = vec![1.0f32; 6];
        gemm(2, 0, 3, &[], &[], &mut out, &Pool::new(2));
        assert_eq!(out, vec![0.0; 6]);
    }

    #[test]
    fn empty_output_is_noop() {
        let mut out = vec![];
        gemm(0, 5, 3, &[], &fill(15, 3), &mut out, &Pool::new(2));
        gemm(3, 5, 0, &fill(15, 3), &[], &mut out, &Pool::new(2));
    }

    #[test]
    fn transposed_variants_match_explicit_transpose() {
        let (m, k, n) = (9, 11, 7);
        let a_t = fill(k * m, 5); // a stored as [k, m]
        let b = fill(k * n, 6);
        let b_t = fill(n * k, 7); // b stored as [n, k]
        let a = fill(m * k, 8);
        let pool = Pool::new(2);

        let mut at = vec![0.0; m * k];
        transpose(&a_t, k, m, &mut at);
        let mut got = vec![0.0; m * n];
        gemm_at(m, k, n, &a_t, &b, &mut got, &pool);
        assert_eq!(got, naive(m, k, n, &at, &b));

        let mut bt = vec![0.0; k * n];
        transpose(&b_t, n, k, &mut bt);
        gemm_bt(m, k, n, &a, &b_t, &mut got, &pool);
        assert_eq!(got, naive(m, k, n, &a, &bt));
    }

    #[test]
    fn transposed_variants_match_across_plans() {
        let (m, k, n) = (13, 19, 11);
        let a_t = fill(k * m, 15);
        let b = fill(k * n, 16);
        let b_t = fill(n * k, 17);
        let a = fill(m * k, 18);
        let mut at = vec![0.0; m * k];
        transpose(&a_t, k, m, &mut at);
        let mut bt = vec![0.0; k * n];
        transpose(&b_t, n, k, &mut bt);
        let want_at = naive(m, k, n, &at, &b);
        let want_bt = naive(m, k, n, &a, &bt);
        for plan in test_plans() {
            let mut got = vec![0.0; m * n];
            gemm_at_with_plan(&plan, m, k, n, &a_t, &b, &mut got, &Pool::new(1));
            assert_eq!(got, want_at, "gemm_at plan {}", plan.describe());
            gemm_bt_with_plan(&plan, m, k, n, &a, &b_t, &mut got, &Pool::new(1));
            assert_eq!(got, want_bt, "gemm_bt plan {}", plan.describe());
        }
    }

    #[test]
    fn prepacked_matches_gemm_bitwise() {
        for plan in test_plans() {
            let (m, k) = (21, 29);
            let a = fill(m * k, 31);
            let a_t = fill(k * m, 32);
            let packed = PackedA::pack(&plan, m, k, &a);
            let packed_t = PackedA::pack_transposed(&plan, m, k, &a_t);
            assert_eq!((packed.m(), packed.k()), (m, k));
            for n in [1usize, 8, 13] {
                let b = fill(k * n, 40 + n as u32);
                let mut want = vec![0.0; m * n];
                gemm_with_plan(&plan, m, k, n, &a, &b, &mut want, &Pool::new(1));
                let mut got = vec![-1.0; m * n];
                gemm_prepacked(&packed, n, &b, &mut got);
                assert_eq!(got, want, "prepacked n={n} plan {}", plan.describe());

                gemm_at_with_plan(&plan, m, k, n, &a_t, &b, &mut want, &Pool::new(1));
                gemm_prepacked(&packed_t, n, &b, &mut got);
                assert_eq!(got, want, "prepacked_t n={n} plan {}", plan.describe());
            }
        }
    }

    #[test]
    fn prepacked_degenerate_shapes() {
        let plan = *active_plan();
        let packed = PackedA::pack(&plan, 0, 5, &[]);
        gemm_prepacked(&packed, 3, &fill(15, 3), &mut []);
        let packed = PackedA::pack(&plan, 2, 0, &[]);
        let mut out = vec![1.0f32; 6];
        gemm_prepacked(&packed, 3, &[], &mut out);
        assert_eq!(out, vec![0.0; 6]);
    }

    #[test]
    fn large_gemm_parallel_matches_serial() {
        let (m, k, n) = (70, 90, 65); // > PAR_MIN_MACS, all edges in play
        let a = fill(m * k, 11);
        let b = fill(k * n, 12);
        let mut serial = vec![0.0; m * n];
        let mut par = vec![0.0; m * n];
        gemm(m, k, n, &a, &b, &mut serial, &Pool::new(1));
        gemm(m, k, n, &a, &b, &mut par, &Pool::new(8));
        assert_eq!(serial, par);
    }

    #[test]
    fn transpose_roundtrip() {
        let src = fill(5 * 9, 42);
        let mut t = vec![0.0; 45];
        let mut back = vec![0.0; 45];
        transpose(&src, 5, 9, &mut t);
        transpose(&t, 9, 5, &mut back);
        assert_eq!(src, back);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Panel packing invariant on ragged/empty/single-row blocks:
        /// `panel[p·mr + ii]` is `a[(i0+ib·mr+ii), (p0+p)]` inside the
        /// block and exactly 0.0 in padded lanes.
        #[test]
        fn pack_a_layout_invariant(
            (rows, k) in (0usize..12, 1usize..15),
            (mri, frac_i, frac_p) in (0usize..SUPPORTED_TILES.len(), 0.0f32..1.0, 0.0f32..1.0),
            seed in 0u32..1000,
        ) {
            let mr = SUPPORTED_TILES[mri].0;
            let a = fill(rows * k, seed);
            let v = MatRef::row_major(&a, k);
            let i0 = ((rows as f32 * frac_i) as usize).min(rows);
            let p0 = ((k as f32 * frac_p) as usize).min(k - 1);
            let mcb = rows - i0;
            let kcb = k - p0;
            let mut dst = vec![f32::NAN; mcb.div_ceil(mr) * kcb * mr];
            pack_a(v, i0, p0, mcb, kcb, mr, &mut dst);
            for ib in 0..mcb.div_ceil(mr) {
                for p in 0..kcb {
                    for ii in 0..mr {
                        let got = dst[ib * kcb * mr + p * mr + ii];
                        let row = i0 + ib * mr + ii;
                        if ib * mr + ii < mcb {
                            prop_assert_eq!(got, a[row * k + p0 + p]);
                        } else {
                            prop_assert_eq!(got, 0.0);
                        }
                    }
                }
            }
        }

        /// Same invariant for B panels, including the strided (cs > 1)
        /// path used by `gemm_bt`.
        #[test]
        fn pack_b_layout_invariant(
            (k, n) in (1usize..15, 0usize..20),
            (nri, strided) in (0usize..SUPPORTED_TILES.len(), any::<bool>()),
            seed in 0u32..1000,
        ) {
            let nr = SUPPORTED_TILES[nri].1;
            let b = fill(k * n, seed);
            // Row-major [k, n] view, or the same logical matrix stored
            // transposed [n, k] and viewed through strides.
            let bt: Vec<f32>;
            let v = if !strided {
                MatRef::row_major(&b, n)
            } else {
                let mut t = vec![0.0; k * n];
                if k * n > 0 {
                    transpose(&b, k, n, &mut t);
                }
                bt = t;
                MatRef { data: &bt, off: 0, rs: 1, cs: k }
            };
            let kcb = k;
            let ncb = n;
            let mut dst = vec![f32::NAN; ncb.div_ceil(nr) * kcb * nr];
            pack_b(v, 0, 0, kcb, ncb, nr, &mut dst);
            for jb in 0..ncb.div_ceil(nr) {
                for p in 0..kcb {
                    for jj in 0..nr {
                        let got = dst[jb * kcb * nr + p * nr + jj];
                        let col = jb * nr + jj;
                        if col < ncb {
                            prop_assert_eq!(got, b[p * n + col], "p={} col={}", p, col);
                        } else {
                            prop_assert_eq!(got, 0.0);
                        }
                    }
                }
            }
        }

        /// Transpose on ragged/empty/single-row shapes: element map plus
        /// double-transpose identity.
        #[test]
        fn transpose_properties(
            (rows, cols) in (0usize..40, 0usize..40),
            seed in 0u32..1000,
        ) {
            let src = fill(rows * cols, seed);
            let mut dst = vec![f32::NAN; rows * cols];
            transpose(&src, rows, cols, &mut dst);
            for r in 0..rows {
                for c in 0..cols {
                    prop_assert_eq!(dst[c * rows + r], src[r * cols + c]);
                }
            }
            let mut back = vec![f32::NAN; rows * cols];
            transpose(&dst, cols, rows, &mut back);
            prop_assert_eq!(back, src);
        }

        /// Blocked GEMM equals naive on arbitrary small shapes for every
        /// plan (exact inputs → exact equality).
        #[test]
        fn gemm_matches_naive_proptest(
            (m, k, n) in (0usize..12, 0usize..12, 0usize..12),
            seed in 0u32..1000,
        ) {
            let a = fill(m * k, seed);
            let b = fill(k * n, seed ^ 0xabcd);
            let want = naive(m, k, n, &a, &b);
            for plan in test_plans() {
                let mut out = vec![-1.0f32; m * n];
                gemm_with_plan(&plan, m, k, n, &a, &b, &mut out, &Pool::new(1));
                prop_assert_eq!(&out, &want, "{}x{}x{} plan {}", m, k, n, plan.describe());
            }
        }
    }
}
