//! Cache-blocked, register-tiled GEMM kernels with operand packing.
//!
//! The micro-kernel computes an `MR × NR` (6×8) tile of the output with
//! all 48 partial sums held in locals. Before the tile loops run, the
//! band's A rows are repacked into `MR`-interleaved panels and each group
//! of `NR` B columns into a contiguous `k × NR` panel, so the inner loop
//! over the reduction dimension issues two short *contiguous* loads (one
//! `NR`-vector of B, one `MR`-vector of A) per 48 multiply-accumulates —
//! no strided cache-line or TLB traffic, and roughly 8× less memory
//! movement than the naive axpy loop, which re-reads and re-writes the
//! output row on every step. Packing costs `O(mk + kn)` against the
//! `O(mkn)` multiply. Parallelism partitions the *output rows* across the
//! [`Pool`]: bands are disjoint `&mut` slices, so no synchronization is
//! needed.
//!
//! Accumulation order over `k` is ascending for every output element —
//! identical to the naive kernels in `cq_tensor::ops` — so results match
//! the reference backend bit-for-bit (rustc does not contract `a*b + c`
//! into FMA on its own). Zero-padded panel lanes (ragged edges) only ever
//! land in discarded accumulators.

use crate::pool::Pool;

/// Rows per register tile.
const MR: usize = 6;
/// Columns per register tile.
const NR: usize = 8;
/// Minimum multiply-accumulate count before a GEMM fans out to the pool;
/// below this, scoped-thread spawn overhead (~tens of µs) dominates.
const PAR_MIN_MACS: usize = 1 << 18;
/// Minimum output rows handed to one worker; keeps each band's `O(kn)`
/// B-packing cost small next to its `O(rows·kn)` compute.
const PAR_MIN_ROWS: usize = 4 * MR;

/// `out[m,n] = a[m,k] × b[k,n]`, all row-major.
///
/// # Panics
///
/// Panics if slice lengths disagree with the dimensions.
///
/// # Examples
///
/// ```
/// use cq_par::{gemm, Pool};
/// let a = [1.0f32, 2.0, 3.0, 4.0, 5.0, 6.0]; // 2x3
/// let b = [7.0f32, 8.0, 9.0, 10.0, 11.0, 12.0]; // 3x2
/// let mut out = [0.0f32; 4];
/// gemm(2, 3, 2, &a, &b, &mut out, Pool::global());
/// assert_eq!(out, [58.0, 64.0, 139.0, 154.0]);
/// ```
pub fn gemm(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32], pool: &Pool) {
    assert_eq!(a.len(), m * k, "gemm: a length");
    assert_eq!(b.len(), k * n, "gemm: b length");
    assert_eq!(out.len(), m * n, "gemm: out length");
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        out.fill(0.0);
        return;
    }
    if pool.threads() == 1 || m * n * k < PAR_MIN_MACS {
        gemm_band(&a[..m * k], k, n, b, out);
    } else {
        pool.parallel_row_chunks(out, n, PAR_MIN_ROWS, |first_row, band| {
            let rows = band.len() / n;
            gemm_band(&a[first_row * k..(first_row + rows) * k], k, n, b, band);
        });
    }
}

/// Serial GEMM over a band of output rows; `a_band` holds exactly the
/// band's rows of A.
fn gemm_band(a_band: &[f32], k: usize, n: usize, b: &[f32], out_band: &mut [f32]) {
    let rows = out_band.len() / n;
    let rblocks = rows.div_ceil(MR);

    // Pack A once per band: each row block becomes a `k × MR` interleaved
    // panel (`ap[block][p][ii]`), zero-padded below `rows`.
    let mut ap = vec![0.0f32; rblocks * k * MR];
    for ib in 0..rblocks {
        let panel = &mut ap[ib * k * MR..(ib + 1) * k * MR];
        for ii in 0..MR.min(rows - ib * MR) {
            let row = &a_band[(ib * MR + ii) * k..(ib * MR + ii + 1) * k];
            for (p, &v) in row.iter().enumerate() {
                panel[p * MR + ii] = v;
            }
        }
    }

    // One reusable `k × NR` B panel, repacked per column group and swept
    // across every row block while it is cache-hot.
    let mut bp = vec![0.0f32; k * NR];
    let mut j0 = 0;
    while j0 < n {
        let nr = (n - j0).min(NR);
        if nr < NR {
            bp.fill(0.0);
        }
        for p in 0..k {
            bp[p * NR..p * NR + nr].copy_from_slice(&b[p * n + j0..p * n + j0 + nr]);
        }
        for ib in 0..rblocks {
            let acc = micro_packed(&ap[ib * k * MR..(ib + 1) * k * MR], &bp, k);
            for (ii, accr) in acc.iter().enumerate().take(MR.min(rows - ib * MR)) {
                let row = (ib * MR + ii) * n;
                out_band[row + j0..row + j0 + nr].copy_from_slice(&accr[..nr]);
            }
        }
        j0 += nr;
    }
}

/// The hot inner kernel: one `MR × NR` register tile over packed panels.
/// Both operands stream contiguously: `ap` is `k × MR` interleaved A,
/// `bp` is `k × NR` packed B.
#[inline(always)]
fn micro_packed(ap: &[f32], bp: &[f32], k: usize) -> [[f32; NR]; MR] {
    let mut acc = [[0.0f32; NR]; MR];
    for (av, bv) in ap.chunks_exact(MR).zip(bp.chunks_exact(NR)).take(k) {
        for (accr, &a) in acc.iter_mut().zip(av) {
            for (o, &b) in accr.iter_mut().zip(bv) {
                *o += a * b;
            }
        }
    }
    acc
}

/// `out[m,n] = aᵀ × b` for `a[k,m]`, `b[k,n]` (the weight-gradient shape).
///
/// Materializes `aᵀ` once (blocked transpose, `O(km)` — negligible next to
/// the `O(mkn)` multiply) and runs the tiled [`gemm`].
///
/// # Panics
///
/// Panics if slice lengths disagree with the dimensions.
pub fn gemm_at(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32], pool: &Pool) {
    assert_eq!(a.len(), k * m, "gemm_at: a length");
    let mut at = vec![0.0f32; k * m];
    transpose(a, k, m, &mut at);
    gemm(m, k, n, &at, b, out, pool);
}

/// `out[m,n] = a × bᵀ` for `a[m,k]`, `b[n,k]` (the neuron-gradient shape).
///
/// Materializes `bᵀ` once and runs the tiled [`gemm`].
///
/// # Panics
///
/// Panics if slice lengths disagree with the dimensions.
pub fn gemm_bt(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32], pool: &Pool) {
    assert_eq!(b.len(), n * k, "gemm_bt: b length");
    let mut bt = vec![0.0f32; k * n];
    transpose(b, n, k, &mut bt);
    gemm(m, k, n, a, &bt, out, pool);
}

/// Blocked transpose: `dst[cols,rows] = srcᵀ` for row-major `src[rows,cols]`.
///
/// # Panics
///
/// Panics if slice lengths disagree with the dimensions.
pub fn transpose(src: &[f32], rows: usize, cols: usize, dst: &mut [f32]) {
    assert_eq!(src.len(), rows * cols, "transpose: src length");
    assert_eq!(dst.len(), rows * cols, "transpose: dst length");
    const B: usize = 32;
    let mut r0 = 0;
    while r0 < rows {
        let r1 = (r0 + B).min(rows);
        let mut c0 = 0;
        while c0 < cols {
            let c1 = (c0 + B).min(cols);
            for r in r0..r1 {
                for c in c0..c1 {
                    dst[c * rows + r] = src[r * cols + c];
                }
            }
            c0 = c1;
        }
        r0 = r1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(m: usize, k: usize, n: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for p in 0..k {
                    acc += a[i * k + p] * b[p * n + j];
                }
                out[i * n + j] = acc;
            }
        }
        out
    }

    fn fill(len: usize, seed: u32) -> Vec<f32> {
        // Small LCG: exact-in-f32 values so naive and tiled sums are
        // comparable with equality.
        let mut s = seed;
        (0..len)
            .map(|_| {
                s = s.wrapping_mul(1664525).wrapping_add(1013904223);
                ((s >> 24) as f32 - 128.0) / 16.0
            })
            .collect()
    }

    #[test]
    fn matches_naive_on_awkward_shapes() {
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (4, 8, 8),
            (5, 7, 9),
            (13, 1, 17),
            (1, 64, 1),
            (33, 12, 41),
            (8, 100, 3),
        ] {
            let a = fill(m * k, 1 + m as u32);
            let b = fill(k * n, 99 + n as u32);
            let mut out = vec![0.0f32; m * n];
            for threads in [1, 4] {
                gemm(m, k, n, &a, &b, &mut out, &Pool::new(threads));
                assert_eq!(out, naive(m, k, n, &a, &b), "{m}x{k}x{n} t{threads}");
            }
        }
    }

    #[test]
    fn zero_k_yields_zero_output() {
        let mut out = vec![1.0f32; 6];
        gemm(2, 0, 3, &[], &[], &mut out, &Pool::new(2));
        assert_eq!(out, vec![0.0; 6]);
    }

    #[test]
    fn empty_output_is_noop() {
        let mut out = vec![];
        gemm(0, 5, 3, &[], &fill(15, 3), &mut out, &Pool::new(2));
        gemm(3, 5, 0, &fill(15, 3), &[], &mut out, &Pool::new(2));
    }

    #[test]
    fn transposed_variants_match_explicit_transpose() {
        let (m, k, n) = (9, 11, 7);
        let a_t = fill(k * m, 5); // a stored as [k, m]
        let b = fill(k * n, 6);
        let b_t = fill(n * k, 7); // b stored as [n, k]
        let a = fill(m * k, 8);
        let pool = Pool::new(2);

        let mut at = vec![0.0; m * k];
        transpose(&a_t, k, m, &mut at);
        let mut got = vec![0.0; m * n];
        gemm_at(m, k, n, &a_t, &b, &mut got, &pool);
        assert_eq!(got, naive(m, k, n, &at, &b));

        let mut bt = vec![0.0; k * n];
        transpose(&b_t, n, k, &mut bt);
        gemm_bt(m, k, n, &a, &b_t, &mut got, &pool);
        assert_eq!(got, naive(m, k, n, &a, &bt));
    }

    #[test]
    fn transpose_roundtrip() {
        let src = fill(5 * 9, 42);
        let mut t = vec![0.0; 45];
        let mut back = vec![0.0; 45];
        transpose(&src, 5, 9, &mut t);
        transpose(&t, 9, 5, &mut back);
        assert_eq!(src, back);
    }

    #[test]
    fn large_gemm_parallel_matches_serial() {
        let (m, k, n) = (70, 90, 65); // > PAR_MIN_MACS, all edges in play
        let a = fill(m * k, 11);
        let b = fill(k * n, 12);
        let mut serial = vec![0.0; m * n];
        let mut par = vec![0.0; m * n];
        gemm(m, k, n, &a, &b, &mut serial, &Pool::new(1));
        gemm(m, k, n, &a, &b, &mut par, &Pool::new(8));
        assert_eq!(serial, par);
    }
}
