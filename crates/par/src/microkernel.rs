//! Register-tile micro-kernels: the innermost loops of the blocked GEMM.
//!
//! A micro-kernel computes one `MR × NR` tile of the output from packed
//! operand panels (`ap`: `k × MR` interleaved A, `bp`: `k × NR` packed B),
//! either overwriting the tile or accumulating into it (the `KC` panel
//! loop above sums partial products block by block).
//!
//! Two families exist behind one function-pointer type:
//!
//! * **scalar** — portable const-generic Rust, compiled for every
//!   supported `(MR, NR)` pair. Multiplies and adds round separately, so
//!   with the default `(6, 8)` tile and a single `KC` block the results
//!   are exactly the historical cq-par kernel's.
//! * **avx2** — `std::arch` AVX2+FMA intrinsics (x86_64 only), holding
//!   the whole tile in `__m256` accumulators and issuing one fused
//!   multiply-add per lane per `k` step. FMA skips the intermediate
//!   rounding of `a*b`, so results differ from scalar within the
//!   documented backend-parity tolerance (`k · amax · bmax · 8ε`).
//!
//! The family is chosen once per process by [`simd_level`]: the `CQ_SIMD`
//! environment variable (`auto` / `scalar` / `avx2`) filtered through
//! runtime CPU feature detection. Malformed values or requesting `avx2`
//! on hardware without it abort with a diagnostic — the same fail-loud
//! policy as `CQ_BACKEND`/`CQ_THREADS`.
//!
//! Accumulation order over `k` is ascending in every kernel — identical
//! to the naive reference — so the *sequence* of per-element operations
//! never depends on tiling, banding or thread count; only FMA's fused
//! rounding distinguishes the families numerically.

// The AVX2 kernels are the one place in cq-par where `unsafe` is earned:
// `std::arch` intrinsics are only callable from `#[target_feature]`
// functions, which are unsafe to call. Every call site is guarded by
// runtime feature detection in `simd_level()`.
#![allow(unsafe_code)]

use std::sync::OnceLock;

/// Largest `MR` any registered kernel uses (sizes the edge-tile scratch).
pub(crate) const MAX_MR: usize = 8;
/// Largest `NR` any registered kernel uses.
pub(crate) const MAX_NR: usize = 16;

/// Register-tile pairs every SIMD level provides a kernel for. The
/// autotuner searches exactly this set.
pub const SUPPORTED_TILES: [(usize, usize); 5] = [(4, 8), (6, 8), (8, 8), (4, 16), (6, 16)];

/// Which micro-kernel family the process runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SimdLevel {
    /// Portable scalar Rust (separate multiply and add roundings).
    Scalar,
    /// AVX2 + FMA intrinsics (x86_64, runtime-detected).
    Avx2,
}

impl SimdLevel {
    /// Short display name (`"scalar"` / `"avx2"`).
    pub fn name(&self) -> &'static str {
        match self {
            SimdLevel::Scalar => "scalar",
            SimdLevel::Avx2 => "avx2",
        }
    }

    /// Parses `"scalar"` / `"avx2"` (case-insensitive).
    pub fn parse(s: &str) -> Option<SimdLevel> {
        match s.trim().to_ascii_lowercase().as_str() {
            "scalar" => Some(SimdLevel::Scalar),
            "avx2" => Some(SimdLevel::Avx2),
            _ => None,
        }
    }
}

/// A micro-kernel entry point.
///
/// Computes the full `MR × NR` tile: `c[i, j] (+)= Σ_p ap[p·MR + i] ·
/// bp[p·NR + j]`, writing row `i` at `c + i·ldc`.
///
/// # Safety
///
/// * `ap` must hold `k·MR` floats and `bp` `k·NR` floats.
/// * `c` must be valid for reads/writes of `NR` floats at each of the
///   `MR` row offsets `i·ldc`.
/// * AVX2 kernels additionally require the CPU to support AVX2 and FMA
///   (guaranteed by [`simd_level`] at registry construction).
pub(crate) type KernFn =
    unsafe fn(k: usize, ap: *const f32, bp: *const f32, c: *mut f32, ldc: usize, accumulate: bool);

/// Portable reference kernel, monomorphized per `(MR, NR)`.
///
/// # Safety
///
/// See [`KernFn`].
unsafe fn scalar_kern<const MR: usize, const NR: usize>(
    k: usize,
    ap: *const f32,
    bp: *const f32,
    c: *mut f32,
    ldc: usize,
    accumulate: bool,
) {
    let mut acc = [[0.0f32; NR]; MR];
    for p in 0..k {
        let a = ap.add(p * MR);
        let b = bp.add(p * NR);
        for (i, row) in acc.iter_mut().enumerate() {
            let av = *a.add(i);
            for (j, cell) in row.iter_mut().enumerate() {
                *cell += av * *b.add(j);
            }
        }
    }
    for (i, row) in acc.iter().enumerate() {
        let crow = c.add(i * ldc);
        for (j, &v) in row.iter().enumerate() {
            if accumulate {
                *crow.add(j) += v;
            } else {
                *crow.add(j) = v;
            }
        }
    }
}

/// An integer micro-kernel entry point (the i8×i8→i32 GEMM family).
///
/// Operands are packed as sign-extended `i16` in **k-pairs**: for
/// k-pair `pp`, `ap[pp·MR·2 + i·2 + s]` holds `A[i, 2pp+s]` and
/// `bp[pp·NR·2 + j·2 + s]` holds `B[2pp+s, j]` (`s ∈ {0, 1}`; the odd
/// tail of `k` and ragged tile edges are zero-padded by the packers).
/// Computes `c[i, j] (+)= Σ_pp Σ_s ap[..] · bp[..]` over `kp` k-pairs
/// with **wrapping** i32 accumulation — integer addition is associative,
/// so results are bitwise identical across SIMD levels, thread counts
/// and blockings (unlike the f32 family's FMA caveat).
///
/// # Safety
///
/// * `ap` must hold `kp·MR·2` i16s and `bp` `kp·NR·2` i16s.
/// * `c` must be valid for reads/writes of `NR` i32s at each of the
///   `MR` row offsets `i·ldc`.
/// * AVX2 kernels additionally require CPU AVX2 support (guaranteed by
///   [`simd_level`] at registry construction).
pub(crate) type KernI8Fn =
    unsafe fn(kp: usize, ap: *const i16, bp: *const i16, c: *mut i32, ldc: usize, accumulate: bool);

/// Portable reference i8 kernel, monomorphized per `(MR, NR)`.
///
/// Mirrors `pmaddwd` semantics exactly: each k-pair contributes
/// `a0·b0 + a1·b1` (exact in i32 for i8-ranged operands), accumulated
/// with wrapping adds like `paddd`.
///
/// # Safety
///
/// See [`KernI8Fn`].
unsafe fn scalar_kern_i8<const MR: usize, const NR: usize>(
    kp: usize,
    ap: *const i16,
    bp: *const i16,
    c: *mut i32,
    ldc: usize,
    accumulate: bool,
) {
    let mut acc = [[0i32; NR]; MR];
    for pp in 0..kp {
        let a = ap.add(pp * MR * 2);
        let b = bp.add(pp * NR * 2);
        for (i, row) in acc.iter_mut().enumerate() {
            let a0 = *a.add(i * 2) as i32;
            let a1 = *a.add(i * 2 + 1) as i32;
            for (j, cell) in row.iter_mut().enumerate() {
                let pair = a0 * *b.add(j * 2) as i32 + a1 * *b.add(j * 2 + 1) as i32;
                *cell = cell.wrapping_add(pair);
            }
        }
    }
    for (i, row) in acc.iter().enumerate() {
        let crow = c.add(i * ldc);
        for (j, &v) in row.iter().enumerate() {
            if accumulate {
                *crow.add(j) = (*crow.add(j)).wrapping_add(v);
            } else {
                *crow.add(j) = v;
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    //! FMA micro-kernels. `NRV` is the tile width in 8-lane `__m256`
    //! vectors; the register budget is `MR·NRV` accumulators + `NRV`
    //! B vectors + 1 broadcast, which fits the 16 ymm registers for
    //! every supported tile (the largest, 6×16, uses 15).

    macro_rules! avx2_kern {
        ($name:ident, $mr:expr, $nrv:expr) => {
            #[target_feature(enable = "avx2,fma")]
            pub(super) unsafe fn $name(
                k: usize,
                ap: *const f32,
                bp: *const f32,
                c: *mut f32,
                ldc: usize,
                accumulate: bool,
            ) {
                use std::arch::x86_64::*;
                const MR: usize = $mr;
                const NRV: usize = $nrv;
                let mut acc = [[_mm256_setzero_ps(); NRV]; MR];
                for p in 0..k {
                    let b = bp.add(p * NRV * 8);
                    let mut bv = [_mm256_setzero_ps(); NRV];
                    for (v, bvv) in bv.iter_mut().enumerate() {
                        *bvv = _mm256_loadu_ps(b.add(8 * v));
                    }
                    let a = ap.add(p * MR);
                    for (i, row) in acc.iter_mut().enumerate() {
                        let av = _mm256_broadcast_ss(&*a.add(i));
                        for (cell, &bvv) in row.iter_mut().zip(&bv) {
                            *cell = _mm256_fmadd_ps(av, bvv, *cell);
                        }
                    }
                }
                for (i, row) in acc.iter().enumerate() {
                    let crow = c.add(i * ldc);
                    for (v, &vec) in row.iter().enumerate() {
                        let ptr = crow.add(8 * v);
                        let out = if accumulate {
                            _mm256_add_ps(_mm256_loadu_ps(ptr), vec)
                        } else {
                            vec
                        };
                        _mm256_storeu_ps(ptr, out);
                    }
                }
            }
        };
    }

    avx2_kern!(kern_4x8, 4, 1);
    avx2_kern!(kern_6x8, 6, 1);
    avx2_kern!(kern_8x8, 8, 1);
    avx2_kern!(kern_4x16, 4, 2);
    avx2_kern!(kern_6x16, 6, 2);

    // i8 family: one 256-bit B load covers 8 columns × 2 k-steps as
    // sign-extended i16 pairs; `vpmaddwd` multiplies each pair against
    // the broadcast A pair and pre-adds them, so every instruction
    // retires 16 multiply-accumulates (vs 8 for f32 FMA) — the source
    // of the ≥2× arithmetic throughput. All products of i8-ranged i16s
    // fit i32 without `pmaddwd`'s (-32768)² saturation corner, and
    // `vpaddd` wraps exactly like the scalar kernel's `wrapping_add`.
    macro_rules! avx2_kern_i8 {
        ($name:ident, $mr:expr, $nrv:expr) => {
            #[target_feature(enable = "avx2")]
            pub(super) unsafe fn $name(
                kp: usize,
                ap: *const i16,
                bp: *const i16,
                c: *mut i32,
                ldc: usize,
                accumulate: bool,
            ) {
                use std::arch::x86_64::*;
                const MR: usize = $mr;
                const NRV: usize = $nrv;
                let mut acc = [[_mm256_setzero_si256(); NRV]; MR];
                for pp in 0..kp {
                    let b = bp.add(pp * NRV * 16);
                    let mut bv = [_mm256_setzero_si256(); NRV];
                    for (v, bvv) in bv.iter_mut().enumerate() {
                        *bvv = _mm256_loadu_si256(b.add(16 * v) as *const __m256i);
                    }
                    let a = ap.add(pp * MR * 2);
                    for (i, row) in acc.iter_mut().enumerate() {
                        // One 32-bit lane = the row's (k, k+1) i16 pair.
                        let pair = (a.add(i * 2) as *const i32).read_unaligned();
                        let av = _mm256_set1_epi32(pair);
                        for (cell, &bvv) in row.iter_mut().zip(&bv) {
                            *cell = _mm256_add_epi32(*cell, _mm256_madd_epi16(av, bvv));
                        }
                    }
                }
                for (i, row) in acc.iter().enumerate() {
                    let crow = c.add(i * ldc);
                    for (v, &vec) in row.iter().enumerate() {
                        let ptr = crow.add(8 * v) as *mut __m256i;
                        let out = if accumulate {
                            _mm256_add_epi32(_mm256_loadu_si256(ptr), vec)
                        } else {
                            vec
                        };
                        _mm256_storeu_si256(ptr, out);
                    }
                }
            }
        };
    }

    avx2_kern_i8!(kern_i8_4x8, 4, 1);
    avx2_kern_i8!(kern_i8_6x8, 6, 1);
    avx2_kern_i8!(kern_i8_8x8, 8, 1);
    avx2_kern_i8!(kern_i8_4x16, 4, 2);
    avx2_kern_i8!(kern_i8_6x16, 6, 2);

    // AVX-VNNI i8 family: `vpdpwssd` fuses the multiply-pair-add and the
    // i32 accumulate into ONE instruction — 16 MACs/instruction, twice
    // f32 FMA's 8 — with semantics bit-identical to madd+paddd (exact
    // i32 pair products, wrapping accumulate). Same packed panels, same
    // results; selected over the madd kernels by runtime detection.
    macro_rules! avx2_vnni_kern_i8 {
        ($name:ident, $mr:expr, $nrv:expr) => {
            #[target_feature(enable = "avx2,avxvnni")]
            pub(super) unsafe fn $name(
                kp: usize,
                ap: *const i16,
                bp: *const i16,
                c: *mut i32,
                ldc: usize,
                accumulate: bool,
            ) {
                use std::arch::x86_64::*;
                const MR: usize = $mr;
                const NRV: usize = $nrv;
                // Dual accumulator banks: see the AVX512 kernel's note —
                // `vpdpwssd`'s latency stalls a single bank. Bitwise
                // equivalent (integer adds reassociate freely).
                let mut acc = [[_mm256_setzero_si256(); NRV]; MR];
                let mut acc2 = [[_mm256_setzero_si256(); NRV]; MR];
                let mut pp = 0;
                while pp + 2 <= kp {
                    let b = bp.add(pp * NRV * 16);
                    let b2 = bp.add((pp + 1) * NRV * 16);
                    let mut bv = [_mm256_setzero_si256(); NRV];
                    let mut bv2 = [_mm256_setzero_si256(); NRV];
                    for v in 0..NRV {
                        bv[v] = _mm256_loadu_si256(b.add(16 * v) as *const __m256i);
                        bv2[v] = _mm256_loadu_si256(b2.add(16 * v) as *const __m256i);
                    }
                    let a = ap.add(pp * MR * 2);
                    let a2 = ap.add((pp + 1) * MR * 2);
                    for i in 0..MR {
                        let av = _mm256_set1_epi32((a.add(i * 2) as *const i32).read_unaligned());
                        let av2 = _mm256_set1_epi32((a2.add(i * 2) as *const i32).read_unaligned());
                        for v in 0..NRV {
                            acc[i][v] = _mm256_dpwssd_avx_epi32(acc[i][v], av, bv[v]);
                            acc2[i][v] = _mm256_dpwssd_avx_epi32(acc2[i][v], av2, bv2[v]);
                        }
                    }
                    pp += 2;
                }
                if pp < kp {
                    let b = bp.add(pp * NRV * 16);
                    let mut bv = [_mm256_setzero_si256(); NRV];
                    for (v, bvv) in bv.iter_mut().enumerate() {
                        *bvv = _mm256_loadu_si256(b.add(16 * v) as *const __m256i);
                    }
                    let a = ap.add(pp * MR * 2);
                    for (i, row) in acc.iter_mut().enumerate() {
                        let pair = (a.add(i * 2) as *const i32).read_unaligned();
                        let av = _mm256_set1_epi32(pair);
                        for (cell, &bvv) in row.iter_mut().zip(&bv) {
                            *cell = _mm256_dpwssd_avx_epi32(*cell, av, bvv);
                        }
                    }
                }
                for i in 0..MR {
                    for v in 0..NRV {
                        acc[i][v] = _mm256_add_epi32(acc[i][v], acc2[i][v]);
                    }
                }
                for (i, row) in acc.iter().enumerate() {
                    let crow = c.add(i * ldc);
                    for (v, &vec) in row.iter().enumerate() {
                        let ptr = crow.add(8 * v) as *mut __m256i;
                        let out = if accumulate {
                            _mm256_add_epi32(_mm256_loadu_si256(ptr), vec)
                        } else {
                            vec
                        };
                        _mm256_storeu_si256(ptr, out);
                    }
                }
            }
        };
    }

    avx2_vnni_kern_i8!(kern_i8v_4x8, 4, 1);
    avx2_vnni_kern_i8!(kern_i8v_6x8, 6, 1);
    avx2_vnni_kern_i8!(kern_i8v_8x8, 8, 1);
    avx2_vnni_kern_i8!(kern_i8v_4x16, 4, 2);
    avx2_vnni_kern_i8!(kern_i8v_6x16, 6, 2);

    // AVX512-VNNI i8 family for `NR = 16` tiles: one 512-bit `vpdpwssd`
    // covers the full 16-column tile row × 2 k-steps — 32 MACs per
    // instruction, 4× f32 FMA's per-ymm throughput. Reads the exact
    // same packed panels (one zmm load = one k-pair's 32 i16s) and is
    // bitwise identical to the madd and AVX-VNNI kernels.
    macro_rules! avx512_vnni_kern_i8 {
        ($name:ident, $mr:expr) => {
            #[target_feature(enable = "avx512f,avx512vnni")]
            pub(super) unsafe fn $name(
                kp: usize,
                ap: *const i16,
                bp: *const i16,
                c: *mut i32,
                ldc: usize,
                accumulate: bool,
            ) {
                use std::arch::x86_64::*;
                const MR: usize = $mr;
                // Two accumulator banks, merged at the end: `vpdpwssd`
                // has ~5-cycle latency, so a single bank updated every
                // iteration stalls on its own dependency chain. Integer
                // addition is order-independent, so the split changes
                // nothing bitwise.
                let mut acc = [_mm512_setzero_si512(); MR];
                let mut acc2 = [_mm512_setzero_si512(); MR];
                let mut pp = 0;
                while pp + 2 <= kp {
                    let bv = _mm512_loadu_si512(bp.add(pp * 32) as *const _);
                    let bv2 = _mm512_loadu_si512(bp.add((pp + 1) * 32) as *const _);
                    let a = ap.add(pp * MR * 2);
                    let a2 = ap.add((pp + 1) * MR * 2);
                    for i in 0..MR {
                        let av = _mm512_set1_epi32((a.add(i * 2) as *const i32).read_unaligned());
                        acc[i] = _mm512_dpwssd_epi32(acc[i], av, bv);
                        let av2 = _mm512_set1_epi32((a2.add(i * 2) as *const i32).read_unaligned());
                        acc2[i] = _mm512_dpwssd_epi32(acc2[i], av2, bv2);
                    }
                    pp += 2;
                }
                if pp < kp {
                    let bv = _mm512_loadu_si512(bp.add(pp * 32) as *const _);
                    let a = ap.add(pp * MR * 2);
                    for (i, cell) in acc.iter_mut().enumerate() {
                        let pair = (a.add(i * 2) as *const i32).read_unaligned();
                        let av = _mm512_set1_epi32(pair);
                        *cell = _mm512_dpwssd_epi32(*cell, av, bv);
                    }
                }
                for i in 0..MR {
                    acc[i] = _mm512_add_epi32(acc[i], acc2[i]);
                }
                for (i, &vec) in acc.iter().enumerate() {
                    let ptr = c.add(i * ldc) as *mut i32;
                    let out = if accumulate {
                        _mm512_add_epi32(_mm512_loadu_si512(ptr as *const _), vec)
                    } else {
                        vec
                    };
                    _mm512_storeu_si512(ptr as *mut _, out);
                }
            }
        };
    }

    avx512_vnni_kern_i8!(kern_i8z_4x16, 4);
    avx512_vnni_kern_i8!(kern_i8z_6x16, 6);

    /// Whether the CPU can run the `vpdpwssd` kernels (AVX-VNNI — the
    /// VEX-encoded form, present on Cascade Lake+ servers and Alder
    /// Lake+ clients). Purely a speed upgrade within the Avx2 level:
    /// the madd and VNNI kernels are bitwise identical.
    pub(super) fn vnni_available() -> bool {
        std::arch::is_x86_feature_detected!("avxvnni")
    }

    /// Whether the CPU can run the 512-bit `vpdpwssd` kernels
    /// (AVX512-VNNI, Ice Lake+ servers). Same bitwise-identity note.
    pub(super) fn vnni512_available() -> bool {
        std::arch::is_x86_feature_detected!("avx512f")
            && std::arch::is_x86_feature_detected!("avx512vnni")
    }
}

/// Looks up the kernel for a `(level, mr, nr)` triple; `None` if the pair
/// is not in [`SUPPORTED_TILES`] (or the level lacks it on this target).
pub(crate) fn kernel_for(level: SimdLevel, mr: usize, nr: usize) -> Option<KernFn> {
    match level {
        SimdLevel::Scalar => match (mr, nr) {
            (4, 8) => Some(scalar_kern::<4, 8> as KernFn),
            (6, 8) => Some(scalar_kern::<6, 8> as KernFn),
            (8, 8) => Some(scalar_kern::<8, 8> as KernFn),
            (4, 16) => Some(scalar_kern::<4, 16> as KernFn),
            (6, 16) => Some(scalar_kern::<6, 16> as KernFn),
            _ => None,
        },
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => match (mr, nr) {
            (4, 8) => Some(avx2::kern_4x8 as KernFn),
            (6, 8) => Some(avx2::kern_6x8 as KernFn),
            (8, 8) => Some(avx2::kern_8x8 as KernFn),
            (4, 16) => Some(avx2::kern_4x16 as KernFn),
            (6, 16) => Some(avx2::kern_6x16 as KernFn),
            _ => None,
        },
        #[cfg(not(target_arch = "x86_64"))]
        SimdLevel::Avx2 => None,
    }
}

/// Looks up the i8×i8→i32 kernel for a `(level, mr, nr)` triple; `None`
/// if the pair is not in [`SUPPORTED_TILES`] (or the level lacks it on
/// this target). Every tile with an f32 kernel has an i8 sibling, so a
/// valid [`crate::GemmPlan`] always resolves one.
pub(crate) fn kernel_i8_for(level: SimdLevel, mr: usize, nr: usize) -> Option<KernI8Fn> {
    match level {
        SimdLevel::Scalar => match (mr, nr) {
            (4, 8) => Some(scalar_kern_i8::<4, 8> as KernI8Fn),
            (6, 8) => Some(scalar_kern_i8::<6, 8> as KernI8Fn),
            (8, 8) => Some(scalar_kern_i8::<8, 8> as KernI8Fn),
            (4, 16) => Some(scalar_kern_i8::<4, 16> as KernI8Fn),
            (6, 16) => Some(scalar_kern_i8::<6, 16> as KernI8Fn),
            _ => None,
        },
        // Within the Avx2 level the i8 registry sub-dispatches on VNNI
        // capability: `vpdpwssd` retires madd+paddd as one instruction
        // (512-bit where available, covering a whole NR=16 tile row).
        // All variants are bitwise identical (exact i32 arithmetic), so
        // — unlike the f32 FMA distinction — this never affects any
        // parity contract, only throughput.
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 if avx2::vnni512_available() && nr == 16 => match (mr, nr) {
            (4, 16) => Some(avx2::kern_i8z_4x16 as KernI8Fn),
            (6, 16) => Some(avx2::kern_i8z_6x16 as KernI8Fn),
            _ => None,
        },
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 if avx2::vnni_available() => match (mr, nr) {
            (4, 8) => Some(avx2::kern_i8v_4x8 as KernI8Fn),
            (6, 8) => Some(avx2::kern_i8v_6x8 as KernI8Fn),
            (8, 8) => Some(avx2::kern_i8v_8x8 as KernI8Fn),
            (4, 16) => Some(avx2::kern_i8v_4x16 as KernI8Fn),
            (6, 16) => Some(avx2::kern_i8v_6x16 as KernI8Fn),
            _ => None,
        },
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => match (mr, nr) {
            (4, 8) => Some(avx2::kern_i8_4x8 as KernI8Fn),
            (6, 8) => Some(avx2::kern_i8_6x8 as KernI8Fn),
            (8, 8) => Some(avx2::kern_i8_8x8 as KernI8Fn),
            (4, 16) => Some(avx2::kern_i8_4x16 as KernI8Fn),
            (6, 16) => Some(avx2::kern_i8_6x16 as KernI8Fn),
            _ => None,
        },
        #[cfg(not(target_arch = "x86_64"))]
        SimdLevel::Avx2 => None,
    }
}

/// Whether this build/CPU can run the AVX2 kernels.
fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Resolves a raw `CQ_SIMD` value against hardware capability.
/// `None`/empty means `auto` (best available). `scalar` always works;
/// `avx2` must actually be runnable or the run aborts — silently falling
/// back would invalidate any A/B kernel comparison.
fn resolve_env_simd(raw: Option<&str>, avx2_ok: bool) -> Result<SimdLevel, String> {
    let auto = || {
        if avx2_ok {
            SimdLevel::Avx2
        } else {
            SimdLevel::Scalar
        }
    };
    match raw {
        None => Ok(auto()),
        Some(v) if v.trim().is_empty() => Ok(auto()),
        Some(v) if v.trim().eq_ignore_ascii_case("auto") => Ok(auto()),
        Some(v) => match SimdLevel::parse(v) {
            Some(SimdLevel::Scalar) => Ok(SimdLevel::Scalar),
            Some(SimdLevel::Avx2) if avx2_ok => Ok(SimdLevel::Avx2),
            Some(SimdLevel::Avx2) => Err(format!(
                "CQ_SIMD={v:?} requests the AVX2 micro-kernels but this CPU/target \
                 does not support AVX2+FMA"
            )),
            None => Err(format!(
                "invalid CQ_SIMD value {v:?}: expected \"auto\", \"scalar\" or \"avx2\""
            )),
        },
    }
}

/// The process-wide micro-kernel family: `CQ_SIMD` filtered through
/// runtime feature detection, resolved once.
pub fn simd_level() -> SimdLevel {
    static LEVEL: OnceLock<SimdLevel> = OnceLock::new();
    *LEVEL.get_or_init(|| {
        let raw = std::env::var("CQ_SIMD").ok();
        match resolve_env_simd(raw.as_deref(), avx2_available()) {
            Ok(level) => level,
            Err(msg) => panic!("{msg}"),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_resolution_rejects_garbage() {
        assert_eq!(resolve_env_simd(None, true), Ok(SimdLevel::Avx2));
        assert_eq!(resolve_env_simd(None, false), Ok(SimdLevel::Scalar));
        assert_eq!(resolve_env_simd(Some(""), true), Ok(SimdLevel::Avx2));
        assert_eq!(
            resolve_env_simd(Some(" AUTO "), false),
            Ok(SimdLevel::Scalar)
        );
        assert_eq!(
            resolve_env_simd(Some("scalar"), true),
            Ok(SimdLevel::Scalar)
        );
        assert_eq!(resolve_env_simd(Some(" Avx2 "), true), Ok(SimdLevel::Avx2));
        let err = resolve_env_simd(Some("avx2"), false).unwrap_err();
        assert!(err.contains("AVX2"), "{err}");
        let err = resolve_env_simd(Some("sse9"), true).unwrap_err();
        assert!(err.contains("invalid CQ_SIMD"), "{err}");
        assert!(err.contains("scalar"), "{err}");
    }

    #[test]
    fn every_supported_tile_has_a_scalar_kernel() {
        for &(mr, nr) in &SUPPORTED_TILES {
            assert!(
                kernel_for(SimdLevel::Scalar, mr, nr).is_some(),
                "missing scalar kernel for {mr}x{nr}"
            );
            assert!(
                kernel_i8_for(SimdLevel::Scalar, mr, nr).is_some(),
                "missing scalar i8 kernel for {mr}x{nr}"
            );
            assert!(mr <= MAX_MR && nr <= MAX_NR);
        }
        assert!(kernel_for(SimdLevel::Scalar, 7, 8).is_none());
        assert!(kernel_for(SimdLevel::Scalar, 6, 12).is_none());
        assert!(kernel_i8_for(SimdLevel::Scalar, 7, 8).is_none());
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn every_supported_tile_has_an_avx2_kernel() {
        for &(mr, nr) in &SUPPORTED_TILES {
            assert!(
                kernel_for(SimdLevel::Avx2, mr, nr).is_some(),
                "missing avx2 kernel for {mr}x{nr}"
            );
            assert!(
                kernel_i8_for(SimdLevel::Avx2, mr, nr).is_some(),
                "missing avx2 i8 kernel for {mr}x{nr}"
            );
        }
    }

    /// The scalar and (when runnable) AVX2 i8 kernels are bitwise
    /// identical — i32 accumulation has no rounding, so unlike the f32
    /// family there is no "exact inputs" caveat.
    #[test]
    fn i8_kernels_agree_bitwise() {
        let kp = 19; // 38 k-steps as 19 pairs, odd-ish to stress nothing special
        for &(mr, nr) in &SUPPORTED_TILES {
            // Full i8 range including the extremes, sign-extended to i16
            // exactly as the gemm_i8 packers do.
            let ap: Vec<i16> = (0..kp * mr * 2)
                .map(|i| ((i * 37 + 11) % 256) as i16 - 128)
                .collect();
            let bp: Vec<i16> = (0..kp * nr * 2)
                .map(|i| ((i * 53 + 7) % 256) as i16 - 128)
                .collect();
            let mut want = vec![0i32; mr * nr];
            for pp in 0..kp {
                for i in 0..mr {
                    for j in 0..nr {
                        let a0 = ap[pp * mr * 2 + i * 2] as i32;
                        let a1 = ap[pp * mr * 2 + i * 2 + 1] as i32;
                        let b0 = bp[pp * nr * 2 + j * 2] as i32;
                        let b1 = bp[pp * nr * 2 + j * 2 + 1] as i32;
                        want[i * nr + j] += a0 * b0 + a1 * b1;
                    }
                }
            }
            let run = |level: SimdLevel| {
                let kern = kernel_i8_for(level, mr, nr).unwrap();
                let mut c = vec![-1i32; mr * nr];
                // SAFETY: buffers sized kp*mr*2 / kp*nr*2 / mr*nr, ldc = nr.
                unsafe { kern(kp, ap.as_ptr(), bp.as_ptr(), c.as_mut_ptr(), nr, false) };
                let mut c2 = c.clone();
                unsafe { kern(kp, ap.as_ptr(), bp.as_ptr(), c2.as_mut_ptr(), nr, true) };
                (c, c2)
            };
            let (c, c2) = run(SimdLevel::Scalar);
            assert_eq!(c, want, "scalar i8 {mr}x{nr}");
            assert_eq!(c2, want.iter().map(|v| v * 2).collect::<Vec<_>>());
            if avx2_available() {
                let (c, c2) = run(SimdLevel::Avx2);
                assert_eq!(c, want, "avx2 i8 {mr}x{nr}");
                assert_eq!(c2, want.iter().map(|v| v * 2).collect::<Vec<_>>());
            }
        }
    }

    /// When AVX-VNNI is present the registry serves `vpdpwssd` kernels;
    /// they must be bitwise identical to the plain madd+paddd kernels
    /// they replace (the whole point of the sub-dispatch being safe).
    #[cfg(target_arch = "x86_64")]
    #[test]
    fn vnni_and_madd_i8_kernels_agree_bitwise() {
        if !avx2_available() || !avx2::vnni_available() {
            return;
        }
        let pairs: [(KernI8Fn, KernI8Fn, usize, usize); 5] = [
            (avx2::kern_i8_4x8, avx2::kern_i8v_4x8, 4, 8),
            (avx2::kern_i8_6x8, avx2::kern_i8v_6x8, 6, 8),
            (avx2::kern_i8_8x8, avx2::kern_i8v_8x8, 8, 8),
            (avx2::kern_i8_4x16, avx2::kern_i8v_4x16, 4, 16),
            (avx2::kern_i8_6x16, avx2::kern_i8v_6x16, 6, 16),
        ];
        let kp = 23;
        for (madd, vnni, mr, nr) in pairs {
            let ap: Vec<i16> = (0..kp * mr * 2)
                .map(|i| ((i * 71 + 3) % 256) as i16 - 128)
                .collect();
            let bp: Vec<i16> = (0..kp * nr * 2)
                .map(|i| ((i * 29 + 13) % 256) as i16 - 128)
                .collect();
            let mut c1 = vec![5i32; mr * nr];
            let mut c2 = vec![5i32; mr * nr];
            // SAFETY: buffers sized kp*mr*2 / kp*nr*2 / mr*nr, ldc = nr.
            unsafe {
                madd(kp, ap.as_ptr(), bp.as_ptr(), c1.as_mut_ptr(), nr, true);
                vnni(kp, ap.as_ptr(), bp.as_ptr(), c2.as_mut_ptr(), nr, true);
            }
            assert_eq!(c1, c2, "vnni/madd mismatch {mr}x{nr}");
            if avx2::vnni512_available() && nr == 16 {
                let zkern = match mr {
                    4 => avx2::kern_i8z_4x16 as KernI8Fn,
                    6 => avx2::kern_i8z_6x16 as KernI8Fn,
                    _ => continue,
                };
                let mut c3 = vec![5i32; mr * nr];
                // SAFETY: same bounds as above.
                unsafe { zkern(kp, ap.as_ptr(), bp.as_ptr(), c3.as_mut_ptr(), nr, true) };
                assert_eq!(c1, c3, "vnni512/madd mismatch {mr}x{nr}");
            }
        }
    }

    /// The scalar and (when runnable) AVX2 kernels agree on exact inputs:
    /// small halves, whose products and partial sums are all exactly
    /// representable, make FMA's fused rounding a no-op.
    #[test]
    fn kernels_agree_on_exact_inputs() {
        let k = 37;
        for &(mr, nr) in &SUPPORTED_TILES {
            let ap: Vec<f32> = (0..k * mr).map(|i| ((i % 17) as f32 - 8.0) / 4.0).collect();
            let bp: Vec<f32> = (0..k * nr).map(|i| ((i % 13) as f32 - 6.0) / 8.0).collect();
            let mut want = vec![0.0f32; mr * nr];
            for p in 0..k {
                for i in 0..mr {
                    for j in 0..nr {
                        want[i * nr + j] += ap[p * mr + i] * bp[p * nr + j];
                    }
                }
            }
            let run = |level: SimdLevel| {
                let kern = kernel_for(level, mr, nr).unwrap();
                let mut c = vec![-1.0f32; mr * nr];
                // SAFETY: buffers sized k*mr / k*nr / mr*nr, ldc = nr.
                unsafe { kern(k, ap.as_ptr(), bp.as_ptr(), c.as_mut_ptr(), nr, false) };
                // Accumulate pass on top of the overwrite pass: doubles it.
                let mut c2 = c.clone();
                unsafe { kern(k, ap.as_ptr(), bp.as_ptr(), c2.as_mut_ptr(), nr, true) };
                (c, c2)
            };
            let (c, c2) = run(SimdLevel::Scalar);
            assert_eq!(c, want, "scalar {mr}x{nr}");
            assert_eq!(c2, want.iter().map(|v| v * 2.0).collect::<Vec<_>>());
            if avx2_available() {
                let (c, c2) = run(SimdLevel::Avx2);
                assert_eq!(c, want, "avx2 {mr}x{nr}");
                assert_eq!(c2, want.iter().map(|v| v * 2.0).collect::<Vec<_>>());
            }
        }
    }
}
