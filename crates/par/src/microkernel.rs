//! Register-tile micro-kernels: the innermost loops of the blocked GEMM.
//!
//! A micro-kernel computes one `MR × NR` tile of the output from packed
//! operand panels (`ap`: `k × MR` interleaved A, `bp`: `k × NR` packed B),
//! either overwriting the tile or accumulating into it (the `KC` panel
//! loop above sums partial products block by block).
//!
//! Two families exist behind one function-pointer type:
//!
//! * **scalar** — portable const-generic Rust, compiled for every
//!   supported `(MR, NR)` pair. Multiplies and adds round separately, so
//!   with the default `(6, 8)` tile and a single `KC` block the results
//!   are exactly the historical cq-par kernel's.
//! * **avx2** — `std::arch` AVX2+FMA intrinsics (x86_64 only), holding
//!   the whole tile in `__m256` accumulators and issuing one fused
//!   multiply-add per lane per `k` step. FMA skips the intermediate
//!   rounding of `a*b`, so results differ from scalar within the
//!   documented backend-parity tolerance (`k · amax · bmax · 8ε`).
//!
//! The family is chosen once per process by [`simd_level`]: the `CQ_SIMD`
//! environment variable (`auto` / `scalar` / `avx2`) filtered through
//! runtime CPU feature detection. Malformed values or requesting `avx2`
//! on hardware without it abort with a diagnostic — the same fail-loud
//! policy as `CQ_BACKEND`/`CQ_THREADS`.
//!
//! Accumulation order over `k` is ascending in every kernel — identical
//! to the naive reference — so the *sequence* of per-element operations
//! never depends on tiling, banding or thread count; only FMA's fused
//! rounding distinguishes the families numerically.

// The AVX2 kernels are the one place in cq-par where `unsafe` is earned:
// `std::arch` intrinsics are only callable from `#[target_feature]`
// functions, which are unsafe to call. Every call site is guarded by
// runtime feature detection in `simd_level()`.
#![allow(unsafe_code)]

use std::sync::OnceLock;

/// Largest `MR` any registered kernel uses (sizes the edge-tile scratch).
pub(crate) const MAX_MR: usize = 8;
/// Largest `NR` any registered kernel uses.
pub(crate) const MAX_NR: usize = 16;

/// Register-tile pairs every SIMD level provides a kernel for. The
/// autotuner searches exactly this set.
pub const SUPPORTED_TILES: [(usize, usize); 5] = [(4, 8), (6, 8), (8, 8), (4, 16), (6, 16)];

/// Which micro-kernel family the process runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SimdLevel {
    /// Portable scalar Rust (separate multiply and add roundings).
    Scalar,
    /// AVX2 + FMA intrinsics (x86_64, runtime-detected).
    Avx2,
}

impl SimdLevel {
    /// Short display name (`"scalar"` / `"avx2"`).
    pub fn name(&self) -> &'static str {
        match self {
            SimdLevel::Scalar => "scalar",
            SimdLevel::Avx2 => "avx2",
        }
    }

    /// Parses `"scalar"` / `"avx2"` (case-insensitive).
    pub fn parse(s: &str) -> Option<SimdLevel> {
        match s.trim().to_ascii_lowercase().as_str() {
            "scalar" => Some(SimdLevel::Scalar),
            "avx2" => Some(SimdLevel::Avx2),
            _ => None,
        }
    }
}

/// A micro-kernel entry point.
///
/// Computes the full `MR × NR` tile: `c[i, j] (+)= Σ_p ap[p·MR + i] ·
/// bp[p·NR + j]`, writing row `i` at `c + i·ldc`.
///
/// # Safety
///
/// * `ap` must hold `k·MR` floats and `bp` `k·NR` floats.
/// * `c` must be valid for reads/writes of `NR` floats at each of the
///   `MR` row offsets `i·ldc`.
/// * AVX2 kernels additionally require the CPU to support AVX2 and FMA
///   (guaranteed by [`simd_level`] at registry construction).
pub(crate) type KernFn =
    unsafe fn(k: usize, ap: *const f32, bp: *const f32, c: *mut f32, ldc: usize, accumulate: bool);

/// Portable reference kernel, monomorphized per `(MR, NR)`.
///
/// # Safety
///
/// See [`KernFn`].
unsafe fn scalar_kern<const MR: usize, const NR: usize>(
    k: usize,
    ap: *const f32,
    bp: *const f32,
    c: *mut f32,
    ldc: usize,
    accumulate: bool,
) {
    let mut acc = [[0.0f32; NR]; MR];
    for p in 0..k {
        let a = ap.add(p * MR);
        let b = bp.add(p * NR);
        for (i, row) in acc.iter_mut().enumerate() {
            let av = *a.add(i);
            for (j, cell) in row.iter_mut().enumerate() {
                *cell += av * *b.add(j);
            }
        }
    }
    for (i, row) in acc.iter().enumerate() {
        let crow = c.add(i * ldc);
        for (j, &v) in row.iter().enumerate() {
            if accumulate {
                *crow.add(j) += v;
            } else {
                *crow.add(j) = v;
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    //! FMA micro-kernels. `NRV` is the tile width in 8-lane `__m256`
    //! vectors; the register budget is `MR·NRV` accumulators + `NRV`
    //! B vectors + 1 broadcast, which fits the 16 ymm registers for
    //! every supported tile (the largest, 6×16, uses 15).

    macro_rules! avx2_kern {
        ($name:ident, $mr:expr, $nrv:expr) => {
            #[target_feature(enable = "avx2,fma")]
            pub(super) unsafe fn $name(
                k: usize,
                ap: *const f32,
                bp: *const f32,
                c: *mut f32,
                ldc: usize,
                accumulate: bool,
            ) {
                use std::arch::x86_64::*;
                const MR: usize = $mr;
                const NRV: usize = $nrv;
                let mut acc = [[_mm256_setzero_ps(); NRV]; MR];
                for p in 0..k {
                    let b = bp.add(p * NRV * 8);
                    let mut bv = [_mm256_setzero_ps(); NRV];
                    for (v, bvv) in bv.iter_mut().enumerate() {
                        *bvv = _mm256_loadu_ps(b.add(8 * v));
                    }
                    let a = ap.add(p * MR);
                    for (i, row) in acc.iter_mut().enumerate() {
                        let av = _mm256_broadcast_ss(&*a.add(i));
                        for (cell, &bvv) in row.iter_mut().zip(&bv) {
                            *cell = _mm256_fmadd_ps(av, bvv, *cell);
                        }
                    }
                }
                for (i, row) in acc.iter().enumerate() {
                    let crow = c.add(i * ldc);
                    for (v, &vec) in row.iter().enumerate() {
                        let ptr = crow.add(8 * v);
                        let out = if accumulate {
                            _mm256_add_ps(_mm256_loadu_ps(ptr), vec)
                        } else {
                            vec
                        };
                        _mm256_storeu_ps(ptr, out);
                    }
                }
            }
        };
    }

    avx2_kern!(kern_4x8, 4, 1);
    avx2_kern!(kern_6x8, 6, 1);
    avx2_kern!(kern_8x8, 8, 1);
    avx2_kern!(kern_4x16, 4, 2);
    avx2_kern!(kern_6x16, 6, 2);
}

/// Looks up the kernel for a `(level, mr, nr)` triple; `None` if the pair
/// is not in [`SUPPORTED_TILES`] (or the level lacks it on this target).
pub(crate) fn kernel_for(level: SimdLevel, mr: usize, nr: usize) -> Option<KernFn> {
    match level {
        SimdLevel::Scalar => match (mr, nr) {
            (4, 8) => Some(scalar_kern::<4, 8> as KernFn),
            (6, 8) => Some(scalar_kern::<6, 8> as KernFn),
            (8, 8) => Some(scalar_kern::<8, 8> as KernFn),
            (4, 16) => Some(scalar_kern::<4, 16> as KernFn),
            (6, 16) => Some(scalar_kern::<6, 16> as KernFn),
            _ => None,
        },
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => match (mr, nr) {
            (4, 8) => Some(avx2::kern_4x8 as KernFn),
            (6, 8) => Some(avx2::kern_6x8 as KernFn),
            (8, 8) => Some(avx2::kern_8x8 as KernFn),
            (4, 16) => Some(avx2::kern_4x16 as KernFn),
            (6, 16) => Some(avx2::kern_6x16 as KernFn),
            _ => None,
        },
        #[cfg(not(target_arch = "x86_64"))]
        SimdLevel::Avx2 => None,
    }
}

/// Whether this build/CPU can run the AVX2 kernels.
fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Resolves a raw `CQ_SIMD` value against hardware capability.
/// `None`/empty means `auto` (best available). `scalar` always works;
/// `avx2` must actually be runnable or the run aborts — silently falling
/// back would invalidate any A/B kernel comparison.
fn resolve_env_simd(raw: Option<&str>, avx2_ok: bool) -> Result<SimdLevel, String> {
    let auto = || {
        if avx2_ok {
            SimdLevel::Avx2
        } else {
            SimdLevel::Scalar
        }
    };
    match raw {
        None => Ok(auto()),
        Some(v) if v.trim().is_empty() => Ok(auto()),
        Some(v) if v.trim().eq_ignore_ascii_case("auto") => Ok(auto()),
        Some(v) => match SimdLevel::parse(v) {
            Some(SimdLevel::Scalar) => Ok(SimdLevel::Scalar),
            Some(SimdLevel::Avx2) if avx2_ok => Ok(SimdLevel::Avx2),
            Some(SimdLevel::Avx2) => Err(format!(
                "CQ_SIMD={v:?} requests the AVX2 micro-kernels but this CPU/target \
                 does not support AVX2+FMA"
            )),
            None => Err(format!(
                "invalid CQ_SIMD value {v:?}: expected \"auto\", \"scalar\" or \"avx2\""
            )),
        },
    }
}

/// The process-wide micro-kernel family: `CQ_SIMD` filtered through
/// runtime feature detection, resolved once.
pub fn simd_level() -> SimdLevel {
    static LEVEL: OnceLock<SimdLevel> = OnceLock::new();
    *LEVEL.get_or_init(|| {
        let raw = std::env::var("CQ_SIMD").ok();
        match resolve_env_simd(raw.as_deref(), avx2_available()) {
            Ok(level) => level,
            Err(msg) => panic!("{msg}"),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_resolution_rejects_garbage() {
        assert_eq!(resolve_env_simd(None, true), Ok(SimdLevel::Avx2));
        assert_eq!(resolve_env_simd(None, false), Ok(SimdLevel::Scalar));
        assert_eq!(resolve_env_simd(Some(""), true), Ok(SimdLevel::Avx2));
        assert_eq!(
            resolve_env_simd(Some(" AUTO "), false),
            Ok(SimdLevel::Scalar)
        );
        assert_eq!(
            resolve_env_simd(Some("scalar"), true),
            Ok(SimdLevel::Scalar)
        );
        assert_eq!(resolve_env_simd(Some(" Avx2 "), true), Ok(SimdLevel::Avx2));
        let err = resolve_env_simd(Some("avx2"), false).unwrap_err();
        assert!(err.contains("AVX2"), "{err}");
        let err = resolve_env_simd(Some("sse9"), true).unwrap_err();
        assert!(err.contains("invalid CQ_SIMD"), "{err}");
        assert!(err.contains("scalar"), "{err}");
    }

    #[test]
    fn every_supported_tile_has_a_scalar_kernel() {
        for &(mr, nr) in &SUPPORTED_TILES {
            assert!(
                kernel_for(SimdLevel::Scalar, mr, nr).is_some(),
                "missing scalar kernel for {mr}x{nr}"
            );
            assert!(mr <= MAX_MR && nr <= MAX_NR);
        }
        assert!(kernel_for(SimdLevel::Scalar, 7, 8).is_none());
        assert!(kernel_for(SimdLevel::Scalar, 6, 12).is_none());
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn every_supported_tile_has_an_avx2_kernel() {
        for &(mr, nr) in &SUPPORTED_TILES {
            assert!(
                kernel_for(SimdLevel::Avx2, mr, nr).is_some(),
                "missing avx2 kernel for {mr}x{nr}"
            );
        }
    }

    /// The scalar and (when runnable) AVX2 kernels agree on exact inputs:
    /// small halves, whose products and partial sums are all exactly
    /// representable, make FMA's fused rounding a no-op.
    #[test]
    fn kernels_agree_on_exact_inputs() {
        let k = 37;
        for &(mr, nr) in &SUPPORTED_TILES {
            let ap: Vec<f32> = (0..k * mr).map(|i| ((i % 17) as f32 - 8.0) / 4.0).collect();
            let bp: Vec<f32> = (0..k * nr).map(|i| ((i % 13) as f32 - 6.0) / 8.0).collect();
            let mut want = vec![0.0f32; mr * nr];
            for p in 0..k {
                for i in 0..mr {
                    for j in 0..nr {
                        want[i * nr + j] += ap[p * mr + i] * bp[p * nr + j];
                    }
                }
            }
            let run = |level: SimdLevel| {
                let kern = kernel_for(level, mr, nr).unwrap();
                let mut c = vec![-1.0f32; mr * nr];
                // SAFETY: buffers sized k*mr / k*nr / mr*nr, ldc = nr.
                unsafe { kern(k, ap.as_ptr(), bp.as_ptr(), c.as_mut_ptr(), nr, false) };
                // Accumulate pass on top of the overwrite pass: doubles it.
                let mut c2 = c.clone();
                unsafe { kern(k, ap.as_ptr(), bp.as_ptr(), c2.as_mut_ptr(), nr, true) };
                (c, c2)
            };
            let (c, c2) = run(SimdLevel::Scalar);
            assert_eq!(c, want, "scalar {mr}x{nr}");
            assert_eq!(c2, want.iter().map(|v| v * 2.0).collect::<Vec<_>>());
            if avx2_available() {
                let (c, c2) = run(SimdLevel::Avx2);
                assert_eq!(c, want, "avx2 {mr}x{nr}");
                assert_eq!(c2, want.iter().map(|v| v * 2.0).collect::<Vec<_>>());
            }
        }
    }
}
