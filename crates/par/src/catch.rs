//! Panic isolation primitive: run one task, catch its panic as data.

/// Runs `f`, converting a panic into `Err(message)` instead of unwinding.
///
/// This is the isolation boundary the resilience layer (`cq-resil`)
/// builds on: a task that panics fails *as a value*, so the worker
/// thread, the pool and every sibling task keep running. `&str` and
/// `String` panic payloads are rendered verbatim; any other payload type
/// becomes a placeholder.
///
/// Note the contrast with [`crate::Pool::parallel_map`], which
/// deliberately *propagates* worker panics (fail-stop is the right
/// default for the deterministic kernels). `catch_task` is for callers
/// that opted into degraded completion.
///
/// # Examples
///
/// ```
/// assert_eq!(cq_par::catch_task(|| 21 * 2), Ok(42));
/// let err = cq_par::catch_task(|| -> u32 { panic!("bad cell") }).unwrap_err();
/// assert_eq!(err, "bad cell");
/// ```
pub fn catch_task<T>(f: impl FnOnce() -> T) -> Result<T, String> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
        Ok(value) => Ok(value),
        Err(payload) => {
            cq_obs::counter!("par.panic_caught").incr();
            let message = if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "<non-string panic payload>".to_string()
            };
            Err(message)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn success_passes_through() {
        assert_eq!(catch_task(|| "ok"), Ok("ok"));
    }

    #[test]
    fn str_and_string_payloads_render_verbatim() {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // keep test output clean
        let e1 = catch_task(|| -> () { panic!("literal payload") }).unwrap_err();
        let e2 = catch_task(|| -> () { panic!("formatted {}", 7) }).unwrap_err();
        let e3 = catch_task(|| -> () { std::panic::panic_any(42u32) }).unwrap_err();
        std::panic::set_hook(prev);
        assert_eq!(e1, "literal payload");
        assert_eq!(e2, "formatted 7");
        assert_eq!(e3, "<non-string panic payload>");
    }

    #[test]
    fn thread_survives_a_caught_panic() {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let r = catch_task(|| -> u8 { panic!("boom") });
        std::panic::set_hook(prev);
        assert!(r.is_err());
        // Still on a live, usable thread.
        assert_eq!(catch_task(|| 1 + 1), Ok(2));
    }
}
