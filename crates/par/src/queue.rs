//! Bounded multi-producer/multi-consumer admission queue.
//!
//! The sweep daemon (`cq-serve`) admits work in whole-request batches:
//! a request's cells either *all* enter the queue atomically or the
//! request is rejected with retry advice — the queue never buffers
//! unboundedly, so an overload burst costs rejections, not memory.
//! Workers block on [`BoundedQueue::pop`] and drain until the queue is
//! closed and empty.
//!
//! Built on `Mutex<VecDeque>` + `Condvar` like the rest of the crate:
//! the std-only constraint rules out channel crates, and admission is
//! request-rate work (thousands per second at most), so lock cost is
//! irrelevant next to the simulations behind it.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, PoisonError};

/// Why a batch was not admitted. The rejected items are handed back in
/// every variant so the caller can retry or report without cloning.
#[derive(Debug)]
pub enum BatchRejected<T> {
    /// The queue is momentarily too full for the batch; retry later.
    Full {
        /// The batch, returned unconsumed.
        items: Vec<T>,
        /// Slots free at rejection time (< `items.len()`).
        available: usize,
    },
    /// The batch exceeds total capacity and can never be admitted.
    TooLarge {
        /// The batch, returned unconsumed.
        items: Vec<T>,
        /// The queue's total capacity.
        capacity: usize,
    },
    /// The queue is closed to new work.
    Closed {
        /// The batch, returned unconsumed.
        items: Vec<T>,
    },
}

impl<T> BatchRejected<T> {
    /// The rejected batch, regardless of the reason.
    pub fn into_items(self) -> Vec<T> {
        match self {
            BatchRejected::Full { items, .. }
            | BatchRejected::TooLarge { items, .. }
            | BatchRejected::Closed { items } => items,
        }
    }

    /// Whether waiting and retrying can ever succeed.
    pub fn is_retryable(&self) -> bool {
        matches!(self, BatchRejected::Full { .. })
    }
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
    /// High-water mark of `items.len()`, for saturation reporting.
    peak: usize,
}

/// A FIFO queue with a hard capacity bound and all-or-nothing batch
/// admission (see the module docs).
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    cap: usize,
}

impl<T> BoundedQueue<T> {
    /// A queue admitting at most `cap` items at once (clamped to ≥ 1).
    pub fn new(cap: usize) -> Self {
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
                peak: 0,
            }),
            not_empty: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// Total capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// Whether nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// High-water mark of the queue depth since construction.
    pub fn peak_len(&self) -> usize {
        self.lock().peak
    }

    /// Atomically admits the whole batch, or rejects it unchanged: the
    /// queue never holds a partial request, and never exceeds its
    /// capacity. An empty batch is always admitted (a no-op).
    pub fn try_push_batch(&self, items: Vec<T>) -> Result<(), BatchRejected<T>> {
        if items.len() > self.cap {
            return Err(BatchRejected::TooLarge {
                items,
                capacity: self.cap,
            });
        }
        let mut inner = self.lock();
        if inner.closed {
            return Err(BatchRejected::Closed { items });
        }
        let available = self.cap - inner.items.len();
        if items.len() > available {
            return Err(BatchRejected::Full { items, available });
        }
        let was_empty = inner.items.is_empty();
        inner.items.extend(items);
        inner.peak = inner.peak.max(inner.items.len());
        drop(inner);
        if was_empty {
            self.not_empty.notify_all();
        }
        Ok(())
    }

    /// Blocks until an item is available and returns it, or returns
    /// `None` once the queue is closed *and* drained. Safe to call from
    /// many workers; each item is delivered exactly once, FIFO.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.lock();
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self
                .not_empty
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Returns an item only if one is immediately available.
    pub fn try_pop(&self) -> Option<T> {
        self.lock().items.pop_front()
    }

    /// Closes the queue: future pushes are rejected, blocked and future
    /// [`BoundedQueue::pop`] calls drain the remaining items then return
    /// `None`. Idempotent.
    pub fn close(&self) {
        self.lock().closed = true;
        self.not_empty.notify_all();
    }

    /// Whether [`BoundedQueue::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.lock().closed
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner<T>> {
        // Nothing user-supplied runs under the lock, so poison can only
        // come from an allocation failure mid-push — recover rather
        // than cascade.
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T> std::fmt::Debug for BoundedQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.lock();
        f.debug_struct("BoundedQueue")
            .field("len", &inner.items.len())
            .field("capacity", &self.cap)
            .field("peak", &inner.peak)
            .field("closed", &inner.closed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn batch_admission_is_all_or_nothing() {
        let q: BoundedQueue<u32> = BoundedQueue::new(4);
        assert_eq!(q.capacity(), 4);
        q.try_push_batch(vec![1, 2, 3]).expect("fits");
        // 2 more would exceed cap 4: whole batch rejected, queue intact.
        match q.try_push_batch(vec![4, 5]) {
            Err(BatchRejected::Full { items, available }) => {
                assert_eq!(items, vec![4, 5]);
                assert_eq!(available, 1);
            }
            other => panic!("expected Full, got {other:?}"),
        }
        assert_eq!(q.len(), 3);
        // Freeing one slot lets the retry succeed.
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        q.try_push_batch(vec![4, 5]).expect("retry fits");
        assert_eq!(q.len(), 3);
        assert_eq!(q.peak_len(), 3);
    }

    #[test]
    fn oversized_batches_are_never_admittable() {
        let q: BoundedQueue<u32> = BoundedQueue::new(2);
        match q.try_push_batch(vec![1, 2, 3]) {
            Err(e @ BatchRejected::TooLarge { .. }) => {
                assert!(!e.is_retryable());
                assert_eq!(e.into_items(), vec![1, 2, 3]);
            }
            other => panic!("expected TooLarge, got {other:?}"),
        }
        // Even against an empty queue.
        assert!(q.is_empty());
    }

    #[test]
    fn close_drains_then_ends() {
        let q: BoundedQueue<u32> = BoundedQueue::new(8);
        q.try_push_batch(vec![1, 2]).unwrap();
        q.close();
        assert!(q.is_closed());
        match q.try_push_batch(vec![3]) {
            Err(BatchRejected::Closed { items }) => assert_eq!(items, vec![3]),
            other => panic!("expected Closed, got {other:?}"),
        }
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None, "close is sticky");
    }

    #[test]
    fn close_wakes_blocked_workers() {
        let q: BoundedQueue<u32> = BoundedQueue::new(4);
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..3).map(|_| s.spawn(|| q.pop())).collect();
            // Give the workers a moment to block, then close.
            std::thread::sleep(std::time::Duration::from_millis(10));
            q.close();
            for h in handles {
                assert_eq!(h.join().unwrap(), None);
            }
        });
    }

    #[test]
    fn concurrent_producers_and_consumers_deliver_exactly_once() {
        let q: BoundedQueue<usize> = BoundedQueue::new(16);
        const PRODUCERS: usize = 4;
        const PER_PRODUCER: usize = 50;
        let consumed = AtomicUsize::new(0);
        let sum = AtomicUsize::new(0);
        std::thread::scope(|s| {
            let (q, consumed, sum) = (&q, &consumed, &sum);
            for p in 0..PRODUCERS {
                s.spawn(move || {
                    let base = p * PER_PRODUCER;
                    for i in 0..PER_PRODUCER {
                        // Spin on Full: the consumers guarantee progress.
                        let mut batch = vec![base + i];
                        loop {
                            match q.try_push_batch(batch) {
                                Ok(()) => break,
                                Err(e) => {
                                    assert!(e.is_retryable());
                                    batch = e.into_items();
                                    std::thread::yield_now();
                                }
                            }
                        }
                    }
                });
            }
            for _ in 0..3 {
                s.spawn(move || {
                    while let Some(v) = q.pop() {
                        consumed.fetch_add(1, Ordering::Relaxed);
                        sum.fetch_add(v, Ordering::Relaxed);
                    }
                });
            }
            // Producers finish first (scope join order: close after they
            // are done requires knowing; emulate by polling).
            while consumed.load(Ordering::Relaxed) < PRODUCERS * PER_PRODUCER {
                std::thread::yield_now();
            }
            q.close();
        });
        let n = PRODUCERS * PER_PRODUCER;
        assert_eq!(consumed.load(Ordering::Relaxed), n);
        assert_eq!(sum.load(Ordering::Relaxed), n * (n - 1) / 2);
        assert!(q.peak_len() <= q.capacity());
    }

    #[test]
    fn fifo_order_within_a_single_consumer() {
        let q: BoundedQueue<u32> = BoundedQueue::new(8);
        q.try_push_batch(vec![1, 2, 3]).unwrap();
        q.try_push_batch(vec![4]).unwrap();
        assert_eq!(q.try_pop(), Some(1));
        assert_eq!(q.try_pop(), Some(2));
        assert_eq!(q.try_pop(), Some(3));
        assert_eq!(q.try_pop(), Some(4));
        assert_eq!(q.try_pop(), None);
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let q: BoundedQueue<u32> = BoundedQueue::new(1);
        q.try_push_batch(vec![9]).unwrap();
        // Full queue still admits the empty batch.
        q.try_push_batch(Vec::new()).expect("empty batch");
        assert_eq!(q.len(), 1);
    }
}
