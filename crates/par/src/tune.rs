//! Blocking configuration for the three-level GEMM: register-tile shape
//! `(MR, NR)` plus cache-block sizes `(KC, MC, NC)`, bundled with the
//! matching micro-kernel as a [`GemmPlan`].
//!
//! The plan every public `gemm*` entry point uses is resolved once per
//! process by [`active_plan`]:
//!
//! 1. If `CQ_TUNE_FILE` is set, the profile at that path is loaded.
//!    Unreadable files, malformed profiles, or a profile tuned for a
//!    different SIMD level than the one running abort with a diagnostic
//!    — a half-applied tuning result is worse than none.
//! 2. Otherwise a committed default profile for the active SIMD level is
//!    used (`crates/par/profiles/{avx2,scalar}.profile`, regenerated
//!    with the `cq-tune` crate's `cq_tune` binary — see EXPERIMENTS.md).
//!
//! The profile format is deliberately line-based and dependency-free:
//!
//! ```text
//! # cq-tune gemm profile v1
//! simd = avx2
//! mr = 6
//! nr = 16
//! kc = 256
//! mc = 72
//! nc = 1024
//! ```
//!
//! Unknown keys, duplicate keys, missing keys and unparsable values are
//! all hard errors, matching the strict `CQ_BACKEND`/`CQ_THREADS`
//! validation precedent.

use crate::microkernel::{
    kernel_for, simd_level, KernFn, SimdLevel, MAX_MR, MAX_NR, SUPPORTED_TILES,
};
use std::sync::OnceLock;

/// Blocking parameters for the three-level GEMM loop nest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileConfig {
    /// Register-tile rows (micro-kernel `MR`).
    pub mr: usize,
    /// Register-tile columns (micro-kernel `NR`).
    pub nr: usize,
    /// Reduction-dimension block: one packed A panel strip and B panel
    /// cover `kc` of `k` at a time (sized for L1/L2 residency).
    pub kc: usize,
    /// Row block: `mc` rows of A are packed and reused across the full
    /// `nc`-wide B panel (sized for L2 residency).
    pub mc: usize,
    /// Column block: `nc` columns of B are packed per outer iteration
    /// (sized for L3/memory-bandwidth amortization).
    pub nc: usize,
}

impl TileConfig {
    /// Checks the configuration is runnable: a supported `(mr, nr)` pair
    /// and positive block sizes no smaller than the register tile.
    pub fn validate(&self) -> Result<(), String> {
        if !SUPPORTED_TILES.contains(&(self.mr, self.nr)) {
            return Err(format!(
                "unsupported register tile {}x{}: supported tiles are {:?}",
                self.mr, self.nr, SUPPORTED_TILES
            ));
        }
        debug_assert!(self.mr <= MAX_MR && self.nr <= MAX_NR);
        if self.kc == 0 {
            return Err("kc must be positive".to_string());
        }
        if self.mc < self.mr {
            return Err(format!("mc ({}) must be >= mr ({})", self.mc, self.mr));
        }
        if self.nc < self.nr {
            return Err(format!("nc ({}) must be >= nr ({})", self.nc, self.nr));
        }
        Ok(())
    }
}

/// A validated, runnable GEMM configuration: SIMD level, blocking, and
/// the resolved micro-kernel function.
#[derive(Clone, Copy)]
pub struct GemmPlan {
    /// Micro-kernel family the plan was built for.
    pub simd: SimdLevel,
    /// Blocking parameters.
    pub cfg: TileConfig,
    pub(crate) kern: KernFn,
}

impl std::fmt::Debug for GemmPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GemmPlan")
            .field("simd", &self.simd)
            .field("cfg", &self.cfg)
            .finish()
    }
}

impl GemmPlan {
    /// Builds a plan from a SIMD level and blocking config.
    ///
    /// Fails if the config is invalid or the level has no kernel for the
    /// requested tile on this target.
    pub fn new(simd: SimdLevel, cfg: TileConfig) -> Result<GemmPlan, String> {
        cfg.validate()?;
        let kern = kernel_for(simd, cfg.mr, cfg.nr).ok_or_else(|| {
            format!(
                "no {} micro-kernel for tile {}x{} on this target",
                simd.name(),
                cfg.mr,
                cfg.nr
            )
        })?;
        Ok(GemmPlan { simd, cfg, kern })
    }

    /// One-line human-readable description (`avx2 6x16 kc=256 mc=72 nc=1024`).
    pub fn describe(&self) -> String {
        format!(
            "{} {}x{} kc={} mc={} nc={}",
            self.simd.name(),
            self.cfg.mr,
            self.cfg.nr,
            self.cfg.kc,
            self.cfg.mc,
            self.cfg.nc
        )
    }
}

/// Header line every profile must start with.
const PROFILE_HEADER: &str = "# cq-tune gemm profile v1";

/// Renders a profile in the format [`parse_profile`] reads.
pub fn render_profile(simd: SimdLevel, cfg: &TileConfig) -> String {
    format!(
        "{PROFILE_HEADER}\nsimd = {}\nmr = {}\nnr = {}\nkc = {}\nmc = {}\nnc = {}\n",
        simd.name(),
        cfg.mr,
        cfg.nr,
        cfg.kc,
        cfg.mc,
        cfg.nc
    )
}

/// Parses a profile produced by [`render_profile`] (or hand-edited in the
/// same format). Strict: the version header must match, every key must
/// appear exactly once, and no unknown keys are allowed.
pub fn parse_profile(text: &str) -> Result<(SimdLevel, TileConfig), String> {
    let mut lines = text.lines();
    match lines.next() {
        Some(h) if h.trim() == PROFILE_HEADER => {}
        other => {
            return Err(format!(
                "profile must start with {PROFILE_HEADER:?}, found {other:?}"
            ))
        }
    }
    let mut simd: Option<SimdLevel> = None;
    let mut vals: [Option<usize>; 5] = [None; 5];
    const KEYS: [&str; 5] = ["mr", "nr", "kc", "mc", "nc"];
    for (lineno, raw) in lines.enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| format!("line {}: expected `key = value`, found {raw:?}", lineno + 2))?;
        let (key, value) = (key.trim(), value.trim());
        if key == "simd" {
            if simd.is_some() {
                return Err(format!("line {}: duplicate key \"simd\"", lineno + 2));
            }
            simd = Some(
                SimdLevel::parse(value)
                    .ok_or_else(|| format!("line {}: invalid simd level {value:?}", lineno + 2))?,
            );
            continue;
        }
        let slot = KEYS
            .iter()
            .position(|&k| k == key)
            .ok_or_else(|| format!("line {}: unknown key {key:?}", lineno + 2))?;
        if vals[slot].is_some() {
            return Err(format!("line {}: duplicate key {key:?}", lineno + 2));
        }
        let parsed: usize = value
            .parse()
            .map_err(|_| format!("line {}: invalid value {value:?} for {key:?}", lineno + 2))?;
        vals[slot] = Some(parsed);
    }
    let simd = simd.ok_or("profile is missing key \"simd\"")?;
    let mut out = [0usize; 5];
    for (i, v) in vals.iter().enumerate() {
        out[i] = v.ok_or_else(|| format!("profile is missing key {:?}", KEYS[i]))?;
    }
    let cfg = TileConfig {
        mr: out[0],
        nr: out[1],
        kc: out[2],
        mc: out[3],
        nc: out[4],
    };
    cfg.validate()?;
    Ok((simd, cfg))
}

/// Committed default blocking profile for a SIMD level (regenerate with
/// the `cq_tune` binary; see EXPERIMENTS.md).
pub fn default_profile(level: SimdLevel) -> (SimdLevel, TileConfig) {
    let text = match level {
        SimdLevel::Avx2 => include_str!("../profiles/avx2.profile"),
        SimdLevel::Scalar => include_str!("../profiles/scalar.profile"),
    };
    let (simd, cfg) = parse_profile(text)
        .unwrap_or_else(|e| panic!("committed {} profile is invalid: {e}", level.name()));
    assert_eq!(
        simd,
        level,
        "committed {} profile declares the wrong simd level",
        level.name()
    );
    (simd, cfg)
}

/// Resolves the process-wide plan: `CQ_TUNE_FILE` if set (fail-loud on
/// any problem), otherwise the committed default for the active SIMD
/// level. Resolved once; later env changes have no effect.
pub fn active_plan() -> &'static GemmPlan {
    static PLAN: OnceLock<GemmPlan> = OnceLock::new();
    PLAN.get_or_init(|| {
        let level = simd_level();
        let (simd, cfg) = match std::env::var("CQ_TUNE_FILE") {
            Ok(path) if !path.trim().is_empty() => {
                let text = std::fs::read_to_string(&path)
                    .unwrap_or_else(|e| panic!("CQ_TUNE_FILE={path:?} could not be read: {e}"));
                let (simd, cfg) = parse_profile(&text)
                    .unwrap_or_else(|e| panic!("CQ_TUNE_FILE={path:?} is invalid: {e}"));
                if simd != level {
                    panic!(
                        "CQ_TUNE_FILE={path:?} was tuned for the {} micro-kernels but this \
                         process runs {} (CQ_SIMD / feature detection); retune or unset it",
                        simd.name(),
                        level.name()
                    );
                }
                (simd, cfg)
            }
            _ => default_profile(level),
        };
        GemmPlan::new(simd, cfg).unwrap_or_else(|e| panic!("invalid GEMM plan: {e}"))
    })
}

/// Human-readable description of the plan [`active_plan`] resolved
/// (exposed for bench/diagnostic output).
pub fn describe_active_plan() -> String {
    active_plan().describe()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(mr: usize, nr: usize, kc: usize, mc: usize, nc: usize) -> TileConfig {
        TileConfig { mr, nr, kc, mc, nc }
    }

    #[test]
    fn profile_round_trips() {
        for &(mr, nr) in &SUPPORTED_TILES {
            let c = cfg(mr, nr, 128, 144, 512);
            for level in [SimdLevel::Scalar, SimdLevel::Avx2] {
                let text = render_profile(level, &c);
                assert_eq!(parse_profile(&text), Ok((level, c)));
            }
        }
    }

    #[test]
    fn parse_rejects_malformed_profiles() {
        let good = render_profile(SimdLevel::Scalar, &cfg(6, 8, 256, 72, 512));
        assert!(parse_profile(&good).is_ok());
        // Wrong/missing header.
        assert!(parse_profile("simd = scalar\n")
            .unwrap_err()
            .contains("start with"));
        assert!(parse_profile("").unwrap_err().contains("start with"));
        // Unknown, duplicate and missing keys; bad values.
        let with = |extra: &str| format!("{good}{extra}\n");
        assert!(parse_profile(&with("kr = 3"))
            .unwrap_err()
            .contains("unknown key"));
        assert!(parse_profile(&with("mr = 6"))
            .unwrap_err()
            .contains("duplicate"));
        assert!(parse_profile(&with("simd = avx2"))
            .unwrap_err()
            .contains("duplicate"));
        let missing = good
            .lines()
            .filter(|l| !l.starts_with("nc"))
            .collect::<Vec<_>>()
            .join("\n");
        assert!(parse_profile(&missing).unwrap_err().contains("\"nc\""));
        let bad_val = good.replace("kc = 256", "kc = many");
        assert!(parse_profile(&bad_val)
            .unwrap_err()
            .contains("invalid value"));
        let bad_simd = good.replace("simd = scalar", "simd = sse9");
        assert!(parse_profile(&bad_simd)
            .unwrap_err()
            .contains("invalid simd"));
        let no_eq = good.replace("kc = 256", "kc 256");
        assert!(parse_profile(&no_eq).unwrap_err().contains("key = value"));
        // Comments and blank lines are fine.
        let commented = good.replace("kc = 256", "# a comment\n\nkc = 256");
        assert!(parse_profile(&commented).is_ok());
        // Validation runs on parsed configs.
        let bad_tile = good.replace("mr = 6", "mr = 7");
        assert!(parse_profile(&bad_tile)
            .unwrap_err()
            .contains("unsupported register tile"));
    }

    #[test]
    fn validate_rejects_bad_blocking() {
        assert!(cfg(6, 8, 256, 72, 512).validate().is_ok());
        assert!(cfg(7, 8, 256, 72, 512)
            .validate()
            .unwrap_err()
            .contains("unsupported"));
        assert!(cfg(6, 8, 0, 72, 512).validate().unwrap_err().contains("kc"));
        assert!(cfg(6, 8, 256, 4, 512)
            .validate()
            .unwrap_err()
            .contains("mc"));
        assert!(cfg(6, 8, 256, 72, 4).validate().unwrap_err().contains("nc"));
    }

    #[test]
    fn committed_default_profiles_are_valid() {
        for level in [SimdLevel::Scalar, SimdLevel::Avx2] {
            let (simd, c) = default_profile(level);
            assert_eq!(simd, level);
            // Scalar plans must always be constructible; avx2 needs hw.
            if level == SimdLevel::Scalar {
                assert!(GemmPlan::new(simd, c).is_ok());
            } else {
                assert!(c.validate().is_ok());
            }
        }
    }

    #[test]
    fn plan_new_rejects_invalid() {
        assert!(GemmPlan::new(SimdLevel::Scalar, cfg(6, 8, 256, 72, 512)).is_ok());
        assert!(GemmPlan::new(SimdLevel::Scalar, cfg(5, 8, 256, 72, 512)).is_err());
    }
}
