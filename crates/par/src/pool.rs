//! Scoped worker pool with row-range partitioning.
//!
//! The pool holds no long-lived threads: every parallel region spawns
//! scoped `std::thread`s (`std::thread::scope`), which lets workers borrow
//! the caller's data without `'static` bounds or reference counting. Spawn
//! cost (~tens of microseconds per worker) is amortized by handing each
//! worker a contiguous chunk of at least `min_chunk` work items; callers
//! with tiny workloads should stay serial (see the thresholds in
//! [`crate::gemm`]).

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// A fan-out helper over scoped `std::thread`s.
///
/// `threads` is the *maximum* concurrency of any parallel region; regions
/// with fewer chunks than threads spawn fewer workers. A pool with one
/// thread runs everything on the caller's thread (useful as a serial
/// reference and on single-core machines).
///
/// # Examples
///
/// ```
/// use cq_par::Pool;
///
/// let pool = Pool::new(4);
/// let squares = pool.parallel_map(8, |i| i * i);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// ```
#[derive(Debug)]
pub struct Pool {
    threads: usize,
}

impl Pool {
    /// Creates a pool with the given maximum worker count (clamped to ≥ 1).
    pub fn new(threads: usize) -> Self {
        Pool {
            threads: threads.max(1),
        }
    }

    /// The process-wide pool.
    ///
    /// Thread count comes from the `CQ_THREADS` environment variable if set
    /// to a positive integer, else from `std::thread::available_parallelism`.
    pub fn global() -> &'static Pool {
        static GLOBAL: OnceLock<Pool> = OnceLock::new();
        GLOBAL.get_or_init(|| Pool::new(threads_from_env()))
    }

    /// Maximum number of workers this pool fans out to.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Splits `0..len` into at most `parts` contiguous ranges of at least
    /// `min_chunk` items each (the final range may be larger), balanced to
    /// within one item. Returns no ranges for `len == 0`.
    pub fn partition(len: usize, parts: usize, min_chunk: usize) -> Vec<Range<usize>> {
        if len == 0 {
            return Vec::new();
        }
        let min_chunk = min_chunk.max(1);
        let parts = parts.max(1).min((len / min_chunk).max(1));
        let base = len / parts;
        let rem = len % parts;
        let mut ranges = Vec::with_capacity(parts);
        let mut start = 0;
        for i in 0..parts {
            let size = base + usize::from(i < rem);
            ranges.push(start..start + size);
            start += size;
        }
        ranges
    }

    /// Runs `f` over contiguous sub-ranges of `0..len`, in parallel.
    ///
    /// The first range runs on the calling thread; a panic in any worker
    /// propagates to the caller once all workers have finished.
    pub fn parallel_for<F>(&self, len: usize, min_chunk: usize, f: F)
    where
        F: Fn(Range<usize>) + Sync,
    {
        let ranges = Self::partition(len, self.threads, min_chunk);
        let mut region = cq_obs::span!("par", "parallel_for");
        if region.is_recording() {
            region
                .arg("items", len)
                .arg("chunks", ranges.len())
                .arg("max_workers", self.threads);
            cq_obs::counter!("par.regions").incr();
        }
        match ranges.len() {
            0 => {}
            1 => run_chunk(&f, ranges[0].clone()),
            _ => std::thread::scope(|s| {
                let f = &f;
                for r in &ranges[1..] {
                    let r = r.clone();
                    s.spawn(move || run_chunk(f, r));
                }
                run_chunk(&f, ranges[0].clone());
            }),
        }
    }

    /// Maps `f` over `0..n` with dynamic (work-stealing counter) scheduling
    /// and returns the results in index order.
    ///
    /// Suited to irregular work items (e.g. training runs of different
    /// networks); each worker repeatedly claims the next unclaimed index.
    /// A panic in any worker propagates after all workers have finished.
    pub fn parallel_map<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let mut region = cq_obs::span!("par", "parallel_map");
        if region.is_recording() {
            region.arg("tasks", n).arg("max_workers", self.threads);
            cq_obs::counter!("par.regions").incr();
            cq_obs::counter!("par.tasks_queued").add(n as u64);
        }
        if self.threads == 1 || n <= 1 {
            if region.is_recording() {
                cq_obs::counter!("par.tasks_run").add(n as u64);
            }
            return (0..n).map(f).collect();
        }
        let next = AtomicUsize::new(0);
        let workers = self.threads.min(n);
        let mut indexed: Vec<(usize, T)> = std::thread::scope(|s| {
            let (next, f) = (&next, &f);
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    s.spawn(move || {
                        let mut sp = cq_obs::span!("par", "worker {w}");
                        let mut local = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            local.push((i, f(i)));
                        }
                        if sp.is_recording() {
                            sp.arg("tasks", local.len());
                            cq_obs::counter!("par.tasks_run").add(local.len() as u64);
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| match h.join() {
                    Ok(v) => v,
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect()
        });
        indexed.sort_unstable_by_key(|&(i, _)| i);
        indexed.into_iter().map(|(_, v)| v).collect()
    }

    /// Partitions `data` (a `rows × row_width` row-major matrix) into
    /// contiguous row bands of at least `min_rows` rows and runs
    /// `f(first_row, band)` on each band in parallel.
    ///
    /// This is the safe backbone of the GEMM row partitioning: each worker
    /// gets exclusive `&mut` access to its band.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` is not a multiple of `row_width` (for
    /// non-empty data), or if a worker panics.
    pub fn parallel_row_chunks<T, F>(&self, data: &mut [T], row_width: usize, min_rows: usize, f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        if data.is_empty() {
            return;
        }
        assert!(row_width > 0, "row_width must be positive");
        assert_eq!(data.len() % row_width, 0, "data not a whole number of rows");
        let rows = data.len() / row_width;
        let ranges = Self::partition(rows, self.threads, min_rows);
        let mut region = cq_obs::span!("par", "parallel_row_chunks");
        if region.is_recording() {
            region
                .arg("rows", rows)
                .arg("bands", ranges.len())
                .arg("max_workers", self.threads);
            cq_obs::counter!("par.regions").incr();
        }
        if ranges.len() <= 1 {
            f(0, data);
            return;
        }
        std::thread::scope(|s| {
            let f = &f;
            let mut rest = data;
            for r in &ranges {
                let (band, tail) = rest.split_at_mut(r.len() * row_width);
                rest = tail;
                let first_row = r.start;
                s.spawn(move || f(first_row, band));
            }
        });
    }

    /// Partitions `data` into contiguous bands of whole `block_len`-element
    /// blocks and runs `f(first_block, band)` on each band in parallel.
    ///
    /// Unlike [`Pool::parallel_row_chunks`], the data need not be a whole
    /// number of blocks: the final block may be ragged (shorter than
    /// `block_len`), and it always lands in the last band. This is the
    /// backbone of block-local quantization fan-out, where LDQ block
    /// boundaries — not row boundaries — are the unit of independence.
    ///
    /// Band boundaries depend only on `(data.len(), block_len, min_blocks,
    /// threads)` and every block is processed by exactly one worker, so
    /// callers whose per-block work is a pure function of the block get
    /// results independent of the worker count.
    ///
    /// # Panics
    ///
    /// Panics if `block_len` is zero (for non-empty data), or if a worker
    /// panics.
    pub fn parallel_block_chunks<T, F>(
        &self,
        data: &mut [T],
        block_len: usize,
        min_blocks: usize,
        f: F,
    ) where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        if data.is_empty() {
            return;
        }
        assert!(block_len > 0, "block_len must be positive");
        let blocks = data.len().div_ceil(block_len);
        let ranges = Self::partition(blocks, self.threads, min_blocks);
        let mut region = cq_obs::span!("par", "parallel_block_chunks");
        if region.is_recording() {
            region
                .arg("blocks", blocks)
                .arg("bands", ranges.len())
                .arg("max_workers", self.threads);
            cq_obs::counter!("par.regions").incr();
        }
        if ranges.len() <= 1 {
            f(0, data);
            return;
        }
        std::thread::scope(|s| {
            let f = &f;
            let mut rest = data;
            for r in &ranges {
                // Only the final band can be ragged; `min` absorbs it.
                let band_elems = (r.len() * block_len).min(rest.len());
                let (band, tail) = rest.split_at_mut(band_elems);
                rest = tail;
                let first_block = r.start;
                s.spawn(move || f(first_block, band));
            }
        });
    }
}

impl Default for Pool {
    fn default() -> Self {
        Pool::new(threads_from_env())
    }
}

/// Runs one worker's chunk, accounting per-worker busy time and item
/// throughput when tracing is enabled. With tracing off this is a plain
/// call — no clock reads.
fn run_chunk<F>(f: &F, r: Range<usize>)
where
    F: Fn(Range<usize>) + Sync,
{
    if !cq_obs::enabled() {
        f(r);
        return;
    }
    let items = r.len();
    let start = std::time::Instant::now();
    f(r);
    let busy_us = start.elapsed().as_secs_f64() * 1e6;
    cq_obs::counter!("par.chunks_run").incr();
    cq_obs::counter!("par.items_run").add(items as u64);
    cq_obs::counter!("par.busy_us").add(busy_us as u64);
}

/// Resolves a raw `CQ_THREADS` value to a worker count. `None` or an
/// empty string means "unset" (`Ok(None)`, caller picks the hardware
/// default); anything else must be a positive integer or the run aborts.
/// A typo like `CQ_THREADS=fuor` used to silently use all cores, which
/// quietly invalidates scaling experiments.
fn resolve_env_threads(raw: Option<&str>) -> Result<Option<usize>, String> {
    let Some(v) = raw else { return Ok(None) };
    if v.trim().is_empty() {
        return Ok(None);
    }
    match v.trim().parse::<usize>() {
        Ok(n) if n >= 1 => Ok(Some(n)),
        _ => Err(format!(
            "invalid CQ_THREADS value {v:?}: expected a positive integer"
        )),
    }
}

fn threads_from_env() -> usize {
    let raw = std::env::var("CQ_THREADS").ok();
    match resolve_env_threads(raw.as_deref()) {
        Ok(Some(n)) => n,
        Ok(None) => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        Err(msg) => panic!("{msg}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn partition_balances_and_respects_min_chunk() {
        let r = Pool::partition(10, 4, 1);
        assert_eq!(r, vec![0..3, 3..6, 6..8, 8..10]);
        // min_chunk caps the number of parts.
        let r = Pool::partition(10, 8, 4);
        assert_eq!(r, vec![0..5, 5..10]);
        // One big part when min_chunk exceeds len.
        assert_eq!(Pool::partition(3, 8, 100), vec![0..3]);
    }

    #[test]
    fn parallel_for_empty_range_is_noop() {
        let hits = AtomicUsize::new(0);
        Pool::new(4).parallel_for(0, 1, |_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 0);
        assert_eq!(Pool::new(4).parallel_map(0, |i| i), Vec::<usize>::new());
    }

    #[test]
    fn parallel_for_covers_every_index_exactly_once() {
        let len = 1000;
        let counts: Vec<AtomicUsize> = (0..len).map(|_| AtomicUsize::new(0)).collect();
        Pool::new(3).parallel_for(len, 7, |range| {
            for i in range {
                counts[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn more_threads_than_rows() {
        // 8 workers, 3 rows: must still produce each row exactly once.
        let pool = Pool::new(8);
        assert_eq!(pool.parallel_map(3, |i| i * 2), vec![0, 2, 4]);
        let mut data = vec![0u32; 3 * 2];
        pool.parallel_row_chunks(&mut data, 2, 1, |first_row, band| {
            for (r, row) in band.chunks_mut(2).enumerate() {
                row.fill((first_row + r) as u32);
            }
        });
        assert_eq!(data, vec![0, 0, 1, 1, 2, 2]);
    }

    #[test]
    fn parallel_map_preserves_order_under_dynamic_scheduling() {
        let pool = Pool::new(5);
        let out = pool.parallel_map(100, |i| {
            // Uneven work to force out-of-order completion.
            if i % 7 == 0 {
                std::thread::yield_now();
            }
            i as u64 * 3
        });
        assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<u64>>());
    }

    #[test]
    fn worker_panic_propagates_from_parallel_map() {
        let result = std::panic::catch_unwind(|| {
            Pool::new(4).parallel_map(16, |i| {
                if i == 11 {
                    panic!("worker 11 exploded");
                }
                i
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn worker_panic_propagates_from_parallel_for() {
        let result = std::panic::catch_unwind(|| {
            Pool::new(4).parallel_for(16, 1, |range| {
                if range.contains(&13) {
                    panic!("range worker exploded");
                }
            });
        });
        assert!(result.is_err());
    }

    #[test]
    fn block_chunks_cover_ragged_tail_exactly_once() {
        // 10 elements in blocks of 4: blocks are [0..4), [4..8), [8..10).
        for threads in [1, 2, 3, 8] {
            let mut data = vec![0u32; 10];
            Pool::new(threads).parallel_block_chunks(&mut data, 4, 1, |first_block, band| {
                // Stamp each element with its block index: chunks(4) inside
                // a band re-derives the global block boundaries.
                for (j, chunk) in band.chunks_mut(4).enumerate() {
                    chunk.fill((first_block + j) as u32 + 1);
                }
            });
            assert_eq!(
                data,
                vec![1, 1, 1, 1, 2, 2, 2, 2, 3, 3],
                "threads={threads}"
            );
        }
    }

    #[test]
    fn block_chunks_band_boundaries_align_to_blocks() {
        // Record each band's (first_block, len) and check alignment.
        let mut data = vec![0u8; 103];
        let bands = std::sync::Mutex::new(Vec::new());
        Pool::new(4).parallel_block_chunks(&mut data, 10, 1, |first_block, band| {
            bands.lock().unwrap().push((first_block, band.len()));
        });
        let mut bands = bands.into_inner().unwrap();
        bands.sort_unstable();
        let mut expected_start = 0usize;
        for (i, &(first_block, len)) in bands.iter().enumerate() {
            assert_eq!(first_block * 10, expected_start);
            if i + 1 < bands.len() {
                assert_eq!(len % 10, 0, "only the last band may be ragged");
            }
            expected_start += len;
        }
        assert_eq!(expected_start, 103);
    }

    #[test]
    fn block_chunks_empty_and_single() {
        Pool::new(4).parallel_block_chunks(&mut [] as &mut [u8], 4, 1, |_, _| {
            panic!("must not run on empty data")
        });
        let mut one = [7u8; 3];
        Pool::new(4).parallel_block_chunks(&mut one, 64, 1, |first, band| {
            assert_eq!(first, 0);
            assert_eq!(band.len(), 3);
        });
    }

    #[test]
    fn block_chunks_reject_zero_block_len() {
        let result = std::panic::catch_unwind(|| {
            Pool::new(2).parallel_block_chunks(&mut [0u8; 5], 0, 1, |_, _| {});
        });
        assert!(result.is_err());
    }

    #[test]
    fn row_chunks_reject_ragged_data() {
        let result = std::panic::catch_unwind(|| {
            Pool::new(2).parallel_row_chunks(&mut [0u8; 5], 2, 1, |_, _| {});
        });
        assert!(result.is_err());
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = Pool::new(1);
        assert_eq!(pool.threads(), 1);
        assert_eq!(pool.parallel_map(4, |i| i + 1), vec![1, 2, 3, 4]);
    }

    #[test]
    fn zero_thread_request_clamps_to_one() {
        assert_eq!(Pool::new(0).threads(), 1);
    }

    #[test]
    fn env_thread_resolution_rejects_garbage() {
        assert_eq!(resolve_env_threads(None), Ok(None));
        assert_eq!(resolve_env_threads(Some("")), Ok(None));
        assert_eq!(resolve_env_threads(Some("  ")), Ok(None));
        assert_eq!(resolve_env_threads(Some("4")), Ok(Some(4)));
        assert_eq!(resolve_env_threads(Some(" 16 ")), Ok(Some(16)));
        for bad in ["fuor", "0", "-2", "3.5", "4 threads"] {
            let err = resolve_env_threads(Some(bad)).unwrap_err();
            assert!(err.contains("invalid CQ_THREADS"), "{err}");
            assert!(err.contains("positive integer"), "{err}");
        }
    }
}
