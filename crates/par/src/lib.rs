//! # cq-par — parallel tiled compute backend
//!
//! The hot path of the whole reproduction — HQT quantization sweeps, the
//! six-network training workloads, the fault sweep — funnels through the
//! dense kernels in `cq-tensor`. This crate provides the *fast* versions of
//! those kernels plus the thread pool they (and the experiment sweeps) run
//! on:
//!
//! * [`Pool`] — a scoped `std::thread` worker pool with row-range
//!   partitioning, a dynamically scheduled [`Pool::parallel_map`], and
//!   panic propagation. No external dependencies (the build environment is
//!   offline, matching the `shims/` precedent).
//! * [`gemm`], [`gemm_at`], [`gemm_bt`] — cache-blocked, register-tiled
//!   (4×8 accumulator micro-kernel) matrix multiplies over raw `f32`
//!   slices.
//! * [`conv`] — an im2col lowering that turns 2-D convolution (forward,
//!   input-gradient and weight-gradient passes) into GEMM calls.
//!
//! The crate deliberately operates on raw slices, not `cq-tensor`
//! tensors, so `cq-tensor` can depend on it without a cycle; shape checks
//! and the `Backend` dispatch live in `cq_tensor::ops`.
//!
//! # Determinism
//!
//! All kernels accumulate each output element over the reduction dimension
//! in ascending index order — the same order as the naive reference
//! kernels — so, absent FMA contraction (which rustc does not perform by
//! default), results are bitwise identical to the naive backend. Tiling
//! and threading change *which* elements are computed together, never the
//! per-element summation order.
//!
//! # Examples
//!
//! ```
//! use cq_par::{gemm, Pool};
//!
//! // [1,2;3,4] × identity
//! let a = [1.0, 2.0, 3.0, 4.0];
//! let b = [1.0, 0.0, 0.0, 1.0];
//! let mut out = [0.0f32; 4];
//! gemm(2, 2, 2, &a, &b, &mut out, Pool::global());
//! assert_eq!(out, a);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod catch;
pub mod conv;
mod gemm;
mod pool;

pub use catch::catch_task;
pub use gemm::{gemm, gemm_at, gemm_bt, transpose};
pub use pool::Pool;
