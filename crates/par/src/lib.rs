//! # cq-par — parallel tiled compute backend
//!
//! The hot path of the whole reproduction — HQT quantization sweeps, the
//! six-network training workloads, the fault sweep — funnels through the
//! dense kernels in `cq-tensor`. This crate provides the *fast* versions of
//! those kernels plus the thread pool they (and the experiment sweeps) run
//! on:
//!
//! * [`Pool`] — a scoped `std::thread` worker pool with row-range
//!   partitioning, a dynamically scheduled [`Pool::parallel_map`], and
//!   panic propagation. No external dependencies (the build environment is
//!   offline, matching the `shims/` precedent).
//! * [`gemm`], [`gemm_at`], [`gemm_bt`] — three-level cache-blocked
//!   matrix multiplies: a runtime-selected SIMD micro-kernel (AVX2/FMA
//!   on x86_64, portable scalar fallback — see [`SimdLevel`]) under
//!   KC/MC/NC panel blocking with packed-operand reuse, parameterized by
//!   a tunable [`GemmPlan`] (see [`active_plan`] and the `cq-tune`
//!   crate). The transposed variants pack their transposed operand
//!   directly — no scratch transpose.
//! * [`gemm_i8`], [`gemm_i8_at`], [`gemm_i8_bt`] — the dequantization-free
//!   integer twins: i8×i8→i32 under the same blocking hierarchy, with
//!   AVX2 `vpmaddwd` micro-kernels (two reduction steps per instruction)
//!   and a scalar fallback that reproduces their wrapping-i32 semantics
//!   exactly. Integer accumulation is associative, so these are bitwise
//!   identical across SIMD levels *and* thread counts.
//! * [`PackedA`] / [`gemm_prepacked`] — pack a left operand once, reuse
//!   its panels across many GEMMs (the im2col conv paths multiply one
//!   weight matrix against every image's patch matrix).
//! * [`conv`] — an im2col lowering that turns 2-D convolution (forward,
//!   input-gradient and weight-gradient passes) into GEMM calls.
//!
//! The crate deliberately operates on raw slices, not `cq-tensor`
//! tensors, so `cq-tensor` can depend on it without a cycle; shape checks
//! and the `Backend` dispatch live in `cq_tensor::ops`.
//!
//! # Determinism
//!
//! All kernels accumulate each output element over the reduction dimension
//! in ascending index order — reduction (`KC`) blocks advance in order and
//! each micro-kernel sums its block ascending — so, for a fixed SIMD level
//! and plan, results are bitwise identical across thread counts, bandings
//! and batch-path choices (prepacked vs on-the-fly packing). Tiling and
//! threading change *which* elements are computed together, never the
//! per-element operation sequence.
//!
//! The *bit-identity* contract with the naive backend belongs to the
//! Naive path alone: the AVX2 micro-kernels use fused multiply-add, whose
//! skipped intermediate rounding shifts results within the documented
//! backend-parity tolerance (`k · amax · bmax · 8ε` — see
//! `cq-tensor/tests/backend_parity.rs`). The scalar micro-kernel rounds
//! multiply and add separately, like the naive loops.
//!
//! # Examples
//!
//! ```
//! use cq_par::{gemm, Pool};
//!
//! // [1,2;3,4] × identity
//! let a = [1.0, 2.0, 3.0, 4.0];
//! let b = [1.0, 0.0, 0.0, 1.0];
//! let mut out = [0.0f32; 4];
//! gemm(2, 2, 2, &a, &b, &mut out, Pool::global());
//! assert_eq!(out, a);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

mod catch;
pub mod conv;
mod gemm;
mod gemm_i8;
mod microkernel;
mod pool;
pub mod queue;
pub mod tune;

pub use catch::catch_task;
pub use gemm::{
    gemm, gemm_at, gemm_at_with_plan, gemm_bt, gemm_bt_with_plan, gemm_prepacked, gemm_with_plan,
    transpose, PackedA,
};
pub use gemm_i8::{
    gemm_i8, gemm_i8_at, gemm_i8_at_with_plan, gemm_i8_bt, gemm_i8_bt_with_plan, gemm_i8_with_plan,
};
pub use microkernel::{simd_level, SimdLevel, SUPPORTED_TILES};
pub use pool::Pool;
pub use queue::{BatchRejected, BoundedQueue};
pub use tune::{
    active_plan, default_profile, describe_active_plan, parse_profile, render_profile, GemmPlan,
    TileConfig,
};
