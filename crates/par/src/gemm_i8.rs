//! Dequantization-free i8×i8→i32 GEMM: the integer compute path.
//!
//! Same three-level BLIS nest, banding and plan as [`crate::gemm`], but
//! the operands are quantized `i8` codes and the output is the exact
//! `i32` accumulation — no dequantize-to-f32 round trip. The caller
//! (`cq-nn`'s int path) applies a single scale at the output.
//!
//! # Packing layout
//!
//! Both operands are packed **sign-extended to `i16` in k-pairs** so the
//! AVX2 kernel can retire two reduction steps per `vpmaddwd`:
//!
//! * A panels: `ap[pp·MR·2 + i·2 + s] = A[i, 2pp+s]` — each 32-bit lane
//!   of a broadcast holds one row's `(k, k+1)` pair.
//! * B panels: `bp[pp·NR·2 + j·2 + s] = B[2pp+s, j]` — one 256-bit load
//!   covers 8 columns × 2 k-steps.
//!
//! The odd tail of `k` and ragged tile edges are zero-padded; padded
//! lanes contribute exact zeros to the integer accumulators.
//!
//! # Determinism
//!
//! Stronger than the f32 path: i32 addition is associative, so results
//! are **bitwise identical across SIMD levels, thread counts, tile
//! shapes and blockings** — the scalar kernel reproduces `vpmaddwd` +
//! `vpaddd` (wrapping) semantics exactly. For i8-ranged operands no
//! intermediate saturates; accumulator wraparound needs `k ≥ 2^17` at
//! worst-case magnitudes, far beyond any layer here, and even then both
//! families wrap identically.

// Micro-kernel invocations are raw-pointer calls (see microkernel.rs);
// every call site documents the bounds that make it sound.
#![allow(unsafe_code)]

use crate::gemm::PAR_MIN_MACS;
use crate::microkernel::{kernel_i8_for, KernI8Fn, MAX_MR, MAX_NR};
use crate::pool::Pool;
use crate::tune::{active_plan, GemmPlan};

/// A 64-byte-aligned i16 chunk: panel buffers built from these keep the
/// 512-bit B-panel loads on cache-line boundaries (a `Vec<i16>` is only
/// 2-aligned, which would split every zmm load across two lines).
#[derive(Clone, Copy)]
#[repr(align(64))]
struct AlignedChunk(#[allow(dead_code)] [i16; 32]); // read via raw pointer only

/// A 64-byte-aligned, zero-initialized i16 buffer for packed panels.
struct PanelBuf(Vec<AlignedChunk>);

impl PanelBuf {
    fn new(len: usize) -> PanelBuf {
        PanelBuf(vec![AlignedChunk([0; 32]); len.div_ceil(32)])
    }

    fn as_mut(&mut self) -> &mut [i16] {
        // SAFETY: AlignedChunk is exactly 32 contiguous i16s (align only
        // raises the start address), so the Vec's storage is a valid
        // i16 slice of 32·len chunks.
        unsafe {
            std::slice::from_raw_parts_mut(self.0.as_mut_ptr() as *mut i16, self.0.len() * 32)
        }
    }
}

/// A strided read-only i8 matrix view: element `(r, c)` lives at
/// `data[off + r·rs + c·cs]` (the i8 twin of `gemm::MatRef`).
#[derive(Clone, Copy)]
struct MatRefI8<'a> {
    data: &'a [i8],
    off: usize,
    rs: usize,
    cs: usize,
}

impl<'a> MatRefI8<'a> {
    fn row_major(data: &'a [i8], cols: usize) -> Self {
        MatRefI8 {
            data,
            off: 0,
            rs: cols,
            cs: 1,
        }
    }

    /// View of the same matrix starting `r0` rows down.
    fn band(self, r0: usize) -> Self {
        MatRefI8 {
            off: self.off + r0 * self.rs,
            ..self
        }
    }

    #[inline(always)]
    fn idx(&self, r: usize, c: usize) -> usize {
        self.off + r * self.rs + c * self.cs
    }
}

/// Packs the `mcb × kcb` block of `a` at `(i0, p0)` into `MR`-interleaved
/// k-pair panels of sign-extended i16: panel `ib` holds rows
/// `i0 + ib·mr ..`, laid out `dst[ib·kp·mr·2 + pp·mr·2 + ii·2 + s]` for
/// k-pair `pp` (`kp = ⌈kcb/2⌉`). Ragged final panels and the odd-`k`
/// tail are zero-padded.
fn pack_a_i8(
    a: MatRefI8<'_>,
    i0: usize,
    p0: usize,
    mcb: usize,
    kcb: usize,
    mr: usize,
    dst: &mut [i16],
) {
    let kp = kcb.div_ceil(2);
    for ib in 0..mcb.div_ceil(mr) {
        let panel = &mut dst[ib * kp * mr * 2..(ib + 1) * kp * mr * 2];
        let rows_here = mr.min(mcb - ib * mr);
        if rows_here < mr {
            panel.fill(0);
        }
        for ii in 0..rows_here {
            let row = i0 + ib * mr + ii;
            let mut src = a.idx(row, p0);
            for pp in 0..kp {
                panel[pp * mr * 2 + ii * 2] = a.data[src] as i16;
                panel[pp * mr * 2 + ii * 2 + 1] = if 2 * pp + 1 < kcb {
                    a.data[src + a.cs] as i16
                } else {
                    0
                };
                src += 2 * a.cs;
            }
        }
    }
}

/// Packs the `kcb × ncb` block of `b` at `(p0, j0)` into `NR`-column
/// k-pair panels: panel `jb` holds columns `j0 + jb·nr ..`, laid out
/// `dst[jb·kp·nr·2 + pp·nr·2 + jj·2 + s]`, zero-padded on the ragged
/// column edge and the odd-`k` tail.
fn pack_b_i8(
    b: MatRefI8<'_>,
    p0: usize,
    j0: usize,
    kcb: usize,
    ncb: usize,
    nr: usize,
    dst: &mut [i16],
) {
    let kp = kcb.div_ceil(2);
    for jb in 0..ncb.div_ceil(nr) {
        let panel = &mut dst[jb * kp * nr * 2..(jb + 1) * kp * nr * 2];
        let cols_here = nr.min(ncb - jb * nr);
        if cols_here < nr {
            panel.fill(0);
        }
        for pp in 0..kp {
            let row = &mut panel[pp * nr * 2..(pp + 1) * nr * 2];
            let (p, odd_tail) = (2 * pp, 2 * pp + 1 >= kcb);
            if b.cs == 1 && !odd_tail {
                // Contiguous fast path: interleave the two source rows
                // in one pass (vectorizes to sign-extend + unpack).
                let s0 = b.idx(p0 + p, j0 + jb * nr);
                let s1 = b.idx(p0 + p + 1, j0 + jb * nr);
                let (r0, r1) = (&b.data[s0..s0 + cols_here], &b.data[s1..s1 + cols_here]);
                for (jj, pair) in row.chunks_exact_mut(2).take(cols_here).enumerate() {
                    pair[0] = r0[jj] as i16;
                    pair[1] = r1[jj] as i16;
                }
            } else {
                for s in 0..2 {
                    if p + s < kcb {
                        let mut src = b.idx(p0 + p + s, j0 + jb * nr);
                        for jj in 0..cols_here {
                            row[jj * 2 + s] = b.data[src] as i16;
                            src += b.cs;
                        }
                    } else {
                        for jj in 0..cols_here {
                            row[jj * 2 + s] = 0;
                        }
                    }
                }
            }
        }
    }
}

/// The serial three-level loop nest over one band of output rows.
/// `out` is the row-major `rows × n` band; `a` covers exactly those rows.
#[allow(clippy::too_many_arguments)]
fn gemm_i8_blocked(
    plan: &GemmPlan,
    kern: KernI8Fn,
    rows: usize,
    k: usize,
    n: usize,
    a: MatRefI8<'_>,
    b: MatRefI8<'_>,
    out: &mut [i32],
) {
    let cfg = plan.cfg;
    let (mr, nr, kc, mc, nc) = (cfg.mr, cfg.nr, cfg.kc, cfg.mc, cfg.nc);
    let kp_max = kc.min(k).div_ceil(2);

    let mut bp_buf = PanelBuf::new(kp_max * 2 * nc.min(n).div_ceil(nr) * nr);
    let mut ap_buf = PanelBuf::new(kp_max * 2 * mc.min(rows).div_ceil(mr) * mr);
    let (bp, ap) = (bp_buf.as_mut(), ap_buf.as_mut());
    let mut scratch = [0i32; MAX_MR * MAX_NR];

    let mut jc = 0;
    while jc < n {
        let ncb = nc.min(n - jc);
        let mut pc = 0;
        let mut pci = 0;
        while pc < k {
            let kcb = kc.min(k - pc);
            let kp = kcb.div_ceil(2);
            pack_b_i8(b, pc, jc, kcb, ncb, nr, bp);
            // After the first reduction block, micro-kernels add into C.
            let acc = pci > 0;
            let mut ic = 0;
            while ic < rows {
                let mcb = mc.min(rows - ic);
                pack_a_i8(a, ic, pc, mcb, kcb, mr, ap);
                let mut jr = 0;
                while jr < ncb {
                    let nrb = nr.min(ncb - jr);
                    let bpanel = &bp[(jr / nr) * kp * nr * 2..];
                    let mut ir = 0;
                    while ir < mcb {
                        let mrb = mr.min(mcb - ir);
                        let apanel = &ap[(ir / mr) * kp * mr * 2..];
                        let (row, col) = (ic + ir, jc + jr);
                        if mrb == mr && nrb == nr {
                            // SAFETY: apanel/bpanel hold ≥ kp·mr·2 /
                            // kp·nr·2 i16s (full panels exist for full
                            // tiles); rows row..row+mr and cols
                            // col..col+nr are in bounds, so every write
                            // `i·n + j` from the tile base stays inside
                            // `out`.
                            unsafe {
                                kern(
                                    kp,
                                    apanel.as_ptr(),
                                    bpanel.as_ptr(),
                                    out.as_mut_ptr().add(row * n + col),
                                    n,
                                    acc,
                                );
                            }
                        } else {
                            // Ragged edge: compute the full zero-padded
                            // tile into scratch, then copy/add the valid
                            // `mrb × nrb` corner.
                            // SAFETY: panels as above (zero-padded to
                            // full size); scratch holds MAX_MR·MAX_NR ≥
                            // mr·nr i32s at ldc = nr.
                            unsafe {
                                kern(
                                    kp,
                                    apanel.as_ptr(),
                                    bpanel.as_ptr(),
                                    scratch.as_mut_ptr(),
                                    nr,
                                    false,
                                );
                            }
                            for ii in 0..mrb {
                                let o = (row + ii) * n + col;
                                let s = &scratch[ii * nr..ii * nr + nrb];
                                if acc {
                                    for (ov, &sv) in out[o..o + nrb].iter_mut().zip(s) {
                                        *ov = ov.wrapping_add(sv);
                                    }
                                } else {
                                    out[o..o + nrb].copy_from_slice(s);
                                }
                            }
                        }
                        ir += mr;
                    }
                    jr += nr;
                }
                ic += mc;
            }
            pc += kc;
            pci += 1;
        }
        jc += nc;
    }
}

/// Shared entry: handles degenerate shapes and the serial/banded split.
#[allow(clippy::too_many_arguments)]
fn run_i8(
    plan: &GemmPlan,
    m: usize,
    k: usize,
    n: usize,
    a: MatRefI8<'_>,
    b: MatRefI8<'_>,
    out: &mut [i32],
    pool: &Pool,
) {
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        out.fill(0);
        return;
    }
    // Every supported tile has an i8 kernel at both levels, so a valid
    // plan always resolves one (GemmPlan::new proved the tile+level).
    let kern = kernel_i8_for(plan.simd, plan.cfg.mr, plan.cfg.nr)
        .unwrap_or_else(|| panic!("no {} i8 micro-kernel for plan", plan.simd.name()));
    let min_rows = 4 * plan.cfg.mr;
    if pool.threads() == 1 || m * n * k < PAR_MIN_MACS {
        gemm_i8_blocked(plan, kern, m, k, n, a, b, out);
    } else {
        pool.parallel_row_chunks(out, n, min_rows, |first_row, band| {
            let rows = band.len() / n;
            gemm_i8_blocked(plan, kern, rows, k, n, a.band(first_row), b, band);
        });
    }
}

/// `out[m,n] = a[m,k] × b[k,n]` over `i8` codes with exact `i32`
/// accumulation, all row-major, using the process-wide [`active_plan`].
///
/// Results are bitwise identical across SIMD levels and thread counts
/// (integer accumulation is exact — see the module docs).
///
/// # Panics
///
/// Panics if slice lengths disagree with the dimensions.
///
/// # Examples
///
/// ```
/// use cq_par::{gemm_i8, Pool};
/// let a = [1i8, 2, 3, 4, 5, 6]; // 2x3
/// let b = [7i8, 8, 9, 10, 11, 12]; // 3x2
/// let mut out = [0i32; 4];
/// gemm_i8(2, 3, 2, &a, &b, &mut out, Pool::global());
/// assert_eq!(out, [58, 64, 139, 154]);
/// ```
pub fn gemm_i8(m: usize, k: usize, n: usize, a: &[i8], b: &[i8], out: &mut [i32], pool: &Pool) {
    gemm_i8_with_plan(active_plan(), m, k, n, a, b, out, pool);
}

/// [`gemm_i8`] with an explicit plan (used by parity tests and benches).
///
/// # Panics
///
/// Panics if slice lengths disagree with the dimensions.
#[allow(clippy::too_many_arguments)]
pub fn gemm_i8_with_plan(
    plan: &GemmPlan,
    m: usize,
    k: usize,
    n: usize,
    a: &[i8],
    b: &[i8],
    out: &mut [i32],
    pool: &Pool,
) {
    assert_eq!(a.len(), m * k, "gemm_i8: a length");
    assert_eq!(b.len(), k * n, "gemm_i8: b length");
    assert_eq!(out.len(), m * n, "gemm_i8: out length");
    run_i8(
        plan,
        m,
        k,
        n,
        MatRefI8::row_major(a, k),
        MatRefI8::row_major(b, n),
        out,
        pool,
    );
}

/// `out[m,n] = aᵀ × b` for `a[k,m]`, `b[k,n]` over `i8` codes (the
/// weight-gradient shape). Aᵀ is packed directly from its `[k, m]`
/// storage — no transpose materialization.
///
/// # Panics
///
/// Panics if slice lengths disagree with the dimensions.
pub fn gemm_i8_at(m: usize, k: usize, n: usize, a: &[i8], b: &[i8], out: &mut [i32], pool: &Pool) {
    gemm_i8_at_with_plan(active_plan(), m, k, n, a, b, out, pool);
}

/// [`gemm_i8_at`] with an explicit plan.
///
/// # Panics
///
/// Panics if slice lengths disagree with the dimensions.
#[allow(clippy::too_many_arguments)]
pub fn gemm_i8_at_with_plan(
    plan: &GemmPlan,
    m: usize,
    k: usize,
    n: usize,
    a: &[i8],
    b: &[i8],
    out: &mut [i32],
    pool: &Pool,
) {
    assert_eq!(a.len(), k * m, "gemm_i8_at: a length");
    assert_eq!(b.len(), k * n, "gemm_i8_at: b length");
    assert_eq!(out.len(), m * n, "gemm_i8_at: out length");
    // Element (i, p) of Aᵀ is a[p·m + i]: row stride 1, column stride m.
    let at = MatRefI8 {
        data: a,
        off: 0,
        rs: 1,
        cs: m,
    };
    run_i8(plan, m, k, n, at, MatRefI8::row_major(b, n), out, pool);
}

/// `out[m,n] = a × bᵀ` for `a[m,k]`, `b[n,k]` over `i8` codes (the
/// neuron-gradient shape, and the Dense forward layout: weights stored
/// `[out, in]`). Bᵀ is packed directly from its `[n, k]` storage.
///
/// # Panics
///
/// Panics if slice lengths disagree with the dimensions.
pub fn gemm_i8_bt(m: usize, k: usize, n: usize, a: &[i8], b: &[i8], out: &mut [i32], pool: &Pool) {
    gemm_i8_bt_with_plan(active_plan(), m, k, n, a, b, out, pool);
}

/// [`gemm_i8_bt`] with an explicit plan.
///
/// # Panics
///
/// Panics if slice lengths disagree with the dimensions.
#[allow(clippy::too_many_arguments)]
pub fn gemm_i8_bt_with_plan(
    plan: &GemmPlan,
    m: usize,
    k: usize,
    n: usize,
    a: &[i8],
    b: &[i8],
    out: &mut [i32],
    pool: &Pool,
) {
    assert_eq!(a.len(), m * k, "gemm_i8_bt: a length");
    assert_eq!(b.len(), n * k, "gemm_i8_bt: b length");
    assert_eq!(out.len(), m * n, "gemm_i8_bt: out length");
    // Element (p, j) of Bᵀ is b[j·k + p]: row stride 1, column stride k.
    let bt = MatRefI8 {
        data: b,
        off: 0,
        rs: 1,
        cs: k,
    };
    run_i8(plan, m, k, n, MatRefI8::row_major(a, k), bt, out, pool);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::microkernel::{SimdLevel, SUPPORTED_TILES};
    use crate::tune::TileConfig;
    use proptest::prelude::*;

    fn naive_i8(m: usize, k: usize, n: usize, a: &[i8], b: &[i8]) -> Vec<i32> {
        let mut out = vec![0i32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0i32;
                for p in 0..k {
                    acc = acc.wrapping_add(a[i * k + p] as i32 * b[p * n + j] as i32);
                }
                out[i * n + j] = acc;
            }
        }
        out
    }

    fn fill_i8(len: usize, seed: u32) -> Vec<i8> {
        // Full i8 range including -128/127: integer accumulation is
        // exact, so no value restriction is needed (unlike the f32 fill).
        let mut s = seed;
        (0..len)
            .map(|_| {
                s = s.wrapping_mul(1664525).wrapping_add(1013904223);
                (s >> 24) as i8
            })
            .collect()
    }

    fn transpose_i8(src: &[i8], rows: usize, cols: usize) -> Vec<i8> {
        let mut dst = vec![0i8; rows * cols];
        for r in 0..rows {
            for c in 0..cols {
                dst[c * rows + r] = src[r * cols + c];
            }
        }
        dst
    }

    /// Plans covering all supported tiles, degenerate blocking (every
    /// block boundary and the odd-k tail exercised) and the active
    /// level's defaults — mirrors `gemm::tests::test_plans`.
    fn test_plans() -> Vec<GemmPlan> {
        let mut levels = vec![SimdLevel::Scalar];
        let detected = crate::microkernel::simd_level();
        if detected != SimdLevel::Scalar {
            levels.push(detected);
        }
        let mut plans = Vec::new();
        for level in levels {
            for &(mr, nr) in &SUPPORTED_TILES {
                // Odd kc: the zero-padded k-pair tail fires every block.
                plans.push(
                    GemmPlan::new(
                        level,
                        TileConfig {
                            mr,
                            nr,
                            kc: 3,
                            mc: mr,
                            nc: nr,
                        },
                    )
                    .unwrap(),
                );
                plans.push(
                    GemmPlan::new(
                        level,
                        TileConfig {
                            mr,
                            nr,
                            kc: 16,
                            mc: 2 * mr + 1,
                            nc: 2 * nr + 3,
                        },
                    )
                    .unwrap(),
                );
            }
            plans.push(GemmPlan::new(level, crate::tune::default_profile(level).1).unwrap());
        }
        plans
    }

    #[test]
    fn matches_naive_on_awkward_shapes() {
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (4, 8, 8),
            (5, 7, 9),
            (13, 1, 17),
            (1, 64, 1),
            (33, 12, 41),
            (8, 100, 3),
        ] {
            let a = fill_i8(m * k, 1 + m as u32);
            let b = fill_i8(k * n, 99 + n as u32);
            let mut out = vec![0i32; m * n];
            for threads in [1, 4] {
                gemm_i8(m, k, n, &a, &b, &mut out, &Pool::new(threads));
                assert_eq!(out, naive_i8(m, k, n, &a, &b), "{m}x{k}x{n} t{threads}");
            }
        }
    }

    /// Every plan — scalar and detected level, all tiles, odd/even kc —
    /// produces the *same bits*: the i8 parity acceptance criterion.
    #[test]
    fn all_plans_agree_bitwise_with_naive() {
        for &(m, k, n) in &[(5usize, 7usize, 9usize), (17, 23, 19), (33, 40, 31)] {
            let a = fill_i8(m * k, 2 + m as u32);
            let b = fill_i8(k * n, 7 + n as u32);
            let want = naive_i8(m, k, n, &a, &b);
            for plan in test_plans() {
                let mut out = vec![-1i32; m * n];
                gemm_i8_with_plan(&plan, m, k, n, &a, &b, &mut out, &Pool::new(1));
                assert_eq!(out, want, "{m}x{k}x{n} plan {}", plan.describe());
            }
        }
    }

    #[test]
    fn zero_k_yields_zero_output() {
        let mut out = vec![1i32; 6];
        gemm_i8(2, 0, 3, &[], &[], &mut out, &Pool::new(2));
        assert_eq!(out, vec![0; 6]);
    }

    #[test]
    fn empty_output_is_noop() {
        let mut out = vec![];
        gemm_i8(0, 5, 3, &[], &fill_i8(15, 3), &mut out, &Pool::new(2));
        gemm_i8(3, 5, 0, &fill_i8(15, 3), &[], &mut out, &Pool::new(2));
    }

    #[test]
    fn transposed_variants_match_explicit_transpose() {
        let (m, k, n) = (9, 11, 7);
        let a_t = fill_i8(k * m, 5); // a stored as [k, m]
        let b = fill_i8(k * n, 6);
        let b_t = fill_i8(n * k, 7); // b stored as [n, k]
        let a = fill_i8(m * k, 8);
        let pool = Pool::new(2);

        let at = transpose_i8(&a_t, k, m);
        let mut got = vec![0i32; m * n];
        gemm_i8_at(m, k, n, &a_t, &b, &mut got, &pool);
        assert_eq!(got, naive_i8(m, k, n, &at, &b));

        let bt = transpose_i8(&b_t, n, k);
        gemm_i8_bt(m, k, n, &a, &b_t, &mut got, &pool);
        assert_eq!(got, naive_i8(m, k, n, &a, &bt));
    }

    #[test]
    fn transposed_variants_match_across_plans() {
        let (m, k, n) = (13, 19, 11);
        let a_t = fill_i8(k * m, 15);
        let b = fill_i8(k * n, 16);
        let b_t = fill_i8(n * k, 17);
        let a = fill_i8(m * k, 18);
        let want_at = naive_i8(m, k, n, &transpose_i8(&a_t, k, m), &b);
        let want_bt = naive_i8(m, k, n, &a, &transpose_i8(&b_t, n, k));
        for plan in test_plans() {
            let mut got = vec![0i32; m * n];
            gemm_i8_at_with_plan(&plan, m, k, n, &a_t, &b, &mut got, &Pool::new(1));
            assert_eq!(got, want_at, "gemm_i8_at plan {}", plan.describe());
            gemm_i8_bt_with_plan(&plan, m, k, n, &a, &b_t, &mut got, &Pool::new(1));
            assert_eq!(got, want_bt, "gemm_i8_bt plan {}", plan.describe());
        }
    }

    #[test]
    fn large_gemm_parallel_matches_serial_bitwise() {
        let (m, k, n) = (70, 91, 65); // > PAR_MIN_MACS, odd k, all edges
        let a = fill_i8(m * k, 11);
        let b = fill_i8(k * n, 12);
        let mut serial = vec![0i32; m * n];
        let mut par = vec![0i32; m * n];
        gemm_i8(m, k, n, &a, &b, &mut serial, &Pool::new(1));
        gemm_i8(m, k, n, &a, &b, &mut par, &Pool::new(8));
        assert_eq!(serial, par);
    }

    /// Extreme magnitudes: every element ±128/±127 for maximal partial
    /// products — guards the `pmaddwd` saturation analysis (no i16
    /// saturation can occur with sign-extended i8 pairs).
    #[test]
    fn extreme_values_stay_exact() {
        let (m, k, n) = (8, 33, 16);
        let a: Vec<i8> = (0..m * k)
            .map(|i| if i % 2 == 0 { -128 } else { 127 })
            .collect();
        let b: Vec<i8> = (0..k * n)
            .map(|i| if i % 3 == 0 { 127 } else { -128 })
            .collect();
        let want = naive_i8(m, k, n, &a, &b);
        for plan in test_plans() {
            let mut out = vec![0i32; m * n];
            gemm_i8_with_plan(&plan, m, k, n, &a, &b, &mut out, &Pool::new(1));
            assert_eq!(out, want, "plan {}", plan.describe());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Pair-packing invariant for A on ragged/odd-k blocks:
        /// `panel[pp·mr·2 + ii·2 + s]` is `a[(i0+ib·mr+ii), (p0+2pp+s)]`
        /// inside the block and exactly 0 in padded lanes (rows past the
        /// block and the odd-k tail).
        #[test]
        fn pack_a_i8_layout_invariant(
            (rows, k) in (0usize..12, 1usize..15),
            (mri, frac_i, frac_p) in (0usize..SUPPORTED_TILES.len(), 0.0f32..1.0, 0.0f32..1.0),
            seed in 0u32..1000,
        ) {
            let mr = SUPPORTED_TILES[mri].0;
            let a = fill_i8(rows * k, seed);
            let v = MatRefI8::row_major(&a, k);
            let i0 = ((rows as f32 * frac_i) as usize).min(rows);
            let p0 = ((k as f32 * frac_p) as usize).min(k - 1);
            let mcb = rows - i0;
            let kcb = k - p0;
            let kp = kcb.div_ceil(2);
            let mut dst = vec![i16::MIN; mcb.div_ceil(mr) * kp * mr * 2];
            pack_a_i8(v, i0, p0, mcb, kcb, mr, &mut dst);
            for ib in 0..mcb.div_ceil(mr) {
                for pp in 0..kp {
                    for ii in 0..mr {
                        for s in 0..2 {
                            let got = dst[ib * kp * mr * 2 + pp * mr * 2 + ii * 2 + s];
                            let row = i0 + ib * mr + ii;
                            let p = 2 * pp + s;
                            if ib * mr + ii < mcb && p < kcb {
                                prop_assert_eq!(got, a[row * k + p0 + p] as i16);
                            } else {
                                prop_assert_eq!(got, 0);
                            }
                        }
                    }
                }
            }
        }

        /// Same invariant for B panels, including the strided (cs > 1)
        /// path used by `gemm_i8_bt`.
        #[test]
        fn pack_b_i8_layout_invariant(
            (k, n) in (1usize..15, 0usize..20),
            (nri, strided) in (0usize..SUPPORTED_TILES.len(), any::<bool>()),
            seed in 0u32..1000,
        ) {
            let nr = SUPPORTED_TILES[nri].1;
            let b = fill_i8(k * n, seed);
            let bt: Vec<i8>;
            let v = if !strided {
                MatRefI8::row_major(&b, n)
            } else {
                bt = transpose_i8(&b, k, n);
                MatRefI8 { data: &bt, off: 0, rs: 1, cs: k }
            };
            let kp = k.div_ceil(2);
            let mut dst = vec![i16::MIN; n.div_ceil(nr) * kp * nr * 2];
            pack_b_i8(v, 0, 0, k, n, nr, &mut dst);
            for jb in 0..n.div_ceil(nr) {
                for pp in 0..kp {
                    for jj in 0..nr {
                        for s in 0..2 {
                            let got = dst[jb * kp * nr * 2 + pp * nr * 2 + jj * 2 + s];
                            let col = jb * nr + jj;
                            let p = 2 * pp + s;
                            if col < n && p < k {
                                prop_assert_eq!(got, b[p * n + col] as i16, "p={} col={}", p, col);
                            } else {
                                prop_assert_eq!(got, 0);
                            }
                        }
                    }
                }
            }
        }

        /// Blocked i8 GEMM equals naive bitwise on arbitrary small shapes
        /// for every plan.
        #[test]
        fn gemm_i8_matches_naive_proptest(
            (m, k, n) in (0usize..12, 0usize..12, 0usize..12),
            seed in 0u32..1000,
        ) {
            let a = fill_i8(m * k, seed);
            let b = fill_i8(k * n, seed ^ 0xabcd);
            let want = naive_i8(m, k, n, &a, &b);
            for plan in test_plans() {
                let mut out = vec![-1i32; m * n];
                gemm_i8_with_plan(&plan, m, k, n, &a, &b, &mut out, &Pool::new(1));
                prop_assert_eq!(&out, &want, "{}x{}x{} plan {}", m, k, n, plan.describe());
            }
        }
    }
}
