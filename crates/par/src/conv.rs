//! im2col lowering: 2-D convolution (forward and both gradients) as GEMM.
//!
//! For one image, `im2col` unrolls every receptive field into a column of
//! a `[C·KH·KW, OH·OW]` patch matrix. The three convolution passes are
//! then single GEMMs per image:
//!
//! * forward:      `out = W[F, C·KH·KW] × cols`
//! * grad-input:   `cols_g = Wᵀ × g[F, OH·OW]`, then `col2im` scatter-add
//! * grad-weight:  `ΔW += g × colsᵀ`
//!
//! Memory cost: one patch matrix of `C·KH·KW·OH·OW` floats per in-flight
//! image (`KH·KW` × the image itself) — the classic im2col trade of memory
//! for GEMM-shaped compute. Batches parallelize across the [`Pool`] with
//! one patch buffer per worker; the batch-1 case falls back to the
//! parallel GEMM itself.

use crate::gemm::{gemm, gemm_at, gemm_bt, gemm_prepacked, PackedA};
use crate::gemm_i8::gemm_i8;
use crate::pool::Pool;
use crate::tune::active_plan;

/// Shape bundle for one convolution, with all derived sizes precomputed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvShape {
    /// Batch size.
    pub n: usize,
    /// Input channels.
    pub c: usize,
    /// Input height.
    pub h: usize,
    /// Input width.
    pub w: usize,
    /// Output channels (filters).
    pub f: usize,
    /// Kernel height.
    pub kh: usize,
    /// Kernel width.
    pub kw: usize,
    /// Stride (both spatial dims).
    pub stride: usize,
    /// Zero padding (every border).
    pub padding: usize,
    /// Output height.
    pub oh: usize,
    /// Output width.
    pub ow: usize,
}

impl ConvShape {
    /// Rows of the patch matrix (`C·KH·KW`).
    pub fn col_rows(&self) -> usize {
        self.c * self.kh * self.kw
    }

    /// Columns of the patch matrix (`OH·OW`).
    pub fn col_cols(&self) -> usize {
        self.oh * self.ow
    }

    /// Elements in one input image (`C·H·W`).
    pub fn image_len(&self) -> usize {
        self.c * self.h * self.w
    }

    /// Elements in one output image (`F·OH·OW`).
    pub fn out_len(&self) -> usize {
        self.f * self.oh * self.ow
    }

    /// Valid output-x range `[lo, hi)` for kernel column `kx` (positions
    /// whose input x lands inside the unpadded image).
    fn ox_range(&self, kx: usize) -> (usize, usize) {
        let s = self.stride as isize;
        let off = kx as isize - self.padding as isize; // ix = ox*s + off
        let lo = if off < 0 {
            ((-off + s - 1) / s) as usize
        } else {
            0
        };
        let hi = if off >= self.w as isize {
            0
        } else {
            (((self.w as isize - off + s - 1) / s) as usize).min(self.ow)
        };
        (lo.min(self.ow), hi.max(lo.min(self.ow)))
    }

    /// Valid input y (if any) for output row `oy`, kernel row `ky`.
    fn iy(&self, oy: usize, ky: usize) -> Option<usize> {
        let iy = (oy * self.stride + ky) as isize - self.padding as isize;
        (iy >= 0 && iy < self.h as isize).then_some(iy as usize)
    }
}

/// Unrolls one image (`[C, H, W]`) into the patch matrix `cols`
/// (`[C·KH·KW, OH·OW]`), zero-filling padded positions.
///
/// Generic over the element type (pure data movement): the f32 path and
/// the dequantization-free i8 path ([`conv2d_i8`]) share this lowering.
///
/// # Panics
///
/// Panics if slice lengths disagree with `shape`.
pub fn im2col<T: Copy + Default>(shape: &ConvShape, image: &[T], cols: &mut [T]) {
    assert_eq!(image.len(), shape.image_len(), "im2col: image length");
    assert_eq!(
        cols.len(),
        shape.col_rows() * shape.col_cols(),
        "im2col: cols length"
    );
    let (s, w, ow) = (shape.stride, shape.w, shape.ow);
    let mut rows = cols.chunks_exact_mut(shape.col_cols());
    for ci in 0..shape.c {
        for ky in 0..shape.kh {
            for kx in 0..shape.kw {
                let row = rows.next().expect("col_rows chunks");
                let (ox_lo, ox_hi) = shape.ox_range(kx);
                let off = kx as isize - shape.padding as isize;
                for oy in 0..shape.oh {
                    let seg = &mut row[oy * ow..(oy + 1) * ow];
                    match shape.iy(oy, ky) {
                        None => seg.fill(T::default()),
                        Some(iy) => {
                            seg[..ox_lo].fill(T::default());
                            seg[ox_hi..].fill(T::default());
                            let base = (ci * shape.h + iy) * w;
                            if s == 1 && ox_hi > ox_lo {
                                let ix_lo = (ox_lo as isize + off) as usize;
                                seg[ox_lo..ox_hi].copy_from_slice(
                                    &image[base + ix_lo..base + ix_lo + (ox_hi - ox_lo)],
                                );
                            } else {
                                for (ox, dst) in seg[ox_lo..ox_hi].iter_mut().enumerate() {
                                    let ix = ((ox + ox_lo) * s) as isize + off;
                                    *dst = image[base + ix as usize];
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Scatter-adds a patch matrix back into one image: the adjoint of
/// [`im2col`], used by the input-gradient pass.
///
/// # Panics
///
/// Panics if slice lengths disagree with `shape`.
pub fn col2im_add(shape: &ConvShape, cols: &[f32], image: &mut [f32]) {
    assert_eq!(image.len(), shape.image_len(), "col2im: image length");
    assert_eq!(
        cols.len(),
        shape.col_rows() * shape.col_cols(),
        "col2im: cols length"
    );
    let (s, w, ow) = (shape.stride, shape.w, shape.ow);
    let mut rows = cols.chunks_exact(shape.col_cols());
    for ci in 0..shape.c {
        for ky in 0..shape.kh {
            for kx in 0..shape.kw {
                let row = rows.next().expect("col_rows chunks");
                let (ox_lo, ox_hi) = shape.ox_range(kx);
                let off = kx as isize - shape.padding as isize;
                for oy in 0..shape.oh {
                    let Some(iy) = shape.iy(oy, ky) else { continue };
                    let base = (ci * shape.h + iy) * w;
                    let seg = &row[oy * ow..(oy + 1) * ow];
                    for (ox, &g) in seg[ox_lo..ox_hi].iter().enumerate() {
                        let ix = ((ox + ox_lo) * s) as isize + off;
                        image[base + ix as usize] += g;
                    }
                }
            }
        }
    }
}

/// Forward convolution: `out[N, F, OH, OW] = input[N, C, H, W] ⊛ weight`.
///
/// # Panics
///
/// Panics if slice lengths disagree with `shape`.
pub fn conv2d(shape: &ConvShape, input: &[f32], weight: &[f32], out: &mut [f32], pool: &Pool) {
    assert_eq!(input.len(), shape.n * shape.image_len(), "conv2d: input");
    assert_eq!(weight.len(), shape.f * shape.col_rows(), "conv2d: weight");
    assert_eq!(out.len(), shape.n * shape.out_len(), "conv2d: out");
    if shape.out_len() == 0 {
        return;
    }
    if shape.n > 1 {
        // The weight matrix is the left operand of every per-image GEMM:
        // pack its panels once and share them (PackedA is read-only) across
        // the image fan-out instead of repacking per image.
        let packed_w = PackedA::pack(active_plan(), shape.f, shape.col_rows(), weight);
        pool.parallel_row_chunks(out, shape.out_len(), 1, |first, band| {
            let mut cols = vec![0.0f32; shape.col_rows() * shape.col_cols()];
            for (i, out_img) in band.chunks_exact_mut(shape.out_len()).enumerate() {
                let img = first + i;
                let image = &input[img * shape.image_len()..(img + 1) * shape.image_len()];
                im2col(shape, image, &mut cols);
                gemm_prepacked(&packed_w, shape.col_cols(), &cols, out_img);
            }
        });
    } else {
        let mut cols = vec![0.0f32; shape.col_rows() * shape.col_cols()];
        im2col(shape, input, &mut cols);
        gemm(
            shape.f,
            shape.col_rows(),
            shape.col_cols(),
            weight,
            &cols,
            out,
            pool,
        );
    }
}

/// Dequantization-free forward convolution: i8 input and weight codes,
/// i32 accumulator output — `out[N, F, OH, OW] = input[N, C, H, W] ⊛
/// weight` in exact integer arithmetic. The caller applies the single
/// `s_x·s_w` rescale (see `cq_quant::intdomain`).
///
/// Same im2col lowering and [`gemm_i8`] blocking as the f32 path, so
/// results are bitwise identical across SIMD levels, thread counts and
/// batch-path choices (integer accumulation is associative).
///
/// # Panics
///
/// Panics if slice lengths disagree with `shape`.
pub fn conv2d_i8(shape: &ConvShape, input: &[i8], weight: &[i8], out: &mut [i32], pool: &Pool) {
    assert_eq!(input.len(), shape.n * shape.image_len(), "conv2d_i8: input");
    assert_eq!(
        weight.len(),
        shape.f * shape.col_rows(),
        "conv2d_i8: weight"
    );
    assert_eq!(out.len(), shape.n * shape.out_len(), "conv2d_i8: out");
    if shape.out_len() == 0 {
        return;
    }
    if shape.n > 1 && pool.threads() > 1 {
        // Fan out across images; each band runs its GEMMs serially (the
        // per-image work is the parallel grain, as in the f32 path).
        let serial = Pool::new(1);
        pool.parallel_row_chunks(out, shape.out_len(), 1, |first, band| {
            let mut cols = vec![0i8; shape.col_rows() * shape.col_cols()];
            for (i, out_img) in band.chunks_exact_mut(shape.out_len()).enumerate() {
                let img = first + i;
                let image = &input[img * shape.image_len()..(img + 1) * shape.image_len()];
                im2col(shape, image, &mut cols);
                gemm_i8(
                    shape.f,
                    shape.col_rows(),
                    shape.col_cols(),
                    weight,
                    &cols,
                    out_img,
                    &serial,
                );
            }
        });
    } else {
        let mut cols = vec![0i8; shape.col_rows() * shape.col_cols()];
        for (img, out_img) in out.chunks_exact_mut(shape.out_len()).enumerate() {
            let image = &input[img * shape.image_len()..(img + 1) * shape.image_len()];
            im2col(shape, image, &mut cols);
            gemm_i8(
                shape.f,
                shape.col_rows(),
                shape.col_cols(),
                weight,
                &cols,
                out_img,
                pool,
            );
        }
    }
}

/// Input gradient: `gin[N, C, H, W]` from `grad_out[N, F, OH, OW]` and the
/// weights. `gin` is fully overwritten.
///
/// # Panics
///
/// Panics if slice lengths disagree with `shape`.
pub fn conv2d_grad_input(
    shape: &ConvShape,
    grad_out: &[f32],
    weight: &[f32],
    gin: &mut [f32],
    pool: &Pool,
) {
    assert_eq!(grad_out.len(), shape.n * shape.out_len(), "grad_input: g");
    assert_eq!(weight.len(), shape.f * shape.col_rows(), "grad_input: w");
    assert_eq!(gin.len(), shape.n * shape.image_len(), "grad_input: gin");
    gin.fill(0.0);
    if shape.out_len() == 0 || shape.image_len() == 0 {
        return;
    }
    if shape.n > 1 {
        // Wᵀ is the left operand of every per-image GEMM: pack its panels
        // once, straight from the [F, C·KH·KW] storage (strided packer —
        // no transpose materialization), shared across the fan-out.
        let packed_wt = PackedA::pack_transposed(active_plan(), shape.col_rows(), shape.f, weight);
        pool.parallel_row_chunks(gin, shape.image_len(), 1, |first, band| {
            let mut cols = vec![0.0f32; shape.col_rows() * shape.col_cols()];
            for (i, gin_img) in band.chunks_exact_mut(shape.image_len()).enumerate() {
                let img = first + i;
                let g = &grad_out[img * shape.out_len()..(img + 1) * shape.out_len()];
                // cols = Wᵀ[C·KH·KW, F] × g[F, OH·OW]
                gemm_prepacked(&packed_wt, shape.col_cols(), g, &mut cols);
                col2im_add(shape, &cols, gin_img);
            }
        });
    } else {
        let mut cols = vec![0.0f32; shape.col_rows() * shape.col_cols()];
        gemm_at(
            shape.col_rows(),
            shape.f,
            shape.col_cols(),
            weight,
            grad_out,
            &mut cols,
            pool,
        );
        col2im_add(shape, &cols, gin);
    }
}

/// Weight gradient: `gw[F, C, KH, KW]` from the input and `grad_out`,
/// summed over the batch. `gw` is fully overwritten.
///
/// Workers accumulate private partials over disjoint image ranges, then
/// the caller reduces them — keeping the shared `gw` free of data races.
///
/// # Panics
///
/// Panics if slice lengths disagree with `shape`.
pub fn conv2d_grad_weight(
    shape: &ConvShape,
    input: &[f32],
    grad_out: &[f32],
    gw: &mut [f32],
    pool: &Pool,
) {
    assert_eq!(input.len(), shape.n * shape.image_len(), "grad_weight: x");
    assert_eq!(grad_out.len(), shape.n * shape.out_len(), "grad_weight: g");
    assert_eq!(gw.len(), shape.f * shape.col_rows(), "grad_weight: gw");
    gw.fill(0.0);
    if shape.out_len() == 0 || shape.col_rows() == 0 {
        return;
    }
    let serial = Pool::new(1);
    let band_partial = |range: std::ops::Range<usize>, inner_pool: &Pool| -> Vec<f32> {
        let mut cols = vec![0.0f32; shape.col_rows() * shape.col_cols()];
        let mut tmp = vec![0.0f32; shape.f * shape.col_rows()];
        let mut partial = vec![0.0f32; shape.f * shape.col_rows()];
        for img in range {
            let image = &input[img * shape.image_len()..(img + 1) * shape.image_len()];
            let g = &grad_out[img * shape.out_len()..(img + 1) * shape.out_len()];
            im2col(shape, image, &mut cols);
            // tmp = g[F, OH·OW] × colsᵀ[OH·OW, C·KH·KW]
            gemm_bt(
                shape.f,
                shape.col_cols(),
                shape.col_rows(),
                g,
                &cols,
                &mut tmp,
                inner_pool,
            );
            for (p, &t) in partial.iter_mut().zip(&tmp) {
                *p += t;
            }
        }
        partial
    };
    if shape.n > 1 && pool.threads() > 1 {
        let ranges = Pool::partition(shape.n, pool.threads(), 1);
        let partials =
            pool.parallel_map(ranges.len(), |i| band_partial(ranges[i].clone(), &serial));
        for partial in partials {
            for (o, &p) in gw.iter_mut().zip(&partial) {
                *o += p;
            }
        }
    } else {
        let partial = band_partial(0..shape.n, pool);
        gw.copy_from_slice(&partial);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[allow(clippy::too_many_arguments)]
    fn shape(
        n: usize,
        c: usize,
        h: usize,
        w: usize,
        f: usize,
        k: usize,
        stride: usize,
        padding: usize,
    ) -> ConvShape {
        let od = |input: usize| (input + 2 * padding).saturating_sub(k) / stride + 1;
        ConvShape {
            n,
            c,
            h,
            w,
            f,
            kh: k,
            kw: k,
            stride,
            padding,
            oh: od(h),
            ow: od(w),
        }
    }

    fn fill(len: usize, seed: u32) -> Vec<f32> {
        let mut s = seed;
        (0..len)
            .map(|_| {
                s = s.wrapping_mul(1664525).wrapping_add(1013904223);
                ((s >> 24) as f32 - 128.0) / 16.0
            })
            .collect()
    }

    /// Direct (nested-loop) convolution as the test oracle.
    fn conv_oracle(sh: &ConvShape, input: &[f32], weight: &[f32]) -> Vec<f32> {
        let mut out = vec![0.0f32; sh.n * sh.out_len()];
        for ni in 0..sh.n {
            for fi in 0..sh.f {
                for oy in 0..sh.oh {
                    for ox in 0..sh.ow {
                        let mut acc = 0.0f32;
                        for ci in 0..sh.c {
                            for ky in 0..sh.kh {
                                let iy = (oy * sh.stride + ky) as isize - sh.padding as isize;
                                if iy < 0 || iy >= sh.h as isize {
                                    continue;
                                }
                                for kx in 0..sh.kw {
                                    let ix = (ox * sh.stride + kx) as isize - sh.padding as isize;
                                    if ix < 0 || ix >= sh.w as isize {
                                        continue;
                                    }
                                    acc += input[((ni * sh.c + ci) * sh.h + iy as usize) * sh.w
                                        + ix as usize]
                                        * weight[((fi * sh.c + ci) * sh.kh + ky) * sh.kw + kx];
                                }
                            }
                        }
                        out[((ni * sh.f + fi) * sh.oh + oy) * sh.ow + ox] = acc;
                    }
                }
            }
        }
        out
    }

    #[test]
    fn forward_matches_direct_convolution() {
        for &(n, c, h, w, f, k, s, p) in &[
            (
                1usize, 1usize, 4usize, 4usize, 1usize, 1usize, 1usize, 0usize,
            ),
            (2, 3, 8, 8, 4, 3, 1, 1),
            (1, 2, 7, 5, 3, 3, 2, 1),
            (3, 1, 6, 6, 2, 5, 1, 2),
            (2, 2, 5, 5, 2, 2, 2, 0),
        ] {
            let sh = shape(n, c, h, w, f, k, s, p);
            let input = fill(n * sh.image_len(), 3 + h as u32);
            let weight = fill(f * sh.col_rows(), 17 + k as u32);
            let mut out = vec![0.0f32; n * sh.out_len()];
            for threads in [1, 4] {
                conv2d(&sh, &input, &weight, &mut out, &Pool::new(threads));
                let want = conv_oracle(&sh, &input, &weight);
                for (got, want) in out.iter().zip(&want) {
                    assert!(
                        (got - want).abs() <= 1e-4 * want.abs().max(1.0),
                        "n{n} c{c} h{h} w{w} f{f} k{k} s{s} p{p} t{threads}: {got} vs {want}"
                    );
                }
            }
        }
    }

    #[test]
    fn gradients_match_finite_difference() {
        let sh = shape(2, 2, 5, 5, 3, 3, 1, 1);
        let pool = Pool::new(2);
        let mut input = fill(sh.n * sh.image_len(), 5);
        let mut weight = fill(sh.f * sh.col_rows(), 6);
        // Loss = sum(out); dL/dout = 1.
        let gout = vec![1.0f32; sh.n * sh.out_len()];
        let mut gin = vec![0.0f32; input.len()];
        let mut gw = vec![0.0f32; weight.len()];
        conv2d_grad_input(&sh, &gout, &weight, &mut gin, &pool);
        conv2d_grad_weight(&sh, &input, &gout, &mut gw, &pool);

        let loss = |inp: &[f32], wt: &[f32]| -> f32 { conv_oracle(&sh, inp, wt).iter().sum() };
        let eps = 1e-2;
        for &idx in &[0usize, 13, 49, input.len() - 1] {
            let orig = input[idx];
            input[idx] = orig + eps;
            let lp = loss(&input, &weight);
            input[idx] = orig - eps;
            let lm = loss(&input, &weight);
            input[idx] = orig;
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - gin[idx]).abs() < 1e-1,
                "gin[{idx}]: fd={fd} got={}",
                gin[idx]
            );
        }
        for &idx in &[0usize, 7, weight.len() - 1] {
            let orig = weight[idx];
            weight[idx] = orig + eps;
            let lp = loss(&input, &weight);
            weight[idx] = orig - eps;
            let lm = loss(&input, &weight);
            weight[idx] = orig;
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - gw[idx]).abs() < 1e-1,
                "gw[{idx}]: fd={fd} got={}",
                gw[idx]
            );
        }
    }

    #[test]
    fn conv2d_i8_matches_integer_oracle_bitwise() {
        let fill_i8 = |len: usize, seed: u32| -> Vec<i8> {
            let mut s = seed;
            (0..len)
                .map(|_| {
                    s = s.wrapping_mul(1664525).wrapping_add(1013904223);
                    (s >> 24) as i8
                })
                .collect()
        };
        let oracle = |sh: &ConvShape, input: &[i8], weight: &[i8]| -> Vec<i32> {
            let mut out = vec![0i32; sh.n * sh.out_len()];
            for ni in 0..sh.n {
                for fi in 0..sh.f {
                    for oy in 0..sh.oh {
                        for ox in 0..sh.ow {
                            let mut acc = 0i32;
                            for ci in 0..sh.c {
                                for ky in 0..sh.kh {
                                    let iy = (oy * sh.stride + ky) as isize - sh.padding as isize;
                                    if iy < 0 || iy >= sh.h as isize {
                                        continue;
                                    }
                                    for kx in 0..sh.kw {
                                        let ix =
                                            (ox * sh.stride + kx) as isize - sh.padding as isize;
                                        if ix < 0 || ix >= sh.w as isize {
                                            continue;
                                        }
                                        let iv = input[((ni * sh.c + ci) * sh.h + iy as usize)
                                            * sh.w
                                            + ix as usize]
                                            as i32;
                                        let wv = weight
                                            [((fi * sh.c + ci) * sh.kh + ky) * sh.kw + kx]
                                            as i32;
                                        acc = acc.wrapping_add(iv * wv);
                                    }
                                }
                            }
                            out[((ni * sh.f + fi) * sh.oh + oy) * sh.ow + ox] = acc;
                        }
                    }
                }
            }
            out
        };
        for &(n, c, h, w, f, k, s, p) in &[
            (
                1usize, 1usize, 4usize, 4usize, 1usize, 1usize, 1usize, 0usize,
            ),
            (2, 3, 8, 8, 4, 3, 1, 1),
            (1, 2, 7, 5, 3, 3, 2, 1),
            (3, 1, 6, 6, 2, 5, 1, 2),
        ] {
            let sh = shape(n, c, h, w, f, k, s, p);
            let input = fill_i8(n * sh.image_len(), 7 + h as u32);
            let weight = fill_i8(f * sh.col_rows(), 29 + k as u32);
            let want = oracle(&sh, &input, &weight);
            for threads in [1, 4] {
                let mut out = vec![0i32; n * sh.out_len()];
                conv2d_i8(&sh, &input, &weight, &mut out, &Pool::new(threads));
                assert_eq!(
                    out, want,
                    "n{n} c{c} h{h} w{w} f{f} k{k} s{s} p{p} t{threads}"
                );
            }
        }
    }

    #[test]
    fn im2col_col2im_adjoint() {
        // <im2col(x), y> == <x, col2im(y)> for random x, y — the defining
        // property of an adjoint pair.
        let sh = shape(1, 2, 6, 5, 1, 3, 2, 1);
        let x = fill(sh.image_len(), 21);
        let y = fill(sh.col_rows() * sh.col_cols(), 22);
        let mut cols = vec![0.0f32; y.len()];
        im2col(&sh, &x, &mut cols);
        let lhs: f32 = cols.iter().zip(&y).map(|(a, b)| a * b).sum();
        let mut back = vec![0.0f32; x.len()];
        col2im_add(&sh, &y, &mut back);
        let rhs: f32 = x.iter().zip(&back).map(|(a, b)| a * b).sum();
        assert!(
            (lhs - rhs).abs() < 1e-2 * lhs.abs().max(1.0),
            "{lhs} vs {rhs}"
        );
    }
}
