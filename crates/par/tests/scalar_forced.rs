//! Feature-detection override test: `CQ_SIMD=scalar` must actually force
//! the scalar micro-kernels, regardless of what the CPU supports.
//!
//! A single `#[test]` (env mutation + `OnceLock` resolution must happen
//! before any other gemm touches the plan) sets the variable, resolves
//! the level, and runs a parity check proving the scalar path computes
//! correctly end to end.

use cq_par::{gemm, Pool, SimdLevel};

#[test]
fn cq_simd_scalar_forces_the_scalar_kernels() {
    // This test binary runs alone, so the process-wide OnceLocks in
    // cq-par have not been resolved yet.
    std::env::set_var("CQ_SIMD", "scalar");

    assert_eq!(cq_par::simd_level(), SimdLevel::Scalar);
    let plan = cq_par::active_plan();
    assert_eq!(plan.simd, SimdLevel::Scalar);
    assert!(
        cq_par::describe_active_plan().starts_with("scalar "),
        "{}",
        cq_par::describe_active_plan()
    );

    // Exact-valued inputs (1/16 steps): the forced scalar path must match
    // a naive oracle bit-for-bit, since nothing reassociates and nothing
    // fuses.
    let (m, k, n) = (37, 53, 29);
    let mut s = 7u32;
    let mut next = move || {
        s = s.wrapping_mul(1664525).wrapping_add(1013904223);
        ((s >> 24) as f32 - 128.0) / 16.0
    };
    let a: Vec<f32> = (0..m * k).map(|_| next()).collect();
    let b: Vec<f32> = (0..k * n).map(|_| next()).collect();
    let mut want = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for p in 0..k {
                acc += a[i * k + p] * b[p * n + j];
            }
            want[i * n + j] = acc;
        }
    }
    for threads in [1, 4] {
        let mut out = vec![f32::NAN; m * n];
        gemm(m, k, n, &a, &b, &mut out, &Pool::new(threads));
        assert_eq!(out, want, "threads={threads}");
    }
}
