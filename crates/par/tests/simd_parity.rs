//! Parity proptests for every (micro-kernel × blocking × thread-count)
//! combination: the blocked GEMM variants must match a naive ascending-k
//! oracle within the backend-parity tolerance `k · amax · bmax · 8ε`
//! (the FMA kernels skip one rounding per step; the scalar kernels and
//! any blocking/banding reassociate nothing, so the bound is generous).
//!
//! CI runs this suite at `--test-threads 1` and `--test-threads 4`, and
//! again with `CQ_SIMD=scalar`, covering both kernel families on both
//! serial and contended schedules.

use cq_par::{
    gemm_at_with_plan, gemm_bt_with_plan, gemm_prepacked, gemm_with_plan, simd_level, transpose,
    GemmPlan, PackedA, Pool, SimdLevel, TileConfig, SUPPORTED_TILES,
};
use proptest::prelude::*;

fn naive(m: usize, k: usize, n: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for p in 0..k {
                acc += a[i * k + p] * b[p * n + j];
            }
            out[i * n + j] = acc;
        }
    }
    out
}

/// Per-element tolerance, matching `cq-tensor/tests/backend_parity.rs`.
fn tol(k: usize, amax: f32, bmax: f32) -> f32 {
    k as f32 * amax * bmax * 8.0 * f32::EPSILON + 1e-30
}

fn max_abs(v: &[f32]) -> f32 {
    v.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
}

/// Every SIMD level runnable in this process: scalar always, plus the
/// detected level when it differs (detection already honors `CQ_SIMD`,
/// so a `CQ_SIMD=scalar` run exercises scalar only, by design).
fn levels() -> Vec<SimdLevel> {
    let mut ls = vec![SimdLevel::Scalar];
    if simd_level() != SimdLevel::Scalar {
        ls.push(simd_level());
    }
    ls
}

/// All plans under test: every supported tile at every runnable level,
/// each with blocking configs that force multiple KC/MC/NC iterations
/// (kc = 5 guarantees several reduction blocks even on small k).
fn plans() -> Vec<GemmPlan> {
    let mut out = Vec::new();
    for level in levels() {
        for &(mr, nr) in &SUPPORTED_TILES {
            for cfg in [
                TileConfig {
                    mr,
                    nr,
                    kc: 5,
                    mc: mr,
                    nc: nr,
                },
                TileConfig {
                    mr,
                    nr,
                    kc: 32,
                    mc: 3 * mr,
                    nc: 2 * nr,
                },
            ] {
                out.push(GemmPlan::new(level, cfg).expect("valid test plan"));
            }
        }
        out.push(GemmPlan::new(level, cq_par::default_profile(level).1).expect("default plan"));
    }
    out
}

fn check(label: &str, got: &[f32], want: &[f32], tol: f32) -> Result<(), TestCaseError> {
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        prop_assert!(
            (g - w).abs() <= tol,
            "{}[{}]: got {} want {} (tol {})",
            label,
            i,
            g,
            w,
            tol
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// gemm / gemm_at / gemm_bt / prepacked agree with the oracle for
    /// every plan, at 1 and 4 threads, on arbitrary (non-exact) floats.
    #[test]
    fn all_variants_match_oracle(
        (m, k, n) in (1usize..28, 1usize..48, 1usize..28),
        seed in 0u32..1_000_000,
    ) {
        let mut s = seed;
        let mut next = move || {
            s = s.wrapping_mul(1664525).wrapping_add(1013904223);
            // Non-exact values: exercises real rounding differences.
            (s >> 8) as f32 / (1 << 24) as f32 * 4.0 - 2.0 + 1.0e-3
        };
        let a: Vec<f32> = (0..m * k).map(|_| next()).collect();
        let b: Vec<f32> = (0..k * n).map(|_| next()).collect();
        let want = naive(m, k, n, &a, &b);
        let eps = tol(k, max_abs(&a), max_abs(&b));

        // Transposed storages of the same logical operands.
        let mut a_t = vec![0.0f32; k * m];
        transpose(&a, m, k, &mut a_t);
        let mut b_t = vec![0.0f32; n * k];
        transpose(&b, k, n, &mut b_t);

        for plan in plans() {
            let label = plan.describe();
            for threads in [1usize, 4] {
                let pool = Pool::new(threads);
                let mut out = vec![f32::NAN; m * n];
                gemm_with_plan(&plan, m, k, n, &a, &b, &mut out, &pool);
                check(&label, &out, &want, eps)?;

                gemm_at_with_plan(&plan, m, k, n, &a_t, &b, &mut out, &pool);
                check(&label, &out, &want, eps)?;

                gemm_bt_with_plan(&plan, m, k, n, &a, &b_t, &mut out, &pool);
                check(&label, &out, &want, eps)?;
            }
            // Prepacked must be bitwise identical to the plain call.
            let mut serial = vec![f32::NAN; m * n];
            gemm_with_plan(&plan, m, k, n, &a, &b, &mut serial, &Pool::new(1));
            let packed = PackedA::pack(&plan, m, k, &a);
            let mut pre = vec![f32::NAN; m * n];
            gemm_prepacked(&packed, n, &b, &mut pre);
            prop_assert_eq!(&pre, &serial, "prepacked mismatch for {}", label);
        }
    }

    /// For a fixed plan, results are bitwise identical across thread
    /// counts and across the prepacked path — banding and packing reuse
    /// never reassociate the per-element reduction.
    #[test]
    fn thread_count_is_bitwise_invisible(
        (m, k, n) in (30usize..70, 30usize..70, 30usize..70),
        seed in 0u32..1_000_000,
    ) {
        let mut s = seed;
        let mut next = move || {
            s = s.wrapping_mul(1664525).wrapping_add(1013904223);
            (s >> 8) as f32 / (1 << 24) as f32 * 4.0 - 2.0
        };
        let a: Vec<f32> = (0..m * k).map(|_| next()).collect();
        let b: Vec<f32> = (0..k * n).map(|_| next()).collect();
        for plan in plans() {
            let mut serial = vec![0.0f32; m * n];
            gemm_with_plan(&plan, m, k, n, &a, &b, &mut serial, &Pool::new(1));
            for threads in [2usize, 4, 8] {
                let mut par = vec![0.0f32; m * n];
                gemm_with_plan(&plan, m, k, n, &a, &b, &mut par, &Pool::new(threads));
                prop_assert_eq!(&par, &serial, "t{} differs for {}", threads, plan.describe());
            }
        }
    }
}
