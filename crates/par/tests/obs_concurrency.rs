//! Hammers cq-obs counters and spans from the cq-par worker pool.
//!
//! The observability layer claims its counters are exact under
//! concurrency and that span emission is safe from arbitrary threads;
//! these tests drive both through real `Pool` fan-out. Every test that
//! installs a sink holds `GLOBAL`, because the sink is process-wide.

use cq_par::Pool;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Serializes tests that install the process-wide sink.
static GLOBAL: Mutex<()> = Mutex::new(());

fn counter_value(name: &str) -> u64 {
    cq_obs::counters_snapshot()
        .iter()
        .find(|(n, _)| *n == name)
        .map(|&(_, v)| v)
        .unwrap_or(0)
}

#[test]
fn counters_are_exact_under_pool_fanout() {
    let _g = GLOBAL.lock().unwrap();
    let sink = Arc::new(cq_obs::MemorySink::new());
    cq_obs::install(sink.clone());
    cq_obs::reset_counters();

    const TASKS: usize = 257; // not a multiple of the worker count
    const INCRS_PER_TASK: u64 = 1_000;
    let pool = Pool::new(8);
    let check = AtomicU64::new(0);
    let out = pool.parallel_map(TASKS, |i| {
        for _ in 0..INCRS_PER_TASK {
            cq_obs::counter!("obs_test.hammer").incr();
        }
        check.fetch_add(1, Ordering::Relaxed);
        i
    });
    cq_obs::uninstall();

    assert_eq!(out.len(), TASKS);
    assert_eq!(check.load(Ordering::Relaxed), TASKS as u64);
    assert_eq!(
        counter_value("obs_test.hammer"),
        TASKS as u64 * INCRS_PER_TASK,
        "relaxed atomic counter lost increments"
    );
    // The pool's own accounting must agree exactly with the work done.
    assert_eq!(counter_value("par.tasks_queued"), TASKS as u64);
    assert_eq!(counter_value("par.tasks_run"), TASKS as u64);
    assert_eq!(counter_value("par.regions"), 1);
}

#[test]
fn parallel_for_item_accounting_is_exact() {
    let _g = GLOBAL.lock().unwrap();
    let sink = Arc::new(cq_obs::MemorySink::new());
    cq_obs::install(sink);
    cq_obs::reset_counters();

    const LEN: usize = 10_000;
    Pool::new(4).parallel_for(LEN, 16, |range| {
        cq_obs::counter!("obs_test.for_items").add(range.len() as u64);
    });
    cq_obs::uninstall();

    assert_eq!(counter_value("obs_test.for_items"), LEN as u64);
    assert_eq!(counter_value("par.items_run"), LEN as u64);
    // Chunks ran once each: their item counts partition the range.
    let chunks = counter_value("par.chunks_run");
    assert!(
        (1..=4).contains(&chunks),
        "expected 1..=4 chunks, got {chunks}"
    );
}

#[test]
fn spans_from_worker_threads_all_arrive() {
    let _g = GLOBAL.lock().unwrap();
    let sink = Arc::new(cq_obs::MemorySink::new());
    cq_obs::install(sink.clone());
    cq_obs::reset_counters();

    const TASKS: usize = 64;
    let pool = Pool::new(6);
    pool.parallel_map(TASKS, |i| {
        let mut sp = cq_obs::span!("obs_test", "task {i}");
        sp.arg("index", i);
    });
    cq_obs::uninstall();

    let events = sink.take();
    let task_spans: Vec<_> = events
        .iter()
        .filter(|e| matches!(e.kind, cq_obs::EventKind::Span { .. }) && e.name.starts_with("task "))
        .collect();
    assert_eq!(task_spans.len(), TASKS, "a span was lost under concurrency");
    // Every task span carries its index argument, and no two tasks share one.
    let mut seen = [false; TASKS];
    for sp in &task_spans {
        let idx = sp
            .args
            .iter()
            .find_map(|(k, v)| match (k, v) {
                (&"index", cq_obs::ArgValue::U64(i)) => Some(*i as usize),
                _ => None,
            })
            .expect("task span missing index arg");
        assert!(!seen[idx], "duplicate span for task {idx}");
        seen[idx] = true;
    }
    // Worker spans and the region span came through too.
    assert!(events
        .iter()
        .any(|e| matches!(e.kind, cq_obs::EventKind::Span { .. }) && e.name == "parallel_map"));
    assert!(
        events
            .iter()
            .any(|e| matches!(e.kind, cq_obs::EventKind::Span { .. })
                && e.name.starts_with("worker "))
    );
    // Spans from different workers carry different thread ids.
    let tids: std::collections::HashSet<u64> = task_spans.iter().map(|e| e.tid).collect();
    assert!(!tids.is_empty());
}

#[test]
fn tracing_off_pool_results_are_unchanged() {
    // No sink installed: instrumented pool paths must behave identically.
    let _g = GLOBAL.lock().unwrap();
    assert!(!cq_obs::enabled());
    let pool = Pool::new(4);
    let out = pool.parallel_map(100, |i| i * i);
    assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<usize>>());
    let sums: AtomicU64 = AtomicU64::new(0);
    pool.parallel_for(1000, 8, |r| {
        sums.fetch_add(r.len() as u64, Ordering::Relaxed);
    });
    assert_eq!(sums.load(Ordering::Relaxed), 1000);
}
