//! Full-simulation benchmarks: the kernels that regenerate Figs. 12/13
//! and the §VII.C/D ablations. One bench per table/figure data series.

use cq_accel::{CambriconQ, CqConfig, ScaleVariant};
use cq_baselines::{GpuModel, Tpu};
use cq_ndp::OptimizerKind;
use cq_quant::IntFormat;
use cq_workloads::models;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn adam() -> OptimizerKind {
    OptimizerKind::Adam {
        lr: 1e-3,
        beta1: 0.9,
        beta2: 0.999,
    }
}

/// Fig. 12(a)/(b)/(c)/(d): per-benchmark Cambricon-Q simulation.
fn bench_fig12_cambricon_q(c: &mut Criterion) {
    let chip = CambriconQ::edge();
    let mut g = c.benchmark_group("fig12_cambricon_q");
    g.sample_size(10);
    for net in models::all_benchmarks() {
        g.bench_with_input(
            BenchmarkId::from_parameter(net.name.clone()),
            &net,
            |b, net| b.iter(|| chip.simulate(black_box(net), adam())),
        );
    }
    g.finish();
}

/// Fig. 12 baselines: TPU and GPU simulations.
fn bench_fig12_baselines(c: &mut Criterion) {
    let tpu = Tpu::paper();
    let gpu = GpuModel::jetson_tx2();
    let net = models::alexnet();
    let mut g = c.benchmark_group("fig12_baselines_alexnet");
    g.sample_size(10);
    g.bench_function("tpu", |b| b.iter(|| tpu.simulate(black_box(&net), adam())));
    g.bench_function("gpu_quantized", |b| {
        b.iter(|| gpu.simulate(black_box(&net), adam(), true))
    });
    g.bench_function("gpu_fp32_fig3", |b| {
        b.iter(|| gpu.simulate(black_box(&net), adam(), false))
    });
    g.finish();
}

/// Fig. 13: the scaled variants.
fn bench_fig13_scaling(c: &mut Criterion) {
    let net = models::resnet18();
    let mut g = c.benchmark_group("fig13_scaling_resnet18");
    g.sample_size(10);
    for (name, variant) in [
        ("edge", ScaleVariant::Edge),
        ("q_t", ScaleVariant::T),
        ("q_v", ScaleVariant::V),
    ] {
        let chip = CambriconQ::new(CqConfig::scaled(variant));
        g.bench_with_input(BenchmarkId::from_parameter(name), &chip, |b, chip| {
            b.iter(|| chip.simulate(black_box(&net), adam()))
        });
    }
    g.finish();
}

/// §VII.C/§VII.D ablations: INT4 mode and NDP-disabled simulations.
fn bench_ablations(c: &mut Criterion) {
    let net = models::alexnet();
    let mut g = c.benchmark_group("ablations_alexnet");
    g.sample_size(10);
    for (name, cfg) in [
        ("int8_ndp", CqConfig::edge()),
        ("int4_ndp", CqConfig::edge().with_format(IntFormat::Int4)),
        ("int8_no_ndp", CqConfig::edge().without_ndp()),
    ] {
        let chip = CambriconQ::new(cfg);
        g.bench_with_input(BenchmarkId::from_parameter(name), &chip, |b, chip| {
            b.iter(|| chip.simulate(black_box(&net), adam()))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_fig12_cambricon_q,
    bench_fig12_baselines,
    bench_fig13_scaling,
    bench_ablations
);
criterion_main!(benches);
