//! Hardware-component model microbenchmarks: SQU, QBC, PE array, DDR.

use cq_accel::pe::PeArray;
use cq_accel::{CqConfig, Qbc, Squ};
use cq_mem::{DdrConfig, DdrModel, Dir};
use cq_quant::IntFormat;
use cq_tensor::init;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn bench_squ(c: &mut Criterion) {
    let squ = Squ::new(&CqConfig::edge());
    let x = init::long_tailed(&[1 << 16], 0.05, 0.01, 40.0, 1);
    let mut g = c.benchmark_group("squ");
    g.throughput(Throughput::Elements(x.len() as u64));
    g.sample_size(20);
    g.bench_function("functional_quantize_64k", |b| {
        b.iter(|| squ.quantize(black_box(&x)))
    });
    g.bench_function("stream_cost_model", |b| {
        b.iter(|| squ.stream_cost(black_box(1 << 20)))
    });
    g.finish();
}

fn bench_qbc(c: &mut Criterion) {
    let mut g = c.benchmark_group("qbc");
    g.sample_size(20);
    g.bench_function("line_writes", |b| {
        b.iter(|| {
            let mut qbc = Qbc::new(64, 32, IntFormat::Int8);
            for i in 0..64 {
                qbc.write_line(i, &[0.5; 32], 1.0 + i as f32 * 0.1).unwrap();
            }
            qbc
        })
    });
    g.bench_function("mixed_writes_requantize", |b| {
        b.iter(|| {
            let mut qbc = Qbc::new(8, 32, IntFormat::Int8);
            qbc.write_line(0, &[0.05; 32], 0.1).unwrap();
            // Byte-granular writes with alternating scales force the
            // re-quantization path (the Fig. 9 transposition case).
            for w in 0..32 {
                let theta = if w % 2 == 0 { 10.0 } else { 0.1 };
                qbc.write_word(0, w, 0.01, theta).unwrap();
            }
            qbc
        })
    });
    g.finish();
}

fn bench_pe_array(c: &mut Criterion) {
    let mut g = c.benchmark_group("pe_array_model");
    g.sample_size(20);
    for fmt in [IntFormat::Int4, IntFormat::Int8, IntFormat::Int16] {
        let pe = PeArray::new(&CqConfig::edge().with_format(fmt));
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{fmt}")),
            &pe,
            |b, pe| b.iter(|| pe.matmul(black_box(4096), 512, 512)),
        );
    }
    g.finish();
}

fn bench_ddr_model(c: &mut Criterion) {
    let mut g = c.benchmark_group("ddr_model");
    g.sample_size(20);
    g.throughput(Throughput::Bytes(1 << 20));
    g.bench_function("sequential_1mb_read", |b| {
        b.iter(|| {
            let mut m = DdrModel::new(DdrConfig::cambricon_q());
            m.transfer(black_box(0), 1 << 20, Dir::Read)
        })
    });
    g.bench_function("strided_row_misses", |b| {
        b.iter(|| {
            let mut m = DdrModel::new(DdrConfig::cambricon_q());
            let mut total = 0u64;
            // 64-byte accesses striding whole rows: worst-case locality.
            for i in 0..1024u64 {
                total += m.transfer(black_box(i * 16384), 64, Dir::Read);
            }
            total
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_squ,
    bench_qbc,
    bench_pe_array,
    bench_ddr_model
);
criterion_main!(benches);
