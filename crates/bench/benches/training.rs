//! Training-path benchmarks: quantized vs FP32 train steps (the Table VIII
//! kernel) and NDPO vs reference optimizer updates (Table IV).

use cq_ndp::{NdpoRegs, OptimizerKind};
use cq_nn::{
    Adam, Conv2d, Dense, Flatten, MaxPool2d, Optimizer, Param, QuantCtx, Relu, Sequential,
};
use cq_quant::TrainingQuantizer;
use cq_tensor::init;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn build_cnn(seed: u64) -> Sequential {
    let mut model = Sequential::new();
    model
        .add(Conv2d::new("conv", 1, 8, 3, 1, 1, seed))
        .add(Relu::new())
        .add(MaxPool2d::new(2))
        .add(Flatten::new())
        .add(Dense::new("fc", 128, 4, seed + 1));
    model
}

fn bench_train_step(c: &mut Criterion) {
    let data = cq_data::textures(64, 1, 8, 4, 0.25, 1);
    let mut g = c.benchmark_group("train_step_cnn_batch64");
    g.sample_size(10);
    for q in [
        TrainingQuantizer::fp32(),
        TrainingQuantizer::zhang2020(),
        TrainingQuantizer::zhang2020_hqt(),
    ] {
        let ctx = QuantCtx::new(q.clone());
        g.bench_with_input(
            BenchmarkId::from_parameter(q.name().to_string()),
            &ctx,
            |b, ctx| {
                let mut model = build_cnn(2);
                let mut opt = Adam::with_defaults(1e-3);
                b.iter(|| {
                    model
                        .train_step(black_box(&data.x), &data.labels, &mut opt, ctx)
                        .unwrap()
                })
            },
        );
    }
    g.finish();
}

fn bench_optimizers(c: &mut Criterion) {
    // Table IV: one update step over 1M weights, reference vs NDPO.
    let n = 1 << 20;
    let mut g = c.benchmark_group("weight_update_1m");
    g.throughput(Throughput::Elements(n as u64));
    g.sample_size(10);
    g.bench_function("adam_reference", |b| {
        let mut p = Param::new(init::normal(&[n], 0.0, 1.0, 1));
        p.grad = init::normal(&[n], 0.0, 0.1, 2);
        let mut opt = Adam::with_defaults(1e-3);
        b.iter(|| opt.step(black_box(&mut [&mut p])))
    });
    g.bench_function("adam_ndpo_datapath", |b| {
        let mut w: Vec<f32> = init::normal(&[n], 0.0, 1.0, 1).into_vec();
        let mut m = vec![0.0f32; n];
        let mut v = vec![0.0f32; n];
        let grad = init::normal(&[n], 0.0, 0.1, 2).into_vec();
        let regs = NdpoRegs::for_optimizer(
            OptimizerKind::Adam {
                lr: 1e-3,
                beta1: 0.9,
                beta2: 0.999,
            },
            1,
        );
        b.iter(|| regs.update_slice(black_box(&mut w), &mut m, &mut v, &grad))
    });
    g.finish();
}

criterion_group!(benches, bench_train_step, bench_optimizers);
criterion_main!(benches);
