//! ISA and functional-machine benchmarks: encode/decode throughput and
//! compiled-program execution.

use cq_accel::{compile_dense_forward, CqConfig, DenseLayout, Machine};
use cq_isa::Program;
use cq_tensor::init;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn sample_program() -> Program {
    compile_dense_forward(
        &CqConfig::edge(),
        DenseLayout {
            input: 0,
            weight: 256 * 128 * 4,
            output: (256 * 128 + 128 * 192) * 4,
        },
        256,
        128,
        192,
    )
}

fn bench_encode_decode(c: &mut Criterion) {
    let p = sample_program();
    let bytes = p.encode();
    let mut g = c.benchmark_group("isa");
    g.throughput(Throughput::Elements(p.len() as u64));
    g.sample_size(50);
    g.bench_function("encode", |b| b.iter(|| black_box(&p).encode()));
    g.bench_function("decode", |b| {
        b.iter(|| Program::decode(black_box(&bytes)).unwrap())
    });
    g.bench_function("disassemble", |b| b.iter(|| black_box(&p).disassemble()));
    g.finish();
}

fn bench_timing_executors(c: &mut Criterion) {
    use cq_accel::TimingExecutor;
    let config = CqConfig::edge();
    let program = sample_program();
    let mut g = c.benchmark_group("timing_executor");
    g.sample_size(20);
    g.bench_function("aggregate", |b| {
        b.iter(|| TimingExecutor::new(config.clone()).run(black_box(&program)))
    });
    g.bench_function("pipelined", |b| {
        b.iter(|| TimingExecutor::new(config.clone()).run_pipelined(black_box(&program)))
    });
    g.finish();
}

fn bench_machine_execution(c: &mut Criterion) {
    let config = CqConfig::edge();
    let (m, k, n) = (256usize, 128usize, 192usize);
    let program = sample_program();
    let x = init::normal(&[m, k], 0.0, 1.0, 1);
    let w = init::normal(&[k, n], 0.0, 0.2, 2);
    let mut g = c.benchmark_group("machine");
    g.sample_size(10);
    g.bench_function("dense_forward_256x128x192", |b| {
        b.iter(|| {
            let mut machine = Machine::new(config.clone(), m * k + k * n + m * n);
            machine.dram_mut()[..m * k].copy_from_slice(x.data());
            machine.dram_mut()[m * k..m * k + k * n].copy_from_slice(w.data());
            machine.run(black_box(&program)).unwrap()
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_encode_decode,
    bench_timing_executors,
    bench_machine_execution
);
criterion_main!(benches);
