//! Quantizer throughput and design-choice ablations (§III.A/B).

use cq_quant::{
    CandidateStrategy, E2bqmQuantizer, ErrorEstimator, IntFormat, LdqConfig, LdqTensor,
    QuantizedTensor, TrainingQuantizer,
};
use cq_tensor::init;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn bench_ldq_vs_layerwise(c: &mut Criterion) {
    let x = init::long_tailed(&[1 << 18], 0.05, 0.01, 40.0, 1);
    let mut g = c.benchmark_group("quantize_262k_elems");
    g.throughput(Throughput::Elements(x.len() as u64));
    g.sample_size(20);
    g.bench_function("layerwise_dq_int8", |b| {
        b.iter(|| QuantizedTensor::quantize_symmetric(black_box(&x), IntFormat::Int8))
    });
    g.bench_function("ldq_int8_k1024", |b| {
        b.iter(|| LdqTensor::quantize(black_box(&x), LdqConfig::new(1024, IntFormat::Int8)))
    });
    g.bench_function("e2bqm_4way_rectilinear", |b| {
        let q = E2bqmQuantizer::hardware_default();
        b.iter(|| q.quantize_blocks(black_box(&x), 1024))
    });
    g.finish();
}

fn bench_ldq_block_size(c: &mut Criterion) {
    // Ablation: the LDQ block-size K (SQU buffer size design choice).
    let x = init::normal(&[1 << 17], 0.0, 1.0, 2);
    let mut g = c.benchmark_group("ldq_block_size");
    g.sample_size(20);
    for k in [64usize, 256, 1024, 4096] {
        g.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| LdqTensor::quantize(black_box(&x), LdqConfig::new(k, IntFormat::Int8)))
        });
    }
    g.finish();
}

fn bench_e2bqm_ways(c: &mut Criterion) {
    // Ablation: E²BQM candidate-way count (the SQU's 4-way choice).
    let x = init::long_tailed(&[1 << 16], 0.05, 0.01, 40.0, 3);
    let mut g = c.benchmark_group("e2bqm_ways");
    g.sample_size(20);
    for ways in [1usize, 2, 4, 8] {
        let q = E2bqmQuantizer::new(
            ways,
            CandidateStrategy::ClipSweep,
            ErrorEstimator::Rectilinear,
            IntFormat::Int8,
        );
        g.bench_with_input(BenchmarkId::from_parameter(ways), &q, |b, q| {
            b.iter(|| q.quantize_blocks(black_box(&x), 1024))
        });
    }
    g.finish();
}

fn bench_training_quantizers(c: &mut Criterion) {
    // The fake-quantize path each named algorithm takes per tensor.
    let x = init::long_tailed(&[1 << 16], 0.05, 0.01, 40.0, 4);
    let mut g = c.benchmark_group("training_quantizers");
    g.sample_size(20);
    for q in [
        TrainingQuantizer::fp32(),
        TrainingQuantizer::zhu2019(),
        TrainingQuantizer::zhu2019_hqt(),
        TrainingQuantizer::zhang2020(),
        TrainingQuantizer::zhang2020_hqt(),
    ] {
        g.bench_with_input(
            BenchmarkId::from_parameter(q.name().to_string()),
            &q,
            |b, q| b.iter(|| q.fake_quantize(black_box(&x))),
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_ldq_vs_layerwise,
    bench_ldq_block_size,
    bench_e2bqm_ways,
    bench_training_quantizers
);
criterion_main!(benches);
