//! `bench_perf` — perf-regression harness for the compute backends.
//!
//! Times every dense kernel (and whole training steps) under both the
//! `Naive` reference backend and the tiled/pooled `Fast` backend, then
//! writes a machine-readable report. CI runs `--quick --check` and fails
//! the build if `Fast` regresses below `Naive` on the reference GEMM
//! shape (512×512×512).
//!
//! ```text
//! bench_perf [--quick] [--check] [--out PATH]
//!
//!   --quick    reduced shape set and repetition count (CI smoke mode)
//!   --check    exit non-zero if Fast is slower than Naive on the
//!              reference 512x512x512 GEMM
//!   --out PATH write the JSON report here (default: BENCH_PR2.json)
//! ```
//!
//! Report schema (hand-written JSON, no serde):
//!
//! ```json
//! {
//!   "pr": 2,
//!   "threads": 4,
//!   "quick": false,
//!   "entries": [
//!     { "op": "gemm", "shape": "512x512x512",
//!       "ns_naive": 1, "ns_fast": 1, "speedup": 1.0 }
//!   ]
//! }
//! ```
//!
//! Times are nanoseconds for the best (minimum) of `reps` timed runs
//! after one warmup, so the numbers measure the kernels, not the
//! allocator or the OS scheduler.

use cq_experiments::accuracy::ProxyTask;
use cq_nn::{Adam, Conv2d, Dense, Flatten, MaxPool2d, QuantCtx, Relu, Sequential};
use cq_par::Pool;
use cq_quant::TrainingQuantizer;
use cq_tensor::ops::{self, Conv2dParams};
use cq_tensor::{init, Backend, Tensor};
use std::time::Instant;

/// The shape whose Fast-vs-Naive ratio gates CI (`--check`).
const REFERENCE_GEMM: (usize, usize, usize) = (512, 512, 512);

struct Entry {
    op: &'static str,
    shape: String,
    ns_naive: u64,
    ns_fast: u64,
}

impl Entry {
    fn speedup(&self) -> f64 {
        self.ns_naive as f64 / self.ns_fast.max(1) as f64
    }
}

/// Best-of-`reps` wall time in nanoseconds, after one warmup call.
fn best_ns<F: FnMut()>(mut f: F, reps: usize) -> u64 {
    f();
    let mut best = u64::MAX;
    for _ in 0..reps.max(1) {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_nanos() as u64);
    }
    best
}

/// Times one closure under both backends.
fn ab<F: FnMut(Backend)>(mut f: F, reps: usize) -> (u64, u64) {
    let naive = best_ns(|| f(Backend::Naive), reps);
    let fast = best_ns(|| f(Backend::Fast), reps);
    (naive, fast)
}

fn gemm_entry(op: &'static str, m: usize, k: usize, n: usize, reps: usize) -> Entry {
    let _sp = cq_obs::span!("bench", "{op} {m}x{k}x{n}");
    let (a_dims, b_dims): (Vec<usize>, Vec<usize>) = match op {
        "gemm" => (vec![m, k], vec![k, n]),
        "gemm_at" => (vec![k, m], vec![k, n]),
        "gemm_bt" => (vec![m, k], vec![n, k]),
        _ => unreachable!("unknown gemm op"),
    };
    let a = init::uniform(&a_dims, -1.0, 1.0, 11);
    let b = init::uniform(&b_dims, -1.0, 1.0, 13);
    let (ns_naive, ns_fast) = ab(
        |be| {
            let _ = match op {
                "gemm" => ops::matmul_with(be, &a, &b),
                "gemm_at" => ops::matmul_at_with(be, &a, &b),
                _ => ops::matmul_bt_with(be, &a, &b),
            }
            .expect("bench gemm");
        },
        reps,
    );
    Entry {
        op,
        shape: format!("{m}x{k}x{n}"),
        ns_naive,
        ns_fast,
    }
}

#[allow(clippy::too_many_arguments)]
fn conv_entries(
    n: usize,
    c: usize,
    f: usize,
    hw: usize,
    k: usize,
    stride: usize,
    padding: usize,
    reps: usize,
) -> Vec<Entry> {
    let _sp = cq_obs::span!("bench", "conv2d n{n}c{c}f{f}i{hw}k{k}");
    let p = Conv2dParams::new(stride, padding);
    let input = init::uniform(&[n, c, hw, hw], -1.0, 1.0, 17);
    let weight = init::uniform(&[f, c, k, k], -1.0, 1.0, 19);
    let shape = format!("n{n}c{c}f{f}i{hw}k{k}s{stride}p{padding}");
    let fwd = ops::conv2d_with(Backend::Naive, &input, &weight, p).expect("bench conv");
    let gout = init::uniform(fwd.dims(), -1.0, 1.0, 23);

    let (fwd_n, fwd_f) = ab(
        |be| {
            let _ = ops::conv2d_with(be, &input, &weight, p).expect("bench conv");
        },
        reps,
    );
    let (gi_n, gi_f) = ab(
        |be| {
            let _ = ops::conv2d_grad_input_with(be, &gout, &weight, input.dims(), p)
                .expect("bench conv grad_input");
        },
        reps,
    );
    let (gw_n, gw_f) = ab(
        |be| {
            let _ = ops::conv2d_grad_weight_with(be, &input, &gout, weight.dims(), p)
                .expect("bench conv grad_weight");
        },
        reps,
    );
    vec![
        Entry {
            op: "conv2d",
            shape: shape.clone(),
            ns_naive: fwd_n,
            ns_fast: fwd_f,
        },
        Entry {
            op: "conv2d_grad_input",
            shape: shape.clone(),
            ns_naive: gi_n,
            ns_fast: gi_f,
        },
        Entry {
            op: "conv2d_grad_weight",
            shape,
            ns_naive: gw_n,
            ns_fast: gw_f,
        },
    ]
}

/// One full training step (fwd + loss + bwd + update) of a model on a
/// batch, A/B'd across backends with identical seeds.
fn train_step_entry(
    op: &'static str,
    shape: String,
    build: impl Fn() -> (Sequential, Tensor, Vec<usize>),
    reps: usize,
) -> Entry {
    let _sp = cq_obs::span!("bench", "{op} {shape}");
    let time_backend = |be: Backend| {
        let (mut model, x, labels) = build();
        let ctx = QuantCtx::new(TrainingQuantizer::fp32()).with_backend(be);
        let mut opt = Adam::with_defaults(1e-3);
        best_ns(
            || {
                model
                    .train_step(&x, &labels, &mut opt, &ctx)
                    .expect("bench train step");
            },
            reps,
        )
    };
    Entry {
        op,
        shape,
        ns_naive: time_backend(Backend::Naive),
        ns_fast: time_backend(Backend::Fast),
    }
}

/// A CNN sized so the convolutions dominate the step: batch 32 of
/// 3×32×32 images through conv(3→32, k3, p1) → pool → dense.
fn bench_cnn() -> (Sequential, Tensor, Vec<usize>) {
    let mut model = Sequential::new();
    model
        .add(Conv2d::new("conv1", 3, 32, 3, 1, 1, 7))
        .add(Relu::new())
        .add(MaxPool2d::new(2))
        .add(Flatten::new())
        .add(Dense::new("fc", 32 * 16 * 16, 10, 8));
    let data = cq_data::textures(32, 3, 32, 10, 0.25, 99);
    (model, data.x, data.labels)
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn render_json(entries: &[Entry], quick: bool) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"pr\": 2,\n");
    out.push_str(&format!("  \"threads\": {},\n", Pool::global().threads()));
    out.push_str(&format!("  \"quick\": {quick},\n"));
    out.push_str("  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"op\": \"{}\", \"shape\": \"{}\", \"ns_naive\": {}, \"ns_fast\": {}, \"speedup\": {:.2} }}{}\n",
            json_escape(e.op),
            json_escape(&e.shape),
            e.ns_naive,
            e.ns_fast,
            e.speedup(),
            if i + 1 < entries.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let mut quick = false;
    let mut check = false;
    let mut out_path = String::from("BENCH_PR2.json");
    let mut profile_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--check" => check = true,
            "--out" => out_path = args.next().expect("--out requires a path"),
            "--profile" => profile_path = Some(args.next().expect("--profile requires a path")),
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    // Tracing: --profile wins, else CQ_TRACE, else off (and then the
    // instrumented kernels cost one atomic load per probe — see the
    // obs_overhead test).
    match profile_path {
        Some(p) => cq_obs::init_to_path(&p).expect("open --profile path"),
        None => {
            cq_obs::init_from_env().expect("open CQ_TRACE path");
        }
    }

    let reps = if quick { 2 } else { 3 };
    let (rm, rk, rn) = REFERENCE_GEMM;
    let mut entries = Vec::new();

    eprintln!(
        "bench_perf: threads={} quick={quick}",
        Pool::global().threads()
    );

    // Reference GEMM always runs: it gates --check.
    entries.push(gemm_entry("gemm", rm, rk, rn, reps));
    if !quick {
        entries.push(gemm_entry("gemm", 256, 256, 256, reps + 2));
        entries.push(gemm_entry("gemm", 384, 128, 512, reps + 2));
        entries.push(gemm_entry("gemm_at", 256, 256, 256, reps + 2));
        entries.push(gemm_entry("gemm_bt", 256, 256, 256, reps + 2));
    }

    if quick {
        entries.extend(conv_entries(2, 8, 16, 16, 3, 1, 1, reps));
    } else {
        entries.extend(conv_entries(4, 8, 32, 32, 3, 1, 1, reps));
        entries.extend(conv_entries(1, 16, 32, 28, 5, 2, 2, reps));
    }

    entries.push(train_step_entry(
        "train_step",
        "bench-cnn-b32-3x32x32".into(),
        bench_cnn,
        reps,
    ));
    if !quick {
        for task in ProxyTask::ALL {
            entries.push(train_step_entry(
                "train_step",
                format!("proxy-{}", task.name()),
                move || {
                    let (model, train, _) = task.build(42);
                    (model, train.x, train.labels)
                },
                reps,
            ));
        }
    }

    for e in &entries {
        eprintln!(
            "  {:<22} {:<24} naive {:>12} ns  fast {:>12} ns  {:>6.2}x",
            e.op,
            e.shape,
            e.ns_naive,
            e.ns_fast,
            e.speedup()
        );
    }

    std::fs::write(&out_path, render_json(&entries, quick)).expect("write report");
    eprintln!("wrote {out_path}");
    cq_obs::finish();

    if check {
        let reference = entries
            .iter()
            .find(|e| e.op == "gemm" && e.shape == format!("{rm}x{rk}x{rn}"))
            .expect("reference GEMM entry");
        if reference.speedup() < 1.0 {
            eprintln!(
                "FAIL: Fast backend slower than Naive on reference GEMM ({:.2}x)",
                reference.speedup()
            );
            std::process::exit(1);
        }
        eprintln!(
            "check passed: Fast {:.2}x Naive on reference GEMM",
            reference.speedup()
        );
    }
}
