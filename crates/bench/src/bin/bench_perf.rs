//! `bench_perf` — perf-regression harness for the compute backends.
//!
//! Times every dense kernel, the fused quantization kernels, whole
//! training steps, and a memoized simulation sweep under both the `Naive`
//! reference path and the `Fast` path, then writes a machine-readable
//! report. CI runs `--quick --check --baseline BENCH_PR10.json` and fails
//! the build if `Fast` falls below 3.0x over `Naive` on the reference
//! GEMM shape (512×512×512), if the integer-domain `gemm_i8` kernel
//! falls below 2.0x over the f32 fast path on the same shape, or if any
//! gated entry (serial quant kernels, the gemm/conv family, train
//! steps) drops below its recorded baseline speedup — kernels retain
//! 85%, whole train steps 60% (noisier; see [`TRAIN_STEP_RETAIN`]).
//!
//! ```text
//! bench_perf [--quick] [--check] [--out PATH] [--baseline PATH]
//!
//!   --quick         reduced shape set and repetition count (CI smoke mode)
//!   --check         exit non-zero if Fast is below 3.0x over Naive on
//!                   the reference 512x512x512 GEMM, gemm_i8 is below
//!                   2.0x over the f32 fast path on the same shape, or
//!                   a gated entry regresses >15% below the baseline
//!                   report
//!   --out PATH      write the JSON report here (default: BENCH_PR10.json)
//!   --baseline PATH a previous report to gate speedups against
//! ```
//!
//! Report schema (hand-written JSON, no serde):
//!
//! ```json
//! {
//!   "pr": 10,
//!   "threads": 4,
//!   "quick": false,
//!   "entries": [
//!     { "op": "gemm", "shape": "512x512x512",
//!       "ns_naive": 1, "ns_fast": 1, "speedup": 1.0 }
//!   ]
//! }
//! ```
//!
//! Service-level entries (`serve_saturation`, `serve_overload`) carry an
//! additional `"extra": {...}` object with requests/sec and p50/p99
//! latencies — metrics that don't fit the naive/fast nanosecond pair.
//! The int8 entries use `extra` too: `gemm_i8` records which SIMD
//! micro-kernel dispatched, and each `train_step_int8` entry records
//! the pow2-ladder hit rate the integer path achieved on that network
//! (hits are layer forwards that stayed in the integer domain;
//! fallbacks re-ran in f32).
//!
//! Quant entries without a `-pooled` suffix stay below the fast path's
//! parallel threshold, so their speedups measure the fused single-pass
//! kernels at one worker and are stable across machines — those are
//! baseline-gated. The gemm/conv/train_step entries are also gated:
//! their speedups come from the blocked SIMD GEMM, whose Fast-vs-Naive
//! ratio is a same-process A/B and therefore stable even though the
//! absolute times are not. `-pooled` shapes cross the threshold and
//! scale with the core count; `hwcost_sweep` times re-simulation with
//! the `HwCostCache` disabled (`ns_naive`) vs enabled and warm
//! (`ns_fast`), and `mapping_search_quick` does the same A/B for the
//! per-layer mapping search memo.
//!
//! Times are nanoseconds for the best (minimum) of `reps` timed runs
//! after one warmup, so the numbers measure the kernels, not the
//! allocator or the OS scheduler.

use cq_accel::{clear_sim_cache, CambriconQ};
use cq_experiments::accuracy::ProxyTask;
use cq_ndp::OptimizerKind;
use cq_nn::{Adam, Conv2d, Dense, Flatten, MaxPool2d, QuantCtx, QuantPath, Relu, Sequential};
use cq_par::Pool;
use cq_quant::{E2bqmQuantizer, IntFormat, LdqConfig, LdqTensor, TrainingQuantizer};
use cq_sim::{HwCostCache, HwCostKey};
use cq_tensor::ops::{self, Conv2dParams};
use cq_tensor::{init, Backend, Tensor};
use cq_workloads::models;
use std::time::Instant;

/// The shape whose Fast-vs-Naive ratio gates CI (`--check`).
const REFERENCE_GEMM: (usize, usize, usize) = (512, 512, 512);

/// Minimum Fast-vs-Naive speedup `--check` demands on the reference
/// GEMM. The blocked SIMD kernel clears 3x even on the scalar
/// micro-kernels, so anything below this means the fast path broke.
const REFERENCE_MIN_SPEEDUP: f64 = 3.0;

/// Minimum `gemm_i8`-vs-f32-fast-path speedup `--check` demands on the
/// reference shape at one worker. The k-pair packed i16 kernels move
/// half the bytes of f32 and retire twice the lanes per instruction, so
/// 2x holds even on the scalar micro-kernel; below it the integer
/// datapath stopped paying for itself and the dequantization-free story
/// is broken.
const INT8_MIN_SPEEDUP: f64 = 2.0;

/// Ops whose serial (non-`-pooled`) entries are gated against a
/// `--baseline` report: a >15% speedup drop fails `--check`.
const GATED_QUANT_OPS: [&str; 3] = ["ldq_quantize", "e2bqm_quantize_blocks", "fake_quantize"];

/// Dense-compute ops gated the same way. Their Fast-vs-Naive ratios are
/// same-process A/Bs of the blocked GEMM against the reference loops,
/// so they are stable enough to gate even though absolute times vary
/// by host.
const GATED_COMPUTE_OPS: [&str; 9] = [
    "gemm",
    "gemm_at",
    "gemm_bt",
    "gemm_i8",
    "conv2d",
    "conv2d_grad_input",
    "conv2d_grad_weight",
    "train_step",
    "train_step_int8",
];

/// Fraction of the baseline speedup a gated entry must retain.
const BASELINE_RETAIN: f64 = 0.85;

/// Looser retention floor for `train_step` entries: a whole training
/// step times the allocator, quantizers, and optimizer alongside the
/// kernels, and its Fast side is short enough that quick-mode runs
/// swing ±20% run to run. 60% still trips on a real fast-path
/// collapse (losing SIMD alone costs more than that on the CNN steps)
/// without flaking on scheduler noise.
const TRAIN_STEP_RETAIN: f64 = 0.60;

struct Entry {
    op: &'static str,
    shape: String,
    ns_naive: u64,
    ns_fast: u64,
    /// Optional extra JSON object (already rendered) appended to the
    /// entry as `"extra": {...}` — service-level metrics like req/s and
    /// tail latencies that don't fit the naive/fast pair.
    extra: Option<String>,
}

impl Entry {
    fn speedup(&self) -> f64 {
        self.ns_naive as f64 / self.ns_fast.max(1) as f64
    }
}

/// Best-of-`reps` wall time in nanoseconds, after one warmup call.
fn best_ns<F: FnMut()>(mut f: F, reps: usize) -> u64 {
    f();
    let mut best = u64::MAX;
    for _ in 0..reps.max(1) {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_nanos() as u64);
    }
    best
}

/// Times one closure under both backends.
fn ab<F: FnMut(Backend)>(mut f: F, reps: usize) -> (u64, u64) {
    let naive = best_ns(|| f(Backend::Naive), reps);
    let fast = best_ns(|| f(Backend::Fast), reps);
    (naive, fast)
}

fn gemm_entry(op: &'static str, m: usize, k: usize, n: usize, reps: usize) -> Entry {
    let _sp = cq_obs::span!("bench", "{op} {m}x{k}x{n}");
    let (a_dims, b_dims): (Vec<usize>, Vec<usize>) = match op {
        "gemm" => (vec![m, k], vec![k, n]),
        "gemm_at" => (vec![k, m], vec![k, n]),
        "gemm_bt" => (vec![m, k], vec![n, k]),
        _ => unreachable!("unknown gemm op"),
    };
    let a = init::uniform(&a_dims, -1.0, 1.0, 11);
    let b = init::uniform(&b_dims, -1.0, 1.0, 13);
    let (ns_naive, ns_fast) = ab(
        |be| {
            let _ = match op {
                "gemm" => ops::matmul_with(be, &a, &b),
                "gemm_at" => ops::matmul_at_with(be, &a, &b),
                _ => ops::matmul_bt_with(be, &a, &b),
            }
            .expect("bench gemm");
        },
        reps,
    );
    Entry {
        op,
        shape: format!("{m}x{k}x{n}"),
        ns_naive,
        ns_fast,
        extra: None,
    }
}

#[allow(clippy::too_many_arguments)]
fn conv_entries(
    n: usize,
    c: usize,
    f: usize,
    hw: usize,
    k: usize,
    stride: usize,
    padding: usize,
    reps: usize,
) -> Vec<Entry> {
    let _sp = cq_obs::span!("bench", "conv2d n{n}c{c}f{f}i{hw}k{k}");
    let p = Conv2dParams::new(stride, padding);
    let input = init::uniform(&[n, c, hw, hw], -1.0, 1.0, 17);
    let weight = init::uniform(&[f, c, k, k], -1.0, 1.0, 19);
    let shape = format!("n{n}c{c}f{f}i{hw}k{k}s{stride}p{padding}");
    let fwd = ops::conv2d_with(Backend::Naive, &input, &weight, p).expect("bench conv");
    let gout = init::uniform(fwd.dims(), -1.0, 1.0, 23);

    let (fwd_n, fwd_f) = ab(
        |be| {
            let _ = ops::conv2d_with(be, &input, &weight, p).expect("bench conv");
        },
        reps,
    );
    let (gi_n, gi_f) = ab(
        |be| {
            let _ = ops::conv2d_grad_input_with(be, &gout, &weight, input.dims(), p)
                .expect("bench conv grad_input");
        },
        reps,
    );
    let (gw_n, gw_f) = ab(
        |be| {
            let _ = ops::conv2d_grad_weight_with(be, &input, &gout, weight.dims(), p)
                .expect("bench conv grad_weight");
        },
        reps,
    );
    vec![
        Entry {
            op: "conv2d",
            shape: shape.clone(),
            ns_naive: fwd_n,
            ns_fast: fwd_f,
            extra: None,
        },
        Entry {
            op: "conv2d_grad_input",
            shape: shape.clone(),
            ns_naive: gi_n,
            ns_fast: gi_f,
            extra: None,
        },
        Entry {
            op: "conv2d_grad_weight",
            shape,
            ns_naive: gw_n,
            ns_fast: gw_f,
            extra: None,
        },
    ]
}

/// One full training step (fwd + loss + bwd + update) of a model on a
/// batch, A/B'd across backends with identical seeds.
fn train_step_entry(
    op: &'static str,
    shape: String,
    build: impl Fn() -> (Sequential, Tensor, Vec<usize>),
    reps: usize,
) -> Entry {
    let _sp = cq_obs::span!("bench", "{op} {shape}");
    let time_backend = |be: Backend| {
        let (mut model, x, labels) = build();
        let ctx = QuantCtx::new(TrainingQuantizer::fp32()).with_backend(be);
        let mut opt = Adam::with_defaults(1e-3);
        best_ns(
            || {
                model
                    .train_step(&x, &labels, &mut opt, &ctx)
                    .expect("bench train step");
            },
            reps,
        )
    };
    Entry {
        op,
        shape,
        ns_naive: time_backend(Backend::Naive),
        ns_fast: time_backend(Backend::Fast),
        extra: None,
    }
}

/// A CNN sized so the convolutions dominate the step: batch 32 of
/// 3×32×32 images through conv(3→32, k3, p1) → pool → dense.
fn bench_cnn() -> (Sequential, Tensor, Vec<usize>) {
    let mut model = Sequential::new();
    model
        .add(Conv2d::new("conv1", 3, 32, 3, 1, 1, 7))
        .add(Relu::new())
        .add(MaxPool2d::new(2))
        .add(Flatten::new())
        .add(Dense::new("fc", 32 * 16 * 16, 10, 8));
    let data = cq_data::textures(32, 3, 32, 10, 0.25, 99);
    (model, data.x, data.labels)
}

/// The dequantization-free integer datapath against the f32 fast path
/// on identical operand values: `ns_naive` is the blocked f32 SIMD GEMM
/// and `ns_fast` is `gemm_i8` (i8×i8→i32, k-pair packed i16 madd), both
/// pinned to a one-worker pool so the ratio is host-independent and
/// gateable, like the `-serial` quant entries. The f32 operands are
/// exact images of the i8 codes, so both sides compute the same
/// mathematical product — the speedup is purely the datapath width win
/// the integer path buys. `extra` records which micro-kernel family
/// dispatched.
fn int8_gemm_entry(m: usize, k: usize, n: usize, reps: usize) -> Entry {
    let _sp = cq_obs::span!("bench", "gemm_i8 {m}x{k}x{n}");
    let serial = Pool::new(1);
    let mut state = 0x243F_6A88u32;
    let mut next_i8 = move || {
        state = state.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
        (state >> 24) as i8
    };
    let a_i8: Vec<i8> = (0..m * k).map(|_| next_i8()).collect();
    let b_i8: Vec<i8> = (0..k * n).map(|_| next_i8()).collect();
    let a_f: Vec<f32> = a_i8.iter().map(|&v| f32::from(v)).collect();
    let b_f: Vec<f32> = b_i8.iter().map(|&v| f32::from(v)).collect();
    let mut out_f = vec![0.0f32; m * n];
    let mut out_i = vec![0i32; m * n];
    let ns_naive = best_ns(
        || cq_par::gemm(m, k, n, &a_f, &b_f, &mut out_f, &serial),
        reps,
    );
    let ns_fast = best_ns(
        || cq_par::gemm_i8(m, k, n, &a_i8, &b_i8, &mut out_i, &serial),
        reps,
    );
    Entry {
        op: "gemm_i8",
        shape: format!("{m}x{k}x{n}-serial"),
        ns_naive,
        ns_fast,
        extra: Some(format!(
            "{{\"vs\": \"f32_fast_path\", \"simd\": \"{}\"}}",
            cq_par::simd_level().name()
        )),
    }
}

/// One full training step under `CQ_QUANT_PATH`-style A/B: `ns_naive`
/// trains with the fake-quantizing f32 path (quantize → dequantize →
/// f32 GEMM) and `ns_fast` with the integer path (quantize once →
/// i8×i8→i32 GEMM → single rescale), both on `Backend::Fast` with the
/// same HQT quantizer and seeds. `extra` records the pow2-ladder hit
/// rate the integer path achieved on this network: hits are layer
/// forwards that stayed in the integer domain, fallbacks re-ran in f32
/// because a block's scale left the power-of-two ladder.
fn int_train_step_entry(
    shape: String,
    build: impl Fn() -> (Sequential, Tensor, Vec<usize>),
    reps: usize,
) -> Entry {
    let _sp = cq_obs::span!("bench", "train_step_int8 {shape}");
    let time_path = |path: QuantPath| {
        let (mut model, x, labels) = build();
        let ctx = QuantCtx::new(TrainingQuantizer::zhang2020_hqt())
            .with_backend(Backend::Fast)
            .with_path(path);
        let stats = ctx.int_stats();
        let mut opt = Adam::with_defaults(1e-3);
        let ns = best_ns(
            || {
                model
                    .train_step(&x, &labels, &mut opt, &ctx)
                    .expect("bench int train step");
            },
            reps,
        );
        (ns, stats)
    };
    let (ns_naive, _) = time_path(QuantPath::Fp32);
    let (ns_fast, stats) = time_path(QuantPath::Int8);
    let extra = format!(
        "{{\"ladder_hit_rate\": {:.4}, \"hits\": {}, \"fallbacks\": {}}}",
        stats.hit_rate().unwrap_or(0.0),
        stats.hits(),
        stats.fallbacks(),
    );
    Entry {
        op: "train_step_int8",
        shape,
        ns_naive,
        ns_fast,
        extra: Some(extra),
    }
}

/// Quant-kernel entries. The serial shapes (16 Ki elements) sit below
/// `cq_quant::fast::PAR_MIN_ELEMS`, so `Backend::Fast` takes the fused
/// single-pass kernel on one worker — these appear in both quick and full
/// modes under identical shape strings so `--baseline` gating works. The
/// full mode adds `-pooled` shapes that cross the threshold and exercise
/// the block fan-out.
fn quant_entries(reps: usize, quick: bool) -> Vec<Entry> {
    let _sp = cq_obs::span!("bench", "quant kernels");
    let mut entries = Vec::new();
    let t = init::long_tailed(&[16384], 0.1, 0.01, 30.0, 31);

    let cfg = LdqConfig::new(256, IntFormat::Int8);
    let (ns_naive, ns_fast) = ab(
        |be| {
            let _ = LdqTensor::quantize_with(&t, cfg, be);
        },
        reps,
    );
    entries.push(Entry {
        op: "ldq_quantize",
        shape: "16384xK256-int8".into(),
        ns_naive,
        ns_fast,
        extra: None,
    });

    let q = E2bqmQuantizer::hardware_default();
    let (ns_naive, ns_fast) = ab(
        |be| {
            let _ = q.quantize_blocks_with(&t, 256, be);
        },
        reps,
    );
    entries.push(Entry {
        op: "e2bqm_quantize_blocks",
        shape: "16384xK256-w4".into(),
        ns_naive,
        ns_fast,
        extra: None,
    });

    // Cosine arbitration (the zhu2019-style multiplex): the naive path
    // re-derives ‖x‖ per candidate; the fused path shares the statistic.
    let qc = E2bqmQuantizer::new(
        4,
        cq_quant::CandidateStrategy::ClipSweep,
        cq_quant::ErrorEstimator::Cosine,
        IntFormat::Int8,
    );
    let (ns_naive, ns_fast) = ab(
        |be| {
            let _ = qc.quantize_blocks_with(&t, 256, be);
        },
        reps,
    );
    entries.push(Entry {
        op: "e2bqm_quantize_blocks",
        shape: "16384xK256-w4-cosine".into(),
        ns_naive,
        ns_fast,
        extra: None,
    });

    let tq = TrainingQuantizer::zhang2020_hqt();
    let ns_naive = best_ns(
        || {
            let _ = tq.fake_quantize_naive(&t);
        },
        reps,
    );
    let ns_fast = best_ns(
        || {
            let _ = tq.fake_quantize_fast(&t);
        },
        reps,
    );
    entries.push(Entry {
        op: "fake_quantize",
        shape: "hqt-zhang2020-16384".into(),
        ns_naive,
        ns_fast,
        extra: None,
    });

    // Out-of-cache serial entries: 1 MiB of f32 exceeds L2, which is
    // where the naive path's per-block tensor allocations and extra
    // passes hurt most and the fused single-pass kernels shine. Pinned
    // to a one-worker pool so the measurement is host-independent (and
    // therefore gateable), whatever `CQ_THREADS` says.
    let serial = Pool::new(1);
    let big_serial = init::long_tailed(&[1 << 18], 0.1, 0.01, 30.0, 29);
    let cfg = LdqConfig::new(256, IntFormat::Int8);
    let ns_naive = best_ns(
        || {
            let _ = LdqTensor::quantize_naive(&big_serial, cfg);
        },
        reps,
    );
    let ns_fast = best_ns(
        || {
            let _ = LdqTensor::quantize_fast_on(&serial, &big_serial, cfg);
        },
        reps,
    );
    entries.push(Entry {
        op: "ldq_quantize",
        shape: "262144xK256-int8-serial".into(),
        ns_naive,
        ns_fast,
        extra: None,
    });

    let ns_naive = best_ns(
        || {
            let _ = qc.quantize_blocks_naive(&big_serial, 256);
        },
        reps,
    );
    let ns_fast = best_ns(
        || {
            let _ = qc.quantize_blocks_fast_on(&serial, &big_serial, 256);
        },
        reps,
    );
    entries.push(Entry {
        op: "e2bqm_quantize_blocks",
        shape: "262144xK256-w4-cosine-serial".into(),
        ns_naive,
        ns_fast,
        extra: None,
    });

    if !quick {
        let big = init::long_tailed(&[1 << 21], 0.1, 0.01, 30.0, 37);
        let cfg = LdqConfig::new(1024, IntFormat::Int8);
        let (ns_naive, ns_fast) = ab(
            |be| {
                let _ = LdqTensor::quantize_with(&big, cfg, be);
            },
            reps,
        );
        entries.push(Entry {
            op: "ldq_quantize",
            shape: "2097152xK1024-int8-pooled".into(),
            ns_naive,
            ns_fast,
            extra: None,
        });

        let mid = init::long_tailed(&[1 << 20], 0.1, 0.01, 30.0, 41);
        let (ns_naive, ns_fast) = ab(
            |be| {
                let _ = q.quantize_blocks_with(&mid, 1024, be);
            },
            reps,
        );
        entries.push(Entry {
            op: "e2bqm_quantize_blocks",
            shape: "1048576xK1024-w4-pooled".into(),
            ns_naive,
            ns_fast,
            extra: None,
        });
    }
    entries
}

/// Sweep-level memoization: re-simulating the same (config, optimizer,
/// network) combinations with the `HwCostCache` disabled (`ns_naive`) vs
/// enabled (`ns_fast`). `best_ns`'s untimed warmup call fills the cache
/// on the fast side, so the timed runs measure warm hits — exactly what
/// an ablation sweep's repeated inner simulations see.
fn hwcost_entry(reps: usize, quick: bool) -> Entry {
    let _sp = cq_obs::span!("bench", "hwcost sweep");
    let chip = CambriconQ::edge();
    let opt = OptimizerKind::Sgd { lr: 0.01 };
    let nets = if quick {
        vec![models::squeezenet_v1()]
    } else {
        vec![
            models::squeezenet_v1(),
            models::resnet18(),
            models::alexnet(),
        ]
    };
    let run = || {
        for net in &nets {
            let _ = chip.simulate(net, opt);
        }
    };
    cq_sim::set_hwcache_enabled(false);
    let ns_naive = best_ns(run, reps);
    cq_sim::set_hwcache_enabled(true);
    clear_sim_cache();
    let ns_fast = best_ns(run, reps);
    Entry {
        op: "hwcost_sweep",
        shape: format!("{}nets-sgd-edge", nets.len()),
        ns_naive,
        ns_fast,
        extra: None,
    }
}

/// Shard-level lock contention on the `HwCostCache`: four workers hammer
/// a warm 64-key working set with pure hits. `ns_naive` is a single-shard
/// cache (every hit serializes on one mutex), `ns_fast` the default
/// 16-shard layout, so the speedup is the sharding win under contention.
/// Not baseline-gated: contention ratios swing with the host's core
/// count and scheduler far more than the serial kernels do.
///
/// The keys are built once outside the timed loop and cloned per hit:
/// BENCH_PR6's ~1.0x reading turned out to measure per-hit `format!`
/// key construction, which dominates a sharded-mutex hit and hides the
/// lock behavior entirely. Note that on a host with a single hardware
/// thread the four workers time-slice instead of contending, so ~1.0x
/// is the *correct* reading there — sharding only pays when hits
/// genuinely overlap — which is why this entry stays ungated.
fn hwcache_hitstorm_entry(reps: usize, quick: bool) -> Entry {
    let _sp = cq_obs::span!("bench", "hwcache hitstorm");
    cq_sim::set_hwcache_enabled(true);
    const WORKERS: usize = 4;
    const KEYS: usize = 64;
    let hits_per_worker: usize = if quick { 20_000 } else { 100_000 };
    let pool = Pool::new(WORKERS);
    let keys: Vec<HwCostKey> = (0..KEYS)
        .map(|k| HwCostKey::new("bench-hitstorm", format!("key-{k}")))
        .collect();
    let time_with = |shards: usize| {
        let cache: HwCostCache<u64> = HwCostCache::with_shards(shards, None);
        for (k, key) in keys.iter().enumerate() {
            cache.get_or_compute(key.clone(), || k as u64);
        }
        best_ns(
            || {
                let sums = pool.parallel_map(WORKERS, |w| {
                    let mut acc = 0u64;
                    for j in 0..hits_per_worker {
                        let k = (j.wrapping_mul(31) + w.wrapping_mul(17)) % KEYS;
                        acc ^= *cache.get_or_compute(keys[k].clone(), || k as u64);
                    }
                    acc
                });
                std::hint::black_box(sums);
            },
            reps,
        )
    };
    Entry {
        op: "hwcache_hitstorm",
        shape: format!(
            "{WORKERS}threads-{KEYS}keys-1v{}shards",
            cq_sim::DEFAULT_SHARDS
        ),
        ns_naive: time_with(1),
        ns_fast: time_with(cq_sim::DEFAULT_SHARDS),
        extra: None,
    }
}

/// Per-layer mapping search over the `--quick` study set: the two-stage
/// tile/order search recomputed from scratch every call (`ns_naive`,
/// memo disabled) vs served from the warm process-wide search cache
/// (`ns_fast`). Ungated: the cold side is dominated by cycle-accurate
/// DDR walks whose candidate count shifts whenever the search space or
/// pruning changes, so the ratio tracks search design, not a kernel
/// regression.
fn mapping_search_entry(reps: usize, quick: bool) -> Entry {
    let _sp = cq_obs::span!("bench", "mapping search");
    let chip = CambriconQ::edge();
    let nets = if quick {
        vec![models::alexnet()]
    } else {
        vec![models::alexnet(), models::ptb_lstm_medium()]
    };
    let run = || {
        for net in &nets {
            let _ = cq_accel::search_network(&chip, net);
        }
    };
    cq_sim::set_hwcache_enabled(false);
    let ns_naive = best_ns(run, reps);
    cq_sim::set_hwcache_enabled(true);
    let ns_fast = best_ns(run, reps);
    Entry {
        op: "mapping_search_quick",
        shape: format!("{}nets-edge", nets.len()),
        ns_naive,
        ns_fast,
        extra: None,
    }
}

/// Starts an in-process sweep daemon with `workers` worker loops,
/// drives it with `opts`, shuts it down, and returns the load report.
fn drive_daemon(
    workers: usize,
    queue_cap: usize,
    opts_for: impl Fn(&str) -> cq_serve::LoadOptions,
) -> cq_serve::LoadReport {
    use std::sync::atomic::Ordering;
    let server = cq_serve::Server::bind(
        "127.0.0.1:0",
        cq_serve::ServerConfig {
            workers,
            queue_cap,
            retry_after_ms: 2,
            ..cq_serve::ServerConfig::default()
        },
    )
    .expect("bind daemon");
    let addr = server.local_addr().expect("daemon addr").to_string();
    let handle = server.shutdown_handle();
    let join = std::thread::spawn(move || server.run().expect("daemon loop"));
    let report = cq_serve::run_load(&opts_for(&addr));
    handle.store(true, Ordering::SeqCst);
    join.join().expect("daemon thread");
    report
}

/// Sweep-daemon saturation: closed-loop clients over loopback against a
/// warm `HwCostCache`, requests/sec at 1 worker (`ns_naive` = wall time)
/// vs `available_parallelism` workers (`ns_fast`), so the speedup is the
/// daemon's thread scaling on cached sweeps. `extra` records req/s and
/// p50/p99 per worker count. Ungated: on a single-hardware-thread host
/// the workers time-slice and ~1.0x is the correct reading — like
/// `hwcache_hitstorm`, scaling only appears when cores genuinely
/// overlap.
fn serve_saturation_entry(quick: bool) -> Entry {
    let _sp = cq_obs::span!("bench", "serve saturation");
    let requests = if quick { 4 } else { 16 };
    let opts_for = |addr: &str| {
        let mut opts = cq_serve::LoadOptions::quick(addr);
        opts.clients = 4;
        opts.requests = requests;
        opts.check = false;
        opts
    };
    // Warm the process-wide HwCostCache so both sides measure the
    // daemon's dispatch/stream path, not first-touch simulation.
    drive_daemon(1, 64, |addr| {
        let mut o = opts_for(addr);
        o.clients = 1;
        o.requests = 1;
        o
    });
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .max(2);
    let one = drive_daemon(1, 64, opts_for);
    let many = drive_daemon(threads, 64, opts_for);
    assert!(one.is_clean(), "1-worker saturation run failed: {one:?}");
    assert!(
        many.is_clean(),
        "{threads}-worker saturation run failed: {many:?}"
    );
    Entry {
        op: "serve_saturation",
        shape: format!("4clients-{requests}req-2cells-cached-1v{threads}workers"),
        ns_naive: (one.elapsed_ms * 1e6) as u64,
        ns_fast: (many.elapsed_ms * 1e6) as u64,
        extra: Some(format!(
            "{{\"req_per_s_1w\": {:.2}, \"req_per_s_{threads}w\": {:.2}, \
             \"p50_us_1w\": {}, \"p99_us_1w\": {}, \"p50_us_{threads}w\": {}, \"p99_us_{threads}w\": {}}}",
            one.req_per_s, many.req_per_s, one.p50_us, one.p99_us, many.p50_us, many.p99_us,
        )),
    }
}

/// Bounded-queue overload: the same closed-loop load against a
/// queue_cap=2 daemon (`ns_naive`, clients absorb `rejected` + retry)
/// vs an uncontended queue_cap=64 daemon (`ns_fast`). Every request
/// still completes — backpressure costs retries, never work or memory —
/// and `extra` records how many rejections the tiny queue issued.
/// Ungated: the rejection count depends on scheduler interleaving.
fn serve_overload_entry(quick: bool) -> Entry {
    let _sp = cq_obs::span!("bench", "serve overload");
    let requests = if quick { 4 } else { 12 };
    let opts_for = |addr: &str| {
        let mut opts = cq_serve::LoadOptions::quick(addr);
        opts.clients = 6;
        opts.requests = requests;
        opts.check = false;
        opts
    };
    let tiny = drive_daemon(2, 2, opts_for);
    let roomy = drive_daemon(2, 64, opts_for);
    assert!(
        tiny.is_clean(),
        "overloaded run must still complete: {tiny:?}"
    );
    assert!(roomy.is_clean(), "uncontended run failed: {roomy:?}");
    Entry {
        op: "serve_overload",
        shape: format!("6clients-{requests}req-2cells-cap2v64"),
        ns_naive: (tiny.elapsed_ms * 1e6) as u64,
        ns_fast: (roomy.elapsed_ms * 1e6) as u64,
        extra: Some(format!(
            "{{\"rejections_cap2\": {}, \"rejections_cap64\": {}, \
             \"p99_us_cap2\": {}, \"p99_us_cap64\": {}}}",
            tiny.rejections, roomy.rejections, tiny.p99_us, roomy.p99_us,
        )),
    }
}

/// Whether an entry's speedup is gated against the `--baseline` report.
fn is_gated(e: &Entry) -> bool {
    (GATED_QUANT_OPS.contains(&e.op) && !e.shape.ends_with("-pooled"))
        || GATED_COMPUTE_OPS.contains(&e.op)
}

/// Extracts `(op, shape, speedup)` triples from a previous report. The
/// report is the fixed line-oriented format [`render_json`] writes (one
/// entry object per line), so a full JSON parser is unnecessary.
fn parse_baseline(text: &str) -> Vec<(String, String, f64)> {
    let mut out = Vec::new();
    for line in text.lines() {
        let (Some(op), Some(shape), Some(speedup)) = (
            field_str(line, "\"op\": \""),
            field_str(line, "\"shape\": \""),
            field_num(line, "\"speedup\": "),
        ) else {
            continue;
        };
        out.push((op, shape, speedup));
    }
    out
}

fn field_str(line: &str, key: &str) -> Option<String> {
    let rest = &line[line.find(key)? + key.len()..];
    Some(rest[..rest.find('"')?].to_string())
}

fn field_num(line: &str, key: &str) -> Option<f64> {
    let rest = &line[line.find(key)? + key.len()..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn render_json(entries: &[Entry], quick: bool) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"pr\": 10,\n");
    out.push_str(&format!("  \"threads\": {},\n", Pool::global().threads()));
    out.push_str(&format!("  \"quick\": {quick},\n"));
    out.push_str("  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        let extra = match &e.extra {
            Some(x) => format!(", \"extra\": {x}"),
            None => String::new(),
        };
        out.push_str(&format!(
            "    {{ \"op\": \"{}\", \"shape\": \"{}\", \"ns_naive\": {}, \"ns_fast\": {}, \"speedup\": {:.2}{} }}{}\n",
            json_escape(e.op),
            json_escape(&e.shape),
            e.ns_naive,
            e.ns_fast,
            e.speedup(),
            extra,
            if i + 1 < entries.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let mut quick = false;
    let mut check = false;
    let mut out_path = String::from("BENCH_PR10.json");
    let mut baseline_path: Option<String> = None;
    let mut profile_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--check" => check = true,
            "--out" => out_path = args.next().expect("--out requires a path"),
            "--baseline" => baseline_path = Some(args.next().expect("--baseline requires a path")),
            "--profile" => profile_path = Some(args.next().expect("--profile requires a path")),
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    let baseline = baseline_path.map(|p| {
        let text = std::fs::read_to_string(&p)
            .unwrap_or_else(|e| panic!("cannot read --baseline {p:?}: {e}"));
        let rows = parse_baseline(&text);
        assert!(!rows.is_empty(), "no entries parsed from --baseline {p:?}");
        rows
    });
    // Tracing: --profile wins, else CQ_TRACE, else off (and then the
    // instrumented kernels cost one atomic load per probe — see the
    // obs_overhead test).
    match profile_path {
        Some(p) => cq_obs::init_to_path(&p).expect("open --profile path"),
        None => {
            cq_obs::init_from_env().expect("open CQ_TRACE path");
        }
    }

    let reps = if quick { 2 } else { 3 };
    let (rm, rk, rn) = REFERENCE_GEMM;
    let mut entries = Vec::new();

    eprintln!(
        "bench_perf: threads={} quick={quick} fast-path=[{}]",
        Pool::global().threads(),
        cq_tensor::fast_path_info()
    );

    // Reference GEMM always runs: it gates --check. So does the
    // reference-shape gemm_i8 entry (the integer-datapath gate).
    entries.push(gemm_entry("gemm", rm, rk, rn, reps));
    entries.push(int8_gemm_entry(rm, rk, rn, reps));
    if !quick {
        entries.push(gemm_entry("gemm", 256, 256, 256, reps + 2));
        entries.push(gemm_entry("gemm", 384, 128, 512, reps + 2));
        entries.push(gemm_entry("gemm_at", 256, 256, 256, reps + 2));
        entries.push(gemm_entry("gemm_bt", 256, 256, 256, reps + 2));
        entries.push(int8_gemm_entry(256, 256, 256, reps + 2));
    }

    if quick {
        entries.extend(conv_entries(2, 8, 16, 16, 3, 1, 1, reps));
    } else {
        entries.extend(conv_entries(4, 8, 32, 32, 3, 1, 1, reps));
        entries.extend(conv_entries(1, 16, 32, 28, 5, 2, 2, reps));
    }

    entries.extend(quant_entries(reps + 2, quick));
    entries.push(hwcost_entry(reps, quick));
    entries.push(hwcache_hitstorm_entry(reps, quick));
    entries.push(mapping_search_entry(reps, quick));
    entries.push(serve_saturation_entry(quick));
    entries.push(serve_overload_entry(quick));

    entries.push(train_step_entry(
        "train_step",
        "bench-cnn-b32-3x32x32".into(),
        bench_cnn,
        reps,
    ));
    entries.push(int_train_step_entry(
        "bench-cnn-b32-3x32x32".into(),
        bench_cnn,
        reps,
    ));
    if !quick {
        for task in ProxyTask::ALL {
            entries.push(train_step_entry(
                "train_step",
                format!("proxy-{}", task.name()),
                move || {
                    let (model, train, _) = task.build(42);
                    (model, train.x, train.labels)
                },
                reps,
            ));
            entries.push(int_train_step_entry(
                format!("proxy-{}", task.name()),
                move || {
                    let (model, train, _) = task.build(42);
                    (model, train.x, train.labels)
                },
                reps,
            ));
        }
    }

    for e in &entries {
        eprintln!(
            "  {:<22} {:<24} naive {:>12} ns  fast {:>12} ns  {:>6.2}x",
            e.op,
            e.shape,
            e.ns_naive,
            e.ns_fast,
            e.speedup()
        );
    }

    std::fs::write(&out_path, render_json(&entries, quick)).expect("write report");
    eprintln!("wrote {out_path}");
    cq_obs::finish();

    if check {
        let reference = entries
            .iter()
            .find(|e| e.op == "gemm" && e.shape == format!("{rm}x{rk}x{rn}"))
            .expect("reference GEMM entry");
        if reference.speedup() < REFERENCE_MIN_SPEEDUP {
            eprintln!(
                "FAIL: Fast backend below {REFERENCE_MIN_SPEEDUP:.1}x over Naive on reference GEMM ({:.2}x)",
                reference.speedup()
            );
            std::process::exit(1);
        }
        eprintln!(
            "check passed: Fast {:.2}x Naive on reference GEMM (floor {REFERENCE_MIN_SPEEDUP:.1}x)",
            reference.speedup()
        );

        let int8 = entries
            .iter()
            .find(|e| e.op == "gemm_i8" && e.shape == format!("{rm}x{rk}x{rn}-serial"))
            .expect("reference gemm_i8 entry");
        if int8.speedup() < INT8_MIN_SPEEDUP {
            eprintln!(
                "FAIL: gemm_i8 below {INT8_MIN_SPEEDUP:.1}x over the f32 fast path on the reference shape ({:.2}x)",
                int8.speedup()
            );
            std::process::exit(1);
        }
        eprintln!(
            "check passed: gemm_i8 {:.2}x f32 fast path on reference shape (floor {INT8_MIN_SPEEDUP:.1}x)",
            int8.speedup()
        );

        if let Some(baseline) = &baseline {
            let mut failed = false;
            for e in entries.iter().filter(|e| is_gated(e)) {
                let Some((_, _, base)) = baseline
                    .iter()
                    .find(|(op, shape, _)| op == e.op && *shape == e.shape)
                else {
                    eprintln!("  note: no baseline for {} {}", e.op, e.shape);
                    continue;
                };
                let retain = if e.op.starts_with("train_step") {
                    TRAIN_STEP_RETAIN
                } else {
                    BASELINE_RETAIN
                };
                let floor = base * retain;
                if e.speedup() < floor {
                    eprintln!(
                        "FAIL: {} {} speedup {:.2}x below baseline floor {:.2}x (recorded {:.2}x)",
                        e.op,
                        e.shape,
                        e.speedup(),
                        floor,
                        base
                    );
                    failed = true;
                } else {
                    eprintln!(
                        "  gate ok: {} {} {:.2}x >= {:.2}x",
                        e.op,
                        e.shape,
                        e.speedup(),
                        floor
                    );
                }
            }
            if failed {
                std::process::exit(1);
            }
            eprintln!("check passed: gated entries within retention floors of baseline speedups");
        }
    }
}
