//! # cq-bench — Criterion benchmark harness
//!
//! Benches live under `benches/`, one file per subsystem:
//!
//! * `quantizers` — LDQ / layer-wise DQ / E²BQM throughput and block-size
//!   ablation (§III.A/B design choices);
//! * `simulators` — full per-benchmark simulations of Cambricon-Q, the
//!   TPU and GPU baselines (the kernels behind Figs. 12/13), plus the
//!   INT4 and no-NDP ablations;
//! * `components` — SQU, QBC, PE-array and DDR model microbenchmarks;
//! * `training` — quantized vs FP32 training steps and NDPO vs reference
//!   optimizer updates;
//! * `isa` — instruction encode/decode and functional-machine execution.
