//! Asserts the zero-overhead-when-off guarantee of cq-obs on a real
//! bench_perf kernel.
//!
//! With no sink (or the `NullSink`) installed, every probe is one
//! relaxed atomic load, so an instrumented kernel must run at the same
//! speed as an uninstrumented one. CI timing is noisy, so the bounds
//! here are deliberately generous — they catch "the disabled path
//! formats strings / reads clocks" regressions, not single-digit
//! percentage drift.

use cq_tensor::ops;
use cq_tensor::{init, Backend};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Serializes tests that touch the process-wide sink.
static GLOBAL: Mutex<()> = Mutex::new(());

/// Best-of-`reps` wall time of `f`, after one warmup call.
fn best_ns<F: FnMut()>(mut f: F, reps: usize) -> u64 {
    f();
    let mut best = u64::MAX;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_nanos() as u64);
    }
    best
}

/// The bench_perf --quick reference kernel, scaled down for a unit test.
fn quick_gemm() {
    let a = init::uniform(&[96, 96], -1.0, 1.0, 11);
    let b = init::uniform(&[96, 96], -1.0, 1.0, 13);
    let _ = ops::matmul_with(Backend::Fast, &a, &b).expect("gemm");
}

#[test]
fn null_sink_keeps_probes_disabled() {
    let _g = GLOBAL.lock().unwrap();
    cq_obs::install(Arc::new(cq_obs::NullSink));
    // The whole guarantee: installing the null sink does NOT enable the
    // emit path, so instrumented kernels skip every probe body.
    assert!(!cq_obs::enabled());
    quick_gemm();
    cq_obs::uninstall();
}

#[test]
fn disabled_probe_is_nanoseconds_not_microseconds() {
    let _g = GLOBAL.lock().unwrap();
    assert!(!cq_obs::enabled());
    const N: u64 = 1_000_000;
    let t = Instant::now();
    for i in 0..N {
        // Must not evaluate the name, read a clock, or allocate.
        let sp = cq_obs::span!("bench", "probe {i}");
        assert!(!sp.is_recording());
    }
    let per_probe_ns = t.elapsed().as_nanos() as f64 / N as f64;
    // A relaxed load plus branch is ~1 ns; clock reads or formatting
    // would push this to hundreds. 200 ns leaves huge CI headroom.
    assert!(
        per_probe_ns < 200.0,
        "disabled span probe costs {per_probe_ns:.1} ns — the off path is doing real work"
    );
}

#[test]
fn null_sink_adds_no_measurable_kernel_cost() {
    let _g = GLOBAL.lock().unwrap();
    let reps = 5;

    // Baseline: tracing fully off.
    assert!(!cq_obs::enabled());
    let off = best_ns(quick_gemm, reps);

    // Null sink installed: probes still disabled, same code path.
    cq_obs::install(Arc::new(cq_obs::NullSink));
    let null = best_ns(quick_gemm, reps);
    cq_obs::uninstall();

    // Generous 3x bound: a real regression (per-call formatting, clock
    // reads, lock contention) is orders of magnitude, not percent.
    assert!(
        null as f64 <= off as f64 * 3.0 + 1e6,
        "null-sink kernel {null} ns vs tracing-off {off} ns — null sink is not free"
    );
}
