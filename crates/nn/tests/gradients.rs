//! Property-based gradient checks: every layer's analytic backward pass
//! matches central finite differences on randomly shaped inputs.

use cq_nn::{BatchNorm1d, Dense, Layer, QuantCtx, Relu, Sigmoid, Tanh};
use cq_tensor::{init, Tensor};
use proptest::prelude::*;

/// Central-difference check of ∂(sum y)/∂x against the layer's backward.
fn check_input_grad(layer: &mut dyn Layer, x: &Tensor, tol: f32) -> Result<(), TestCaseError> {
    let ctx = QuantCtx::fp32();
    let y = layer.forward(x, &ctx).expect("forward");
    let gout = Tensor::ones(y.dims());
    let gin = layer.backward(&gout, &ctx).expect("backward");
    let eps = 1e-2;
    let mut x2 = x.clone();
    // Spot-check up to 6 coordinates spread across the tensor.
    let n = x.len();
    let step = (n / 6).max(1);
    for idx in (0..n).step_by(step) {
        let orig = x2.data()[idx];
        x2.data_mut()[idx] = orig + eps;
        let lp = layer.forward(&x2, &ctx).expect("forward").sum();
        x2.data_mut()[idx] = orig - eps;
        let lm = layer.forward(&x2, &ctx).expect("forward").sum();
        x2.data_mut()[idx] = orig;
        let fd = (lp - lm) / (2.0 * eps);
        prop_assert!(
            (fd - gin.data()[idx]).abs() <= tol,
            "idx {}: fd {} vs analytic {}",
            idx,
            fd,
            gin.data()[idx]
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn dense_input_gradients(b in 1usize..6, i in 1usize..10, o in 1usize..10, seed in 0u64..1000) {
        let mut layer = Dense::new("fc", i, o, seed);
        let x = init::normal(&[b, i], 0.0, 1.0, seed + 1);
        check_input_grad(&mut layer, &x, 0.05)?;
    }

    #[test]
    fn relu_gradients(b in 1usize..6, f in 1usize..16, seed in 0u64..1000) {
        let mut layer = Relu::new();
        // Keep values away from the kink at 0 (finite differences are
        // invalid exactly there).
        let x = init::normal(&[b, f], 0.0, 1.0, seed).map(|v| {
            if v.abs() < 0.05 { v + 0.1 } else { v }
        });
        check_input_grad(&mut layer, &x, 0.01)?;
    }

    #[test]
    fn sigmoid_gradients(b in 1usize..6, f in 1usize..16, seed in 0u64..1000) {
        let mut layer = Sigmoid::new();
        let x = init::normal(&[b, f], 0.0, 2.0, seed);
        check_input_grad(&mut layer, &x, 0.01)?;
    }

    #[test]
    fn tanh_gradients(b in 1usize..6, f in 1usize..16, seed in 0u64..1000) {
        let mut layer = Tanh::new();
        let x = init::normal(&[b, f], 0.0, 2.0, seed);
        check_input_grad(&mut layer, &x, 0.01)?;
    }

    #[test]
    fn batchnorm_gradients(b in 4usize..10, f in 1usize..6, seed in 0u64..1000) {
        let mut layer = BatchNorm1d::new(f);
        let x = init::normal(&[b, f], 1.0, 0.7, seed);
        // Batchnorm's sum-loss gradient is near zero by construction
        // (normalization is shift-invariant), so use a looser absolute
        // tolerance relative to the fp32 noise in finite differences.
        check_input_grad(&mut layer, &x, 0.08)?;
    }
}
