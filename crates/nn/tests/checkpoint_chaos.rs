//! Property-based chaos tests for the framed checkpoint codec: random
//! corruption (bit flips, truncation, version skew, garbage) must always
//! come back as a typed `NnError::Checkpoint` — never a panic, and never
//! silently loading wrong values.

use cq_nn::{checkpoint, Dense, NnError, QuantCtx, Relu, Sequential};
use cq_tensor::init;
use proptest::prelude::*;

fn model(seed: u64) -> Sequential {
    let mut m = Sequential::new();
    m.add(Dense::new("a", 5, 7, seed))
        .add(Relu::new())
        .add(Dense::new("b", 7, 4, seed + 1));
    m
}

/// Loads `blob` into a fresh model and classifies the outcome. The codec
/// contract: corruption yields `Err(NnError::Checkpoint)`; a (vanishingly
/// unlikely) CRC collision may load, but then the restored forward pass
/// must match the original model exactly.
fn assert_load_is_safe(blob: &[u8], reference: &mut Sequential) -> Result<(), TestCaseError> {
    let mut m = model(777);
    match checkpoint::load(&mut m, blob) {
        Err(NnError::Checkpoint(_)) => Ok(()),
        Err(other) => Err(TestCaseError::fail(format!(
            "corruption produced a non-checkpoint error: {other}"
        ))),
        Ok(()) => {
            let x = init::normal(&[3, 5], 0.0, 1.0, 11);
            let ctx = QuantCtx::fp32();
            let y_ref = reference.forward(&x, &ctx).expect("reference forward");
            let y = m.forward(&x, &ctx).expect("restored forward");
            prop_assert_eq!(y_ref, y, "corrupt blob loaded with different values");
            Ok(())
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bit_flips_are_rejected(seed in 0u64..500, nflips in 1usize..9, flip_seed in 0u64..u64::MAX) {
        let mut m = model(seed);
        let mut blob = checkpoint::save(&mut m);
        let mut s = flip_seed;
        for _ in 0..nflips {
            s = cq_resil::splitmix64(s);
            let pos = (s as usize) % blob.len();
            let bit = ((s >> 32) % 8) as u8;
            blob[pos] ^= 1 << bit;
        }
        assert_load_is_safe(&blob, &mut m)?;
    }

    #[test]
    fn truncation_is_rejected(seed in 0u64..500, cut_seed in 0u64..u64::MAX) {
        let mut m = model(seed);
        let mut blob = checkpoint::save(&mut m);
        let keep = (cq_resil::splitmix64(cut_seed) as usize) % blob.len();
        blob.truncate(keep);
        let mut fresh = model(777);
        prop_assert!(
            matches!(checkpoint::load(&mut fresh, &blob), Err(NnError::Checkpoint(_))),
            "truncated to {keep} bytes but load did not return a checkpoint error"
        );
    }

    #[test]
    fn trailing_garbage_is_rejected(seed in 0u64..500, extra in 1usize..64) {
        let mut m = model(seed);
        let mut blob = checkpoint::save(&mut m);
        blob.extend(std::iter::repeat_n(0xAB, extra));
        let mut fresh = model(777);
        prop_assert!(matches!(
            checkpoint::load(&mut fresh, &blob),
            Err(NnError::Checkpoint(_))
        ));
    }

    #[test]
    fn version_skew_is_rejected(seed in 0u64..500, version in 0u32..1000) {
        // Versions other than the current one must be refused up front.
        if version == 2 {
            return Ok(());
        }
        let mut m = model(seed);
        let mut blob = checkpoint::save(&mut m);
        blob[4..8].copy_from_slice(&version.to_le_bytes());
        let mut fresh = model(777);
        match checkpoint::load(&mut fresh, &blob) {
            Err(NnError::Checkpoint(msg)) => prop_assert!(
                msg.contains("version"),
                "skew to {version} rejected for the wrong reason: {msg}"
            ),
            other => return Err(TestCaseError::fail(format!(
                "version skew to {version} not rejected: {other:?}"
            ))),
        }
    }

    #[test]
    fn random_bytes_never_panic(len in 0usize..256, seed in 0u64..u64::MAX) {
        let mut s = seed;
        let blob: Vec<u8> = (0..len)
            .map(|_| {
                s = cq_resil::splitmix64(s);
                s as u8
            })
            .collect();
        let mut fresh = model(777);
        prop_assert!(checkpoint::load(&mut fresh, &blob).is_err());
    }

    #[test]
    fn uncorrupted_roundtrip_always_succeeds(seed in 0u64..500) {
        let mut m = model(seed);
        let blob = checkpoint::save(&mut m);
        let mut m2 = model(seed + 9999);
        checkpoint::load(&mut m2, &blob).expect("clean blob must load");
        let x = init::normal(&[2, 5], 0.0, 1.0, 3);
        let ctx = QuantCtx::fp32();
        prop_assert_eq!(
            m.forward(&x, &ctx).expect("fw"),
            m2.forward(&x, &ctx).expect("fw")
        );
    }
}
