//! Trainable parameters.

use cq_tensor::Tensor;

/// A trainable parameter: its FP32 master value and accumulated gradient.
///
/// Quantized training (paper §II.A) keeps master weights in full precision;
/// quantization happens on the *copies* used for compute, never on the
/// master value an optimizer updates.
///
/// # Examples
///
/// ```
/// use cq_nn::Param;
/// use cq_tensor::Tensor;
///
/// let mut p = Param::new(Tensor::ones(&[4]));
/// p.grad.data_mut()[0] = 0.5;
/// p.zero_grad();
/// assert_eq!(p.grad.data(), &[0.0, 0.0, 0.0, 0.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// FP32 master value.
    pub value: Tensor,
    /// Accumulated gradient (same shape as `value`).
    pub grad: Tensor,
}

impl Param {
    /// Creates a parameter with a zeroed gradient.
    pub fn new(value: Tensor) -> Self {
        let grad = Tensor::zeros(value.dims());
        Param { value, grad }
    }

    /// Number of scalar weights.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// Whether the parameter is empty.
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }

    /// Clears the accumulated gradient.
    pub fn zero_grad(&mut self) {
        self.grad.map_inplace(|_| 0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_param_has_zero_grad() {
        let p = Param::new(Tensor::ones(&[2, 3]));
        assert_eq!(p.grad.dims(), &[2, 3]);
        assert_eq!(p.grad.sum(), 0.0);
        assert_eq!(p.len(), 6);
        assert!(!p.is_empty());
    }

    #[test]
    fn zero_grad_resets() {
        let mut p = Param::new(Tensor::ones(&[2]));
        p.grad = Tensor::full(&[2], 3.0);
        p.zero_grad();
        assert_eq!(p.grad.sum(), 0.0);
    }
}
