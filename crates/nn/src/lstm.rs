//! LSTM layer with full backpropagation through time.
//!
//! Input layout is `[T, B, I]` (timestep-major so each step is contiguous);
//! the layer outputs the final hidden state `[B, H]` for sequence
//! classification / regression heads. This is the recurrent workload of the
//! paper's PTB-LSTM benchmark, scaled down for the accuracy experiments.

use crate::error::NnError;
use crate::layers::{Layer, QuantCtx};
use crate::param::Param;
use cq_tensor::ops;
use cq_tensor::{init, Backend, Tensor};

fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

#[derive(Debug, Clone)]
struct StepCache {
    xq: Tensor,     // [B, I] quantized input
    h_prev: Tensor, // [B, H]
    c_prev: Tensor, // [B, H]
    gates: Tensor,  // [B, 4H] post-activation (i, f, g, o)
    c: Tensor,      // [B, H]
}

/// A single-layer LSTM processing `[T, B, I] → [B, H]`.
#[derive(Debug)]
pub struct Lstm {
    name: String,
    hidden: usize,
    wx: Param,   // [I, 4H]
    wh: Param,   // [H, 4H]
    bias: Param, // [4H]
    cache: Option<Vec<StepCache>>,
    cached_wxq: Option<Tensor>,
    cached_whq: Option<Tensor>,
}

impl Lstm {
    /// Creates an LSTM with Xavier-initialized weights and forget-gate bias
    /// of 1.0 (standard trick for trainability).
    pub fn new(name: impl Into<String>, input: usize, hidden: usize, seed: u64) -> Self {
        let mut bias = Tensor::zeros(&[4 * hidden]);
        for j in hidden..2 * hidden {
            bias.data_mut()[j] = 1.0;
        }
        Lstm {
            name: name.into(),
            hidden,
            wx: Param::new(init::xavier_uniform(
                &[input, 4 * hidden],
                input,
                hidden,
                seed,
            )),
            wh: Param::new(init::xavier_uniform(
                &[hidden, 4 * hidden],
                hidden,
                hidden,
                seed.wrapping_add(1),
            )),
            bias: Param::new(bias),
            cache: None,
            cached_wxq: None,
            cached_whq: None,
        }
    }

    /// Hidden-state size.
    pub fn hidden_size(&self) -> usize {
        self.hidden
    }

    #[allow(clippy::too_many_arguments)]
    fn step(
        &self,
        xq: &Tensor,
        zx: &Tensor,
        h_prev: &Tensor,
        c_prev: &Tensor,
        whq: &Tensor,
        backend: Backend,
    ) -> Result<StepCache, NnError> {
        let h = self.hidden;
        let b = xq.dims()[0];
        // `zx` is this step's row block of the batched input projection
        // (see `forward`); only the recurrent matmul runs per step.
        let mut z = zx.clone();
        let zh = ops::matmul_with(backend, h_prev, whq)?;
        z.add_scaled(&zh, 1.0)?;
        let bias = self.bias.value.data();
        let mut gates = Tensor::zeros(&[b, 4 * h]);
        let mut c = Tensor::zeros(&[b, h]);
        for bi in 0..b {
            for j in 0..h {
                let zi = z.data()[bi * 4 * h + j] + bias[j];
                let zf = z.data()[bi * 4 * h + h + j] + bias[h + j];
                let zg = z.data()[bi * 4 * h + 2 * h + j] + bias[2 * h + j];
                let zo = z.data()[bi * 4 * h + 3 * h + j] + bias[3 * h + j];
                let (i_g, f_g, g_g, o_g) = (sigmoid(zi), sigmoid(zf), zg.tanh(), sigmoid(zo));
                gates.data_mut()[bi * 4 * h + j] = i_g;
                gates.data_mut()[bi * 4 * h + h + j] = f_g;
                gates.data_mut()[bi * 4 * h + 2 * h + j] = g_g;
                gates.data_mut()[bi * 4 * h + 3 * h + j] = o_g;
                c.data_mut()[bi * h + j] = f_g * c_prev.data()[bi * h + j] + i_g * g_g;
            }
        }
        Ok(StepCache {
            xq: xq.clone(),
            h_prev: h_prev.clone(),
            c_prev: c_prev.clone(),
            gates,
            c,
        })
    }

    fn hidden_of(cache: &StepCache, hidden: usize) -> Tensor {
        let b = cache.c.dims()[0];
        let mut h_t = Tensor::zeros(&[b, hidden]);
        for bi in 0..b {
            for j in 0..hidden {
                let o_g = cache.gates.data()[bi * 4 * hidden + 3 * hidden + j];
                h_t.data_mut()[bi * hidden + j] = o_g * cache.c.data()[bi * hidden + j].tanh();
            }
        }
        h_t
    }
}

impl Layer for Lstm {
    fn forward(&mut self, x: &Tensor, ctx: &QuantCtx) -> Result<Tensor, NnError> {
        if x.rank() != 3 {
            return Err(NnError::InvalidConfig(format!(
                "LSTM expects [T, B, I], got {:?}",
                x.dims()
            )));
        }
        let (t, b, i) = (x.dims()[0], x.dims()[1], x.dims()[2]);
        let wxq = ctx.q(&self.wx.value);
        let whq = ctx.q(&self.wh.value);
        // Quantize each timestep exactly as before (per-step quantization
        // parameters are part of the numerics), then run the input
        // projection for *all* timesteps as one [T·B, I] × [I, 4H] GEMM:
        // each row's reduction is unchanged, so every z value matches the
        // per-step matmuls on both backends — while the packed GEMM sees
        // one tall matrix instead of T thin ones.
        let mut xq_steps = Vec::with_capacity(t);
        let mut xq_all = Tensor::zeros(&[t * b, i]);
        for ti in 0..t {
            let xt = x.slice_flat(ti * b * i, b * i)?.reshape(&[b, i])?;
            let xq = ctx.q(&xt);
            xq_all.data_mut()[ti * b * i..(ti + 1) * b * i].copy_from_slice(xq.data());
            xq_steps.push(xq);
        }
        let zx_all = ops::matmul_with(ctx.backend, &xq_all, &wxq)?; // [T·B, 4H]
        let mut h = Tensor::zeros(&[b, self.hidden]);
        let mut c = Tensor::zeros(&[b, self.hidden]);
        let mut caches = Vec::with_capacity(t);
        for ti in 0..t {
            let zx_t = zx_all
                .slice_flat(ti * b * 4 * self.hidden, b * 4 * self.hidden)?
                .reshape(&[b, 4 * self.hidden])?;
            let cache = self.step(&xq_steps[ti], &zx_t, &h, &c, &whq, ctx.backend)?;
            h = Self::hidden_of(&cache, self.hidden);
            c = cache.c.clone();
            caches.push(cache);
        }
        self.cache = Some(caches);
        self.cached_wxq = Some(wxq);
        self.cached_whq = Some(whq);
        Ok(h)
    }

    fn backward(&mut self, grad_out: &Tensor, ctx: &QuantCtx) -> Result<Tensor, NnError> {
        let caches = self.cache.as_ref().ok_or(NnError::NoForwardCache {
            layer: self.name.clone(),
        })?;
        let wxq = self.cached_wxq.as_ref().expect("cached");
        let whq = self.cached_whq.as_ref().expect("cached");
        let h = self.hidden;
        let t = caches.len();
        let b = grad_out.dims()[0];
        let i_dim = self.wx.value.dims()[0];
        let mut dh = ctx.q(grad_out);
        let mut dc = Tensor::zeros(&[b, h]);
        let mut dz_all = Tensor::zeros(&[t * b, 4 * h]);
        for ti in (0..t).rev() {
            let cache = &caches[ti];
            let mut dz = Tensor::zeros(&[b, 4 * h]);
            for bi in 0..b {
                for j in 0..h {
                    let i_g = cache.gates.data()[bi * 4 * h + j];
                    let f_g = cache.gates.data()[bi * 4 * h + h + j];
                    let g_g = cache.gates.data()[bi * 4 * h + 2 * h + j];
                    let o_g = cache.gates.data()[bi * 4 * h + 3 * h + j];
                    let c_t = cache.c.data()[bi * h + j];
                    let tanh_c = c_t.tanh();
                    let dh_ij = dh.data()[bi * h + j];
                    let mut dc_ij = dc.data()[bi * h + j] + dh_ij * o_g * (1.0 - tanh_c * tanh_c);
                    let do_ = dh_ij * tanh_c;
                    let di = dc_ij * g_g;
                    let df = dc_ij * cache.c_prev.data()[bi * h + j];
                    let dg = dc_ij * i_g;
                    dc_ij *= f_g;
                    dc.data_mut()[bi * h + j] = dc_ij;
                    dz.data_mut()[bi * 4 * h + j] = di * i_g * (1.0 - i_g);
                    dz.data_mut()[bi * 4 * h + h + j] = df * f_g * (1.0 - f_g);
                    dz.data_mut()[bi * 4 * h + 2 * h + j] = dg * (1.0 - g_g * g_g);
                    dz.data_mut()[bi * 4 * h + 3 * h + j] = do_ * o_g * (1.0 - o_g);
                }
            }
            // Weight gradients (full precision, accumulated).
            self.wx
                .grad
                .add_scaled(&ops::matmul_at_with(ctx.backend, &cache.xq, &dz)?, 1.0)?;
            self.wh
                .grad
                .add_scaled(&ops::matmul_at_with(ctx.backend, &cache.h_prev, &dz)?, 1.0)?;
            for bi in 0..b {
                for j in 0..4 * h {
                    self.bias.grad.data_mut()[j] += dz.data()[bi * 4 * h + j];
                }
            }
            // Recurrent gradient feeds the next (earlier) step; the input
            // gradient is deferred to one batched GEMM below.
            dz_all.data_mut()[ti * b * 4 * h..(ti + 1) * b * 4 * h].copy_from_slice(dz.data());
            dh = ops::matmul_bt_with(ctx.backend, &dz, whq)?;
        }
        // Batched input gradient: one [T·B, 4H] × [I, 4H]ᵀ GEMM whose row
        // reductions are identical to the per-step matmul_bt calls.
        let dx_flat = ops::matmul_bt_with(ctx.backend, &dz_all, wxq)?;
        Ok(dx_flat.reshape(&[t, b, i_dim])?)
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.wx, &mut self.wh, &mut self.bias]
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shapes() {
        let ctx = QuantCtx::fp32();
        let mut l = Lstm::new("lstm", 5, 7, 1);
        let x = init::normal(&[3, 2, 5], 0.0, 1.0, 2);
        let h = l.forward(&x, &ctx).unwrap();
        assert_eq!(h.dims(), &[2, 7]);
        assert_eq!(l.hidden_size(), 7);
    }

    #[test]
    fn rejects_bad_rank() {
        let ctx = QuantCtx::fp32();
        let mut l = Lstm::new("lstm", 5, 7, 1);
        assert!(l.forward(&Tensor::zeros(&[2, 5]), &ctx).is_err());
    }

    #[test]
    fn gradients_match_finite_difference() {
        let ctx = QuantCtx::fp32();
        let mut l = Lstm::new("lstm", 3, 4, 5);
        let x = init::normal(&[3, 2, 3], 0.0, 0.5, 6);
        let h = l.forward(&x, &ctx).unwrap();
        let gout = Tensor::ones(h.dims());
        let gin = l.backward(&gout, &ctx).unwrap();
        assert_eq!(gin.dims(), x.dims());
        let eps = 1e-2;
        // Check a few input coordinates (loss = sum of final hidden).
        let mut x2 = x.clone();
        for idx in [0usize, 7, 17] {
            let orig = x2.data()[idx];
            x2.data_mut()[idx] = orig + eps;
            let lp = l.forward(&x2, &ctx).unwrap().sum();
            x2.data_mut()[idx] = orig - eps;
            let lm = l.forward(&x2, &ctx).unwrap().sum();
            x2.data_mut()[idx] = orig;
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - gin.data()[idx]).abs() < 0.02,
                "idx {idx}: fd {fd} analytic {}",
                gin.data()[idx]
            );
        }
        // Check weight gradient coordinates.
        let _ = l.forward(&x, &ctx).unwrap();
        for p in 0..2 {
            let orig = l.params_mut()[p].value.data()[0];
            let before = {
                // re-run backward to get a fresh grad
                let mut l2 = Lstm::new("lstm", 3, 4, 5);
                let _ = l2.forward(&x, &ctx).unwrap();
                let _ = l2.backward(&gout, &ctx).unwrap();
                l2.params_mut()[p].grad.data()[0]
            };
            l.params_mut()[p].value.data_mut()[0] = orig + eps;
            let lp = l.forward(&x, &ctx).unwrap().sum();
            l.params_mut()[p].value.data_mut()[0] = orig - eps;
            let lm = l.forward(&x, &ctx).unwrap().sum();
            l.params_mut()[p].value.data_mut()[0] = orig;
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - before).abs() < 0.05,
                "param {p}: fd {fd} analytic {before}"
            );
        }
    }

    #[test]
    fn backward_without_forward_errors() {
        let ctx = QuantCtx::fp32();
        let mut l = Lstm::new("lstm", 3, 4, 5);
        assert!(l.backward(&Tensor::ones(&[2, 4]), &ctx).is_err());
    }

    #[test]
    fn forget_bias_initialized_to_one() {
        let mut l = Lstm::new("lstm", 3, 4, 5);
        let bias = &l.params_mut()[2].value;
        assert_eq!(bias.data()[4], 1.0); // forget gate range [H, 2H)
        assert_eq!(bias.data()[0], 0.0);
    }
}
