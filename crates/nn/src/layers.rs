//! Network layers with quantization-aware forward/backward passes.
//!
//! Every layer receives a [`QuantCtx`]; the context's
//! [`TrainingQuantizer`] is applied to the activations, weights and
//! gradients *used for compute*, while FP32 master weights and weight
//! gradients stay full precision — exactly the dataflow of Fig. 7 in the
//! paper (quantized FW/NG/WG, full-precision ΔW and weight update).

use crate::error::NnError;
use crate::intpath::{env_quant_path, IntPathStats, QuantPath};
use crate::param::Param;
use cq_par::conv::{conv2d_i8, ConvShape};
use cq_par::{gemm_i8, Pool};
use cq_quant::{IntDomainQuantizer, IntDomainScratch, QuantScratch, TrainingQuantizer};
use cq_tensor::ops::{self, Conv2dParams};
use cq_tensor::{init, Backend, Tensor};
use std::fmt;
use std::sync::{Arc, Mutex, PoisonError};

/// Reusable state for the integer-domain forward path: the ladder
/// quantizer plus every buffer the i8 pipeline touches, so steady-state
/// steps quantize and accumulate without allocating.
#[derive(Debug)]
struct IntState {
    quantizer: IntDomainQuantizer,
    scratch: IntDomainScratch,
    xcodes: Vec<i8>,
    wcodes: Vec<i8>,
    acc: Vec<i32>,
}

impl IntState {
    fn new() -> Self {
        IntState {
            // Same 4-way INT8 ladder as the E²BQM hardware default, so the
            // int path quantizes with the arbiter the f32 fast path uses.
            quantizer: IntDomainQuantizer::hardware_default(),
            scratch: IntDomainScratch::new(),
            xcodes: Vec::new(),
            wcodes: Vec::new(),
            acc: Vec::new(),
        }
    }
}

/// Quantization context threaded through forward and backward passes.
#[derive(Debug)]
pub struct QuantCtx {
    /// The quantizer applied to compute operands (activations, weights,
    /// gradients). [`TrainingQuantizer::fp32`] makes every transform the
    /// identity.
    pub quantizer: TrainingQuantizer,
    /// The compute backend every dense kernel in the pass runs on.
    /// Defaults to the process-wide [`cq_tensor::default_backend`].
    pub backend: Backend,
    /// Arithmetic domain for quantized layer forwards. [`QuantPath::Int8`]
    /// routes [`Dense`]/[`Conv2d`] forwards through i8×i8→i32 kernels with
    /// a single output rescale; layers whose scales fall off the
    /// power-of-two ladder fall back to the f32 path for that pass.
    /// Defaults to the validated `CQ_QUANT_PATH` environment knob.
    pub path: QuantPath,
    /// Scratch arena threaded through every fast-path quantization this
    /// context performs, so steady-state training steps reuse candidate
    /// buffers instead of reallocating them per layer per step.
    scratch: Arc<Mutex<QuantScratch>>,
    /// Integer-path quantizer + code/accumulator buffers (same reuse
    /// rationale as `scratch`).
    int_state: Arc<Mutex<IntState>>,
    /// Integer-path hit/fallback counters, shared across clones so a
    /// training run reports one aggregate ladder hit rate.
    stats: Arc<IntPathStats>,
}

impl QuantCtx {
    /// Full-precision context (no quantization anywhere). Always runs the
    /// f32 path regardless of `CQ_QUANT_PATH` — an identity quantizer has
    /// no codes to feed an integer kernel.
    pub fn fp32() -> Self {
        let mut ctx = QuantCtx::new(TrainingQuantizer::fp32());
        ctx.path = QuantPath::Fp32;
        ctx
    }

    /// Context with the given training quantizer. The forward path
    /// defaults to the process-wide `CQ_QUANT_PATH` knob (validated, see
    /// [`crate::intpath`]).
    pub fn new(quantizer: TrainingQuantizer) -> Self {
        QuantCtx {
            quantizer,
            backend: cq_tensor::default_backend(),
            path: env_quant_path(),
            scratch: Arc::new(Mutex::new(QuantScratch::new())),
            int_state: Arc::new(Mutex::new(IntState::new())),
            stats: Arc::new(IntPathStats::new()),
        }
    }

    /// Returns the context pinned to an explicit compute backend.
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Returns the context pinned to an explicit forward path,
    /// overriding the `CQ_QUANT_PATH` default.
    pub fn with_path(mut self, path: QuantPath) -> Self {
        self.path = path;
        self
    }

    /// Integer-path hit/fallback counters (shared across clones).
    pub fn int_stats(&self) -> Arc<IntPathStats> {
        Arc::clone(&self.stats)
    }

    /// Quantize-dequantizes a tensor for compute.
    pub fn q(&self, x: &Tensor) -> Tensor {
        match self.backend {
            Backend::Naive => self.quantizer.fake_quantize_naive(x),
            Backend::Fast => {
                let mut out = Vec::with_capacity(x.len());
                self.fill_quantized(x, &mut out);
                Tensor::from_vec(out, x.dims()).expect("shape preserved by construction")
            }
        }
    }

    /// Quantize-dequantizes `x` into a reusable slot, recycling the slot's
    /// previous allocation. Layers with cached quantized operands (e.g.
    /// [`Dense`]'s `cached_xq`/`cached_wq`) call this every step; after the
    /// first step the buffers are warm and the fast path allocates nothing.
    pub fn q_into(&self, x: &Tensor, slot: &mut Option<Tensor>) {
        match self.backend {
            Backend::Naive => *slot = Some(self.quantizer.fake_quantize_naive(x)),
            Backend::Fast => {
                let mut buf = slot.take().map(Tensor::into_vec).unwrap_or_default();
                self.fill_quantized(x, &mut buf);
                *slot = Some(Tensor::from_vec(buf, x.dims()).expect("shape preserved"));
            }
        }
    }

    /// Fast-path worker: runs `fake_quantize_into` under the shared
    /// scratch arena.
    fn fill_quantized(&self, x: &Tensor, out: &mut Vec<f32>) {
        let mut scratch = self
            .scratch
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        self.quantizer.fake_quantize_into(x, out, &mut scratch);
    }

    /// Refills a cached-operand slot with `codes[i]·scale`, recycling the
    /// slot's buffer. The int path caches *dequantized* codes so the
    /// existing f32 backward consumes exactly the operands the integer
    /// GEMM multiplied.
    fn fill_dequant(slot: &mut Option<Tensor>, codes: &[i8], scale: f32, dims: &[usize]) {
        let mut buf = slot.take().map(Tensor::into_vec).unwrap_or_default();
        buf.clear();
        buf.extend(codes.iter().map(|&c| f32::from(c) * scale));
        *slot = Some(Tensor::from_vec(buf, dims).expect("shape preserved"));
    }

    /// Integer-domain dense forward: quantize `x` and `w` once to i8
    /// codes, multiply in i8×i8→i32, rescale once by `s_x·s_w` and add the
    /// bias. Returns `None` (without touching the caches) when either
    /// operand falls off the power-of-two ladder or the shapes don't
    /// describe a matmul — the caller falls back to the f32 path.
    fn int_dense_forward(
        &self,
        x: &Tensor,
        w: &Tensor,
        bias: &[f32],
        cached_xq: &mut Option<Tensor>,
        cached_wq: &mut Option<Tensor>,
    ) -> Option<Tensor> {
        if x.dims().len() != 2 || w.dims().len() != 2 || x.dims()[1] != w.dims()[0] {
            return None; // let the f32 path report the shape error
        }
        let (b, in_f, out_f) = (x.dims()[0], x.dims()[1], w.dims()[1]);
        let mut st = self
            .int_state
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let st = &mut *st;
        let sx = st
            .quantizer
            .quantize_into(x.data(), &mut st.xcodes, &mut st.scratch)?;
        let sw = st
            .quantizer
            .quantize_into(w.data(), &mut st.wcodes, &mut st.scratch)?;
        // Size only — gemm_i8 overwrites every element, so the steady-state
        // call (same shape as last step) skips the full rezeroing pass.
        st.acc.resize(b * out_f, 0);
        gemm_i8(
            b,
            in_f,
            out_f,
            &st.xcodes,
            &st.wcodes,
            &mut st.acc,
            Pool::global(),
        );
        let s = sx.scale * sw.scale;
        let mut y = Vec::with_capacity(b * out_f);
        for i in 0..b {
            for j in 0..out_f {
                y.push(st.acc[i * out_f + j] as f32 * s + bias[j]);
            }
        }
        Self::fill_dequant(cached_xq, &st.xcodes, sx.scale, x.dims());
        Self::fill_dequant(cached_wq, &st.wcodes, sw.scale, w.dims());
        Some(Tensor::from_vec(y, &[b, out_f]).expect("shape by construction"))
    }

    /// Integer-domain convolution forward: same pipeline as
    /// [`Self::int_dense_forward`] with the MAC lowered through
    /// `conv2d_i8` (shared im2col with the f32 path).
    fn int_conv_forward(
        &self,
        x: &Tensor,
        w: &Tensor,
        params: Conv2dParams,
        cached_xq: &mut Option<Tensor>,
        cached_wq: &mut Option<Tensor>,
    ) -> Option<Tensor> {
        if x.dims().len() != 4 || w.dims().len() != 4 || x.dims()[1] != w.dims()[1] {
            return None; // let the f32 path report the shape error
        }
        let (n, c, h, wd) = (x.dims()[0], x.dims()[1], x.dims()[2], x.dims()[3]);
        let (f, kh, kw) = (w.dims()[0], w.dims()[2], w.dims()[3]);
        let shape = ConvShape {
            n,
            c,
            h,
            w: wd,
            f,
            kh,
            kw,
            stride: params.stride,
            padding: params.padding,
            oh: params.output_dim(h, kh),
            ow: params.output_dim(wd, kw),
        };
        let mut st = self
            .int_state
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let st = &mut *st;
        let sx = st
            .quantizer
            .quantize_into(x.data(), &mut st.xcodes, &mut st.scratch)?;
        let sw = st
            .quantizer
            .quantize_into(w.data(), &mut st.wcodes, &mut st.scratch)?;
        // Size only — conv2d_i8 overwrites every element (see dense above).
        st.acc.resize(n * shape.out_len(), 0);
        conv2d_i8(&shape, &st.xcodes, &st.wcodes, &mut st.acc, Pool::global());
        let s = sx.scale * sw.scale;
        let y: Vec<f32> = st.acc.iter().map(|&a| a as f32 * s).collect();
        Self::fill_dequant(cached_xq, &st.xcodes, sx.scale, x.dims());
        Self::fill_dequant(cached_wq, &st.wcodes, sw.scale, w.dims());
        Some(Tensor::from_vec(y, &[n, f, shape.oh, shape.ow]).expect("shape by construction"))
    }
}

impl Clone for QuantCtx {
    /// Clones get a fresh scratch arena (not a handle to the same one), so
    /// contexts cloned into worker threads never contend on a lock. The
    /// int-path *stats* stay shared — a run reports one hit rate.
    fn clone(&self) -> Self {
        QuantCtx {
            quantizer: self.quantizer.clone(),
            backend: self.backend,
            path: self.path,
            scratch: Arc::new(Mutex::new(QuantScratch::new())),
            int_state: Arc::new(Mutex::new(IntState::new())),
            stats: Arc::clone(&self.stats),
        }
    }
}

impl PartialEq for QuantCtx {
    /// Scratch contents are a cache, not part of the context's identity.
    fn eq(&self, other: &Self) -> bool {
        self.quantizer == other.quantizer
            && self.backend == other.backend
            && self.path == other.path
    }
}

impl Default for QuantCtx {
    fn default() -> Self {
        QuantCtx::fp32()
    }
}

/// A differentiable network layer.
///
/// `backward` must be called after `forward` on the same input batch; it
/// accumulates weight gradients internally and returns the gradient with
/// respect to the layer input.
pub trait Layer: fmt::Debug {
    /// Forward pass.
    ///
    /// # Errors
    ///
    /// Returns [`NnError`] if `x` has the wrong shape.
    fn forward(&mut self, x: &Tensor, ctx: &QuantCtx) -> Result<Tensor, NnError>;

    /// Backward pass: consumes ∂L/∂output, returns ∂L/∂input.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::NoForwardCache`] if called before `forward`.
    fn backward(&mut self, grad_out: &Tensor, ctx: &QuantCtx) -> Result<Tensor, NnError>;

    /// The layer's trainable parameters (empty for activations/pooling).
    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }

    /// Layer name for diagnostics.
    fn name(&self) -> &str;
}

/// Fully-connected layer: `y = x·W + b` (`x: [B, in]`, `W: [in, out]`).
#[derive(Debug)]
pub struct Dense {
    name: String,
    weight: Param,
    bias: Param,
    cached_xq: Option<Tensor>,
    cached_wq: Option<Tensor>,
}

impl Dense {
    /// Creates a dense layer with Xavier-uniform weights.
    pub fn new(name: impl Into<String>, in_f: usize, out_f: usize, seed: u64) -> Self {
        Dense {
            name: name.into(),
            weight: Param::new(init::xavier_uniform(&[in_f, out_f], in_f, out_f, seed)),
            bias: Param::new(Tensor::zeros(&[out_f])),
            cached_xq: None,
            cached_wq: None,
        }
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.weight.value.dims()[0]
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.weight.value.dims()[1]
    }
}

impl Layer for Dense {
    fn forward(&mut self, x: &Tensor, ctx: &QuantCtx) -> Result<Tensor, NnError> {
        if ctx.path == QuantPath::Int8 {
            if let Some(y) = ctx.int_dense_forward(
                x,
                &self.weight.value,
                self.bias.value.data(),
                &mut self.cached_xq,
                &mut self.cached_wq,
            ) {
                ctx.stats.record_hit();
                return Ok(y);
            }
            ctx.stats.record_fallback();
        }
        // Quantize straight into the cached slots: steady-state steps reuse
        // the previous step's buffers instead of allocating fresh tensors.
        ctx.q_into(x, &mut self.cached_xq);
        ctx.q_into(&self.weight.value, &mut self.cached_wq);
        let xq = self.cached_xq.as_ref().expect("just filled");
        let wq = self.cached_wq.as_ref().expect("just filled");
        let mut y = ops::matmul_with(ctx.backend, xq, wq)?;
        // Bias add in full precision (SFU path).
        let (b, out_f) = (y.dims()[0], y.dims()[1]);
        let bias = self.bias.value.data();
        for i in 0..b {
            for j in 0..out_f {
                y.data_mut()[i * out_f + j] += bias[j];
            }
        }
        Ok(y)
    }

    fn backward(&mut self, grad_out: &Tensor, ctx: &QuantCtx) -> Result<Tensor, NnError> {
        let xq = self.cached_xq.as_ref().ok_or(NnError::NoForwardCache {
            layer: self.name.clone(),
        })?;
        let wq = self.cached_wq.as_ref().expect("cached with xq");
        let gq = ctx.q(grad_out);
        // ΔW = xqᵀ·gq — full-precision result (paper: WG writes back FP32).
        let gw = ops::matmul_at_with(ctx.backend, xq, &gq)?;
        self.weight.grad.add_scaled(&gw, 1.0)?;
        // Δb = column sums of g.
        let (b, out_f) = (gq.dims()[0], gq.dims()[1]);
        for i in 0..b {
            for j in 0..out_f {
                self.bias.grad.data_mut()[j] += gq.data()[i * out_f + j];
            }
        }
        // δ_in = gq·Wᵀ.
        Ok(ops::matmul_bt_with(ctx.backend, &gq, wq)?)
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// 2-D convolution layer (`x: [B, C, H, W]`, weights `[F, C, K, K]`).
#[derive(Debug)]
pub struct Conv2d {
    name: String,
    weight: Param,
    params: Conv2dParams,
    cached_xq: Option<Tensor>,
    cached_wq: Option<Tensor>,
}

impl Conv2d {
    /// Creates a convolution with Kaiming-normal weights.
    pub fn new(
        name: impl Into<String>,
        in_c: usize,
        out_c: usize,
        k: usize,
        stride: usize,
        padding: usize,
        seed: u64,
    ) -> Self {
        let fan_in = in_c * k * k;
        Conv2d {
            name: name.into(),
            weight: Param::new(init::kaiming_normal(&[out_c, in_c, k, k], fan_in, seed)),
            params: Conv2dParams::new(stride, padding),
            cached_xq: None,
            cached_wq: None,
        }
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, x: &Tensor, ctx: &QuantCtx) -> Result<Tensor, NnError> {
        if ctx.path == QuantPath::Int8 {
            if let Some(y) = ctx.int_conv_forward(
                x,
                &self.weight.value,
                self.params,
                &mut self.cached_xq,
                &mut self.cached_wq,
            ) {
                ctx.stats.record_hit();
                return Ok(y);
            }
            ctx.stats.record_fallback();
        }
        ctx.q_into(x, &mut self.cached_xq);
        ctx.q_into(&self.weight.value, &mut self.cached_wq);
        let xq = self.cached_xq.as_ref().expect("just filled");
        let wq = self.cached_wq.as_ref().expect("just filled");
        Ok(ops::conv2d_with(ctx.backend, xq, wq, self.params)?)
    }

    fn backward(&mut self, grad_out: &Tensor, ctx: &QuantCtx) -> Result<Tensor, NnError> {
        let xq = self.cached_xq.as_ref().ok_or(NnError::NoForwardCache {
            layer: self.name.clone(),
        })?;
        let wq = self.cached_wq.as_ref().expect("cached with xq");
        let gq = ctx.q(grad_out);
        let gw = ops::conv2d_grad_weight_with(
            ctx.backend,
            xq,
            &gq,
            self.weight.value.dims(),
            self.params,
        )?;
        self.weight.grad.add_scaled(&gw, 1.0)?;
        Ok(ops::conv2d_grad_input_with(
            ctx.backend,
            &gq,
            wq,
            xq.dims(),
            self.params,
        )?)
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight]
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// ReLU activation.
#[derive(Debug, Default)]
pub struct Relu {
    mask: Option<Vec<bool>>,
}

impl Relu {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        Relu::default()
    }
}

impl Layer for Relu {
    fn forward(&mut self, x: &Tensor, _ctx: &QuantCtx) -> Result<Tensor, NnError> {
        self.mask = Some(x.data().iter().map(|&v| v > 0.0).collect());
        Ok(x.map(|v| v.max(0.0)))
    }

    fn backward(&mut self, grad_out: &Tensor, _ctx: &QuantCtx) -> Result<Tensor, NnError> {
        let mask = self.mask.as_ref().ok_or(NnError::NoForwardCache {
            layer: "relu".into(),
        })?;
        let mut g = grad_out.clone();
        for (v, &keep) in g.data_mut().iter_mut().zip(mask) {
            if !keep {
                *v = 0.0;
            }
        }
        Ok(g)
    }

    fn name(&self) -> &str {
        "relu"
    }
}

/// Non-overlapping 2-D max pooling with window `k`.
#[derive(Debug)]
pub struct MaxPool2d {
    k: usize,
    cache: Option<(Vec<usize>, Vec<usize>)>, // (argmax, input dims)
}

impl MaxPool2d {
    /// Creates a max-pool layer with window and stride `k`.
    pub fn new(k: usize) -> Self {
        MaxPool2d { k, cache: None }
    }
}

impl Layer for MaxPool2d {
    fn forward(&mut self, x: &Tensor, _ctx: &QuantCtx) -> Result<Tensor, NnError> {
        let out = ops::maxpool2d(x, self.k)?;
        self.cache = Some((out.argmax, x.dims().to_vec()));
        Ok(out.output)
    }

    fn backward(&mut self, grad_out: &Tensor, _ctx: &QuantCtx) -> Result<Tensor, NnError> {
        let (argmax, dims) = self.cache.as_ref().ok_or(NnError::NoForwardCache {
            layer: "maxpool".into(),
        })?;
        Ok(ops::maxpool2d_backward(grad_out, argmax, dims)?)
    }

    fn name(&self) -> &str {
        "maxpool2d"
    }
}

/// Flattens `[B, ...]` to `[B, features]`.
#[derive(Debug, Default)]
pub struct Flatten {
    dims: Option<Vec<usize>>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Flatten::default()
    }
}

impl Layer for Flatten {
    fn forward(&mut self, x: &Tensor, _ctx: &QuantCtx) -> Result<Tensor, NnError> {
        let b = x.dims()[0];
        let features = x.len() / b.max(1);
        self.dims = Some(x.dims().to_vec());
        Ok(x.reshape(&[b, features])?)
    }

    fn backward(&mut self, grad_out: &Tensor, _ctx: &QuantCtx) -> Result<Tensor, NnError> {
        let dims = self.dims.as_ref().ok_or(NnError::NoForwardCache {
            layer: "flatten".into(),
        })?;
        Ok(grad_out.reshape(dims)?)
    }

    fn name(&self) -> &str {
        "flatten"
    }
}

/// Global average pooling `[B, C, H, W] → [B, C]`.
#[derive(Debug, Default)]
pub struct GlobalAvgPool {
    dims: Option<Vec<usize>>,
}

impl GlobalAvgPool {
    /// Creates a global-average-pool layer.
    pub fn new() -> Self {
        GlobalAvgPool::default()
    }
}

impl Layer for GlobalAvgPool {
    fn forward(&mut self, x: &Tensor, _ctx: &QuantCtx) -> Result<Tensor, NnError> {
        self.dims = Some(x.dims().to_vec());
        Ok(ops::global_avgpool(x)?)
    }

    fn backward(&mut self, grad_out: &Tensor, _ctx: &QuantCtx) -> Result<Tensor, NnError> {
        let dims = self.dims.as_ref().ok_or(NnError::NoForwardCache {
            layer: "gap".into(),
        })?;
        Ok(ops::global_avgpool_backward(grad_out, dims)?)
    }

    fn name(&self) -> &str {
        "global_avgpool"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_forward_known() {
        let mut d = Dense::new("fc", 2, 2, 1);
        d.params_mut()[0].value = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]).unwrap();
        let x = Tensor::from_vec(vec![3.0, 4.0], &[1, 2]).unwrap();
        let y = d.forward(&x, &QuantCtx::fp32()).unwrap();
        assert_eq!(y.data(), &[3.0, 4.0]);
    }

    #[test]
    fn dense_gradients_match_finite_difference() {
        let ctx = QuantCtx::fp32();
        let mut d = Dense::new("fc", 3, 2, 7);
        let x = init::normal(&[4, 3], 0.0, 1.0, 9);
        // Loss = sum(y).
        let y = d.forward(&x, &ctx).unwrap();
        let gout = Tensor::ones(y.dims());
        let gin = d.backward(&gout, &ctx).unwrap();
        let eps = 1e-3;
        // Input gradient check.
        let mut x2 = x.clone();
        for idx in [0usize, 5, 11] {
            let orig = x2.data()[idx];
            x2.data_mut()[idx] = orig + eps;
            let lp = d.forward(&x2, &ctx).unwrap().sum();
            x2.data_mut()[idx] = orig - eps;
            let lm = d.forward(&x2, &ctx).unwrap().sum();
            x2.data_mut()[idx] = orig;
            let fd = (lp - lm) / (2.0 * eps);
            assert!((fd - gin.data()[idx]).abs() < 1e-2, "idx {idx}");
        }
        // Weight gradient check.
        let gw0 = d.params_mut()[0].grad.data()[0];
        let orig = d.params_mut()[0].value.data()[0];
        d.params_mut()[0].value.data_mut()[0] = orig + eps;
        let lp = d.forward(&x, &ctx).unwrap().sum();
        d.params_mut()[0].value.data_mut()[0] = orig - eps;
        let lm = d.forward(&x, &ctx).unwrap().sum();
        d.params_mut()[0].value.data_mut()[0] = orig;
        let fd = (lp - lm) / (2.0 * eps);
        assert!((fd - gw0).abs() < 2e-2, "fd {fd} gw {gw0}");
    }

    #[test]
    fn dense_backward_without_forward_errors() {
        let mut d = Dense::new("fc", 2, 2, 1);
        let g = Tensor::ones(&[1, 2]);
        assert!(matches!(
            d.backward(&g, &QuantCtx::fp32()),
            Err(NnError::NoForwardCache { .. })
        ));
    }

    #[test]
    fn relu_masks_gradient() {
        let mut r = Relu::new();
        let x = Tensor::from_vec(vec![-1.0, 2.0], &[1, 2]).unwrap();
        let y = r.forward(&x, &QuantCtx::fp32()).unwrap();
        assert_eq!(y.data(), &[0.0, 2.0]);
        let g = r
            .backward(
                &Tensor::from_vec(vec![5.0, 7.0], &[1, 2]).unwrap(),
                &QuantCtx::fp32(),
            )
            .unwrap();
        assert_eq!(g.data(), &[0.0, 7.0]);
    }

    #[test]
    fn conv_layer_roundtrip_shapes() {
        let ctx = QuantCtx::fp32();
        let mut c = Conv2d::new("c1", 3, 8, 3, 1, 1, 3);
        let x = init::normal(&[2, 3, 8, 8], 0.0, 1.0, 4);
        let y = c.forward(&x, &ctx).unwrap();
        assert_eq!(y.dims(), &[2, 8, 8, 8]);
        let gin = c.backward(&Tensor::ones(y.dims()), &ctx).unwrap();
        assert_eq!(gin.dims(), x.dims());
        assert!(c.params_mut()[0].grad.max_abs() > 0.0);
    }

    #[test]
    fn flatten_and_pool_roundtrip() {
        let ctx = QuantCtx::fp32();
        let mut f = Flatten::new();
        let x = init::normal(&[2, 3, 4, 4], 0.0, 1.0, 5);
        let y = f.forward(&x, &ctx).unwrap();
        assert_eq!(y.dims(), &[2, 48]);
        assert_eq!(f.backward(&y, &ctx).unwrap().dims(), x.dims());

        let mut p = MaxPool2d::new(2);
        let y = p.forward(&x, &ctx).unwrap();
        assert_eq!(y.dims(), &[2, 3, 2, 2]);
        assert_eq!(p.backward(&y, &ctx).unwrap().dims(), x.dims());

        let mut g = GlobalAvgPool::new();
        let y = g.forward(&x, &ctx).unwrap();
        assert_eq!(y.dims(), &[2, 3]);
        assert_eq!(g.backward(&y, &ctx).unwrap().dims(), x.dims());
    }

    #[test]
    fn quantized_forward_close_to_fp32() {
        let fp = QuantCtx::fp32();
        let q8 = QuantCtx::new(TrainingQuantizer::zhang2020_hqt());
        let x = init::normal(&[4, 16], 0.0, 1.0, 8);
        let mut d1 = Dense::new("fc", 16, 8, 2);
        let mut d2 = Dense::new("fc", 16, 8, 2); // same seed, same weights
        let y_fp = d1.forward(&x, &fp).unwrap();
        let y_q = d2.forward(&x, &q8).unwrap();
        let cos = y_fp.cosine_similarity(&y_q).unwrap();
        assert!(cos > 0.999, "cosine {cos}");
    }

    #[test]
    fn q_into_recycles_slot_and_matches_q() {
        let ctx = QuantCtx::new(TrainingQuantizer::zhang2020_hqt()).with_backend(Backend::Fast);
        let x = init::normal(&[8, 32], 0.0, 1.0, 3);
        let mut slot = None;
        ctx.q_into(&x, &mut slot);
        assert_eq!(slot.as_ref().unwrap().data(), ctx.q(&x).data());
        // Steady state: the slot's buffer is recycled, not reallocated.
        let p = slot.as_ref().unwrap().data().as_ptr();
        ctx.q_into(&x, &mut slot);
        assert_eq!(
            slot.as_ref().unwrap().data().as_ptr(),
            p,
            "slot buffer reallocated"
        );
    }

    #[test]
    fn ctx_q_backends_agree() {
        let x = init::long_tailed(&[2048], 0.1, 0.01, 20.0, 6);
        for q in [
            TrainingQuantizer::zhang2020_hqt(),
            TrainingQuantizer::zhong2020(),
            TrainingQuantizer::zhu2019(),
        ] {
            let naive = QuantCtx::new(q.clone()).with_backend(Backend::Naive).q(&x);
            let fast = QuantCtx::new(q).with_backend(Backend::Fast).q(&x);
            assert_eq!(naive.data(), fast.data());
        }
    }

    #[test]
    fn int8_dense_forward_close_to_fp32_and_counts_hits() {
        let fp = QuantCtx::fp32();
        let int = QuantCtx::new(TrainingQuantizer::zhang2020_hqt()).with_path(QuantPath::Int8);
        let x = init::normal(&[4, 32], 0.0, 1.0, 11);
        let mut d1 = Dense::new("fc", 32, 16, 5);
        let mut d2 = Dense::new("fc", 32, 16, 5); // same seed, same weights
        let y_fp = d1.forward(&x, &fp).unwrap();
        let y_int = d2.forward(&x, &int).unwrap();
        assert_eq!(y_int.dims(), y_fp.dims());
        let cos = y_fp.cosine_similarity(&y_int).unwrap();
        assert!(cos > 0.99, "cosine {cos}");
        let stats = int.int_stats();
        assert_eq!(stats.hits(), 1);
        assert_eq!(stats.fallbacks(), 0);
        assert_eq!(stats.hit_rate(), Some(1.0));
    }

    #[test]
    fn int8_dense_output_consistent_with_cached_operands() {
        // The integer accumulation must equal matmul of the dequantized
        // caches (which the f32 backward consumes) up to f32 rounding in
        // the rescale — that is the "single rescale" contract.
        let int = QuantCtx::new(TrainingQuantizer::zhang2020_hqt()).with_path(QuantPath::Int8);
        let x = init::normal(&[3, 24], 0.0, 2.0, 17);
        let mut d = Dense::new("fc", 24, 8, 9);
        let y = d.forward(&x, &int).unwrap();
        let xq = d.cached_xq.as_ref().expect("int path fills caches");
        let wq = d.cached_wq.as_ref().expect("int path fills caches");
        let want = ops::matmul_with(Backend::Naive, xq, wq).unwrap();
        for (i, (&got, &w)) in y.data().iter().zip(want.data()).enumerate() {
            // bias is zero at init, so y should equal the reference matmul
            let tol = 1e-4 * w.abs().max(1.0);
            assert!((got - w).abs() <= tol, "idx {i}: int {got} vs ref {w}");
        }
    }

    #[test]
    fn int8_conv_forward_close_to_fp32() {
        let fp = QuantCtx::fp32();
        let int = QuantCtx::new(TrainingQuantizer::zhang2020_hqt()).with_path(QuantPath::Int8);
        let x = init::normal(&[2, 3, 8, 8], 0.0, 1.0, 21);
        let mut c1 = Conv2d::new("c", 3, 6, 3, 1, 1, 13);
        let mut c2 = Conv2d::new("c", 3, 6, 3, 1, 1, 13);
        let y_fp = c1.forward(&x, &fp).unwrap();
        let y_int = c2.forward(&x, &int).unwrap();
        assert_eq!(y_int.dims(), y_fp.dims());
        let cos = y_fp.cosine_similarity(&y_int).unwrap();
        assert!(cos > 0.99, "cosine {cos}");
        assert_eq!(int.int_stats().hits(), 1);
    }

    #[test]
    fn int8_backward_flows_through_cached_operands() {
        let int = QuantCtx::new(TrainingQuantizer::zhang2020_hqt()).with_path(QuantPath::Int8);
        let x = init::normal(&[4, 12], 0.0, 1.0, 3);
        let mut d = Dense::new("fc", 12, 6, 7);
        let y = d.forward(&x, &int).unwrap();
        let gin = d.backward(&Tensor::ones(y.dims()), &int).unwrap();
        assert_eq!(gin.dims(), x.dims());
        assert!(d.params_mut()[0].grad.max_abs() > 0.0);

        let mut c = Conv2d::new("c", 2, 4, 3, 1, 1, 5);
        let xc = init::normal(&[1, 2, 6, 6], 0.0, 1.0, 8);
        let yc = c.forward(&xc, &int).unwrap();
        let ginc = c.backward(&Tensor::ones(yc.dims()), &int).unwrap();
        assert_eq!(ginc.dims(), xc.dims());
        assert!(c.params_mut()[0].grad.max_abs() > 0.0);
    }

    #[test]
    fn int8_off_ladder_block_falls_back_to_fp32_path() {
        let int = QuantCtx::new(TrainingQuantizer::zhang2020_hqt()).with_path(QuantPath::Int8);
        let mut d = Dense::new("fc", 4, 4, 2);
        // Subnormal-magnitude weights: θ/(qmax·2³) is subnormal, the
        // ladder guard rejects, and the pass must fall back — not panic,
        // not emit garbage.
        for v in d.params_mut()[0].value.data_mut() {
            *v = v.signum() * 1.0e-41;
        }
        let x = init::normal(&[2, 4], 0.0, 1.0, 6);
        let y = d.forward(&x, &int).unwrap();
        assert_eq!(y.dims(), &[2, 4]);
        assert!(y.data().iter().all(|v| v.is_finite()));
        let stats = int.int_stats();
        assert_eq!(stats.hits(), 0);
        assert_eq!(stats.fallbacks(), 1);
    }

    #[test]
    fn int8_path_ignored_by_fp32_ctx_and_shared_by_clones() {
        // fp32() pins the f32 path even if the env knob says int8.
        assert_eq!(QuantCtx::fp32().path, QuantPath::Fp32);
        // Clones share the stats handle but keep their own scratch.
        let int = QuantCtx::new(TrainingQuantizer::zhang2020_hqt()).with_path(QuantPath::Int8);
        let cloned = int.clone();
        assert_eq!(cloned.path, QuantPath::Int8);
        let mut d = Dense::new("fc", 8, 8, 1);
        let x = init::normal(&[2, 8], 0.0, 1.0, 2);
        d.forward(&x, &cloned).unwrap();
        assert_eq!(int.int_stats().hits(), 1, "stats shared across clones");
    }

    #[test]
    fn dense_feature_getters() {
        let d = Dense::new("fc", 5, 9, 0);
        assert_eq!(d.in_features(), 5);
        assert_eq!(d.out_features(), 9);
        assert_eq!(d.name(), "fc");
    }
}
