//! Additional SFU activations: Sigmoid, Tanh, and a lightweight
//! batch-normalization layer.
//!
//! The paper's SFU performs "scalar functions including non-linear
//! operations" (§IV.D); ReLU lives in [`crate::layers`], and the rest of
//! the common activation set lives here.

use crate::error::NnError;
use crate::layers::{Layer, QuantCtx};
use crate::param::Param;
use cq_tensor::Tensor;

/// Sigmoid activation `1/(1+e^{-x})`.
#[derive(Debug, Default)]
pub struct Sigmoid {
    cached_y: Option<Tensor>,
}

impl Sigmoid {
    /// Creates a sigmoid layer.
    pub fn new() -> Self {
        Sigmoid::default()
    }
}

impl Layer for Sigmoid {
    fn forward(&mut self, x: &Tensor, _ctx: &QuantCtx) -> Result<Tensor, NnError> {
        let y = x.map(|v| 1.0 / (1.0 + (-v).exp()));
        self.cached_y = Some(y.clone());
        Ok(y)
    }

    fn backward(&mut self, grad_out: &Tensor, _ctx: &QuantCtx) -> Result<Tensor, NnError> {
        let y = self.cached_y.as_ref().ok_or(NnError::NoForwardCache {
            layer: "sigmoid".into(),
        })?;
        Ok(grad_out.zip_map(y, |g, s| g * s * (1.0 - s))?)
    }

    fn name(&self) -> &str {
        "sigmoid"
    }
}

/// Tanh activation.
#[derive(Debug, Default)]
pub struct Tanh {
    cached_y: Option<Tensor>,
}

impl Tanh {
    /// Creates a tanh layer.
    pub fn new() -> Self {
        Tanh::default()
    }
}

impl Layer for Tanh {
    fn forward(&mut self, x: &Tensor, _ctx: &QuantCtx) -> Result<Tensor, NnError> {
        let y = x.map(|v| v.tanh());
        self.cached_y = Some(y.clone());
        Ok(y)
    }

    fn backward(&mut self, grad_out: &Tensor, _ctx: &QuantCtx) -> Result<Tensor, NnError> {
        let y = self.cached_y.as_ref().ok_or(NnError::NoForwardCache {
            layer: "tanh".into(),
        })?;
        Ok(grad_out.zip_map(y, |g, t| g * (1.0 - t * t))?)
    }

    fn name(&self) -> &str {
        "tanh"
    }
}

/// Per-feature batch normalization over `[B, F]` inputs with learnable
/// scale γ and shift β (training-mode statistics only — sufficient for
/// the proxy experiments, which evaluate on full batches).
#[derive(Debug)]
pub struct BatchNorm1d {
    gamma: Param,
    beta: Param,
    eps: f32,
    cache: Option<(Tensor, Vec<f32>)>, // (normalized x̂, per-feature std)
}

impl BatchNorm1d {
    /// Creates a batch-norm layer for `features` features.
    pub fn new(features: usize) -> Self {
        BatchNorm1d {
            gamma: Param::new(Tensor::ones(&[features])),
            beta: Param::new(Tensor::zeros(&[features])),
            eps: 1e-5,
            cache: None,
        }
    }
}

impl Layer for BatchNorm1d {
    fn forward(&mut self, x: &Tensor, _ctx: &QuantCtx) -> Result<Tensor, NnError> {
        if x.rank() != 2 {
            return Err(NnError::InvalidConfig(format!(
                "BatchNorm1d expects [B, F], got {:?}",
                x.dims()
            )));
        }
        let (b, f) = (x.dims()[0], x.dims()[1]);
        if b == 0 {
            return Err(NnError::InvalidConfig("empty batch".into()));
        }
        let mut mean = vec![0.0f32; f];
        let mut var = vec![0.0f32; f];
        for i in 0..b {
            for j in 0..f {
                mean[j] += x.data()[i * f + j];
            }
        }
        for m in &mut mean {
            *m /= b as f32;
        }
        for i in 0..b {
            for j in 0..f {
                let d = x.data()[i * f + j] - mean[j];
                var[j] += d * d;
            }
        }
        let std: Vec<f32> = var
            .iter()
            .map(|v| (v / b as f32 + self.eps).sqrt())
            .collect();
        let mut xhat = Tensor::zeros(&[b, f]);
        let mut y = Tensor::zeros(&[b, f]);
        for i in 0..b {
            for j in 0..f {
                let h = (x.data()[i * f + j] - mean[j]) / std[j];
                xhat.data_mut()[i * f + j] = h;
                y.data_mut()[i * f + j] =
                    self.gamma.value.data()[j] * h + self.beta.value.data()[j];
            }
        }
        self.cache = Some((xhat, std));
        Ok(y)
    }

    fn backward(&mut self, grad_out: &Tensor, _ctx: &QuantCtx) -> Result<Tensor, NnError> {
        let (xhat, std) = self.cache.as_ref().ok_or(NnError::NoForwardCache {
            layer: "batchnorm".into(),
        })?;
        let (b, f) = (grad_out.dims()[0], grad_out.dims()[1]);
        // Parameter gradients.
        for i in 0..b {
            for j in 0..f {
                let g = grad_out.data()[i * f + j];
                self.gamma.grad.data_mut()[j] += g * xhat.data()[i * f + j];
                self.beta.grad.data_mut()[j] += g;
            }
        }
        // Input gradient (standard batch-norm backward).
        let mut sum_g = vec![0.0f32; f];
        let mut sum_gx = vec![0.0f32; f];
        for i in 0..b {
            for j in 0..f {
                let g = grad_out.data()[i * f + j] * self.gamma.value.data()[j];
                sum_g[j] += g;
                sum_gx[j] += g * xhat.data()[i * f + j];
            }
        }
        let mut gin = Tensor::zeros(&[b, f]);
        for i in 0..b {
            for j in 0..f {
                let g = grad_out.data()[i * f + j] * self.gamma.value.data()[j];
                gin.data_mut()[i * f + j] =
                    (g - sum_g[j] / b as f32 - xhat.data()[i * f + j] * sum_gx[j] / b as f32)
                        / std[j];
            }
        }
        Ok(gin)
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.gamma, &mut self.beta]
    }

    fn name(&self) -> &str {
        "batchnorm1d"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq_tensor::init;

    #[test]
    fn sigmoid_range_and_gradient() {
        let ctx = QuantCtx::fp32();
        let mut s = Sigmoid::new();
        let x = Tensor::from_vec(vec![-100.0, 0.0, 100.0], &[1, 3]).unwrap();
        let y = s.forward(&x, &ctx).unwrap();
        assert!(y.data()[0] < 1e-6);
        assert!((y.data()[1] - 0.5).abs() < 1e-6);
        assert!(y.data()[2] > 1.0 - 1e-6);
        let g = s.backward(&Tensor::ones(&[1, 3]), &ctx).unwrap();
        // Max derivative 0.25 at x=0; ~0 at saturation.
        assert!((g.data()[1] - 0.25).abs() < 1e-6);
        assert!(g.data()[0] < 1e-6);
    }

    #[test]
    fn tanh_gradient_matches_finite_difference() {
        let ctx = QuantCtx::fp32();
        let mut t = Tanh::new();
        let x = init::normal(&[2, 4], 0.0, 1.0, 1);
        let _ = t.forward(&x, &ctx).unwrap();
        let gin = t.backward(&Tensor::ones(&[2, 4]), &ctx).unwrap();
        let eps = 1e-3;
        for idx in [0usize, 5] {
            let mut x2 = x.clone();
            x2.data_mut()[idx] += eps;
            let lp = t.forward(&x2, &ctx).unwrap().sum();
            x2.data_mut()[idx] -= 2.0 * eps;
            let lm = t.forward(&x2, &ctx).unwrap().sum();
            let fd = (lp - lm) / (2.0 * eps);
            assert!((fd - gin.data()[idx]).abs() < 1e-3);
        }
    }

    #[test]
    fn batchnorm_normalizes() {
        let ctx = QuantCtx::fp32();
        let mut bn = BatchNorm1d::new(3);
        let x = init::normal(&[64, 3], 5.0, 2.0, 2);
        let y = bn.forward(&x, &ctx).unwrap();
        // Output is ~N(0,1) per feature (gamma=1, beta=0).
        for j in 0..3 {
            let col: Vec<f32> = (0..64).map(|i| y.data()[i * 3 + j]).collect();
            let mean: f32 = col.iter().sum::<f32>() / 64.0;
            let var: f32 = col.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 64.0;
            assert!(mean.abs() < 1e-4, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "var {var}");
        }
    }

    #[test]
    fn batchnorm_gradient_matches_finite_difference() {
        let ctx = QuantCtx::fp32();
        let mut bn = BatchNorm1d::new(2);
        let x = init::normal(&[8, 2], 1.0, 0.5, 3);
        // Loss = weighted sum to get nonuniform gradients.
        let weights = init::normal(&[8, 2], 0.0, 1.0, 4);
        let y = bn.forward(&x, &ctx).unwrap();
        let _ = y;
        let gin = bn.backward(&weights, &ctx).unwrap();
        let loss = |bn: &mut BatchNorm1d, x: &Tensor| {
            bn.forward(x, &ctx).unwrap().mul(&weights).unwrap().sum()
        };
        let eps = 1e-3;
        for idx in [0usize, 7, 15] {
            let mut x2 = x.clone();
            x2.data_mut()[idx] += eps;
            let lp = loss(&mut bn, &x2);
            x2.data_mut()[idx] -= 2.0 * eps;
            let lm = loss(&mut bn, &x2);
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - gin.data()[idx]).abs() < 2e-2,
                "idx {idx}: fd {fd} vs {}",
                gin.data()[idx]
            );
        }
    }

    #[test]
    fn batchnorm_rejects_bad_input() {
        let ctx = QuantCtx::fp32();
        let mut bn = BatchNorm1d::new(2);
        assert!(bn.forward(&Tensor::zeros(&[4]), &ctx).is_err());
        assert!(bn.forward(&Tensor::zeros(&[0, 2]), &ctx).is_err());
        assert!(bn.backward(&Tensor::zeros(&[1, 2]), &ctx).is_err());
    }

    #[test]
    fn batchnorm_has_learnable_params() {
        let mut bn = BatchNorm1d::new(4);
        assert_eq!(bn.params_mut().len(), 2);
        assert_eq!(bn.params_mut()[0].len(), 4);
        assert_eq!(bn.name(), "batchnorm1d");
    }
}
