//! Parameter checkpointing: serialize a model's parameters to a compact
//! binary blob and restore them later (dependency-free state_dict).
//!
//! # Format (v2)
//!
//! ```text
//! magic "CQK2" | version u32 (= 2) | payload_len u32 | crc32 u32 | payload
//! ```
//!
//! with the payload being the v1 body: u32 param count, then per
//! parameter a u32 element count followed by little-endian f32 values.
//! The CRC-32 (IEEE, zlib-compatible — see [`cq_resil::crc32`]) covers
//! the payload, so a torn write, a flipped bit or a length lie is
//! detected *before* any value reaches the model. Legacy v1 blobs
//! (bare `CQCK` magic, no integrity frame) still load.
//!
//! Shapes are owned by the model, so loading validates only element
//! counts — but every on-disk count is bounds-checked against the bytes
//! actually present before it is trusted, so a hostile header cannot
//! drive allocation or out-of-range reads.
//!
//! [`save_to_path`] is crash-safe: the blob is written to a temporary
//! sibling file, fsynced, then atomically renamed over the target, so a
//! kill mid-save leaves either the old checkpoint or the new one —
//! never a half-written hybrid.

use crate::error::NnError;
use crate::model::Sequential;
use cq_resil::crc32;
use std::io::Write;
use std::path::Path;

const MAGIC_V1: &[u8; 4] = b"CQCK";
const MAGIC_V2: &[u8; 4] = b"CQK2";
const VERSION: u32 = 2;
/// Frame bytes before the payload: magic + version + payload_len + crc32.
const HEADER_LEN: usize = 16;

/// Serializes all parameters of `model` (values only, not gradients) as
/// a v2 framed blob.
pub fn save(model: &mut Sequential) -> Vec<u8> {
    let params = model.params_mut();
    let mut payload = Vec::new();
    payload.extend_from_slice(&(params.len() as u32).to_le_bytes());
    for p in params {
        payload.extend_from_slice(&(p.len() as u32).to_le_bytes());
        for &v in p.value.data() {
            payload.extend_from_slice(&v.to_le_bytes());
        }
    }
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(MAGIC_V2);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

fn bad(msg: impl Into<String>) -> NnError {
    NnError::Checkpoint(msg.into())
}

fn read_u32(bytes: &[u8], pos: &mut usize, what: &str) -> Result<u32, NnError> {
    let slice = bytes
        .get(*pos..*pos + 4)
        .ok_or_else(|| bad(format!("truncated reading {what}")))?;
    *pos += 4;
    Ok(u32::from_le_bytes(slice.try_into().expect("4 bytes")))
}

/// Restores parameters saved by [`save`] into a structurally identical
/// model. Accepts v2 framed blobs and legacy v1 (`CQCK`) blobs.
///
/// # Errors
///
/// Returns [`NnError::Checkpoint`] if the blob is malformed (bad magic,
/// unsupported version, wrong length, CRC mismatch, truncation, counts
/// exceeding the bytes present) or its parameter structure does not
/// match the model. The model is only mutated on the success path after
/// all framing checks pass; a corrupt v2 blob never writes a value.
pub fn load(model: &mut Sequential, bytes: &[u8]) -> Result<(), NnError> {
    let magic = bytes.get(..4).ok_or_else(|| bad("shorter than magic"))?;
    let payload = if magic == MAGIC_V2 {
        let mut pos = 4usize;
        let version = read_u32(bytes, &mut pos, "version")?;
        if version != VERSION {
            return Err(bad(format!(
                "unsupported version {version} (this build reads {VERSION})"
            )));
        }
        let payload_len = read_u32(bytes, &mut pos, "payload length")? as usize;
        let stored_crc = read_u32(bytes, &mut pos, "checksum")?;
        let payload = bytes
            .get(HEADER_LEN..)
            .filter(|p| p.len() == payload_len)
            .ok_or_else(|| {
                bad(format!(
                    "payload length {} does not match header's {payload_len}",
                    bytes.len().saturating_sub(HEADER_LEN)
                ))
            })?;
        let actual = crc32(payload);
        if actual != stored_crc {
            return Err(bad(format!(
                "CRC mismatch: stored {stored_crc:08x}, computed {actual:08x}"
            )));
        }
        payload
    } else if magic == MAGIC_V1 {
        // Legacy, unframed: integrity rests on the structural checks only.
        &bytes[4..]
    } else {
        return Err(bad("not a CQK2/CQCK checkpoint (bad magic)"));
    };
    load_payload(model, payload)
}

/// Parses the shared v1/v2 payload body into the model's parameters.
fn load_payload(model: &mut Sequential, bytes: &[u8]) -> Result<(), NnError> {
    let mut pos = 0usize;
    let count = read_u32(bytes, &mut pos, "parameter count")? as usize;
    // A parameter is at least 4 bytes (its length word); reject a count
    // the remaining bytes cannot possibly hold before trusting it.
    if count > (bytes.len() - pos) / 4 {
        return Err(bad(format!(
            "parameter count {count} exceeds what {} remaining bytes can hold",
            bytes.len() - pos
        )));
    }
    let mut params = model.params_mut();
    if params.len() != count {
        return Err(bad(format!(
            "checkpoint has {count} parameters, model has {}",
            params.len()
        )));
    }
    for p in params.iter_mut() {
        let len = read_u32(bytes, &mut pos, "parameter length")? as usize;
        if len > (bytes.len() - pos) / 4 {
            return Err(bad(format!(
                "parameter length {len} exceeds what {} remaining bytes can hold",
                bytes.len() - pos
            )));
        }
        if len != p.len() {
            return Err(bad(format!(
                "parameter length {len} does not match model's {}",
                p.len()
            )));
        }
        for v in p.value.data_mut() {
            let slice = bytes
                .get(pos..pos + 4)
                .ok_or_else(|| bad("truncated reading parameter values"))?;
            pos += 4;
            *v = f32::from_le_bytes(slice.try_into().expect("4 bytes"));
        }
    }
    if pos != bytes.len() {
        return Err(bad("trailing bytes in checkpoint"));
    }
    Ok(())
}

/// Saves `model` to `path` atomically: write to a `.tmp` sibling, fsync,
/// rename over the target. A crash at any point leaves either the
/// previous checkpoint or the complete new one.
pub fn save_to_path(model: &mut Sequential, path: impl AsRef<Path>) -> std::io::Result<()> {
    let path = path.as_ref();
    let blob = save(model);
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(&blob)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    cq_obs::counter!("nn.checkpoint.saved").incr();
    Ok(())
}

/// Loads a checkpoint file written by [`save_to_path`] (or any [`save`]
/// blob on disk) into `model`.
///
/// # Errors
///
/// I/O failures come back as [`NnError::Checkpoint`] naming the path;
/// blob validation errors are those of [`load`].
pub fn load_from_path(model: &mut Sequential, path: impl AsRef<Path>) -> Result<(), NnError> {
    let path = path.as_ref();
    let bytes = std::fs::read(path).map_err(|e| bad(format!("reading {}: {e}", path.display())))?;
    load(model, &bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Dense, QuantCtx, Relu};
    use crate::optim::Sgd;
    use cq_tensor::init;

    fn model(seed: u64) -> Sequential {
        let mut m = Sequential::new();
        m.add(Dense::new("a", 4, 8, seed))
            .add(Relu::new())
            .add(Dense::new("b", 8, 3, seed + 1));
        m
    }

    #[test]
    fn roundtrip_restores_exact_weights() {
        let mut m1 = model(1);
        // Perturb m1 by training a step so it differs from a fresh model.
        let x = init::normal(&[4, 4], 0.0, 1.0, 2);
        let mut opt = Sgd::new(0.1);
        m1.train_step(&x, &[0, 1, 2, 0], &mut opt, &QuantCtx::fp32())
            .unwrap();
        let blob = save(&mut m1);
        let mut m2 = model(99); // different init
        load(&mut m2, &blob).unwrap();
        let y1 = m1.forward(&x, &QuantCtx::fp32()).unwrap();
        let y2 = m2.forward(&x, &QuantCtx::fp32()).unwrap();
        assert_eq!(y1, y2);
    }

    #[test]
    fn legacy_v1_blob_still_loads() {
        let mut m1 = model(1);
        // Hand-build a v1 blob: CQCK magic + raw payload.
        let v2 = save(&mut m1);
        let mut v1 = MAGIC_V1.to_vec();
        v1.extend_from_slice(&v2[HEADER_LEN..]);
        let mut m2 = model(5);
        load(&mut m2, &v1).unwrap();
        let x = init::normal(&[2, 4], 0.0, 1.0, 7);
        assert_eq!(
            m1.forward(&x, &QuantCtx::fp32()).unwrap(),
            m2.forward(&x, &QuantCtx::fp32()).unwrap()
        );
    }

    #[test]
    fn rejects_mismatched_structure() {
        let mut m1 = model(1);
        let blob = save(&mut m1);
        let mut wrong = Sequential::new();
        wrong.add(Dense::new("only", 4, 8, 0));
        assert!(matches!(
            load(&mut wrong, &blob),
            Err(NnError::Checkpoint(_))
        ));
    }

    #[test]
    fn rejects_corrupt_blobs() {
        let mut m = model(1);
        assert!(load(&mut m, b"nope").is_err());
        assert!(load(&mut m, b"").is_err());
        let mut blob = save(&mut m);
        blob.truncate(blob.len() - 2);
        assert!(load(&mut m, &blob).is_err());
        let mut blob = save(&mut m);
        blob.push(0);
        assert!(load(&mut m, &blob).is_err());
    }

    #[test]
    fn crc_catches_single_bit_flip() {
        let mut m = model(1);
        let blob = save(&mut m);
        // Flip one bit in the payload (past the header).
        let mut bad_blob = blob.clone();
        bad_blob[HEADER_LEN + 9] ^= 0x01;
        let err = load(&mut m, &bad_blob).unwrap_err();
        assert!(err.to_string().contains("CRC"), "{err}");
    }

    #[test]
    fn rejects_version_skew() {
        let mut m = model(1);
        let mut blob = save(&mut m);
        blob[4..8].copy_from_slice(&7u32.to_le_bytes());
        let err = load(&mut m, &blob).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
    }

    #[test]
    fn hostile_count_is_rejected_before_use() {
        let mut m = model(1);
        // A v1 blob whose count claims 4 billion parameters with 4 bytes
        // of body: must be rejected by the bounds check, not by running
        // off the end (or worse, allocating).
        let mut blob = MAGIC_V1.to_vec();
        blob.extend_from_slice(&u32::MAX.to_le_bytes());
        blob.extend_from_slice(&[0u8; 4]);
        let err = load(&mut m, &blob).unwrap_err();
        assert!(err.to_string().contains("exceeds"), "{err}");
        // Same for a hostile per-parameter length in an otherwise valid
        // frame: structure check happens after the bounds check.
        let good = save(&mut m);
        let mut payload = good[HEADER_LEN..].to_vec();
        payload[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
        let mut hostile = MAGIC_V1.to_vec();
        hostile.extend_from_slice(&payload);
        let err = load(&mut m, &hostile).unwrap_err();
        assert!(err.to_string().contains("exceeds"), "{err}");
    }

    #[test]
    fn save_to_path_roundtrips_and_replaces_atomically() {
        let path = std::env::temp_dir().join(format!("cq_nn_ckpt_{}.cqk2", std::process::id()));
        let mut m1 = model(3);
        save_to_path(&mut m1, &path).unwrap();
        // Overwrite with a different model: rename must replace.
        let mut m2 = model(4);
        save_to_path(&mut m2, &path).unwrap();
        let mut loaded = model(9);
        load_from_path(&mut loaded, &path).unwrap();
        let x = init::normal(&[2, 4], 0.0, 1.0, 8);
        assert_eq!(
            m2.forward(&x, &QuantCtx::fp32()).unwrap(),
            loaded.forward(&x, &QuantCtx::fp32()).unwrap()
        );
        assert!(!path.with_extension("cqk2.tmp").exists(), "tmp cleaned up");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn load_from_missing_path_is_typed_error() {
        let mut m = model(1);
        let err = load_from_path(&mut m, "/nonexistent/dir/ckpt.bin").unwrap_err();
        assert!(matches!(err, NnError::Checkpoint(_)));
    }
}
