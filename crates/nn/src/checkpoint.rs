//! Parameter checkpointing: serialize a model's parameters to a compact
//! binary blob and restore them later (dependency-free state_dict).
//!
//! Format: magic `CQCK`, u32 param count, then per parameter a u32
//! element count followed by little-endian f32 values. Shapes are owned by
//! the model, so loading validates only element counts.

use crate::error::NnError;
use crate::model::Sequential;

const MAGIC: &[u8; 4] = b"CQCK";

/// Serializes all parameters of `model` (values only, not gradients).
pub fn save(model: &mut Sequential) -> Vec<u8> {
    let params = model.params_mut();
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&(params.len() as u32).to_le_bytes());
    for p in params {
        out.extend_from_slice(&(p.len() as u32).to_le_bytes());
        for &v in p.value.data() {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
    out
}

/// Restores parameters saved by [`save`] into a structurally identical
/// model.
///
/// # Errors
///
/// Returns [`NnError::InvalidConfig`] if the blob is malformed or the
/// parameter structure does not match.
pub fn load(model: &mut Sequential, bytes: &[u8]) -> Result<(), NnError> {
    let mut pos = 0usize;
    let take = |pos: &mut usize, n: usize| -> Result<&[u8], NnError> {
        let slice = bytes
            .get(*pos..*pos + n)
            .ok_or_else(|| NnError::InvalidConfig("checkpoint truncated".into()))?;
        *pos += n;
        Ok(slice)
    };
    if take(&mut pos, 4)? != MAGIC {
        return Err(NnError::InvalidConfig("not a CQCK checkpoint".into()));
    }
    let count = u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("4 bytes")) as usize;
    let mut params = model.params_mut();
    if params.len() != count {
        return Err(NnError::InvalidConfig(format!(
            "checkpoint has {count} parameters, model has {}",
            params.len()
        )));
    }
    for p in params.iter_mut() {
        let len = u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("4 bytes")) as usize;
        if len != p.len() {
            return Err(NnError::InvalidConfig(format!(
                "parameter length {len} does not match model's {}",
                p.len()
            )));
        }
        for v in p.value.data_mut() {
            *v = f32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("4 bytes"));
        }
    }
    if pos != bytes.len() {
        return Err(NnError::InvalidConfig(
            "trailing bytes in checkpoint".into(),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Dense, QuantCtx, Relu};
    use crate::optim::Sgd;
    use cq_tensor::init;

    fn model(seed: u64) -> Sequential {
        let mut m = Sequential::new();
        m.add(Dense::new("a", 4, 8, seed))
            .add(Relu::new())
            .add(Dense::new("b", 8, 3, seed + 1));
        m
    }

    #[test]
    fn roundtrip_restores_exact_weights() {
        let mut m1 = model(1);
        // Perturb m1 by training a step so it differs from a fresh model.
        let x = init::normal(&[4, 4], 0.0, 1.0, 2);
        let mut opt = Sgd::new(0.1);
        m1.train_step(&x, &[0, 1, 2, 0], &mut opt, &QuantCtx::fp32())
            .unwrap();
        let blob = save(&mut m1);
        let mut m2 = model(99); // different init
        load(&mut m2, &blob).unwrap();
        let y1 = m1.forward(&x, &QuantCtx::fp32()).unwrap();
        let y2 = m2.forward(&x, &QuantCtx::fp32()).unwrap();
        assert_eq!(y1, y2);
    }

    #[test]
    fn rejects_mismatched_structure() {
        let mut m1 = model(1);
        let blob = save(&mut m1);
        let mut wrong = Sequential::new();
        wrong.add(Dense::new("only", 4, 8, 0));
        assert!(load(&mut wrong, &blob).is_err());
    }

    #[test]
    fn rejects_corrupt_blobs() {
        let mut m = model(1);
        assert!(load(&mut m, b"nope").is_err());
        let mut blob = save(&mut m);
        blob.truncate(blob.len() - 2);
        assert!(load(&mut m, &blob).is_err());
        let mut blob = save(&mut m);
        blob.push(0);
        assert!(load(&mut m, &blob).is_err());
    }
}
