//! Error type for the training framework.

use cq_tensor::TensorError;
use std::error::Error;
use std::fmt;

/// Error raised by network construction or training.
#[derive(Debug, Clone, PartialEq)]
pub enum NnError {
    /// An underlying tensor operation failed (shape/rank mismatch).
    Tensor(TensorError),
    /// `backward` was called before `forward` (no cached activations).
    NoForwardCache {
        /// The offending layer.
        layer: String,
    },
    /// Invalid configuration (bad dims, empty batch, ...).
    InvalidConfig(String),
    /// A checkpoint blob was rejected: bad magic, version skew,
    /// truncation, CRC mismatch, or structure mismatch with the model.
    Checkpoint(String),
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::Tensor(e) => write!(f, "tensor error: {e}"),
            NnError::NoForwardCache { layer } => {
                write!(f, "backward before forward in layer {layer}")
            }
            NnError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            NnError::Checkpoint(msg) => write!(f, "checkpoint rejected: {msg}"),
        }
    }
}

impl Error for NnError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NnError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for NnError {
    fn from(e: TensorError) -> Self {
        NnError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = NnError::from(TensorError::InvalidArgument("x".into()));
        assert!(e.to_string().contains("tensor error"));
        assert!(Error::source(&e).is_some());
        let e = NnError::NoForwardCache { layer: "fc".into() };
        assert!(e.to_string().contains("fc"));
        assert!(Error::source(&e).is_none());
    }
}
