//! The four optimizers of the paper's Table IV: SGD, AdaGrad, RMSProp and
//! Adam — exactly the update rules the NDP optimizer (NDPO) must realize.
//!
//! The NDPO hardware in `cq-ndp` implements the unified Eq. 1 datapath;
//! its unit tests verify bit-level agreement with these reference
//! implementations.

use crate::param::Param;
use std::fmt;

/// Numerical floor added before reciprocal square roots.
pub const EPS: f32 = 1e-8;

/// A gradient-descent optimizer (Table IV).
///
/// Implementations keep per-parameter state internally, keyed by the
/// position of the parameter in the `params` slice — callers must pass
/// parameters in a stable order every step.
pub trait Optimizer: fmt::Debug {
    /// Applies one update step to every parameter from its accumulated
    /// gradient. Gradients are *not* cleared.
    fn step(&mut self, params: &mut [&mut Param]);

    /// The optimizer's display name.
    fn name(&self) -> &'static str;

    /// Learning rate currently in use.
    fn learning_rate(&self) -> f32;

    /// Replaces the learning rate (used by `schedule::apply`).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Plain stochastic gradient descent: `w ← w − η·g`.
#[derive(Debug, Clone, PartialEq)]
pub struct Sgd {
    /// Learning rate η.
    pub lr: f32,
}

impl Sgd {
    /// Creates SGD with learning rate `lr`.
    pub fn new(lr: f32) -> Self {
        Sgd { lr }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [&mut Param]) {
        for p in params {
            let lr = self.lr;
            for (w, &g) in p.value.data_mut().iter_mut().zip(p.grad.data()) {
                *w -= lr * g;
            }
        }
    }

    fn name(&self) -> &'static str {
        "SGD"
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// AdaGrad: `m ← m + g²`, `w ← w − η·g·m^(−1/2)`.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaGrad {
    /// Learning rate η.
    pub lr: f32,
    m: Vec<Vec<f32>>,
}

impl AdaGrad {
    /// Creates AdaGrad with learning rate `lr`.
    pub fn new(lr: f32) -> Self {
        AdaGrad { lr, m: Vec::new() }
    }
}

impl Optimizer for AdaGrad {
    fn step(&mut self, params: &mut [&mut Param]) {
        ensure_state(&mut self.m, params);
        for (i, p) in params.iter_mut().enumerate() {
            let m = &mut self.m[i];
            for ((w, &g), mi) in p
                .value
                .data_mut()
                .iter_mut()
                .zip(p.grad.data())
                .zip(m.iter_mut())
            {
                *mi += g * g;
                *w -= self.lr * g / (mi.sqrt() + EPS);
            }
        }
    }

    fn name(&self) -> &'static str {
        "AdaGrad"
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// RMSProp: `m ← β·m + (1−β)·g²`, `w ← w − η·g·m^(−1/2)`.
#[derive(Debug, Clone, PartialEq)]
pub struct RmsProp {
    /// Learning rate η.
    pub lr: f32,
    /// Decay rate β.
    pub beta: f32,
    m: Vec<Vec<f32>>,
}

impl RmsProp {
    /// Creates RMSProp with learning rate `lr` and decay `beta`.
    pub fn new(lr: f32, beta: f32) -> Self {
        RmsProp {
            lr,
            beta,
            m: Vec::new(),
        }
    }
}

impl Optimizer for RmsProp {
    fn step(&mut self, params: &mut [&mut Param]) {
        ensure_state(&mut self.m, params);
        for (i, p) in params.iter_mut().enumerate() {
            let m = &mut self.m[i];
            for ((w, &g), mi) in p
                .value
                .data_mut()
                .iter_mut()
                .zip(p.grad.data())
                .zip(m.iter_mut())
            {
                *mi = self.beta * *mi + (1.0 - self.beta) * g * g;
                *w -= self.lr * g / (mi.sqrt() + EPS);
            }
        }
    }

    fn name(&self) -> &'static str {
        "RMSProp"
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam (Kingma & Ba 2015) with bias correction, exactly as in Table IV.
#[derive(Debug, Clone, PartialEq)]
pub struct Adam {
    /// Learning rate η.
    pub lr: f32,
    /// First-moment decay β₁.
    pub beta1: f32,
    /// Second-moment decay β₂.
    pub beta2: f32,
    t: u32,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
}

impl Adam {
    /// Creates Adam with custom hyper-parameters.
    pub fn new(lr: f32, beta1: f32, beta2: f32) -> Self {
        Adam {
            lr,
            beta1,
            beta2,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Adam with the standard defaults (β₁=0.9, β₂=0.999).
    pub fn with_defaults(lr: f32) -> Self {
        Adam::new(lr, 0.9, 0.999)
    }

    /// Steps taken so far.
    pub fn timestep(&self) -> u32 {
        self.t
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [&mut Param]) {
        ensure_state(&mut self.m, params);
        ensure_state(&mut self.v, params);
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (i, p) in params.iter_mut().enumerate() {
            let (m, v) = (&mut self.m[i], &mut self.v[i]);
            for (((w, &g), mi), vi) in p
                .value
                .data_mut()
                .iter_mut()
                .zip(p.grad.data())
                .zip(m.iter_mut())
                .zip(v.iter_mut())
            {
                *mi = self.beta1 * *mi + (1.0 - self.beta1) * g;
                *vi = self.beta2 * *vi + (1.0 - self.beta2) * g * g;
                let m_hat = *mi / bc1;
                let v_hat = *vi / bc2;
                *w -= self.lr * m_hat / (v_hat.sqrt() + EPS);
            }
        }
    }

    fn name(&self) -> &'static str {
        "Adam"
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

fn ensure_state(state: &mut Vec<Vec<f32>>, params: &[&mut Param]) {
    while state.len() < params.len() {
        let i = state.len();
        state.push(vec![0.0; params[i].len()]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq_tensor::Tensor;

    fn param(w: &[f32], g: &[f32]) -> Param {
        let mut p = Param::new(Tensor::from_vec(w.to_vec(), &[w.len()]).unwrap());
        p.grad = Tensor::from_vec(g.to_vec(), &[g.len()]).unwrap();
        p
    }

    #[test]
    fn sgd_rule() {
        let mut p = param(&[1.0, 2.0], &[0.5, -0.5]);
        Sgd::new(0.1).step(&mut [&mut p]);
        assert!((p.value.data()[0] - 0.95).abs() < 1e-6);
        assert!((p.value.data()[1] - 2.05).abs() < 1e-6);
    }

    #[test]
    fn adagrad_rule() {
        let mut p = param(&[1.0], &[2.0]);
        let mut opt = AdaGrad::new(0.1);
        opt.step(&mut [&mut p]);
        // m = 4, w -= 0.1*2/2 = 0.1.
        assert!((p.value.data()[0] - 0.9).abs() < 1e-5);
        opt.step(&mut [&mut p]);
        // m = 8, w -= 0.1*2/sqrt(8).
        assert!((p.value.data()[0] - (0.9 - 0.2 / 8f32.sqrt())).abs() < 1e-5);
    }

    #[test]
    fn rmsprop_rule() {
        let mut p = param(&[1.0], &[1.0]);
        let mut opt = RmsProp::new(0.01, 0.9);
        opt.step(&mut [&mut p]);
        // m = 0.1, step = 0.01/sqrt(0.1).
        let expect = 1.0 - 0.01 / 0.1f32.sqrt();
        assert!((p.value.data()[0] - expect).abs() < 1e-5);
    }

    #[test]
    fn adam_first_step_is_lr_sized() {
        // With bias correction, the very first Adam step ≈ lr for any g.
        let mut p = param(&[0.0], &[123.0]);
        let mut opt = Adam::with_defaults(0.001);
        opt.step(&mut [&mut p]);
        assert!((p.value.data()[0] + 0.001).abs() < 1e-6);
        assert_eq!(opt.timestep(), 1);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        // Minimize f(w) = (w-3)^2 with analytic gradient.
        let mut p = param(&[0.0], &[0.0]);
        let mut opt = Adam::with_defaults(0.1);
        for _ in 0..500 {
            let w = p.value.data()[0];
            p.grad.data_mut()[0] = 2.0 * (w - 3.0);
            opt.step(&mut [&mut p]);
        }
        assert!((p.value.data()[0] - 3.0).abs() < 0.05);
    }

    #[test]
    fn optimizers_handle_multiple_params() {
        let mut a = param(&[1.0], &[1.0]);
        let mut b = param(&[1.0, 1.0], &[1.0, 1.0]);
        let mut opt = Adam::with_defaults(0.01);
        opt.step(&mut [&mut a, &mut b]);
        assert!(a.value.data()[0] < 1.0);
        assert!(b.value.data()[1] < 1.0);
    }

    #[test]
    fn names_match_table4() {
        assert_eq!(Sgd::new(0.1).name(), "SGD");
        assert_eq!(AdaGrad::new(0.1).name(), "AdaGrad");
        assert_eq!(RmsProp::new(0.1, 0.9).name(), "RMSProp");
        assert_eq!(Adam::with_defaults(0.1).name(), "Adam");
        assert_eq!(Sgd::new(0.25).learning_rate(), 0.25);
    }
}
