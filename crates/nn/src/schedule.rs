//! Learning-rate schedules.
//!
//! The paper trains its benchmarks with standard recipes (step decay for
//! the CNNs, inverse-sqrt warmup for Transformer); these schedules let
//! the proxy experiments do the same. A schedule maps a 0-based step
//! index to a learning rate; [`apply`] pushes it into any optimizer.

use crate::optim::Optimizer;
use std::fmt;

/// A learning-rate schedule.
#[derive(Debug, Clone, PartialEq)]
pub enum LrSchedule {
    /// Constant learning rate.
    Constant {
        /// The rate.
        lr: f32,
    },
    /// Multiply by `gamma` every `every` steps.
    StepDecay {
        /// Initial rate.
        lr: f32,
        /// Steps between decays.
        every: usize,
        /// Multiplicative factor per decay.
        gamma: f32,
    },
    /// Linear warmup to `lr` over `warmup` steps, then inverse-sqrt decay
    /// (the Transformer recipe).
    WarmupInverseSqrt {
        /// Peak rate.
        lr: f32,
        /// Warmup steps.
        warmup: usize,
    },
    /// Cosine annealing from `lr` to `lr_min` over `total` steps.
    Cosine {
        /// Initial rate.
        lr: f32,
        /// Final rate.
        lr_min: f32,
        /// Steps to anneal over.
        total: usize,
    },
}

impl LrSchedule {
    /// The learning rate at 0-based step `t`.
    pub fn at(&self, t: usize) -> f32 {
        match *self {
            LrSchedule::Constant { lr } => lr,
            LrSchedule::StepDecay { lr, every, gamma } => {
                lr * gamma.powi((t / every.max(1)) as i32)
            }
            LrSchedule::WarmupInverseSqrt { lr, warmup } => {
                let warmup = warmup.max(1);
                if t < warmup {
                    lr * (t + 1) as f32 / warmup as f32
                } else {
                    lr * (warmup as f32 / (t + 1) as f32).sqrt()
                }
            }
            LrSchedule::Cosine { lr, lr_min, total } => {
                let total = total.max(1);
                let progress = (t.min(total)) as f32 / total as f32;
                lr_min + 0.5 * (lr - lr_min) * (1.0 + (std::f32::consts::PI * progress).cos())
            }
        }
    }
}

impl fmt::Display for LrSchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LrSchedule::Constant { lr } => write!(f, "constant({lr})"),
            LrSchedule::StepDecay { lr, every, gamma } => {
                write!(f, "step({lr}, /{every}, x{gamma})")
            }
            LrSchedule::WarmupInverseSqrt { lr, warmup } => {
                write!(f, "warmup-isqrt({lr}, {warmup})")
            }
            LrSchedule::Cosine { lr, lr_min, total } => {
                write!(f, "cosine({lr}->{lr_min}, {total})")
            }
        }
    }
}

/// Sets the optimizer's learning rate for step `t` and returns it.
pub fn apply(schedule: &LrSchedule, opt: &mut dyn Optimizer, t: usize) -> f32 {
    let lr = schedule.at(t);
    opt.set_learning_rate(lr);
    lr
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::{Adam, Sgd};

    #[test]
    fn constant_is_constant() {
        let s = LrSchedule::Constant { lr: 0.1 };
        assert_eq!(s.at(0), 0.1);
        assert_eq!(s.at(1000), 0.1);
    }

    #[test]
    fn step_decay_halves() {
        let s = LrSchedule::StepDecay {
            lr: 1.0,
            every: 10,
            gamma: 0.5,
        };
        assert_eq!(s.at(0), 1.0);
        assert_eq!(s.at(9), 1.0);
        assert_eq!(s.at(10), 0.5);
        assert_eq!(s.at(25), 0.25);
    }

    #[test]
    fn warmup_ramps_then_decays() {
        let s = LrSchedule::WarmupInverseSqrt { lr: 1.0, warmup: 4 };
        assert!(s.at(0) < s.at(1));
        assert!((s.at(3) - 1.0).abs() < 1e-6); // peak at end of warmup
        assert!(s.at(15) < s.at(3));
        // Inverse sqrt: at t=15 (16 steps), lr = sqrt(4/16) = 0.5.
        assert!((s.at(15) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn cosine_anneals_to_min() {
        let s = LrSchedule::Cosine {
            lr: 1.0,
            lr_min: 0.1,
            total: 100,
        };
        assert!((s.at(0) - 1.0).abs() < 1e-6);
        assert!((s.at(100) - 0.1).abs() < 1e-6);
        assert!((s.at(50) - 0.55).abs() < 1e-3); // midpoint
        assert!((s.at(500) - 0.1).abs() < 1e-6); // clamped past total
    }

    #[test]
    fn apply_updates_optimizer() {
        let s = LrSchedule::StepDecay {
            lr: 0.2,
            every: 1,
            gamma: 0.5,
        };
        let mut opt = Sgd::new(0.0);
        apply(&s, &mut opt, 0);
        assert_eq!(opt.learning_rate(), 0.2);
        apply(&s, &mut opt, 2);
        assert_eq!(opt.learning_rate(), 0.05);
        let mut adam = Adam::with_defaults(0.0);
        apply(&s, &mut adam, 1);
        assert_eq!(adam.learning_rate(), 0.1);
    }

    #[test]
    fn display() {
        assert!(LrSchedule::Constant { lr: 0.1 }
            .to_string()
            .contains("constant"));
    }
}
