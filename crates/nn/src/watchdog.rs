//! Divergence watchdog: periodic in-memory snapshots of the model and
//! automatic rollback when training blows up.
//!
//! Low-precision training (the whole point of Cambricon-Q's HQT path)
//! occasionally diverges — a bad quantization step drives the loss to
//! `NaN`/`inf` and every subsequent step is wasted. The watchdog
//! snapshots the model every `interval` healthy observations (using the
//! framed checkpoint codec, so snapshots carry the same integrity
//! guarantees as on-disk checkpoints) and, on a divergent loss, restores
//! the last good snapshot instead of letting the run continue corrupted.

use crate::checkpoint;
use crate::error::NnError;
use crate::model::Sequential;

/// What [`TrainWatchdog::observe`] decided about one training step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WatchdogVerdict {
    /// Loss is finite and in bounds; nothing to do.
    Healthy,
    /// Loss is healthy and the snapshot interval elapsed: the model was
    /// checkpointed in memory.
    Snapshotted,
    /// Loss diverged; the model was rolled back to the last snapshot.
    RolledBack {
        /// The step at which the restored snapshot was taken.
        to_step: u64,
    },
}

/// A NaN/divergence watchdog over a training loop.
///
/// Drive it with one [`TrainWatchdog::observe`] call per step, passing
/// the step's loss. Divergence means a non-finite loss or one exceeding
/// `max_loss`.
///
/// # Examples
///
/// ```
/// use cq_nn::{Dense, QuantCtx, Sequential, Sgd, TrainWatchdog, WatchdogVerdict};
/// use cq_tensor::init;
///
/// let mut model = Sequential::new();
/// model.add(Dense::new("fc", 4, 2, 1));
/// let mut dog = TrainWatchdog::new(1, 1e6);
/// // Healthy step: snapshots (interval = 1).
/// assert_eq!(dog.observe(&mut model, 0.7).unwrap(), WatchdogVerdict::Snapshotted);
/// // Divergent step: rolls the model back to the snapshot.
/// let verdict = dog.observe(&mut model, f64::NAN).unwrap();
/// assert_eq!(verdict, WatchdogVerdict::RolledBack { to_step: 1 });
/// ```
#[derive(Debug)]
pub struct TrainWatchdog {
    interval: u64,
    max_loss: f64,
    step: u64,
    last_good: Option<(u64, Vec<u8>)>,
    rollbacks: u64,
}

impl TrainWatchdog {
    /// Creates a watchdog that snapshots every `interval` healthy steps
    /// (clamped to ≥ 1) and treats any loss above `max_loss` — or any
    /// non-finite loss — as divergence.
    pub fn new(interval: u64, max_loss: f64) -> Self {
        TrainWatchdog {
            interval: interval.max(1),
            max_loss,
            step: 0,
            last_good: None,
            rollbacks: 0,
        }
    }

    /// Observes one training step's loss, snapshotting or rolling back
    /// the model as needed.
    ///
    /// # Errors
    ///
    /// [`NnError::Checkpoint`] if the loss diverged before any snapshot
    /// existed (there is nothing to roll back to — the caller should
    /// restart from initialization), or if restoring the snapshot fails.
    pub fn observe(
        &mut self,
        model: &mut Sequential,
        loss: f64,
    ) -> Result<WatchdogVerdict, NnError> {
        self.step += 1;
        let diverged = !loss.is_finite() || loss > self.max_loss;
        if diverged {
            cq_obs::counter!("resil.divergence").incr();
            let Some((to_step, blob)) = &self.last_good else {
                return Err(NnError::Checkpoint(format!(
                    "loss {loss} diverged at step {} with no snapshot to roll back to",
                    self.step
                )));
            };
            checkpoint::load(model, blob)?;
            self.rollbacks += 1;
            cq_obs::counter!("resil.rollback").incr();
            return Ok(WatchdogVerdict::RolledBack { to_step: *to_step });
        }
        if self.step.is_multiple_of(self.interval) {
            self.last_good = Some((self.step, checkpoint::save(model)));
            return Ok(WatchdogVerdict::Snapshotted);
        }
        Ok(WatchdogVerdict::Healthy)
    }

    /// Steps observed so far (healthy and divergent).
    pub fn steps(&self) -> u64 {
        self.step
    }

    /// Rollbacks performed so far.
    pub fn rollbacks(&self) -> u64 {
        self.rollbacks
    }

    /// The step of the snapshot a future divergence would restore.
    pub fn last_good_step(&self) -> Option<u64> {
        self.last_good.as_ref().map(|(s, _)| *s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Dense, QuantCtx};
    use crate::optim::Sgd;
    use cq_tensor::init;

    fn model(seed: u64) -> Sequential {
        let mut m = Sequential::new();
        m.add(Dense::new("fc", 4, 3, seed));
        m
    }

    #[test]
    fn snapshots_on_interval_only() {
        let mut m = model(1);
        let mut dog = TrainWatchdog::new(3, 1e9);
        assert_eq!(dog.observe(&mut m, 1.0).unwrap(), WatchdogVerdict::Healthy);
        assert_eq!(dog.observe(&mut m, 1.0).unwrap(), WatchdogVerdict::Healthy);
        assert_eq!(
            dog.observe(&mut m, 1.0).unwrap(),
            WatchdogVerdict::Snapshotted
        );
        assert_eq!(dog.last_good_step(), Some(3));
    }

    #[test]
    fn rollback_restores_snapshot_weights() {
        let mut m = model(1);
        let mut dog = TrainWatchdog::new(1, 1e9);
        dog.observe(&mut m, 0.5).unwrap(); // snapshot at step 1
        let x = init::normal(&[2, 4], 0.0, 1.0, 2);
        let y_snapshot = m.forward(&x, &QuantCtx::fp32()).unwrap();
        // Corrupt the model by training a step, then diverge.
        let mut opt = Sgd::new(0.5);
        m.train_step(&x, &[0, 1], &mut opt, &QuantCtx::fp32())
            .unwrap();
        assert_ne!(m.forward(&x, &QuantCtx::fp32()).unwrap(), y_snapshot);
        let verdict = dog.observe(&mut m, f64::INFINITY).unwrap();
        assert_eq!(verdict, WatchdogVerdict::RolledBack { to_step: 1 });
        assert_eq!(m.forward(&x, &QuantCtx::fp32()).unwrap(), y_snapshot);
        assert_eq!(dog.rollbacks(), 1);
    }

    #[test]
    fn loss_above_threshold_counts_as_divergence() {
        let mut m = model(1);
        let mut dog = TrainWatchdog::new(1, 10.0);
        dog.observe(&mut m, 9.9).unwrap();
        assert!(matches!(
            dog.observe(&mut m, 10.1).unwrap(),
            WatchdogVerdict::RolledBack { to_step: 1 }
        ));
    }

    #[test]
    fn divergence_before_any_snapshot_is_an_error() {
        let mut m = model(1);
        let mut dog = TrainWatchdog::new(10, 1e9);
        let err = dog.observe(&mut m, f64::NAN).unwrap_err();
        assert!(matches!(err, NnError::Checkpoint(_)));
        assert!(err.to_string().contains("no snapshot"), "{err}");
    }
}
