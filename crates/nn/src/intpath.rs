//! The `CQ_QUANT_PATH` knob: dequantization-free integer forward passes.
//!
//! With [`QuantPath::Int8`] selected, [`crate::QuantCtx`] routes
//! [`crate::Dense`] and [`crate::Conv2d`] forward passes through the
//! integer-domain pipeline: one [`cq_quant::IntDomainQuantizer`] pass per
//! operand emits i8 codes plus an exact power-of-two scale, the MAC runs
//! in `cq_par::gemm_i8` / `cq_par::conv::conv2d_i8` (i8×i8→i32), and a
//! single `acc · (s_x·s_w)` rescale lands the f32 output — no per-element
//! dequantize between quantization and compute. Layers whose block
//! statistics fall off the power-of-two ladder (subnormal θ, non-exact
//! base scale) fall back to the f32 fake-quantize path for that pass and
//! are counted in [`IntPathStats`].
//!
//! The knob is strictly validated: `CQ_QUANT_PATH` must be unset, empty,
//! `"fp32"` or `"int8"` — anything else aborts the process at first use
//! rather than silently training on the wrong path.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Which arithmetic domain quantized layer forwards execute in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QuantPath {
    /// Quantize-dequantize to f32 and run the f32 kernels (the
    /// conventional fake-quantization dataflow). Default.
    #[default]
    Fp32,
    /// Integer-domain forward: i8 codes straight into i8×i8→i32 kernels,
    /// one rescale at the output. Falls back to [`QuantPath::Fp32`]
    /// per layer-pass when the scale ladder guard rejects a block.
    Int8,
}

impl QuantPath {
    /// Parses `"fp32"` / `"int8"` (case-insensitive).
    pub fn parse(s: &str) -> Option<QuantPath> {
        match s.trim().to_ascii_lowercase().as_str() {
            "fp32" => Some(QuantPath::Fp32),
            "int8" => Some(QuantPath::Int8),
            _ => None,
        }
    }

    /// Short display name (`"fp32"` / `"int8"`).
    pub fn name(&self) -> &'static str {
        match self {
            QuantPath::Fp32 => "fp32",
            QuantPath::Int8 => "int8",
        }
    }
}

/// Resolves a raw `CQ_QUANT_PATH` value: `None`/empty means "unset, use
/// the default"; anything else must parse or the run aborts. Mirrors the
/// `CQ_BACKEND` contract — a typo must never silently select a path,
/// because fp32-vs-int8 A/B accuracy comparisons would lie.
pub(crate) fn resolve_env_quant_path(raw: Option<&str>) -> Result<QuantPath, String> {
    match raw {
        None => Ok(QuantPath::default()),
        Some(v) if v.trim().is_empty() => Ok(QuantPath::default()),
        Some(v) => QuantPath::parse(v).ok_or_else(|| {
            format!("invalid CQ_QUANT_PATH value {v:?}: expected \"fp32\" or \"int8\"")
        }),
    }
}

/// The process-wide default quant path from `CQ_QUANT_PATH`, resolved
/// once. Panics on an invalid value.
pub fn env_quant_path() -> QuantPath {
    static ENV: OnceLock<QuantPath> = OnceLock::new();
    *ENV.get_or_init(|| {
        let raw = std::env::var("CQ_QUANT_PATH").ok();
        match resolve_env_quant_path(raw.as_deref()) {
            Ok(p) => p,
            Err(msg) => panic!("{msg}"),
        }
    })
}

/// Validates `CQ_QUANT_PATH` eagerly without touching the cached default.
///
/// Binaries call this from startup (`cq_experiments::profiling::init_for_bin`)
/// so a typo aborts before any training work, not at the first quantized
/// layer forward.
///
/// # Errors
///
/// Returns the same diagnostic [`env_quant_path`] would panic with.
pub fn validate_env_quant_path() -> Result<QuantPath, String> {
    let raw = std::env::var("CQ_QUANT_PATH").ok();
    resolve_env_quant_path(raw.as_deref())
}

/// Counters for the integer path, shared by every clone of a
/// [`crate::QuantCtx`]: how many layer passes ran fully in the integer
/// domain vs fell back to f32 because an operand fell off the
/// power-of-two ladder.
#[derive(Debug, Default)]
pub struct IntPathStats {
    hits: AtomicU64,
    fallbacks: AtomicU64,
}

impl IntPathStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        IntPathStats::default()
    }

    /// Records one layer pass that ran on the integer path.
    pub(crate) fn record_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one layer pass that fell back to f32.
    pub(crate) fn record_fallback(&self) {
        self.fallbacks.fetch_add(1, Ordering::Relaxed);
    }

    /// Layer passes that ran fully in the integer domain.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Layer passes that fell back to the f32 fake-quantize path.
    pub fn fallbacks(&self) -> u64 {
        self.fallbacks.load(Ordering::Relaxed)
    }

    /// Fraction of attempted integer-path passes that stayed on the
    /// ladder, `None` before any attempt.
    pub fn hit_rate(&self) -> Option<f64> {
        let h = self.hits();
        let total = h + self.fallbacks();
        (total > 0).then(|| h as f64 / total as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_both_names() {
        assert_eq!(QuantPath::parse("fp32"), Some(QuantPath::Fp32));
        assert_eq!(QuantPath::parse(" Int8 "), Some(QuantPath::Int8));
        assert_eq!(QuantPath::parse("INT8"), Some(QuantPath::Int8));
        assert_eq!(QuantPath::parse("int4"), None);
        assert_eq!(QuantPath::Fp32.name(), "fp32");
        assert_eq!(QuantPath::Int8.name(), "int8");
    }

    #[test]
    fn env_resolution_rejects_unknown_values() {
        assert_eq!(resolve_env_quant_path(None), Ok(QuantPath::Fp32));
        assert_eq!(resolve_env_quant_path(Some("")), Ok(QuantPath::Fp32));
        assert_eq!(resolve_env_quant_path(Some("  ")), Ok(QuantPath::Fp32));
        assert_eq!(resolve_env_quant_path(Some("int8")), Ok(QuantPath::Int8));
        assert_eq!(resolve_env_quant_path(Some(" FP32 ")), Ok(QuantPath::Fp32));
        let err = resolve_env_quant_path(Some("int7")).unwrap_err();
        assert!(err.contains("invalid CQ_QUANT_PATH"), "{err}");
        assert!(err.contains("int7"), "{err}");
        assert!(err.contains("fp32"), "{err}");
        assert!(err.contains("int8"), "{err}");
    }

    #[test]
    fn stats_hit_rate() {
        let s = IntPathStats::new();
        assert_eq!(s.hit_rate(), None);
        s.record_hit();
        s.record_hit();
        s.record_hit();
        s.record_fallback();
        assert_eq!(s.hits(), 3);
        assert_eq!(s.fallbacks(), 1);
        assert_eq!(s.hit_rate(), Some(0.75));
    }
}
