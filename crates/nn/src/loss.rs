//! Loss functions with analytic gradients.

use crate::error::NnError;
use cq_tensor::Tensor;

/// Result of a loss evaluation: the scalar loss and ∂L/∂logits.
#[derive(Debug, Clone, PartialEq)]
pub struct LossOutput {
    /// Mean loss over the batch.
    pub loss: f32,
    /// Gradient with respect to the input logits/predictions.
    pub grad: Tensor,
}

/// Softmax cross-entropy over logits `[B, C]` with integer class labels.
///
/// The returned gradient is `(softmax − onehot)/B`, so downstream weight
/// gradients are batch means.
///
/// # Errors
///
/// Returns [`NnError::InvalidConfig`] if `labels.len()` differs from the
/// batch size or any label is out of range.
///
/// # Examples
///
/// ```
/// use cq_nn::loss::softmax_cross_entropy;
/// use cq_tensor::Tensor;
///
/// let logits = Tensor::from_vec(vec![5.0, -5.0], &[1, 2])?;
/// let out = softmax_cross_entropy(&logits, &[0])?;
/// assert!(out.loss < 0.01); // confidently correct
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn softmax_cross_entropy(logits: &Tensor, labels: &[usize]) -> Result<LossOutput, NnError> {
    if logits.rank() != 2 {
        return Err(NnError::InvalidConfig(format!(
            "softmax_cross_entropy expects [B, C] logits, got {:?}",
            logits.dims()
        )));
    }
    let (b, c) = (logits.dims()[0], logits.dims()[1]);
    if labels.len() != b {
        return Err(NnError::InvalidConfig(format!(
            "{} labels for batch of {b}",
            labels.len()
        )));
    }
    if let Some(&bad) = labels.iter().find(|&&l| l >= c) {
        return Err(NnError::InvalidConfig(format!(
            "label {bad} out of range for {c} classes"
        )));
    }
    let mut grad = Tensor::zeros(&[b, c]);
    let mut loss = 0.0f64;
    for i in 0..b {
        let row = &logits.data()[i * c..(i + 1) * c];
        let max = row.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
        let exps: Vec<f32> = row.iter().map(|&v| (v - max).exp()).collect();
        let sum: f32 = exps.iter().sum();
        let label = labels[i];
        let p_label = exps[label] / sum;
        loss -= (p_label.max(1e-12)).ln() as f64;
        for j in 0..c {
            let p = exps[j] / sum;
            grad.data_mut()[i * c + j] = (p - if j == label { 1.0 } else { 0.0 }) / b as f32;
        }
    }
    Ok(LossOutput {
        loss: (loss / b as f64) as f32,
        grad,
    })
}

/// Mean-squared-error loss between predictions and targets of equal shape.
///
/// # Errors
///
/// Returns a shape error if the operands differ.
pub fn mse(pred: &Tensor, target: &Tensor) -> Result<LossOutput, NnError> {
    let diff = pred.sub(target)?;
    let n = pred.len().max(1) as f32;
    let loss = diff.sum_sq() / n;
    let grad = diff.scale(2.0 / n);
    Ok(LossOutput { loss, grad })
}

/// Classification accuracy of logits `[B, C]` against labels.
///
/// # Panics
///
/// Panics if `labels.len()` differs from the batch dimension.
pub fn accuracy(logits: &Tensor, labels: &[usize]) -> f64 {
    let (b, c) = (logits.dims()[0], logits.dims()[1]);
    assert_eq!(labels.len(), b, "labels must match batch");
    let mut correct = 0usize;
    for i in 0..b {
        let row = &logits.data()[i * c..(i + 1) * c];
        let pred = row
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
            .map(|(j, _)| j)
            .unwrap_or(0);
        if pred == labels[i] {
            correct += 1;
        }
    }
    correct as f64 / b.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_entropy_uniform_logits() {
        // Uniform logits over 4 classes: loss = ln(4).
        let logits = Tensor::zeros(&[2, 4]);
        let out = softmax_cross_entropy(&logits, &[1, 3]).unwrap();
        assert!((out.loss - 4.0f32.ln()).abs() < 1e-5);
        // Gradient sums to zero per row.
        for i in 0..2 {
            let s: f32 = out.grad.data()[i * 4..(i + 1) * 4].iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn cross_entropy_gradient_matches_finite_difference() {
        let mut logits = Tensor::from_vec(vec![0.5, -0.2, 1.5, -1.0, 0.3, 0.1], &[2, 3]).unwrap();
        let labels = [2usize, 0];
        let out = softmax_cross_entropy(&logits, &labels).unwrap();
        let eps = 1e-3;
        for idx in 0..6 {
            let orig = logits.data()[idx];
            logits.data_mut()[idx] = orig + eps;
            let lp = softmax_cross_entropy(&logits, &labels).unwrap().loss;
            logits.data_mut()[idx] = orig - eps;
            let lm = softmax_cross_entropy(&logits, &labels).unwrap().loss;
            logits.data_mut()[idx] = orig;
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - out.grad.data()[idx]).abs() < 1e-3,
                "idx {idx}: fd {fd} vs {}",
                out.grad.data()[idx]
            );
        }
    }

    #[test]
    fn cross_entropy_validates() {
        let logits = Tensor::zeros(&[2, 3]);
        assert!(softmax_cross_entropy(&logits, &[0]).is_err());
        assert!(softmax_cross_entropy(&logits, &[0, 3]).is_err());
        assert!(softmax_cross_entropy(&Tensor::zeros(&[6]), &[0]).is_err());
    }

    #[test]
    fn mse_known() {
        let p = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let t = Tensor::from_vec(vec![0.0, 0.0], &[2]).unwrap();
        let out = mse(&p, &t).unwrap();
        assert!((out.loss - 2.5).abs() < 1e-6);
        assert_eq!(out.grad.data(), &[1.0, 2.0]);
    }

    #[test]
    fn accuracy_counts() {
        let logits = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 0.3, 0.7], &[3, 2]).unwrap();
        assert!((accuracy(&logits, &[0, 1, 0]) - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(accuracy(&logits, &[0, 1, 1]), 1.0);
    }
}
