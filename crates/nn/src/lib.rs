//! # cq-nn — DNN training substrate with quantization-aware compute
//!
//! A from-scratch training framework sufficient to run the paper's
//! quantized-training accuracy experiments at small scale:
//!
//! * layers: [`Dense`], [`Conv2d`], [`Relu`], [`MaxPool2d`], [`Flatten`], [`GlobalAvgPool`] —
//!   all quantization-aware via the [`QuantCtx`] threaded through
//!   forward/backward (quantized FW/NG/WG operands, full-precision master
//!   weights and ΔW, exactly the Fig. 7 dataflow);
//! * [`intpath`]: the `CQ_QUANT_PATH=fp32|int8` knob — with `int8`,
//!   [`Dense`]/[`Conv2d`] forwards run dequantization-free through
//!   i8×i8→i32 kernels with one output rescale, falling back to f32 per
//!   pass when a block's scale leaves the power-of-two ladder;
//! * [`Lstm`] and [`SelfAttention`] for the recurrent and attention
//!   benchmarks;
//! * [`optim`]: the four Table IV optimizers (SGD, AdaGrad, RMSProp, Adam)
//!   that the NDP optimizer must reproduce;
//! * [`loss`]: softmax cross-entropy and MSE with analytic gradients;
//! * [`Sequential`]: the model container and training driver.
//!
//! # Examples
//!
//! ```
//! use cq_nn::{Dense, Relu, Sequential, Adam, QuantCtx};
//! use cq_quant::TrainingQuantizer;
//! use cq_tensor::init;
//!
//! // Train one step with Zhang-2020+HQT INT8 quantization.
//! let mut model = Sequential::new();
//! model.add(Dense::new("fc1", 8, 32, 1)).add(Relu::new()).add(Dense::new("fc2", 32, 3, 2));
//! let ctx = QuantCtx::new(TrainingQuantizer::zhang2020_hqt());
//! let x = init::normal(&[6, 8], 0.0, 1.0, 3);
//! let mut opt = Adam::with_defaults(1e-3);
//! let report = model.train_step(&x, &[0, 1, 2, 0, 1, 2], &mut opt, &ctx)?;
//! assert!(report.loss.is_finite());
//! # Ok::<(), cq_nn::NnError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![allow(clippy::needless_range_loop)] // index-based numeric kernels read clearer here

mod activations;
mod attention;
pub mod checkpoint;
mod error;
pub mod intpath;
mod layers;
pub mod loss;
mod lstm;
mod model;
pub mod optim;
mod param;
pub mod schedule;
mod watchdog;

pub use activations::{BatchNorm1d, Sigmoid, Tanh};
pub use attention::SelfAttention;
pub use error::NnError;
pub use intpath::{env_quant_path, validate_env_quant_path, IntPathStats, QuantPath};
pub use layers::{Conv2d, Dense, Flatten, GlobalAvgPool, Layer, MaxPool2d, QuantCtx, Relu};
pub use lstm::Lstm;
pub use model::{Sequential, StepReport};
pub use optim::{AdaGrad, Adam, Optimizer, RmsProp, Sgd};
pub use param::Param;
pub use schedule::LrSchedule;
pub use watchdog::{TrainWatchdog, WatchdogVerdict};
