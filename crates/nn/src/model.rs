//! The [`Sequential`] model container and single-step training driver.

use crate::error::NnError;
use crate::layers::{Layer, QuantCtx};
use crate::loss::{accuracy, softmax_cross_entropy};
use crate::optim::Optimizer;
use cq_tensor::Tensor;
use std::fmt;

/// A feed-forward stack of layers trained end to end.
///
/// # Examples
///
/// ```
/// use cq_nn::{Dense, Relu, Sequential, Sgd, QuantCtx};
/// use cq_tensor::init;
///
/// let mut model = Sequential::new();
/// model.add(Dense::new("fc1", 4, 16, 1)).add(Relu::new()).add(Dense::new("fc2", 16, 2, 2));
/// let x = init::normal(&[8, 4], 0.0, 1.0, 3);
/// let labels = vec![0usize, 1, 0, 1, 0, 1, 0, 1];
/// let mut opt = Sgd::new(0.1);
/// let report = model.train_step(&x, &labels, &mut opt, &QuantCtx::fp32())?;
/// assert!(report.loss > 0.0);
/// # Ok::<(), cq_nn::NnError>(())
/// ```
#[derive(Debug, Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

/// Metrics of one training step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepReport {
    /// Mean loss of the minibatch.
    pub loss: f32,
    /// Minibatch accuracy.
    pub accuracy: f64,
}

impl Sequential {
    /// An empty model.
    pub fn new() -> Self {
        Sequential::default()
    }

    /// Appends a layer.
    pub fn add(&mut self, layer: impl Layer + 'static) -> &mut Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the model has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Total trainable scalar parameters.
    pub fn param_count(&mut self) -> usize {
        self.layers
            .iter_mut()
            .flat_map(|l| l.params_mut())
            .map(|p| p.len())
            .sum()
    }

    /// Forward pass through every layer.
    ///
    /// # Errors
    ///
    /// Propagates the first layer error.
    pub fn forward(&mut self, x: &Tensor, ctx: &QuantCtx) -> Result<Tensor, NnError> {
        let _sp = cq_obs::span!("nn", "forward");
        let mut cur = x.clone();
        for layer in &mut self.layers {
            let _layer_sp = cq_obs::span!("nn.layer", "{}:FW", layer.name());
            cur = layer.forward(&cur, ctx)?;
        }
        Ok(cur)
    }

    /// Backward pass from the loss gradient; accumulates parameter grads.
    ///
    /// # Errors
    ///
    /// Propagates layer errors (e.g. backward before forward).
    pub fn backward(&mut self, grad: &Tensor, ctx: &QuantCtx) -> Result<Tensor, NnError> {
        let _sp = cq_obs::span!("nn", "backward");
        let mut cur = grad.clone();
        for layer in self.layers.iter_mut().rev() {
            let _layer_sp = cq_obs::span!("nn.layer", "{}:BW", layer.name());
            cur = layer.backward(&cur, ctx)?;
        }
        Ok(cur)
    }

    /// Clears all accumulated gradients.
    pub fn zero_grads(&mut self) {
        for layer in &mut self.layers {
            for p in layer.params_mut() {
                p.zero_grad();
            }
        }
    }

    /// All trainable parameters in stable (layer) order.
    pub fn params_mut(&mut self) -> Vec<&mut crate::param::Param> {
        self.layers
            .iter_mut()
            .flat_map(|l| l.params_mut())
            .collect()
    }

    /// Applies one optimizer step over all parameters.
    pub fn step_optimizer(&mut self, opt: &mut dyn Optimizer) {
        let mut params = self.params_mut();
        opt.step(&mut params);
    }

    /// One full training step: zero grads → forward → cross-entropy loss →
    /// backward → optimizer update.
    ///
    /// # Errors
    ///
    /// Propagates layer and loss errors.
    pub fn train_step(
        &mut self,
        x: &Tensor,
        labels: &[usize],
        opt: &mut dyn Optimizer,
        ctx: &QuantCtx,
    ) -> Result<StepReport, NnError> {
        let mut sp = cq_obs::span!("nn", "train_step");
        if sp.is_recording() {
            sp.arg("batch", labels.len())
                .arg("layers", self.layers.len());
            cq_obs::counter!("nn.train_steps").incr();
            cq_obs::counter!("nn.samples_trained").add(labels.len() as u64);
        }
        self.zero_grads();
        let logits = self.forward(x, ctx)?;
        let out = {
            let _loss_sp = cq_obs::span!("nn", "loss");
            softmax_cross_entropy(&logits, labels)?
        };
        self.backward(&out.grad, ctx)?;
        {
            let _opt_sp = cq_obs::span!("nn", "optimizer");
            self.step_optimizer(opt);
        }
        if sp.is_recording() {
            cq_obs::gauge!("nn.last_loss").set(out.loss as f64);
        }
        Ok(StepReport {
            loss: out.loss,
            accuracy: accuracy(&logits, labels),
        })
    }

    /// Evaluates classification accuracy on a batch without training.
    ///
    /// # Errors
    ///
    /// Propagates forward errors.
    pub fn evaluate(
        &mut self,
        x: &Tensor,
        labels: &[usize],
        ctx: &QuantCtx,
    ) -> Result<f64, NnError> {
        let logits = self.forward(x, ctx)?;
        Ok(accuracy(&logits, labels))
    }

    /// Snapshot of per-layer gradient statistics `(layer name, max |g|)`
    /// for the parameters of each layer — the quantity Fig. 2 plots.
    pub fn grad_max_abs(&mut self) -> Vec<(String, f32)> {
        self.layers
            .iter_mut()
            .filter_map(|l| {
                let name = l.name().to_string();
                let max = l
                    .params_mut()
                    .iter()
                    .map(|p| p.grad.max_abs())
                    .fold(0.0f32, f32::max);
                if max > 0.0 || !l.params_mut().is_empty() {
                    Some((name, max))
                } else {
                    None
                }
            })
            .collect()
    }
}

impl fmt::Display for Sequential {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Sequential[{} layers]", self.layers.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Dense, Relu};
    use crate::optim::Sgd;
    use cq_tensor::init;

    fn xor_data() -> (Tensor, Vec<usize>) {
        // Classic XOR, replicated 4x for a batch of 16.
        let mut xs = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..4 {
            for (a, b, l) in [(0.0, 0.0, 0), (0.0, 1.0, 1), (1.0, 0.0, 1), (1.0, 1.0, 0)] {
                xs.push(a);
                xs.push(b);
                labels.push(l);
            }
        }
        (Tensor::from_vec(xs, &[16, 2]).unwrap(), labels)
    }

    #[test]
    fn learns_xor() {
        let mut model = Sequential::new();
        model
            .add(Dense::new("fc1", 2, 16, 11))
            .add(Relu::new())
            .add(Dense::new("fc2", 16, 2, 12));
        let (x, labels) = xor_data();
        let mut opt = Sgd::new(0.5);
        let ctx = QuantCtx::fp32();
        let mut last = StepReport {
            loss: f32::INFINITY,
            accuracy: 0.0,
        };
        for _ in 0..500 {
            last = model.train_step(&x, &labels, &mut opt, &ctx).unwrap();
        }
        assert_eq!(last.accuracy, 1.0, "failed to learn XOR: {last:?}");
        assert!(last.loss < 0.1);
    }

    #[test]
    fn param_count_sums_layers() {
        let mut model = Sequential::new();
        model
            .add(Dense::new("a", 3, 4, 0))
            .add(Dense::new("b", 4, 2, 1));
        assert_eq!(model.param_count(), 3 * 4 + 4 + 4 * 2 + 2);
        assert_eq!(model.len(), 2);
        assert!(!model.is_empty());
    }

    #[test]
    fn zero_grads_clears() {
        let mut model = Sequential::new();
        model.add(Dense::new("a", 2, 2, 0));
        let x = init::normal(&[4, 2], 0.0, 1.0, 1);
        let ctx = QuantCtx::fp32();
        let y = model.forward(&x, &ctx).unwrap();
        model.backward(&Tensor::ones(y.dims()), &ctx).unwrap();
        let g1: f32 = model.grad_max_abs().iter().map(|(_, g)| g).sum();
        assert!(g1 > 0.0);
        model.zero_grads();
        let g2: f32 = model.grad_max_abs().iter().map(|(_, g)| g).sum();
        assert_eq!(g2, 0.0);
    }

    #[test]
    fn grad_stats_report_layer_names() {
        let mut model = Sequential::new();
        model.add(Dense::new("first", 2, 2, 0)).add(Relu::new());
        let x = init::normal(&[2, 2], 0.0, 1.0, 1);
        let ctx = QuantCtx::fp32();
        let y = model.forward(&x, &ctx).unwrap();
        model.backward(&Tensor::ones(y.dims()), &ctx).unwrap();
        let stats = model.grad_max_abs();
        assert_eq!(stats.len(), 1); // relu has no params
        assert_eq!(stats[0].0, "first");
    }

    #[test]
    fn display() {
        let model = Sequential::new();
        assert_eq!(model.to_string(), "Sequential[0 layers]");
    }
}
