//! Single-head self-attention block with mean pooling, the small-scale
//! stand-in for the paper's Transformer benchmark in accuracy experiments.
//!
//! Input layout is `[B, T, D]`; the block computes Q/K/V projections,
//! scaled-dot-product attention per sample, an output projection, and mean
//! pooling over time, yielding `[B, D]` for a classification head. All
//! projections run through the quantization context like every other
//! layer's compute.

use crate::error::NnError;
use crate::layers::{Layer, QuantCtx};
use crate::param::Param;
use cq_tensor::ops;
use cq_tensor::{init, Tensor};

#[derive(Debug, Clone)]
struct AttnCache {
    xq: Tensor,        // [BT, D] quantized input
    q: Tensor,         // [BT, D]
    k: Tensor,         // [BT, D]
    v: Tensor,         // [BT, D]
    attn: Vec<Tensor>, // per-sample [T, T] softmax rows
    ctx_out: Tensor,   // [BT, D] attention context (before Wo)
    dims: (usize, usize, usize),
}

/// A self-attention + mean-pool block: `[B, T, D] → [B, D]`.
#[derive(Debug)]
pub struct SelfAttention {
    name: String,
    wq: Param,
    wk: Param,
    wv: Param,
    wo: Param,
    cache: Option<AttnCache>,
    cached_w: Option<[Tensor; 4]>,
}

impl SelfAttention {
    /// Creates a block with model dimension `d`.
    pub fn new(name: impl Into<String>, d: usize, seed: u64) -> Self {
        let mk = |s| Param::new(init::xavier_uniform(&[d, d], d, d, s));
        SelfAttention {
            name: name.into(),
            wq: mk(seed),
            wk: mk(seed.wrapping_add(1)),
            wv: mk(seed.wrapping_add(2)),
            wo: mk(seed.wrapping_add(3)),
            cache: None,
            cached_w: None,
        }
    }
}

fn softmax_rows(s: &mut Tensor) {
    let t = s.dims()[1];
    for row in s.data_mut().chunks_mut(t) {
        let max = row.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
}

impl Layer for SelfAttention {
    fn forward(&mut self, x: &Tensor, ctx: &QuantCtx) -> Result<Tensor, NnError> {
        if x.rank() != 3 {
            return Err(NnError::InvalidConfig(format!(
                "SelfAttention expects [B, T, D], got {:?}",
                x.dims()
            )));
        }
        let (b, t, d) = (x.dims()[0], x.dims()[1], x.dims()[2]);
        let flat = x.reshape(&[b * t, d])?;
        let xq = ctx.q(&flat);
        let w = [
            ctx.q(&self.wq.value),
            ctx.q(&self.wk.value),
            ctx.q(&self.wv.value),
            ctx.q(&self.wo.value),
        ];
        let be = ctx.backend;
        // Fused QKV projection: one [BT,D]×[D,3D] GEMM instead of three
        // [BT,D]×[D,D]. Concatenating weight *columns* leaves every output
        // column's reduction untouched, so q/k/v are value-identical to
        // the separate calls on both backends — while the packed GEMM gets
        // a 3× wider panel to amortize its A-packing over.
        let mut wqkv = Tensor::zeros(&[d, 3 * d]);
        for di in 0..d {
            let row = &mut wqkv.data_mut()[di * 3 * d..(di + 1) * 3 * d];
            row[..d].copy_from_slice(&w[0].data()[di * d..(di + 1) * d]);
            row[d..2 * d].copy_from_slice(&w[1].data()[di * d..(di + 1) * d]);
            row[2 * d..].copy_from_slice(&w[2].data()[di * d..(di + 1) * d]);
        }
        let qkv = ops::matmul_with(be, &xq, &wqkv)?;
        let mut q = Tensor::zeros(&[b * t, d]);
        let mut k = Tensor::zeros(&[b * t, d]);
        let mut v = Tensor::zeros(&[b * t, d]);
        for r in 0..b * t {
            let src = &qkv.data()[r * 3 * d..(r + 1) * 3 * d];
            q.data_mut()[r * d..(r + 1) * d].copy_from_slice(&src[..d]);
            k.data_mut()[r * d..(r + 1) * d].copy_from_slice(&src[d..2 * d]);
            v.data_mut()[r * d..(r + 1) * d].copy_from_slice(&src[2 * d..]);
        }
        let scale = 1.0 / (d as f32).sqrt();
        let mut attn = Vec::with_capacity(b);
        let mut ctx_out = Tensor::zeros(&[b * t, d]);
        for bi in 0..b {
            let qb = q.slice_flat(bi * t * d, t * d)?.reshape(&[t, d])?;
            let kb = k.slice_flat(bi * t * d, t * d)?.reshape(&[t, d])?;
            let vb = v.slice_flat(bi * t * d, t * d)?.reshape(&[t, d])?;
            let mut s = ops::matmul_bt_with(be, &qb, &kb)?.scale(scale);
            softmax_rows(&mut s);
            let ob = ops::matmul_with(be, &s, &vb)?;
            ctx_out.data_mut()[bi * t * d..(bi + 1) * t * d].copy_from_slice(ob.data());
            attn.push(s);
        }
        let y = ops::matmul_with(be, &ctx_out, &w[3])?;
        // Mean-pool over time.
        let mut pooled = Tensor::zeros(&[b, d]);
        for bi in 0..b {
            for ti in 0..t {
                for di in 0..d {
                    pooled.data_mut()[bi * d + di] += y.data()[(bi * t + ti) * d + di];
                }
            }
        }
        pooled.map_inplace(|v| v / t as f32);
        self.cache = Some(AttnCache {
            xq,
            q,
            k,
            v,
            attn,
            ctx_out,
            dims: (b, t, d),
        });
        self.cached_w = Some(w);
        Ok(pooled)
    }

    fn backward(&mut self, grad_out: &Tensor, ctx: &QuantCtx) -> Result<Tensor, NnError> {
        let cache = self.cache.as_ref().ok_or(NnError::NoForwardCache {
            layer: self.name.clone(),
        })?;
        let w = self.cached_w.as_ref().expect("cached");
        let (b, t, d) = cache.dims;
        let g_pool = ctx.q(grad_out);
        // Un-pool: each timestep receives grad/T.
        let mut gy = Tensor::zeros(&[b * t, d]);
        for bi in 0..b {
            for ti in 0..t {
                for di in 0..d {
                    gy.data_mut()[(bi * t + ti) * d + di] = g_pool.data()[bi * d + di] / t as f32;
                }
            }
        }
        // Wo backward.
        let be = ctx.backend;
        self.wo
            .grad
            .add_scaled(&ops::matmul_at_with(be, &cache.ctx_out, &gy)?, 1.0)?;
        let g_ctx = ops::matmul_bt_with(be, &gy, &w[3])?;
        // Attention backward per sample.
        let scale = 1.0 / (d as f32).sqrt();
        let mut gq = Tensor::zeros(&[b * t, d]);
        let mut gk = Tensor::zeros(&[b * t, d]);
        let mut gv = Tensor::zeros(&[b * t, d]);
        for bi in 0..b {
            let a = &cache.attn[bi]; // [T, T]
            let qb = cache.q.slice_flat(bi * t * d, t * d)?.reshape(&[t, d])?;
            let kb = cache.k.slice_flat(bi * t * d, t * d)?.reshape(&[t, d])?;
            let vb = cache.v.slice_flat(bi * t * d, t * d)?.reshape(&[t, d])?;
            let gob = g_ctx.slice_flat(bi * t * d, t * d)?.reshape(&[t, d])?;
            // dV = Aᵀ·dO ; dA = dO·Vᵀ.
            let gvb = ops::matmul_at_with(be, a, &gob)?;
            let mut ga = ops::matmul_bt_with(be, &gob, &vb)?;
            // Softmax backward row-wise: dS = A ∘ (dA − rowsum(dA ∘ A)).
            for ti in 0..t {
                let row_a = &a.data()[ti * t..(ti + 1) * t];
                let row_ga = &mut ga.data_mut()[ti * t..(ti + 1) * t];
                let dot: f32 = row_a.iter().zip(row_ga.iter()).map(|(&x, &y)| x * y).sum();
                for (gaj, &aj) in row_ga.iter_mut().zip(row_a) {
                    *gaj = aj * (*gaj - dot);
                }
            }
            let ga = ga.scale(scale);
            // dQ = dS·K ; dK = dSᵀ·Q.
            let gqb = ops::matmul_with(be, &ga, &kb)?;
            let gkb = ops::matmul_at_with(be, &ga, &qb)?;
            gq.data_mut()[bi * t * d..(bi + 1) * t * d].copy_from_slice(gqb.data());
            gk.data_mut()[bi * t * d..(bi + 1) * t * d].copy_from_slice(gkb.data());
            gv.data_mut()[bi * t * d..(bi + 1) * t * d].copy_from_slice(gvb.data());
        }
        // Projection weight grads: one fused [BT]-reduction GEMM over the
        // column-concatenated gq|gk|gv — per-column reductions (and thus
        // every gradient value) identical to three separate matmul_at
        // calls on both backends.
        let mut g_qkv = Tensor::zeros(&[b * t, 3 * d]);
        for r in 0..b * t {
            let dst = &mut g_qkv.data_mut()[r * 3 * d..(r + 1) * 3 * d];
            dst[..d].copy_from_slice(&gq.data()[r * d..(r + 1) * d]);
            dst[d..2 * d].copy_from_slice(&gk.data()[r * d..(r + 1) * d]);
            dst[2 * d..].copy_from_slice(&gv.data()[r * d..(r + 1) * d]);
        }
        let gw_qkv = ops::matmul_at_with(be, &cache.xq, &g_qkv)?; // [D, 3D]
        let mut gwq = Tensor::zeros(&[d, d]);
        let mut gwk = Tensor::zeros(&[d, d]);
        let mut gwv = Tensor::zeros(&[d, d]);
        for di in 0..d {
            let src = &gw_qkv.data()[di * 3 * d..(di + 1) * 3 * d];
            gwq.data_mut()[di * d..(di + 1) * d].copy_from_slice(&src[..d]);
            gwk.data_mut()[di * d..(di + 1) * d].copy_from_slice(&src[d..2 * d]);
            gwv.data_mut()[di * d..(di + 1) * d].copy_from_slice(&src[2 * d..]);
        }
        self.wq.grad.add_scaled(&gwq, 1.0)?;
        self.wk.grad.add_scaled(&gwk, 1.0)?;
        self.wv.grad.add_scaled(&gwv, 1.0)?;
        let mut gx = ops::matmul_bt_with(be, &gq, &w[0])?;
        gx.add_scaled(&ops::matmul_bt_with(be, &gk, &w[1])?, 1.0)?;
        gx.add_scaled(&ops::matmul_bt_with(be, &gv, &w[2])?, 1.0)?;
        Ok(gx.reshape(&[b, t, d])?)
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.wq, &mut self.wk, &mut self.wv, &mut self.wo]
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shapes() {
        let ctx = QuantCtx::fp32();
        let mut a = SelfAttention::new("attn", 8, 1);
        let x = init::normal(&[2, 5, 8], 0.0, 1.0, 2);
        let y = a.forward(&x, &ctx).unwrap();
        assert_eq!(y.dims(), &[2, 8]);
    }

    #[test]
    fn attention_rows_sum_to_one() {
        let ctx = QuantCtx::fp32();
        let mut a = SelfAttention::new("attn", 4, 3);
        let x = init::normal(&[1, 6, 4], 0.0, 1.0, 4);
        let _ = a.forward(&x, &ctx).unwrap();
        let cache = a.cache.as_ref().unwrap();
        for row in cache.attn[0].data().chunks(6) {
            let s: f32 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn gradients_match_finite_difference() {
        let ctx = QuantCtx::fp32();
        let mut a = SelfAttention::new("attn", 4, 5);
        let x = init::normal(&[2, 3, 4], 0.0, 0.5, 6);
        let y = a.forward(&x, &ctx).unwrap();
        let gout = Tensor::ones(y.dims());
        let gin = a.backward(&gout, &ctx).unwrap();
        assert_eq!(gin.dims(), x.dims());
        let eps = 1e-2;
        let mut x2 = x.clone();
        for idx in [0usize, 9, 23] {
            let orig = x2.data()[idx];
            x2.data_mut()[idx] = orig + eps;
            let lp = a.forward(&x2, &ctx).unwrap().sum();
            x2.data_mut()[idx] = orig - eps;
            let lm = a.forward(&x2, &ctx).unwrap().sum();
            x2.data_mut()[idx] = orig;
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - gin.data()[idx]).abs() < 0.02,
                "idx {idx}: fd {fd} analytic {}",
                gin.data()[idx]
            );
        }
        // Weight gradient spot-check on Wq.
        let analytic = {
            let mut a2 = SelfAttention::new("attn", 4, 5);
            let _ = a2.forward(&x, &ctx).unwrap();
            let _ = a2.backward(&gout, &ctx).unwrap();
            a2.params_mut()[0].grad.data()[0]
        };
        let orig = a.params_mut()[0].value.data()[0];
        a.params_mut()[0].value.data_mut()[0] = orig + eps;
        let lp = a.forward(&x, &ctx).unwrap().sum();
        a.params_mut()[0].value.data_mut()[0] = orig - eps;
        let lm = a.forward(&x, &ctx).unwrap().sum();
        a.params_mut()[0].value.data_mut()[0] = orig;
        let fd = (lp - lm) / (2.0 * eps);
        assert!((fd - analytic).abs() < 0.03, "fd {fd} analytic {analytic}");
    }

    #[test]
    fn rejects_bad_rank() {
        let ctx = QuantCtx::fp32();
        let mut a = SelfAttention::new("attn", 4, 5);
        assert!(a.forward(&Tensor::zeros(&[2, 4]), &ctx).is_err());
        assert!(a.backward(&Tensor::zeros(&[2, 4]), &ctx).is_err());
    }
}
