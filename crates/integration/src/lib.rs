//! # cq-integration — cross-crate integration tests
//!
//! This crate has no library content; its purpose is the integration
//! tests under the repository-level `tests/` directory (wired in via
//! `[[test]]` path entries), which exercise the whole stack: data →
//! quantization-aware training → compiled ISA programs on the functional
//! machine → NDP weight update → the paper's headline claims.
