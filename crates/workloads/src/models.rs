//! The six benchmark networks of the paper's Table VI, encoded layer by
//! layer with their standard dimensions.
//!
//! Pooling/activation/normalization layers contribute negligible MACs and
//! are folded into the adjacent compute layers' spatial dimensions.

use crate::layer::{conv, linear, Layer, LayerKind};
use crate::network::Network;

/// AlexNet on ImageNet, batch 32 (Krizhevsky 2012 dimensions, ungrouped).
pub fn alexnet() -> Network {
    Network::new(
        "AlexNet",
        "ImageNet",
        32,
        vec![
            conv("conv1", 3, 96, 11, 227, 55),
            conv("conv2", 96, 256, 5, 27, 27),
            conv("conv3", 256, 384, 3, 13, 13),
            conv("conv4", 384, 384, 3, 13, 13),
            conv("conv5", 384, 256, 3, 13, 13),
            linear("fc6", 9216, 4096),
            linear("fc7", 4096, 4096),
            linear("fc8", 4096, 1000),
        ],
    )
}

/// ResNet-18 on ImageNet, batch 32 (He et al. 2016).
pub fn resnet18() -> Network {
    let mut layers = vec![conv("conv1", 3, 64, 7, 224, 112)];
    // layer1: two basic blocks at 56x56, 64 channels.
    for b in 0..2 {
        layers.push(conv(&format!("layer1.{b}.conv1"), 64, 64, 3, 56, 56));
        layers.push(conv(&format!("layer1.{b}.conv2"), 64, 64, 3, 56, 56));
    }
    // layer2: downsample to 28x28, 128 channels (+1x1 shortcut).
    layers.push(conv("layer2.0.conv1", 64, 128, 3, 56, 28));
    layers.push(conv("layer2.0.conv2", 128, 128, 3, 28, 28));
    layers.push(conv("layer2.0.downsample", 64, 128, 1, 56, 28));
    layers.push(conv("layer2.1.conv1", 128, 128, 3, 28, 28));
    layers.push(conv("layer2.1.conv2", 128, 128, 3, 28, 28));
    // layer3: 14x14, 256 channels.
    layers.push(conv("layer3.0.conv1", 128, 256, 3, 28, 14));
    layers.push(conv("layer3.0.conv2", 256, 256, 3, 14, 14));
    layers.push(conv("layer3.0.downsample", 128, 256, 1, 28, 14));
    layers.push(conv("layer3.1.conv1", 256, 256, 3, 14, 14));
    layers.push(conv("layer3.1.conv2", 256, 256, 3, 14, 14));
    // layer4: 7x7, 512 channels.
    layers.push(conv("layer4.0.conv1", 256, 512, 3, 14, 7));
    layers.push(conv("layer4.0.conv2", 512, 512, 3, 7, 7));
    layers.push(conv("layer4.0.downsample", 256, 512, 1, 14, 7));
    layers.push(conv("layer4.1.conv1", 512, 512, 3, 7, 7));
    layers.push(conv("layer4.1.conv2", 512, 512, 3, 7, 7));
    layers.push(linear("fc", 512, 1000));
    Network::new("ResNet-18", "ImageNet", 32, layers)
}

/// One GoogLeNet inception module: six convolutions.
fn inception(
    name: &str,
    hw: usize,
    in_c: usize,
    c1x1: usize,
    c3red: usize,
    c3: usize,
    c5red: usize,
    c5: usize,
    pool_proj: usize,
) -> Vec<Layer> {
    vec![
        conv(&format!("{name}.1x1"), in_c, c1x1, 1, hw, hw),
        conv(&format!("{name}.3x3red"), in_c, c3red, 1, hw, hw),
        conv(&format!("{name}.3x3"), c3red, c3, 3, hw, hw),
        conv(&format!("{name}.5x5red"), in_c, c5red, 1, hw, hw),
        conv(&format!("{name}.5x5"), c5red, c5, 5, hw, hw),
        conv(&format!("{name}.pool_proj"), in_c, pool_proj, 1, hw, hw),
    ]
}

/// GoogLeNet on ImageNet, batch 32 (Szegedy et al. 2015, aux heads omitted).
pub fn googlenet() -> Network {
    let mut layers = vec![
        conv("conv1", 3, 64, 7, 224, 112),
        conv("conv2.red", 64, 64, 1, 56, 56),
        conv("conv2", 64, 192, 3, 56, 56),
    ];
    layers.extend(inception("3a", 28, 192, 64, 96, 128, 16, 32, 32));
    layers.extend(inception("3b", 28, 256, 128, 128, 192, 32, 96, 64));
    layers.extend(inception("4a", 14, 480, 192, 96, 208, 16, 48, 64));
    layers.extend(inception("4b", 14, 512, 160, 112, 224, 24, 64, 64));
    layers.extend(inception("4c", 14, 512, 128, 128, 256, 24, 64, 64));
    layers.extend(inception("4d", 14, 512, 112, 144, 288, 32, 64, 64));
    layers.extend(inception("4e", 14, 528, 256, 160, 320, 32, 128, 128));
    layers.extend(inception("5a", 7, 832, 256, 160, 320, 32, 128, 128));
    layers.extend(inception("5b", 7, 832, 384, 192, 384, 48, 128, 128));
    layers.push(linear("fc", 1024, 1000));
    Network::new("GoogLeNet", "ImageNet", 32, layers)
}

/// One SqueezeNet fire module: squeeze 1x1, expand 1x1 + expand 3x3.
fn fire(name: &str, hw: usize, in_c: usize, squeeze: usize, expand: usize) -> Vec<Layer> {
    vec![
        conv(&format!("{name}.squeeze"), in_c, squeeze, 1, hw, hw),
        conv(&format!("{name}.expand1x1"), squeeze, expand, 1, hw, hw),
        conv(&format!("{name}.expand3x3"), squeeze, expand, 3, hw, hw),
    ]
}

/// SqueezeNet v1.0 on ImageNet, batch 32 (Iandola et al. 2016).
pub fn squeezenet_v1() -> Network {
    let mut layers = vec![conv("conv1", 3, 96, 7, 224, 109)];
    layers.extend(fire("fire2", 54, 96, 16, 64));
    layers.extend(fire("fire3", 54, 128, 16, 64));
    layers.extend(fire("fire4", 54, 128, 32, 128));
    layers.extend(fire("fire5", 27, 256, 32, 128));
    layers.extend(fire("fire6", 27, 256, 48, 192));
    layers.extend(fire("fire7", 27, 384, 48, 192));
    layers.extend(fire("fire8", 27, 384, 64, 256));
    layers.extend(fire("fire9", 13, 512, 64, 256));
    layers.push(conv("conv10", 512, 1000, 1, 13, 13));
    Network::new("SqueezeNet", "ImageNet", 32, layers)
}

/// Transformer-Base on WMT17 (Vaswani et al. 2017: 6+6 layers, d_model 512,
/// d_ff 2048, 8 heads; 32 k vocab output projection).
///
/// Table VI's "batchsize 260" is a *token* batch: encoded here as
/// 10 sequences of 26 tokens. (A 260-sentence batch would make the
/// weight-update phase negligible, contradicting the paper's §VII.D
/// observation that Transformer is WU-heavy.)
pub fn transformer_base() -> Network {
    const SEQ: usize = 26;
    let mut layers = Vec::new();
    for i in 0..6 {
        layers.push(Layer::new(
            format!("encoder.{i}"),
            LayerKind::TransformerLayer {
                d_model: 512,
                d_ff: 2048,
                seq_len: SEQ,
                attn_projections: 4,
            },
        ));
    }
    for i in 0..6 {
        layers.push(Layer::new(
            format!("decoder.{i}"),
            LayerKind::TransformerLayer {
                d_model: 512,
                d_ff: 2048,
                seq_len: SEQ,
                attn_projections: 8,
            },
        ));
    }
    layers.push(Layer::new(
        "generator",
        LayerKind::TokenLinear {
            in_f: 512,
            out_f: 32_000,
            seq_len: SEQ,
        },
    ));
    Network::new("Transformer", "WMT17", 10, layers)
}

/// PTB-LSTM-Medium on PennTreeBank, batch 1000 (2×650 hidden, 35 steps,
/// 10 k vocab projection).
pub fn ptb_lstm_medium() -> Network {
    Network::new(
        "LSTM",
        "PennTreeBank",
        1000,
        vec![
            Layer::new(
                "lstm1",
                LayerKind::Lstm {
                    input: 650,
                    hidden: 650,
                    seq_len: 35,
                },
            ),
            Layer::new(
                "lstm2",
                LayerKind::Lstm {
                    input: 650,
                    hidden: 650,
                    seq_len: 35,
                },
            ),
            Layer::new(
                "decoder",
                LayerKind::TokenLinear {
                    in_f: 650,
                    out_f: 10_000,
                    seq_len: 35,
                },
            ),
        ],
    )
}

/// VGG-16 on ImageNet, batch 32 (Simonyan & Zisserman 2015). Not part of
/// Table VI, but the paper's §II.B motivation measures quantized-training
/// overheads on VGGNet (38% of compute time on V100), and FloatPIM's 5.2%
/// degradation example is VGG — so the workload model is provided.
pub fn vgg16() -> Network {
    let cfg: &[(usize, usize, usize)] = &[
        // (in_c, out_c, hw)
        (3, 64, 224),
        (64, 64, 224),
        (64, 128, 112),
        (128, 128, 112),
        (128, 256, 56),
        (256, 256, 56),
        (256, 256, 56),
        (256, 512, 28),
        (512, 512, 28),
        (512, 512, 28),
        (512, 512, 14),
        (512, 512, 14),
        (512, 512, 14),
    ];
    let mut layers: Vec<Layer> = cfg
        .iter()
        .enumerate()
        .map(|(i, &(ic, oc, hw))| conv(&format!("conv{}", i + 1), ic, oc, 3, hw, hw))
        .collect();
    layers.push(linear("fc6", 512 * 7 * 7, 4096));
    layers.push(linear("fc7", 4096, 4096));
    layers.push(linear("fc8", 4096, 1000));
    Network::new("VGG-16", "ImageNet", 32, layers)
}

/// All six benchmarks in the paper's Table VI order.
pub fn all_benchmarks() -> Vec<Network> {
    vec![
        alexnet(),
        resnet18(),
        googlenet(),
        squeezenet_v1(),
        transformer_base(),
        ptb_lstm_medium(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mweights(n: &Network) -> f64 {
        n.total_weights() as f64 / 1e6
    }

    #[test]
    fn alexnet_parameter_count() {
        // ~62.4M ungrouped (61M with the original grouped convs).
        let m = mweights(&alexnet());
        assert!((m - 62.0).abs() < 2.0, "AlexNet {m}M");
    }

    #[test]
    fn resnet18_parameter_count() {
        let m = mweights(&resnet18());
        assert!((m - 11.5).abs() < 0.5, "ResNet-18 {m}M");
    }

    #[test]
    fn googlenet_parameter_count() {
        let m = mweights(&googlenet());
        assert!((m - 6.5).abs() < 1.0, "GoogLeNet {m}M");
    }

    #[test]
    fn squeezenet_parameter_count() {
        let m = mweights(&squeezenet_v1());
        assert!((m - 1.24).abs() < 0.15, "SqueezeNet {m}M");
    }

    #[test]
    fn transformer_parameter_count() {
        let m = mweights(&transformer_base());
        assert!((m - 60.0).abs() < 5.0, "Transformer {m}M");
    }

    #[test]
    fn lstm_parameter_count() {
        let m = mweights(&ptb_lstm_medium());
        assert!((m - 13.3).abs() < 1.0, "LSTM {m}M");
    }

    #[test]
    fn alexnet_macs_per_image() {
        // ~0.7-1.1 GMACs per image.
        let n = alexnet();
        let g = n.forward_macs() as f64 / n.batch_size as f64 / 1e9;
        assert!(g > 0.6 && g < 1.3, "AlexNet {g} GMACs");
    }

    #[test]
    fn resnet18_macs_per_image() {
        let n = resnet18();
        let g = n.forward_macs() as f64 / n.batch_size as f64 / 1e9;
        assert!(g > 1.5 && g < 2.2, "ResNet-18 {g} GMACs");
    }

    #[test]
    fn squeezenet_is_light() {
        let n = squeezenet_v1();
        let g = n.forward_macs() as f64 / n.batch_size as f64 / 1e9;
        assert!(g < 1.0, "SqueezeNet {g} GMACs");
    }

    #[test]
    fn wu_intensity_ranking_matches_paper() {
        // Paper §VII.D: AlexNet and Transformer are WU-heavy; GoogLeNet and
        // SqueezeNet are WU-light.
        let heavy = [alexnet().wu_intensity(), transformer_base().wu_intensity()];
        let light = [googlenet().wu_intensity(), squeezenet_v1().wu_intensity()];
        for h in heavy {
            for l in light {
                assert!(h > l * 3.0, "expected heavy {h} >> light {l}");
            }
        }
    }

    #[test]
    fn vgg16_parameter_count() {
        // ~138M parameters, ~15.5 GMACs per image.
        let n = vgg16();
        let m = mweights(&n);
        assert!((m - 138.0).abs() < 4.0, "VGG-16 {m}M");
        let g = n.forward_macs() as f64 / n.batch_size as f64 / 1e9;
        assert!(g > 14.0 && g < 17.0, "VGG-16 {g} GMACs");
    }

    #[test]
    fn batch_sizes_match_table6() {
        let batches: Vec<usize> = all_benchmarks().iter().map(|n| n.batch_size).collect();
        assert_eq!(batches, vec![32, 32, 32, 32, 10, 1000]);
        // Transformer: 10 sequences x 26 tokens = Table VI's 260-token batch.
        let t = transformer_base();
        let tokens_per_sample = 26;
        assert_eq!(t.batch_size * tokens_per_sample, 260);
    }

    #[test]
    fn all_benchmarks_have_layers() {
        for n in all_benchmarks() {
            assert!(!n.layers.is_empty(), "{} has no layers", n.name);
            assert!(n.total_weights() > 0);
            assert!(n.forward_macs() > 0);
        }
    }
}
