//! # cq-workloads — benchmark network descriptions (paper Table VI)
//!
//! Layer-by-layer workload models of the six benchmarks the paper
//! evaluates: AlexNet, ResNet-18, GoogLeNet, SqueezeNet-V1 (ImageNet,
//! batch 32), Transformer-Base (WMT17, batch 260), and PTB-LSTM-Medium
//! (PennTreeBank, batch 1000).
//!
//! Each [`Layer`] knows its weight/activation element counts and the MAC
//! counts of the three training compute passes, which is everything the
//! cycle simulators need to schedule work and traffic.
//!
//! # Examples
//!
//! ```
//! use cq_workloads::models;
//!
//! let alexnet = models::alexnet();
//! // AlexNet is the most weight-heavy CNN in the suite (~62M).
//! assert!(alexnet.total_weights() > 60_000_000);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![allow(clippy::too_many_arguments)] // layer constructors take full dimension lists

pub mod layer;
pub mod models;
mod network;

pub use layer::{conv, linear, Layer, LayerKind, MatmulDims};
pub use network::Network;
