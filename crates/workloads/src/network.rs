//! Whole-network workload descriptions.

use crate::layer::Layer;
use std::fmt;

/// A benchmark network: its layers, dataset and minibatch size (Table VI).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Network {
    /// Network name ("AlexNet", ...).
    pub name: String,
    /// Dataset name ("ImageNet", ...).
    pub dataset: String,
    /// Minibatch size used in the paper's evaluation.
    pub batch_size: usize,
    /// Compute layers, in forward order (pooling/activation layers are
    /// folded into the producing layer's traffic and excluded here — their
    /// MAC contribution is negligible).
    pub layers: Vec<Layer>,
}

impl Network {
    /// Creates a network.
    pub fn new(
        name: impl Into<String>,
        dataset: impl Into<String>,
        batch_size: usize,
        layers: Vec<Layer>,
    ) -> Self {
        Network {
            name: name.into(),
            dataset: dataset.into(),
            batch_size,
            layers,
        }
    }

    /// Total weight count.
    pub fn total_weights(&self) -> u64 {
        self.layers.iter().map(|l| l.weight_count()).sum()
    }

    /// Total forward MACs for one minibatch.
    pub fn forward_macs(&self) -> u64 {
        self.layers
            .iter()
            .map(|l| l.forward_macs() * self.batch_size as u64)
            .sum()
    }

    /// Total MACs (FW + NG + WG) for one training minibatch.
    pub fn training_macs(&self) -> u64 {
        self.layers
            .iter()
            .map(|l| {
                (l.forward_macs() + l.neuron_grad_macs() + l.weight_grad_macs())
                    * self.batch_size as u64
            })
            .sum()
    }

    /// Total activation elements (inputs + outputs) per minibatch.
    pub fn activation_elems(&self) -> u64 {
        self.layers
            .iter()
            .map(|l| (l.input_count() + l.output_count()) * self.batch_size as u64)
            .sum()
    }

    /// Ratio of weight-update work to total compute work: networks with
    /// many weights relative to MACs (AlexNet, Transformer) are WU-heavy,
    /// the paper's motivation for the NDP engine.
    pub fn wu_intensity(&self) -> f64 {
        self.total_weights() as f64 / self.training_macs().max(1) as f64
    }
}

impl fmt::Display for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}, batch {}): {} layers, {:.1}M weights, {:.2}G training MACs/batch",
            self.name,
            self.dataset,
            self.batch_size,
            self.layers.len(),
            self.total_weights() as f64 / 1e6,
            self.training_macs() as f64 / 1e9,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{conv, linear};

    fn tiny() -> Network {
        Network::new(
            "Tiny",
            "Synthetic",
            4,
            vec![conv("c1", 3, 8, 3, 8, 8), linear("fc", 512, 10)],
        )
    }

    #[test]
    fn totals() {
        let n = tiny();
        assert_eq!(n.total_weights(), 3 * 8 * 9 + 512 * 10);
        let fw = n.forward_macs();
        assert_eq!(fw, (3 * 8 * 9 * 64 + 512 * 10) as u64 * 4);
        assert_eq!(n.training_macs(), fw * 3);
    }

    #[test]
    fn wu_intensity_ordering() {
        // A pure-FC net is far more WU-intense than a conv net of equal MACs.
        let fc_net = Network::new("FC", "S", 1, vec![linear("fc", 1024, 1024)]);
        let conv_net = Network::new("Conv", "S", 1, vec![conv("c", 16, 16, 3, 64, 64)]);
        assert!(fc_net.wu_intensity() > conv_net.wu_intensity() * 100.0);
    }

    #[test]
    fn display_contains_stats() {
        let s = tiny().to_string();
        assert!(s.contains("Tiny"));
        assert!(s.contains("layers"));
    }
}
