//! Layer descriptions and work accounting.
//!
//! A [`Layer`] records the tensor dimensions of one network layer; from
//! those it derives the quantities every simulator needs: multiply-
//! accumulate counts for the three compute passes (FW/NG/WG), element
//! counts for inputs/weights/outputs, and the weight-update footprint.

use std::fmt;

/// The kind of a network layer, with its dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LayerKind {
    /// 2-D convolution: `in_c × in_h × in_w` inputs, `out_c` filters of
    /// `kh × kw`, producing `out_c × out_h × out_w`.
    Conv2d {
        /// Input channels.
        in_c: usize,
        /// Output channels.
        out_c: usize,
        /// Kernel height.
        kh: usize,
        /// Kernel width.
        kw: usize,
        /// Input spatial height.
        in_h: usize,
        /// Input spatial width.
        in_w: usize,
        /// Output spatial height.
        out_h: usize,
        /// Output spatial width.
        out_w: usize,
    },
    /// Fully-connected layer `in_f → out_f`.
    Linear {
        /// Input features.
        in_f: usize,
        /// Output features.
        out_f: usize,
    },
    /// A linear projection applied independently to every token of a
    /// sequence (e.g. the vocabulary softmax projection of language
    /// models): weights are shared, MACs scale with `seq_len`.
    TokenLinear {
        /// Input features.
        in_f: usize,
        /// Output features.
        out_f: usize,
        /// Tokens per sample.
        seq_len: usize,
    },
    /// An LSTM stack: `layers` layers of hidden size `hidden` unrolled over
    /// `seq_len` timesteps (input size = `input`).
    Lstm {
        /// Input feature size.
        input: usize,
        /// Hidden state size.
        hidden: usize,
        /// Sequence length (timesteps).
        seq_len: usize,
    },
    /// Scaled-dot-product attention projections + FFN of one transformer
    /// layer over a sequence.
    TransformerLayer {
        /// Model dimension.
        d_model: usize,
        /// Feed-forward inner dimension.
        d_ff: usize,
        /// Sequence length.
        seq_len: usize,
        /// Number of attention matmuls (4 for self-attention only,
        /// 8 when a cross-attention block is present).
        attn_projections: usize,
    },
}

/// A named layer of a network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Layer {
    /// Layer name ("conv1", "fc6", "inception3a.1x1", ...).
    pub name: String,
    /// Dimensions.
    pub kind: LayerKind,
}

impl Layer {
    /// Creates a layer.
    pub fn new(name: impl Into<String>, kind: LayerKind) -> Self {
        Layer {
            name: name.into(),
            kind,
        }
    }

    /// Number of synaptic weights.
    pub fn weight_count(&self) -> u64 {
        match self.kind {
            LayerKind::Conv2d {
                in_c,
                out_c,
                kh,
                kw,
                ..
            } => (in_c * out_c * kh * kw) as u64,
            LayerKind::Linear { in_f, out_f } => (in_f * out_f) as u64,
            LayerKind::TokenLinear { in_f, out_f, .. } => (in_f * out_f) as u64,
            // 4 gates, input + recurrent weights.
            LayerKind::Lstm { input, hidden, .. } => (4 * hidden * (input + hidden)) as u64,
            LayerKind::TransformerLayer {
                d_model,
                d_ff,
                attn_projections,
                ..
            } => (attn_projections * d_model * d_model + 2 * d_model * d_ff) as u64,
        }
    }

    /// Input activation elements for one sample.
    pub fn input_count(&self) -> u64 {
        match self.kind {
            LayerKind::Conv2d {
                in_c, in_h, in_w, ..
            } => (in_c * in_h * in_w) as u64,
            LayerKind::Linear { in_f, .. } => in_f as u64,
            LayerKind::TokenLinear { in_f, seq_len, .. } => (in_f * seq_len) as u64,
            LayerKind::Lstm { input, seq_len, .. } => (input * seq_len) as u64,
            LayerKind::TransformerLayer {
                d_model, seq_len, ..
            } => (d_model * seq_len) as u64,
        }
    }

    /// Output activation elements for one sample.
    pub fn output_count(&self) -> u64 {
        match self.kind {
            LayerKind::Conv2d {
                out_c,
                out_h,
                out_w,
                ..
            } => (out_c * out_h * out_w) as u64,
            LayerKind::Linear { out_f, .. } => out_f as u64,
            LayerKind::TokenLinear { out_f, seq_len, .. } => (out_f * seq_len) as u64,
            LayerKind::Lstm {
                hidden, seq_len, ..
            } => (hidden * seq_len) as u64,
            LayerKind::TransformerLayer {
                d_model, seq_len, ..
            } => (d_model * seq_len) as u64,
        }
    }

    /// Multiply-accumulates of the forward pass for one sample.
    pub fn forward_macs(&self) -> u64 {
        match self.kind {
            LayerKind::Conv2d {
                in_c,
                out_c,
                kh,
                kw,
                out_h,
                out_w,
                ..
            } => (in_c * out_c * kh * kw * out_h * out_w) as u64,
            LayerKind::Linear { in_f, out_f } => (in_f * out_f) as u64,
            LayerKind::TokenLinear {
                in_f,
                out_f,
                seq_len,
            } => (seq_len * in_f * out_f) as u64,
            LayerKind::Lstm {
                input,
                hidden,
                seq_len,
            } => (seq_len * 4 * hidden * (input + hidden)) as u64,
            LayerKind::TransformerLayer {
                d_model,
                d_ff,
                seq_len,
                attn_projections,
            } => {
                // Projections + FFN matmuls plus the seq×seq attention
                // score/context products.
                let proj = seq_len * (attn_projections * d_model * d_model + 2 * d_model * d_ff);
                let attn = 2 * seq_len * seq_len * d_model;
                (proj + attn) as u64
            }
        }
    }

    /// MACs of the neuron-gradient pass (≈ forward for dense layers).
    pub fn neuron_grad_macs(&self) -> u64 {
        self.forward_macs()
    }

    /// MACs of the weight-gradient pass (≈ forward for dense layers).
    pub fn weight_grad_macs(&self) -> u64 {
        self.forward_macs()
    }
}

/// Matrix-multiply dimensions `m×k · k×n` (one PE-array work unit).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatmulDims {
    /// Output rows.
    pub m: u64,
    /// Output columns.
    pub n: u64,
    /// Inner (reduction) dimension.
    pub k: u64,
    /// How many times this matmul repeats *serially* (timestep
    /// dependencies: LSTM steps cannot overlap on one array).
    pub serial_repeats: u64,
}

impl MatmulDims {
    /// Total MACs of all repeats.
    pub fn macs(&self) -> u64 {
        self.m * self.n * self.k * self.serial_repeats
    }
}

impl Layer {
    /// Decomposes the forward pass into matrix multiplies for a minibatch
    /// of `batch` samples — the form the PE-array models consume. The
    /// backward passes reuse the same shapes (transposed operands have
    /// identical tiling cost).
    pub fn as_matmuls(&self, batch: usize) -> Vec<MatmulDims> {
        let b = batch as u64;
        match self.kind {
            LayerKind::Conv2d {
                in_c,
                out_c,
                kh,
                kw,
                out_h,
                out_w,
                ..
            } => vec![MatmulDims {
                m: b * (out_h * out_w) as u64,
                n: out_c as u64,
                k: (in_c * kh * kw) as u64,
                serial_repeats: 1,
            }],
            LayerKind::Linear { in_f, out_f } => vec![MatmulDims {
                m: b,
                n: out_f as u64,
                k: in_f as u64,
                serial_repeats: 1,
            }],
            LayerKind::TokenLinear {
                in_f,
                out_f,
                seq_len,
            } => vec![MatmulDims {
                m: b * seq_len as u64,
                n: out_f as u64,
                k: in_f as u64,
                serial_repeats: 1,
            }],
            LayerKind::Lstm {
                input,
                hidden,
                seq_len,
            } => vec![MatmulDims {
                m: b,
                n: 4 * hidden as u64,
                k: (input + hidden) as u64,
                serial_repeats: seq_len as u64,
            }],
            LayerKind::TransformerLayer {
                d_model,
                d_ff,
                seq_len,
                attn_projections,
            } => vec![
                // Q/K/V/output (+cross) projections and the FFN, batched
                // over all tokens.
                MatmulDims {
                    m: b * seq_len as u64,
                    n: (attn_projections * d_model + 2 * d_ff) as u64,
                    k: d_model as u64,
                    serial_repeats: 1,
                },
                // Attention scores and context: per-sample seq×seq
                // products, batch-concatenated along m (batch-parallel);
                // the score and context stages serialize (2 repeats).
                MatmulDims {
                    m: b * seq_len as u64,
                    n: seq_len as u64,
                    k: d_model as u64,
                    serial_repeats: 2,
                },
            ],
        }
    }
}

impl fmt::Display for Layer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{} weights, {} MACs/sample]",
            self.name,
            self.weight_count(),
            self.forward_macs()
        )
    }
}

/// Convenience constructor for square-kernel convolutions with explicit
/// output size.
pub fn conv(name: &str, in_c: usize, out_c: usize, k: usize, in_hw: usize, out_hw: usize) -> Layer {
    Layer::new(
        name,
        LayerKind::Conv2d {
            in_c,
            out_c,
            kh: k,
            kw: k,
            in_h: in_hw,
            in_w: in_hw,
            out_h: out_hw,
            out_w: out_hw,
        },
    )
}

/// Convenience constructor for fully-connected layers.
pub fn linear(name: &str, in_f: usize, out_f: usize) -> Layer {
    Layer::new(name, LayerKind::Linear { in_f, out_f })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_counts() {
        // AlexNet conv1: 3->96, 11x11, 227 -> 55.
        let l = conv("conv1", 3, 96, 11, 227, 55);
        assert_eq!(l.weight_count(), 3 * 96 * 11 * 11);
        assert_eq!(l.forward_macs(), (3 * 96 * 11 * 11 * 55 * 55) as u64);
        assert_eq!(l.input_count(), 3 * 227 * 227);
        assert_eq!(l.output_count(), 96 * 55 * 55);
    }

    #[test]
    fn linear_counts() {
        let l = linear("fc6", 9216, 4096);
        assert_eq!(l.weight_count(), 9216 * 4096);
        assert_eq!(l.forward_macs(), 9216 * 4096);
        assert_eq!(l.input_count(), 9216);
        assert_eq!(l.output_count(), 4096);
    }

    #[test]
    fn lstm_counts() {
        let l = Layer::new(
            "lstm",
            LayerKind::Lstm {
                input: 650,
                hidden: 650,
                seq_len: 35,
            },
        );
        assert_eq!(l.weight_count(), 4 * 650 * 1300);
        assert_eq!(l.forward_macs(), 35 * 4 * 650 * 1300);
    }

    #[test]
    fn transformer_counts() {
        let l = Layer::new(
            "enc1",
            LayerKind::TransformerLayer {
                d_model: 512,
                d_ff: 2048,
                seq_len: 25,
                attn_projections: 4,
            },
        );
        assert_eq!(l.weight_count(), 4 * 512 * 512 + 2 * 512 * 2048);
        assert!(l.forward_macs() > l.weight_count() * 20);
    }

    #[test]
    fn backward_macs_mirror_forward() {
        let l = conv("c", 16, 32, 3, 28, 28);
        assert_eq!(l.neuron_grad_macs(), l.forward_macs());
        assert_eq!(l.weight_grad_macs(), l.forward_macs());
    }

    #[test]
    fn display_has_name() {
        assert!(linear("fc", 10, 10).to_string().contains("fc"));
    }
}
