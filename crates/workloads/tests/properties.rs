//! Property tests tying the workload models' accounting together.

use cq_workloads::{conv, linear, models, Layer, LayerKind};
use proptest::prelude::*;

proptest! {
    /// For conv and linear layers, the matmul decomposition's MAC count
    /// equals the layer's own forward-MAC accounting (times batch).
    #[test]
    fn matmul_macs_match_forward_macs(
        in_c in 1usize..64,
        out_c in 1usize..64,
        k in 1usize..6,
        hw in 6usize..32,
        batch in 1usize..8,
    ) {
        let out_hw = hw - k + 1;
        let layer = conv("c", in_c, out_c, k, hw, out_hw);
        let decomposed: u64 = layer
            .as_matmuls(batch)
            .iter()
            .map(|mm| mm.macs())
            .sum();
        prop_assert_eq!(decomposed, layer.forward_macs() * batch as u64);
    }

    #[test]
    fn linear_matmul_macs_match(in_f in 1usize..512, out_f in 1usize..512, batch in 1usize..16) {
        let layer = linear("fc", in_f, out_f);
        let decomposed: u64 = layer.as_matmuls(batch).iter().map(|mm| mm.macs()).sum();
        prop_assert_eq!(decomposed, layer.forward_macs() * batch as u64);
    }

    /// LSTM decomposition: gate matmul repeated per timestep.
    #[test]
    fn lstm_matmul_macs_match(input in 1usize..128, hidden in 1usize..128, t in 1usize..40, batch in 1usize..8) {
        let layer = Layer::new(
            "lstm",
            LayerKind::Lstm {
                input,
                hidden,
                seq_len: t,
            },
        );
        let mms = layer.as_matmuls(batch);
        prop_assert_eq!(mms.len(), 1);
        prop_assert_eq!(mms[0].serial_repeats, t as u64);
        let decomposed: u64 = mms.iter().map(|mm| mm.macs()).sum();
        prop_assert_eq!(decomposed, layer.forward_macs() * batch as u64);
    }

    /// Weight counts never depend on the batch; activation counts scale
    /// linearly with it.
    #[test]
    fn batch_scaling_invariants(in_f in 1usize..128, out_f in 1usize..128) {
        let layer = linear("fc", in_f, out_f);
        prop_assert_eq!(layer.weight_count(), (in_f * out_f) as u64);
        prop_assert_eq!(layer.input_count() * 3, (in_f * 3) as u64);
    }
}

#[test]
fn transformer_decomposition_covers_macs() {
    // The transformer layer's two-matmul decomposition reproduces the
    // layer's own accounting exactly.
    for net in [models::transformer_base()] {
        for layer in &net.layers {
            let decomposed: u64 = layer
                .as_matmuls(net.batch_size)
                .iter()
                .map(|mm| mm.macs())
                .sum();
            let direct = layer.forward_macs() * net.batch_size as u64;
            assert_eq!(decomposed, direct, "{}", layer.name);
        }
    }
}

#[test]
fn all_benchmarks_decompose() {
    for net in models::all_benchmarks() {
        for layer in &net.layers {
            let mms = layer.as_matmuls(net.batch_size);
            assert!(!mms.is_empty(), "{}: no matmuls", layer.name);
            for mm in &mms {
                assert!(mm.m > 0 && mm.n > 0 && mm.k > 0 && mm.serial_repeats > 0);
            }
        }
    }
}
