//! Shared profiling bootstrap for the experiment binaries.
//!
//! Every binary's first line is
//! `let _profile = cq_experiments::profiling::init_for_bin();`, which
//! turns on `cq-obs` tracing when either a `--profile <path>` flag or
//! the `CQ_TRACE=<path>` environment variable is present (the flag
//! wins). A `.jsonl` path selects the line-oriented sink; any other
//! path gets a Chrome `trace_event` file loadable in Perfetto. With
//! neither source set, tracing stays off and instrumented code costs
//! one atomic load per probe.

/// RAII guard: flushes and finalizes the installed trace sink on drop,
/// so binaries can't exit with a truncated profile.
#[derive(Debug)]
pub struct ProfileGuard {
    path: Option<String>,
}

impl ProfileGuard {
    /// The trace path when profiling is active.
    pub fn path(&self) -> Option<&str> {
        self.path.as_deref()
    }
}

impl Drop for ProfileGuard {
    fn drop(&mut self) {
        cq_obs::finish();
        if let Some(p) = &self.path {
            eprintln!("[cq-obs] trace written to {p}");
        }
    }
}

/// Extracts a `--profile <path>` / `--profile=<path>` flag from raw
/// command-line arguments. Pure so it can be unit tested.
fn profile_flag<I: IntoIterator<Item = String>>(args: I) -> Option<String> {
    let mut args = args.into_iter();
    let mut path = None;
    while let Some(a) = args.next() {
        if a == "--profile" {
            path = args.next();
        } else if let Some(p) = a.strip_prefix("--profile=") {
            path = Some(p.to_string());
        }
    }
    path
}

/// Installs the trace sink selected by `--profile` or `CQ_TRACE` (if
/// any) and returns the guard that finalizes it. An unwritable path
/// aborts — a requested profile that silently produces nothing is the
/// exact failure mode this subsystem exists to kill.
///
/// Also validates `CQ_BACKEND`, `CQ_QUANT_PATH`, `CQ_HWCACHE`,
/// `CQ_HWCACHE_CAP`, `CQ_SIMD`, `CQ_TUNE_FILE` and `CQ_MAPPING`
/// eagerly: pure-simulation binaries never dispatch a dense kernel, a
/// sweep might be entirely cache-hit, and a quantized forward only
/// reads the path knob at the first layer, so without this a typo like
/// `CQ_BACKEND=bogus`, `CQ_QUANT_PATH=int7`, `CQ_HWCACHE=offf`,
/// `CQ_HWCACHE_CAP=-3`, `CQ_SIMD=avx512`, an unreadable/mismatched
/// tune profile or a malformed mapping table would pass unremarked —
/// and an `fp32`-vs-`int8` A/B accuracy run would silently compare a
/// path against itself.
pub fn init_for_bin() -> ProfileGuard {
    let _ = cq_tensor::default_backend();
    let _ = cq_nn::env_quant_path();
    let _ = cq_sim::hwcache_enabled();
    let _ = cq_sim::hwcache_cap();
    let _ = cq_tensor::fast_path_info();
    let _ = cq_sim::mapping::env_policy();
    let path = profile_flag(std::env::args().skip(1));
    match path {
        Some(p) => {
            cq_obs::init_to_path(&p)
                .unwrap_or_else(|e| panic!("cannot open --profile path {p:?}: {e}"));
            ProfileGuard { path: Some(p) }
        }
        None => {
            let p = cq_obs::init_from_env()
                .unwrap_or_else(|e| panic!("cannot open CQ_TRACE path: {e}"));
            ProfileGuard { path: p }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    /// The eager-validation contract for the quant-path knob: the same
    /// check `init_for_bin` runs must accept unset/empty/valid values and
    /// reject typos with a diagnostic naming the variable. Runs through
    /// `validate_env_quant_path` (no process-wide cache) so the env
    /// round-trip is testable without spawning a binary.
    #[test]
    fn quant_path_env_validation_round_trip() {
        let prev = std::env::var("CQ_QUANT_PATH").ok();
        for (raw, ok) in [
            (None, true),
            (Some(""), true),
            (Some("fp32"), true),
            (Some("int8"), true),
            (Some(" INT8 "), true),
            (Some("int7"), false),
            (Some("integer"), false),
        ] {
            match raw {
                Some(v) => std::env::set_var("CQ_QUANT_PATH", v),
                None => std::env::remove_var("CQ_QUANT_PATH"),
            }
            let got = cq_nn::validate_env_quant_path();
            if ok {
                assert!(got.is_ok(), "{raw:?} should validate: {got:?}");
            } else {
                let err = got.unwrap_err();
                assert!(err.contains("CQ_QUANT_PATH"), "{err}");
                assert!(err.contains(raw.unwrap()), "{err}");
            }
        }
        match prev {
            Some(v) => std::env::set_var("CQ_QUANT_PATH", v),
            None => std::env::remove_var("CQ_QUANT_PATH"),
        }
    }

    #[test]
    fn profile_flag_forms() {
        assert_eq!(profile_flag(strs(&[])), None);
        assert_eq!(profile_flag(strs(&["--quick"])), None);
        assert_eq!(
            profile_flag(strs(&["--profile", "out.json"])),
            Some("out.json".into())
        );
        assert_eq!(
            profile_flag(strs(&["--quick", "--profile=t.jsonl"])),
            Some("t.jsonl".into())
        );
        // Last occurrence wins; a dangling flag yields nothing usable.
        assert_eq!(
            profile_flag(strs(&["--profile=a", "--profile", "b"])),
            Some("b".into())
        );
        assert_eq!(profile_flag(strs(&["--profile"])), None);
    }
}
