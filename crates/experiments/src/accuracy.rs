//! Training-accuracy experiments (Table VIII, §III.B, Fig. 2).
//!
//! The paper trains the six benchmarks on ImageNet/WMT17/PennTreeBank;
//! this reproduction trains small proxies of the same architectural
//! families on synthetic datasets (see DESIGN.md's substitution table) —
//! the accuracy claims are *relative* (quantized-vs-FP32 gap ≤0.4%, HQT
//! matching or beating the layer-wise algorithms), which is what these
//! experiments measure.

use cq_data::Dataset;
use cq_faults::ChaosPlan;
use cq_nn::{
    Adam, Conv2d, Dense, Flatten, Lstm, MaxPool2d, QuantCtx, QuantPath, Relu, SelfAttention,
    Sequential,
};
use cq_par::Pool;
use cq_quant::TrainingQuantizer;
use cq_resil::{JournaledOutcome, RetryPolicy, SweepJournal};
use cq_sim::report::TextTable;

/// A small-scale stand-in for one paper benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProxyTask {
    /// Shallow wide CNN (AlexNet family).
    AlexNet,
    /// Deeper CNN (ResNet-18 family).
    ResNet18,
    /// Multi-branch-width CNN (GoogLeNet family).
    GoogLeNet,
    /// Narrow CNN (SqueezeNet family).
    SqueezeNet,
    /// Self-attention pair matcher (Transformer family).
    Transformer,
    /// Recurrent majority counter (LSTM family).
    Lstm,
}

impl ProxyTask {
    /// All proxies in Table VIII order.
    pub const ALL: [ProxyTask; 6] = [
        ProxyTask::AlexNet,
        ProxyTask::ResNet18,
        ProxyTask::GoogLeNet,
        ProxyTask::SqueezeNet,
        ProxyTask::Transformer,
        ProxyTask::Lstm,
    ];

    /// Display name (paper benchmark it stands in for).
    pub fn name(&self) -> &'static str {
        match self {
            ProxyTask::AlexNet => "AlexNet",
            ProxyTask::ResNet18 => "ResNet-18",
            ProxyTask::GoogLeNet => "GoogLeNet",
            ProxyTask::SqueezeNet => "SqueezeNet",
            ProxyTask::Transformer => "Transformer",
            ProxyTask::Lstm => "LSTM",
        }
    }

    /// Builds the model, train set and test set for this proxy.
    pub fn build(&self, seed: u64) -> (Sequential, Dataset, Dataset) {
        let mut model = Sequential::new();
        match self {
            ProxyTask::AlexNet => {
                model
                    .add(Conv2d::new("conv1", 1, 8, 3, 1, 1, seed))
                    .add(Relu::new())
                    .add(MaxPool2d::new(2))
                    .add(Flatten::new())
                    .add(Dense::new("fc", 8 * 4 * 4, 4, seed + 1));
                (
                    model,
                    cq_data::textures(160, 1, 8, 4, 0.25, seed + 10),
                    cq_data::textures(160, 1, 8, 4, 0.25, seed + 11),
                )
            }
            ProxyTask::ResNet18 => {
                model
                    .add(Conv2d::new("conv1", 1, 8, 3, 1, 1, seed))
                    .add(Relu::new())
                    .add(Conv2d::new("conv2", 8, 8, 3, 1, 1, seed + 1))
                    .add(Relu::new())
                    .add(MaxPool2d::new(2))
                    .add(Flatten::new())
                    .add(Dense::new("fc", 8 * 4 * 4, 4, seed + 2));
                (
                    model,
                    cq_data::textures(160, 1, 8, 4, 0.25, seed + 10),
                    cq_data::textures(160, 1, 8, 4, 0.25, seed + 11),
                )
            }
            ProxyTask::GoogLeNet => {
                model
                    .add(Conv2d::new("conv1", 1, 12, 3, 1, 1, seed))
                    .add(Relu::new())
                    .add(MaxPool2d::new(2))
                    .add(Flatten::new())
                    .add(Dense::new("fc1", 12 * 4 * 4, 16, seed + 1))
                    .add(Relu::new())
                    .add(Dense::new("fc2", 16, 4, seed + 2));
                (
                    model,
                    cq_data::textures(160, 1, 8, 4, 0.25, seed + 10),
                    cq_data::textures(160, 1, 8, 4, 0.25, seed + 11),
                )
            }
            ProxyTask::SqueezeNet => {
                model
                    .add(Conv2d::new("squeeze", 1, 4, 1, 1, 0, seed))
                    .add(Relu::new())
                    .add(Conv2d::new("expand", 4, 8, 3, 1, 1, seed + 1))
                    .add(Relu::new())
                    .add(MaxPool2d::new(2))
                    .add(Flatten::new())
                    .add(Dense::new("fc", 8 * 4 * 4, 4, seed + 2));
                (
                    model,
                    cq_data::textures(160, 1, 8, 4, 0.25, seed + 10),
                    cq_data::textures(160, 1, 8, 4, 0.25, seed + 11),
                )
            }
            ProxyTask::Transformer => {
                model
                    .add(SelfAttention::new("attn", 12, seed))
                    .add(Dense::new("cls", 12, 4, seed + 1));
                // Needle retrieval: same pattern dictionary (seed+10) for
                // train and test, fresh noise and placements.
                (
                    model,
                    cq_data::sequence_needle(128, 6, 12, 4, seed, seed + 10),
                    cq_data::sequence_needle(128, 6, 12, 4, seed, seed + 11),
                )
            }
            ProxyTask::Lstm => {
                model
                    .add(Lstm::new("lstm", 5, 16, seed))
                    .add(Dense::new("cls", 16, 5, seed + 1));
                (
                    model,
                    cq_data::sequence_majority(128, 9, 5, seed + 10),
                    cq_data::sequence_majority(128, 9, 5, seed + 11),
                )
            }
        }
    }

    /// Training epochs needed for this proxy to converge.
    pub fn epochs(&self) -> usize {
        match self {
            ProxyTask::Transformer => 200,
            ProxyTask::Lstm => 80,
            _ => 60,
        }
    }
}

/// Trains one proxy under one quantizer; returns held-out accuracy.
/// The compute path follows `CQ_QUANT_PATH` (the [`QuantCtx::new`]
/// default); use [`train_proxy_on`] to pin it explicitly.
pub fn train_proxy(task: ProxyTask, quantizer: &TrainingQuantizer, seed: u64) -> f64 {
    train_proxy_on(task, quantizer, seed, cq_nn::env_quant_path()).0
}

/// Trains one proxy under one quantizer with an explicit compute path
/// (ignoring `CQ_QUANT_PATH`, which is process-cached and therefore
/// useless for a same-process A/B). Returns the held-out accuracy and
/// the integer path's pow2-ladder hit rate — `None` when no layer
/// forward consulted the ladder (the `Fp32` path, or a model with no
/// Dense/Conv2d layers).
pub fn train_proxy_on(
    task: ProxyTask,
    quantizer: &TrainingQuantizer,
    seed: u64,
    path: QuantPath,
) -> (f64, Option<f64>) {
    let (mut model, train, test) = task.build(seed);
    let ctx = QuantCtx::new(quantizer.clone()).with_path(path);
    let mut opt = Adam::with_defaults(3e-3);
    for _ in 0..task.epochs() {
        model
            .train_step(&train.x, &train.labels, &mut opt, &ctx)
            .expect("training step");
    }
    let acc = model
        .evaluate(&test.x, &test.labels, &ctx)
        .expect("evaluation");
    (acc, ctx.int_stats().hit_rate())
}

/// One row of the integer-path accuracy A/B: the same HQT quantizer
/// trained through the fake-quantize f32 path and through the
/// dequantization-free int8 path.
#[derive(Debug, Clone)]
pub struct IntPathRow {
    /// Benchmark name.
    pub model: &'static str,
    /// Held-out accuracy, f32 fake-quantize path.
    pub fp32_path: f64,
    /// Held-out accuracy, integer-domain path.
    pub int8_path: f64,
    /// Fraction of layer forwards that stayed in the integer domain.
    pub ladder_hit_rate: Option<f64>,
}

impl IntPathRow {
    /// Accuracy gap in percentage points (positive = int path worse).
    pub fn gap_pp(&self) -> f64 {
        (self.fp32_path - self.int8_path) * 100.0
    }
}

/// Runs the per-network accuracy-gap sweep for the integer-domain
/// training path: every proxy trained under `zhang2020_hqt` through
/// both compute paths with identical seeds, fanned out over the worker
/// pool like [`table8_accuracy`].
pub fn intpath_accuracy(seed: u64) -> Vec<IntPathRow> {
    let paths = [QuantPath::Fp32, QuantPath::Int8];
    let quantizer = TrainingQuantizer::zhang2020_hqt();
    let results = Pool::global().parallel_map(ProxyTask::ALL.len() * paths.len(), |job| {
        let task = ProxyTask::ALL[job / paths.len()];
        train_proxy_on(task, &quantizer, seed, paths[job % paths.len()])
    });
    ProxyTask::ALL
        .iter()
        .enumerate()
        .map(|(ti, &task)| IntPathRow {
            model: task.name(),
            fp32_path: results[ti * 2].0,
            int8_path: results[ti * 2 + 1].0,
            ladder_hit_rate: results[ti * 2 + 1].1,
        })
        .collect()
}

/// Renders the integer-path accuracy A/B table.
pub fn intpath_render(rows: &[IntPathRow]) -> TextTable {
    let mut t = TextTable::new(vec![
        "Model",
        "fp32-path",
        "int8-path",
        "gap (pp)",
        "ladder hits",
    ]);
    for r in rows {
        t.row(vec![
            r.model.into(),
            format!("{:.1}", r.fp32_path * 100.0),
            format!("{:.1}", r.int8_path * 100.0),
            format!("{:+.1}", r.gap_pp()),
            match r.ladder_hit_rate {
                Some(h) => format!("{:.0}%", h * 100.0),
                None => "n/a".into(),
            },
        ]);
    }
    t
}

/// One row of the reproduced Table VIII.
#[derive(Debug, Clone)]
pub struct AccuracyRow {
    /// Benchmark name.
    pub model: &'static str,
    /// FP32 baseline accuracy.
    pub fp32: f64,
    /// Zhu et al. 2019 (layer-wise).
    pub zhu: f64,
    /// Zhu et al. + HQT.
    pub zhu_hqt: f64,
    /// Zhang et al. 2020 (layer-wise).
    pub zhang: f64,
    /// Zhang et al. + HQT.
    pub zhang_hqt: f64,
}

/// Runs the full Table VIII sweep.
///
/// Every (task, quantizer) training run is independent, so the 6×5 grid
/// is flattened into 30 jobs and fanned out over the worker pool. Each
/// run is seeded identically to the serial version, so the table is
/// unchanged by the parallelism.
pub fn table8_accuracy(seed: u64) -> Vec<AccuracyRow> {
    let quantizers = [
        TrainingQuantizer::fp32(),
        TrainingQuantizer::zhu2019(),
        TrainingQuantizer::zhu2019_hqt(),
        TrainingQuantizer::zhang2020(),
        TrainingQuantizer::zhang2020_hqt(),
    ];
    let cols = quantizers.len();
    let accs = Pool::global().parallel_map(ProxyTask::ALL.len() * cols, |job| {
        let task = ProxyTask::ALL[job / cols];
        train_proxy(task, &quantizers[job % cols], seed)
    });
    ProxyTask::ALL
        .iter()
        .enumerate()
        .map(|(ti, &task)| AccuracyRow {
            model: task.name(),
            fp32: accs[ti * cols],
            zhu: accs[ti * cols + 1],
            zhu_hqt: accs[ti * cols + 2],
            zhang: accs[ti * cols + 3],
            zhang_hqt: accs[ti * cols + 4],
        })
        .collect()
}

/// Renders Table VIII.
pub fn table8_render(rows: &[AccuracyRow]) -> TextTable {
    let mut t = TextTable::new(vec![
        "Model",
        "FP32",
        "Zhu2019",
        "+HQT",
        "Zhang2020",
        "+HQT",
    ]);
    let pct = |x: f64| format!("{:.1}", x * 100.0);
    for r in rows {
        t.row(vec![
            r.model.into(),
            pct(r.fp32),
            pct(r.zhu),
            pct(r.zhu_hqt),
            pct(r.zhang),
            pct(r.zhang_hqt),
        ]);
    }
    t
}

/// The algorithm column set of the extended sweep (all five Table III
/// algorithms plus the FP32 reference).
fn extended_algos(seed: u64) -> [TrainingQuantizer; 6] {
    [
        TrainingQuantizer::fp32(),
        TrainingQuantizer::wang2018(seed),
        TrainingQuantizer::zhu2019(),
        TrainingQuantizer::yang2020(),
        TrainingQuantizer::zhong2020(),
        TrainingQuantizer::zhang2020(),
    ]
}

/// The proxy tasks of the extended sweep.
const EXTENDED_TASKS: [ProxyTask; 2] = [ProxyTask::AlexNet, ProxyTask::Lstm];

/// Renders the extended table from per-cell accuracy outcomes (row-major
/// over tasks × algorithms); a failed cell renders as `FAIL` instead of
/// taking the whole table down.
fn extended_render<E>(seed: u64, accs: &[Result<f64, E>]) -> TextTable {
    let algos = extended_algos(seed);
    let mut headers = vec!["Model".to_string()];
    headers.extend(algos.iter().map(|q| q.name().to_string()));
    let mut t = TextTable::new(headers);
    for (ti, task) in EXTENDED_TASKS.iter().enumerate() {
        let mut cells = vec![task.name().to_string()];
        for ai in 0..algos.len() {
            cells.push(match &accs[ti * algos.len() + ai] {
                Ok(acc) => format!("{:.1}", acc * 100.0),
                Err(_) => "FAIL".to_string(),
            });
        }
        t.row(cells);
    }
    t
}

/// Extended accuracy sweep: all five Table III algorithms (not just the
/// two the paper's Table VIII evaluates) on the CNN and LSTM proxies.
pub fn table8_extended(seed: u64) -> TextTable {
    let algos = extended_algos(seed);
    let accs = Pool::global().parallel_map(EXTENDED_TASKS.len() * algos.len(), |job| {
        train_proxy(
            EXTENDED_TASKS[job / algos.len()],
            &algos[job % algos.len()],
            seed,
        )
    });
    let ok: Vec<Result<f64, std::convert::Infallible>> = accs.into_iter().map(Ok).collect();
    extended_render(seed, &ok)
}

/// Crash-safe variant of [`table8_extended`]: completed (task, algorithm)
/// cells are resumed from `journal`, fresh cells are recorded as they
/// finish, and `chaos` injects software faults into attempts (use
/// [`ChaosPlan::off`] for none). Training runs are seeded, so a resumed
/// table is byte-identical to an uninterrupted one.
pub fn table8_extended_journaled(
    seed: u64,
    journal: &SweepJournal,
    policy: &RetryPolicy,
    chaos: &ChaosPlan,
) -> std::io::Result<(TextTable, JournaledOutcome<f64>)> {
    let algos = extended_algos(seed);
    let cols = algos.len();
    let outcome = cq_resil::run_journaled(
        Pool::global(),
        policy,
        journal,
        EXTENDED_TASKS.len() * cols,
        |job| {
            format!(
                "table8ext/{seed}/{}/{}",
                EXTENDED_TASKS[job / cols].name(),
                algos[job % cols].name()
            )
        },
        |acc: &f64| format!("{acc:?}"),
        |s| s.parse::<f64>().ok(),
        |job, attempt| {
            chaos.inject(job as u64, attempt);
            train_proxy(EXTENDED_TASKS[job / cols], &algos[job % cols], seed)
        },
    )?;
    Ok((extended_render(seed, &outcome.results), outcome))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fp32_proxies_learn_their_tasks() {
        for task in [ProxyTask::AlexNet, ProxyTask::Lstm] {
            let acc = train_proxy(task, &TrainingQuantizer::fp32(), 42);
            assert!(acc > 0.6, "{}: accuracy {acc}", task.name());
        }
    }

    #[test]
    fn quantized_training_tracks_fp32_on_cnn() {
        let fp32 = train_proxy(ProxyTask::AlexNet, &TrainingQuantizer::fp32(), 7);
        let hqt = train_proxy(ProxyTask::AlexNet, &TrainingQuantizer::zhang2020_hqt(), 7);
        // Paper: <=0.4% degradation at ImageNet scale; at proxy scale we
        // allow a proportionally looser (but still tight) envelope.
        assert!(
            hqt >= fp32 - 0.08,
            "quantized {hqt} much worse than fp32 {fp32}"
        );
    }

    #[test]
    fn extended_journaled_resumes_byte_identical() {
        let path = std::env::temp_dir().join(format!(
            "cq_experiments_table8ext_{}.journal",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        let policy = RetryPolicy::default();
        let chaos = ChaosPlan::moderate(3);

        let journal = SweepJournal::open(&path).unwrap();
        let (t1, o1) = table8_extended_journaled(42, &journal, &policy, &chaos).unwrap();
        assert!(o1.failures().is_empty(), "chaos must be absorbed by retry");
        assert_eq!(o1.computed, 12);

        let journal = SweepJournal::open(&path).unwrap();
        let (t2, o2) = table8_extended_journaled(42, &journal, &policy, &chaos).unwrap();
        assert_eq!(o2.resumed, 12);
        assert_eq!(o2.computed, 0, "resume must not retrain");
        assert_eq!(
            t1.to_string(),
            t2.to_string(),
            "resumed table must be byte-identical"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn proxy_names_cover_table6() {
        let names: Vec<_> = ProxyTask::ALL.iter().map(|t| t.name()).collect();
        assert_eq!(
            names,
            vec![
                "AlexNet",
                "ResNet-18",
                "GoogLeNet",
                "SqueezeNet",
                "Transformer",
                "LSTM"
            ]
        );
    }
}
