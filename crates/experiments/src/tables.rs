//! Static paper tables regenerated from the models: Tables I, II, III, V,
//! VII and IX.

use cq_isa::{Instruction, Operand, QuantWidth};
use cq_quant::algorithms::table3_algorithms;
use cq_sim::hwcost::{acceleration_core_cost, ndp_engine_cost, quantization_overhead};
use cq_sim::report::TextTable;
use cq_sim::{table1_rows, EnergyModel};

/// Table I: per-operation energy and relative cost.
pub fn table1() -> TextTable {
    let mut t = TextTable::new(vec!["Bit-width", "Operation", "Energy (pJ)", "Relative"]);
    for row in table1_rows(&EnergyModel::tsmc45()) {
        t.row(vec![
            format!("{}-bit", row.bits),
            row.operation.to_string(),
            format!("{:.3}", row.energy_pj),
            format!("{:.2}", row.relative),
        ]);
    }
    t
}

/// Table II: hardware-support matrix for training.
pub fn table2() -> TextTable {
    let mut t = TextTable::new(vec![
        "Hardware supports",
        "V100",
        "TPU",
        "FloatPIM",
        "SIGMA",
        "Cambricon-Q",
    ]);
    let yes = "yes";
    let no = "no";
    t.row(vec![
        "low bit-width units".into(),
        yes.into(),
        yes.into(),
        yes.into(),
        yes.into(),
        yes.into(),
    ]);
    t.row(vec![
        "statistical analysis".into(),
        no.into(),
        no.into(),
        no.into(),
        no.into(),
        yes.into(),
    ]);
    t.row(vec![
        "reformating".into(),
        yes.into(),
        no.into(),
        no.into(),
        yes.into(),
        yes.into(),
    ]);
    t.row(vec![
        "in-place weight update".into(),
        no.into(),
        no.into(),
        yes.into(),
        no.into(),
        yes.into(),
    ]);
    t
}

/// Table III: low-bitwidth training algorithms.
pub fn table3() -> TextTable {
    let mut t = TextTable::new(vec![
        "Algorithm",
        "Data format",
        "Statistic",
        "Weight update",
        "Special cases",
    ]);
    for a in table3_algorithms() {
        t.row(vec![
            a.name.into(),
            a.data_format.into(),
            a.statistics.into(),
            a.weight_update.to_string(),
            a.notes.into(),
        ]);
    }
    t
}

/// Table V: the ISA, demonstrated by disassembling one example of each
/// instruction class.
pub fn table5() -> TextTable {
    let samples: Vec<(&str, Instruction)> = vec![
        (
            "Control",
            Instruction::Croset {
                creg: 4,
                imm: 0.001f32.to_bits(),
            },
        ),
        (
            "Data I/O",
            Instruction::Vload {
                dest: Operand::nbin(0),
                src: Operand::dram(0x1000),
                size: 4096,
            },
        ),
        (
            "Data I/O",
            Instruction::Sload {
                dest: Operand::sb(0),
                src: Operand::dram(0x2000),
                dest_stride: 256,
                src_stride: 4096,
                size: 64,
                n: 64,
            },
        ),
        (
            "Quantized I/O",
            Instruction::Qstore {
                dest: Operand::dram(0x8000),
                src: Operand::nbout(0),
                size: 4096,
                width: QuantWidth::W8,
            },
        ),
        (
            "Store & optimize",
            Instruction::Wgstore {
                dest: Operand::dram(0),
                dest2: Operand::dram(0x1000),
                dest3: Operand::dram(0x2000),
                src: Operand::nbout(0),
                size: 1024,
            },
        ),
        (
            "Compute",
            Instruction::Mm {
                dest: Operand::nbout(0),
                lsrc: Operand::nbin(0),
                rsrc: Operand::sb(0),
                m: 64,
                n: 64,
                k: 64,
            },
        ),
    ];
    let mut t = TextTable::new(vec!["Type", "Example"]);
    for (ty, instr) in samples {
        t.row(vec![ty.into(), instr.to_string()]);
    }
    t
}

/// Table VII: hardware characteristics (area/power per module).
pub fn table7() -> TextTable {
    let mut t = TextTable::new(vec!["Module", "Area (mm2)", "(%)", "Power (mW)", "(%)"]);
    for engine in [acceleration_core_cost(), ndp_engine_cost()] {
        t.row(vec![
            engine.name.into(),
            format!("{:.2}", engine.total_area_mm2()),
            "100".into(),
            format!("{:.2}", engine.total_power_mw()),
            "100".into(),
        ]);
        for m in &engine.modules {
            t.row(vec![
                format!("  {}", m.name),
                format!("{:.2}", m.area_mm2),
                format!("{:.2}", engine.area_share(m.name).unwrap_or(0.0)),
                format!("{:.2}", m.power_mw),
                format!("{:.2}", engine.power_share(m.name).unwrap_or(0.0)),
            ]);
        }
    }
    t.row(vec![
        "Quantization overhead".into(),
        format!("{:.2}%", quantization_overhead().0),
        String::new(),
        format!("{:.2}%", quantization_overhead().1),
        String::new(),
    ]);
    t
}

/// Table IX: recent quantized-training-aware accelerators.
pub fn table9() -> TextTable {
    let mut t = TextTable::new(vec![
        "Accelerator",
        "Data format",
        "Bit-width",
        "Dynamic quantization",
        "WU overhead",
        "ResNet-18 acc.",
        "Tech",
        "TOPS/W",
    ]);
    t.row(vec![
        "Cambricon-Q".into(),
        "FxP/INT".into(),
        "4/8/12/16".into(),
        "yes (SQU)".into(),
        "none (NDP)".into(),
        "70.0% @ 8/16".into(),
        "45 nm".into(),
        "2.24 @ INT8".into(),
    ]);
    t.row(vec![
        "Agrawal 2021".into(),
        "HFP8/FP16".into(),
        "8/16".into(),
        "no".into(),
        "round-off residual".into(),
        "69.39% @ 8".into(),
        "7 nm".into(),
        "1.9 @ FP8".into(),
    ]);
    t.row(vec![
        "Oh 2020".into(),
        "DLFloat16".into(),
        "16".into(),
        "no".into(),
        "-".into(),
        "-".into(),
        "14 nm".into(),
        "1.1 @ FP16".into(),
    ]);
    t.row(vec![
        "Lee 2019".into(),
        "FGMP FP8-16".into(),
        "8/16".into(),
        "threshold-based".into(),
        "-".into(),
        "68.19% @ 8/16".into(),
        "65 nm".into(),
        "1.63 @ FP8".into(),
    ]);
    t.row(vec![
        "Wang 2018".into(),
        "FP8".into(),
        "8".into(),
        "no".into(),
        "stochastic rounding".into(),
        "65.74% @ 8".into(),
        "-".into(),
        "-".into(),
    ]);
    t.row(vec![
        "Fleischer 2018".into(),
        "FP16".into(),
        "16".into(),
        "no".into(),
        "-".into(),
        "-".into(),
        "14 nm".into(),
        "-".into(),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_tables_render_nonempty() {
        for (name, table) in [
            ("1", table1()),
            ("2", table2()),
            ("3", table3()),
            ("5", table5()),
            ("7", table7()),
            ("9", table9()),
        ] {
            assert!(!table.is_empty(), "table {name} empty");
            assert!(!table.to_string().is_empty());
        }
    }

    #[test]
    fn table1_contains_dram_rows() {
        assert!(table1().to_string().contains("DRAM"));
    }

    #[test]
    fn table7_quotes_paper_totals() {
        let s = table7().to_string();
        assert!(s.contains("8.70") || s.contains("8.69"));
        assert!(s.contains("891"));
    }

    #[test]
    fn table5_disassembles_wgstore() {
        assert!(table5().to_string().contains("WGSTORE"));
    }
}
