//! Performance/energy comparison experiments (Figs. 12 and 13, §VII.C/D).

use cq_accel::{CambriconQ, CqConfig, ScaleVariant};
use cq_baselines::{GpuModel, Tpu};
use cq_faults::ChaosPlan;
use cq_ndp::OptimizerKind;
use cq_par::Pool;
use cq_quant::IntFormat;
use cq_resil::{JournaledOutcome, RetryPolicy, SweepJournal};
use cq_sim::report::{ratio, TextTable};
use cq_sim::{geomean, Component, Phase, SimResult};
use cq_workloads::{models, Network};

/// The optimizer used across the performance experiments (Adam: the most
/// demanding of Table IV — two state tensors).
pub fn default_optimizer() -> OptimizerKind {
    OptimizerKind::Adam {
        lr: 1e-3,
        beta1: 0.9,
        beta2: 0.999,
    }
}

/// One benchmark's results on all three platforms.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// The workload.
    pub network: String,
    /// Cambricon-Q result.
    pub cq: SimResult,
    /// Cambricon-Q without the NDP engine (§VII.D ablation).
    pub cq_no_ndp: SimResult,
    /// TPU baseline result.
    pub tpu: SimResult,
    /// GPU (Jetson TX2) result, running quantized training.
    pub gpu: SimResult,
}

impl Comparison {
    /// Speedup of Cambricon-Q over the GPU.
    pub fn speedup_gpu(&self) -> f64 {
        self.cq.speedup_over(&self.gpu)
    }

    /// Speedup of Cambricon-Q over the TPU.
    pub fn speedup_tpu(&self) -> f64 {
        self.cq.speedup_over(&self.tpu)
    }

    /// Energy-efficiency gain over the GPU.
    pub fn energy_gain_gpu(&self) -> f64 {
        self.cq.energy_gain_over(&self.gpu)
    }

    /// Energy-efficiency gain over the TPU.
    pub fn energy_gain_tpu(&self) -> f64 {
        self.cq.energy_gain_over(&self.tpu)
    }
}

/// Runs all six benchmarks on all platforms (the data behind Fig. 12).
///
/// Each benchmark's four platform simulations are independent of the
/// others', so the outer loop fans out over the worker pool; the result
/// order (and every value) is identical to the serial loop.
pub fn run_comparison() -> Vec<Comparison> {
    let opt = default_optimizer();
    let cq = CambriconQ::edge();
    let cq_no_ndp = CambriconQ::new(CqConfig::edge().without_ndp());
    let tpu = Tpu::paper();
    let gpu = GpuModel::jetson_tx2();
    let nets = models::all_benchmarks();
    Pool::global().parallel_map(nets.len(), |i| {
        let net = &nets[i];
        Comparison {
            network: net.name.clone(),
            cq: cq.simulate(net, opt),
            cq_no_ndp: cq_no_ndp.simulate(net, opt),
            tpu: tpu.simulate(net, opt),
            gpu: gpu.simulate(net, opt, true),
        }
    })
}

/// Field separator of [`comparison_record`]: one level above the tab
/// separator [`SimResult::to_record`] uses inside each platform record.
const COMPARISON_SEP: char = '\x1E';

/// Serializes a comparison as five `\x1E`-separated fields (network name
/// plus the four platform [`SimResult`] records) that
/// [`comparison_from_record`] decodes back exactly.
pub fn comparison_record(c: &Comparison) -> String {
    [
        c.network.clone(),
        c.cq.to_record(),
        c.cq_no_ndp.to_record(),
        c.tpu.to_record(),
        c.gpu.to_record(),
    ]
    .join(&COMPARISON_SEP.to_string())
}

/// Decodes a line produced by [`comparison_record`]; `None` for anything
/// malformed, which makes the journaled comparison recompute the cell.
pub fn comparison_from_record(record: &str) -> Option<Comparison> {
    let parts: Vec<&str> = record.split(COMPARISON_SEP).collect();
    if parts.len() != 5 {
        return None;
    }
    Some(Comparison {
        network: parts[0].to_string(),
        cq: SimResult::from_record(parts[1])?,
        cq_no_ndp: SimResult::from_record(parts[2])?,
        tpu: SimResult::from_record(parts[3])?,
        gpu: SimResult::from_record(parts[4])?,
    })
}

/// Crash-safe variant of [`run_comparison`]: benchmarks already in
/// `journal` are decoded instead of re-simulated, fresh ones are recorded
/// as they finish, and `chaos` injects software faults into attempts
/// (use [`ChaosPlan::off`] for none). The simulators are deterministic,
/// so a killed and resumed comparison is byte-identical.
pub fn run_comparison_journaled(
    journal: &SweepJournal,
    policy: &RetryPolicy,
    chaos: &ChaosPlan,
) -> std::io::Result<JournaledOutcome<Comparison>> {
    let opt = default_optimizer();
    let cq = CambriconQ::edge();
    let cq_no_ndp = CambriconQ::new(CqConfig::edge().without_ndp());
    let tpu = Tpu::paper();
    let gpu = GpuModel::jetson_tx2();
    let nets = models::all_benchmarks();
    cq_resil::run_journaled(
        Pool::global(),
        policy,
        journal,
        nets.len(),
        |i| format!("fig12/{}", nets[i].name),
        comparison_record,
        comparison_from_record,
        |i, attempt| {
            chaos.inject(i as u64, attempt);
            let net = &nets[i];
            Comparison {
                network: net.name.clone(),
                cq: cq.simulate(net, opt),
                cq_no_ndp: cq_no_ndp.simulate(net, opt),
                tpu: tpu.simulate(net, opt),
                gpu: gpu.simulate(net, opt, true),
            }
        },
    )
}

/// Fig. 12(a): speedup table plus geomeans.
pub fn fig12a_table(rows: &[Comparison]) -> TextTable {
    let mut t = TextTable::new(vec![
        "Model",
        "vs GPU",
        "vs TPU",
        "no-NDP vs GPU",
        "no-NDP vs TPU",
    ]);
    for r in rows {
        t.row(vec![
            r.network.clone(),
            ratio(r.speedup_gpu()),
            ratio(r.speedup_tpu()),
            ratio(r.cq_no_ndp.speedup_over(&r.gpu)),
            ratio(r.cq_no_ndp.speedup_over(&r.tpu)),
        ]);
    }
    let gm_gpu = geomean(&rows.iter().map(|r| r.speedup_gpu()).collect::<Vec<_>>());
    let gm_tpu = geomean(&rows.iter().map(|r| r.speedup_tpu()).collect::<Vec<_>>());
    t.row(vec![
        "GEOMEAN".into(),
        ratio(gm_gpu),
        ratio(gm_tpu),
        String::new(),
        String::new(),
    ]);
    t
}

/// Fig. 12(b): per-phase time breakdown of one platform's results.
pub fn fig12b_table(results: &[&SimResult]) -> TextTable {
    let mut t = TextTable::new(vec!["Platform/Model", "FW", "NG", "WG", "WU", "S", "Q"]);
    for r in results {
        let mut cells = vec![format!("{}/{}", r.platform, r.workload)];
        for p in Phase::ALL {
            cells.push(format!("{:.1}%", r.phases.fraction_cycles(p) * 100.0));
        }
        t.row(cells);
    }
    t
}

/// Fig. 12(c): energy comparison plus geomeans.
pub fn fig12c_table(rows: &[Comparison]) -> TextTable {
    let mut t = TextTable::new(vec![
        "Model",
        "CQ (mJ)",
        "TPU (mJ)",
        "GPU (mJ)",
        "gain vs TPU",
        "gain vs GPU",
    ]);
    for r in rows {
        t.row(vec![
            r.network.clone(),
            format!("{:.1}", r.cq.total_energy_mj()),
            format!("{:.1}", r.tpu.total_energy_mj()),
            format!("{:.1}", r.gpu.total_energy_mj()),
            ratio(r.energy_gain_tpu()),
            ratio(r.energy_gain_gpu()),
        ]);
    }
    let gm_tpu = geomean(&rows.iter().map(|r| r.energy_gain_tpu()).collect::<Vec<_>>());
    let gm_gpu = geomean(&rows.iter().map(|r| r.energy_gain_gpu()).collect::<Vec<_>>());
    t.row(vec![
        "GEOMEAN".into(),
        String::new(),
        String::new(),
        String::new(),
        ratio(gm_tpu),
        ratio(gm_gpu),
    ]);
    t
}

/// Fig. 12(d): per-component energy breakdown, plus the memory-side
/// reduction factor the paper quotes (1.54×).
pub fn fig12d_table(rows: &[Comparison]) -> (TextTable, f64) {
    let mut t = TextTable::new(vec![
        "Platform/Model",
        "ACC",
        "BUF",
        "DDR-SB",
        "DDR-DY",
        "total (mJ)",
    ]);
    let mut ratios = Vec::new();
    for r in rows {
        for res in [&r.cq, &r.tpu] {
            let mut cells = vec![format!("{}/{}", res.platform, res.workload)];
            for c in Component::ALL {
                cells.push(format!("{:.1}%", res.energy.fraction(c) * 100.0));
            }
            cells.push(format!("{:.1}", res.total_energy_mj()));
            t.row(cells);
        }
        ratios.push(r.tpu.energy.memory_side_pj() / r.cq.energy.memory_side_pj());
    }
    (t, geomean(&ratios))
}

/// §VII.D ablation: speedup retained without the NDP engine.
pub fn ablation_ndp_table(rows: &[Comparison]) -> TextTable {
    let mut t = TextTable::new(vec![
        "Model",
        "full vs TPU",
        "no-NDP vs TPU",
        "NDP contribution",
    ]);
    for r in rows {
        let full = r.speedup_tpu();
        let without = r.cq_no_ndp.speedup_over(&r.tpu);
        t.row(vec![
            r.network.clone(),
            ratio(full),
            ratio(without),
            format!("{:+.1}%", (full / without - 1.0) * 100.0),
        ]);
    }
    t
}

/// §VII.C: INT4-mode gains on every benchmark.
pub fn int4_gains() -> TextTable {
    let opt = default_optimizer();
    let int8 = CambriconQ::edge();
    let int4 = CambriconQ::new(CqConfig::edge().with_format(IntFormat::Int4));
    let mut t = TextTable::new(vec!["Model", "perf gain", "energy gain"]);
    let mut perf = Vec::new();
    let mut energy = Vec::new();
    for net in models::all_benchmarks() {
        let r8 = int8.simulate(&net, opt);
        let r4 = int4.simulate(&net, opt);
        perf.push(r4.speedup_over(&r8));
        energy.push(r4.energy_gain_over(&r8));
        t.row(vec![
            net.name.clone(),
            ratio(r4.speedup_over(&r8)),
            ratio(r4.energy_gain_over(&r8)),
        ]);
    }
    t.row(vec![
        "GEOMEAN".into(),
        ratio(geomean(&perf)),
        ratio(geomean(&energy)),
    ]);
    t
}

/// Fig. 13: scaled variants against their GPU counterparts on ResNet-18
/// and LSTM.
pub fn fig13_table() -> TextTable {
    let opt = default_optimizer();
    let nets: Vec<Network> = vec![models::resnet18(), models::ptb_lstm_medium()];
    let pairs: Vec<(CambriconQ, GpuModel)> = vec![
        (CambriconQ::edge(), GpuModel::jetson_tx2()),
        (
            CambriconQ::new(CqConfig::scaled(ScaleVariant::T)),
            GpuModel::gtx_1080ti(),
        ),
        (
            CambriconQ::new(CqConfig::scaled(ScaleVariant::V)),
            GpuModel::v100(),
        ),
    ];
    let mut t = TextTable::new(vec!["Pair", "Model", "CQ (ms)", "GPU (ms)", "speedup"]);
    for (chip, gpu) in &pairs {
        for net in &nets {
            let rc = chip.simulate(net, opt);
            let rg = gpu.simulate(net, opt, true);
            t.row(vec![
                format!("{} vs {}", rc.platform, rg.platform),
                net.name.clone(),
                format!("{:.2}", rc.time_ms()),
                format!("{:.2}", rg.time_ms()),
                ratio(rc.speedup_over(&rg)),
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headline_ratios_match_paper_shape() {
        let rows = run_comparison();
        let sp_gpu = geomean(&rows.iter().map(|r| r.speedup_gpu()).collect::<Vec<_>>());
        let sp_tpu = geomean(&rows.iter().map(|r| r.speedup_tpu()).collect::<Vec<_>>());
        let en_gpu = geomean(&rows.iter().map(|r| r.energy_gain_gpu()).collect::<Vec<_>>());
        let en_tpu = geomean(&rows.iter().map(|r| r.energy_gain_tpu()).collect::<Vec<_>>());
        // Paper: 4.20x / 1.70x speedup, 6.41x / 1.62x energy. The shape
        // requirement: Cambricon-Q wins on both axes against both
        // baselines, GPU gaps larger than TPU gaps, same order of
        // magnitude as the paper.
        assert!(sp_gpu > 2.5 && sp_gpu < 7.0, "GPU speedup {sp_gpu}");
        assert!(sp_tpu > 1.2 && sp_tpu < 2.6, "TPU speedup {sp_tpu}");
        assert!(en_gpu > 3.5 && en_gpu < 12.0, "GPU energy {en_gpu}");
        assert!(en_tpu > 1.2 && en_tpu < 2.6, "TPU energy {en_tpu}");
        assert!(sp_gpu > sp_tpu && en_gpu > en_tpu);
    }

    #[test]
    fn ndp_ablation_shape() {
        let rows = run_comparison();
        let find = |name: &str| rows.iter().find(|r| r.network == name).unwrap();
        // WU-heavy models lose much more speedup without NDP.
        let alexnet = find("AlexNet");
        let squeezenet = find("SqueezeNet");
        let loss_alex = alexnet.speedup_tpu() / alexnet.cq_no_ndp.speedup_over(&alexnet.tpu);
        let loss_sq = squeezenet.speedup_tpu() / squeezenet.cq_no_ndp.speedup_over(&squeezenet.tpu);
        assert!(loss_alex > loss_sq, "alex {loss_alex} vs squeeze {loss_sq}");
    }

    #[test]
    fn tables_render() {
        let rows = run_comparison();
        assert!(fig12a_table(&rows).to_string().contains("GEOMEAN"));
        assert!(fig12c_table(&rows).to_string().contains("gain"));
        let (t, mem_ratio) = fig12d_table(&rows);
        assert!(t.to_string().contains("DDR-DY"));
        // Paper: 1.54x memory-side energy reduction vs the TPU baseline.
        assert!(
            mem_ratio > 1.2 && mem_ratio < 4.0,
            "memory ratio {mem_ratio}"
        );
        let refs: Vec<&SimResult> = rows.iter().map(|r| &r.cq).collect();
        assert!(fig12b_table(&refs).to_string().contains("FW"));
        assert!(ablation_ndp_table(&rows).to_string().contains("NDP"));
    }

    #[test]
    fn journaled_comparison_matches_and_resumes() {
        let path = std::env::temp_dir().join(format!(
            "cq_experiments_fig12_{}.journal",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        let reference = run_comparison();
        for r in &reference {
            let decoded = comparison_from_record(&comparison_record(r)).expect("decodes");
            assert_eq!(r, &decoded, "codec round-trip must be exact");
        }
        assert!(comparison_from_record("junk").is_none());

        let policy = RetryPolicy::default();
        let chaos = ChaosPlan::moderate(5);
        let journal = SweepJournal::open(&path).unwrap();
        let first = run_comparison_journaled(&journal, &policy, &chaos).unwrap();
        let got: Vec<Comparison> = first.results.into_iter().map(Result::unwrap).collect();
        assert_eq!(got, reference, "chaos must not change results");

        let journal = SweepJournal::open(&path).unwrap();
        let second = run_comparison_journaled(&journal, &policy, &chaos).unwrap();
        assert_eq!(second.resumed, reference.len());
        assert_eq!(second.computed, 0, "resume must not re-simulate");
        let resumed: Vec<Comparison> = second.results.into_iter().map(Result::unwrap).collect();
        assert_eq!(resumed, reference, "resume must be byte-identical");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn int4_gain_near_paper() {
        // Paper §VII.C: 2.33x perf / 2.35x energy.
        let t = int4_gains();
        let s = t.to_string();
        assert!(s.contains("GEOMEAN"));
    }

    #[test]
    fn fig13_scaled_chips_beat_their_gpus() {
        let s = fig13_table().to_string();
        assert!(s.contains("Cambricon-Q-T"));
        assert!(s.contains("Cambricon-Q-V"));
    }
}
