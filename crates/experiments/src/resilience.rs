//! Fault sweep: resilience of the training iteration under injected
//! hardware faults.
//!
//! The paper evaluates Cambricon-Q on a fault-free machine; this extension
//! asks what the architecture costs — and saves — when the machine is not.
//! Three protection configurations are swept over the six benchmark
//! networks at several DRAM/SRAM bit-error rates:
//!
//! - **no-ECC** — faults land unprotected; every flip is a silent
//!   corruption.
//! - **ECC** — SECDED(72,64) on the DDR path corrects single-bit errors
//!   (charging extra cycles and energy) and flags double-bit errors as
//!   detected-uncorrectable; value-level faults in SRAM and the θ
//!   statistic registers still pass silently.
//! - **ECC+E²BQM** — additionally arms the guarded quantizer: corrupted θ
//!   statistics are rejected and recomputed, non-finite inputs are
//!   sanitized, and overflowing blocks are re-multiplexed onto a wider
//!   format (logged as `DegradedPrecision`) instead of crashing the run.
//!
//! The sweep also asserts the zero-cost property: with fault rate 0 and
//! ECC off, the resilient simulation path is bit-identical to the plain
//! one.

use cq_accel::{CambriconQ, CqConfig, Squ};
use cq_faults::{ChaosPlan, EventCounts, FaultDomain, FaultEvent, FaultPlan, ResilienceReport};
use cq_mem::EccStats;
use cq_ndp::OptimizerKind;
use cq_par::Pool;
use cq_quant::E2bqmQuantizer;
use cq_resil::{JournaledOutcome, RetryPolicy, SweepJournal};
use cq_sim::report::TextTable;
use cq_tensor::Tensor;
use cq_workloads::{models, Network};

/// Bit-error rates swept (per transferred/stored bit).
pub const SWEEP_BERS: [f64; 3] = [1e-7, 1e-6, 1e-5];

/// Seed for every deterministic sampler in the sweep.
pub const SWEEP_SEED: u64 = 0xCA3B_71C0;

/// Gradient-buffer elements sampled per network for value-level injection.
const SAMPLE_ELEMS: usize = 4096;

fn default_optimizer() -> OptimizerKind {
    OptimizerKind::Sgd { lr: 0.01 }
}

/// The three protection configurations of the sweep at one fault rate.
pub fn sweep_plans(ber: f64) -> [FaultPlan; 3] {
    [
        FaultPlan::unprotected(SWEEP_SEED, ber),
        FaultPlan::ecc_only(SWEEP_SEED, ber),
        FaultPlan::full_protection(SWEEP_SEED, ber),
    ]
}

/// A deterministic pseudo-gradient buffer standing in for one SQU input
/// stream of `net`: small mostly-near-zero values with the long-tailed
/// spread the paper's Fig. 2 shows for real gradients.
fn gradient_sample(net: &Network) -> Vec<f32> {
    let mut state = net.total_weights() | 1;
    (0..SAMPLE_ELEMS)
        .map(|_| {
            // xorshift64* — cheap, deterministic, network-dependent.
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let u = (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 40) as f32 / (1u64 << 24) as f32;
            (u - 0.5) * 0.02
        })
        .collect()
}

/// Runs the value-level (SRAM + θ-register) injection for one plan and
/// tallies the resulting events.
fn value_level_events(net: &Network, plan: &FaultPlan) -> EventCounts {
    let mut inj = plan.injector();
    let mut data = gradient_sample(net);
    inj.corrupt_slice(&mut data, plan.sram_ber, FaultDomain::Sram);
    let mut events = inj.take_events();

    let theta = data.iter().fold(0.0f32, |m, v| m.max(v.abs()));
    let bad_theta = if plan.corrupt_theta {
        // Mantissa flips perturb θ by less than 2× and are absorbed by the
        // candidate search; keep injecting until a fault lands in the sign
        // or exponent field, where the corruption is observable.
        let anomalous =
            |t: f32| !t.is_finite() || t <= 0.0 || t > theta * 256.0 || t < theta / 16.0;
        let mut t = inj.corrupt_theta(theta);
        while !anomalous(t) {
            t = inj.corrupt_theta(theta);
        }
        events.extend(inj.take_events());
        t
    } else {
        theta
    };

    let x = Tensor::from_vec(data, &[SAMPLE_ELEMS]).expect("sample shape");
    if plan.guarded_quant {
        let squ = Squ::new(&CqConfig::edge());
        let (_sel, _cost, degrades) = squ.quantize_guarded_with_theta(&x, bad_theta);
        events.extend(degrades.into_iter().map(FaultEvent::from));
    } else {
        // Unguarded hardware quantizes with whatever θ the register holds;
        // a corrupted statistic silently rescales the whole block.
        let q = E2bqmQuantizer::hardware_default();
        let _ = q.quantize_with_theta(&x, bad_theta);
        let silent = events
            .iter()
            .filter(|e| matches!(e, FaultEvent::Injected { .. }))
            .count();
        for _ in 0..silent {
            events.push(FaultEvent::Silent {
                domain: FaultDomain::Sram,
            });
        }
    }
    EventCounts::tally(&events)
}

/// Runs one (network, plan, rate) cell of the sweep.
pub fn run_cell(net: &Network, plan: &FaultPlan) -> ResilienceReport {
    let mut cfg = CqConfig::edge();
    cfg.ddr = plan.ddr_config(cfg.ddr);
    let chip = CambriconQ::new(cfg);
    let (result, ecc) = chip.simulate_resilient(net, default_optimizer());
    ResilienceReport {
        workload: net.name.clone(),
        config: plan.label().to_string(),
        ber: plan.dram_ber,
        cycles: result.total_cycles(),
        energy_mj: result.total_energy_mj(),
        ecc,
        counts: value_level_events(net, plan),
    }
}

/// The flattened sweep grid: six benchmarks × [`SWEEP_BERS`] × three
/// configurations, in the row order of the original nested loops.
pub fn sweep_cells() -> Vec<(Network, FaultPlan)> {
    models::all_benchmarks()
        .into_iter()
        .flat_map(|net| {
            SWEEP_BERS.into_iter().flat_map(move |ber| {
                let net = net.clone();
                sweep_plans(ber).into_iter().map(move |p| (net.clone(), p))
            })
        })
        .collect()
}

/// The full sweep: six benchmarks × [`SWEEP_BERS`] × three configurations.
///
/// Every cell is deterministic and independent (each plan carries its own
/// seeded sampler), so the flattened grid fans out over the worker pool;
/// row order matches the original nested loops exactly.
pub fn run_sweep() -> Vec<ResilienceReport> {
    let cells = sweep_cells();
    Pool::global().parallel_map(cells.len(), |i| run_cell(&cells[i].0, &cells[i].1))
}

/// The journal key of one sweep cell. Bakes in every input that selects
/// the cell's result: workload, protection config, and exact fault rate.
pub fn cell_key(net: &Network, plan: &FaultPlan) -> String {
    format!("cell/{}/{:?}/{}", net.name, plan.dram_ber, plan.label())
}

/// Serializes one report as a tab-separated line that
/// [`report_from_record`] decodes back *exactly* (floats use Rust's
/// shortest-roundtrip `Debug` text), so a resumed sweep renders a
/// byte-identical table.
pub fn report_record(r: &ResilienceReport) -> String {
    let fields = [
        r.workload.clone(),
        r.config.clone(),
        format!("{:?}", r.ber),
        r.cycles.to_string(),
        format!("{:?}", r.energy_mj),
        r.ecc.words_checked.to_string(),
        r.ecc.bit_flips_injected.to_string(),
        r.ecc.corrected.to_string(),
        r.ecc.detected_uncorrectable.to_string(),
        r.ecc.miscorrected.to_string(),
        r.ecc.silent_bit_flips.to_string(),
        r.ecc.check_cycles.to_string(),
        r.ecc.correct_cycles.to_string(),
        format!("{:?}", r.ecc.energy_pj),
        r.counts.injected.to_string(),
        r.counts.corrected.to_string(),
        r.counts.uncorrectable.to_string(),
        r.counts.silent.to_string(),
        r.counts.degraded_precision.to_string(),
        r.counts.sanitized.to_string(),
        r.counts.statistic_recovered.to_string(),
    ];
    fields.join("\t")
}

/// Decodes a line produced by [`report_record`]; `None` for anything
/// malformed, which makes the journaled sweep recompute the cell.
pub fn report_from_record(record: &str) -> Option<ResilienceReport> {
    let f: Vec<&str> = record.split('\t').collect();
    if f.len() != 21 {
        return None;
    }
    Some(ResilienceReport {
        workload: f[0].to_string(),
        config: f[1].to_string(),
        ber: f[2].parse().ok()?,
        cycles: f[3].parse().ok()?,
        energy_mj: f[4].parse().ok()?,
        ecc: EccStats {
            words_checked: f[5].parse().ok()?,
            bit_flips_injected: f[6].parse().ok()?,
            corrected: f[7].parse().ok()?,
            detected_uncorrectable: f[8].parse().ok()?,
            miscorrected: f[9].parse().ok()?,
            silent_bit_flips: f[10].parse().ok()?,
            check_cycles: f[11].parse().ok()?,
            correct_cycles: f[12].parse().ok()?,
            energy_pj: f[13].parse().ok()?,
        },
        counts: EventCounts {
            injected: f[14].parse().ok()?,
            corrected: f[15].parse().ok()?,
            uncorrectable: f[16].parse().ok()?,
            silent: f[17].parse().ok()?,
            degraded_precision: f[18].parse().ok()?,
            sanitized: f[19].parse().ok()?,
            statistic_recovered: f[20].parse().ok()?,
        },
    })
}

/// Crash-safe variant of [`run_sweep`]: cells already in `journal` are
/// decoded instead of recomputed, fresh cells are recorded the moment
/// they finish, and `chaos` injects software faults into attempts (use
/// [`ChaosPlan::off`] for none). Because every cell is a pure function
/// of its inputs and the record codec round-trips exactly, a killed and
/// resumed sweep produces a byte-identical table.
pub fn run_sweep_journaled(
    journal: &SweepJournal,
    policy: &RetryPolicy,
    chaos: &ChaosPlan,
) -> std::io::Result<JournaledOutcome<ResilienceReport>> {
    let cells = sweep_cells();
    cq_resil::run_journaled(
        Pool::global(),
        policy,
        journal,
        cells.len(),
        |i| cell_key(&cells[i].0, &cells[i].1),
        report_record,
        report_from_record,
        |i, attempt| {
            chaos.inject(i as u64, attempt);
            run_cell(&cells[i].0, &cells[i].1)
        },
    )
}

/// Renders the sweep as a text table.
pub fn sweep_table(rows: &[ResilienceReport]) -> TextTable {
    ResilienceReport::table(rows)
}

/// Verifies the zero-cost property on one network: a clean plan through
/// the resilient path is bit-identical to the plain simulation, with
/// all-zero ECC accounting. Returns the workload name checked.
pub fn zero_cost_check() -> Result<String, String> {
    let net = models::squeezenet_v1();
    let opt = default_optimizer();
    let plain = CambriconQ::edge().simulate(&net, opt);

    let plan = FaultPlan::clean(SWEEP_SEED);
    let mut cfg = CqConfig::edge();
    cfg.ddr = plan.ddr_config(cfg.ddr);
    let (resilient, ecc) = CambriconQ::new(cfg).simulate_resilient(&net, opt);

    if resilient != plain {
        return Err(format!(
            "{}: resilient path diverged from plain simulation at fault rate 0",
            net.name
        ));
    }
    if !ecc.is_empty() {
        return Err(format!("{}: clean run charged ECC work: {ecc:?}", net.name));
    }
    Ok(net.name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_cost_property_holds() {
        zero_cost_check().expect("fault rate 0 must be bit-identical");
    }

    #[test]
    fn sweep_cell_is_deterministic() {
        let net = models::alexnet();
        let plan = FaultPlan::full_protection(SWEEP_SEED, 1e-5);
        let a = run_cell(&net, &plan);
        let b = run_cell(&net, &plan);
        assert_eq!(a, b);
    }

    #[test]
    fn ecc_config_charges_overhead() {
        let net = models::alexnet();
        let ber = 1e-6;
        let [unprot, ecc, _] = sweep_plans(ber);
        let no_ecc = run_cell(&net, &unprot);
        let with_ecc = run_cell(&net, &ecc);
        assert!(with_ecc.cycles > no_ecc.cycles, "ECC checks cost cycles");
        assert!(with_ecc.energy_mj > no_ecc.energy_mj, "ECC costs energy");
        assert_eq!(no_ecc.ecc.corrected, 0, "no ECC, no corrections");
        assert!(
            no_ecc.ecc.silent_bit_flips > 0,
            "unprotected DDR faults at 1e-6 over a full iteration pass silently"
        );
        assert!(with_ecc.ecc.corrected > 0, "SECDED corrects isolated flips");
    }

    #[test]
    fn report_codec_roundtrips_exactly() {
        let net = models::alexnet();
        for plan in sweep_plans(1e-6) {
            let r = run_cell(&net, &plan);
            let decoded = report_from_record(&report_record(&r)).expect("decodes");
            assert_eq!(r, decoded, "round-trip must be exact");
            assert_eq!(report_record(&r), report_record(&decoded));
        }
        assert!(report_from_record("junk").is_none());
        assert!(report_from_record("").is_none());
    }

    #[test]
    fn cell_keys_are_unique_across_the_grid() {
        let cells = sweep_cells();
        let keys: std::collections::HashSet<String> =
            cells.iter().map(|(n, p)| cell_key(n, p)).collect();
        assert_eq!(keys.len(), cells.len(), "duplicate journal keys");
    }

    #[test]
    fn journaled_subset_resumes_byte_identical_under_chaos() {
        let path = std::env::temp_dir().join(format!(
            "cq_experiments_chaos_subset_{}.journal",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        let cells: Vec<_> = sweep_cells().into_iter().take(6).collect();
        let reference: Vec<ResilienceReport> = cells.iter().map(|(n, p)| run_cell(n, p)).collect();

        let policy = cq_resil::RetryPolicy::default();
        let chaos = ChaosPlan::moderate(SWEEP_SEED);
        let run = |journal: &SweepJournal| {
            cq_resil::run_journaled(
                Pool::global(),
                &policy,
                journal,
                cells.len(),
                |i| cell_key(&cells[i].0, &cells[i].1),
                report_record,
                report_from_record,
                |i, attempt| {
                    chaos.inject(i as u64, attempt);
                    run_cell(&cells[i].0, &cells[i].1)
                },
            )
            .expect("journal writable")
        };

        // Chaotic first run: injected panics are absorbed by retries and
        // the results still match the serial, chaos-free reference.
        let journal = SweepJournal::open(&path).expect("journal opens");
        let first = run(&journal);
        assert_eq!(first.computed, cells.len());
        let got: Vec<ResilienceReport> = first.results.into_iter().map(Result::unwrap).collect();
        assert_eq!(got, reference, "chaos must not change results");

        // Resume: every cell comes from the journal, none recompute, and
        // the decoded reports are byte-identical to the reference.
        let journal = SweepJournal::open(&path).expect("journal reopens");
        let second = run(&journal);
        assert_eq!(second.resumed, cells.len());
        assert_eq!(second.computed, 0);
        let resumed: Vec<ResilienceReport> =
            second.results.into_iter().map(Result::unwrap).collect();
        assert_eq!(resumed, reference, "resume must be byte-identical");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn guarded_config_recovers_theta_faults() {
        let net = models::ptb_lstm_medium();
        let [unprot, _, full] = sweep_plans(1e-5);
        let guarded = run_cell(&net, &full);
        assert!(
            guarded.counts.statistic_recovered > 0 || guarded.counts.degraded_precision > 0,
            "a θ fault must be recovered or degraded, got {:?}",
            guarded.counts
        );
        let silent = run_cell(&net, &unprot);
        assert!(
            silent.counts.silent > 0,
            "the same faults pass silently when unguarded"
        );
    }
}
