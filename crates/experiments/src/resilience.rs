//! Fault sweep: resilience of the training iteration under injected
//! hardware faults.
//!
//! The paper evaluates Cambricon-Q on a fault-free machine; this extension
//! asks what the architecture costs — and saves — when the machine is not.
//! Three protection configurations are swept over the six benchmark
//! networks at several DRAM/SRAM bit-error rates:
//!
//! - **no-ECC** — faults land unprotected; every flip is a silent
//!   corruption.
//! - **ECC** — SECDED(72,64) on the DDR path corrects single-bit errors
//!   (charging extra cycles and energy) and flags double-bit errors as
//!   detected-uncorrectable; value-level faults in SRAM and the θ
//!   statistic registers still pass silently.
//! - **ECC+E²BQM** — additionally arms the guarded quantizer: corrupted θ
//!   statistics are rejected and recomputed, non-finite inputs are
//!   sanitized, and overflowing blocks are re-multiplexed onto a wider
//!   format (logged as `DegradedPrecision`) instead of crashing the run.
//!
//! The sweep also asserts the zero-cost property: with fault rate 0 and
//! ECC off, the resilient simulation path is bit-identical to the plain
//! one.

use cq_accel::{CambriconQ, CqConfig, Squ};
use cq_faults::{EventCounts, FaultDomain, FaultEvent, FaultPlan, ResilienceReport};
use cq_ndp::OptimizerKind;
use cq_par::Pool;
use cq_quant::E2bqmQuantizer;
use cq_sim::report::TextTable;
use cq_tensor::Tensor;
use cq_workloads::{models, Network};

/// Bit-error rates swept (per transferred/stored bit).
pub const SWEEP_BERS: [f64; 3] = [1e-7, 1e-6, 1e-5];

/// Seed for every deterministic sampler in the sweep.
pub const SWEEP_SEED: u64 = 0xCA3B_71C0;

/// Gradient-buffer elements sampled per network for value-level injection.
const SAMPLE_ELEMS: usize = 4096;

fn default_optimizer() -> OptimizerKind {
    OptimizerKind::Sgd { lr: 0.01 }
}

/// The three protection configurations of the sweep at one fault rate.
pub fn sweep_plans(ber: f64) -> [FaultPlan; 3] {
    [
        FaultPlan::unprotected(SWEEP_SEED, ber),
        FaultPlan::ecc_only(SWEEP_SEED, ber),
        FaultPlan::full_protection(SWEEP_SEED, ber),
    ]
}

/// A deterministic pseudo-gradient buffer standing in for one SQU input
/// stream of `net`: small mostly-near-zero values with the long-tailed
/// spread the paper's Fig. 2 shows for real gradients.
fn gradient_sample(net: &Network) -> Vec<f32> {
    let mut state = net.total_weights() | 1;
    (0..SAMPLE_ELEMS)
        .map(|_| {
            // xorshift64* — cheap, deterministic, network-dependent.
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let u = (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 40) as f32 / (1u64 << 24) as f32;
            (u - 0.5) * 0.02
        })
        .collect()
}

/// Runs the value-level (SRAM + θ-register) injection for one plan and
/// tallies the resulting events.
fn value_level_events(net: &Network, plan: &FaultPlan) -> EventCounts {
    let mut inj = plan.injector();
    let mut data = gradient_sample(net);
    inj.corrupt_slice(&mut data, plan.sram_ber, FaultDomain::Sram);
    let mut events = inj.take_events();

    let theta = data.iter().fold(0.0f32, |m, v| m.max(v.abs()));
    let bad_theta = if plan.corrupt_theta {
        // Mantissa flips perturb θ by less than 2× and are absorbed by the
        // candidate search; keep injecting until a fault lands in the sign
        // or exponent field, where the corruption is observable.
        let anomalous =
            |t: f32| !t.is_finite() || t <= 0.0 || t > theta * 256.0 || t < theta / 16.0;
        let mut t = inj.corrupt_theta(theta);
        while !anomalous(t) {
            t = inj.corrupt_theta(theta);
        }
        events.extend(inj.take_events());
        t
    } else {
        theta
    };

    let x = Tensor::from_vec(data, &[SAMPLE_ELEMS]).expect("sample shape");
    if plan.guarded_quant {
        let squ = Squ::new(&CqConfig::edge());
        let (_sel, _cost, degrades) = squ.quantize_guarded_with_theta(&x, bad_theta);
        events.extend(degrades.into_iter().map(FaultEvent::from));
    } else {
        // Unguarded hardware quantizes with whatever θ the register holds;
        // a corrupted statistic silently rescales the whole block.
        let q = E2bqmQuantizer::hardware_default();
        let _ = q.quantize_with_theta(&x, bad_theta);
        let silent = events
            .iter()
            .filter(|e| matches!(e, FaultEvent::Injected { .. }))
            .count();
        for _ in 0..silent {
            events.push(FaultEvent::Silent {
                domain: FaultDomain::Sram,
            });
        }
    }
    EventCounts::tally(&events)
}

/// Runs one (network, plan, rate) cell of the sweep.
pub fn run_cell(net: &Network, plan: &FaultPlan) -> ResilienceReport {
    let mut cfg = CqConfig::edge();
    cfg.ddr = plan.ddr_config(cfg.ddr);
    let chip = CambriconQ::new(cfg);
    let (result, ecc) = chip.simulate_resilient(net, default_optimizer());
    ResilienceReport {
        workload: net.name.clone(),
        config: plan.label().to_string(),
        ber: plan.dram_ber,
        cycles: result.total_cycles(),
        energy_mj: result.total_energy_mj(),
        ecc,
        counts: value_level_events(net, plan),
    }
}

/// The full sweep: six benchmarks × [`SWEEP_BERS`] × three configurations.
///
/// Every cell is deterministic and independent (each plan carries its own
/// seeded sampler), so the flattened grid fans out over the worker pool;
/// row order matches the original nested loops exactly.
pub fn run_sweep() -> Vec<ResilienceReport> {
    let cells: Vec<(Network, FaultPlan)> = models::all_benchmarks()
        .into_iter()
        .flat_map(|net| {
            SWEEP_BERS.into_iter().flat_map(move |ber| {
                let net = net.clone();
                sweep_plans(ber).into_iter().map(move |p| (net.clone(), p))
            })
        })
        .collect();
    Pool::global().parallel_map(cells.len(), |i| run_cell(&cells[i].0, &cells[i].1))
}

/// Renders the sweep as a text table.
pub fn sweep_table(rows: &[ResilienceReport]) -> TextTable {
    ResilienceReport::table(rows)
}

/// Verifies the zero-cost property on one network: a clean plan through
/// the resilient path is bit-identical to the plain simulation, with
/// all-zero ECC accounting. Returns the workload name checked.
pub fn zero_cost_check() -> Result<String, String> {
    let net = models::squeezenet_v1();
    let opt = default_optimizer();
    let plain = CambriconQ::edge().simulate(&net, opt);

    let plan = FaultPlan::clean(SWEEP_SEED);
    let mut cfg = CqConfig::edge();
    cfg.ddr = plan.ddr_config(cfg.ddr);
    let (resilient, ecc) = CambriconQ::new(cfg).simulate_resilient(&net, opt);

    if resilient != plain {
        return Err(format!(
            "{}: resilient path diverged from plain simulation at fault rate 0",
            net.name
        ));
    }
    if !ecc.is_empty() {
        return Err(format!("{}: clean run charged ECC work: {ecc:?}", net.name));
    }
    Ok(net.name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_cost_property_holds() {
        zero_cost_check().expect("fault rate 0 must be bit-identical");
    }

    #[test]
    fn sweep_cell_is_deterministic() {
        let net = models::alexnet();
        let plan = FaultPlan::full_protection(SWEEP_SEED, 1e-5);
        let a = run_cell(&net, &plan);
        let b = run_cell(&net, &plan);
        assert_eq!(a, b);
    }

    #[test]
    fn ecc_config_charges_overhead() {
        let net = models::alexnet();
        let ber = 1e-6;
        let [unprot, ecc, _] = sweep_plans(ber);
        let no_ecc = run_cell(&net, &unprot);
        let with_ecc = run_cell(&net, &ecc);
        assert!(with_ecc.cycles > no_ecc.cycles, "ECC checks cost cycles");
        assert!(with_ecc.energy_mj > no_ecc.energy_mj, "ECC costs energy");
        assert_eq!(no_ecc.ecc.corrected, 0, "no ECC, no corrections");
        assert!(
            no_ecc.ecc.silent_bit_flips > 0,
            "unprotected DDR faults at 1e-6 over a full iteration pass silently"
        );
        assert!(with_ecc.ecc.corrected > 0, "SECDED corrects isolated flips");
    }

    #[test]
    fn guarded_config_recovers_theta_faults() {
        let net = models::ptb_lstm_medium();
        let [unprot, _, full] = sweep_plans(1e-5);
        let guarded = run_cell(&net, &full);
        assert!(
            guarded.counts.statistic_recovered > 0 || guarded.counts.degraded_precision > 0,
            "a θ fault must be recovered or degraded, got {:?}",
            guarded.counts
        );
        let silent = run_cell(&net, &unprot);
        assert!(
            silent.counts.silent > 0,
            "the same faults pass silently when unguarded"
        );
    }
}
