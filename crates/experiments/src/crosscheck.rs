//! Cross-validation of the two timing models: the analytical whole-chip
//! simulator ([`cq_accel::CambriconQ`]) versus the instruction-driven
//! [`cq_accel::TimingExecutor`] running compiled forward programs.
//!
//! The two models share the PE/SQU/DDR component models but schedule work
//! completely differently (closed-form per layer vs. per-instruction), so
//! agreement within a small factor is meaningful evidence neither is
//! mis-accounting.

use cq_accel::{compile_network_forward, CambriconQ, CqConfig, TimingExecutor};
use cq_ndp::OptimizerKind;
use cq_sim::report::TextTable;
use cq_sim::Phase;
use cq_workloads::models;

/// One benchmark's forward-pass cycles under both models.
#[derive(Debug, Clone, PartialEq)]
pub struct CrossCheckRow {
    /// Benchmark name.
    pub network: String,
    /// Analytical model's forward-phase cycles.
    pub analytical: u64,
    /// Instruction-driven executor's total cycles for the same work.
    pub executor: u64,
}

impl CrossCheckRow {
    /// Ratio executor/analytical (1.0 = perfect agreement).
    pub fn ratio(&self) -> f64 {
        self.executor as f64 / self.analytical.max(1) as f64
    }
}

/// Runs the cross-check over all benchmarks.
pub fn run_crosscheck() -> Vec<CrossCheckRow> {
    let config = CqConfig::edge();
    let chip = CambriconQ::new(config.clone());
    let sgd = OptimizerKind::Sgd { lr: 0.01 };
    models::all_benchmarks()
        .into_iter()
        .map(|net| {
            let analytical = chip.simulate(&net, sgd).phases.cycles(Phase::Forward);
            let program = compile_network_forward(&config, &net);
            let executor = TimingExecutor::new(config.clone()).run(&program).cycles;
            CrossCheckRow {
                network: net.name,
                analytical,
                executor,
            }
        })
        .collect()
}

/// Renders the cross-check table.
pub fn crosscheck_table(rows: &[CrossCheckRow]) -> TextTable {
    let mut t = TextTable::new(vec![
        "Model",
        "analytical FW (cycles)",
        "executor (cycles)",
        "ratio",
    ]);
    for r in rows {
        t.row(vec![
            r.network.clone(),
            r.analytical.to_string(),
            r.executor.to_string(),
            format!("{:.2}", r.ratio()),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn models_agree_within_a_small_factor() {
        for r in run_crosscheck() {
            let ratio = r.ratio();
            assert!(
                (0.4..2.5).contains(&ratio),
                "{}: executor/analytical = {ratio:.2}",
                r.network
            );
        }
    }

    #[test]
    fn table_renders() {
        let rows = run_crosscheck();
        assert!(crosscheck_table(&rows).to_string().contains("ratio"));
    }
}
