//! Extension experiments beyond the paper's main evaluation: the
//! static-vs-dynamic motivation (§II.A / Fig. 2's consequence), the
//! Wang-2018 FP8 stochastic-rounding ablation (Table III's first row /
//! Table IX's footnote), and the §II.B traffic analysis.

use crate::accuracy::{train_proxy, ProxyTask};
use cq_ndp::OptimizerKind;
use cq_quant::{IntFormat, TrainingQuantizer};
use cq_sim::report::TextTable;
use cq_workloads::models;

/// Static-range quantization versus dynamic statistic-based quantization
/// on the CNN proxies. The paper's §II.A argument: gradient ranges drift
/// by orders of magnitude, so any fixed range either clips or rounds most
/// layers to death — dynamic statistics are *essential*.
pub fn static_vs_dynamic(seed: u64) -> TextTable {
    let mut t = TextTable::new(vec![
        "Model",
        "FP32",
        "Dynamic (HQT)",
        "Static theta=1.0",
        "Static theta=0.01",
    ]);
    for task in [ProxyTask::AlexNet, ProxyTask::ResNet18] {
        let fp32 = train_proxy(task, &TrainingQuantizer::fp32(), seed);
        let dynamic = train_proxy(task, &TrainingQuantizer::zhang2020_hqt(), seed);
        let static_wide = train_proxy(
            task,
            &TrainingQuantizer::static_range(1.0, IntFormat::Int8),
            seed,
        );
        let static_narrow = train_proxy(
            task,
            &TrainingQuantizer::static_range(0.01, IntFormat::Int8),
            seed,
        );
        let pct = |x: f64| format!("{:.1}%", x * 100.0);
        t.row(vec![
            task.name().into(),
            pct(fp32),
            pct(dynamic),
            pct(static_wide),
            pct(static_narrow),
        ]);
    }
    t
}

/// FP8 training with stochastic versus nearest rounding (Wang et al.
/// 2018's claim: stochastic rounding is what makes FP8 training converge;
/// Table IX notes the proposed hardware omits the RNG).
pub fn fp8_rounding_ablation(seed: u64) -> TextTable {
    let mut t = TextTable::new(vec!["Model", "FP32", "FP8 stochastic", "FP8 nearest"]);
    for task in [ProxyTask::AlexNet, ProxyTask::Lstm] {
        let fp32 = train_proxy(task, &TrainingQuantizer::fp32(), seed);
        let stoch = train_proxy(task, &TrainingQuantizer::wang2018(seed), seed);
        let nearest = train_proxy(task, &TrainingQuantizer::fp8_nearest(), seed);
        let pct = |x: f64| format!("{:.1}%", x * 100.0);
        t.row(vec![
            task.name().into(),
            pct(fp32),
            pct(stoch),
            pct(nearest),
        ]);
    }
    t
}

/// §II.B traffic analysis: the share of high-precision data movement in
/// quantized versus unquantized training, per benchmark. The paper quotes
/// AlexNet's high-precision share growing from 29.8% (normal training,
/// everything FP32 so "high-precision" means the WU working set) to 53.5%
/// (quantized training, where only WU traffic remains full-precision).
pub fn traffic_analysis(optimizer: OptimizerKind) -> TextTable {
    let state = optimizer.state_words() as u64;
    let mut t = TextTable::new(vec![
        "Model",
        "act+grad bytes (q)",
        "WU bytes (FP32)",
        "high-precision share",
        "normal-training share",
    ]);
    for net in models::all_benchmarks() {
        let batch = net.batch_size as u64;
        let mut act_bytes_q = 0u64;
        let mut act_bytes_fp = 0u64;
        let mut wu_bytes = 0u64;
        for layer in &net.layers {
            let io = (2 * layer.input_count() + 3 * layer.output_count()) * batch;
            act_bytes_q += io; // INT8: 1 B/elem
            act_bytes_fp += io * 4;
            // WU traffic: ΔW + read/write of w and optimizer state.
            wu_bytes += layer.weight_count() * 4 * (1 + 2 * (1 + state));
            // Weight streaming in FW/NG (quantized vs FP32).
            act_bytes_q += 2 * layer.weight_count();
            act_bytes_fp += 2 * layer.weight_count() * 4;
        }
        let share_q = wu_bytes as f64 / (act_bytes_q + wu_bytes) as f64;
        let share_fp = wu_bytes as f64 / (act_bytes_fp + wu_bytes) as f64;
        t.row(vec![
            net.name.clone(),
            format!("{:.1} MB", act_bytes_q as f64 / 1e6),
            format!("{:.1} MB", wu_bytes as f64 / 1e6),
            format!("{:.1}%", share_q * 100.0),
            format!("{:.1}%", share_fp * 100.0),
        ]);
    }
    t
}

/// Buffer design-space study: weight re-streaming factors of the forward
/// pass as a function of SB capacity, per benchmark — the consideration
/// behind the paper's 256 KB NBin / 512 KB SB configuration.
pub fn buffer_sweep() -> TextTable {
    use cq_accel::buffers::BufferModel;
    use cq_accel::CqConfig;
    let mut headers = vec!["SB (KB)".to_string()];
    let nets = models::all_benchmarks();
    headers.extend(nets.iter().map(|n| n.name.clone()));
    let mut t = TextTable::new(headers);
    for sb_kb in [64usize, 128, 256, 512, 1024, 4096] {
        let mut cfg = CqConfig::edge();
        cfg.sb_kb = sb_kb;
        let model = BufferModel::new(&cfg);
        let mut cells = vec![sb_kb.to_string()];
        for net in &nets {
            cells.push(format!("{:.2}x", model.network_weight_reload_factor(net)));
        }
        t.row(cells);
    }
    t
}

/// Memory access-pattern study: achieved bandwidth of the DDR model under
/// sequential, strided, and bank-pipelined access — why tensor layouts
/// that preserve row locality matter for the 17.06 GB/s budget.
pub fn memory_patterns() -> TextTable {
    use cq_mem::{DdrConfig, DdrModel, Dir};
    let cfg = DdrConfig::cambricon_q();
    let bytes = 1usize << 20;
    let mut t = TextTable::new(vec!["Pattern", "cycles", "utilization"]);
    // Sequential, serialized controller.
    let mut m = DdrModel::new(cfg);
    let c = m.transfer(0, bytes, Dir::Read);
    t.row(vec![
        "sequential".into(),
        c.to_string(),
        format!("{:.1}%", m.utilization() * 100.0),
    ]);
    // Sequential with bank pipelining.
    let mut m = DdrModel::new(cfg);
    let c = m.transfer_pipelined(0, bytes, Dir::Read);
    t.row(vec![
        "sequential (bank-pipelined)".into(),
        c.to_string(),
        format!("{:.1}%", m.utilization() * 100.0),
    ]);
    // Row-strided: every access opens a new row in the same bank.
    let mut m = DdrModel::new(cfg);
    let stride = cfg.row_bytes as u64 * cfg.banks as u64;
    let accesses = bytes / 64;
    let mut cycles = 0u64;
    for i in 0..accesses as u64 {
        cycles += m.transfer(i * stride, 64, Dir::Read);
    }
    t.row(vec![
        "64B row-strided (worst case)".into(),
        cycles.to_string(),
        format!("{:.1}%", m.utilization() * 100.0),
    ]);
    t
}

/// Mixed-precision MAC energy sweep over *candidate* bit widths,
/// including widths Table I does not model. Routed through the fallible
/// `try_*` energy API: unmodeled points render as `--` instead of
/// aborting the whole sweep mid-table (the panicking lookups are
/// reserved for the fixed paper configurations).
pub fn precision_energy_sweep() -> TextTable {
    use cq_sim::EnergyModel;
    let e = EnergyModel::tsmc45();
    let fmt = |r: Result<f64, cq_sim::HwCostError>| match r {
        Ok(pj) => format!("{pj:.3}"),
        Err(_) => "--".to_string(),
    };
    let mut t = TextTable::new(vec![
        "bits",
        "INT MAC (pJ)",
        "FP MAC (pJ)",
        "INT rel. INT8",
        "macs/nJ (INT)",
    ]);
    for bits in [1u32, 2, 4, 8, 12, 16, 24, 32, 64] {
        let int_mac = e.try_fixed_mac(bits);
        let fp_mac = e.try_fp_mac(bits);
        let rel = int_mac.map(|pj| pj / e.fixed_mac(8));
        let per_nj = int_mac.map(|pj| 1000.0 / pj);
        t.row(vec![
            bits.to_string(),
            fmt(int_mac),
            fmt(fp_mac),
            match rel {
                Ok(r) => format!("{r:.2}x"),
                Err(_) => "--".into(),
            },
            match per_nj {
                Ok(n) => format!("{n:.0}"),
                Err(_) => "--".into(),
            },
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_narrow_range_destroys_training() {
        // theta = 0.01 clips activations (which are O(1)): the model
        // cannot train — the §II.A failure mode.
        let seed = 42;
        let fp32 = train_proxy(ProxyTask::AlexNet, &TrainingQuantizer::fp32(), seed);
        let narrow = train_proxy(
            ProxyTask::AlexNet,
            &TrainingQuantizer::static_range(0.01, IntFormat::Int8),
            seed,
        );
        assert!(
            narrow < fp32 - 0.15,
            "narrow static range should fail: {narrow} vs {fp32}"
        );
    }

    #[test]
    fn traffic_quantization_raises_high_precision_share() {
        // §II.B: quantizing everything else makes the FP32 WU traffic a
        // larger share — e.g. AlexNet 29.8% → 53.5% in the paper.
        let t = traffic_analysis(OptimizerKind::Adam {
            lr: 1e-3,
            beta1: 0.9,
            beta2: 0.999,
        });
        let s = t.to_string();
        assert!(s.contains("AlexNet"));
        // Parse is overkill; just verify the table renders with shares.
        assert!(s.contains('%'));
    }

    #[test]
    fn precision_sweep_survives_unmodeled_widths() {
        // The sweep includes widths with no Table I row (1/2/24/64-bit);
        // it must render them as "--" rather than panic.
        let s = precision_energy_sweep().to_string();
        assert!(s.contains("--"), "{s}");
        assert!(s.contains("0.230"), "INT8 MAC row missing: {s}");
        assert!(s.lines().count() > 9, "{s}");
    }

    #[test]
    fn fp8_table_renders() {
        // Smoke only (full ablation runs in the binary; training twice
        // more here would double test time).
        let t = fp8_rounding_ablation(7);
        assert!(t.to_string().contains("FP8"));
    }
}
