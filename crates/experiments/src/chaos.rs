//! Shared plumbing for the crash-safe experiment binaries: CLI parsing
//! for the `chaos_sweep` flags, journal-path resolution (flag or the
//! `CQ_SWEEP_JOURNAL` environment variable), and the self-kill hook the
//! CI chaos-smoke job uses to die mid-grid.
//!
//! The binaries themselves stay thin; everything parseable lives here so
//! it can be unit tested without spawning processes.

use cq_faults::ChaosPlan;
use cq_resil::{RetryPolicy, SweepJournal};

/// Default chaos seed: the sweep seed, so one number reproduces both the
/// hardware-fault and software-chaos schedules.
pub const DEFAULT_CHAOS_SEED: u64 = crate::resilience::SWEEP_SEED;

/// Parsed `chaos_sweep`-family command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosArgs {
    /// Journal path from `--journal <path>` (falls back to
    /// [`journal_path_from_env`] when absent).
    pub journal: Option<String>,
    /// Report output path from `--out <path>`; stdout when absent.
    pub out: Option<String>,
    /// Whether chaos injection is armed (`--chaos on|off`, default off).
    pub chaos: bool,
    /// Die after this many journal records (`--kill-after <n>`).
    pub kill_after: Option<u64>,
    /// Chaos schedule seed (`--seed <n>`).
    pub seed: u64,
}

impl Default for ChaosArgs {
    fn default() -> Self {
        ChaosArgs {
            journal: None,
            out: None,
            chaos: false,
            kill_after: None,
            seed: DEFAULT_CHAOS_SEED,
        }
    }
}

impl ChaosArgs {
    /// The chaos plan these arguments select.
    pub fn plan(&self) -> ChaosPlan {
        if self.chaos {
            ChaosPlan::moderate(self.seed)
        } else {
            ChaosPlan::off()
        }
    }
}

/// Parses the `chaos_sweep` flag family from raw arguments. Unknown
/// flags are rejected, except `--profile`, which belongs to
/// [`crate::profiling::init_for_bin`] and is skipped here.
pub fn parse_chaos_args<I: IntoIterator<Item = String>>(args: I) -> Result<ChaosArgs, String> {
    let mut out = ChaosArgs::default();
    let mut args = args.into_iter();
    while let Some(a) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match a.as_str() {
            "--journal" => out.journal = Some(value("--journal")?),
            "--out" => out.out = Some(value("--out")?),
            "--chaos" => {
                out.chaos = match value("--chaos")?.as_str() {
                    "on" => true,
                    "off" => false,
                    other => return Err(format!("--chaos expects on|off, got {other:?}")),
                }
            }
            "--kill-after" => {
                let v = value("--kill-after")?;
                out.kill_after = Some(
                    v.parse::<u64>()
                        .map_err(|_| format!("--kill-after expects a count, got {v:?}"))?,
                );
            }
            "--seed" => {
                let v = value("--seed")?;
                out.seed = v
                    .parse::<u64>()
                    .map_err(|_| format!("--seed expects an integer, got {v:?}"))?;
            }
            "--profile" => {
                let _ = value("--profile");
            }
            other if other.starts_with("--profile=") => {}
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(out)
}

/// Resolves the journal path for an experiment tagged `tag` from the
/// `CQ_SWEEP_JOURNAL` environment variable: unset means "no journal",
/// `base` means `base.<tag>.journal` (one variable covers every
/// journal-aware binary without collisions). An empty or non-UTF-8
/// value is a configuration error, reported as `Err` so the binaries
/// abort loudly instead of silently running unjournaled.
pub fn journal_path_from_env(tag: &str) -> Result<Option<String>, String> {
    match std::env::var("CQ_SWEEP_JOURNAL") {
        Ok(base) if base.trim().is_empty() => {
            Err("CQ_SWEEP_JOURNAL is set but empty; set a base path or unset it".into())
        }
        Ok(base) => Ok(Some(format!("{base}.{tag}.journal"))),
        Err(std::env::VarError::NotPresent) => Ok(None),
        Err(std::env::VarError::NotUnicode(v)) => {
            Err(format!("CQ_SWEEP_JOURNAL is not valid UTF-8: {v:?}"))
        }
    }
}

/// The retry policy the journal-aware binaries run under: the default
/// three-attempt budget, seeded so backoff jitter is reproducible.
pub fn sweep_policy() -> RetryPolicy {
    RetryPolicy::default()
}

/// Arms the CI kill switch: after `n` records have been appended this
/// process dies hard (SIGKILL, falling back to `abort`), mid-grid and
/// without any cleanup — the most hostile crash the resume path must
/// survive. Used by `chaos_sweep --kill-after <n>`.
pub fn arm_kill_after(journal: &SweepJournal, n: u64) {
    journal.set_record_hook(move |records| {
        if records >= n {
            eprintln!("[chaos] kill-after {n}: dying without cleanup");
            let pid = std::process::id().to_string();
            let _ = std::process::Command::new("kill")
                .args(["-9", &pid])
                .status();
            // If an external SIGKILL was unavailable, die abruptly anyway.
            std::process::abort();
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_the_full_flag_family() {
        let args = parse_chaos_args(strs(&[
            "--journal",
            "j.log",
            "--out",
            "report.txt",
            "--chaos",
            "on",
            "--kill-after",
            "20",
            "--seed",
            "7",
        ]))
        .unwrap();
        assert_eq!(
            args,
            ChaosArgs {
                journal: Some("j.log".into()),
                out: Some("report.txt".into()),
                chaos: true,
                kill_after: Some(20),
                seed: 7,
            }
        );
        assert!(args.plan().is_active());
    }

    #[test]
    fn defaults_are_off_and_unjournaled() {
        let args = parse_chaos_args(strs(&[])).unwrap();
        assert_eq!(args, ChaosArgs::default());
        assert!(!args.plan().is_active());
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_chaos_args(strs(&["--chaos", "maybe"])).is_err());
        assert!(parse_chaos_args(strs(&["--kill-after", "soon"])).is_err());
        assert!(parse_chaos_args(strs(&["--seed", "x"])).is_err());
        assert!(parse_chaos_args(strs(&["--journal"])).is_err());
        assert!(parse_chaos_args(strs(&["--frobnicate"])).is_err());
    }

    #[test]
    fn profile_flag_is_ignored_not_rejected() {
        let args = parse_chaos_args(strs(&["--profile", "t.jsonl", "--chaos", "on"])).unwrap();
        assert!(args.chaos);
        let args = parse_chaos_args(strs(&["--profile=t.jsonl"])).unwrap();
        assert_eq!(args, ChaosArgs::default());
    }

    #[test]
    fn env_journal_paths_are_tagged() {
        // Uses the current (unset-by-harness) state: NotPresent → None.
        // The set/empty branches are pure string logic exercised via the
        // match arms above; avoid mutating process env in tests.
        if std::env::var_os("CQ_SWEEP_JOURNAL").is_none() {
            assert_eq!(journal_path_from_env("fault_sweep"), Ok(None));
        }
    }
}
